#!/usr/bin/env bash
# One-shot gate: configure Release, build, run the unit tests, and run the
# event-core microbenchmark. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo
echo "=== bench/micro_sim (timing wheel vs reference heap) ==="
"$BUILD_DIR/bench/micro_sim"
