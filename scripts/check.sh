#!/usr/bin/env bash
# One-shot gate: configure Release, build, run the unit tests, run the
# event-core microbenchmark, and smoke-test the op tracer (including
# validating the exported Chrome trace JSON). Exits non-zero on the first
# failure.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo
echo "=== bench/micro_sim (timing wheel vs reference heap) ==="
"$BUILD_DIR/bench/micro_sim"

echo
echo "=== bench/trace_smoke (op tracer end to end, AFC_SIM_TRACE=1) ==="
TRACE_JSON="$BUILD_DIR/trace_smoke.json"
AFC_SIM_TRACE=1 AFC_SIM_TRACE_OUT="$TRACE_JSON" "$BUILD_DIR/bench/trace_smoke"
python3 -m json.tool "$TRACE_JSON" > /dev/null
echo "trace JSON OK: $TRACE_JSON"
