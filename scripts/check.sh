#!/usr/bin/env bash
# One-shot gate: configure Release, build, run the unit tests, run the
# event-core microbenchmark, smoke-test the op tracer (including validating
# the exported Chrome trace JSON), validate the committed BENCH_*.json perf
# trajectory, run the transport perf-smoke (fig13 ladder + default-off
# byte-identity), run the QoS and EC smokes (fig14/fig15 gates), run the
# store-backend perf smoke (fig16 gate: FlashStore >= FileStore), run the
# membership smoke (fig17 gate: crash detected within the heartbeat bound,
# zero false downs) plus its oracle byte-identity check, run the chaos
# fault-injection soak (all legs, including the FlashStore store and
# detected-membership legs), re-run that soak under ASan+UBSan, then run
# the rt/ concurrency stress harness natively and under ThreadSanitizer.
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo
echo "=== bench/micro_sim (timing wheel vs reference heap) ==="
"$BUILD_DIR/bench/micro_sim"

echo
echo "=== bench/trace_smoke (op tracer end to end, AFC_SIM_TRACE=1) ==="
TRACE_JSON="$BUILD_DIR/trace_smoke.json"
AFC_SIM_TRACE=1 AFC_SIM_TRACE_OUT="$TRACE_JSON" "$BUILD_DIR/bench/trace_smoke"
python3 -m json.tool "$TRACE_JSON" > /dev/null
echo "trace JSON OK: $TRACE_JSON"

echo
echo "=== BENCH_*.json perf trajectory (committed datapoints stay valid JSON) ==="
for bench_json in BENCH_*.json; do
  [ -e "$bench_json" ] || { echo "FAIL: no BENCH_*.json trajectory committed" >&2; exit 1; }
  python3 -m json.tool "$bench_json" > /dev/null
  echo "trajectory OK: $bench_json"
done

echo
echo "=== transport perf-smoke (fig13 ladder @ 16 OSDs + a fresh datapoint) ==="
SMOKE_JSON="$BUILD_DIR/bench_smoke.json"
rm -f "$SMOKE_JSON"
AFC_BENCH_JSON="$SMOKE_JSON" "$BUILD_DIR/bench/fig13_transport" --smoke
python3 -m json.tool "$SMOKE_JSON" > /dev/null
echo "perf-smoke OK (sharded+batched >= community; $SMOKE_JSON valid)"

echo
echo "=== QoS isolation smoke (fig14 noisy neighbor, open-loop engine) ==="
# The harness itself is the gate: it exits non-zero unless the well-behaved
# tenant's p99 under a flood stays <= 2x its solo p99 with QoS on, AND the
# QoS-off run demonstrably degrades (the flood must actually hurt).
QOS_JSON="$BUILD_DIR/bench_qos_smoke.json"
rm -f "$QOS_JSON"
AFC_BENCH_JSON="$QOS_JSON" "$BUILD_DIR/bench/fig14_qos" --smoke
python3 -m json.tool "$QOS_JSON" > /dev/null
echo "qos-smoke OK (steady p99 bounded under flood; $QOS_JSON valid)"

echo
echo "=== EC vs replication smoke (fig15, healthy write p99 + degraded reads) ==="
# The harness is the gate: EC(4+2) healthy 4K-write p99 must stay within 2x
# of 3-replication's, and the degraded window must actually serve
# reconstructed (decode-from-k) reads.
EC_JSON="$BUILD_DIR/bench_ec_smoke.json"
rm -f "$EC_JSON"
AFC_BENCH_JSON="$EC_JSON" "$BUILD_DIR/bench/fig15_ec" --smoke
python3 -m json.tool "$EC_JSON" > /dev/null
echo "ec-smoke OK (EC write p99 bounded vs 3-rep; $EC_JSON valid)"

echo
echo "=== store-backend smoke (fig16 perf gate: FlashStore >= FileStore) ==="
# The harness is the gate: sustained 4K random write on the raw-device
# backend must not regress below FileStore-optimized, or it exits non-zero.
STORE_JSON="$BUILD_DIR/bench_store_smoke.json"
rm -f "$STORE_JSON"
AFC_BENCH_JSON="$STORE_JSON" "$BUILD_DIR/bench/fig16_store" --smoke
python3 -m json.tool "$STORE_JSON" > /dev/null
echo "store-smoke OK (flash >= file on sustained 4K random write; $STORE_JSON valid)"

echo
echo "=== membership smoke (fig17 gate: detection bound + zero false downs) ==="
# The harness is the gate: in detected mode a crashed OSD must be marked
# down (and the map republished) within hb_grace + 2*hb_interval, and no
# healthy OSD may ever be marked down, or it exits non-zero.
MEMBERSHIP_JSON="$BUILD_DIR/bench_membership_smoke.json"
rm -f "$MEMBERSHIP_JSON"
AFC_BENCH_JSON="$MEMBERSHIP_JSON" "$BUILD_DIR/bench/fig17_membership" --smoke
python3 -m json.tool "$MEMBERSHIP_JSON" > /dev/null
echo "membership-smoke OK (crash detected within bound, 0 false downs; $MEMBERSHIP_JSON valid)"

echo
echo "=== transport byte-identity (all switches off == explicit community rung) ==="
# The default-constructed net config IS the community rung; forcing it via
# the env override must not change a byte of the paper figures.
"$BUILD_DIR/bench/fig01_baseline" > "$BUILD_DIR/fig01_default.txt"
AFC_NET_TRANSPORT=community "$BUILD_DIR/bench/fig01_baseline" > "$BUILD_DIR/fig01_community.txt"
cmp "$BUILD_DIR/fig01_default.txt" "$BUILD_DIR/fig01_community.txt"
"$BUILD_DIR/bench/fig03_latency_breakdown" > "$BUILD_DIR/fig03_default.txt"
AFC_NET_TRANSPORT=community "$BUILD_DIR/bench/fig03_latency_breakdown" > "$BUILD_DIR/fig03_community.txt"
cmp "$BUILD_DIR/fig03_default.txt" "$BUILD_DIR/fig03_community.txt"
echo "fig01/fig03 byte-identical with switches off"

echo
echo "=== store byte-identity (default == explicit FileStore backend) ==="
# store=file is the default rung; forcing it via AFC_STORE must not change
# a byte of the paper figures.
AFC_STORE=file "$BUILD_DIR/bench/fig01_baseline" > "$BUILD_DIR/fig01_storefile.txt"
cmp "$BUILD_DIR/fig01_default.txt" "$BUILD_DIR/fig01_storefile.txt"
AFC_STORE=file "$BUILD_DIR/bench/fig03_latency_breakdown" > "$BUILD_DIR/fig03_storefile.txt"
cmp "$BUILD_DIR/fig03_default.txt" "$BUILD_DIR/fig03_storefile.txt"
echo "fig01/fig03 byte-identical with AFC_STORE=file"

echo
echo "=== membership byte-identity (default == explicit oracle mode) ==="
# Oracle membership is the default rung: no heartbeat timers, no RNG draws,
# no monitor. Forcing it via AFC_MEMBERSHIP must not change a byte.
AFC_MEMBERSHIP=oracle "$BUILD_DIR/bench/fig01_baseline" > "$BUILD_DIR/fig01_oracle.txt"
cmp "$BUILD_DIR/fig01_default.txt" "$BUILD_DIR/fig01_oracle.txt"
AFC_MEMBERSHIP=oracle "$BUILD_DIR/bench/fig03_latency_breakdown" > "$BUILD_DIR/fig03_oracle.txt"
cmp "$BUILD_DIR/fig03_default.txt" "$BUILD_DIR/fig03_oracle.txt"
echo "fig01/fig03 byte-identical with AFC_MEMBERSHIP=oracle"

echo
echo "=== bench/chaos (fault injection + recovery invariants) ==="
"$BUILD_DIR/bench/chaos"

echo
echo "=== bench/chaos under ASan+UBSan ==="
# Leak detection stays on, with one suppression: coroutine frames still
# suspended at exit (device worker loops; RPC waiters stranded by injected
# crashes — their reply never arrives, by design). See scripts/lsan.supp.
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
cmake -B "$ASAN_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAFC_SANITIZE=ON
cmake --build "$ASAN_BUILD_DIR" -j "$(nproc)" --target chaos
# The corruption leg first, on its own: torn-write replay, CRC verification
# and scrub repair walk raw record bytes, so a memory bug there should fail
# with a focused label before the full soak runs.
LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  "$ASAN_BUILD_DIR/bench/chaos" --leg=corruption
# The EC leg next, same rationale: GF(256) encode/decode, shard gather and
# parity scrub index into matrix/chunk buffers — exactly the code a bounds
# bug would hide in.
LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  "$ASAN_BUILD_DIR/bench/chaos" --leg=ec
# The store leg: FlashStore's WAL replay, deferred-ledger bookkeeping and
# extent COW run under the same torn/flip stack — raw record bytes again.
LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  "$ASAN_BUILD_DIR/bench/chaos" --leg=store
# The membership leg: heartbeat state, monitor report lists and the fencing
# paths churn under crashes, partitions and gray failures — lifetime bugs
# (timer tokens, connection teardown) surface here first.
LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  "$ASAN_BUILD_DIR/bench/chaos" --leg=membership
LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  "$ASAN_BUILD_DIR/bench/chaos"
echo "sanitized chaos soak OK"

echo
echo "=== rt stress harness (native, 100 seeded iterations) ==="
"$BUILD_DIR/tests/stress_rt" --iters 100 --seed 1

echo
echo "=== rt stress + unit tests under TSan ==="
# TSan cannot be combined with ASan, so it gets its own build tree. The
# stress harness exercises every rt/ primitive with randomized thread
# fleets and mid-flight close()/shutdown(); any data race or lifecycle
# violation fails the run. scripts/tsan.supp is empty on purpose — keep it
# that way unless a race is provably benign AND documented there.
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
cmake -B "$TSAN_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAFC_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)" --target stress_rt afceph_rt_tests
TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp:halt_on_error=1:second_deadlock_stack=1" \
  "$TSAN_BUILD_DIR/tests/stress_rt" --iters 25 --seed 1
TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp:halt_on_error=1:second_deadlock_stack=1" \
  "$TSAN_BUILD_DIR/tests/afceph_rt_tests"
echo "TSan rt stress OK"
