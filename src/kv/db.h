#pragma once

#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/stats.h"
#include "core/trace.h"
#include "kv/sstable.h"
#include "kv/wal.h"
#include "sim/channel.h"
#include "sim/cpu.h"

namespace afc::kv {

/// One write-batch: all ops apply atomically with a single WAL record — the
/// mechanism behind the paper's "minimize operations in a batching manner
/// when transaction is written to Key-value DB" (§3.4).
class WriteBatch {
 public:
  void put(std::string key, Value v) { ops_.push_back({std::move(key), std::move(v), kPut}); }
  void del(std::string key) { ops_.push_back({std::move(key), Value{}, kDel}); }
  std::size_t size() const { return ops_.size(); }
  std::uint64_t payload_bytes() const;

  /// Trace attribution for the whole batch (invalid when tracing is off).
  trace::Span trace;

 private:
  friend class Db;
  enum Kind { kPut, kDel };
  struct Op {
    std::string key;
    Value value;
    Kind kind;
  };
  std::vector<Op> ops_;
};

/// Leveled LSM tree in the LevelDB mould: memtable → immutable memtable →
/// L0 (overlapping) → L1..Ln (sorted, 10x fanout), with a background flush/
/// compaction worker, bloom filters, a block cache, L0 slowdown/stop write
/// stalls, and full write-amplification accounting. All file I/O is charged
/// to the owning device, so compaction competes with foreground traffic —
/// the "latency of each requested operation becomes unstable because
/// key-value DB performs compaction" effect from §3.4 emerges here.
class Db {
 public:
  struct Config {
    std::uint64_t memtable_bytes = 4 * kMiB;
    int l0_compaction_trigger = 4;
    int l0_slowdown_threshold = 8;
    int l0_stop_threshold = 12;
    Time l0_slowdown_delay = 1 * kMillisecond;  // LevelDB's 1ms write sleep
    std::uint64_t base_level_bytes = 10 * kMiB;
    double level_multiplier = 10.0;
    int max_levels = 5;
    std::uint64_t target_file_bytes = 2 * kMiB;
    std::uint64_t wal_buffer_bytes = 64 * 1024;
    std::uint64_t block_cache_bytes = 8 * kMiB;
    std::uint64_t compaction_io_chunk = 1 * kMiB;
    // CPU cost per user op (encode + memtable insert + WAL append); batched
    // ops amortize (LevelDB's group commit). Charged when a CpuPool is
    // attached.
    Time put_cpu = 9000;
    Time batched_op_cpu = 3500;
    Time get_cpu = 6000;
    double cpu_multiplier = 1.0;  // allocator tax
  };

  Db(sim::Simulation& sim, dev::Device& dev, const Config& cfg, std::uint64_t seed = 7,
     sim::CpuPool* cpu = nullptr);
  Db(sim::Simulation& sim, dev::Device& dev) : Db(sim, dev, Config{}) {}

  /// Single-op writes (one WAL record each — the community-Ceph pattern of
  /// several separate KV ops per transaction). A valid `span` attributes the
  /// write's latency (stalls, WAL, memtable) to that op in the tracer.
  sim::CoTask<void> put(std::string key, Value v, trace::Span span = {});
  sim::CoTask<void> del(std::string key, trace::Span span = {});

  /// Atomic batch (one WAL record — the AFCeph pattern).
  sim::CoTask<void> write(WriteBatch batch);

  sim::CoTask<std::optional<Value>> get(std::string key);

  /// Up to `limit` live keys in [lo, hi), in order. Serves PG-log trimming
  /// and omap listing. Reads only in-memory structures plus table indexes.
  sim::CoTask<std::vector<std::string>> range_keys(std::string lo, std::string hi,
                                                   std::size_t limit);

  /// Stop the background worker after current job (call before teardown for
  /// leak-free shutdown).
  void close();
  /// Wait until no flush/compaction is queued or running.
  sim::CoTask<void> drain();

  std::uint64_t user_bytes() const { return user_bytes_; }
  std::uint64_t device_write_bytes() const;
  /// Bytes written to the device per user byte (the paper measures 30 MB of
  /// extra data for 4 MB-block writes vs 2 GB extra for 4 KB blocks).
  double write_amplification() const;

  std::uint64_t stall_slowdowns() const { return stall_slowdowns_; }
  std::uint64_t stall_stops() const { return stall_stops_; }
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t flushes() const { return flushes_; }
  int l0_files() const { return int(levels_[0].size()); }
  std::size_t table_count() const;
  std::uint64_t block_cache_hits() const { return cache_hits_; }
  std::uint64_t block_cache_misses() const { return cache_misses_; }

 private:
  using TablePtr = std::shared_ptr<SsTable>;

  sim::CoTask<void> apply(WriteBatch batch);
  sim::CoTask<void> maybe_stall();
  void maybe_schedule_flush();
  sim::CoTask<void> background_worker();
  sim::CoTask<void> do_flush();
  sim::CoTask<void> do_compaction(int level);
  int pick_compaction_level() const;
  std::uint64_t level_bytes(int level) const;
  std::uint64_t level_target(int level) const;

  /// Charge a (possibly cached) block read for `table`; returns true if the
  /// device was touched.
  sim::CoTask<bool> read_block(const SsTable& table, std::uint64_t block);

  sim::Simulation& sim_;
  dev::Device& dev_;
  Config cfg_;
  sim::CpuPool* cpu_;
  Wal wal_;

  MemTable mem_;
  std::optional<MemTable> imm_;
  std::vector<std::vector<TablePtr>> levels_;
  std::uint64_t next_table_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t rng_seed_;

  sim::Mutex write_lock_;
  sim::CondVar work_cv_;
  sim::CondVar stall_cv_;
  sim::CondVar idle_cv_;
  bool flush_requested_ = false;
  bool closing_ = false;
  bool worker_busy_ = false;

  // Block cache: (table_id, block) -> LRU entry.
  struct CacheKey {
    std::uint64_t table;
    std::uint64_t block;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return std::size_t(k.table * 0x9e3779b97f4a7c15ull ^ k.block);
    }
  };
  std::list<CacheKey> lru_;
  std::unordered_map<CacheKey, std::list<CacheKey>::iterator, CacheKeyHash> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  std::uint64_t user_bytes_ = 0;
  std::uint64_t flush_bytes_ = 0;
  std::uint64_t compaction_write_bytes_ = 0;
  std::uint64_t compaction_read_bytes_ = 0;
  std::uint64_t stall_slowdowns_ = 0;
  std::uint64_t stall_stops_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace afc::kv
