#pragma once

#include <cstdint>

#include "device/device.h"
#include "sim/task.h"

namespace afc::kv {

/// Write-ahead log of the KV store. Ceph's filestore runs LevelDB *without*
/// per-write fsync (durability comes from the OSD journal), so WAL appends
/// accumulate in the page cache and reach the device in writeback-sized
/// batches; the cost model reflects that: cheap appends, periodic buffered
/// flushes charged to the data SSD.
class Wal {
 public:
  Wal(sim::Simulation& sim, dev::Device& dev, std::uint64_t buffer_bytes = 64 * 1024)
      : sim_(sim), dev_(dev), buffer_bytes_(buffer_bytes) {}

  /// Log a record of `payload_bytes`; suspends only when a writeback flush
  /// is triggered.
  sim::CoTask<void> append(std::uint64_t payload_bytes);

  /// Force out whatever is buffered (memtable flush barrier).
  sim::CoTask<void> sync();

  /// Logical truncate after a memtable flush (old records no longer needed).
  void reset() { live_bytes_ = 0; }

  std::uint64_t bytes_logged() const { return bytes_logged_; }
  std::uint64_t device_bytes() const { return device_bytes_; }
  std::uint64_t live_bytes() const { return live_bytes_; }

 private:
  static constexpr std::uint64_t kRecordOverhead = 12;

  sim::Simulation& sim_;
  dev::Device& dev_;
  std::uint64_t buffer_bytes_;
  std::uint64_t pending_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t bytes_logged_ = 0;
  std::uint64_t device_bytes_ = 0;
  std::uint64_t write_pos_ = 0;
};

}  // namespace afc::kv
