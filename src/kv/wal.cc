#include "kv/wal.h"

namespace afc::kv {

sim::CoTask<void> Wal::append(std::uint64_t payload_bytes) {
  const std::uint64_t record = payload_bytes + kRecordOverhead;
  pending_ += record;
  live_bytes_ += record;
  bytes_logged_ += record;
  if (pending_ >= buffer_bytes_) co_await sync();
}

sim::CoTask<void> Wal::sync() {
  if (pending_ == 0) co_return;
  const std::uint64_t chunk = pending_;
  pending_ = 0;
  device_bytes_ += chunk;
  co_await dev_.submit(dev::IoType::kWrite, write_pos_, chunk);
  write_pos_ += chunk;
}

}  // namespace afc::kv
