#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kv/memtable.h"

namespace afc::kv {

/// Blocked bloom filter over keys (k=4 hash probes). Sized at build time to
/// ~10 bits/key for a ~1% false-positive rate, like LevelDB's filter block.
class BloomFilter {
 public:
  explicit BloomFilter(std::size_t expected_keys);

  void add(std::string_view key);
  bool may_contain(std::string_view key) const;
  std::size_t bits() const { return bits_.size() * 64; }

 private:
  std::uint64_t probe_mask(std::string_view key, int i) const;
  std::vector<std::uint64_t> bits_;
};

/// Immutable sorted run. Entry payloads live in memory (the simulator's
/// "disk"), but every read through SSTable::get charges one data-block read
/// to the owning DB's device unless the block cache hits.
class SsTable {
 public:
  /// Build from sorted, de-duplicated entries.
  SsTable(std::uint64_t id, int level, std::vector<Entry> entries);

  std::uint64_t id() const { return id_; }
  int level() const { return level_; }
  std::uint64_t data_bytes() const { return data_bytes_; }
  std::size_t entry_count() const { return entries_.size(); }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  bool key_in_range(std::string_view key) const {
    return !entries_.empty() && key >= min_key_ && key <= max_key_;
  }
  bool overlaps(std::string_view lo, std::string_view hi) const {
    return !entries_.empty() && !(max_key_ < lo) && !(min_key_ > hi);
  }

  /// Bloom-negative lookups return {nullptr, false} with no I/O; otherwise
  /// {entry-or-null, true} and the caller charges a block read.
  struct Lookup {
    const Entry* entry;
    bool block_touched;
  };
  Lookup get(std::string_view key) const;

  /// Index of the data block containing `key` (for block-cache keys).
  std::uint64_t block_of(std::string_view key) const;

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::uint64_t id_;
  int level_;
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> block_offsets_;  // entry index per 4 KiB block
  BloomFilter bloom_;
  std::uint64_t data_bytes_ = 0;
  std::string min_key_;
  std::string max_key_;
};

/// K-way merge of sorted entry runs, newest run first: later (older)
/// duplicates are dropped; tombstones are dropped only when `drop_deletes`
/// (bottom-level compaction).
std::vector<Entry> merge_runs(std::vector<const std::vector<Entry>*> newest_first,
                              bool drop_deletes);

}  // namespace afc::kv
