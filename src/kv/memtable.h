#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace afc::kv {

/// A value that is either real bytes (tested for correctness) or a virtual
/// length (bulk PG-log traffic in benchmarks) — both cost the same simulated
/// device bytes.
struct Value {
  std::string data;
  std::uint32_t virtual_len = 0;

  static Value real(std::string d) { return Value{std::move(d), 0}; }
  static Value virt(std::uint32_t len) { return Value{{}, len}; }

  bool is_virtual() const { return data.empty() && virtual_len != 0; }
  std::uint64_t size() const { return is_virtual() ? virtual_len : data.size(); }
  bool operator==(const Value& o) const = default;
};

enum class EntryType : std::uint8_t { kPut, kDelete };

struct Entry {
  std::string key;
  Value value;
  std::uint64_t seq = 0;
  EntryType type = EntryType::kPut;

  std::uint64_t encoded_size() const { return key.size() + value.size() + 16; }
};

/// Skiplist memtable: sorted by key, newest write wins in place (the DB
/// layer has no MVCC readers, so keeping only the latest version per key is
/// equivalent and cheaper). Tombstones are retained for correct merge with
/// older SSTables.
class MemTable {
 public:
  explicit MemTable(std::uint64_t seed = 1);
  ~MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;
  MemTable(MemTable&&) noexcept;
  MemTable& operator=(MemTable&&) noexcept;

  void put(std::string_view key, Value v, std::uint64_t seq);
  void del(std::string_view key, std::uint64_t seq);

  /// Latest entry for key, or nullptr (tombstones are returned too —
  /// caller distinguishes via Entry::type).
  const Entry* get(std::string_view key) const;

  /// All entries in key order (for flush / iteration).
  std::vector<Entry> dump() const;

  /// First entry with key >= `from`; advance with next(). Returns nullptr
  /// at the end.
  const Entry* seek(std::string_view from) const;
  const Entry* next(const Entry* e) const;

  std::uint64_t approximate_bytes() const { return bytes_; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  static constexpr int kMaxHeight = 12;

  struct SkipNode;
  int random_height();
  SkipNode* find_greater_or_equal(std::string_view key, SkipNode** prev) const;

  SkipNode* head_;
  int height_ = 1;
  Rng rng_;
  std::uint64_t bytes_ = 0;
  std::size_t count_ = 0;
};

}  // namespace afc::kv
