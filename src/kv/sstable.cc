#include "kv/sstable.h"

#include <algorithm>
#include <queue>

namespace afc::kv {

namespace {

std::uint64_t hash_key(std::string_view key, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (char c : key) {
    h ^= std::uint8_t(c);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  return h;
}

constexpr std::uint64_t kBlockSize = 4096;

}  // namespace

BloomFilter::BloomFilter(std::size_t expected_keys) {
  std::size_t nbits = expected_keys * 10;
  if (nbits < 64) nbits = 64;
  bits_.assign((nbits + 63) / 64, 0);
}

std::uint64_t BloomFilter::probe_mask(std::string_view key, int i) const {
  return hash_key(key, 0x9e3779b97f4a7c15ull * std::uint64_t(i + 1));
}

void BloomFilter::add(std::string_view key) {
  const std::uint64_t nbits = bits_.size() * 64;
  for (int i = 0; i < 4; i++) {
    const std::uint64_t bit = probe_mask(key, i) % nbits;
    bits_[bit / 64] |= 1ull << (bit % 64);
  }
}

bool BloomFilter::may_contain(std::string_view key) const {
  const std::uint64_t nbits = bits_.size() * 64;
  for (int i = 0; i < 4; i++) {
    const std::uint64_t bit = probe_mask(key, i) % nbits;
    if (!(bits_[bit / 64] & (1ull << (bit % 64)))) return false;
  }
  return true;
}

SsTable::SsTable(std::uint64_t id, int level, std::vector<Entry> entries)
    : id_(id), level_(level), entries_(std::move(entries)), bloom_(entries_.size()) {
  std::uint64_t offset = 0;
  std::uint64_t next_block_at = 0;
  for (std::size_t i = 0; i < entries_.size(); i++) {
    const Entry& e = entries_[i];
    bloom_.add(e.key);
    if (offset >= next_block_at) {
      block_offsets_.push_back(i);
      next_block_at = offset + kBlockSize;
    }
    offset += e.encoded_size();
  }
  data_bytes_ = offset;
  if (!entries_.empty()) {
    min_key_ = entries_.front().key;
    max_key_ = entries_.back().key;
  }
}

SsTable::Lookup SsTable::get(std::string_view key) const {
  if (!key_in_range(key) || !bloom_.may_contain(key)) return {nullptr, false};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return {&*it, true};
  return {nullptr, true};  // bloom false positive still touched a block
}

std::uint64_t SsTable::block_of(std::string_view key) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const Entry& e, std::string_view k) { return e.key < k; });
  const std::uint64_t idx = std::uint64_t(it - entries_.begin());
  auto bit = std::upper_bound(block_offsets_.begin(), block_offsets_.end(), idx);
  return std::uint64_t(bit - block_offsets_.begin());
}

std::vector<Entry> merge_runs(std::vector<const std::vector<Entry>*> newest_first,
                              bool drop_deletes) {
  // K-way merge with run priority: lower run index = newer.
  struct Cursor {
    const std::vector<Entry>* run;
    std::size_t pos;
    std::size_t priority;
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    const Entry& ea = (*a.run)[a.pos];
    const Entry& eb = (*b.run)[b.pos];
    if (ea.key != eb.key) return ea.key > eb.key;
    if (ea.seq != eb.seq) return ea.seq < eb.seq;  // higher seq (newer) first
    return a.priority > b.priority;                // then newer run
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  for (std::size_t i = 0; i < newest_first.size(); i++) {
    if (!newest_first[i]->empty()) heap.push(Cursor{newest_first[i], 0, i});
  }
  std::vector<Entry> out;
  std::string last_key;
  bool have_last = false;
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    const Entry& e = (*c.run)[c.pos];
    if (!have_last || e.key != last_key) {
      last_key = e.key;
      have_last = true;
      if (!(drop_deletes && e.type == EntryType::kDelete)) out.push_back(e);
    }
    if (c.pos + 1 < c.run->size()) {
      c.pos++;
      heap.push(c);
    }
  }
  return out;
}

}  // namespace afc::kv
