#include "kv/db.h"

#include <algorithm>

#include "common/stage_names.h"

namespace afc::kv {

std::uint64_t WriteBatch::payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& op : ops_) total += op.key.size() + op.value.size() + 8;
  return total;
}

Db::Db(sim::Simulation& sim, dev::Device& dev, const Config& cfg, std::uint64_t seed,
       sim::CpuPool* cpu)
    : sim_(sim),
      dev_(dev),
      cfg_(cfg),
      cpu_(cpu),
      wal_(sim, dev, cfg.wal_buffer_bytes),
      mem_(seed),
      rng_seed_(seed),
      write_lock_(sim),
      work_cv_(sim),
      stall_cv_(sim),
      idle_cv_(sim) {
  levels_.resize(std::size_t(cfg_.max_levels));
  sim::spawn(background_worker());
}

sim::CoTask<void> Db::put(std::string key, Value v, trace::Span span) {
  WriteBatch b;
  b.put(std::move(key), std::move(v));
  b.trace = span;
  co_await apply(std::move(b));
}

sim::CoTask<void> Db::del(std::string key, trace::Span span) {
  WriteBatch b;
  b.del(std::move(key));
  b.trace = span;
  co_await apply(std::move(b));
}

sim::CoTask<void> Db::write(WriteBatch batch) { co_await apply(std::move(batch)); }

sim::CoTask<void> Db::apply(WriteBatch batch) {
  const Time kv_t0 = sim_.now();
  if (cpu_ != nullptr) {
    // Single-op writes pay the full per-op cost; batched ops amortize the
    // WAL/group-commit overhead (LevelDB write-batch behaviour).
    const Time per_op = batch.size() == 1 ? cfg_.put_cpu : cfg_.batched_op_cpu;
    co_await cpu_->consume(Time(double(per_op) * double(batch.size()) * cfg_.cpu_multiplier));
  }
  co_await write_lock_.lock();
  co_await maybe_stall();
  const std::uint64_t payload = batch.payload_bytes();
  user_bytes_ += payload;
  co_await wal_.append(payload);
  for (auto& op : batch.ops_) {
    if (op.kind == WriteBatch::kPut) {
      mem_.put(op.key, std::move(op.value), next_seq_++);
    } else {
      mem_.del(op.key, next_seq_++);
    }
  }
  maybe_schedule_flush();
  write_lock_.unlock();
  // kv.write: encode CPU, writer-lock queueing, any L0 stall, WAL append
  // and memtable insert — the KV share of a transaction's latency.
  if (auto* tr = trace::Collector::active(); tr != nullptr && batch.trace.valid()) {
    tr->complete(batch.trace, tr->stage_id(stage::kKvWrite), kv_t0, sim_.now());
  }
}

sim::CoTask<void> Db::maybe_stall() {
  // LevelDB-style backpressure: slow every write while L0 is crowded, stop
  // completely when it is full. Holding write_lock_ here is deliberate —
  // it serializes all writers behind the stall, as the real DB does.
  if (l0_files() >= cfg_.l0_slowdown_threshold && l0_files() < cfg_.l0_stop_threshold) {
    stall_slowdowns_++;
    co_await sim::delay(sim_, cfg_.l0_slowdown_delay, "kv.l0_slowdown");
  }
  while (l0_files() >= cfg_.l0_stop_threshold ||
         (imm_.has_value() && mem_.approximate_bytes() >= cfg_.memtable_bytes)) {
    stall_stops_++;
    co_await stall_cv_.wait();
  }
}

void Db::maybe_schedule_flush() {
  if (mem_.approximate_bytes() >= cfg_.memtable_bytes && !imm_.has_value()) {
    imm_.emplace(std::move(mem_));
    mem_ = MemTable(++rng_seed_);
    flush_requested_ = true;
    work_cv_.notify_all();
  }
}

sim::CoTask<void> Db::background_worker() {
  for (;;) {
    while (!closing_ && !flush_requested_ && pick_compaction_level() < 0) {
      co_await work_cv_.wait();
    }
    if (closing_) break;
    worker_busy_ = true;
    if (flush_requested_) {
      co_await do_flush();
    } else {
      const int level = pick_compaction_level();
      if (level >= 0) co_await do_compaction(level);
    }
    worker_busy_ = false;
    stall_cv_.notify_all();
    idle_cv_.notify_all();
  }
  idle_cv_.notify_all();
}

sim::CoTask<void> Db::do_flush() {
  flush_requested_ = false;
  if (!imm_.has_value()) co_return;
  co_await wal_.sync();
  auto entries = imm_->dump();
  auto table = std::make_shared<SsTable>(next_table_id_++, 0, std::move(entries));
  // Stream the table out in compaction-sized chunks.
  std::uint64_t remaining = table->data_bytes();
  std::uint64_t pos = 0;
  while (remaining > 0) {
    const std::uint64_t chunk = std::min(remaining, cfg_.compaction_io_chunk);
    co_await dev_.submit(dev::IoType::kWrite, pos, chunk);
    pos += chunk;
    remaining -= chunk;
  }
  flush_bytes_ += table->data_bytes();
  levels_[0].insert(levels_[0].begin(), table);  // newest first
  imm_.reset();
  wal_.reset();
  flushes_++;
  work_cv_.notify_all();  // maybe compaction is now needed
}

int Db::pick_compaction_level() const {
  if (int(levels_[0].size()) >= cfg_.l0_compaction_trigger) return 0;
  for (int l = 1; l + 1 < cfg_.max_levels; l++) {
    if (level_bytes(l) > level_target(l)) return l;
  }
  return -1;
}

std::uint64_t Db::level_bytes(int level) const {
  std::uint64_t total = 0;
  for (const auto& t : levels_[std::size_t(level)]) total += t->data_bytes();
  return total;
}

std::uint64_t Db::level_target(int level) const {
  double target = double(cfg_.base_level_bytes);
  for (int l = 1; l < level; l++) target *= cfg_.level_multiplier;
  return std::uint64_t(target);
}

sim::CoTask<void> Db::do_compaction(int level) {
  auto& src = levels_[std::size_t(level)];
  if (src.empty()) co_return;

  std::vector<TablePtr> inputs;
  std::string lo, hi;
  if (level == 0) {
    inputs = src;  // all of L0 (they overlap)
  } else {
    inputs.push_back(src.back());  // oldest file at this level
  }
  lo = inputs.front()->min_key();
  hi = inputs.front()->max_key();
  for (const auto& t : inputs) {
    lo = std::min(lo, t->min_key());
    hi = std::max(hi, t->max_key());
  }

  auto& dst = levels_[std::size_t(level) + 1];
  std::vector<TablePtr> overlapping;
  for (const auto& t : dst) {
    if (t->overlaps(lo, hi)) overlapping.push_back(t);
  }

  // Device I/O: read all inputs, write the merged output.
  std::uint64_t read_bytes = 0;
  for (const auto& t : inputs) read_bytes += t->data_bytes();
  for (const auto& t : overlapping) read_bytes += t->data_bytes();
  for (std::uint64_t done = 0; done < read_bytes;) {
    const std::uint64_t chunk = std::min(read_bytes - done, cfg_.compaction_io_chunk);
    co_await dev_.submit(dev::IoType::kRead, done, chunk);
    done += chunk;
  }
  compaction_read_bytes_ += read_bytes;

  std::vector<const std::vector<Entry>*> runs;  // newest first
  for (const auto& t : inputs) runs.push_back(&t->entries());
  for (const auto& t : overlapping) runs.push_back(&t->entries());
  bool bottom = true;  // may we drop tombstones? only if nothing lives deeper
  for (int l = level + 2; l < cfg_.max_levels; l++) {
    if (!levels_[std::size_t(l)].empty()) {
      bottom = false;
      break;
    }
  }
  std::vector<Entry> merged = merge_runs(runs, bottom);

  // Split into target-size output files.
  std::vector<TablePtr> outputs;
  std::vector<Entry> current;
  std::uint64_t current_bytes = 0;
  auto emit = [&]() {
    if (current.empty()) return;
    outputs.push_back(
        std::make_shared<SsTable>(next_table_id_++, level + 1, std::move(current)));
    current = {};
    current_bytes = 0;
  };
  for (auto& e : merged) {
    current_bytes += e.encoded_size();
    current.push_back(std::move(e));
    if (current_bytes >= cfg_.target_file_bytes) emit();
  }
  emit();

  std::uint64_t write_bytes = 0;
  for (const auto& t : outputs) write_bytes += t->data_bytes();
  for (std::uint64_t done = 0; done < write_bytes;) {
    const std::uint64_t chunk = std::min(write_bytes - done, cfg_.compaction_io_chunk);
    co_await dev_.submit(dev::IoType::kWrite, done, chunk);
    done += chunk;
  }
  compaction_write_bytes_ += write_bytes;

  // Install: remove inputs from src, overlapping from dst, add outputs
  // keeping dst sorted by min_key.
  auto in_set = [&](const TablePtr& t, const std::vector<TablePtr>& set) {
    return std::find(set.begin(), set.end(), t) != set.end();
  };
  src.erase(std::remove_if(src.begin(), src.end(),
                           [&](const TablePtr& t) { return in_set(t, inputs); }),
            src.end());
  dst.erase(std::remove_if(dst.begin(), dst.end(),
                           [&](const TablePtr& t) { return in_set(t, overlapping); }),
            dst.end());
  dst.insert(dst.end(), outputs.begin(), outputs.end());
  std::sort(dst.begin(), dst.end(),
            [](const TablePtr& a, const TablePtr& b) { return a->min_key() < b->min_key(); });
  compactions_++;
  work_cv_.notify_all();
}

sim::CoTask<bool> Db::read_block(const SsTable& table, std::uint64_t block) {
  const CacheKey key{table.id(), block};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    cache_hits_++;
    co_return false;
  }
  cache_misses_++;
  co_await dev_.submit(dev::IoType::kRead, block * 4096, 4096);
  lru_.push_front(key);
  cache_[key] = lru_.begin();
  const std::size_t max_entries = std::size_t(cfg_.block_cache_bytes / 4096);
  while (cache_.size() > max_entries && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  co_return true;
}

sim::CoTask<std::optional<Value>> Db::get(std::string key) {
  if (cpu_ != nullptr) {
    co_await cpu_->consume(Time(double(cfg_.get_cpu) * cfg_.cpu_multiplier));
  }
  if (const Entry* e = mem_.get(key)) {
    co_return e->type == EntryType::kPut ? std::optional<Value>(e->value) : std::nullopt;
  }
  if (imm_.has_value()) {
    if (const Entry* e = imm_->get(key)) {
      co_return e->type == EntryType::kPut ? std::optional<Value>(e->value) : std::nullopt;
    }
  }
  // Snapshot candidate tables up front: read_block suspends, and a
  // concurrent compaction may reshape levels_ while we wait. The shared_ptr
  // copies keep the snapshot's tables alive and immutable.
  std::vector<TablePtr> candidates = levels_[0];  // newest first
  for (int l = 1; l < cfg_.max_levels; l++) {
    for (const auto& t : levels_[std::size_t(l)]) {
      if (t->key_in_range(key)) {
        candidates.push_back(t);
        break;  // levels >0 are non-overlapping: only one candidate
      }
    }
  }
  for (const auto& t : candidates) {
    auto [entry, touched] = t->get(key);
    if (touched) co_await read_block(*t, t->block_of(key));
    if (entry != nullptr) {
      co_return entry->type == EntryType::kPut ? std::optional<Value>(entry->value)
                                               : std::nullopt;
    }
  }
  co_return std::nullopt;
}

sim::CoTask<std::vector<std::string>> Db::range_keys(std::string lo, std::string hi,
                                                     std::size_t limit) {
  // Merge all sources logically (index structures are in memory; range scans
  // in the OSD are rare control-path work, so we do not charge per-block
  // reads here).
  std::vector<const std::vector<Entry>*> runs;
  std::vector<Entry> mem_entries = mem_.dump();
  runs.push_back(&mem_entries);
  std::vector<Entry> imm_entries;
  if (imm_.has_value()) {
    imm_entries = imm_->dump();
    runs.push_back(&imm_entries);
  }
  for (const auto& t : levels_[0]) runs.push_back(&t->entries());
  for (int l = 1; l < cfg_.max_levels; l++) {
    for (const auto& t : levels_[std::size_t(l)]) {
      if (t->overlaps(lo, hi.empty() ? t->max_key() : hi)) runs.push_back(&t->entries());
    }
  }
  std::vector<Entry> merged = merge_runs(runs, /*drop_deletes=*/true);
  std::vector<std::string> out;
  for (auto& e : merged) {
    if (e.key < lo) continue;
    if (!hi.empty() && e.key >= hi) break;
    out.push_back(e.key);
    if (out.size() >= limit) break;
  }
  co_await sim::yield(sim_);
  co_return out;
}

void Db::close() {
  closing_ = true;
  work_cv_.notify_all();
}

sim::CoTask<void> Db::drain() {
  while (worker_busy_ || flush_requested_ || pick_compaction_level() >= 0) {
    co_await idle_cv_.wait();
    if (closing_) break;
  }
}

std::uint64_t Db::device_write_bytes() const {
  return wal_.device_bytes() + flush_bytes_ + compaction_write_bytes_;
}

double Db::write_amplification() const {
  if (user_bytes_ == 0) return 0.0;
  return double(device_write_bytes()) / double(user_bytes_);
}

std::size_t Db::table_count() const {
  std::size_t n = 0;
  for (const auto& l : levels_) n += l.size();
  return n;
}

}  // namespace afc::kv
