#include "kv/memtable.h"

#include <cassert>

namespace afc::kv {

struct MemTable::SkipNode {
  Entry entry;
  int height;
  SkipNode* next[1];  // flexible tower; allocated with extra space

  static SkipNode* make(Entry e, int height) {
    const std::size_t sz = sizeof(SkipNode) + sizeof(SkipNode*) * std::size_t(height - 1);
    auto* raw = ::operator new(sz);
    auto* n = new (raw) SkipNode{std::move(e), height, {nullptr}};
    for (int i = 0; i < height; i++) n->next[i] = nullptr;
    return n;
  }
  static void destroy(SkipNode* n) {
    n->~SkipNode();
    ::operator delete(n);
  }
};

MemTable::MemTable(std::uint64_t seed) : rng_(seed) {
  head_ = SkipNode::make(Entry{}, kMaxHeight);
}

MemTable::~MemTable() {
  if (!head_) return;
  SkipNode* n = head_;
  while (n) {
    SkipNode* next = n->next[0];
    SkipNode::destroy(n);
    n = next;
  }
}

MemTable::MemTable(MemTable&& o) noexcept
    : head_(o.head_), height_(o.height_), rng_(o.rng_), bytes_(o.bytes_), count_(o.count_) {
  o.head_ = nullptr;
  o.count_ = 0;
  o.bytes_ = 0;
}

MemTable& MemTable::operator=(MemTable&& o) noexcept {
  if (this != &o) {
    this->~MemTable();
    new (this) MemTable(std::move(o));
  }
  return *this;
}

int MemTable::random_height() {
  int h = 1;
  while (h < kMaxHeight && (rng_.next() & 3) == 0) h++;  // p = 1/4
  return h;
}

MemTable::SkipNode* MemTable::find_greater_or_equal(std::string_view key,
                                                    SkipNode** prev) const {
  SkipNode* x = head_;
  int level = height_ - 1;
  for (;;) {
    SkipNode* next = x->next[level];
    if (next != nullptr && next->entry.key < key) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      level--;
    }
  }
}

void MemTable::put(std::string_view key, Value v, std::uint64_t seq) {
  SkipNode* prev[kMaxHeight];
  for (int i = height_; i < kMaxHeight; i++) prev[i] = head_;
  SkipNode* n = find_greater_or_equal(key, prev);
  if (n != nullptr && n->entry.key == key) {
    bytes_ -= n->entry.encoded_size();
    n->entry.value = std::move(v);
    n->entry.seq = seq;
    n->entry.type = EntryType::kPut;
    bytes_ += n->entry.encoded_size();
    return;
  }
  const int h = random_height();
  if (h > height_) height_ = h;
  Entry e{std::string(key), std::move(v), seq, EntryType::kPut};
  bytes_ += e.encoded_size();
  count_++;
  SkipNode* node = SkipNode::make(std::move(e), h);
  for (int i = 0; i < h; i++) {
    node->next[i] = prev[i]->next[i];
    prev[i]->next[i] = node;
  }
}

void MemTable::del(std::string_view key, std::uint64_t seq) {
  put(key, Value{}, seq);
  // Rewrite the freshly-updated node as a tombstone.
  SkipNode* n = find_greater_or_equal(key, nullptr);
  assert(n != nullptr && n->entry.key == key);
  n->entry.type = EntryType::kDelete;
  n->entry.seq = seq;
}

const Entry* MemTable::get(std::string_view key) const {
  SkipNode* n = find_greater_or_equal(key, nullptr);
  if (n != nullptr && n->entry.key == key) return &n->entry;
  return nullptr;
}

std::vector<Entry> MemTable::dump() const {
  std::vector<Entry> out;
  out.reserve(count_);
  for (SkipNode* n = head_->next[0]; n != nullptr; n = n->next[0]) out.push_back(n->entry);
  return out;
}

const Entry* MemTable::seek(std::string_view from) const {
  SkipNode* n = find_greater_or_equal(from, nullptr);
  return n ? &n->entry : nullptr;
}

const Entry* MemTable::next(const Entry* e) const {
  // Entry is the first member of SkipNode, so recover the node.
  auto* node = reinterpret_cast<const SkipNode*>(e);
  SkipNode* n = node->next[0];
  return n ? &n->entry : nullptr;
}

}  // namespace afc::kv
