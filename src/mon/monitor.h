#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/map.h"
#include "common/stats.h"
#include "common/types.h"
#include "mon/membership.h"
#include "net/messenger.h"
#include "sim/simulation.h"

namespace afc::mon {

/// The cluster monitor (a tiny Paxos-less stand-in for Ceph's mon quorum):
/// the single authority over the membership portion of the cluster map.
/// It never observes OSDs directly — everything it knows arrives as
/// messages over its own (lossy, partitionable) connections:
///
///   * failure reports — an OSD marks a peer down only after
///     `min_reporters` *distinct* OSDs have reported it within
///     `report_ttl` (one flaky link cannot evict a healthy daemon);
///   * flap hysteresis — each mark-down of the same OSD within
///     `flap_window` doubles the quiet period required before the next
///     one, and an OSD continuously down for `down_out_interval` is
///     marked *out* (only then does placement change and data move);
///   * beacons — live OSDs beacon periodically, so a partition-healed
///     daemon is marked up again without restarting; a post-replay boot
///     beacon does the same for restarts;
///   * laggy flags — gray failures: a self-report (op-age watermark) or a
///     reporter quorum (heartbeat RTT watermark) flags an OSD laggy
///     without marking it down; flags expire unless refreshed.
///
/// Every decision bumps the shared map epoch and publishes a MapDeltaMsg
/// to all subscribers over real connections — a partitioned subscriber
/// simply learns late, and epoch fencing (osd/client side) keeps its stale
/// ops from doing harm in the meantime.
class Monitor : public net::Receiver {
 public:
  Monitor(sim::Simulation& sim, cluster::ClusterMap& cmap, const MembershipConfig& cfg);
  ~Monitor() override;

  /// Register the mon -> osd publish connection (call once per OSD, in id
  /// order — publish order is part of the determinism contract).
  void add_osd_subscriber(std::uint32_t osd, net::Connection* conn);
  /// Register a mon -> client publish connection (call in client order).
  void add_client_subscriber(net::Connection* conn);
  /// Ground-truth probe for the false-positive counter: returns true if the
  /// OSD's daemon is actually dead or its links are faulted. A mark-down of
  /// an OSD the probe calls healthy counts in `mon.false_downs`.
  void set_liveness_probe(std::function<bool(std::uint32_t)> probe) {
    liveness_probe_ = std::move(probe);
  }

  sim::CoTask<void> on_message(net::Message m) override;

  /// Report-handling core, public so tests can drive arbitration without a
  /// network: quorum counting, TTL pruning, hysteresis, laggy flags.
  void handle_report(std::uint32_t reporter, std::uint32_t target, bool laggy);
  /// Beacon core (mark-up path), public for tests.
  void handle_beacon(std::uint32_t osd, bool boot);

  /// One monitor decision, for bench/test assertions on detection latency.
  struct Event {
    std::uint32_t osd = 0;
    Time at = 0;
  };
  const std::vector<Event>& markdowns() const { return markdowns_; }
  const std::vector<Event>& markups() const { return markups_; }
  const std::vector<Event>& markouts() const { return markouts_; }

  bool is_down(std::uint32_t osd) const;
  bool is_out(std::uint32_t osd) const;
  bool is_laggy(std::uint32_t osd) const;
  /// Down/out/laggy OSD ids in ascending order (health reporting).
  std::vector<std::uint32_t> down_osds() const;
  std::vector<std::uint32_t> out_osds() const;
  std::vector<std::uint32_t> laggy_osds() const;

  const Counters& counters() const { return counters_; }

  /// Cancel every pending timer (down-out, laggy expiry) for shutdown.
  void close();

 private:
  struct OsdState {
    bool down = false;
    bool out = false;
    bool laggy = false;
    Time down_since = 0;
    Time laggy_refreshed = 0;
    std::vector<Time> markdown_history;  // within flap_window, for backoff
    sim::TimerToken down_out_timer;
    bool down_out_armed = false;
    sim::TimerToken laggy_timer;
    bool laggy_armed = false;
  };
  struct Report {
    std::uint32_t reporter = 0;
    Time at = 0;
  };

  void mark_down(std::uint32_t osd);
  void mark_up(std::uint32_t osd);
  void mark_out(std::uint32_t osd);
  void flag_laggy(std::uint32_t osd);
  void laggy_expire(std::uint32_t osd);
  /// Distinct fresh reporters for `target` after TTL pruning.
  unsigned fresh_reporters(std::vector<Report>& reports) const;
  /// Bump the shared epoch and send the full membership state to every
  /// subscriber (OSDs first, then clients, registration order).
  void publish();
  net::Message make_delta() const;

  sim::Simulation& sim_;
  cluster::ClusterMap& cmap_;
  MembershipConfig cfg_;
  std::vector<OsdState> state_;
  std::vector<std::vector<Report>> dead_reports_;   // indexed by target
  std::vector<std::vector<Report>> laggy_reports_;  // indexed by target
  std::vector<std::pair<std::uint32_t, net::Connection*>> osd_subs_;
  std::vector<net::Connection*> client_subs_;
  std::function<bool(std::uint32_t)> liveness_probe_;
  std::vector<Event> markdowns_;
  std::vector<Event> markups_;
  std::vector<Event> markouts_;
  Counters counters_;
  bool closing_ = false;
};

}  // namespace afc::mon
