#include "mon/monitor.h"

#include <algorithm>

#include "common/stage_names.h"
#include "core/trace.h"
#include "osd/op.h"

namespace afc::mon {

namespace {

/// Wire size of a map delta: fixed header + 4 bytes per listed member.
std::uint64_t delta_size(const osd::MapDeltaMsg& d) {
  return 64 + 4 * (d.down.size() + d.out.size() + d.laggy.size());
}

}  // namespace

Monitor::Monitor(sim::Simulation& sim, cluster::ClusterMap& cmap, const MembershipConfig& cfg)
    : sim_(sim), cmap_(cmap), cfg_(cfg) {
  const std::size_t n = cmap_.crush().osd_count();
  state_.resize(n);
  dead_reports_.resize(n);
  laggy_reports_.resize(n);
}

Monitor::~Monitor() { close(); }

void Monitor::add_osd_subscriber(std::uint32_t osd, net::Connection* conn) {
  osd_subs_.emplace_back(osd, conn);
  if (osd >= state_.size()) {
    state_.resize(osd + 1);
    dead_reports_.resize(osd + 1);
    laggy_reports_.resize(osd + 1);
  }
}

void Monitor::add_client_subscriber(net::Connection* conn) { client_subs_.push_back(conn); }

sim::CoTask<void> Monitor::on_message(net::Message m) {
  switch (m.type) {
    case osd::kFailureReport: {
      const auto& r = static_cast<const osd::FailureReportMsg&>(*m.body);
      handle_report(r.reporter, r.target, r.laggy);
      break;
    }
    case osd::kMonBeacon: {
      const auto& b = static_cast<const osd::MonBeaconMsg&>(*m.body);
      handle_beacon(b.osd, b.boot);
      break;
    }
    case osd::kMapRequest:
      counters_.add("mon.map_requests");
      if (m.reply_to != nullptr) m.reply_to->send(make_delta());
      break;
    default:
      break;
  }
  co_return;
}

unsigned Monitor::fresh_reporters(std::vector<Report>& reports) const {
  const Time now = sim_.now();
  const Time ttl = cfg_.report_ttl;
  std::erase_if(reports, [&](const Report& r) { return r.at + ttl < now; });
  return unsigned(reports.size());  // one entry per distinct reporter
}

void Monitor::handle_report(std::uint32_t reporter, std::uint32_t target, bool laggy) {
  if (target >= state_.size()) return;
  counters_.add(laggy ? "mon.laggy_reports" : "mon.failure_reports");
  auto& reports = laggy ? laggy_reports_[target] : dead_reports_[target];
  bool updated = false;
  for (auto& r : reports) {
    if (r.reporter == reporter) {
      r.at = sim_.now();
      updated = true;
      break;
    }
  }
  if (!updated) reports.push_back({reporter, sim_.now()});

  if (laggy) {
    // A self-report (op-age watermark) is trusted outright; peer RTT
    // observations need the same reporter quorum as failure reports.
    if (reporter == target || fresh_reporters(laggy_reports_[target]) >= cfg_.min_reporters) {
      flag_laggy(target);
    }
    return;
  }

  if (state_[target].down) return;
  if (fresh_reporters(dead_reports_[target]) < cfg_.min_reporters) return;

  // Flap hysteresis: each recent mark-down of this OSD doubles the quiet
  // period required before the next one sticks.
  auto& history = state_[target].markdown_history;
  const Time now = sim_.now();
  std::erase_if(history, [&](Time t) { return t + cfg_.flap_window < now; });
  if (!history.empty()) {
    const Time quiet = cfg_.markdown_backoff
                       << std::min<std::size_t>(history.size() - 1, 6);
    if (now < history.back() + quiet) {
      counters_.add("mon.markdowns_deferred");
      return;
    }
  }
  mark_down(target);
}

void Monitor::handle_beacon(std::uint32_t osd, bool boot) {
  if (osd >= state_.size()) return;
  if (boot) counters_.add("mon.boots");
  if (state_[osd].down) mark_up(osd);
}

void Monitor::mark_down(std::uint32_t osd) {
  OsdState& s = state_[osd];
  s.down = true;
  s.down_since = sim_.now();
  s.markdown_history.push_back(sim_.now());
  cmap_.crush().set_up_only(osd, false);
  markdowns_.push_back({osd, sim_.now()});
  counters_.add("mon.markdowns");
  if (liveness_probe_ && !liveness_probe_(osd)) counters_.add("mon.false_downs");
  dead_reports_[osd].clear();
  if (cfg_.down_out_interval > 0) {
    if (s.down_out_armed) sim_.cancel(s.down_out_timer);
    s.down_out_armed = true;
    s.down_out_timer = sim_.schedule_after(
        cfg_.down_out_interval,
        [this, osd] {
          state_[osd].down_out_armed = false;
          if (!closing_ && state_[osd].down && !state_[osd].out) mark_out(osd);
        },
        "mon.down_out");
  }
  publish();
}

void Monitor::mark_up(std::uint32_t osd) {
  OsdState& s = state_[osd];
  s.down = false;
  if (s.down_out_armed) {
    sim_.cancel(s.down_out_timer);
    s.down_out_armed = false;
  }
  cmap_.crush().set_up_only(osd, true);
  if (s.out) {
    // A returning OSD rejoins placement immediately (auto mark-in).
    s.out = false;
    cmap_.crush().set_in(osd, true);
  }
  dead_reports_[osd].clear();
  markups_.push_back({osd, sim_.now()});
  counters_.add("mon.markups");
  publish();
}

void Monitor::mark_out(std::uint32_t osd) {
  state_[osd].out = true;
  cmap_.crush().set_in(osd, false);
  markouts_.push_back({osd, sim_.now()});
  counters_.add("mon.markouts");
  publish();
}

void Monitor::flag_laggy(std::uint32_t osd) {
  OsdState& s = state_[osd];
  s.laggy_refreshed = sim_.now();
  if (!s.laggy_armed) {
    s.laggy_armed = true;
    s.laggy_timer =
        sim_.schedule_after(cfg_.laggy_ttl, [this, osd] { laggy_expire(osd); }, "mon.laggy");
  }
  if (s.laggy) return;
  s.laggy = true;
  counters_.add("mon.laggy_flags");
  publish();
}

void Monitor::laggy_expire(std::uint32_t osd) {
  OsdState& s = state_[osd];
  s.laggy_armed = false;
  if (closing_ || !s.laggy) return;
  const Time deadline = s.laggy_refreshed + cfg_.laggy_ttl;
  if (sim_.now() < deadline) {
    // Refreshed since the timer was armed: push the expiry out.
    s.laggy_armed = true;
    s.laggy_timer =
        sim_.schedule_at(deadline, [this, osd] { laggy_expire(osd); }, "mon.laggy");
    return;
  }
  s.laggy = false;
  laggy_reports_[osd].clear();
  counters_.add("mon.laggy_cleared");
  publish();
}

net::Message Monitor::make_delta() const {
  auto body = std::make_shared<osd::MapDeltaMsg>();
  body->epoch = cmap_.epoch();
  for (std::uint32_t i = 0; i < state_.size(); i++) {
    if (state_[i].down) body->down.push_back(i);
    if (state_[i].out) body->out.push_back(i);
    if (state_[i].laggy) body->laggy.push_back(i);
  }
  net::Message m;
  m.type = osd::kMapDelta;
  m.size = delta_size(*body);
  m.body = std::move(body);
  return m;
}

void Monitor::publish() {
  cmap_.bump_epoch();
  counters_.add("mon.map_deltas");
  if (auto* tr = trace::Collector::active()) {
    tr->instant(trace::Span{cmap_.epoch(), trace::kMonTrack},
                tr->stage_id(stage::kMapUpdate), sim_.now());
  }
  for (const auto& [id, conn] : osd_subs_) conn->send(make_delta());
  for (net::Connection* conn : client_subs_) conn->send(make_delta());
}

bool Monitor::is_down(std::uint32_t osd) const {
  return osd < state_.size() && state_[osd].down;
}
bool Monitor::is_out(std::uint32_t osd) const {
  return osd < state_.size() && state_[osd].out;
}
bool Monitor::is_laggy(std::uint32_t osd) const {
  return osd < state_.size() && state_[osd].laggy;
}

std::vector<std::uint32_t> Monitor::down_osds() const {
  std::vector<std::uint32_t> v;
  for (std::uint32_t i = 0; i < state_.size(); i++)
    if (state_[i].down) v.push_back(i);
  return v;
}
std::vector<std::uint32_t> Monitor::out_osds() const {
  std::vector<std::uint32_t> v;
  for (std::uint32_t i = 0; i < state_.size(); i++)
    if (state_[i].out) v.push_back(i);
  return v;
}
std::vector<std::uint32_t> Monitor::laggy_osds() const {
  std::vector<std::uint32_t> v;
  for (std::uint32_t i = 0; i < state_.size(); i++)
    if (state_[i].laggy) v.push_back(i);
  return v;
}

void Monitor::close() {
  if (closing_) return;
  closing_ = true;
  for (auto& s : state_) {
    if (s.down_out_armed) {
      sim_.cancel(s.down_out_timer);
      s.down_out_armed = false;
    }
    if (s.laggy_armed) {
      sim_.cancel(s.laggy_timer);
      s.laggy_armed = false;
    }
  }
}

}  // namespace afc::mon
