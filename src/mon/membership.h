#pragma once

#include "common/types.h"

namespace afc::mon {

/// How the cluster learns about failures.
enum class MembershipMode {
  /// The fault injector is an oracle: a crash instantly marks the OSD down
  /// in CRUSH and bumps the epoch for everyone (the pre-membership
  /// behaviour; byte-identical to runs without the subsystem).
  kOracle,
  /// Self-detected: OSDs heartbeat each other over the (lossy,
  /// partitionable) messenger, report suspects to the monitor, and the
  /// monitor drives the map — quorum mark-down, flap hysteresis, lazy
  /// epoch-fenced map distribution. Faults become purely physical.
  kDetected,
};

/// Knobs for heartbeats, the monitor's failure arbitration and gray-failure
/// (laggy) detection. Everything is inert under MembershipMode::kOracle:
/// no timers are scheduled and no RNG is consumed.
struct MembershipConfig {
  MembershipMode mode = MembershipMode::kOracle;

  // --- OSD-side heartbeats ----------------------------------------------
  /// Mean ping interval to each CRUSH-adjacent peer (seeded ±10% jitter so
  /// the fleet never pings in lockstep).
  Time hb_interval = 20 * kMillisecond;
  /// Silence longer than this marks a peer suspect; the OSD reports it to
  /// the monitor (and keeps re-reporting every interval while suspicion
  /// holds, so report freshness survives the monitor's TTL pruning).
  Time hb_grace = 100 * kMillisecond;

  // --- monitor failure arbitration --------------------------------------
  /// Distinct reporters required before the monitor marks an OSD down
  /// (one flaky link must not take a healthy OSD out of service).
  unsigned min_reporters = 2;
  /// Failure reports older than this are discarded when counting
  /// reporters; suspected peers are re-reported each heartbeat interval.
  Time report_ttl = 400 * kMillisecond;
  /// Flapping hysteresis: after a mark-down, a repeat mark-down of the same
  /// OSD within `flap_window` requires an escalating quiet period
  /// (`markdown_backoff` doubled per recent mark-down).
  Time markdown_backoff = 250 * kMillisecond;
  Time flap_window = 5 * kSecond;
  /// An OSD continuously down this long is marked *out* (removed from
  /// placement): only then does data move. 0 disables mark-out.
  Time down_out_interval = 10 * kSecond;
  /// A live OSD beacons the monitor at this interval so a partition-healed
  /// (never-crashed) daemon gets marked up again without restarting.
  Time beacon_interval = 50 * kMillisecond;

  // --- gray failures (alive but slow) ------------------------------------
  /// Peer-observed heartbeat RTT EWMA above this reports the peer laggy.
  Time laggy_rtt = 2 * kMillisecond;
  /// Self check: an op in flight longer than this (oldest inflight receive
  /// timestamp) makes the OSD report *itself* laggy — catches slow-SSD and
  /// journal-stall gray failures that leave heartbeats crisp.
  Time laggy_op_age = 150 * kMillisecond;
  /// A laggy flag not refreshed by new reports expires after this.
  Time laggy_ttl = 500 * kMillisecond;
  /// When set, clients route reads away from a laggy primary to the first
  /// healthy acting member (writes always go to the primary).
  bool shed_laggy_primary = false;

  bool detected() const { return mode == MembershipMode::kDetected; }
};

}  // namespace afc::mon
