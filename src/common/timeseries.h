#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace afc {

/// Accumulates per-interval counters over virtual time (e.g. IOPS each
/// 100 ms) so harnesses can print throughput timelines (paper Fig. 4) and
/// detect fluctuation.
class TimeSeries {
 public:
  TimeSeries() : TimeSeries(100 * kMillisecond) {}
  explicit TimeSeries(Time interval) : interval_(interval) {}

  void add(Time when, double amount = 1.0);

  Time interval() const { return interval_; }
  std::size_t size() const { return points_.size(); }

  /// Value of bucket i, converted to a per-second rate.
  double rate(std::size_t i) const;
  /// Raw accumulated value of bucket i.
  double value(std::size_t i) const { return points_[i]; }

  /// Mean of per-second rates over [from, to) bucket indices.
  double mean_rate(std::size_t from, std::size_t to) const;

  /// Coefficient of variation of the per-second rate over [from, to):
  /// stddev / mean. >~0.2 indicates the fluctuation the paper describes.
  double cov(std::size_t from, std::size_t to) const;

  /// Render "t=0.0s 12345.0, t=0.1s ..." rows; bucket stride for brevity.
  std::string to_string(std::size_t stride = 1) const;

 private:
  Time interval_;
  std::vector<double> points_;
};

}  // namespace afc
