#include "common/interned.h"

namespace afc {

InternPool::Id InternPool::intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) {
    hits_++;
    return it->second;
  }
  misses_++;
  const Id id = Id(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

bool InternPool::find(std::string_view s, Id& id) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return false;
  id = it->second;
  return true;
}

}  // namespace afc
