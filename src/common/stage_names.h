#pragma once

namespace afc {

/// Canonical names for every instrumented boundary of the op pipeline.
/// This is the ONE table shared by the Fig. 3 bench, the trace::Collector's
/// histograms/JSON, and docs/TRACING.md — all three intern or print these
/// exact strings (via InternPool in the collector), so the stage taxonomy
/// cannot drift between bench output, trace files, and documentation.

/// Fig. 3 write-path boundary deltas, indexed by osd::Stage. Entry 0 is the
/// arrival point (not a delta); entries 1..7 are the per-stage latencies the
/// paper's Figure 3 breaks a 4K write into.
inline constexpr const char* kWriteStageNames[] = {
    "message received (dispatch)",
    "(1) OP_WQ dequeue (queue wait)",
    "(2) submit op to PG backend",
    "(3) journal queued (throttles)",
    "(4) journal write complete",
    "(5) commit to PG backend",
    "(6) replica commits processed",
    "(7) ack sent to client",
};
inline constexpr unsigned kWriteStageCount =
    unsigned(sizeof(kWriteStageNames) / sizeof(kWriteStageNames[0]));

/// Span stages beyond the Fig. 3 boundaries: waits and substrate work that
/// the write-path deltas contain but cannot attribute (which device, which
/// queue). One name per instrumented site; see docs/TRACING.md.
namespace stage {
inline constexpr const char* kClientIo = "client.io";             // submit → completion, client side
inline constexpr const char* kNetWire = "net.wire";               // messenger send → delivery
inline constexpr const char* kNetBatch = "net.batch";             // egress batcher: enqueue → frame flush
inline constexpr const char* kDispatchThrottle = "osd.dispatch.throttle";  // client-message cap wait
inline constexpr const char* kQosQueue = "osd.qos.queue";          // dmClock tenant-queue wait
inline constexpr const char* kPgLockWait = "osd.pg_lock.wait";    // PG lock / pending-queue wait
inline constexpr const char* kJournalThrottle = "osd.journal.throttle";    // fs/journal throttles + reserve
inline constexpr const char* kJournalWrite = "journal.write";     // submit → durable on NVRAM
inline constexpr const char* kReplication = "osd.replication";    // repops sent → all commits seen
inline constexpr const char* kWriteOp = "osd.write_op";           // dispatch → client ack (total)
inline constexpr const char* kReadOp = "osd.read_op";             // dispatch → read reply
inline constexpr const char* kFsApply = "fs.apply";               // filestore transaction apply
inline constexpr const char* kKvWrite = "kv.write";               // omap/KV WAL+memtable write
inline constexpr const char* kRtThrottle = "rt.throttle.wait";    // real-threads throttle block
inline constexpr const char* kRtOpQueue = "rt.opwq.wait";         // real-threads op-queue wait

// Fault-injection & recovery markers (instants unless noted; docs/FAULTS.md).
inline constexpr const char* kFaultInject = "fault.inject";       // a FaultPlan event applied
inline constexpr const char* kNetLinkDrop = "net.link_drop";      // lossy link ate a message
inline constexpr const char* kOsdRepRetry = "osd.rep_retry";      // primary resent repops
inline constexpr const char* kClientRetry = "client.retry";       // client resubmitted an op
inline constexpr const char* kJournalReplay = "journal.replay";   // restart re-applied a record
inline constexpr const char* kScrubRepair = "scrub.repair";       // deep scrub repaired a replica

// Membership markers (detected mode only; docs/FAULTS.md "injected vs detected").
inline constexpr const char* kHeartbeat = "osd.heartbeat";        // a peer crossed the grace period
inline constexpr const char* kMapUpdate = "osd.map_update";       // the monitor published a new epoch

// Erasure-coding markers (docs/EC.md).
inline constexpr const char* kEcShardRead = "osd.ec.shard_read";  // span: shard fetch at a holder
inline constexpr const char* kEcReconstruct = "osd.ec.reconstruct";  // degraded read decoded
inline constexpr const char* kEcRebuild = "osd.ec.shard_rebuilt";    // recovery decoded a shard
inline constexpr const char* kEcParityMismatch = "osd.ec.parity_mismatch";  // scrub stripe check failed
}  // namespace stage

}  // namespace afc
