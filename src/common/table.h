#pragma once

#include <string>
#include <vector>

namespace afc {

/// Minimal fixed-column console table used by the bench harnesses to print
/// figure reproductions in an aligned, diff-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Convenience: format cells from doubles with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string kiops(double iops);  // "81.3K"

  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace afc
