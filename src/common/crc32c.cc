#include "common/crc32c.h"

#include <array>

namespace afc {

namespace {

std::array<std::uint32_t, 256> make_table() {
  constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> kTable = make_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace afc
