#include "common/timeseries.h"

#include <cmath>
#include <cstdio>

namespace afc {

void TimeSeries::add(Time when, double amount) {
  const std::size_t bucket = std::size_t(when / interval_);
  if (bucket >= points_.size()) points_.resize(bucket + 1, 0.0);
  points_[bucket] += amount;
}

double TimeSeries::rate(std::size_t i) const {
  return points_[i] * double(kSecond) / double(interval_);
}

double TimeSeries::mean_rate(std::size_t from, std::size_t to) const {
  if (to > points_.size()) to = points_.size();
  if (from >= to) return 0.0;
  double sum = 0.0;
  for (std::size_t i = from; i < to; i++) sum += rate(i);
  return sum / double(to - from);
}

double TimeSeries::cov(std::size_t from, std::size_t to) const {
  if (to > points_.size()) to = points_.size();
  if (from >= to) return 0.0;
  const double mean = mean_rate(from, to);
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (std::size_t i = from; i < to; i++) {
    const double d = rate(i) - mean;
    var += d * d;
  }
  var /= double(to - from);
  return std::sqrt(var) / mean;
}

std::string TimeSeries::to_string(std::size_t stride) const {
  if (stride == 0) stride = 1;
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < points_.size(); i += stride) {
    std::snprintf(buf, sizeof(buf), "t=%.1fs %.0f\n",
                  double(i) * double(interval_) / double(kSecond), rate(i));
    out += buf;
  }
  return out;
}

}  // namespace afc
