#include "common/histogram.h"

#include <bit>

namespace afc {

Histogram::Histogram() : buckets_((64 - kSubBucketBits + 1) * kSubBuckets, 0) {}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return std::size_t(value);
  const int magnitude = std::bit_width(value) - kSubBucketBits;  // >= 1
  const std::uint64_t sub = value >> magnitude;                  // in [kSubBuckets/2? .. kSubBuckets)
  return std::size_t(magnitude) * kSubBuckets + std::size_t(sub);
}

std::uint64_t Histogram::bucket_midpoint(std::size_t index) {
  const std::size_t magnitude = index / kSubBuckets;
  const std::uint64_t sub = index % kSubBuckets;
  if (magnitude == 0) return sub;
  // Bucket covers [sub << magnitude, (sub+1) << magnitude); return midpoint.
  const std::uint64_t lo = sub << magnitude;
  return lo + ((1ull << magnitude) >> 1);
}

void Histogram::record(std::uint64_t value) { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  buckets_[bucket_index(value)] += n;
  count_ += n;
  sum_ += value * n;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = std::uint64_t(q * double(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen >= target) return bucket_midpoint(i);
  }
  return max_;
}

}  // namespace afc
