#pragma once

#include <cstdint>

namespace afc {

/// Virtual time in nanoseconds. All simulated clocks use this unit.
using Time = std::uint64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000;
inline constexpr Time kMillisecond = 1000 * 1000;
inline constexpr Time kSecond = 1000ull * 1000 * 1000;

/// Convert virtual time to floating-point units for reporting.
constexpr double to_ms(Time t) { return double(t) / double(kMillisecond); }
constexpr double to_us(Time t) { return double(t) / double(kMicrosecond); }
constexpr double to_s(Time t) { return double(t) / double(kSecond); }

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * 1024;
inline constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;

}  // namespace afc
