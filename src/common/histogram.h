#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace afc {

/// Log-linear latency histogram (HdrHistogram-style): values are bucketed
/// into power-of-two magnitude groups, each split into `kSubBuckets` linear
/// sub-buckets, giving ~1.5% relative error across the full 64-bit range
/// with a few KiB of memory. Used for all latency reporting.
class Histogram {
 public:
  Histogram();

  void record(std::uint64_t value);
  void record_n(std::uint64_t value, std::uint64_t count);
  void merge(const Histogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }

  /// Value at the given quantile in [0, 1]; representative bucket midpoint.
  std::uint64_t percentile(double q) const;

  double mean_ms() const { return mean() / double(kMillisecond); }
  double p50_ms() const { return double(percentile(0.50)) / double(kMillisecond); }
  double p99_ms() const { return double(percentile(0.99)) / double(kMillisecond); }

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per magnitude
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_midpoint(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace afc
