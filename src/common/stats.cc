#include "common/stats.h"

namespace afc {

std::uint64_t Counters::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string Counters::to_string() const {
  std::string out;
  for (const auto& [k, v] : counters_) {
    out += k;
    out += " = ";
    out += std::to_string(v);
    out += "\n";
  }
  return out;
}

}  // namespace afc
