#include "common/payload.h"

namespace afc {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// Deterministic pattern byte at absolute stream position i of stream `seed`.
std::uint8_t pattern_byte(std::uint64_t seed, std::uint64_t i) {
  return std::uint8_t(mix64(seed + (i >> 3)) >> ((i & 7) * 8));
}

}  // namespace

Payload Payload::pattern(std::uint64_t len, std::uint64_t seed, std::uint64_t stream_off) {
  Payload p;
  p.len_ = len;
  p.seed_ = seed;
  p.off_ = stream_off;
  return p;
}

Payload Payload::bytes(std::vector<std::uint8_t> data) {
  Payload p;
  p.len_ = data.size();
  p.bytes_ = std::move(data);
  return p;
}

std::uint64_t Payload::fingerprint() const {
  if (is_virtual()) {
    return mix64(seed_ ^ mix64(off_ ^ mix64(len_ ^ 0x5bd1e9955bd1e995ull)));
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : *bytes_) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<std::uint8_t> Payload::materialize() const {
  if (!is_virtual()) return *bytes_;
  std::vector<std::uint8_t> out(len_);
  for (std::uint64_t i = 0; i < len_; i++) out[i] = pattern_byte(seed_, off_ + i);
  return out;
}

Payload Payload::slice(std::uint64_t off, std::uint64_t len) const {
  if (off > len_) off = len_;
  if (off + len > len_) len = len_ - off;
  if (is_virtual()) return Payload::pattern(len, seed_, off_ + off);
  return Payload::bytes(std::vector<std::uint8_t>(bytes_->begin() + long(off),
                                                  bytes_->begin() + long(off + len)));
}

bool Payload::content_equals(const Payload& other) const {
  if (len_ != other.len_) return false;
  if (len_ == 0) return true;  // all empty payloads are equal
  if (is_virtual() && other.is_virtual()) return seed_ == other.seed_ && off_ == other.off_;
  if (!is_virtual() && !other.is_virtual()) return *bytes_ == *other.bytes_;
  return materialize() == other.materialize();
}

}  // namespace afc
