#pragma once

#include <cstddef>
#include <cstdint>

namespace afc {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum RFC 3720 (iSCSI) standardised and that Ceph/RocksDB use
/// to guard journal/WAL records. Table-driven, byte at a time: this runs
/// at most a few times per simulated journal record, so simplicity and
/// verifiability beat throughput here.
///
/// `crc` is the running value for incremental use: feed the previous
/// return value back in to extend a checksum over split buffers.
/// `crc32c(b, n)` == `crc32c(b + k, n - k, crc32c(b, k))`.
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t crc = 0);

}  // namespace afc
