#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace afc {

/// Named monotonic counters shared by the simulated subsystems (syscalls
/// issued, KV bytes compacted, journal stalls, ...). Cheap to bump, easy to
/// dump at the end of a run, and the unit tests assert on them to check that
/// an optimization really removed the work it claims to remove.
class Counters {
 public:
  void add(const std::string& name, std::uint64_t n = 1) { counters_[name] += n; }
  std::uint64_t get(const std::string& name) const;
  void clear() { counters_.clear(); }

  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace afc
