#include "common/rng.h"

namespace afc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (splitmix makes this vanishingly unlikely, but
  // a zero seed chain must still work).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return double(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  return lo + next() % span;
}

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mean, double sigma) {
  const double z = normal(0.0, 1.0);
  return mean * std::exp(sigma * z - 0.5 * sigma * sigma);
}

std::uint64_t Rng::zipf(std::uint64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return uniform_int(0, n - 1);
  if (zipf_n_ != n || zipf_theta_ != theta) {
    double zeta = 0.0;
    for (std::uint64_t i = 1; i <= n; i++) zeta += 1.0 / std::pow(double(i), theta);
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zeta_ = zeta;
  }
  // Inverse-CDF by linear walk would be O(n); use the standard rejection-free
  // approximation (Gray et al.) good enough for workload skew.
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = zipf_zeta_;
  const double eta =
      (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - (1.0 / std::pow(2.0, theta)) / zetan);
  const double u = uniform();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  auto v = std::uint64_t(double(n) * std::pow(eta * u - eta + 1.0, alpha));
  if (v >= n) v = n - 1;
  return v;
}

Rng Rng::fork() {
  return Rng(next() ^ 0xa0761d6478bd642full);
}

}  // namespace afc
