#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace afc {

/// String interning pool: maps repeated strings (log format templates,
/// object-name prefixes) to small ids so hot paths avoid re-allocating and
/// re-formatting identical strings. This is the "log cache" mechanism of
/// the paper's non-blocking logging (§3.3): once a log template is interned,
/// emitting it again costs a hash lookup instead of a string construction.
class InternPool {
 public:
  using Id = std::uint32_t;

  /// Intern `s`, returning a stable id. Idempotent.
  Id intern(std::string_view s);

  /// Look up without inserting; returns true and sets `id` on hit.
  bool find(std::string_view s, Id& id) const;

  const std::string& lookup(Id id) const { return strings_[id]; }
  std::size_t size() const { return strings_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, Id> index_;
  std::vector<std::string> strings_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace afc
