#include "common/table.h"

#include <cstdio>

namespace afc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::kiops(double iops) {
  char buf[64];
  if (iops >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fK", iops / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", iops);
  }
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); c++) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); c++)
      if (r[c].size() > widths[c]) widths[c] = r[c].size();

  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); c++) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); c++) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + "\n";
  for (const auto& r : rows_) out += emit_row(r);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace afc
