#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace afc {

/// I/O payload that is either *real bytes* (small metadata / verified test
/// data) or a *virtual pattern* (seed + offset + length, like fio's verify
/// patterns). Benchmarks push terabytes of virtual data without allocating;
/// correctness tests materialize and compare actual bytes. Virtual payloads
/// slice in O(1): byte i of a pattern stream is a pure function of
/// (seed, stream_offset + i), so carving a window out of a 4 MiB virtual
/// extent never materializes it.
class Payload {
 public:
  Payload() = default;

  static Payload pattern(std::uint64_t len, std::uint64_t seed, std::uint64_t stream_off = 0);
  static Payload bytes(std::vector<std::uint8_t> data);
  static Payload zeros(std::uint64_t len) { return pattern(len, 0); }

  std::uint64_t size() const { return len_; }
  bool is_virtual() const { return !bytes_.has_value(); }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t stream_offset() const { return off_; }

  /// Deterministic content hash: FNV-1a over real bytes; O(1) identity mix
  /// for virtual payloads (two virtual payloads hash equal iff same
  /// seed/offset/length, i.e. identical content).
  std::uint64_t fingerprint() const;

  /// Expand to real bytes (deterministic for virtual payloads).
  std::vector<std::uint8_t> materialize() const;

  /// Sub-range [off, off+len) of this payload as a new payload (O(1) for
  /// virtual payloads, copy for real ones).
  Payload slice(std::uint64_t off, std::uint64_t len) const;

  bool content_equals(const Payload& other) const;

 private:
  std::uint64_t len_ = 0;
  std::uint64_t seed_ = 0;  // pattern seed for virtual payloads
  std::uint64_t off_ = 0;   // position within the pattern stream
  std::optional<std::vector<std::uint8_t>> bytes_;
};

}  // namespace afc
