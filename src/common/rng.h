#pragma once

#include <cstdint>
#include <cmath>

namespace afc {

/// Deterministic xoshiro256++ PRNG. Each simulated component owns its own
/// seeded stream so runs are reproducible regardless of scheduling order.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller, scaled to (mean, stddev).
  double normal(double mean, double stddev);

  /// Lognormal-ish heavy tail: mean * exp(sigma * N(0,1) - sigma^2/2).
  double lognormal(double mean, double sigma);

  /// Zipf-distributed rank in [0, n) with exponent theta (0 = uniform).
  std::uint64_t zipf(std::uint64_t n, double theta);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-component seeding).
  Rng fork();

 private:
  std::uint64_t s_[4];
  // Cached zipf normalization (recomputed when (n, theta) changes).
  std::uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zeta_ = 0.0;
};

}  // namespace afc
