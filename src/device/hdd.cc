#include "device/hdd.h"

// HddModel is header-only; this TU anchors nothing but keeps the build list
// uniform (one .cc per module).
namespace afc::dev {}
