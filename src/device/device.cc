#include "device/device.h"

namespace afc::dev {

Device::Device(sim::Simulation& sim, std::string name, unsigned channels)
    : sim_(sim), name_(std::move(name)), channels_(channels), free_channels_(channels) {}

void Device::start(Submit* s) {
  if (s->type_ == IoType::kRead) {
    inflight_reads_++;
  } else {
    inflight_writes_++;
  }
  const Time lat = latency_time(s->type_, s->off_, s->len_, s->stream_);
  if (lat == 0) {
    bus_enqueue(s);
  } else {
    sim_.schedule_after(lat, [this, s] { bus_enqueue(s); }, "dev.latency");
  }
}

void Device::bus_enqueue(Submit* s) {
  if (bus_busy_) {
    bus_queue_.push_back(s);
  } else {
    bus_busy_ = true;
    bus_start(s);
  }
}

void Device::bus_start(Submit* s) {
  const Time xfer = transfer_time(s->type_, s->len_);
  bus_busy_ns_ += xfer;
  sim_.schedule_after(
      xfer,
      [this, s] {
        if (!bus_queue_.empty()) {
          Submit* next = bus_queue_.front();
          bus_queue_.pop_front();
          bus_start(next);
        } else {
          bus_busy_ = false;
        }
        finish(s);
      },
      "dev.bus");
}

void Device::finish(Submit* s) {
  busy_ns_ += sim_.now() - s->t0_;  // approximates channel-held time
  if (s->type_ == IoType::kRead) {
    inflight_reads_--;
    reads_++;
    bytes_read_ += s->len_;
    read_lat_.record(sim_.now() - s->t0_);
  } else {
    inflight_writes_--;
    writes_++;
    bytes_written_ += s->len_;
    write_lat_.record(sim_.now() - s->t0_);
  }
  const auto h = s->handle_;
  // Hand the freed channel to the next queued I/O before resuming the
  // completed one (FIFO service).
  if (!queue_.empty()) {
    Submit* next = queue_.front();
    queue_.pop_front();
    start(next);
  } else {
    free_channels_++;
  }
  h.resume();
}

double Device::utilization() const {
  const Time elapsed = sim_.now();
  if (elapsed == 0) return 0.0;
  const double u = double(busy_ns_) / (double(elapsed) * double(channels_));
  return u > 1.0 ? 1.0 : u;
}

double Device::bus_utilization() const {
  const Time elapsed = sim_.now();
  if (elapsed == 0) return 0.0;
  return double(bus_busy_ns_) / double(elapsed);
}

}  // namespace afc::dev
