#pragma once

#include "device/device.h"

namespace afc::dev {

/// PCIe NVRAM card model (the paper's PMC 8 GB journal device): microsecond
/// latency, deep parallelism, no wear state. The paper notes the journal
/// throttle "has no impact because writing journal (NVRAM) is very fast" —
/// which holds here because service times are ~10x below the SSD's.
class NvramModel : public Device {
 public:
  struct Config {
    unsigned channels = 2;  // concurrent DMA queues, each at bandwidth/2
    Time write_latency = 9 * kMicrosecond;
    Time read_latency = 7 * kMicrosecond;
    std::uint64_t bandwidth = 900 * kMiB;  // bytes/sec, aggregate
  };

  NvramModel(sim::Simulation& sim, std::string name, const Config& cfg)
      : Device(sim, std::move(name), cfg.channels), cfg_(cfg) {}
  NvramModel(sim::Simulation& sim, std::string name)
      : NvramModel(sim, std::move(name), Config{}) {}

 protected:
  Time latency_time(IoType type, std::uint64_t /*offset*/, std::uint64_t /*len*/,
                    unsigned /*stream*/) override {
    return type == IoType::kRead ? cfg_.read_latency : cfg_.write_latency;
  }
  Time transfer_time(IoType /*type*/, std::uint64_t len) override {
    return Time(double(len) / double(cfg_.bandwidth) * double(kSecond));
  }

 private:
  Config cfg_;
};

}  // namespace afc::dev
