#pragma once

#include "device/device.h"

namespace afc::dev {

/// SATA-class flash SSD model (optionally a RAID-0 set of several drives,
/// which is how the paper ties 2-3 SSDs behind each OSD).
///
/// Captured flash behaviours, each of which the paper's analysis leans on:
///  * internal parallelism: per-drive channels; service times independent
///    per channel, so IOPS scales with queue depth until channels saturate;
///  * clean vs. sustained state: once the drive has been written over, every
///    write pays garbage-collection overhead (`sustained_write_factor`) and
///    periodic erase stalls (`gc_pause` every `gc_interval_bytes`);
///  * mixed-pattern interference (FIOS, FAST'12 [15]): a read issued while
///    writes are in flight is delayed behind program operations
///    (`mixed_read_penalty`), the effect the light-weight transaction
///    optimization removes by keeping metadata reads off the write path;
///  * transfer-size dependence: service = fixed op cost + bytes/bandwidth.
class SsdModel : public Device {
 public:
  struct Config {
    unsigned drives = 1;              // RAID-0 width
    unsigned channels_per_drive = 4;  // internal parallelism per drive
    Time read_latency = 90 * kMicrosecond;
    Time write_latency = 80 * kMicrosecond;
    std::uint64_t read_bw_per_drive = 500 * kMiB;   // bytes/sec
    std::uint64_t write_bw_per_drive = 330 * kMiB;  // bytes/sec
    double sustained_write_factor = 6.0;      // small/random writes under GC
    double sustained_seq_factor = 2.0;        // large/streaming writes under GC
    std::uint64_t seq_threshold = 256 * 1024;  // transfer size split
    Time gc_pause = 1500 * kMicrosecond;
    std::uint64_t gc_interval_bytes = 24 * kMiB;  // per drive, sustained only
    Time mixed_read_penalty = 180 * kMicrosecond;
    Time mixed_write_penalty = 30 * kMicrosecond;
    bool sustained = false;
    /// A clean drive flips to sustained after this many bytes are written
    /// (the FTL's pre-erased pool runs out and GC starts). 0 = never (the
    /// run stays in its initial state).
    std::uint64_t clean_budget_bytes = 0;
    /// Multi-stream write support (per-object streams, "Enlightening Flash
    /// Storage to Stream Writes by Objects"): writes carrying a non-zero
    /// stream hint land in per-stream erase blocks, so GC relocates far
    /// less live data. Hinted sustained writes pay `stream_write_factor`
    /// instead of `sustained_write_factor` below the seq threshold, and
    /// only 1/`stream_gc_relief` of their bytes count toward the GC-pause
    /// interval. 0 streams disables awareness (hints are ignored);
    /// unhinted writes are never affected either way.
    unsigned stream_count = 8;
    double stream_write_factor = 2.0;
    double stream_gc_relief = 4.0;
  };

  SsdModel(sim::Simulation& sim, std::string name, const Config& cfg);

  void set_sustained(bool s) { sustained_ = s; }
  bool sustained() const { return sustained_; }
  std::uint64_t gc_stalls() const { return gc_stalls_; }
  std::uint64_t bytes_since_gc() const { return bytes_since_gc_; }
  std::uint64_t stream_writes() const { return stream_writes_; }

  /// The daemon this drive backs crashed and came back (fault injection).
  /// The FTL idles through the downtime and catches up on its deferred
  /// erase work, so the partial progress toward the next GC pause does not
  /// leak into the revived daemon's first writes. Cumulative wear state
  /// (gc_stalls_, clean_written_, sustained_) is physical and survives.
  void note_daemon_restart() { bytes_since_gc_ = 0; }

  /// Latency-outlier injection (fault plans): per-command latency is
  /// multiplied by `f` until reset to 1.0 — a drive whose FTL has gone into
  /// a pathological state, the all-flash "slow disk" the paper's tail
  /// latencies come from. Bandwidth is untouched: the outlier drive still
  /// moves bytes, it just responds late.
  void set_slow_factor(double f) { slow_factor_ = f; }
  double slow_factor() const { return slow_factor_; }
  /// Virtual time at which the clean->sustained transition happened (0 if
  /// it has not).
  Time sustained_since() const { return sustained_since_; }

 protected:
  Time latency_time(IoType type, std::uint64_t offset, std::uint64_t len,
                    unsigned stream) override;
  Time transfer_time(IoType type, std::uint64_t len) override;

 private:
  Config cfg_;
  bool sustained_;
  double slow_factor_ = 1.0;
  std::uint64_t bytes_since_gc_ = 0;
  std::uint64_t gc_stalls_ = 0;
  std::uint64_t clean_written_ = 0;
  std::uint64_t stream_writes_ = 0;
  Time sustained_since_ = 0;
};

}  // namespace afc::dev
