#include "device/nvram.h"

// NvramModel is header-only; this TU anchors the vtable.
namespace afc::dev {}
