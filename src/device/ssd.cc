#include "device/ssd.h"

namespace afc::dev {

SsdModel::SsdModel(sim::Simulation& sim, std::string name, const Config& cfg)
    : Device(sim, std::move(name), cfg.drives * cfg.channels_per_drive),
      cfg_(cfg),
      sustained_(cfg.sustained) {}

Time SsdModel::latency_time(IoType type, std::uint64_t /*offset*/, std::uint64_t len,
                            unsigned stream) {
  if (type == IoType::kRead) {
    double t = double(cfg_.read_latency);
    if (inflight_writes() > 0) t += double(cfg_.mixed_read_penalty);
    return Time(t * slow_factor_);
  }
  if (type == IoType::kFlush) return Time(200.0 * kMicrosecond * slow_factor_);
  if (!sustained_ && cfg_.clean_budget_bytes != 0) {
    clean_written_ += len;
    if (clean_written_ >= cfg_.clean_budget_bytes) {
      // The pre-erased pool is exhausted: GC from here on.
      sustained_ = true;
      sustained_since_ = sim_.now();
    }
  }
  const bool hinted = stream != 0 && cfg_.stream_count != 0;
  if (hinted) stream_writes_++;
  double t = double(cfg_.write_latency);
  if (sustained_) {
    // GC punishes small random writes (full read-modify-write of flash
    // blocks) much harder than large streaming ones. Stream-hinted writes
    // are segregated into per-stream erase blocks: data with one owner and
    // one lifetime invalidates together, so GC relocates little of it.
    const double small_factor =
        hinted ? cfg_.stream_write_factor : cfg_.sustained_write_factor;
    t *= len < cfg_.seq_threshold ? small_factor : cfg_.sustained_seq_factor;
    bytes_since_gc_ +=
        hinted ? std::uint64_t(double(len) / cfg_.stream_gc_relief) : len;
    const std::uint64_t interval = cfg_.gc_interval_bytes * cfg_.drives;
    if (bytes_since_gc_ >= interval) {
      bytes_since_gc_ -= interval;
      gc_stalls_++;
      t += double(cfg_.gc_pause);
    }
  }
  if (inflight_reads() > 0) t += double(cfg_.mixed_write_penalty);
  return Time(t * slow_factor_);
}

Time SsdModel::transfer_time(IoType type, std::uint64_t len) {
  // RAID-0: transfers stripe over all drives, aggregate bandwidth.
  if (type == IoType::kRead) {
    const double bw = double(cfg_.read_bw_per_drive) * cfg_.drives;
    return Time(double(len) / bw * double(kSecond));
  }
  double bw = double(cfg_.write_bw_per_drive) * cfg_.drives;
  if (sustained_) {
    // Steady-state GC consumes a share of the write bandwidth too.
    bw /= len < cfg_.seq_threshold ? 1.5 : cfg_.sustained_seq_factor;
  }
  return Time(double(len) / bw * double(kSecond));
}

}  // namespace afc::dev
