#pragma once

#include "common/rng.h"
#include "device/device.h"

namespace afc::dev {

/// 7.2K-RPM HDD model — the device Ceph's defaults were designed around.
/// Random access pays seek + rotational latency; sequential access (next
/// offset adjacent to the previous I/O's end) streams at media bandwidth.
/// Used to demonstrate the paper's framing: on HDDs the software overheads
/// the paper attacks are invisible because positioning dominates.
class HddModel : public Device {
 public:
  struct Config {
    unsigned queue_depth = 4;  // NCQ
    Time avg_seek = 4200 * kMicrosecond;
    Time avg_rotation = 4100 * kMicrosecond;  // half revolution @7200rpm
    std::uint64_t media_bw = 160 * kMiB;      // bytes/sec
    Time track_switch = 600 * kMicrosecond;
  };

  HddModel(sim::Simulation& sim, std::string name, const Config& cfg, std::uint64_t seed = 42)
      : Device(sim, std::move(name), cfg.queue_depth), cfg_(cfg), rng_(seed) {}
  HddModel(sim::Simulation& sim, std::string name) : HddModel(sim, std::move(name), Config{}) {}

 protected:
  Time latency_time(IoType type, std::uint64_t offset, std::uint64_t len,
                    unsigned /*stream*/) override {
    const bool sequential = offset == next_expected_ && offset != 0;
    next_expected_ = offset + len;
    if (type == IoType::kFlush) return 500 * kMicrosecond;
    if (sequential) {
      // Occasional track switch, otherwise streaming.
      return rng_.chance(0.02) ? cfg_.track_switch : 0;
    }
    const Time seek = Time(rng_.exponential(double(cfg_.avg_seek)));
    const Time rotation = Time(rng_.uniform() * 2.0 * double(cfg_.avg_rotation));
    return seek + rotation;
  }
  Time transfer_time(IoType /*type*/, std::uint64_t len) override {
    return Time(double(len) / double(cfg_.media_bw) * double(kSecond));
  }

 private:
  Config cfg_;
  Rng rng_;
  std::uint64_t next_expected_ = 0;
};

}  // namespace afc::dev
