#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "common/histogram.h"
#include "common/types.h"
#include "sim/simulation.h"

namespace afc::dev {

enum class IoType { kRead, kWrite, kFlush };

/// Base class for simulated block devices, modelled as two coupled
/// resources:
///
///  * `channels` — per-command concurrency (NCQ slots / flash planes):
///    an I/O occupies one channel from admission to completion, which is
///    what gives small random I/O its parallelism and its queueing delay;
///  * the transfer *bus* — one shared server running at the device's
///    aggregate bandwidth: transfers serialize on it, so N concurrent
///    streams sum to the aggregate rate while a single large transfer
///    still gets the full rate (RAID-0 striping).
///
/// Subclasses provide the per-op `latency_time()` (seek/flash program/GC/
/// mixed-pattern penalties) and `transfer_time()` (len / aggregate bw).
/// submit() is a frame-free custom awaiter — devices complete millions of
/// I/Os per simulated run.
class Device {
 public:
  Device(sim::Simulation& sim, std::string name, unsigned channels);
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  class Submit {
   public:
    Submit(Device& d, IoType t, std::uint64_t off, std::uint64_t len, unsigned stream = 0)
        : d_(d), type_(t), off_(off), len_(len), stream_(stream) {}
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      t0_ = d_.sim_.now();
      if (d_.free_channels_ > 0) {
        d_.free_channels_--;
        d_.start(this);
      } else {
        d_.queue_.push_back(this);
      }
    }
    void await_resume() const {}

   private:
    friend class Device;
    Device& d_;
    IoType type_;
    std::uint64_t off_;
    std::uint64_t len_;
    unsigned stream_;
    Time t0_ = 0;
    std::coroutine_handle<> handle_;
  };

  /// Perform one I/O: resumes when the I/O is durable (write) or data is
  /// available (read). Latency includes channel queueing, the model
  /// latency, bus queueing and the transfer itself. `stream` is a write
  /// placement hint (multi-stream SSDs, T10 SBC-4): 0 means "no hint" and
  /// every device model treats it exactly like the pre-stream behaviour;
  /// non-zero ids let stream-aware models (SsdModel) segregate writes by
  /// origin and reward the reduced GC write-amplification.
  Submit submit(IoType type, std::uint64_t offset, std::uint64_t len,
                unsigned stream = 0) {
    return Submit(*this, type, offset, len, stream);
  }

  const std::string& name() const { return name_; }
  unsigned channels() const { return channels_; }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  unsigned inflight_reads() const { return inflight_reads_; }
  unsigned inflight_writes() const { return inflight_writes_; }
  std::size_t queued() const { return queue_.size(); }

  const Histogram& read_latency() const { return read_lat_; }
  const Histogram& write_latency() const { return write_lat_; }

  /// Channel-held time / (elapsed * channels): how busy the device is.
  double utilization() const;
  /// Transfer-bus busy fraction (bandwidth saturation).
  double bus_utilization() const;

 protected:
  /// Positioning / program latency for one I/O once a channel is granted
  /// (in-flight counters include this I/O). `stream` is the placement hint
  /// from submit(); models without stream awareness ignore it.
  virtual Time latency_time(IoType type, std::uint64_t offset, std::uint64_t len,
                            unsigned stream) = 0;
  /// Wire time at full aggregate bandwidth.
  virtual Time transfer_time(IoType type, std::uint64_t len) = 0;

  sim::Simulation& sim_;

 private:
  friend class Submit;
  void start(Submit* s);
  void bus_enqueue(Submit* s);
  void bus_start(Submit* s);
  void finish(Submit* s);

  std::string name_;
  unsigned channels_;
  unsigned free_channels_;
  std::deque<Submit*> queue_;      // waiting for a channel
  bool bus_busy_ = false;
  std::deque<Submit*> bus_queue_;  // waiting for the transfer bus
  unsigned inflight_reads_ = 0;
  unsigned inflight_writes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  Time busy_ns_ = 0;      // channel-held time
  Time bus_busy_ns_ = 0;  // transfer time
  Histogram read_lat_;
  Histogram write_lat_;
};

}  // namespace afc::dev
