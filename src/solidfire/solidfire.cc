#include "solidfire/solidfire.h"

#include <cstdio>
#include <cstdlib>

namespace afc::sf {

SolidFireCluster::SolidFireCluster(Config cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  cfg_.ssd.drives = 10;
  nodes_.resize(cfg_.nodes);
  for (unsigned n = 0; n < cfg_.nodes; n++) {
    auto& node = nodes_[n];
    node.data_cpu = std::make_unique<sim::CpuPool>(sim_, cfg_.data_service_cores);
    node.nvram = std::make_unique<dev::NvramModel>(sim_, "sf.nvram." + std::to_string(n),
                                                   cfg_.nvram);
    node.ssd =
        std::make_unique<dev::SsdModel>(sim_, "sf.ssd." + std::to_string(n), cfg_.ssd);
    node.nvram_room = std::make_unique<sim::Semaphore>(sim_, cfg_.nvram_buffer_bytes);
    node.destage_cv = std::make_unique<sim::CondVar>(sim_);
    sim::spawn(destage_loop(n));
  }
}

SolidFireCluster::~SolidFireCluster() = default;

sim::CoTask<void> SolidFireCluster::chunk_write(std::uint64_t fingerprint) {
  const unsigned home = unsigned(fingerprint % cfg_.nodes);
  const unsigned mirror = (home + 1) % cfg_.nodes;
  SfNode& h = nodes_[home];

  // Data-services pipeline on the home node: hash + compress + dedup check
  // + metadata update.
  co_await h.data_cpu->consume(cfg_.chunk_write_cpu);
  chunk_writes_++;
  if (!dedup_.insert(fingerprint).second) {
    dedup_hits_++;
    co_return;  // duplicate: metadata-only write
  }
  // Double-helix: chunk lands in NVRAM on home and mirror before the ack.
  co_await h.nvram_room->acquire(cfg_.chunk);
  h.pending_destage += cfg_.chunk;
  h.destage_cv->notify_one();
  co_await h.nvram->submit(dev::IoType::kWrite, 0, cfg_.chunk);
  co_await sim::delay(sim_, cfg_.net_hop, "sf.net_hop");
  co_await nodes_[mirror].nvram->submit(dev::IoType::kWrite, 0, cfg_.chunk);
}

sim::CoTask<void> SolidFireCluster::chunk_read(std::uint64_t fingerprint) {
  const unsigned home = unsigned(fingerprint % cfg_.nodes);
  SfNode& h = nodes_[home];
  co_await h.data_cpu->consume(cfg_.chunk_read_cpu);
  co_await h.ssd->submit(dev::IoType::kRead, fingerprint % (1ull << 30), cfg_.chunk);
}

sim::CoTask<void> SolidFireCluster::destage_loop(unsigned node) {
  SfNode& n = nodes_[node];
  for (;;) {
    while (n.pending_destage == 0) co_await n.destage_cv->wait();
    const std::uint64_t bytes = std::min<std::uint64_t>(n.pending_destage, 64 * 1024);
    n.pending_destage -= bytes;
    // Destage is content-addressed: random placement on the SSDs.
    co_await n.ssd->submit(dev::IoType::kWrite, rng_.next() % (1ull << 30), bytes);
    n.nvram_room->release(bytes);
  }
}

sim::CoTask<void> SolidFireCluster::vm_loop(unsigned vm, client::WorkloadSpec spec,
                                            Time stop_at, client::RunStats* sink) {
  Rng rng(cfg_.seed ^ (0x9e3779b97f4a7c15ull * (vm + 1)));
  const std::uint64_t blocks = cfg_.image_size / spec.block_size;
  std::uint64_t cursor = 0;
  const std::uint64_t chunks_per_op = std::max<std::uint64_t>(1, spec.block_size / cfg_.chunk);

  while (sim_.now() < stop_at) {
    const bool is_write = spec.write_fraction >= 1.0 ||
                          (spec.write_fraction > 0.0 && rng.uniform() < spec.write_fraction);
    std::uint64_t block_no;
    if (spec.pattern == client::WorkloadSpec::Pattern::kSequential) {
      block_no = cursor++ % blocks;
    } else {
      block_no = rng.uniform_int(0, blocks - 1);
    }

    const Time issued = sim_.now();
    sim::WaitGroup wg(sim_);
    for (std::uint64_t c = 0; c < chunks_per_op; c++) {
      // Fully random data: fingerprints are effectively unique per write.
      const std::uint64_t fp =
          is_write ? rng.next()
                   : (std::uint64_t(vm + 1) << 48) ^ (block_no * chunks_per_op + c);
      wg.add(1);
      sim::spawn_fn([this, fp, is_write, &wg]() -> sim::CoTask<void> {
        if (is_write) {
          co_await chunk_write(fp);
        } else {
          co_await chunk_read(fp);
        }
        wg.done();
      });
    }
    co_await wg.wait();
    if (sink != nullptr) sink->record(is_write, issued, sim_.now());
  }
}

SolidFireCluster::Result SolidFireCluster::run(const client::WorkloadSpec& spec) {
  Result out;
  if (ran_) return out;
  ran_ = true;
  if (const char* v = std::getenv("AFC_SIM_PROFILE"); v != nullptr && v[0] != '\0' && v[0] != '0') {
    sim_.enable_profiling();
  }
  client::RunStats stats;
  stats.window_start = spec.warmup;
  stats.window_end = spec.warmup + spec.runtime;
  for (unsigned v = 0; v < cfg_.vms; v++) {
    for (unsigned d = 0; d < spec.iodepth; d++) {
      sim::spawn(vm_loop(v * 1000 + d, spec, stats.window_end, &stats));
    }
  }
  sim_.run_until(stats.window_end);
  out.write_iops = stats.write_iops();
  out.read_iops = stats.read_iops();
  out.write_lat_ms = stats.write_lat.mean_ms();
  out.read_lat_ms = stats.read_lat.mean_ms();
  out.dedup_hit_rate = chunk_writes_ == 0 ? 0.0 : double(dedup_hits_) / double(chunk_writes_);
  if (sim_.profiling_enabled()) {
    Counters prof;
    sim_.profile_into(prof);
    std::fprintf(stderr, "--- sim profile ---\n%s", prof.to_string().c_str());
  }
  return out;
}

}  // namespace afc::sf
