#pragma once

#include <memory>
#include <unordered_set>

#include "client/runner.h"
#include "device/nvram.h"
#include "device/ssd.h"
#include "net/link.h"

namespace afc::sf {

/// Behavioural model of the commercial all-flash scale-out array the paper
/// benchmarks against (SolidFire, §4.4 / Fig. 11). Architecture per the
/// paper's description and the related-work section:
///
///  * everything is content-addressed 4 KiB chunks: every write is hashed,
///    compressed and dedup-checked by the node's data-services engine
///    (reserved cores), then double-written to NVRAM on the chunk's home
///    node (placement by content hash) before the ack;
///  * a metadata service maps volume LBAs to chunk hashes (an extra hop the
///    paper contrasts with CRUSH);
///  * because placement is by hash, a sequential volume stream scatters into
///    random per-chunk I/O — the cause of SolidFire's weak sequential
///    numbers and the "client's sequential workload would be random workload
///    in the storage cluster" remark;
///  * non-4K blocks cost one full pipeline pass per 4 KiB chunk, which is
///    why 32K performance collapses relative to 4K.
///
/// The test uses fully random data (as the paper did), so dedup hits are
/// negligible but their cost is still paid.
class SolidFireCluster {
 public:
  struct Config {
    unsigned nodes = 4;
    unsigned data_service_cores = 4;  // reserved per node for the data path
    std::uint64_t chunk = 4096;
    Time chunk_write_cpu = 155 * kMicrosecond;  // hash + compress + dedup + meta
    Time chunk_read_cpu = 60 * kMicrosecond;    // meta lookup + decompress
    Time net_hop = 80 * kMicrosecond;
    std::uint64_t nvram_buffer_bytes = 1 * kGiB;  // per node, pre-destage
    dev::SsdModel::Config ssd;    // 10 SSDs per node
    dev::NvramModel::Config nvram;
    unsigned vms = 16;
    std::uint64_t image_size = 20 * kGiB;
    std::uint64_t seed = 99;
  };

  explicit SolidFireCluster(Config cfg);
  ~SolidFireCluster();

  struct Result {
    double write_iops = 0.0;
    double read_iops = 0.0;
    double write_lat_ms = 0.0;
    double read_lat_ms = 0.0;
    double dedup_hit_rate = 0.0;
  };
  Result run(const client::WorkloadSpec& spec);

  sim::Simulation& simulation() { return sim_; }
  std::uint64_t unique_chunks() const { return dedup_.size(); }

 private:
  struct SfNode {
    std::unique_ptr<sim::CpuPool> data_cpu;
    std::unique_ptr<dev::NvramModel> nvram;
    std::unique_ptr<dev::SsdModel> ssd;
    std::unique_ptr<sim::Semaphore> nvram_room;  // destage backpressure
    std::uint64_t pending_destage = 0;
    std::unique_ptr<sim::CondVar> destage_cv;
  };

  sim::CoTask<void> vm_loop(unsigned vm, client::WorkloadSpec spec, Time stop_at,
                            client::RunStats* sink);
  sim::CoTask<void> chunk_write(std::uint64_t fingerprint);
  sim::CoTask<void> chunk_read(std::uint64_t fingerprint);
  sim::CoTask<void> destage_loop(unsigned node);

  Config cfg_;
  sim::Simulation sim_;
  std::vector<SfNode> nodes_;
  std::unordered_set<std::uint64_t> dedup_;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t chunk_writes_ = 0;
  Rng rng_;
  bool ran_ = false;
};

}  // namespace afc::sf
