#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/trace.h"
#include "device/device.h"
#include "sim/channel.h"
#include "sim/sync.h"

namespace afc::fs {

/// Ceph FileJournal on NVRAM: a ring buffer of encoded transactions written
/// with direct I/O. An entry is *committed* once its (possibly batched)
/// journal write completes; its ring space is freed only after the filestore
/// has applied the transaction. When the filestore falls behind, the ring
/// fills and `reserve()` blocks — the "journal is full / system gets blocked
/// until data is flushed to filestore" stall that shapes the paper's Fig. 10
/// 32K-write fluctuation.
///
/// Record format (the integrity layer): each committed entry is retained in
/// a replayable ring image as a `Record` — sequence number, payload length,
/// CRC32C over the payload, and the encoded transaction itself. The image
/// is host-side state mirroring what the simulated NVRAM holds; its size is
/// independent of the simulated entry size (virtual payloads encode as
/// pattern descriptors). On restart the OSD replays the ring from the last
/// filestore-applied sequence: CRC-verify each record, stop at the first
/// torn or corrupt one, truncate the tail, and hand the survivors back for
/// idempotent re-apply (see `restart()`).
class Journal {
 public:
  struct Config {
    std::uint64_t size_bytes = 2 * kGiB;  // paper: 8 GB NVRAM / 4 OSDs
    std::uint64_t header_bytes = 4096;    // per-write alignment + header
    unsigned max_batch_entries = 32;
  };

  /// One surviving journal record handed back by restart().
  struct ReplayedRecord {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;  // encoded fs::Transaction image
  };

  /// Outcome of a crash-recovery scan of the ring (see restart()).
  struct ReplayResult {
    std::vector<ReplayedRecord> records;  // committed, unapplied, CRC-clean
    std::uint64_t torn_tails = 0;     // scan stopped at a torn record
    std::uint64_t crc_failures = 0;   // scan stopped at a corrupt record
    std::uint64_t truncated = 0;      // further unapplied records dropped
  };

  Journal(sim::Simulation& sim, dev::Device& nvram, const Config& cfg);

  /// Reserve ring space for an entry (blocks while the journal is full).
  sim::CoTask<void> reserve(std::uint64_t bytes);

  /// Free ring space after the filestore applied the entry (entries written
  /// through the legacy byte-count API below; record-mode entries free their
  /// space through mark_applied()).
  void release(std::uint64_t bytes);

  /// Durably write one reserved entry; resumes at commit. Concurrent
  /// submitters are aggregated into one device write (journal batching).
  /// A valid `span` attributes the submit→commit latency to that op in the
  /// trace collector (stage journal.write). If the journal is already
  /// closed the entry is rejected (counted, NOT committed) — a closing
  /// journal must never report durability it cannot provide.
  sim::CoTask<void> write_entry(std::uint64_t bytes, trace::Span span = {});

  /// Record-mode write: like the above, but the encoded transaction `image`
  /// is checksummed and retained in the replayable ring until
  /// mark_applied(). Returns the assigned sequence number, or 0 when the
  /// journal is closed (entry rejected, nothing committed).
  sim::CoTask<std::uint64_t> write_entry(std::uint64_t bytes,
                                         std::vector<std::uint8_t> image,
                                         trace::Span span = {});

  /// The filestore has applied the transaction in record `seq`: drop its
  /// payload, free its ring space. Idempotent; unknown (already-truncated)
  /// sequences are ignored — a stale apply racing a crash-recovery
  /// truncation must not touch an unrelated record.
  void mark_applied(std::uint64_t seq);

  /// Crash-recovery scan, called by the OSD on restart *before* backfill.
  /// Walks retained records in sequence order, skipping applied ones:
  /// CRC-clean records are returned for idempotent re-apply (they remain
  /// retained until mark_applied); the first torn or CRC-failing record
  /// stops the scan, and it plus every later unapplied record is dropped
  /// and its space freed — those writes are lost locally and must come back
  /// via peer backfill.
  ReplayResult restart();

  /// Fault injection (kTornWrite): the queued-but-not-yet-submitted entries
  /// die mid-persist — the first half become durable full records, the next
  /// becomes a *torn* record (full length/CRC in the header, truncated
  /// payload), the rest are lost outright. None of their waiters resume
  /// (the daemon is about to crash; stranded frames are the same
  /// deliberately-leaked parked coroutines as crashed RPC waiters). Batches
  /// already submitted to the NVRAM device still complete — the device
  /// finishes its DMA on supercap. Returns the number of entries affected.
  std::size_t inject_torn_write(std::uint64_t seed);

  /// Fault injection (kBitFlip on journal media): flip one byte in a
  /// seeded-random retained record's payload so its CRC no longer matches.
  /// Returns false when no eligible record is retained.
  bool corrupt_record(std::uint64_t seed);

  /// Stop the writer loop (drain first for clean shutdown). Entries already
  /// queued are still written; new write_entry() calls are rejected.
  void close() { queue_.close(); }

  /// Fault injection: the journal device stops completing writes until sim
  /// time `t` (an NVRAM firmware hiccup / supercap recharge stall). Batches
  /// queue up behind the stall and drain as one burst when it lifts;
  /// reserve() backpressure upstream is unchanged.
  void stall_until(Time t) {
    if (t > stall_until_) stall_until_ = t;
  }
  std::uint64_t injected_stalls() const { return injected_stalls_; }

  std::uint64_t entries_written() const { return entries_; }
  std::uint64_t batches_written() const { return batches_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t full_stalls() const { return space_.blocked_acquires(); }
  Time full_stall_ns() const { return space_.total_wait_ns(); }
  std::uint64_t bytes_in_use() const { return space_.in_use(); }
  std::uint64_t rejected_writes() const { return rejected_writes_; }
  std::uint64_t records_retained() const { return ring_.size(); }
  double average_batch() const {
    return batches_ == 0 ? 0.0 : double(entries_) / double(batches_);
  }

 private:
  /// A committed entry retained in the ring image until applied.
  struct Record {
    std::uint64_t seq = 0;
    std::uint32_t len = 0;  // header: payload length at commit
    std::uint32_t crc = 0;  // header: CRC32C over the full payload
    std::vector<std::uint8_t> payload;
    std::uint64_t ring_bytes = 0;  // simulated entry size (for space accounting)
    bool applied = false;
    bool torn = false;  // persisted only a prefix (payload.size() < len)
  };

  struct Pending {
    std::uint64_t bytes;
    sim::OneShot* done;
    bool record = false;
    std::vector<std::uint8_t> image;  // record mode: encoded transaction
    std::uint64_t seq = 0;            // record mode: assigned at commit
  };

  sim::CoTask<void> writer_loop();
  void append_record(Pending& p);
  Record* find_record(std::uint64_t seq);

  sim::Simulation& sim_;
  dev::Device& nvram_;
  Config cfg_;
  sim::Semaphore space_;
  sim::Channel<Pending*> queue_;
  // Retained records, strictly increasing in seq (gaps allowed: crash
  // truncation never reuses sequence numbers, so a zombie apply completing
  // after a restart can never alias onto a newer record).
  std::deque<Record> ring_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t write_pos_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t rejected_writes_ = 0;
  Time stall_until_ = 0;
  std::uint64_t injected_stalls_ = 0;
};

}  // namespace afc::fs
