#pragma once

#include <cstdint>

#include "core/trace.h"
#include "device/device.h"
#include "sim/channel.h"
#include "sim/sync.h"

namespace afc::fs {

/// Ceph FileJournal on NVRAM: a ring buffer of encoded transactions written
/// with direct I/O. An entry is *committed* once its (possibly batched)
/// journal write completes; its ring space is freed only after the filestore
/// has applied the transaction. When the filestore falls behind, the ring
/// fills and `reserve()` blocks — the "journal is full / system gets blocked
/// until data is flushed to filestore" stall that shapes the paper's Fig. 10
/// 32K-write fluctuation.
class Journal {
 public:
  struct Config {
    std::uint64_t size_bytes = 2 * kGiB;  // paper: 8 GB NVRAM / 4 OSDs
    std::uint64_t header_bytes = 4096;    // per-write alignment + header
    unsigned max_batch_entries = 32;
  };

  Journal(sim::Simulation& sim, dev::Device& nvram, const Config& cfg);

  /// Reserve ring space for an entry (blocks while the journal is full).
  sim::CoTask<void> reserve(std::uint64_t bytes);

  /// Free ring space after the filestore applied the entry.
  void release(std::uint64_t bytes);

  /// Durably write one reserved entry; resumes at commit. Concurrent
  /// submitters are aggregated into one device write (journal batching).
  /// A valid `span` attributes the submit→commit latency to that op in the
  /// trace collector (stage journal.write).
  sim::CoTask<void> write_entry(std::uint64_t bytes, trace::Span span = {});

  /// Stop the writer loop (drain first for clean shutdown).
  void close() { queue_.close(); }

  /// Fault injection: the journal device stops completing writes until sim
  /// time `t` (an NVRAM firmware hiccup / supercap recharge stall). Batches
  /// queue up behind the stall and drain as one burst when it lifts;
  /// reserve() backpressure upstream is unchanged.
  void stall_until(Time t) {
    if (t > stall_until_) stall_until_ = t;
  }
  std::uint64_t injected_stalls() const { return injected_stalls_; }

  std::uint64_t entries_written() const { return entries_; }
  std::uint64_t batches_written() const { return batches_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t full_stalls() const { return space_.blocked_acquires(); }
  Time full_stall_ns() const { return space_.total_wait_ns(); }
  std::uint64_t bytes_in_use() const { return space_.in_use(); }
  double average_batch() const {
    return batches_ == 0 ? 0.0 : double(entries_) / double(batches_);
  }

 private:
  struct Pending {
    std::uint64_t bytes;
    sim::OneShot* done;
  };

  sim::CoTask<void> writer_loop();

  sim::Simulation& sim_;
  dev::Device& nvram_;
  Config cfg_;
  sim::Semaphore space_;
  sim::Channel<Pending*> queue_;
  std::uint64_t write_pos_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t bytes_written_ = 0;
  Time stall_until_ = 0;
  std::uint64_t injected_stalls_ = 0;
};

}  // namespace afc::fs
