#include "fs/filestore.h"

#include <algorithm>

#include "common/rng.h"
#include "common/stage_names.h"

namespace afc::fs {

FileStore::FileStore(sim::Simulation& sim, sim::CpuPool& cpu, dev::Device& data_dev,
                     kv::Db& omap, const Config& cfg, Counters* counters)
    : sim_(sim),
      cpu_(cpu),
      dev_(data_dev),
      omap_(omap),
      cfg_(cfg),
      counters_(counters),
      cache_(cfg.page_cache_pages),
      dirty_sem_(sim, cfg.writeback_limit_bytes),
      wb_parallel_(sim, cfg.writeback_parallelism),
      wb_cv_(sim),
      wb_idle_cv_(sim) {
  sim::spawn(writeback_loop());
}

sim::CoTask<void> FileStore::buffer_write(std::uint64_t bytes) {
  if (bytes == 0) co_return;
  co_await dirty_sem_.acquire(bytes);
  wb_queue_.push_back(bytes);
  wb_cv_.notify_one();
}

sim::CoTask<void> FileStore::writeback_loop() {
  // Dispatcher: issues dirty extents to the device with bounded parallelism
  // (models the kernel flusher threads + request queue depth).
  for (;;) {
    while (wb_queue_.empty() && !closing_) co_await wb_cv_.wait();
    if (closing_ && wb_queue_.empty()) break;
    const std::uint64_t bytes = wb_queue_.front();
    wb_queue_.pop_front();
    co_await wb_parallel_.acquire(1);
    wb_inflight_++;
    const std::uint64_t pos = wb_pos_;
    wb_pos_ += bytes;
    sim::spawn_fn([this, bytes, pos]() -> sim::CoTask<void> {
      co_await dev_.submit(dev::IoType::kWrite, pos, bytes);
      dirty_sem_.release(bytes);
      wb_parallel_.release(1);
      wb_inflight_--;
      if (wb_inflight_ == 0 && wb_queue_.empty()) wb_idle_cv_.notify_all();
    });
  }
  wb_idle_cv_.notify_all();
}

void FileStore::close() {
  closing_ = true;
  wb_cv_.notify_all();
}

sim::CoTask<void> FileStore::drain() {
  while (!wb_queue_.empty() || wb_inflight_ > 0) co_await wb_idle_cv_.wait();
}

bool FileStore::implicitly_exists(const ObjectId& oid) const {
  return cfg_.assume_populated && !objects_.contains(oid);
}

FileStore::Object& FileStore::materialize_object(const ObjectId& oid) {
  if (Object* existing = objects_.find(oid); existing != nullptr) return *existing;
  Object& obj = objects_.get_or_create(oid);
  if (cfg_.assume_populated) {
    // The cluster is pre-filled: this object already holds data and
    // metadata from before the measurement window.
    obj.size = cfg_.populated_object_size;
    obj.extents.emplace(0, store::ExtentMap::make_extent(Payload::pattern(
                               cfg_.populated_object_size, populated_seed(oid))));
    obj.xattrs.emplace("_", kv::Value::virt(std::uint32_t(cfg_.populated_xattr_bytes)));
    obj.xattrs.emplace("snapset", kv::Value::virt(31));
  }
  return obj;
}

sim::CoTask<void> FileStore::charge_syscalls(unsigned n) {
  syscalls_ += n;
  if (counters_ != nullptr) counters_->add("fs.syscalls", n);
  co_await cpu_.consume(Time(double(cfg_.syscall_cpu) * n * cfg_.cpu_multiplier));
}

sim::CoTask<void> FileStore::apply_transaction(const Transaction& tx, bool lightweight) {
  applies_++;
  const Time apply_t0 = sim_.now();
  co_await cpu_.consume(Time(double(cfg_.apply_cpu) * cfg_.cpu_multiplier));
  co_await charge_syscalls(lightweight ? cfg_.syscalls_per_txn_light
                                       : cfg_.syscalls_per_txn_community);
  kv::WriteBatch batch;  // light path accumulates all KV work into one batch
  batch.trace = tx.trace;
  for (const auto& op : tx.ops()) {
    co_await charge_syscalls(lightweight ? cfg_.syscalls_per_op_light
                                         : cfg_.syscalls_per_op_community);
    switch (op.type) {
      case TxOpType::kWrite: {
        Object& obj = materialize_object(op.oid);
        const std::uint64_t len = op.data.size();
        cache_.insert_range(object_hash(op.oid), op.offset, len);
        store::ExtentMap::write_extent(obj, op.offset, op.data);
        data_bytes_written_ += len;
        if (lightweight) {
          co_await buffer_write(len);  // buffered; writeback hits the device
        } else {
          // Community filestore: WBThrottle keeps dirty data tightly bounded
          // (fdatasync pressure so journal trim latency stays sane), which
          // on a sustained SSD makes each apply pay a near-synchronous
          // random write — data plus the filesystem-journal/inode commit the
          // fdatasync drags in.
          co_await dev_.submit(dev::IoType::kWrite, op.offset,
                               len + cfg_.fdatasync_overhead_bytes);
        }
        break;
      }
      case TxOpType::kOmapSetKeys: {
        if (lightweight) {
          for (const auto& [k, v] : op.omap) batch.put(k, v);
        } else {
          for (const auto& [k, v] : op.omap) co_await omap_.put(k, v, tx.trace);
        }
        break;
      }
      case TxOpType::kOmapRmKeyRange: {
        auto keys = co_await omap_.range_keys(op.range_lo, op.range_hi, 4096);
        if (lightweight) {
          for (auto& k : keys) batch.del(std::move(k));
        } else {
          for (auto& k : keys) co_await omap_.del(std::move(k), tx.trace);
        }
        break;
      }
      case TxOpType::kSetAttrs: {
        Object& obj = materialize_object(op.oid);
        for (const auto& [k, v] : op.attrs) obj.xattrs[k] = v;
        cache_.insert(object_hash(op.oid), kMetaPage);
        // xattrs land in the inode and ride the data write's fdatasync; no
        // separate device op in either mode (syscall CPU already charged).
        break;
      }
      case TxOpType::kSetAllocHint: {
        co_await cpu_.consume(Time(double(cfg_.alloc_hint_cpu) * cfg_.cpu_multiplier));
        syscalls_++;
        break;
      }
    }
  }
  if (batch.size() > 0) co_await omap_.write(std::move(batch));
  // fs.apply: CPU + syscalls + data write (or buffering) + KV metadata for
  // the whole transaction.
  if (auto* tr = trace::Collector::active(); tr != nullptr && tx.trace.valid()) {
    tr->complete(tx.trace, tr->stage_id(stage::kFsApply), apply_t0, sim_.now());
  }
}

sim::CoTask<FileStore::ReadResult> FileStore::read(const ObjectId& oid, std::uint64_t off,
                                                   std::uint64_t len, bool want_data) {
  ReadResult result;
  co_await charge_syscalls(1);
  const Object* obj = objects_.find(oid);
  const bool implicit = obj == nullptr && cfg_.assume_populated;
  if (obj == nullptr && !implicit) co_return result;

  const std::uint64_t obj_size = implicit ? cfg_.populated_object_size : obj->size;
  if (off >= obj_size) {
    result.found = true;
    result.length = 0;
    if (want_data) result.data.emplace();
    co_return result;
  }
  const std::uint64_t n = std::min(len, obj_size - off);

  // Charge device reads for non-resident pages.
  const std::uint64_t oh = object_hash(oid);
  const std::uint64_t missing = cache_.missing_pages(oh, off, n);
  if (missing > 0) {
    co_await dev_.submit(dev::IoType::kRead, off, missing * PageCache::kPageSize);
  }
  cache_.insert_range(oh, off, n);

  result.found = true;
  result.length = n;
  if (want_data) {
    if (implicit) {
      result.data = Payload::pattern(n, populated_seed(oid), off).materialize();
    } else {
      result.data = store::ExtentMap::assemble(*obj, off, n);
    }
  }
  co_return result;
}

sim::CoTask<std::optional<kv::Value>> FileStore::getattr(const ObjectId& oid,
                                                         const std::string& name) {
  co_await charge_syscalls(1);
  const std::uint64_t oh = object_hash(oid);
  if (!cache_.lookup(oh, kMetaPage)) {
    metadata_device_reads_++;
    if (counters_ != nullptr) counters_->add("fs.metadata_reads");
    co_await dev_.submit(dev::IoType::kRead, 0, 4096);
    cache_.insert(oh, kMetaPage);
  }
  const Object* obj = objects_.find(oid);
  if (obj == nullptr) {
    if (cfg_.assume_populated) {
      if (name == "_") co_return kv::Value::virt(std::uint32_t(cfg_.populated_xattr_bytes));
      if (name == "snapset") co_return kv::Value::virt(31);
    }
    co_return std::nullopt;
  }
  auto it = obj->xattrs.find(name);
  if (it == obj->xattrs.end()) co_return std::nullopt;
  co_return it->second;
}

sim::CoTask<std::optional<std::uint64_t>> FileStore::stat(const ObjectId& oid) {
  co_await charge_syscalls(1);
  const std::uint64_t oh = object_hash(oid);
  if (!cache_.lookup(oh, kMetaPage)) {
    metadata_device_reads_++;
    if (counters_ != nullptr) counters_->add("fs.metadata_reads");
    co_await dev_.submit(dev::IoType::kRead, 0, 4096);
    cache_.insert(oh, kMetaPage);
  }
  const Object* obj = objects_.find(oid);
  if (obj != nullptr) co_return obj->size;
  if (cfg_.assume_populated) co_return cfg_.populated_object_size;
  co_return std::nullopt;
}

std::uint64_t FileStore::object_size(const ObjectId& oid) const {
  const Object* obj = objects_.find(oid);
  return obj != nullptr ? obj->size : 0;
}

}  // namespace afc::fs
