#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace afc::fs {

/// LRU page cache over 4 KiB pages keyed by (object hash, page index).
/// Models the kernel page cache + dentry/inode caches of the OSD's local
/// filesystem: reads that hit cost no device I/O, and capacity decides
/// whether a "clean" small-image run stays in memory while a "sustained"
/// 80%-full run thrashes — exactly the split that makes community Ceph look
/// better in Fig. 9 (clean) than in Fig. 10 (sustained).
class PageCache {
 public:
  explicit PageCache(std::size_t capacity_pages) : capacity_(capacity_pages) {}

  static constexpr std::uint64_t kPageSize = 4096;

  /// True (and refreshed) if the page is resident.
  bool lookup(std::uint64_t object_hash, std::uint64_t page);

  /// Insert / refresh a page (write-through or read fill).
  void insert(std::uint64_t object_hash, std::uint64_t page);

  /// Lookup helper over a byte range; returns the number of *missing* pages.
  std::uint64_t missing_pages(std::uint64_t object_hash, std::uint64_t offset,
                              std::uint64_t len) const;
  void insert_range(std::uint64_t object_hash, std::uint64_t offset, std::uint64_t len);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Key {
    std::uint64_t obj;
    std::uint64_t page;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::size_t(k.obj * 0x9e3779b97f4a7c15ull ^ k.page);
    }
  };

  std::size_t capacity_;
  std::list<Key> lru_;
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace afc::fs
