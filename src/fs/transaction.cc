#include "fs/transaction.h"

namespace afc::fs {

void Transaction::write(ObjectId oid, std::uint64_t offset, Payload data) {
  TxOp op;
  op.type = TxOpType::kWrite;
  op.oid = std::move(oid);
  op.offset = offset;
  op.data = std::move(data);
  ops_.push_back(std::move(op));
}

void Transaction::omap_setkeys(ObjectId oid,
                               std::vector<std::pair<std::string, kv::Value>> kvs) {
  TxOp op;
  op.type = TxOpType::kOmapSetKeys;
  op.oid = std::move(oid);
  op.omap = std::move(kvs);
  ops_.push_back(std::move(op));
}

void Transaction::omap_rmkeyrange(ObjectId oid, std::string lo, std::string hi) {
  TxOp op;
  op.type = TxOpType::kOmapRmKeyRange;
  op.oid = std::move(oid);
  op.range_lo = std::move(lo);
  op.range_hi = std::move(hi);
  ops_.push_back(std::move(op));
}

void Transaction::setattrs(ObjectId oid,
                           std::vector<std::pair<std::string, kv::Value>> attrs) {
  TxOp op;
  op.type = TxOpType::kSetAttrs;
  op.oid = std::move(oid);
  op.attrs = std::move(attrs);
  ops_.push_back(std::move(op));
}

void Transaction::set_alloc_hint(ObjectId oid) {
  TxOp op;
  op.type = TxOpType::kSetAllocHint;
  op.oid = std::move(oid);
  ops_.push_back(std::move(op));
}

namespace {

// Little-endian primitive writers/readers for the encode()/decode() image.
// The image is host-side data (journal ring contents), never simulated I/O.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(std::uint8_t(v));
  out.push_back(std::uint8_t(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u16(out, std::uint16_t(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_payload(std::vector<std::uint8_t>& out, const Payload& p) {
  if (p.is_virtual()) {
    put_u8(out, 0);
    put_u64(out, p.size());
    put_u64(out, p.seed());
    put_u64(out, p.stream_offset());
  } else {
    put_u8(out, 1);
    auto bytes = p.materialize();
    put_u64(out, bytes.size());
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
}

void put_value(std::vector<std::uint8_t>& out, const kv::Value& v) {
  if (v.is_virtual()) {
    put_u8(out, 0);
    put_u32(out, v.virtual_len);
  } else {
    put_u8(out, 1);
    put_u32(out, std::uint32_t(v.data.size()));
    out.insert(out.end(), v.data.begin(), v.data.end());
  }
}

void put_kvs(std::vector<std::uint8_t>& out,
             const std::vector<std::pair<std::string, kv::Value>>& kvs) {
  put_u16(out, std::uint16_t(kvs.size()));
  for (const auto& [k, v] : kvs) {
    put_str(out, k);
    put_value(out, v);
  }
}

struct Cursor {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || left < n) { ok = false; return false; }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    std::uint8_t v = *p;
    p += 1; left -= 1;
    return v;
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = std::uint16_t(p[0]) | std::uint16_t(p[1]) << 8;
    p += 2; left -= 2;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
    p += 4; left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    p += 8; left -= 8;
    return v;
  }
  std::string str() {
    std::size_t n = u16();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n; left -= n;
    return s;
  }
  Payload payload() {
    std::uint8_t tag = u8();
    if (tag == 0) {
      std::uint64_t len = u64(), seed = u64(), off = u64();
      if (!ok) return {};
      return Payload::pattern(len, seed, off);
    }
    if (tag != 1) { ok = false; return {}; }
    std::uint64_t n = u64();
    if (!take(n)) return {};
    std::vector<std::uint8_t> bytes(p, p + n);
    p += n; left -= n;
    return Payload::bytes(std::move(bytes));
  }
  kv::Value value() {
    std::uint8_t tag = u8();
    if (tag == 0) return kv::Value::virt(u32());
    if (tag != 1) { ok = false; return {}; }
    std::size_t n = u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n; left -= n;
    return kv::Value::real(std::move(s));
  }
  std::vector<std::pair<std::string, kv::Value>> kvs() {
    std::size_t n = u16();
    std::vector<std::pair<std::string, kv::Value>> out;
    out.reserve(ok ? n : 0);
    for (std::size_t i = 0; ok && i < n; ++i) {
      auto k = str();
      auto v = value();
      out.emplace_back(std::move(k), std::move(v));
    }
    return out;
  }
};

}  // namespace

std::vector<std::uint8_t> Transaction::encode() const {
  std::vector<std::uint8_t> out;
  put_u32(out, std::uint32_t(ops_.size()));
  for (const auto& op : ops_) {
    put_u8(out, std::uint8_t(op.type));
    put_u32(out, op.oid.pg);
    put_str(out, op.oid.name);
    put_u64(out, op.offset);
    switch (op.type) {
      case TxOpType::kWrite:
        put_payload(out, op.data);
        break;
      case TxOpType::kOmapSetKeys:
        put_kvs(out, op.omap);
        break;
      case TxOpType::kOmapRmKeyRange:
        put_str(out, op.range_lo);
        put_str(out, op.range_hi);
        break;
      case TxOpType::kSetAttrs:
        put_kvs(out, op.attrs);
        break;
      case TxOpType::kSetAllocHint:
        break;
    }
  }
  return out;
}

std::optional<Transaction> Transaction::decode(const std::uint8_t* data,
                                               std::size_t len) {
  Cursor c{data, len};
  std::uint32_t n = c.u32();
  Transaction tx;
  for (std::uint32_t i = 0; c.ok && i < n; ++i) {
    auto type = TxOpType(c.u8());
    ObjectId oid;
    oid.pg = c.u32();
    oid.name = c.str();
    std::uint64_t offset = c.u64();
    switch (type) {
      case TxOpType::kWrite:
        tx.write(std::move(oid), offset, c.payload());
        break;
      case TxOpType::kOmapSetKeys:
        tx.omap_setkeys(std::move(oid), c.kvs());
        break;
      case TxOpType::kOmapRmKeyRange: {
        auto lo = c.str();
        auto hi = c.str();
        tx.omap_rmkeyrange(std::move(oid), std::move(lo), std::move(hi));
        break;
      }
      case TxOpType::kSetAttrs:
        tx.setattrs(std::move(oid), c.kvs());
        break;
      case TxOpType::kSetAllocHint:
        tx.set_alloc_hint(std::move(oid));
        break;
      default:
        c.ok = false;
        break;
    }
  }
  if (!c.ok || c.left != 0) return std::nullopt;
  return tx;
}

std::uint64_t Transaction::encoded_bytes() const {
  std::uint64_t total = 64;  // transaction header
  for (const auto& op : ops_) {
    total += 32 + op.oid.name.size();
    switch (op.type) {
      case TxOpType::kWrite:
        total += op.data.size();
        break;
      case TxOpType::kOmapSetKeys:
        for (const auto& [k, v] : op.omap) total += k.size() + v.size() + 8;
        break;
      case TxOpType::kOmapRmKeyRange:
        total += op.range_lo.size() + op.range_hi.size();
        break;
      case TxOpType::kSetAttrs:
        for (const auto& [k, v] : op.attrs) total += k.size() + v.size() + 8;
        break;
      case TxOpType::kSetAllocHint:
        total += 16;
        break;
    }
  }
  return total;
}

}  // namespace afc::fs
