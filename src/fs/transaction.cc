#include "fs/transaction.h"

namespace afc::fs {

void Transaction::write(ObjectId oid, std::uint64_t offset, Payload data) {
  TxOp op;
  op.type = TxOpType::kWrite;
  op.oid = std::move(oid);
  op.offset = offset;
  op.data = std::move(data);
  ops_.push_back(std::move(op));
}

void Transaction::omap_setkeys(ObjectId oid,
                               std::vector<std::pair<std::string, kv::Value>> kvs) {
  TxOp op;
  op.type = TxOpType::kOmapSetKeys;
  op.oid = std::move(oid);
  op.omap = std::move(kvs);
  ops_.push_back(std::move(op));
}

void Transaction::omap_rmkeyrange(ObjectId oid, std::string lo, std::string hi) {
  TxOp op;
  op.type = TxOpType::kOmapRmKeyRange;
  op.oid = std::move(oid);
  op.range_lo = std::move(lo);
  op.range_hi = std::move(hi);
  ops_.push_back(std::move(op));
}

void Transaction::setattrs(ObjectId oid,
                           std::vector<std::pair<std::string, kv::Value>> attrs) {
  TxOp op;
  op.type = TxOpType::kSetAttrs;
  op.oid = std::move(oid);
  op.attrs = std::move(attrs);
  ops_.push_back(std::move(op));
}

void Transaction::set_alloc_hint(ObjectId oid) {
  TxOp op;
  op.type = TxOpType::kSetAllocHint;
  op.oid = std::move(oid);
  ops_.push_back(std::move(op));
}

std::uint64_t Transaction::encoded_bytes() const {
  std::uint64_t total = 64;  // transaction header
  for (const auto& op : ops_) {
    total += 32 + op.oid.name.size();
    switch (op.type) {
      case TxOpType::kWrite:
        total += op.data.size();
        break;
      case TxOpType::kOmapSetKeys:
        for (const auto& [k, v] : op.omap) total += k.size() + v.size() + 8;
        break;
      case TxOpType::kOmapRmKeyRange:
        total += op.range_lo.size() + op.range_hi.size();
        break;
      case TxOpType::kSetAttrs:
        for (const auto& [k, v] : op.attrs) total += k.size() + v.size() + 8;
        break;
      case TxOpType::kSetAllocHint:
        total += 16;
        break;
    }
  }
  return total;
}

}  // namespace afc::fs
