#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/payload.h"
#include "core/trace.h"
#include "kv/memtable.h"

namespace afc::fs {

/// Object identity within one OSD's store: the placement-group it hashes to
/// plus its name (e.g. "rbd_data.3.00000000004a").
struct ObjectId {
  std::uint32_t pg = 0;
  std::string name;

  bool operator==(const ObjectId&) const = default;
  auto operator<=>(const ObjectId&) const = default;
};

struct ObjectIdHash {
  std::size_t operator()(const ObjectId& o) const {
    std::size_t h = std::hash<std::string>()(o.name);
    return h ^ (std::size_t(o.pg) * 0x9e3779b97f4a7c15ull);
  }
};

enum class TxOpType : std::uint8_t {
  kWrite,          // OP_WRITE: object data
  kOmapSetKeys,    // OP_OMAP_SETKEYS: PG log + omap into the KV DB
  kOmapRmKeyRange, // PG log trim
  kSetAttrs,       // OP_SETATTRS: xattrs (_ / snapset)
  kSetAllocHint,   // OP_SETALLOCHINT: fallocate hint (removed by AFCeph)
};

struct TxOp {
  TxOpType type{};
  ObjectId oid;
  std::uint64_t offset = 0;
  Payload data;                                              // kWrite
  std::vector<std::pair<std::string, kv::Value>> omap;       // kOmapSetKeys
  std::string range_lo, range_hi;                            // kOmapRmKeyRange
  std::vector<std::pair<std::string, kv::Value>> attrs;       // kSetAttrs
};

/// An ObjectStore transaction, mirroring Fig. 7 of the paper: one client
/// write becomes OP_WRITE + OP_OMAP_SETKEYS (PG log, pg info) +
/// OP_SETATTRS (+ OP_SETALLOCHINT in community Ceph). The journal writes
/// the encoded transaction; the filestore later applies each op.
class Transaction {
 public:
  void write(ObjectId oid, std::uint64_t offset, Payload data);
  void omap_setkeys(ObjectId oid, std::vector<std::pair<std::string, kv::Value>> kvs);
  void omap_rmkeyrange(ObjectId oid, std::string lo, std::string hi);
  void setattrs(ObjectId oid, std::vector<std::pair<std::string, kv::Value>> attrs);
  void set_alloc_hint(ObjectId oid);

  const std::vector<TxOp>& ops() const { return ops_; }
  std::size_t op_count() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Encoded size as journal payload (headers + data + metadata payloads).
  /// This is the *simulated* wire size used for device/throttle accounting;
  /// encode() below produces a separate compact host-side image.
  std::uint64_t encoded_bytes() const;

  /// Serialize to a self-contained byte image the journal can checksum,
  /// retain in its ring and hand back at replay. Virtual payloads encode as
  /// (len, seed, stream_off) — no materialization — so the image stays tiny
  /// regardless of the simulated data size; real payloads encode their
  /// bytes. decode(encode()) reproduces a transaction whose apply writes
  /// identical content.
  std::vector<std::uint8_t> encode() const;

  /// Inverse of encode(). Returns nullopt on any truncated, overlong or
  /// malformed image (replay treats that as a corrupt record).
  static std::optional<Transaction> decode(const std::uint8_t* data, std::size_t len);

  /// Trace attribution for the op this transaction encodes (invalid when
  /// tracing is off); the filestore and KV layers charge their spans to it.
  trace::Span trace;

 private:
  std::vector<TxOp> ops_;
};

}  // namespace afc::fs
