#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/stats.h"
#include "fs/pagecache.h"
#include "fs/transaction.h"
#include "kv/db.h"
#include "sim/cpu.h"
#include "store/object_store.h"

namespace afc::fs {

/// The OSD's local object store: objects are files on a local filesystem
/// (extent map + xattrs here), PG log / omap live in the LSM KV store, and
/// all of it shares one data SSD. Re-creates the behaviours the paper's
/// §2.4/§3.4 analysis rests on:
///  * every apply costs syscalls (CPU) — community Ceph repeats open/stat/
///    write per op, AFCeph's light transactions collapse them;
///  * metadata reads (getattr/stat) hit the page cache or pay a device
///    read — and in sustained state those reads interleave with the write
///    stream (the SSD model charges mixed-pattern penalties);
///  * community omap updates are separate KV puts, light transactions use
///    one WriteBatch;
///  * `assume_populated` simulates an 80%-full cluster: unknown objects
///    exist implicitly with 4 MiB of (virtual) data, so writes are
///    overwrites that need metadata, without allocating per-object state up
///    front.
class FileStore final : public store::ObjectStore {
 public:
  struct Config {
    Time syscall_cpu = 1300;                 // ns per syscall
    unsigned syscalls_per_op_community = 3;  // redundant open/stat/write...
    unsigned syscalls_per_op_light = 1;
    unsigned syscalls_per_txn_community = 2;  // per-txn metadata checks
    unsigned syscalls_per_txn_light = 1;
    Time alloc_hint_cpu = 2500;               // fallocate(FALLOC_FL_KEEP_SIZE)
    Time apply_cpu = 3000;                    // per-txn bookkeeping
    double cpu_multiplier = 1.0;              // allocator tax (tcmalloc ~1.6x)
    std::size_t page_cache_pages = 65536;     // 256 MiB
    bool assume_populated = false;
    std::uint64_t populated_object_size = 4 * kMiB;
    std::uint64_t populated_xattr_bytes = 250;
    std::uint64_t xattr_device_bytes = 4096;  // inode/xattr writeback page
    /// Extra bytes the community path's per-apply fdatasync drags to the
    /// device (filesystem journal + inode block).
    std::uint64_t fdatasync_overhead_bytes = 4096;
    // Buffered-write model: applies dirty pages and return; a background
    // writeback worker pushes dirty extents to the device with bounded
    // parallelism. When dirty data exceeds the limit (vm.dirty_ratio), the
    // apply path blocks — the filestore backlog of the paper's Fig. 4.
    std::uint64_t writeback_limit_bytes = 48 * kMiB;
    unsigned writeback_parallelism = 8;
  };

  /// Pseudo page index used to cache an object's inode/dentry/xattr block.
  static constexpr std::uint64_t kMetaPage = ~std::uint64_t(0);

  FileStore(sim::Simulation& sim, sim::CpuPool& cpu, dev::Device& data_dev, kv::Db& omap,
            const Config& cfg, Counters* counters = nullptr);

  /// Apply a journaled transaction to the backing store. `lightweight`
  /// selects the AFCeph §3.4 path (merged syscalls, batched KV, no extra
  /// xattr writeback I/O).
  sim::CoTask<void> apply_transaction(const Transaction& tx, bool lightweight) override;

  sim::CoTask<ReadResult> read(const ObjectId& oid, std::uint64_t off, std::uint64_t len,
                               bool want_data = true) override;

  sim::CoTask<std::optional<kv::Value>> getattr(const ObjectId& oid,
                                                const std::string& name) override;

  sim::CoTask<std::optional<std::uint64_t>> stat(const ObjectId& oid) override;

  /// Cheap in-memory checks for tests (no simulated cost).
  bool object_in_memory(const ObjectId& oid) const override {
    return objects_.contains(oid);
  }
  std::size_t object_count() const override { return objects_.count(); }
  std::uint64_t object_size(const ObjectId& oid) const override;

  // --- recovery support (control plane; I/O costs charged by the caller) -
  std::vector<ObjectId> objects_in_pg(std::uint32_t pg) const override {
    return objects_.objects_in_pg(pg);
  }
  ObjectExport export_object(const ObjectId& oid) const override {
    return objects_.export_object(oid);
  }
  void remove_object(const ObjectId& oid) override { objects_.remove(oid); }
  std::uint64_t object_fingerprint(const ObjectId& oid) const override {
    return objects_.fingerprint(oid);
  }
  bool corrupt_object(const ObjectId& oid) override { return objects_.corrupt(oid); }
  std::optional<ObjectId> corrupt_some_object(std::uint64_t seed) override {
    return objects_.corrupt_some(seed);
  }
  bool verify_object(const ObjectId& oid) const override { return objects_.verify(oid); }

  kv::Db& omap() { return omap_; }
  PageCache& page_cache() { return cache_; }
  const Config& config() const { return cfg_; }

  bool assume_populated() const override { return cfg_.assume_populated; }
  std::uint64_t populated_object_size() const override {
    return cfg_.populated_object_size;
  }

  /// Stop the writeback worker (flush first via drain()).
  void close() override;
  /// Wait until all dirty data has reached the device.
  sim::CoTask<void> drain() override;
  std::uint64_t dirty_bytes() const override { return dirty_sem_.in_use(); }
  std::uint64_t writeback_stalls() const override {
    return dirty_sem_.blocked_acquires();
  }

  std::uint64_t syscalls() const override { return syscalls_; }
  std::uint64_t metadata_device_reads() const override { return metadata_device_reads_; }
  std::uint64_t applies() const override { return applies_; }
  std::uint64_t data_bytes_written() const override { return data_bytes_written_; }

 private:
  using Object = store::ExtentMap::Object;

  sim::CoTask<void> charge_syscalls(unsigned n);
  Object& materialize_object(const ObjectId& oid);
  bool implicitly_exists(const ObjectId& oid) const;
  static std::uint64_t object_hash(const ObjectId& oid) {
    return store::ExtentMap::object_hash(oid);
  }
  static std::uint64_t populated_seed(const ObjectId& oid) {
    return store::ExtentMap::populated_seed(oid);
  }

  /// Mark `bytes` dirty (blocking if over the writeback limit) and hand
  /// them to the writeback worker.
  sim::CoTask<void> buffer_write(std::uint64_t bytes);
  sim::CoTask<void> writeback_loop();

  sim::Simulation& sim_;
  sim::CpuPool& cpu_;
  dev::Device& dev_;
  kv::Db& omap_;
  Config cfg_;
  Counters* counters_;
  PageCache cache_;

  store::ExtentMap objects_;
  sim::Semaphore dirty_sem_;           // units = dirty bytes allowed
  sim::Semaphore wb_parallel_;         // concurrent writeback I/Os
  std::deque<std::uint64_t> wb_queue_;  // dirty extent sizes awaiting writeback
  sim::CondVar wb_cv_;
  sim::CondVar wb_idle_cv_;
  unsigned wb_inflight_ = 0;
  bool closing_ = false;
  std::uint64_t wb_pos_ = 0;
  std::uint64_t syscalls_ = 0;
  std::uint64_t metadata_device_reads_ = 0;
  std::uint64_t applies_ = 0;
  std::uint64_t data_bytes_written_ = 0;
};

}  // namespace afc::fs
