#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/stats.h"
#include "fs/pagecache.h"
#include "fs/transaction.h"
#include "kv/db.h"
#include "sim/cpu.h"

namespace afc::fs {

/// The OSD's local object store: objects are files on a local filesystem
/// (extent map + xattrs here), PG log / omap live in the LSM KV store, and
/// all of it shares one data SSD. Re-creates the behaviours the paper's
/// §2.4/§3.4 analysis rests on:
///  * every apply costs syscalls (CPU) — community Ceph repeats open/stat/
///    write per op, AFCeph's light transactions collapse them;
///  * metadata reads (getattr/stat) hit the page cache or pay a device
///    read — and in sustained state those reads interleave with the write
///    stream (the SSD model charges mixed-pattern penalties);
///  * community omap updates are separate KV puts, light transactions use
///    one WriteBatch;
///  * `assume_populated` simulates an 80%-full cluster: unknown objects
///    exist implicitly with 4 MiB of (virtual) data, so writes are
///    overwrites that need metadata, without allocating per-object state up
///    front.
class FileStore {
 public:
  struct Config {
    Time syscall_cpu = 1300;                 // ns per syscall
    unsigned syscalls_per_op_community = 3;  // redundant open/stat/write...
    unsigned syscalls_per_op_light = 1;
    unsigned syscalls_per_txn_community = 2;  // per-txn metadata checks
    unsigned syscalls_per_txn_light = 1;
    Time alloc_hint_cpu = 2500;               // fallocate(FALLOC_FL_KEEP_SIZE)
    Time apply_cpu = 3000;                    // per-txn bookkeeping
    double cpu_multiplier = 1.0;              // allocator tax (tcmalloc ~1.6x)
    std::size_t page_cache_pages = 65536;     // 256 MiB
    bool assume_populated = false;
    std::uint64_t populated_object_size = 4 * kMiB;
    std::uint64_t populated_xattr_bytes = 250;
    std::uint64_t xattr_device_bytes = 4096;  // inode/xattr writeback page
    /// Extra bytes the community path's per-apply fdatasync drags to the
    /// device (filesystem journal + inode block).
    std::uint64_t fdatasync_overhead_bytes = 4096;
    // Buffered-write model: applies dirty pages and return; a background
    // writeback worker pushes dirty extents to the device with bounded
    // parallelism. When dirty data exceeds the limit (vm.dirty_ratio), the
    // apply path blocks — the filestore backlog of the paper's Fig. 4.
    std::uint64_t writeback_limit_bytes = 48 * kMiB;
    unsigned writeback_parallelism = 8;
  };

  /// Pseudo page index used to cache an object's inode/dentry/xattr block.
  static constexpr std::uint64_t kMetaPage = ~std::uint64_t(0);

  FileStore(sim::Simulation& sim, sim::CpuPool& cpu, dev::Device& data_dev, kv::Db& omap,
            const Config& cfg, Counters* counters = nullptr);

  /// Apply a journaled transaction to the backing store. `lightweight`
  /// selects the AFCeph §3.4 path (merged syscalls, batched KV, no extra
  /// xattr writeback I/O).
  sim::CoTask<void> apply_transaction(const Transaction& tx, bool lightweight);

  struct ReadResult {
    bool found = false;
    std::uint64_t length = 0;
    std::optional<std::vector<std::uint8_t>> data;  // only if want_data
  };
  /// Read [off, off+len) of an object. `want_data=false` skips
  /// materialization (benchmarks) but still charges the same I/O.
  sim::CoTask<ReadResult> read(const ObjectId& oid, std::uint64_t off, std::uint64_t len,
                               bool want_data = true);

  /// Metadata read (object_info / snapset) — the call community Ceph makes
  /// on the write path. Page-cache hit or one device read.
  sim::CoTask<std::optional<kv::Value>> getattr(const ObjectId& oid, const std::string& name);

  /// stat(2)-equivalent: object existence + size.
  sim::CoTask<std::optional<std::uint64_t>> stat(const ObjectId& oid);

  /// Cheap in-memory checks for tests (no simulated cost).
  bool object_in_memory(const ObjectId& oid) const { return objects_.count(oid) != 0; }
  std::size_t object_count() const { return objects_.size(); }
  std::uint64_t object_size(const ObjectId& oid) const;

  // --- recovery support (control plane; I/O costs charged by the caller) -
  std::vector<ObjectId> objects_in_pg(std::uint32_t pg) const;
  struct ObjectExport {
    std::vector<std::pair<std::uint64_t, Payload>> extents;
    std::vector<std::pair<std::string, kv::Value>> xattrs;
    std::uint64_t size = 0;
  };
  ObjectExport export_object(const ObjectId& oid) const;
  /// Drop an object's in-memory state (recovery: the importer replaces the
  /// whole object so stale extents the source lacks cannot survive a
  /// repair). No simulated cost — the recovery caller charges the I/O.
  void remove_object(const ObjectId& oid) { objects_.erase(oid); }
  /// Content fingerprint over the object's extents + size (scrub).
  std::uint64_t object_fingerprint(const ObjectId& oid) const;
  /// FAILURE INJECTION (tests): silently flip one byte of the object's
  /// first extent, as latent media corruption would. Returns false if the
  /// object has no data.
  bool corrupt_object(const ObjectId& oid);
  /// FAILURE INJECTION (kBitFlip on data media): corrupt_object() on a
  /// seeded-random resident object. Returns the victim, or nullopt when the
  /// store holds no corruptible object.
  std::optional<ObjectId> corrupt_some_object(std::uint64_t seed);
  /// Deep-scrub self-check: every extent's content still matches the
  /// checksum recorded when it was written. True for absent objects
  /// (nothing to contradict). No simulated cost — the scrub caller charges
  /// the device reads.
  bool verify_object(const ObjectId& oid) const;

  kv::Db& omap() { return omap_; }
  PageCache& page_cache() { return cache_; }
  const Config& config() const { return cfg_; }

  /// Stop the writeback worker (flush first via drain()).
  void close();
  /// Wait until all dirty data has reached the device.
  sim::CoTask<void> drain();
  std::uint64_t dirty_bytes() const { return dirty_sem_.in_use(); }
  std::uint64_t writeback_stalls() const { return dirty_sem_.blocked_acquires(); }

  std::uint64_t syscalls() const { return syscalls_; }
  std::uint64_t metadata_device_reads() const { return metadata_device_reads_; }
  std::uint64_t applies() const { return applies_; }
  std::uint64_t data_bytes_written() const { return data_bytes_written_; }

 private:
  struct Extent {
    Payload data;            // length == extent length
    std::uint64_t csum = 0;  // data.fingerprint() recorded at write time
  };
  /// Every legitimate write goes through here so the checksum always
  /// matches; corruption paths bypass it, leaving the csum stale.
  static Extent make_extent(Payload data) {
    const std::uint64_t c = data.fingerprint();
    return Extent{std::move(data), c};
  }
  struct Object {
    std::map<std::uint64_t, Extent> extents;  // by offset, non-overlapping
    std::map<std::string, kv::Value> xattrs;
    std::uint64_t size = 0;
  };

  sim::CoTask<void> charge_syscalls(unsigned n);
  Object& materialize_object(const ObjectId& oid);
  const Object* find_object(const ObjectId& oid) const;
  bool implicitly_exists(const ObjectId& oid) const;
  static std::uint64_t object_hash(const ObjectId& oid);
  /// Synthesized content seed for implicitly-populated objects.
  static std::uint64_t populated_seed(const ObjectId& oid);

  void write_extent(Object& obj, std::uint64_t off, Payload data);

  /// Mark `bytes` dirty (blocking if over the writeback limit) and hand
  /// them to the writeback worker.
  sim::CoTask<void> buffer_write(std::uint64_t bytes);
  sim::CoTask<void> writeback_loop();

  sim::Simulation& sim_;
  sim::CpuPool& cpu_;
  dev::Device& dev_;
  kv::Db& omap_;
  Config cfg_;
  Counters* counters_;
  PageCache cache_;

  std::unordered_map<ObjectId, Object, ObjectIdHash> objects_;
  sim::Semaphore dirty_sem_;           // units = dirty bytes allowed
  sim::Semaphore wb_parallel_;         // concurrent writeback I/Os
  std::deque<std::uint64_t> wb_queue_;  // dirty extent sizes awaiting writeback
  sim::CondVar wb_cv_;
  sim::CondVar wb_idle_cv_;
  unsigned wb_inflight_ = 0;
  bool closing_ = false;
  std::uint64_t wb_pos_ = 0;
  std::uint64_t syscalls_ = 0;
  std::uint64_t metadata_device_reads_ = 0;
  std::uint64_t applies_ = 0;
  std::uint64_t data_bytes_written_ = 0;
};

}  // namespace afc::fs
