#include "fs/journal.h"

#include <vector>

#include "common/stage_names.h"

namespace afc::fs {

Journal::Journal(sim::Simulation& sim, dev::Device& nvram, const Config& cfg)
    : sim_(sim), nvram_(nvram), cfg_(cfg), space_(sim, cfg.size_bytes), queue_(sim) {
  sim::spawn(writer_loop());
}

sim::CoTask<void> Journal::reserve(std::uint64_t bytes) {
  co_await space_.acquire(bytes + cfg_.header_bytes);
}

void Journal::release(std::uint64_t bytes) { space_.release(bytes + cfg_.header_bytes); }

sim::CoTask<void> Journal::write_entry(std::uint64_t bytes, trace::Span span) {
  const Time submit_t0 = sim_.now();
  sim::OneShot done(sim_);
  Pending p{bytes, &done};
  co_await queue_.push(&p);
  co_await done.wait();
  // submit → durable: queueing behind the current batch plus the aggregated
  // NVRAM write this entry rode in.
  if (auto* tr = trace::Collector::active(); tr != nullptr && span.valid()) {
    tr->complete(span, tr->stage_id(stage::kJournalWrite), submit_t0, sim_.now());
  }
}

sim::CoTask<void> Journal::writer_loop() {
  for (;;) {
    auto first = co_await queue_.pop();
    if (!first) break;
    // Aggregate whatever else is queued right now into one direct write.
    std::vector<Pending*> batch{*first};
    while (batch.size() < cfg_.max_batch_entries && !queue_.empty()) {
      auto more = co_await queue_.pop();
      if (!more) break;
      batch.push_back(*more);
    }
    std::uint64_t total = cfg_.header_bytes;
    for (const Pending* p : batch) total += p->bytes;
    if (sim_.now() < stall_until_) {
      // Injected device stall: hold the batch until the stall lifts.
      injected_stalls_++;
      co_await sim::delay(sim_, stall_until_ - sim_.now(), "journal.stall");
    }
    co_await nvram_.submit(dev::IoType::kWrite, write_pos_, total);
    write_pos_ = (write_pos_ + total) % cfg_.size_bytes;
    bytes_written_ += total;
    batches_++;
    entries_ += batch.size();
    for (Pending* p : batch) p->done->set();
  }
}

}  // namespace afc::fs
