#include "fs/journal.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/rng.h"
#include "common/stage_names.h"

namespace afc::fs {

Journal::Journal(sim::Simulation& sim, dev::Device& nvram, const Config& cfg)
    : sim_(sim), nvram_(nvram), cfg_(cfg), space_(sim, cfg.size_bytes), queue_(sim) {
  sim::spawn(writer_loop());
}

sim::CoTask<void> Journal::reserve(std::uint64_t bytes) {
  co_await space_.acquire(bytes + cfg_.header_bytes);
}

void Journal::release(std::uint64_t bytes) { space_.release(bytes + cfg_.header_bytes); }

sim::CoTask<void> Journal::write_entry(std::uint64_t bytes, trace::Span span) {
  if (queue_.closed()) {
    // Closing journal: the entry was reserved but never persisted — it must
    // not be counted as committed (and pushing to a closed channel aborts).
    rejected_writes_++;
    co_return;
  }
  const Time submit_t0 = sim_.now();
  sim::OneShot done(sim_);
  Pending p{bytes, &done};
  co_await queue_.push(&p);
  co_await done.wait();
  // submit → durable: queueing behind the current batch plus the aggregated
  // NVRAM write this entry rode in.
  if (auto* tr = trace::Collector::active(); tr != nullptr && span.valid()) {
    tr->complete(span, tr->stage_id(stage::kJournalWrite), submit_t0, sim_.now());
  }
}

sim::CoTask<std::uint64_t> Journal::write_entry(std::uint64_t bytes,
                                                std::vector<std::uint8_t> image,
                                                trace::Span span) {
  if (queue_.closed()) {
    rejected_writes_++;
    co_return 0;
  }
  const Time submit_t0 = sim_.now();
  sim::OneShot done(sim_);
  Pending p{bytes, &done, /*record=*/true, std::move(image)};
  co_await queue_.push(&p);
  co_await done.wait();
  if (auto* tr = trace::Collector::active(); tr != nullptr && span.valid()) {
    tr->complete(span, tr->stage_id(stage::kJournalWrite), submit_t0, sim_.now());
  }
  co_return p.seq;
}

void Journal::append_record(Pending& p) {
  Record r;
  r.seq = next_seq_++;
  r.len = std::uint32_t(p.image.size());
  r.crc = crc32c(p.image.data(), p.image.size());
  r.payload = std::move(p.image);
  r.ring_bytes = p.bytes;
  ring_.push_back(std::move(r));
  p.seq = ring_.back().seq;
}

Journal::Record* Journal::find_record(std::uint64_t seq) {
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), seq,
      [](const Record& r, std::uint64_t s) { return r.seq < s; });
  if (it == ring_.end() || it->seq != seq) return nullptr;
  return &*it;
}

void Journal::mark_applied(std::uint64_t seq) {
  Record* r = find_record(seq);
  if (r == nullptr || r->applied) return;
  r->applied = true;
  r->payload.clear();
  r->payload.shrink_to_fit();
  space_.release(r->ring_bytes + cfg_.header_bytes);
  while (!ring_.empty() && ring_.front().applied) ring_.pop_front();
}

Journal::ReplayResult Journal::restart() {
  ReplayResult res;
  std::size_t stop = ring_.size();
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Record& r = ring_[i];
    if (r.applied) continue;
    if (r.torn) {
      res.torn_tails++;
      stop = i;
      break;
    }
    if (r.payload.size() != r.len ||
        crc32c(r.payload.data(), r.payload.size()) != r.crc) {
      res.crc_failures++;
      stop = i;
      break;
    }
    res.records.push_back(ReplayedRecord{r.seq, r.payload});
  }
  // Truncate the tail: the stop record and everything after it is dropped.
  // Whatever those entries held is lost locally — backfill's job now.
  for (std::size_t i = stop; i < ring_.size(); ++i) {
    Record& r = ring_[i];
    if (r.applied) continue;  // space already freed by mark_applied
    if (i != stop) res.truncated++;
    space_.release(r.ring_bytes + cfg_.header_bytes);
  }
  ring_.erase(ring_.begin() + std::ptrdiff_t(stop), ring_.end());
  // Sequence numbers are never reused: next_seq_ keeps counting past the
  // truncated tail, so a zombie apply for a dropped record can never alias
  // onto a record written after the restart.
  return res;
}

std::size_t Journal::inject_torn_write(std::uint64_t seed) {
  auto drained = queue_.drain();
  const std::size_t n = drained.size();
  if (n == 0) return 0;
  Rng rng(seed ^ 0x70B17A11ull);
  // The interrupted device write got k_full entries down intact, tore the
  // next one mid-sector, and never reached the rest.
  const std::size_t k_full = n / 2;
  std::size_t idx = 0;
  for (Pending* p : drained) {
    if (!p->record) {
      // Raw (non-record) entry: nothing is retained for it; its space frees
      // here since no apply will ever release it.
      space_.release(p->bytes + cfg_.header_bytes);
      idx++;
      continue;
    }
    if (idx < k_full) {
      append_record(*p);
    } else if (idx == k_full) {
      append_record(*p);
      Record& r = ring_.back();
      r.torn = true;
      const std::size_t keep =
          r.payload.empty() ? 0 : rng.uniform_int(0, r.payload.size() - 1);
      r.payload.resize(keep);
    } else {
      // Never reached the device: lost outright, space freed now.
      space_.release(p->bytes + cfg_.header_bytes);
    }
    idx++;
    // Deliberately no p->done->set(): the daemon dies with this write. The
    // waiters park forever, like RPC waiters stranded by a crash.
  }
  return n;
}

bool Journal::corrupt_record(std::uint64_t seed) {
  std::vector<Record*> eligible;
  for (Record& r : ring_) {
    if (!r.applied && !r.torn && !r.payload.empty()) eligible.push_back(&r);
  }
  if (eligible.empty()) return false;
  Rng rng(seed ^ 0xB17F11Bull);
  Record& r = *eligible[rng.uniform_int(0, eligible.size() - 1)];
  r.payload[rng.uniform_int(0, r.payload.size() - 1)] ^= 0x5a;
  return true;
}

sim::CoTask<void> Journal::writer_loop() {
  for (;;) {
    auto first = co_await queue_.pop();
    if (!first) break;
    // Aggregate whatever else is queued right now into one direct write.
    std::vector<Pending*> batch{*first};
    while (batch.size() < cfg_.max_batch_entries && !queue_.empty()) {
      auto more = co_await queue_.pop();
      if (!more) break;
      batch.push_back(*more);
    }
    std::uint64_t total = cfg_.header_bytes;
    for (const Pending* p : batch) total += p->bytes;
    if (sim_.now() < stall_until_) {
      // Injected device stall: hold the batch until the stall lifts.
      injected_stalls_++;
      co_await sim::delay(sim_, stall_until_ - sim_.now(), "journal.stall");
    }
    co_await nvram_.submit(dev::IoType::kWrite, write_pos_, total);
    write_pos_ = (write_pos_ + total) % cfg_.size_bytes;
    bytes_written_ += total;
    batches_++;
    entries_ += batch.size();
    for (Pending* p : batch) {
      if (p->record) append_record(*p);
      p->done->set();
    }
  }
}

}  // namespace afc::fs
