#include "fs/pagecache.h"

namespace afc::fs {

bool PageCache::lookup(std::uint64_t object_hash, std::uint64_t page) {
  auto it = map_.find(Key{object_hash, page});
  if (it == map_.end()) {
    misses_++;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_++;
  return true;
}

void PageCache::insert(std::uint64_t object_hash, std::uint64_t page) {
  const Key key{object_hash, page};
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
  while (map_.size() > capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

std::uint64_t PageCache::missing_pages(std::uint64_t object_hash, std::uint64_t offset,
                                       std::uint64_t len) const {
  if (len == 0) return 0;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  std::uint64_t missing = 0;
  for (std::uint64_t p = first; p <= last; p++) {
    if (map_.find(Key{object_hash, p}) == map_.end()) missing++;
  }
  return missing;
}

void PageCache::insert_range(std::uint64_t object_hash, std::uint64_t offset,
                             std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; p++) insert(object_hash, p);
}

}  // namespace afc::fs
