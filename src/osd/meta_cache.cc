#include "osd/meta_cache.h"

namespace afc::osd {

std::optional<ObjectMeta> MetaCache::lookup(const fs::ObjectId& oid) {
  auto it = map_.find(oid);
  if (it == map_.end()) {
    misses_++;
    return std::nullopt;
  }
  hits_++;
  lru_.splice(lru_.begin(), lru_, it->second.where);
  return it->second.meta;
}

void MetaCache::insert(const fs::ObjectId& oid, const ObjectMeta& meta) {
  auto it = map_.find(oid);
  if (it != map_.end()) {
    it->second.meta = meta;
    lru_.splice(lru_.begin(), lru_, it->second.where);
    return;
  }
  lru_.push_front(oid);
  map_.emplace(oid, Slot{meta, lru_.begin()});
  while (map_.size() > cfg_.capacity && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

void MetaCache::invalidate(const fs::ObjectId& oid) {
  auto it = map_.find(oid);
  if (it == map_.end()) return;
  lru_.erase(it->second.where);
  map_.erase(it);
}

}  // namespace afc::osd
