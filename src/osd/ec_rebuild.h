#pragma once

#include "cluster/map.h"
#include "osd/osd.h"

namespace afc::osd {

/// Rebuild every shard object of `pgid` at shard position `pos` onto
/// `target` by decode-from-peers: enumerate stripe base names from the
/// surviving positions, export >= k clean source chunks per extent (charged
/// as source reads + wire transfer, like replicated backfill), reconstruct
/// the lost shard with the pool's codec, and install it. Already-identical
/// shards are skipped; extents with fewer than k clean survivors (a torn
/// stripe mid-write) are left for scrub. `osds[i]` must be the OSD with id
/// i (the injector/ClusterSim convention). Returns shard objects rebuilt.
///
/// This is the EC counterpart of Osd::push_pg: replicated recovery copies
/// an object, EC recovery recomputes it.
sim::CoTask<std::uint64_t> ec_rebuild_position(sim::Simulation& sim,
                                               cluster::ClusterMap& cmap,
                                               const std::vector<Osd*>& osds,
                                               std::uint32_t pgid, unsigned pos,
                                               Osd& target);

}  // namespace afc::osd
