#pragma once

#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "cluster/map.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "core/profile.h"
#include "ec/codec.h"
#include "fs/filestore.h"
#include "fs/journal.h"
#include "mon/membership.h"
#include "osd/dout.h"
#include "osd/heartbeat.h"
#include "store/store_config.h"
#include "osd/meta_cache.h"
#include "osd/op.h"
#include "osd/pg.h"
#include "osd/qos.h"
#include "osd/throttle_set.h"

namespace afc::osd {

/// Per-OSD tunables: thread counts and CPU costs of each pipeline stage.
/// Costs marked "alloc-heavy" are multiplied by the allocator tax
/// (tcmalloc ≈ 1.55x) unless the profile selects jemalloc.
struct OsdConfig {
  unsigned shards = 5;             // Ceph 0.94 osd_op_num_shards
  unsigned workers_per_shard = 2;  // osd_op_num_threads_per_shard
  unsigned apply_threads = 2;      // filestore op threads

  Time dispatch_cpu = 45000;          // ns, message decode + PG mapping (alloc-heavy)
  Time prepare_cpu = 110000;           // txn build/encode on the primary (alloc-heavy)
  Time replica_prepare_cpu = 70000;   // (alloc-heavy)
  Time commit_cpu = 15000;             // community finisher work per completion
  Time oplock_cpu = 3000;             // AFCeph inline (OP-lock) completion work
  Time completion_batch_cpu = 4000;   // AFCeph dedicated worker, per event
  Time completion_batch_overhead = 5000;  // per batch
  Time ack_cpu = 25000;               // community ack processing in OP_WQ (alloc-heavy)
  Time fast_ack_cpu = 8000;
  Time read_cpu = 90000;              // read service CPU (alloc-heavy)
  Time repreply_cpu = 12000;

  unsigned log_entries_dispatch = 18;
  unsigned log_entries_replica = 8;
  unsigned log_entries_journal = 5;
  unsigned log_entries_ack = 8;
  unsigned log_entries_read = 18;

  unsigned pg_log_keep = 300;
  unsigned pg_log_trim_every = 64;
  std::uint64_t pg_log_entry_bytes = 180;  // paper: 12~729 bytes
  std::uint64_t pg_info_bytes = 300;
  std::uint64_t attr_oi_bytes = 250;  // "most object metadata under 270 bytes"
  std::uint64_t attr_ss_bytes = 31;

  unsigned completion_batch_max = 64;
  std::uint64_t reply_msg_bytes = 150;
  std::uint64_t repop_header_bytes = 256;

  /// Primary-side replication watchdog: if a replica's commit ack is not
  /// seen within `rep_timeout` ns, resend the subop (up to `rep_retries`
  /// rounds), then give up on the missing peers — ack degraded if at least
  /// `min_size` replicas (pool config) are durable, else fail the op back
  /// to the client with ok=false. 0 disables the watchdog entirely (the
  /// seed behaviour: no timer events are ever scheduled).
  Time rep_timeout = 0;
  unsigned rep_retries = 2;

  /// EC pools only (inert otherwise). Shard-gather reads give a partitioned
  /// (up but unreachable) shard holder this long before falling back to
  /// reconstruction; peers the CRUSH map already marks down are skipped
  /// with no timer at all. CPU costs model the codec's matrix arithmetic.
  Time ec_read_timeout = 10 * kMillisecond;
  Time ec_encode_cpu = 15000;  // ns, k+m GF(256) multiply-accumulate
  Time ec_decode_cpu = 25000;  // ns, adds the k x k matrix inversion

  /// Per-tenant dmClock QoS in front of OP_WQ. Disabled by default: the
  /// scheduler is not constructed and the dispatch path is untouched.
  /// ClusterConfig::qos is the cluster-level (pool) declaration; ClusterSim
  /// plumbs it here for every OSD it builds.
  QosConfig qos;

  /// Failure detection & map distribution (docs/FAULTS.md "injected vs
  /// detected"). Under the default kOracle everything below — heartbeats,
  /// epoch fencing, monitor traffic — is inert: no timers, no RNG, no
  /// messages. ClusterSim plumbs ClusterConfig::membership here.
  mon::MembershipConfig membership;
};

/// One Ceph OSD daemon: messenger dispatch → sharded OP_WQ → PG (lock or
/// pending-queue) → journal (NVRAM) → filestore (SSD + LSM omap), with
/// splay replication to peer OSDs. Every mechanism of the paper exists in
/// both its community and its AFCeph form, selected by core::Profile:
///
///   PG path        : blocking PG lock  | pending queue (Fig. 5)
///   completions    : single finisher under PG lock | OP-lock + batched
///                    dedicated completion worker (Fig. 6)
///   acks           : re-queued through OP_WQ | fast path
///   logging        : blocking single-writer dout | non-blocking multi-writer
///   transactions   : full op set + RMW metadata reads | light transactions
///   throttles      : HDD defaults | SSD-sized
class Osd : public net::Receiver {
 public:
  Osd(sim::Simulation& sim, net::Node& node, dev::Device& journal_dev,
      dev::Device& data_dev, cluster::ClusterMap& cmap, std::uint32_t id,
      const OsdConfig& cfg, const core::Profile& profile,
      const store::StoreConfig& store_cfg, const kv::Db::Config& kv_cfg,
      const ThrottleSet::Config& throttle_cfg, DebugLog::Config log_cfg,
      const fs::Journal::Config& journal_cfg);
  ~Osd() override;
  Osd(const Osd&) = delete;
  Osd& operator=(const Osd&) = delete;

  std::uint32_t id() const { return id_; }
  net::Messenger& messenger() { return msgr_; }
  const net::Messenger& messenger() const { return msgr_; }
  net::Node& node() { return node_; }
  const core::Profile& profile() const { return profile_; }

  /// Instantiate a PG this OSD serves (primary or replica).
  void create_pg(std::uint32_t pgid, std::vector<std::uint32_t> acting);
  Pg* find_pg(std::uint32_t pgid);

  /// Record the connection to a peer OSD (cluster wiring).
  void add_peer(std::uint32_t osd_id, net::Connection* conn);

  sim::CoTask<void> on_message(net::Message m) override;

  // --- recovery / map changes -------------------------------------------
  /// Update a PG's acting set after a CRUSH map change (creates the PG if
  /// this OSD just joined it).
  void set_pg_acting(std::uint32_t pgid, std::vector<std::uint32_t> acting);
  /// Re-replicate one PG's objects to `target` (backfill): charges source
  /// reads, network transfer, and target writes.
  sim::CoTask<std::uint64_t> push_pg(std::uint32_t pgid, Osd& target);
  /// Install one recovered object (charged as a light apply).
  sim::CoTask<void> recover_object(const fs::ObjectId& oid, store::ObjectExport data);
  /// Recovery support: wait until the object's journaled writes have reached
  /// the filestore (public face of the ondisk-read gate; EC shard rebuild
  /// must not export a shard the filestore is still behind on).
  sim::CoTask<void> wait_object_flushed(const fs::ObjectId& oid) {
    return wait_object_readable(oid);
  }
  /// The daemon died (fault injection): its RAM — the op ledger and the
  /// ordered-ack bookkeeping — is gone. Journal and filestore state
  /// survive on media; coroutines already in flight keep running as
  /// zombies whose output is blackholed.
  void on_crash();
  /// The daemon came back: replay the journal ring from the last
  /// filestore-applied sequence (CRC-verified, tail-truncated) so locally
  /// durable writes recover without peer traffic. Called before backfill
  /// re-targets the cluster; backfill then covers only what replay could
  /// not. Completes only when every surviving record has re-applied: the
  /// caller must not mark the OSD up (admit client ops or backfill pushes)
  /// while possibly-stale records are still applying.
  sim::CoTask<void> on_restart();

  // --- membership (MembershipMode::kDetected only) ----------------------
  /// Record this OSD's connection to the monitor (reports, beacons, map
  /// requests travel over it; deltas arrive on the mon's own connection).
  void set_mon_conn(net::Connection* conn) { mon_conn_ = conn; }
  /// Hand the OSD the cluster roster (`osds[i]` has id i) so a primary can
  /// drive backfill / EC rebuild when a monitor delta reshapes its PGs.
  void set_cluster_osds(std::vector<Osd*> osds) { cluster_osds_ = std::move(osds); }
  /// Construct and start the heartbeat agent (no-op under kOracle).
  void start_membership(std::uint64_t seed);
  /// Post-replay boot announcement: resume heartbeats, beacon the monitor
  /// (the detected-mode replacement for the injector's oracle mark-up).
  void announce_boot();
  /// A monitor map delta arrived: adopt the epoch and membership state,
  /// re-derive this OSD's PG acting sets, and — as primary — backfill or
  /// EC-rebuild members that just (re)joined an acting set.
  void apply_map_delta(const MapDeltaMsg& delta);
  std::uint64_t known_epoch() const { return known_epoch_; }
  /// Connection to a peer OSD, or nullptr (heartbeat agent send path).
  net::Connection* peer_conn(std::uint32_t osd_id) {
    auto it = peers_.find(osd_id);
    return it == peers_.end() ? nullptr : it->second;
  }
  /// Sorted union of this OSD's PG acting sets minus itself: who the
  /// heartbeat agent pings.
  std::vector<std::uint32_t> adjacent_peers() const;
  /// Receive timestamp of the oldest op still in flight (0 = none): the
  /// self-laggy watermark (a wedged data path with crisp heartbeats).
  Time oldest_inflight_recv() const;
  /// Send a failure (or laggy) report about `target` to the monitor.
  void report_failure(std::uint32_t target, bool laggy);
  void send_beacon(bool boot);
  HeartbeatAgent* heartbeat() { return hb_.get(); }

  /// Close all internal queues so worker coroutines drain and exit.
  void close();

  // --- instrumentation -------------------------------------------------
  store::ObjectStore& store() { return *store_; }
  fs::Journal& journal() { return journal_; }
  kv::Db& omap_db() { return omap_; }
  DebugLog& dlog() { return dlog_; }
  ThrottleSet& throttles() { return throttles_; }
  MetaCache& meta_cache() { return meta_cache_; }
  Counters& counters() { return counters_; }
  /// The dmClock scheduler, or nullptr when QoS is disabled.
  QosScheduler* qos() { return qos_.get(); }
  const QosScheduler* qos() const { return qos_.get(); }

  const Histogram& stage_delta(unsigned stage) const { return stage_hist_[stage]; }
  const Histogram& write_total_hist() const { return write_total_; }

  std::uint64_t client_writes() const { return client_writes_; }
  std::uint64_t client_reads() const { return client_reads_; }
  std::uint64_t replica_ops() const { return replica_ops_; }
  std::uint64_t pending_defers() const;
  Time pg_lock_wait_ns() const;
  std::uint64_t pg_lock_contended() const;

 private:
  // --- dispatch ---------------------------------------------------------
  sim::CoTask<void> dispatch_client_op(std::shared_ptr<ClientIoMsg> msg,
                                       net::Connection* conn);
  sim::CoTask<void> dispatch_rep_reply(std::shared_ptr<RepReplyMsg> msg);
  void shard_push(WorkItem item);
  /// QoS path only: acquire the message throttles a dispatched op skipped
  /// (they are held until resolution, like the seed path), then shard_push.
  sim::CoTask<void> qos_admit(WorkItem item);
  /// An op resolved (ack / read reply / failure): free its QoS window slot.
  void qos_op_done();

  // --- OP_WQ ------------------------------------------------------------
  sim::CoTask<void> worker_loop(unsigned shard);
  sim::CoTask<void> run_item_community(WorkItem item);
  sim::CoTask<void> run_item_pending_queue(WorkItem item);
  sim::CoTask<void> process_item(WorkItem& item);  // inside PG critical section
  sim::CoTask<void> process_client_write(WorkItem& item);
  sim::CoTask<void> process_client_read(WorkItem& item);
  sim::CoTask<void> process_replica_op(WorkItem& item);
  sim::CoTask<void> process_rep_reply_locked(WorkItem& item);  // community
  sim::CoTask<void> process_ack_locked(WorkItem& item);        // community

  // --- erasure coding (every member inert unless the pool is erasure) ----
  sim::CoTask<void> process_client_write_ec(WorkItem& item);
  sim::CoTask<void> process_client_read_ec(WorkItem& item);
  /// Detached shard-gather for one striped read: the PG critical section is
  /// released first, so a partitioned shard holder's ec_read_timeout never
  /// blocks the PG's other ops.
  sim::CoTask<void> ec_read_gather(OpRef op);
  sim::CoTask<void> serve_shard_read(std::shared_ptr<ShardReadMsg> msg,
                                     net::Connection* conn);
  void handle_shard_read_reply(std::shared_ptr<ShardReadReplyMsg> msg);
  void send_read_reply(OpRef& op, bool ok, std::uint64_t data_len,
                       std::optional<std::vector<std::uint8_t>> data);
  bool osd_up(std::uint32_t osd_id) const;

  // --- metadata ---------------------------------------------------------
  sim::CoTask<ObjectMeta> ensure_object_meta(const fs::ObjectId& oid);

  // --- replication recovery ---------------------------------------------
  void send_rep_op(OpCtx& op, std::uint32_t peer);
  void arm_rep_timer(OpRef& op);
  void disarm_rep_timer(OpCtx& op);
  /// Replication watchdog fired for `op_id`: resend subops to peers still
  /// missing, or — retries exhausted — abandon them and resolve the op
  /// (degraded ack / failure).
  void on_rep_timeout(std::uint64_t op_id);
  /// Resolve an op as failed: reply ok=false, release throttles, account.
  void fail_op(OpRef op);

  // --- membership helpers (kDetected only) -------------------------------
  /// Reject a stale-epoch client op before admission (no throttles held).
  void send_fence_reply(const ClientIoMsg& msg, net::Connection* conn);
  /// Ask the monitor for the current map (once per stuck epoch).
  void request_map();

  // --- journal & completions --------------------------------------------
  struct CompletionEvent {
    enum Kind {
      kCommit,         // primary local journal commit
      kApplied,        // filestore apply finished
      kRepCommit,      // replica commit ack arrived at the primary
      kRepCommitSend,  // replica side: send the commit ack to the primary
    } kind;
    OpRef op;
    std::uint32_t pg;
    std::shared_ptr<RepOpMsg> rep;
    net::Connection* conn;
  };
  sim::CoTask<void> journal_path(OpRef op);
  sim::CoTask<void> replica_journal_path(std::shared_ptr<RepOpMsg> rep,
                                         net::Connection* conn, fs::Transaction txn,
                                         std::uint64_t bytes);
  /// FlashStore (kStoreDirect) primary path: the store's own
  /// queue_transaction is the durability point — no external journal entry,
  /// no separate apply pass.
  sim::CoTask<void> flash_commit_path(OpRef op);
  sim::CoTask<void> flash_replica_path(std::shared_ptr<RepOpMsg> rep,
                                       net::Connection* conn, fs::Transaction txn,
                                       std::uint64_t bytes);
  sim::CoTask<void> finisher_loop();           // community: one, PG lock per event
  sim::CoTask<void> completion_worker_loop();  // AFCeph: batched, no PG lock
  void handle_commit_recorded(OpRef& op);      // common bookkeeping
  sim::CoTask<void> queue_ack(OpRef op);       // community path
  void fast_ack_now(OpRef op);

  // --- filestore apply ---------------------------------------------------
  struct ApplyItem {
    fs::Transaction txn;
    std::uint64_t journal_bytes = 0;
    OpRef op;          // null for replica ops
    fs::ObjectId oid;  // for the ondisk-read gate
    std::uint64_t seq = 0;  // journal record to retire (0 = raw entry)
  };
  sim::CoTask<void> apply_loop();
  sim::CoTask<void> do_apply(ApplyItem item);
  /// Restart-time recovery of one write-ahead ring (the external NVRAM
  /// journal, or a store-internal WAL): CRC-scan, re-apply, retire.
  sim::CoTask<void> replay_journal(fs::Journal& j);
  sim::CoTask<void> replay_records(fs::Journal& j,
                                   std::vector<fs::Journal::ReplayedRecord> records);

  /// Ceph's ondisk_read_lock: a read of an object waits until the object's
  /// in-flight (journaled but not yet applied) writes reach the filestore.
  void note_apply_queued(const fs::ObjectId& oid);
  void note_apply_done(const fs::ObjectId& oid);
  sim::CoTask<void> wait_object_readable(const fs::ObjectId& oid);

  // --- ack delivery -------------------------------------------------------
  void deliver_ack(OpRef op);
  void send_reply_message(OpRef& op);

  sim::CoTask<void> charge_cpu(Time cost, bool alloc_heavy);

  sim::Simulation& sim_;
  net::Node& node_;
  cluster::ClusterMap& cmap_;
  std::uint32_t id_;
  OsdConfig cfg_;
  core::Profile profile_;
  Counters counters_;

  net::Messenger msgr_;
  ThrottleSet throttles_;
  DebugLog dlog_;
  kv::Db omap_;
  std::unique_ptr<store::ObjectStore> store_;
  fs::Journal journal_;
  MetaCache meta_cache_;

  std::unique_ptr<QosScheduler> qos_;  // null unless cfg_.qos.enabled
  std::unique_ptr<ec::Codec> codec_;   // null unless the pool is erasure
  /// In-flight shard gathers, keyed by rid. The ShardGather lives on the
  /// gather coroutine's frame; this map only routes replies to it, so
  /// on_crash() just clears the map (the gather times out as a zombie).
  struct GatherChunk {
    std::uint64_t len = 0;
    std::optional<std::vector<std::uint8_t>> bytes;
  };
  struct ShardGather {
    explicit ShardGather(sim::Simulation& s) : cv(s) {}
    sim::CondVar cv;
    std::map<unsigned, GatherChunk> good;  // shard position -> chunk
    std::set<unsigned> bad;                // missing / corrupt / unreachable
    std::set<unsigned> waiting;            // requests not yet answered
  };
  std::unordered_map<std::uint64_t, ShardGather*> shard_gathers_;
  std::uint64_t next_shard_rid_ = 1;
  std::unordered_map<std::uint32_t, std::unique_ptr<Pg>> pgs_;
  std::unordered_map<std::uint32_t, net::Connection*> peers_;
  std::vector<std::unique_ptr<sim::Channel<WorkItem>>> shard_queues_;
  sim::Channel<CompletionEvent> finisher_q_;
  sim::Channel<CompletionEvent> completion_q_;
  sim::Channel<ApplyItem> apply_q_;

  std::unordered_map<std::uint64_t, OpRef> inflight_;
  std::unordered_map<fs::ObjectId, unsigned, fs::ObjectIdHash> pending_applies_;
  sim::CondVar apply_gate_cv_{sim_};
  /// Per-PG apply sequencing (Ceph's OpSequencer): applies of one PG run
  /// in submission order even with multiple filestore op threads.
  struct ApplySeq {
    bool busy = false;
    std::deque<ApplyItem> pending;
  };
  std::unordered_map<std::uint32_t, ApplySeq> apply_seq_;

  // Ordered-ack delivery (per client): op ids outstanding and acks held
  // back until their predecessors complete.
  struct ClientAckState {
    std::set<std::uint64_t> outstanding;
    std::map<std::uint64_t, OpRef> held;
  };
  std::unordered_map<std::uint64_t, ClientAckState> ack_state_;

  // --- membership state (empty/null under kOracle) ------------------------
  std::unique_ptr<HeartbeatAgent> hb_;
  net::Connection* mon_conn_ = nullptr;
  /// Newest map epoch this daemon has *learned* (lazily, from deltas) — the
  /// fence line for incoming ops. Distinct from cmap_.epoch(), the shared
  /// ground truth a partitioned daemon has not seen yet.
  std::uint64_t known_epoch_ = 1;
  std::uint64_t requested_epoch_ = 0;  // map-request dedup per stuck epoch
  std::vector<bool> known_down_;   // from the last applied delta
  std::vector<bool> known_laggy_;
  std::vector<Osd*> cluster_osds_;  // roster for delta-driven backfill

  Histogram stage_hist_[kStageCount];
  Histogram write_total_;
  std::uint64_t client_writes_ = 0;
  std::uint64_t client_reads_ = 0;
  std::uint64_t replica_ops_ = 0;
  bool closing_ = false;
};

}  // namespace afc::osd
