#include "osd/ec_rebuild.h"

#include <map>
#include <set>

#include "ec/codec.h"
#include "ec/layout.h"

namespace afc::osd {

namespace {

/// Find the extent at exactly `off` in an export (extent maps of one stripe
/// line up across shards: every shard writes the same shard-space offsets).
const Payload* extent_at(const fs::FileStore::ObjectExport& exp, std::uint64_t off) {
  for (const auto& [eoff, pay] : exp.extents)
    if (eoff == off) return &pay;
  return nullptr;
}

}  // namespace

sim::CoTask<std::uint64_t> ec_rebuild_position(sim::Simulation& sim,
                                               cluster::ClusterMap& cmap,
                                               const std::vector<Osd*>& osds,
                                               std::uint32_t pgid, unsigned pos,
                                               Osd& target) {
  const unsigned k = cmap.ec_k();
  const unsigned m = cmap.ec_m();
  ec::Codec codec(k, m);
  const std::vector<std::uint32_t> acting = cmap.acting(pgid);
  if (acting.size() < std::size_t(k) + m) co_return 0;

  // Every stripe that has a shard on any surviving position needs its `pos`
  // shard present at the target.
  std::set<std::string> bases;
  for (unsigned p = 0; p < k + m; p++) {
    if (p == pos) continue;
    const std::uint32_t holder = acting[p];
    if (holder == cluster::ClusterMap::kNoOsd || holder >= osds.size()) continue;
    if (osds[holder] == nullptr) continue;
    for (const auto& oid : osds[holder]->store().objects_in_pg(pgid))
      if (auto sn = ec::parse_shard(oid.name); sn.has_value() && sn->shard == p)
        bases.insert(sn->base);
  }

  std::uint64_t rebuilt = 0;
  for (const auto& base : bases) {
    const fs::ObjectId base_oid{pgid, base};
    const fs::ObjectId toid = ec::shard_oid(base_oid, pos);

    // Export up to k clean source shards, charged like a backfill read:
    // source device read, wire transfer, one recovery hop.
    struct Src {
      unsigned p;
      fs::FileStore::ObjectExport exp;
    };
    std::vector<Src> srcs;
    std::vector<std::pair<std::string, kv::Value>> xattrs;
    for (unsigned p = 0; p < k + m && srcs.size() < k; p++) {
      if (p == pos) continue;
      const std::uint32_t holder = acting[p];
      if (holder == cluster::ClusterMap::kNoOsd || holder >= osds.size()) continue;
      Osd* src = osds[holder];
      if (src == nullptr) continue;
      const fs::ObjectId soid = ec::shard_oid(base_oid, p);
      co_await src->wait_object_flushed(soid);
      if (!src->store().object_in_memory(soid)) continue;
      // Never rebuild from a chunk that fails its own CRC — that would
      // launder latent corruption into freshly "recovered" data.
      if (!src->store().verify_object(soid)) continue;
      auto exp = src->store().export_object(soid);
      std::uint64_t bytes = 0;
      for (const auto& [off, pay] : exp.extents) bytes += pay.size();
      if (bytes > 0) {
        co_await src->store().read(soid, 0, exp.size, /*want_data=*/false);
        co_await src->node().nic_transmit(bytes + 512);
        co_await sim::delay(sim, 60 * kMicrosecond, "osd.push_hop");
      }
      if (xattrs.empty()) xattrs = exp.xattrs;
      srcs.push_back(Src{p, std::move(exp)});
    }
    if (srcs.size() < k) continue;  // unrecoverable right now; scrub retries later

    // Reconstruct extent by extent over the union of source extents. An
    // extent with fewer than k survivors is a torn stripe tail — skipped
    // here, flagged and repaired by the parity-consistency scrub.
    std::map<std::uint64_t, std::uint64_t> extents;
    for (const auto& s : srcs)
      for (const auto& [off, pay] : s.exp.extents)
        extents[off] = std::max(extents[off], pay.size());

    fs::FileStore::ObjectExport out;
    for (const auto& [off, len] : extents) {
      std::vector<unsigned> present;
      std::vector<std::vector<std::uint8_t>> chunks;
      for (const auto& s : srcs) {
        const Payload* pay = extent_at(s.exp, off);
        if (pay == nullptr || present.size() >= k) continue;
        auto bytes = pay->materialize();
        bytes.resize(len, 0);
        present.push_back(s.p);
        chunks.push_back(std::move(bytes));
      }
      if (present.size() < k) continue;
      auto chunk = codec.reconstruct_shard(pos, present, chunks);
      if (!chunk.has_value()) continue;
      out.size = std::max(out.size, off + chunk->size());
      out.extents.emplace_back(off, Payload::bytes(std::move(*chunk)));
    }
    if (out.extents.empty()) continue;
    out.xattrs = xattrs;

    // Delta rebuild: journal replay (restart) may already have restored the
    // shard — compare *content*, not fingerprints, because a live-written
    // data shard is a virtual slice while the decode emits real bytes.
    if (target.store().object_in_memory(toid)) {
      auto cur = target.store().export_object(toid);
      bool same = cur.extents.size() == out.extents.size();
      for (std::size_t i = 0; same && i < cur.extents.size(); i++)
        same = cur.extents[i].first == out.extents[i].first &&
               cur.extents[i].second.content_equals(out.extents[i].second);
      if (same) {
        target.counters().add("osd.ec_rebuild_skipped");
        continue;
      }
    }

    co_await target.recover_object(toid, std::move(out));
    target.counters().add("osd.ec_shards_rebuilt");
    rebuilt++;
    if (auto* tr = trace::Collector::active()) {
      tr->instant(trace::Span{std::uint64_t(pgid) << 8 | pos, trace::kFaultTrack},
                  tr->stage_id(stage::kEcRebuild), sim.now());
    }
  }

  // Continue the PG's version stream at the rebuilt member.
  for (unsigned p = 0; p < k + m; p++) {
    if (p == pos) continue;
    const std::uint32_t holder = acting[p];
    if (holder == cluster::ClusterMap::kNoOsd || holder >= osds.size()) continue;
    if (osds[holder] == nullptr) continue;
    if (Pg* src_pg = osds[holder]->find_pg(pgid)) {
      if (Pg* dst_pg = target.find_pg(pgid)) dst_pg->observe_version(src_pg->version());
      break;
    }
  }
  co_return rebuilt;
}

}  // namespace afc::osd
