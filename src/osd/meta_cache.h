#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "fs/transaction.h"

namespace afc::osd {

/// Cached object metadata (object_info + snapset digest) consulted on every
/// OSD op before touching the filestore.
struct ObjectMeta {
  bool exists = false;
  std::uint64_t size = 0;
  std::uint64_t version = 0;
};

/// The OSD-level object metadata cache.
///
/// *Community mode* (read-through LRU): bounded capacity; a miss forces the
/// write path to read metadata from storage (read-modify-write), injecting
/// reads into the SSD's write stream — §3.4's central problem.
///
/// *Write-through authoritative mode* (AFCeph): every write updates the
/// cache, capacity covers the working set ("10 TB needs 2.5 GB"), and a miss
/// is authoritative (the object state is synthesized with no device read);
/// the write path never reads.
class MetaCache {
 public:
  struct Config {
    std::size_t capacity = 8192;
    bool writethrough_authoritative = false;
  };

  explicit MetaCache(const Config& cfg) : cfg_(cfg) {}

  std::optional<ObjectMeta> lookup(const fs::ObjectId& oid);
  void insert(const fs::ObjectId& oid, const ObjectMeta& meta);
  void invalidate(const fs::ObjectId& oid);

  bool authoritative() const { return cfg_.writethrough_authoritative; }
  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  Config cfg_;
  std::list<fs::ObjectId> lru_;
  struct Slot {
    ObjectMeta meta;
    std::list<fs::ObjectId>::iterator where;
  };
  std::unordered_map<fs::ObjectId, Slot, fs::ObjectIdHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace afc::osd
