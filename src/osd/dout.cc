#include "osd/dout.h"

namespace afc::osd {

DebugLog::DebugLog(sim::Simulation& sim, sim::CpuPool& cpu, const Config& cfg)
    : sim_(sim), cpu_(cpu), cfg_(cfg), writer_gate_(sim, 1), queue_(sim, cfg.queue_capacity) {
  if (cfg_.enabled && cfg_.nonblocking) {
    for (unsigned i = 0; i < cfg_.writer_threads; i++) sim::spawn(writer_loop());
  }
}

sim::CoTask<void> DebugLog::log(unsigned entries) {
  if (!cfg_.enabled || entries == 0) co_return;
  emitted_ += entries;
  if (cfg_.nonblocking) {
    const Time fmt = cfg_.log_cache ? cfg_.cached_format_cpu : cfg_.submit_cpu + 400;
    co_await cpu_.consume(Time(double(fmt + cfg_.submit_cpu) * entries * cfg_.cpu_multiplier));
    if (!queue_.try_push(entries)) dropped_ += entries;
    co_return;
  }
  // Blocking mode: format inline, then serialize through the single writer.
  co_await cpu_.consume(Time(double(cfg_.format_cpu) * entries * cfg_.cpu_multiplier));
  co_await writer_gate_.acquire(1);
  co_await cpu_.consume(Time(double(cfg_.writer_cpu) * entries));
  written_ += entries;
  writer_gate_.release(1);
}

sim::CoTask<void> DebugLog::writer_loop() {
  for (;;) {
    auto batch = co_await queue_.pop();
    if (!batch) break;
    co_await cpu_.consume(Time(double(cfg_.writer_cpu_async) * *batch));
    written_ += *batch;
  }
}

}  // namespace afc::osd
