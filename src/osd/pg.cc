#include "osd/pg.h"

#include <cstdio>

#include "common/stage_names.h"
#include "core/trace.h"

namespace afc::osd {

void Pg::trace_wait(const trace::Span& span, Time t0, Time now) const {
  auto* tr = trace::Collector::active();
  if (tr == nullptr || !span.valid() || now <= t0) return;
  tr->complete(span, tr->stage_id(stage::kPgLockWait), t0, now);
}

std::string Pg::log_key(std::uint64_t version) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "pglog.%08x.%012llu", id_,
                static_cast<unsigned long long>(version));
  return buf;
}

std::string Pg::info_key() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pginfo.%08x", id_);
  return buf;
}

}  // namespace afc::osd
