#include "osd/pg.h"

#include <cstdio>

namespace afc::osd {

std::string Pg::log_key(std::uint64_t version) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "pglog.%08x.%012llu", id_,
                static_cast<unsigned long long>(version));
  return buf;
}

std::string Pg::info_key() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pginfo.%08x", id_);
  return buf;
}

}  // namespace afc::osd
