#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/payload.h"
#include "common/stage_names.h"
#include "fs/transaction.h"
#include "net/messenger.h"

namespace afc::osd {

/// Wire message types between clients and OSDs / between OSDs.
enum MsgType : int {
  kClientWrite = 1,
  kClientRead = 2,
  kRepOp = 3,       // primary -> replica
  kRepReply = 4,    // replica -> primary (journal commit ack)
  kWriteReply = 5,  // primary -> client
  kReadReply = 6,
  kShardRead = 7,       // EC primary -> shard holder (gather for a read)
  kShardReadReply = 8,  // shard holder -> EC primary
  // --- membership traffic (only under MembershipMode::kDetected) ---------
  kHbPing = 9,           // OSD -> CRUSH-adjacent peer
  kHbPingReply = 10,     // peer -> OSD (echoes the ping timestamp)
  kFailureReport = 11,   // OSD -> monitor (dead suspicion or laggy flag)
  kMonBeacon = 12,       // OSD -> monitor (liveness / boot announcement)
  kMapDelta = 13,        // monitor -> subscribers (epoch + membership state)
  kMapRequest = 14,      // anyone -> monitor (fetch the current map)
};

/// A client I/O request (MOSDOp).
struct ClientIoMsg : net::MsgBody {
  std::uint64_t op_id = 0;
  std::uint64_t client_id = 0;
  std::uint32_t tenant = 0;  // QoS tenant class (0 = default profile)
  std::uint32_t pg = 0;
  fs::ObjectId oid;
  std::uint64_t offset = 0;
  std::uint64_t read_len = 0;
  Payload data;  // write payload
  bool is_write = false;
  bool want_data = false;  // reads: materialize bytes (verification)
  Time issued_at = 0;
  /// Sender's map epoch (detected membership only; 0 = oracle mode, never
  /// checked). A receiver with a newer map fences the op instead of
  /// serving it — see IoReplyMsg::fenced.
  std::uint64_t epoch = 0;
};

/// Replication sub-op (MOSDRepOp) carrying the transaction payload.
struct RepOpMsg : net::MsgBody {
  std::uint64_t op_id = 0;
  std::uint32_t pg = 0;
  fs::ObjectId oid;
  std::uint64_t offset = 0;
  Payload data;
  std::uint64_t version = 0;
  std::uint64_t epoch = 0;  // primary's map epoch (detected membership only)
};

/// Replica journal-commit ack (MOSDRepOpReply). `from_osd` lets the primary
/// credit each replica once even when lossy-link retransmission or repop
/// resends duplicate the ack.
struct RepReplyMsg : net::MsgBody {
  std::uint64_t op_id = 0;
  std::uint32_t pg = 0;
  std::uint32_t from_osd = 0;
  /// The replica's map is newer than the rep-op's epoch: the sub-op was
  /// rejected, `map_epoch` tells the stale primary what to catch up to.
  bool fenced = false;
  std::uint64_t map_epoch = 0;
};

/// EC shard fetch (primary gathering chunks for a striped read). The
/// primary pre-computes the shard object id and shard-space extent; the
/// holder is a plain object read with no EC awareness.
struct ShardReadMsg : net::MsgBody {
  std::uint64_t rid = 0;  // gather id, unique per primary
  std::uint32_t pg = 0;
  fs::ObjectId oid;
  std::uint64_t offset = 0;  // shard-space
  std::uint64_t len = 0;
  bool want_data = false;
};

struct ShardReadReplyMsg : net::MsgBody {
  std::uint64_t rid = 0;
  unsigned shard = 0;  // shard position this chunk belongs to
  bool ok = true;
  std::uint64_t data_len = 0;
  std::optional<std::vector<std::uint8_t>> data;  // when want_data
};

/// Reply to the client.
struct IoReplyMsg : net::MsgBody {
  std::uint64_t op_id = 0;
  bool is_write = false;
  bool ok = true;
  std::uint64_t data_len = 0;
  std::optional<std::vector<std::uint8_t>> data;  // reads with want_data
  Time issued_at = 0;
  /// Op rejected because its epoch was stale (detected membership only);
  /// `map_epoch` is the rejecting OSD's epoch. The client re-resolves the
  /// primary and resubmits immediately — the op was never admitted.
  bool fenced = false;
  std::uint64_t map_epoch = 0;
};

// --- membership wire messages (MembershipMode::kDetected only) -----------

/// Heartbeat ping / reply. The reply echoes `sent_at` so the sender can
/// compute an RTT without per-ping bookkeeping surviving a restart.
struct HbPingMsg : net::MsgBody {
  std::uint32_t from_osd = 0;
  Time sent_at = 0;
};

struct HbPingReplyMsg : net::MsgBody {
  std::uint32_t from_osd = 0;
  Time sent_at = 0;  // echoed from the ping
};

/// OSD -> monitor: `target` has been silent past the grace period
/// (`laggy == false`), or is alive but slow (`laggy == true`). Reporters
/// re-send while the condition holds; the monitor prunes by report age.
struct FailureReportMsg : net::MsgBody {
  std::uint32_t reporter = 0;
  std::uint32_t target = 0;
  bool laggy = false;
};

/// OSD -> monitor liveness beacon. `boot` marks the first beacon after a
/// restart's journal replay finished (Ceph's MOSDBoot vs MOSDBeacon).
struct MonBeaconMsg : net::MsgBody {
  std::uint32_t osd = 0;
  bool boot = false;
};

/// Monitor -> subscriber map update. Carries the epoch plus the *full*
/// down/out/laggy state — self-healing against dropped deltas: applying
/// the newest delta always reconstructs the subscriber's view.
struct MapDeltaMsg : net::MsgBody {
  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> down;
  std::vector<std::uint32_t> out;
  std::vector<std::uint32_t> laggy;
};

/// Anyone -> monitor: send me the current map (share-on-contact catch-up
/// after a fence or a missed delta).
struct MapRequestMsg : net::MsgBody {};

/// Fig. 3 stage indices for the write-path latency breakdown.
enum Stage : unsigned {
  kStRecv = 0,       // message arrived at the OSD dispatcher
  kStDequeued = 1,   // picked up by an OP_WQ worker
  kStSubmitted = 2,  // repops sent + transaction prepared ("submit op to PG backend")
  kStJournalQ = 3,   // throttles passed, journal write queued
  kStJournaled = 4,  // journal write durable
  kStCommitEvt = 5,  // journal completion processed at PG backend
  kStRepAcked = 6,   // all replica commits processed
  kStAcked = 7,      // client ack sent
  kStageCount = 8,
};

// The shared stage-name table (common/stage_names.h) labels these deltas in
// bench output and trace JSON; the two must stay in lockstep.
static_assert(kStageCount == kWriteStageCount,
              "osd::Stage and afc::kWriteStageNames must describe the same pipeline");

/// Primary-side state for one in-flight client op.
struct OpCtx {
  std::shared_ptr<ClientIoMsg> msg;
  net::Connection* reply_conn = nullptr;
  fs::Transaction txn;
  /// Object the primary's own transaction targets: msg->oid for replicated
  /// writes, the primary's shard object for EC stripes (journal replay and
  /// readable-gating key off it).
  fs::ObjectId local_oid;
  std::uint64_t journal_bytes = 0;
  unsigned commits_needed = 0;
  unsigned commits_seen = 0;
  bool acked = false;
  trace::Span span;  // set at dispatch only while tracing; invalid otherwise
  std::array<Time, kStageCount> ts{};

  // --- replication-recovery state (inert unless OsdConfig::rep_timeout) ---
  std::uint64_t version = 0;     // PG version of this write (repop resends)
  unsigned commits_planned = 0;  // commits_needed at submit (degraded-ack accounting)
  unsigned min_commits = 0;      // durable replicas required before an ack
  unsigned rep_retries = 0;      // repop resend rounds so far
  std::vector<std::uint32_t> waiting_peers;    // replicas not yet committed
  std::vector<std::uint32_t> peers_committed;  // replicas credited (ack dedup)
  sim::TimerToken rep_timer;  // replication watchdog (cancelled at ack)
  bool rep_timer_armed = false;
  bool failed = false;  // resolved with ok=false after bounded retries

  // --- EC stripe state (empty for replicated ops) -----------------------
  /// One entry per remote shard sub-op, so watchdog resends can rebuild the
  /// exact shard payload instead of the client's full-stripe payload.
  struct EcShard {
    std::uint32_t peer = 0;
    fs::ObjectId oid;
    std::uint64_t offset = 0;  // shard-space
    Payload data;
  };
  std::vector<EcShard> ec_shards;

  void stamp(Stage s, Time now) { ts[s] = now; }
};

using OpRef = std::shared_ptr<OpCtx>;

/// Items flowing through the sharded OP_WQ. Everything community Ceph
/// funnels through the PG queue is an item kind here; AFCeph diverts
/// completion/ack kinds off this path entirely.
struct WorkItem {
  enum Kind {
    kClientOp,
    kReplicaOp,
    kRepReplyEvent,  // community: replica ack processed under PG lock
    kAckEvent,       // community: client ack goes back through the queue
  };
  Kind kind = kClientOp;
  std::uint32_t pg = 0;
  OpRef op;                             // kClientOp / kRepReplyEvent / kAckEvent
  std::shared_ptr<RepOpMsg> rep;        // kReplicaOp
  net::Connection* conn = nullptr;      // reply path for kReplicaOp
  Time trace_parked = 0;  // when the item entered a PG pending queue (tracing)
};

}  // namespace afc::osd
