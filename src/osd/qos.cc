#include "osd/qos.h"

#include <algorithm>
#include <limits>

namespace afc::osd {

namespace {

/// Virtual-time increment of one op against an (iops, bandwidth) envelope,
/// in ns: the stricter of the two configured terms. Returns 0 when neither
/// term is configured (no envelope).
double cost_ns(double iops, double bw, std::uint64_t bytes) {
  double c = 0.0;
  if (iops > 0) c = std::max(c, 1e9 / iops);
  if (bw > 0) c = std::max(c, double(bytes) * 1e9 / bw);
  return c;
}

}  // namespace

QosScheduler::QosScheduler(sim::Simulation& sim, QosConfig cfg, Sink sink)
    : sim_(sim), cfg_(std::move(cfg)), sink_(std::move(sink)) {}

QosScheduler::~QosScheduler() {
  if (timer_armed_) sim_.cancel(timer_);
}

QosScheduler::Tenant& QosScheduler::tenant_state(std::uint32_t id) {
  auto [it, inserted] = tenants_.try_emplace(id);
  if (inserted) it->second.prof = cfg_.profile_for(id);
  return it->second;
}

std::uint64_t QosScheduler::dispatched(std::uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.dispatched;
}

void QosScheduler::enqueue(WorkItem item, std::uint32_t tenant, std::uint64_t bytes) {
  Tenant& t = tenant_state(tenant);
  const double now = double(sim_.now());
  if (t.q.empty()) {
    // Idle reset (dmClock's arrival-time clamp): a tenant returning from
    // idle competes from "now", it neither owes virtual time from past
    // activity nor spends banked credit beyond the one-op cap applied at
    // dispatch.
    t.r_next = std::max(t.r_next, now);
    t.p_tag = std::max(t.p_tag, now);
  }
  t.q.push_back(Queued{std::move(item), sim_.now(), bytes});
  queued_++;
  stats_.enqueued++;
  stats_.depth_hwm = std::max<std::uint64_t>(stats_.depth_hwm, queued_);
  pump();
}

void QosScheduler::op_done() {
  if (in_flight_ > 0) in_flight_--;
  pump();
}

void QosScheduler::reset() {
  for (auto& [id, t] : tenants_) t.q.clear();
  queued_ = 0;
  in_flight_ = 0;
  if (timer_armed_) {
    sim_.cancel(timer_);
    timer_armed_ = false;
  }
}

void QosScheduler::dispatch(Tenant& t, bool reservation_phase, double now) {
  Queued qd = std::move(t.q.front());
  t.q.pop_front();
  queued_--;
  // Consume all tags regardless of serving phase; idle credit is capped at
  // one op (the max(tag, now - delta) clamp), so the limit stays a hard
  // ceiling of rate*T + 1 over any interval of length T.
  const std::uint64_t bytes = qd.bytes;
  if (t.prof.has_reservation()) {
    const double d = cost_ns(t.prof.reservation_iops, t.prof.reservation_bw, bytes);
    t.r_next = std::max(t.r_next, now - d) + d;
  }
  if (t.prof.has_limit()) {
    const double d = cost_ns(t.prof.limit_iops, t.prof.limit_bw, bytes);
    t.l_next = std::max(t.l_next, now - d) + d;
  }
  if (t.prof.weight > 0) {
    const double d = 1e9 / t.prof.weight;
    t.p_tag = std::max(t.p_tag, now - d) + d;
  }
  t.dispatched++;
  in_flight_++;
  stats_.dispatched++;
  if (reservation_phase) {
    stats_.reservation_grants++;
  } else {
    stats_.weight_grants++;
  }
  sink_(std::move(qd.item), qd.at);
}

void QosScheduler::pump() {
  while (queued_ > 0 && in_flight_ < cfg_.window) {
    const double now = double(sim_.now());
    // Phase 1 — reservation: most overdue floor first. The limit gates even
    // reservation grants (a sane profile keeps reservation <= limit).
    Tenant* pick = nullptr;
    double best = std::numeric_limits<double>::infinity();
    for (auto& [id, t] : tenants_) {
      if (t.q.empty() || !t.prof.has_reservation()) continue;
      if (t.r_next <= now && t.l_next <= now && t.r_next < best) {
        pick = &t;
        best = t.r_next;
      }
    }
    if (pick != nullptr) {
      dispatch(*pick, /*reservation_phase=*/true, now);
      continue;
    }
    // Phase 2 — weight: smallest proportional tag among limit-eligible
    // tenants. weight <= 0 means reservation-only: no surplus share.
    for (auto& [id, t] : tenants_) {
      if (t.q.empty() || t.prof.weight <= 0) continue;
      if (t.l_next <= now && t.p_tag < best) {
        pick = &t;
        best = t.p_tag;
      }
    }
    if (pick != nullptr) {
      dispatch(*pick, /*reservation_phase=*/false, now);
      continue;
    }
    // Every backlogged tenant is tag-blocked: wake when the earliest one
    // clears. Weight-bearing tenants unblock at l_next; reservation-only
    // tenants additionally need r_next to come due.
    double wake = std::numeric_limits<double>::infinity();
    for (auto& [id, t] : tenants_) {
      if (t.q.empty()) continue;
      const double at =
          t.prof.weight > 0 ? t.l_next : std::max(t.l_next, t.r_next);
      wake = std::min(wake, at);
    }
    if (wake != std::numeric_limits<double>::infinity()) {
      stats_.limit_deferrals++;
      arm_timer(Time(wake) + 1);
    }
    return;
  }
}

void QosScheduler::arm_timer(Time at) {
  if (timer_armed_ && timer_at_ <= at) return;
  if (timer_armed_) sim_.cancel(timer_);
  timer_at_ = at;
  timer_armed_ = true;
  QosScheduler* self = this;
  timer_ = sim_.schedule_at(
      at,
      [self] {
        self->timer_armed_ = false;
        self->pump();
      },
      "osd.qos.timer");
}

}  // namespace afc::osd
