#include "osd/op.h"

// Message/op structs are header-only; this TU keeps the module list uniform.
namespace afc::osd {}
