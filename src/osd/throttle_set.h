#pragma once

#include "sim/sync.h"

namespace afc::osd {

/// The OSD's admission throttles (§3.2). Community defaults are the actual
/// Ceph 0.94 HDD-era values; the SSD tuning follows the paper's "30K IOPS
/// per block device" sizing. Each throttle is a weighted FIFO semaphore, so
/// the oscillation the paper describes (journal fast, filestore queue capped
/// at 50 ops) emerges from the interaction.
class ThrottleSet {
 public:
  struct Config {
    std::uint64_t client_message_cap = 100;      // osd_client_message_cap
    std::uint64_t client_message_bytes = 500 * kMiB;
    std::uint64_t filestore_queue_max_ops = 50;  // filestore_queue_max_ops
    std::uint64_t filestore_queue_max_bytes = 100 * kMiB;
    std::uint64_t journal_queue_max_ops = 300;   // journal_queue_max_ops
    static Config community() { return Config{}; }
    static Config ssd_tuned() {
      // Paper §3.2: throttle determined as 30K IOPS per block device.
      Config c;
      c.client_message_cap = 5000;
      c.client_message_bytes = 2000 * kMiB;
      c.filestore_queue_max_ops = 2048;
      c.filestore_queue_max_bytes = 800 * kMiB;
      c.journal_queue_max_ops = 4096;
      return c;
    }
  };

  ThrottleSet(sim::Simulation& sim, const Config& cfg)
      : messages(sim, cfg.client_message_cap),
        message_bytes(sim, cfg.client_message_bytes),
        filestore_ops(sim, cfg.filestore_queue_max_ops),
        filestore_bytes(sim, cfg.filestore_queue_max_bytes),
        journal_ops(sim, cfg.journal_queue_max_ops) {}

  sim::Semaphore messages;
  sim::Semaphore message_bytes;
  sim::Semaphore filestore_ops;
  sim::Semaphore filestore_bytes;
  sim::Semaphore journal_ops;
};

}  // namespace afc::osd
