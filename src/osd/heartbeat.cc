#include "osd/heartbeat.h"

#include <memory>

#include "common/stage_names.h"
#include "core/trace.h"
#include "osd/osd.h"

namespace afc::osd {

namespace {
constexpr std::uint64_t kPingBytes = 80;
}  // namespace

HeartbeatAgent::HeartbeatAgent(sim::Simulation& sim, Osd& osd,
                               const mon::MembershipConfig& cfg, std::uint64_t seed)
    : sim_(sim), osd_(osd), cfg_(cfg), rng_(seed) {}

void HeartbeatAgent::start() {
  running_ = true;
  refresh_peers();
  for (auto& [peer, st] : state_) st.last_seen = sim_.now();
  next_beacon_at_ = sim_.now();
  if (!armed_) schedule_next();
}

void HeartbeatAgent::stop() {
  running_ = false;
  if (armed_) {
    sim_.cancel(tick_timer_);
    armed_ = false;
  }
}

void HeartbeatAgent::refresh_peers() {
  peers_ = osd_.adjacent_peers();
  // Drop state for peers no longer adjacent; baseline newcomers at now so
  // they get a full grace period before suspicion.
  std::erase_if(state_, [this](const auto& kv) {
    return std::find(peers_.begin(), peers_.end(), kv.first) == peers_.end();
  });
  for (std::uint32_t peer : peers_) {
    auto [it, fresh] = state_.try_emplace(peer);
    if (fresh) it->second.last_seen = sim_.now();
  }
}

void HeartbeatAgent::on_ping_reply(std::uint32_t from, Time echoed_sent_at) {
  auto it = state_.find(from);
  if (it == state_.end()) return;  // no longer adjacent
  PeerHb& st = it->second;
  st.last_seen = sim_.now();
  const double rtt = double(sim_.now() - echoed_sent_at);
  st.rtt_ewma_ns = st.rtt_ewma_ns == 0 ? rtt : 0.8 * st.rtt_ewma_ns + 0.2 * rtt;
  if (st.suspected) {
    st.suspected = false;
    osd_.counters().add("osd.hb_recoveries");
  }
}

void HeartbeatAgent::on_crash() {
  stop();
  state_.clear();
}

void HeartbeatAgent::on_restart() { start(); }

double HeartbeatAgent::rtt_ewma_ns(std::uint32_t peer) const {
  auto it = state_.find(peer);
  return it == state_.end() ? 0.0 : it->second.rtt_ewma_ns;
}

void HeartbeatAgent::tick() {
  armed_ = false;
  if (!running_) return;
  const Time now = sim_.now();
  for (std::uint32_t peer : peers_) {
    PeerHb& st = state_[peer];
    if (net::Connection* conn = osd_.peer_conn(peer); conn != nullptr) {
      auto ping = std::make_shared<HbPingMsg>();
      ping->from_osd = osd_.id();
      ping->sent_at = now;
      net::Message m;
      m.type = kHbPing;
      m.size = kPingBytes;
      m.body = std::move(ping);
      conn->send(std::move(m));
      osd_.counters().add("osd.hb_sent");
    }
    if (now - st.last_seen > cfg_.hb_grace) {
      if (!st.suspected) {
        st.suspected = true;
        osd_.counters().add("osd.hb_timeouts");
        if (auto* tr = trace::Collector::active()) {
          tr->instant(trace::Span{std::uint64_t(peer) + 1, trace::osd_track(osd_.id())},
                      tr->stage_id(stage::kHeartbeat), now);
        }
      }
      // Re-report every tick while suspicion holds: the monitor prunes
      // reports by age, so a one-shot report would expire before a slow
      // quorum assembles.
      osd_.report_failure(peer, /*laggy=*/false);
    } else if (st.rtt_ewma_ns > double(cfg_.laggy_rtt)) {
      // Alive — replies are arriving — but slow: gray failure.
      osd_.report_failure(peer, /*laggy=*/true);
    }
  }
  // Self check: heartbeats can stay crisp while the data path is wedged
  // (slow SSD, journal stall). An op in flight too long self-reports laggy.
  if (const Time oldest = osd_.oldest_inflight_recv();
      oldest != 0 && now - oldest > cfg_.laggy_op_age) {
    osd_.report_failure(osd_.id(), /*laggy=*/true);
  }
  if (now >= next_beacon_at_) {
    osd_.send_beacon(/*boot=*/false);
    next_beacon_at_ = now + cfg_.beacon_interval;
  }
  schedule_next();
}

void HeartbeatAgent::schedule_next() {
  // Seeded ±10% jitter: the fleet never pings in lockstep, and the stream
  // is this agent's own, so detected-mode runs replay deterministically.
  const double jitter = 0.9 + 0.2 * rng_.uniform();
  armed_ = true;
  tick_timer_ = sim_.schedule_after(Time(double(cfg_.hb_interval) * jitter),
                                    [this] { tick(); }, "osd.hb_tick");
}

}  // namespace afc::osd
