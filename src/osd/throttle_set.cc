#include "osd/throttle_set.h"

// ThrottleSet is header-only; this TU keeps the module list uniform.
namespace afc::osd {}
