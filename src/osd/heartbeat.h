#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "mon/membership.h"
#include "sim/simulation.h"

namespace afc::osd {

class Osd;

/// The failure-detection half of one OSD daemon (MembershipMode::kDetected
/// only; never constructed under kOracle). On a seeded, jittered interval it
/// pings every CRUSH-adjacent peer — the union of this OSD's PG acting sets
/// — over the same messenger connections the data path uses, so a link
/// fault or blackhole shapes heartbeats exactly like it shapes rep-ops.
///
/// Per peer it tracks the last reply arrival and an RTT EWMA. A peer silent
/// past `hb_grace` becomes *suspect*: reported to the monitor once per tick
/// until it answers again (re-reporting keeps the report fresh across the
/// monitor's TTL pruning). A peer whose RTT EWMA crosses `laggy_rtt`, or
/// this OSD itself when its oldest in-flight op exceeds `laggy_op_age`, is
/// reported laggy — alive but slow — which flags without evicting.
///
/// The agent also beacons the monitor every `beacon_interval`, which is how
/// a partition-healed (never-crashed) daemon gets marked up again. All
/// timer state dies with the daemon on crash (on_crash) and restarts with
/// fresh baselines after journal replay (on_restart).
class HeartbeatAgent {
 public:
  HeartbeatAgent(sim::Simulation& sim, Osd& osd, const mon::MembershipConfig& cfg,
                 std::uint64_t seed);

  /// Baseline every peer at "seen now" and schedule the first tick.
  void start();
  /// Cancel the pending tick (shutdown).
  void stop();
  /// Re-derive the CRUSH-adjacent peer set from the OSD's PGs (called after
  /// a map delta changed acting sets). New peers baseline at "seen now".
  void refresh_peers();

  /// A ping reply arrived: refresh last-seen, fold the echoed timestamp
  /// into the RTT EWMA, clear any suspicion.
  void on_ping_reply(std::uint32_t from, Time echoed_sent_at);

  /// Daemon RAM (peer table, pending tick) is gone.
  void on_crash();
  /// Post-replay restart: fresh baselines, resume ticking.
  void on_restart();

  /// Smoothed RTT to `peer` in ns (0 until the first sample).
  double rtt_ewma_ns(std::uint32_t peer) const;
  const std::vector<std::uint32_t>& peers() const { return peers_; }

 private:
  void tick();
  void schedule_next();

  struct PeerHb {
    Time last_seen = 0;      // last reply arrival (baselined at start)
    double rtt_ewma_ns = 0;  // 0 until the first sample
    bool suspected = false;
  };

  sim::Simulation& sim_;
  Osd& osd_;
  mon::MembershipConfig cfg_;
  Rng rng_;
  std::vector<std::uint32_t> peers_;       // ascending CRUSH-adjacent ids
  std::map<std::uint32_t, PeerHb> state_;  // ordered: the tick iterates it
  Time next_beacon_at_ = 0;
  sim::TimerToken tick_timer_;
  bool armed_ = false;
  bool running_ = false;
};

}  // namespace afc::osd
