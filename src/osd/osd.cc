#include "osd/osd.h"

#include <algorithm>

#include "ec/layout.h"
#include "osd/ec_rebuild.h"

namespace afc::osd {

namespace {

store::StoreConfig with_profile(store::StoreConfig cfg, const core::Profile& p) {
  cfg.file.cpu_multiplier = p.alloc_cpu_multiplier();
  cfg.flash.cpu_multiplier = p.alloc_cpu_multiplier();
  return cfg;
}

kv::Db::Config kv_with_profile(kv::Db::Config cfg, const core::Profile& p) {
  cfg.cpu_multiplier = p.alloc_cpu_multiplier();
  return cfg;
}

DebugLog::Config log_with_profile(DebugLog::Config cfg, const core::Profile& p) {
  cfg.enabled = p.logging_enabled;
  cfg.nonblocking = p.nonblocking_logging;
  cfg.writer_threads = p.log_writer_threads;
  cfg.log_cache = p.log_cache;
  cfg.cpu_multiplier = p.alloc_cpu_multiplier();
  return cfg;
}

MetaCache::Config meta_cache_cfg(const core::Profile& p) {
  MetaCache::Config c;
  c.writethrough_authoritative = p.writethrough_meta_cache;
  // AFCeph §3.4: size the cache for the full working set ("10 TB needs
  // 2.5 GB"); community Ceph keeps a bounded read-through cache.
  c.capacity = p.writethrough_meta_cache ? std::size_t(4) << 20 : 8192;
  return c;
}

/// Trace identity of a queued work item: client ops carry their span on the
/// OpCtx; replica ops are attributed to the same op id on this OSD's track.
trace::Span item_span(const WorkItem& item, std::uint32_t osd_id) {
  if (item.op != nullptr) return item.op->span;
  if (item.rep != nullptr) return trace::Span{item.rep->op_id, trace::osd_track(osd_id)};
  return {};
}

}  // namespace

Osd::Osd(sim::Simulation& sim, net::Node& node, dev::Device& journal_dev,
         dev::Device& data_dev, cluster::ClusterMap& cmap, std::uint32_t id,
         const OsdConfig& cfg, const core::Profile& profile,
         const store::StoreConfig& store_cfg, const kv::Db::Config& kv_cfg,
         const ThrottleSet::Config& throttle_cfg, DebugLog::Config log_cfg,
         const fs::Journal::Config& journal_cfg)
    : sim_(sim),
      node_(node),
      cmap_(cmap),
      id_(id),
      cfg_(cfg),
      profile_(profile),
      msgr_(sim, node, *this, "osd." + std::to_string(id)),
      throttles_(sim, throttle_cfg),
      dlog_(sim, node.cpu(), log_with_profile(log_cfg, profile)),
      omap_(sim, data_dev, kv_with_profile(kv_cfg, profile), 1000 + id, &node.cpu()),
      store_(store::make_store(sim, node.cpu(), journal_dev, data_dev, omap_,
                               with_profile(store_cfg, profile), &counters_)),
      journal_(sim, journal_dev, journal_cfg),
      meta_cache_(meta_cache_cfg(profile)),
      finisher_q_(sim),
      completion_q_(sim),
      apply_q_(sim) {
  shard_queues_.reserve(cfg_.shards);
  for (unsigned s = 0; s < cfg_.shards; s++) {
    shard_queues_.push_back(std::make_unique<sim::Channel<WorkItem>>(sim));
    for (unsigned w = 0; w < cfg_.workers_per_shard; w++) sim::spawn(worker_loop(s));
  }
  if (profile_.dedicated_completion) {
    sim::spawn(completion_worker_loop());
  } else {
    sim::spawn(finisher_loop());
  }
  for (unsigned a = 0; a < cfg_.apply_threads; a++) sim::spawn(apply_loop());
  if (cmap_.erasure()) codec_ = std::make_unique<ec::Codec>(cmap_.ec_k(), cmap_.ec_m());
  if (cfg_.qos.enabled) {
    qos_ = std::make_unique<QosScheduler>(
        sim_, cfg_.qos, [this](WorkItem item, Time enqueued_at) {
          if (auto* tr = trace::Collector::active();
              tr != nullptr && item.op->span.valid() && sim_.now() > enqueued_at) {
            tr->complete(item.op->span, tr->stage_id(stage::kQosQueue), enqueued_at,
                         sim_.now());
          }
          sim::spawn(qos_admit(std::move(item)));
        });
  }
}

Osd::~Osd() = default;

void Osd::create_pg(std::uint32_t pgid, std::vector<std::uint32_t> acting) {
  pgs_.emplace(pgid, std::make_unique<Pg>(sim_, pgid, std::move(acting)));
}

Pg* Osd::find_pg(std::uint32_t pgid) {
  auto it = pgs_.find(pgid);
  return it == pgs_.end() ? nullptr : it->second.get();
}

void Osd::add_peer(std::uint32_t osd_id, net::Connection* conn) { peers_[osd_id] = conn; }

sim::CoTask<void> Osd::charge_cpu(Time cost, bool alloc_heavy) {
  const double mult = alloc_heavy ? profile_.alloc_cpu_multiplier() : 1.0;
  co_await node_.cpu().consume(Time(double(cost) * mult));
}

void Osd::shard_push(WorkItem item) {
  const unsigned shard = item.pg % cfg_.shards;
  shard_queues_[shard]->try_push(std::move(item));  // PG queues are unbounded
}

// ---------------------------------------------------------------------------
// Dispatch (messenger context)
// ---------------------------------------------------------------------------

sim::CoTask<void> Osd::on_message(net::Message m) {
  switch (m.type) {
    case kClientWrite:
    case kClientRead:
      co_await dispatch_client_op(std::static_pointer_cast<ClientIoMsg>(m.body), m.reply_to);
      break;
    case kRepOp: {
      co_await charge_cpu(cfg_.dispatch_cpu / 2, true);
      WorkItem item;
      item.kind = WorkItem::kReplicaOp;
      item.rep = std::static_pointer_cast<RepOpMsg>(m.body);
      item.pg = item.rep->pg;
      item.conn = m.reply_to;
      shard_push(std::move(item));
      break;
    }
    case kRepReply:
      co_await dispatch_rep_reply(std::static_pointer_cast<RepReplyMsg>(m.body));
      break;
    case kShardRead:
      co_await serve_shard_read(std::static_pointer_cast<ShardReadMsg>(m.body), m.reply_to);
      break;
    case kShardReadReply:
      handle_shard_read_reply(std::static_pointer_cast<ShardReadReplyMsg>(m.body));
      break;
    case kHbPing: {
      // Answered inline from dispatch with no CPU charge: heartbeats must
      // measure the *network* path, not queueing — a busy OSD with a live
      // link is alive (the laggy watermarks cover slow, not this).
      const auto& ping = static_cast<const HbPingMsg&>(*m.body);
      if (m.reply_to != nullptr) {
        auto reply = std::make_shared<HbPingReplyMsg>();
        reply->from_osd = id_;
        reply->sent_at = ping.sent_at;
        net::Message wire;
        wire.type = kHbPingReply;
        wire.size = 80;
        wire.body = std::move(reply);
        m.reply_to->send(std::move(wire));
      }
      break;
    }
    case kHbPingReply: {
      const auto& pr = static_cast<const HbPingReplyMsg&>(*m.body);
      if (hb_ != nullptr) hb_->on_ping_reply(pr.from_osd, pr.sent_at);
      break;
    }
    case kMapDelta:
      apply_map_delta(static_cast<const MapDeltaMsg&>(*m.body));
      break;
    default:
      break;
  }
}

sim::CoTask<void> Osd::dispatch_client_op(std::shared_ptr<ClientIoMsg> msg,
                                          net::Connection* conn) {
  if (cfg_.membership.detected() && msg->epoch != 0) {
    if (msg->epoch > known_epoch_) {
      // The client knows a newer map than we do: serve the op (its routing
      // was at least as fresh as ours) but catch up.
      request_map();
    } else if (msg->epoch < known_epoch_) {
      // Epoch fence: the client routed with a stale map. Reject before any
      // throttle or ledger admission — it may have picked the wrong
      // primary, and a split-brain ex-primary must not keep acking writes.
      counters_.add("osd.fenced_ops");
      send_fence_reply(*msg, conn);
      co_return;
    }
  }
  if (qos_ != nullptr) {
    // QoS path: decode and classify in dispatch context, then park the op in
    // its tenant's dmClock queue. The message throttles move downstream
    // (qos_admit) — a flooding tenant's backlog must wait in *its* queue,
    // not exhaust the global message cap and stall every connection.
    co_await charge_cpu(cfg_.dispatch_cpu, true);
    auto op = std::make_shared<OpCtx>();
    op->msg = msg;
    op->reply_conn = conn;
    op->stamp(kStRecv, sim_.now());
    if (auto* tr = trace::Collector::active()) {
      op->span = trace::Span{msg->op_id, trace::osd_track(id_)};
      tr->begin(op->span, tr->stage_id(msg->is_write ? stage::kWriteOp : stage::kReadOp),
                sim_.now());
    }
    inflight_[msg->op_id] = op;
    if (profile_.ordered_acks && msg->is_write) {
      ack_state_[msg->client_id].outstanding.insert(msg->op_id);
    }
    WorkItem item;
    item.kind = WorkItem::kClientOp;
    item.pg = msg->pg;
    item.op = std::move(op);
    const std::uint64_t bytes = msg->is_write ? msg->data.size() : msg->read_len;
    qos_->enqueue(std::move(item), msg->tenant, bytes);
    co_return;
  }
  const Time throttle_t0 = sim_.now();
  // Messenger dispatch throttle: suspending here stalls this connection's
  // delivery pipeline (osd_client_message_cap backpressure).
  co_await throttles_.messages.acquire(1);
  co_await throttles_.message_bytes.acquire(msg->data.size() + 150);
  co_await charge_cpu(cfg_.dispatch_cpu, true);

  auto op = std::make_shared<OpCtx>();
  op->msg = msg;
  op->reply_conn = conn;
  op->stamp(kStRecv, sim_.now());
  if (auto* tr = trace::Collector::active()) {
    op->span = trace::Span{msg->op_id, trace::osd_track(id_)};
    if (const Time waited_until = sim_.now(); waited_until > throttle_t0) {
      tr->complete(op->span, tr->stage_id(stage::kDispatchThrottle), throttle_t0, waited_until);
    }
    tr->begin(op->span, tr->stage_id(msg->is_write ? stage::kWriteOp : stage::kReadOp),
              sim_.now());
  }
  inflight_[msg->op_id] = op;
  if (profile_.ordered_acks && msg->is_write) {
    ack_state_[msg->client_id].outstanding.insert(msg->op_id);
  }

  WorkItem item;
  item.kind = WorkItem::kClientOp;
  item.pg = msg->pg;
  item.op = std::move(op);
  shard_push(std::move(item));
}

sim::CoTask<void> Osd::qos_admit(WorkItem item) {
  ClientIoMsg& msg = *item.op->msg;
  const Time throttle_t0 = sim_.now();
  co_await throttles_.messages.acquire(1);
  co_await throttles_.message_bytes.acquire(msg.data.size() + 150);
  if (auto* tr = trace::Collector::active();
      tr != nullptr && item.op->span.valid() && sim_.now() > throttle_t0) {
    tr->complete(item.op->span, tr->stage_id(stage::kDispatchThrottle), throttle_t0,
                 sim_.now());
  }
  shard_push(std::move(item));
}

void Osd::qos_op_done() {
  if (qos_ != nullptr) qos_->op_done();
}

sim::CoTask<void> Osd::dispatch_rep_reply(std::shared_ptr<RepReplyMsg> msg) {
  auto it = inflight_.find(msg->op_id);
  if (it == inflight_.end()) co_return;
  OpRef op = it->second;
  if (msg->fenced) {
    // The replica's map outpaced this rep-op's stamped epoch. The publish
    // that fenced it has usually reached us too by now — restamp and resend
    // straight away; if not, fetch the map and let the watchdog's next
    // resend round carry the fresh epoch.
    counters_.add("osd.fenced_rep_replies");
    if (known_epoch_ >= msg->map_epoch) {
      if (!op->acked && !op->failed &&
          std::find(op->waiting_peers.begin(), op->waiting_peers.end(),
                    msg->from_osd) != op->waiting_peers.end()) {
        send_rep_op(*op, msg->from_osd);
      }
    } else {
      request_map();
    }
    co_return;
  }
  // Credit each replica once: lossy-link retransmission and watchdog repop
  // resends can both duplicate the commit ack.
  if (std::find(op->peers_committed.begin(), op->peers_committed.end(), msg->from_osd) !=
      op->peers_committed.end()) {
    counters_.add("osd.dup_rep_replies");
    co_return;
  }
  op->peers_committed.push_back(msg->from_osd);
  std::erase(op->waiting_peers, msg->from_osd);
  if (profile_.fast_ack) {
    // AFCeph: replica commit handled right here, no PG-queue round trip.
    co_await charge_cpu(cfg_.repreply_cpu, false);
    op->commits_seen++;
    op->stamp(kStRepAcked, sim_.now());
    completion_q_.try_push(CompletionEvent{CompletionEvent::kRepCommit, op, msg->pg, {}, nullptr});
    co_return;
  }
  // Community: the commit notification competes with data ops in the OP_WQ.
  WorkItem item;
  item.kind = WorkItem::kRepReplyEvent;
  item.pg = msg->pg;
  item.op = std::move(op);
  shard_push(std::move(item));
}

// ---------------------------------------------------------------------------
// OP_WQ workers
// ---------------------------------------------------------------------------

sim::CoTask<void> Osd::worker_loop(unsigned shard) {
  for (;;) {
    auto item = co_await shard_queues_[shard]->pop();
    if (!item) break;
    if (item->kind == WorkItem::kClientOp) item->op->stamp(kStDequeued, sim_.now());
    if (profile_.pending_queue) {
      co_await run_item_pending_queue(std::move(*item));
    } else {
      co_await run_item_community(std::move(*item));
    }
  }
}

sim::CoTask<void> Osd::run_item_community(WorkItem item) {
  Pg* pg = find_pg(item.pg);
  if (pg == nullptr) co_return;
  const Time lock_t0 = sim_.now();
  // The worker blocks here while any other thread (another worker, the
  // finisher, an ack) holds this PG's lock — the head-of-line blocking of
  // paper Fig. 5.
  co_await pg->lock().lock();
  pg->trace_wait(item_span(item, id_), lock_t0, sim_.now());
  co_await process_item(item);
  pg->lock().unlock();
}

sim::CoTask<void> Osd::run_item_pending_queue(WorkItem item) {
  Pg* pg = find_pg(item.pg);
  if (pg == nullptr) co_return;
  if (pg->busy) {
    // Park the op; this worker stays free for other PGs. Per-PG order is
    // preserved because the pending queue is drained FIFO by the owner.
    if (trace::Collector::active() != nullptr) item.trace_parked = sim_.now();
    pg->pending.push_back(std::move(item));
    pg->pending_defers++;
    if (pg->pending.size() > pg->pending_high_water) pg->pending_high_water = pg->pending.size();
    co_return;
  }
  pg->busy = true;
  co_await process_item(item);
  while (!pg->pending.empty()) {
    WorkItem next = std::move(pg->pending.front());
    pg->pending.pop_front();
    // The park counts as PG ordering wait, same stage as the community
    // scheme's lock wait — the two profiles stay comparable in a trace.
    if (next.trace_parked != 0) pg->trace_wait(item_span(next, id_), next.trace_parked, sim_.now());
    co_await process_item(next);
  }
  pg->busy = false;
}

sim::CoTask<void> Osd::process_item(WorkItem& item) {
  switch (item.kind) {
    case WorkItem::kClientOp:
      if (item.op->msg->is_write) {
        co_await process_client_write(item);
      } else {
        co_await process_client_read(item);
      }
      break;
    case WorkItem::kReplicaOp:
      co_await process_replica_op(item);
      break;
    case WorkItem::kRepReplyEvent:
      co_await process_rep_reply_locked(item);
      break;
    case WorkItem::kAckEvent:
      co_await process_ack_locked(item);
      break;
  }
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

sim::CoTask<ObjectMeta> Osd::ensure_object_meta(const fs::ObjectId& oid) {
  if (auto m = meta_cache_.lookup(oid)) co_return *m;
  ObjectMeta meta;
  if (meta_cache_.authoritative()) {
    // Write-through cache warmed since boot: a miss is authoritative and
    // costs no storage read (§3.4: "most of the metadata exist in memory").
    meta.exists = store_->object_in_memory(oid) || store_->assume_populated();
    meta.size = meta.exists ? store_->populated_object_size() : 0;
  } else {
    // Community read-modify-write: object_info then snapset, from the
    // filestore — device reads that land in the middle of the write stream.
    auto oi = co_await store_->getattr(oid, "_");
    meta.exists = oi.has_value();
    if (meta.exists) {
      auto ss = co_await store_->getattr(oid, "snapset");
      (void)ss;
      meta.size = store_->assume_populated() ? store_->populated_object_size()
                                             : store_->object_size(oid);
    }
  }
  meta_cache_.insert(oid, meta);
  co_return meta;
}

// ---------------------------------------------------------------------------
// Primary write path
// ---------------------------------------------------------------------------

sim::CoTask<void> Osd::process_client_write(WorkItem& item) {
  if (cmap_.erasure()) {
    co_await process_client_write_ec(item);
    co_return;
  }
  OpRef op = item.op;
  ClientIoMsg& msg = *op->msg;
  Pg& pg = *find_pg(item.pg);

  co_await dlog_.log(cfg_.log_entries_dispatch);
  ObjectMeta meta = co_await ensure_object_meta(msg.oid);
  co_await charge_cpu(cfg_.prepare_cpu, true);

  const std::uint64_t version = pg.next_version();
  fs::Transaction txn;
  txn.write(msg.oid, msg.offset, msg.data);
  {
    std::vector<std::pair<std::string, kv::Value>> kvs;
    kvs.emplace_back(pg.log_key(version), kv::Value::virt(std::uint32_t(cfg_.pg_log_entry_bytes)));
    kvs.emplace_back(pg.info_key(), kv::Value::virt(std::uint32_t(cfg_.pg_info_bytes)));
    txn.omap_setkeys(msg.oid, std::move(kvs));
  }
  txn.setattrs(msg.oid, {{"_", kv::Value::virt(std::uint32_t(cfg_.attr_oi_bytes))},
                         {"snapset", kv::Value::virt(std::uint32_t(cfg_.attr_ss_bytes))}});
  if (!profile_.skip_alloc_hint) txn.set_alloc_hint(msg.oid);
  if (version % cfg_.pg_log_trim_every == 0 && version > pg.log_floor + cfg_.pg_log_keep) {
    const std::uint64_t new_floor = version - cfg_.pg_log_keep;
    txn.omap_rmkeyrange(msg.oid, pg.log_key(pg.log_floor), pg.log_key(new_floor));
    pg.log_floor = new_floor;
  }

  // Every write refreshes the in-memory object context (community Ceph does
  // this too); the community/AFCeph difference is the cache's capacity and
  // whether a miss forces a storage read.
  {
    ObjectMeta updated;
    updated.exists = true;
    updated.size = std::max(meta.size, msg.offset + msg.data.size());
    updated.version = version;
    meta_cache_.insert(msg.oid, updated);
  }

  // Splay replication: subops to every replica, ack when all journals
  // (local + replicas) have committed.
  op->version = version;
  op->commits_needed = unsigned(pg.acting().size());
  for (std::uint32_t peer : pg.acting()) {
    if (peer == id_) continue;
    if (peers_.find(peer) == peers_.end()) {
      op->commits_needed--;  // peer unreachable (e.g. degraded test setups)
      continue;
    }
    send_rep_op(*op, peer);
    op->waiting_peers.push_back(peer);
  }
  op->commits_planned = op->commits_needed;
  op->min_commits = std::min(cmap_.min_size(), op->commits_needed);
  if (cfg_.rep_timeout > 0 && !op->waiting_peers.empty()) arm_rep_timer(op);
  op->stamp(kStSubmitted, sim_.now());

  // Admission to journal+filestore — still inside the PG critical section,
  // which is exactly the paper's Fig. 3 step (3) complaint.
  const std::uint64_t jbytes = txn.encoded_bytes();
  const Time admit_t0 = sim_.now();
  co_await throttles_.filestore_ops.acquire(1);
  co_await throttles_.filestore_bytes.acquire(jbytes);
  const bool direct = store_->commit_model() == store::ObjectStore::CommitModel::kStoreDirect;
  if (!direct) {
    co_await throttles_.journal_ops.acquire(1);
    co_await journal_.reserve(jbytes);
  }
  if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
    if (const Time admitted = sim_.now(); admitted > admit_t0) {
      tr->complete(op->span, tr->stage_id(stage::kJournalThrottle), admit_t0, admitted);
    }
  }
  txn.trace = op->span;
  op->journal_bytes = jbytes;
  op->txn = std::move(txn);
  op->stamp(kStJournalQ, sim_.now());
  client_writes_++;
  op->local_oid = msg.oid;
  note_apply_queued(msg.oid);
  if (direct) {
    sim::spawn(flash_commit_path(op));
  } else {
    sim::spawn(journal_path(op));
  }
}

sim::CoTask<void> Osd::journal_path(OpRef op) {
  const std::uint64_t seq =
      co_await journal_.write_entry(op->journal_bytes, op->txn.encode(), op->span);
  if (seq == 0) co_return;  // journal closing: entry rejected, not committed
  throttles_.journal_ops.release(1);
  op->stamp(kStJournaled, sim_.now());
  co_await dlog_.log(cfg_.log_entries_journal);

  // Write-ahead satisfied: queue the filestore apply.
  ApplyItem ai;
  ai.txn = std::move(op->txn);
  ai.journal_bytes = op->journal_bytes;
  ai.op = op;
  ai.oid = op->local_oid;
  ai.seq = seq;
  apply_q_.try_push(std::move(ai));

  if (profile_.dedicated_completion) {
    // OP-lock work only; PG-side status work is deferred to the batched
    // completion worker.
    co_await charge_cpu(cfg_.oplock_cpu, false);
    completion_q_.try_push(CompletionEvent{CompletionEvent::kCommit, op, op->msg->pg, {}, nullptr});
  } else {
    finisher_q_.try_push(CompletionEvent{CompletionEvent::kCommit, op, op->msg->pg, {}, nullptr});
  }
}

sim::CoTask<void> Osd::flash_commit_path(OpRef op) {
  // One round trip: queue_transaction resumes with the write both durable
  // (WAL/COW committed) and applied — there is no separate apply pass to
  // queue and no journal record to retire later.
  const std::uint64_t seq = co_await store_->queue_transaction(op->txn, profile_.light_transactions);
  if (seq == 0) co_return;  // store closing: not committed, must not ack
  throttles_.filestore_ops.release(1);
  throttles_.filestore_bytes.release(op->journal_bytes);
  note_apply_done(op->local_oid);
  op->stamp(kStJournaled, sim_.now());
  co_await dlog_.log(cfg_.log_entries_journal);

  if (profile_.dedicated_completion) {
    co_await charge_cpu(cfg_.oplock_cpu, false);
    completion_q_.try_push(CompletionEvent{CompletionEvent::kCommit, op, op->msg->pg, {}, nullptr});
  } else {
    finisher_q_.try_push(CompletionEvent{CompletionEvent::kCommit, op, op->msg->pg, {}, nullptr});
  }
}

// ---------------------------------------------------------------------------
// Replica path
// ---------------------------------------------------------------------------

sim::CoTask<void> Osd::process_replica_op(WorkItem& item) {
  RepOpMsg& rep = *item.rep;
  if (cfg_.membership.detected() && rep.epoch != 0 && rep.epoch < known_epoch_) {
    // Epoch fence (replica side): the primary prepared this sub-op under a
    // map older than ours. Reject before journaling — a stale ex-primary's
    // write must not gain durable copies — and tell it what to catch up to.
    counters_.add("osd.fenced_rep_ops");
    if (item.conn != nullptr) {
      auto reply = std::make_shared<RepReplyMsg>();
      reply->op_id = rep.op_id;
      reply->pg = rep.pg;
      reply->from_osd = id_;
      reply->fenced = true;
      reply->map_epoch = known_epoch_;
      net::Message wire;
      wire.type = kRepReply;
      wire.size = cfg_.reply_msg_bytes;
      wire.body = std::move(reply);
      if (trace::Collector::active() != nullptr) {
        wire.trace = trace::Span{rep.op_id, trace::osd_track(id_)};
      }
      item.conn->send(std::move(wire));
    }
    co_return;
  }
  Pg* pgp = find_pg(item.pg);
  if (pgp == nullptr) co_return;
  Pg& pg = *pgp;

  co_await dlog_.log(cfg_.log_entries_replica);
  co_await charge_cpu(cfg_.replica_prepare_cpu, true);
  pg.observe_version(rep.version);

  fs::Transaction txn;
  txn.write(rep.oid, rep.offset, rep.data);
  {
    std::vector<std::pair<std::string, kv::Value>> kvs;
    kvs.emplace_back(pg.log_key(rep.version), kv::Value::virt(std::uint32_t(cfg_.pg_log_entry_bytes)));
    kvs.emplace_back(pg.info_key(), kv::Value::virt(std::uint32_t(cfg_.pg_info_bytes)));
    txn.omap_setkeys(rep.oid, std::move(kvs));
  }
  txn.setattrs(rep.oid, {{"_", kv::Value::virt(std::uint32_t(cfg_.attr_oi_bytes))}});
  if (!profile_.skip_alloc_hint) txn.set_alloc_hint(rep.oid);
  if (trace::Collector::active() != nullptr) txn.trace = item_span(item, id_);

  const std::uint64_t jbytes = txn.encoded_bytes();
  co_await throttles_.filestore_ops.acquire(1);
  co_await throttles_.filestore_bytes.acquire(jbytes);
  if (store_->commit_model() == store::ObjectStore::CommitModel::kStoreDirect) {
    replica_ops_++;
    note_apply_queued(rep.oid);
    sim::spawn(flash_replica_path(item.rep, item.conn, std::move(txn), jbytes));
    co_return;
  }
  co_await throttles_.journal_ops.acquire(1);
  co_await journal_.reserve(jbytes);
  replica_ops_++;
  note_apply_queued(rep.oid);
  sim::spawn(replica_journal_path(item.rep, item.conn, std::move(txn), jbytes));
}

sim::CoTask<void> Osd::replica_journal_path(std::shared_ptr<RepOpMsg> rep,
                                            net::Connection* conn, fs::Transaction txn,
                                            std::uint64_t bytes) {
  const trace::Span rep_span = txn.trace;
  const std::uint64_t seq = co_await journal_.write_entry(bytes, txn.encode(), rep_span);
  if (seq == 0) co_return;  // journal closing: entry rejected, not committed
  throttles_.journal_ops.release(1);
  co_await dlog_.log(cfg_.log_entries_journal);

  ApplyItem ai;
  ai.txn = std::move(txn);
  ai.journal_bytes = bytes;
  ai.oid = rep->oid;
  ai.seq = seq;
  apply_q_.try_push(std::move(ai));

  if (profile_.dedicated_completion) {
    // AFCeph: send the commit ack straight from the completion context.
    co_await charge_cpu(cfg_.oplock_cpu, false);
    if (conn != nullptr) {
      auto reply = std::make_shared<RepReplyMsg>();
      reply->op_id = rep->op_id;
      reply->pg = rep->pg;
      reply->from_osd = id_;
      net::Message wire;
      wire.type = kRepReply;
      wire.size = cfg_.reply_msg_bytes;
      wire.body = std::move(reply);
      wire.trace = rep_span;
      conn->send(std::move(wire));
    }
  } else {
    // Community: the commit notification is finisher work under the PG lock.
    finisher_q_.try_push(
        CompletionEvent{CompletionEvent::kRepCommitSend, nullptr, rep->pg, rep, conn});
  }
}

sim::CoTask<void> Osd::flash_replica_path(std::shared_ptr<RepOpMsg> rep,
                                          net::Connection* conn, fs::Transaction txn,
                                          std::uint64_t bytes) {
  const trace::Span rep_span = txn.trace;
  const std::uint64_t seq = co_await store_->queue_transaction(txn, profile_.light_transactions);
  if (seq == 0) co_return;  // store closing: not committed, no ack
  throttles_.filestore_ops.release(1);
  throttles_.filestore_bytes.release(bytes);
  note_apply_done(rep->oid);
  co_await dlog_.log(cfg_.log_entries_journal);

  if (profile_.dedicated_completion) {
    co_await charge_cpu(cfg_.oplock_cpu, false);
    if (conn != nullptr) {
      auto reply = std::make_shared<RepReplyMsg>();
      reply->op_id = rep->op_id;
      reply->pg = rep->pg;
      reply->from_osd = id_;
      net::Message wire;
      wire.type = kRepReply;
      wire.size = cfg_.reply_msg_bytes;
      wire.body = std::move(reply);
      wire.trace = rep_span;
      conn->send(std::move(wire));
    }
  } else {
    finisher_q_.try_push(
        CompletionEvent{CompletionEvent::kRepCommitSend, nullptr, rep->pg, rep, conn});
  }
}

// ---------------------------------------------------------------------------
// Community events routed back through the OP_WQ
// ---------------------------------------------------------------------------

sim::CoTask<void> Osd::process_rep_reply_locked(WorkItem& item) {
  co_await charge_cpu(cfg_.repreply_cpu, true);
  item.op->commits_seen++;
  item.op->stamp(kStRepAcked, sim_.now());
  handle_commit_recorded(item.op);
}

sim::CoTask<void> Osd::process_ack_locked(WorkItem& item) {
  co_await charge_cpu(cfg_.ack_cpu, true);
  co_await dlog_.log(cfg_.log_entries_ack);
  deliver_ack(item.op);
}

// ---------------------------------------------------------------------------
// Completions
// ---------------------------------------------------------------------------

void Osd::handle_commit_recorded(OpRef& op) {
  if (op->commits_seen < op->commits_needed || op->acked || op->failed) return;
  disarm_rep_timer(*op);
  if (op->commits_seen < op->min_commits) {
    // The watchdog abandoned so many peers that fewer than min_size copies
    // are durable: the write must not be acknowledged.
    fail_op(op);
    return;
  }
  op->acked = true;
  if (profile_.fast_ack) {
    fast_ack_now(op);
  } else {
    WorkItem item;
    item.kind = WorkItem::kAckEvent;
    item.pg = op->msg->pg;
    item.op = op;
    shard_push(std::move(item));  // the ack competes with data ops again
  }
}

// ---------------------------------------------------------------------------
// Replication recovery (inert while OsdConfig::rep_timeout == 0)
// ---------------------------------------------------------------------------

void Osd::send_rep_op(OpCtx& op, std::uint32_t peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  ClientIoMsg& msg = *op.msg;
  auto rep = std::make_shared<RepOpMsg>();
  rep->op_id = msg.op_id;
  rep->pg = msg.pg;
  rep->version = op.version;
  rep->epoch = known_epoch_;  // watchdog resends restamp with the fresh map
  if (!op.ec_shards.empty()) {
    // EC stripe: the sub-op carries only this peer's shard (oid, shard-space
    // offset, chunk payload) — the replica path itself is EC-oblivious. The
    // shard table also serves watchdog resends.
    const OpCtx::EcShard* sh = nullptr;
    for (const auto& s : op.ec_shards)
      if (s.peer == peer) {
        sh = &s;
        break;
      }
    if (sh == nullptr) return;
    rep->oid = sh->oid;
    rep->offset = sh->offset;
    rep->data = sh->data;
  } else {
    rep->oid = msg.oid;
    rep->offset = msg.offset;
    rep->data = msg.data;
  }
  net::Message wire;
  wire.type = kRepOp;
  wire.size = rep->data.size() + cfg_.repop_header_bytes;
  wire.body = std::move(rep);
  wire.trace = op.span;
  it->second->send(std::move(wire));
}

void Osd::arm_rep_timer(OpRef& op) {
  op->rep_timer_armed = true;
  op->rep_timer = sim_.schedule_after(
      cfg_.rep_timeout, [this, id = op->msg->op_id] { on_rep_timeout(id); },
      "osd.rep_timeout");
}

void Osd::disarm_rep_timer(OpCtx& op) {
  if (!op.rep_timer_armed) return;
  op.rep_timer_armed = false;
  sim_.cancel(op.rep_timer);
}

void Osd::on_rep_timeout(std::uint64_t op_id) {
  auto it = inflight_.find(op_id);
  if (it == inflight_.end()) return;
  OpRef op = it->second;
  op->rep_timer_armed = false;
  if (op->acked || op->failed || op->waiting_peers.empty()) return;
  if (op->rep_retries < cfg_.rep_retries) {
    op->rep_retries++;
    counters_.add("osd.rep_retry_rounds");
    if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
      tr->instant(op->span, tr->stage_id(stage::kOsdRepRetry), sim_.now());
    }
    for (std::uint32_t peer : op->waiting_peers) send_rep_op(*op, peer);
    arm_rep_timer(op);
    return;
  }
  // Retries exhausted: abandon the silent peers and resolve the op with
  // whatever is durable — a degraded ack if min_size copies committed,
  // an ok=false failure otherwise.
  if (cfg_.membership.detected()) {
    // Degraded-ack gating: only a peer the learned map has marked down may
    // be abandoned. A silent-but-up peer could mean *we* are the partitioned
    // side — if the monitor later swings the PG to that peer, an ack issued
    // here becomes acked-then-lost. Fail the op instead; the client retries
    // against whatever primary the healed map names.
    unsigned down = 0;
    for (std::uint32_t peer : op->waiting_peers) {
      if (peer < known_down_.size() && known_down_[peer]) down++;
    }
    if (down < op->waiting_peers.size()) {
      counters_.add("osd.rep_unresolved_failures");
      fail_op(op);
      return;
    }
  }
  counters_.add("osd.rep_peers_abandoned", op->waiting_peers.size());
  op->commits_needed -= unsigned(op->waiting_peers.size());
  op->waiting_peers.clear();
  handle_commit_recorded(op);
}

void Osd::fail_op(OpRef op) {
  if (op->acked || op->failed) return;
  op->failed = true;
  disarm_rep_timer(*op);
  counters_.add("osd.write_failures");
  ClientIoMsg& msg = *op->msg;
  throttles_.messages.release(1);
  throttles_.message_bytes.release(msg.data.size() + 150);
  qos_op_done();
  inflight_.erase(msg.op_id);
  if (profile_.ordered_acks && msg.is_write) {
    // Drop the failed op from the ordered-ack ledger, then drain any acks it
    // was holding back.
    auto& st = ack_state_[msg.client_id];
    st.outstanding.erase(msg.op_id);
    st.held.erase(msg.op_id);
    while (!st.held.empty() && !st.outstanding.empty() &&
           st.held.begin()->first == *st.outstanding.begin()) {
      OpRef next = st.held.begin()->second;
      st.held.erase(st.held.begin());
      st.outstanding.erase(st.outstanding.begin());
      send_reply_message(next);
    }
  }
  auto reply = std::make_shared<IoReplyMsg>();
  reply->op_id = msg.op_id;
  reply->is_write = true;
  reply->ok = false;
  reply->issued_at = msg.issued_at;
  net::Message wire;
  wire.type = kWriteReply;
  wire.size = cfg_.reply_msg_bytes;
  wire.body = std::move(reply);
  wire.trace = op->span;
  if (op->reply_conn != nullptr) op->reply_conn->send(std::move(wire));
  if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
    tr->end(op->span, tr->stage_id(stage::kWriteOp), sim_.now());
  }
}

void Osd::fast_ack_now(OpRef op) {
  sim::spawn_fn([this, op]() mutable -> sim::CoTask<void> {
    co_await charge_cpu(cfg_.fast_ack_cpu, false);
    deliver_ack(op);
  });
}

sim::CoTask<void> Osd::finisher_loop() {
  // Community Ceph: ONE finisher thread handles every journal and filestore
  // completion, each needing the PG lock (§2.3: "a single thread handles all
  // of the completion works ... and it also needs PG Lock").
  for (;;) {
    auto evt = co_await finisher_q_.pop();
    if (!evt) break;
    Pg* pg = find_pg(evt->pg);
    if (pg == nullptr) continue;
    co_await pg->lock().lock();
    co_await charge_cpu(cfg_.commit_cpu, false);
    switch (evt->kind) {
      case CompletionEvent::kCommit:
        evt->op->commits_seen++;
        evt->op->stamp(kStCommitEvt, sim_.now());
        handle_commit_recorded(evt->op);
        break;
      case CompletionEvent::kRepCommit:
        evt->op->commits_seen++;
        evt->op->stamp(kStRepAcked, sim_.now());
        handle_commit_recorded(evt->op);
        break;
      case CompletionEvent::kApplied:
        break;  // bookkeeping only
      case CompletionEvent::kRepCommitSend: {
        if (evt->conn != nullptr) {
          auto reply = std::make_shared<RepReplyMsg>();
          reply->op_id = evt->rep->op_id;
          reply->pg = evt->rep->pg;
          reply->from_osd = id_;
          net::Message wire;
          wire.type = kRepReply;
          wire.size = cfg_.reply_msg_bytes;
          wire.body = std::move(reply);
          if (trace::Collector::active() != nullptr) {
            wire.trace = trace::Span{evt->rep->op_id, trace::osd_track(id_)};
          }
          evt->conn->send(std::move(wire));
        }
        break;
      }
    }
    pg->lock().unlock();
  }
}

sim::CoTask<void> Osd::completion_worker_loop() {
  // AFCeph Fig. 6: deferred completion work is drained in batches; no PG
  // lock is taken — op ordering was already fixed when the op entered the
  // PG's pending queue, and per-op status updates are OP-lock-scale work.
  for (;;) {
    auto first = co_await completion_q_.pop();
    if (!first) break;
    std::vector<CompletionEvent> batch{std::move(*first)};
    while (batch.size() < cfg_.completion_batch_max && !completion_q_.empty()) {
      auto more = co_await completion_q_.pop();
      if (!more) break;
      batch.push_back(std::move(*more));
    }
    co_await charge_cpu(
        cfg_.completion_batch_overhead + cfg_.completion_batch_cpu * Time(batch.size()), false);
    for (auto& evt : batch) {
      switch (evt.kind) {
        case CompletionEvent::kCommit:
          evt.op->commits_seen++;
          evt.op->stamp(kStCommitEvt, sim_.now());
          handle_commit_recorded(evt.op);
          break;
        case CompletionEvent::kRepCommit:
          handle_commit_recorded(evt.op);  // counted at dispatch already
          break;
        case CompletionEvent::kApplied:
        case CompletionEvent::kRepCommitSend:
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Filestore apply
// ---------------------------------------------------------------------------

sim::CoTask<void> Osd::apply_loop() {
  for (;;) {
    auto item = co_await apply_q_.pop();
    if (!item) break;
    // OpSequencer: a PG's transactions apply strictly in submission order.
    ApplySeq& seq = apply_seq_[item->oid.pg];
    if (seq.busy) {
      seq.pending.push_back(std::move(*item));
      continue;
    }
    seq.busy = true;
    co_await do_apply(std::move(*item));
    while (!seq.pending.empty()) {
      ApplyItem next = std::move(seq.pending.front());
      seq.pending.pop_front();
      co_await do_apply(std::move(next));
    }
    seq.busy = false;
  }
}

sim::CoTask<void> Osd::do_apply(ApplyItem item) {
  co_await store_->apply_transaction(item.txn, profile_.light_transactions);
  if (item.seq != 0) {
    // Retire the journal record: same bytes freed at the same point as the
    // raw release below, plus the retained ring image is dropped.
    journal_.mark_applied(item.seq);
  } else {
    journal_.release(item.journal_bytes);
  }
  throttles_.filestore_ops.release(1);
  throttles_.filestore_bytes.release(item.journal_bytes);
  note_apply_done(item.oid);
  if (item.op != nullptr) {
    if (profile_.dedicated_completion) {
      co_await charge_cpu(cfg_.oplock_cpu, false);
    } else {
      finisher_q_.try_push(
          CompletionEvent{CompletionEvent::kApplied, item.op, item.op->msg->pg, {}, nullptr});
    }
  }
}

void Osd::note_apply_queued(const fs::ObjectId& oid) { pending_applies_[oid]++; }

void Osd::note_apply_done(const fs::ObjectId& oid) {
  auto it = pending_applies_.find(oid);
  if (it == pending_applies_.end()) return;
  if (--it->second == 0) {
    pending_applies_.erase(it);
    apply_gate_cv_.notify_all();
  }
}

sim::CoTask<void> Osd::wait_object_readable(const fs::ObjectId& oid) {
  while (pending_applies_.find(oid) != pending_applies_.end()) {
    co_await apply_gate_cv_.wait();
  }
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

sim::CoTask<void> Osd::process_client_read(WorkItem& item) {
  if (cmap_.erasure()) {
    co_await process_client_read_ec(item);
    co_return;
  }
  OpRef op = item.op;
  ClientIoMsg& msg = *op->msg;

  // Read-after-write consistency (ondisk_read_lock): wait for this
  // object's journaled writes to reach the filestore.
  co_await wait_object_readable(msg.oid);
  co_await dlog_.log(cfg_.log_entries_read);
  ObjectMeta meta = co_await ensure_object_meta(msg.oid);
  co_await charge_cpu(cfg_.read_cpu, true);

  auto reply = std::make_shared<IoReplyMsg>();
  reply->op_id = msg.op_id;
  reply->is_write = false;
  reply->issued_at = msg.issued_at;
  if (meta.exists) {
    auto rr = co_await store_->read(msg.oid, msg.offset, msg.read_len, msg.want_data);
    reply->ok = rr.found;
    reply->data_len = rr.length;
    reply->data = std::move(rr.data);
  } else {
    reply->ok = false;
  }
  client_reads_++;

  throttles_.messages.release(1);
  throttles_.message_bytes.release(msg.data.size() + 150);
  qos_op_done();
  inflight_.erase(msg.op_id);

  net::Message wire;
  wire.type = kReadReply;
  wire.size = reply->data_len + cfg_.reply_msg_bytes;
  wire.body = std::move(reply);
  wire.trace = op->span;
  op->reply_conn->send(std::move(wire));
  if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
    tr->end(op->span, tr->stage_id(stage::kReadOp), sim_.now());
  }
}

// ---------------------------------------------------------------------------
// Erasure-coded pool paths (never reached for replicated pools)
// ---------------------------------------------------------------------------

bool Osd::osd_up(std::uint32_t osd_id) const {
  for (const auto& e : cmap_.crush().osds())
    if (e.id == osd_id) return e.up;
  return false;
}

sim::CoTask<void> Osd::process_client_write_ec(WorkItem& item) {
  OpRef op = item.op;
  ClientIoMsg& msg = *op->msg;
  Pg& pg = *find_pg(item.pg);
  const unsigned k = cmap_.ec_k();

  co_await dlog_.log(cfg_.log_entries_dispatch);
  ObjectMeta meta = co_await ensure_object_meta(msg.oid);
  co_await charge_cpu(cfg_.prepare_cpu, true);
  co_await charge_cpu(cfg_.ec_encode_cpu, false);  // k+m GF(256) MAC sweep

  // Copy: retargets during the co_awaits below may swap the PG's set.
  const std::vector<std::uint32_t> acting = pg.acting();
  unsigned self_pos = unsigned(acting.size());
  for (unsigned p = 0; p < unsigned(acting.size()); p++)
    if (acting[p] == id_) {
      self_pos = p;
      break;
    }
  if (self_pos == unsigned(acting.size())) {
    // A stale-map client reached an OSD that holds no shard position.
    fail_op(op);
    co_return;
  }

  // Chunk the stripe. Data shards keep the O(1) virtual representation when
  // the stripe divides evenly (the hot 4K path); parity is always computed
  // on real bytes so scrub can recheck the stripe equation against stored
  // content later.
  const std::uint64_t clen = ec::chunk_len(msg.data.size(), k);
  const std::uint64_t soff = ec::shard_offset(msg.offset, k);
  std::vector<Payload> shards;
  shards.reserve(acting.size());
  {
    std::vector<std::vector<std::uint8_t>> chunks(k);
    const bool exact = msg.data.size() % k == 0;
    for (unsigned j = 0; j < k; j++) {
      Payload sl = msg.data.slice(
          std::uint64_t(j) * clen,
          std::min<std::uint64_t>(clen, msg.data.size() - std::uint64_t(j) * clen));
      chunks[j] = sl.materialize();
      chunks[j].resize(clen, 0);
      shards.push_back(exact && sl.is_virtual() ? sl : Payload::bytes(chunks[j]));
    }
    for (auto& par : codec_->encode(chunks)) shards.push_back(Payload::bytes(std::move(par)));
  }

  const std::uint64_t version = pg.next_version();
  op->version = version;
  op->local_oid = ec::shard_oid(msg.oid, self_pos);
  fs::Transaction txn;
  txn.write(op->local_oid, soff, shards[self_pos]);
  {
    std::vector<std::pair<std::string, kv::Value>> kvs;
    kvs.emplace_back(pg.log_key(version), kv::Value::virt(std::uint32_t(cfg_.pg_log_entry_bytes)));
    kvs.emplace_back(pg.info_key(), kv::Value::virt(std::uint32_t(cfg_.pg_info_bytes)));
    txn.omap_setkeys(op->local_oid, std::move(kvs));
  }
  txn.setattrs(op->local_oid, {{"_", kv::Value::virt(std::uint32_t(cfg_.attr_oi_bytes))},
                               {"snapset", kv::Value::virt(std::uint32_t(cfg_.attr_ss_bytes))}});
  if (!profile_.skip_alloc_hint) txn.set_alloc_hint(op->local_oid);
  if (version % cfg_.pg_log_trim_every == 0 && version > pg.log_floor + cfg_.pg_log_keep) {
    const std::uint64_t new_floor = version - cfg_.pg_log_keep;
    txn.omap_rmkeyrange(op->local_oid, pg.log_key(pg.log_floor), pg.log_key(new_floor));
    pg.log_floor = new_floor;
  }
  {
    ObjectMeta updated;
    updated.exists = true;
    updated.size = std::max(meta.size, msg.offset + msg.data.size());
    updated.version = version;
    meta_cache_.insert(msg.oid, updated);
  }

  // One sub-op per remote shard position; the replica path is EC-oblivious.
  op->commits_needed = 0;
  for (unsigned p = 0; p < unsigned(acting.size()); p++) {
    const std::uint32_t peer = acting[p];
    if (peer == cluster::ClusterMap::kNoOsd) continue;  // unfillable position
    if (peer == id_) {
      op->commits_needed++;
      continue;
    }
    if (peers_.find(peer) == peers_.end()) continue;
    op->ec_shards.push_back(OpCtx::EcShard{peer, ec::shard_oid(msg.oid, p), soff, shards[p]});
    op->commits_needed++;
    send_rep_op(*op, peer);
    op->waiting_peers.push_back(peer);
  }
  op->commits_planned = op->commits_needed;
  // Unclamped ack floor: a stripe with fewer than k+1 durable shards must
  // fail, not ack degraded — one further loss would destroy acked data.
  op->min_commits = cmap_.ack_floor();
  if (cfg_.rep_timeout > 0 && !op->waiting_peers.empty()) arm_rep_timer(op);
  op->stamp(kStSubmitted, sim_.now());

  const std::uint64_t jbytes = txn.encoded_bytes();
  const Time admit_t0 = sim_.now();
  co_await throttles_.filestore_ops.acquire(1);
  co_await throttles_.filestore_bytes.acquire(jbytes);
  const bool direct = store_->commit_model() == store::ObjectStore::CommitModel::kStoreDirect;
  if (!direct) {
    co_await throttles_.journal_ops.acquire(1);
    co_await journal_.reserve(jbytes);
  }
  if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
    if (const Time admitted = sim_.now(); admitted > admit_t0) {
      tr->complete(op->span, tr->stage_id(stage::kJournalThrottle), admit_t0, admitted);
    }
  }
  txn.trace = op->span;
  op->journal_bytes = jbytes;
  op->txn = std::move(txn);
  op->stamp(kStJournalQ, sim_.now());
  client_writes_++;
  note_apply_queued(op->local_oid);
  if (direct) {
    sim::spawn(flash_commit_path(op));
  } else {
    sim::spawn(journal_path(op));
  }
}

sim::CoTask<void> Osd::process_client_read_ec(WorkItem& item) {
  OpRef op = item.op;
  ClientIoMsg& msg = *op->msg;

  co_await dlog_.log(cfg_.log_entries_read);
  // Charged for cost parity with the replicated path; existence is decided
  // by the gather itself (< k shards found = not found).
  ObjectMeta meta = co_await ensure_object_meta(msg.oid);
  (void)meta;
  co_await charge_cpu(cfg_.read_cpu, true);
  client_reads_++;
  // Detach the shard gather: a partitioned holder can stall it for
  // ec_read_timeout, which must not wedge this PG's op stream.
  sim::spawn(ec_read_gather(op));
}

sim::CoTask<void> Osd::ec_read_gather(OpRef op) {
  ClientIoMsg& msg = *op->msg;
  const unsigned k = cmap_.ec_k();
  const unsigned m = cmap_.ec_m();
  const std::uint64_t clen = ec::chunk_len(msg.read_len, k);
  const std::uint64_t soff = ec::shard_offset(msg.offset, k);
  std::vector<std::uint32_t> acting;
  if (Pg* pg = find_pg(msg.pg)) acting = pg->acting();
  if (acting.size() < std::size_t(k) + m) {
    send_read_reply(op, false, 0, std::nullopt);
    co_return;
  }

  ShardGather g(sim_);
  const std::uint64_t rid = next_shard_rid_++;
  shard_gathers_[rid] = &g;
  std::vector<unsigned> local;

  auto request = [&](unsigned p) {
    if (g.good.count(p) != 0 || g.bad.count(p) != 0 || g.waiting.count(p) != 0) return;
    const std::uint32_t holder = acting[p];
    if (holder == cluster::ClusterMap::kNoOsd) {
      g.bad.insert(p);
      return;
    }
    if (holder == id_) {
      g.waiting.insert(p);
      local.push_back(p);
      return;
    }
    // A CRUSH-down holder is skipped immediately; only a *silently*
    // unreachable one (partition: up but blackholed) costs ec_read_timeout.
    if (peers_.find(holder) == peers_.end() || !osd_up(holder)) {
      g.bad.insert(p);
      return;
    }
    auto req = std::make_shared<ShardReadMsg>();
    req->rid = rid;
    req->pg = msg.pg;
    req->oid = ec::shard_oid(msg.oid, p);
    req->offset = soff;
    req->len = clen;
    req->want_data = msg.want_data;
    net::Message wire;
    wire.type = kShardRead;
    wire.size = 200;
    wire.body = std::move(req);
    wire.trace = op->span;
    peers_[holder]->send(std::move(wire));
    g.waiting.insert(p);
  };

  // Serve one locally-held shard position (the primary usually holds one).
  auto fetch_local = [&](unsigned p) -> sim::CoTask<void> {
    const fs::ObjectId soid = ec::shard_oid(msg.oid, p);
    co_await wait_object_readable(soid);
    bool ok = store_->object_in_memory(soid) && store_->verify_object(soid);
    if (ok) {
      auto rr = co_await store_->read(soid, soff, clen, msg.want_data);
      if (rr.found) {
        g.good[p] = GatherChunk{rr.length, std::move(rr.data)};
      } else {
        ok = false;
      }
    }
    if (!ok) g.bad.insert(p);
    g.waiting.erase(p);
  };

  for (unsigned phase = 0; phase < 2; phase++) {
    if (phase == 0) {
      // Healthy path: data shards only — no decode, no parity traffic.
      for (unsigned p = 0; p < k; p++) request(p);
    } else {
      if (g.good.size() >= k && g.bad.empty()) break;  // all data chunks arrived
      // Something is missing or corrupt: pull every parity shard and
      // reconstruct from any k survivors.
      for (unsigned p = k; p < k + m; p++) request(p);
    }
    for (unsigned p : local) co_await fetch_local(p);
    local.clear();
    while (!g.waiting.empty()) {
      if (co_await g.cv.wait_for(cfg_.ec_read_timeout) == sim::TimedOut::kYes) {
        for (unsigned p : g.waiting) g.bad.insert(p);
        g.waiting.clear();
      }
    }
  }
  shard_gathers_.erase(rid);

  bool data_complete = true;
  for (unsigned p = 0; p < k; p++)
    if (g.good.count(p) == 0) data_complete = false;

  if (data_complete) {
    std::uint64_t total = 0;
    std::optional<std::vector<std::uint8_t>> out;
    if (msg.want_data) out.emplace();
    for (unsigned p = 0; p < k; p++) {
      auto& ch = g.good[p];
      total += ch.len;
      if (msg.want_data && ch.bytes) {
        auto b = std::move(*ch.bytes);
        b.resize(clen, 0);
        out->insert(out->end(), b.begin(), b.end());
      }
    }
    total = std::min<std::uint64_t>(total, msg.read_len);
    if (out && out->size() > msg.read_len) out->resize(msg.read_len);
    send_read_reply(op, true, total, std::move(out));
    co_return;
  }

  if (g.good.size() < k) {
    // Fewer than k survivors: information-theoretically unrecoverable.
    send_read_reply(op, false, 0, std::nullopt);
    co_return;
  }

  // Degraded read: decode the stripe from any k surviving shards.
  co_await charge_cpu(cfg_.ec_decode_cpu, false);
  counters_.add("osd.ec_reconstruct_reads");
  if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
    tr->instant(op->span, tr->stage_id(stage::kEcReconstruct), sim_.now());
  }
  if (!msg.want_data) {
    send_read_reply(op, true, msg.read_len, std::nullopt);
    co_return;
  }
  std::vector<unsigned> present;
  std::vector<std::vector<std::uint8_t>> chunks;
  for (auto& [p, ch] : g.good) {
    if (present.size() == k) break;
    std::vector<std::uint8_t> b = ch.bytes ? std::move(*ch.bytes) : std::vector<std::uint8_t>{};
    b.resize(clen, 0);
    present.push_back(p);
    chunks.push_back(std::move(b));
  }
  auto data = codec_->decode(present, chunks);
  if (!data) {
    send_read_reply(op, false, 0, std::nullopt);
    co_return;
  }
  std::vector<std::uint8_t> out;
  out.reserve(std::size_t(clen) * k);
  for (unsigned p = 0; p < k; p++)
    out.insert(out.end(), (*data)[p].begin(), (*data)[p].end());
  if (out.size() > msg.read_len) out.resize(msg.read_len);
  const std::uint64_t total = out.size();
  send_read_reply(op, true, total, std::move(out));
}

sim::CoTask<void> Osd::serve_shard_read(std::shared_ptr<ShardReadMsg> msg,
                                        net::Connection* conn) {
  const Time t0 = sim_.now();
  co_await charge_cpu(cfg_.read_cpu / 2, true);  // no client assembly work here
  auto reply = std::make_shared<ShardReadReplyMsg>();
  reply->rid = msg->rid;
  if (auto sn = ec::parse_shard(msg->oid.name)) reply->shard = sn->shard;
  co_await wait_object_readable(msg->oid);
  // Per-shard CRC gate: a bit-flipped shard reports itself bad here, which
  // is what turns silent corruption into a reconstructing read.
  if (store_->object_in_memory(msg->oid) && store_->verify_object(msg->oid)) {
    auto rr = co_await store_->read(msg->oid, msg->offset, msg->len, msg->want_data);
    reply->ok = rr.found;
    reply->data_len = rr.length;
    reply->data = std::move(rr.data);
  } else {
    reply->ok = false;
  }
  if (auto* tr = trace::Collector::active()) {
    trace::Span sp{msg->rid, trace::osd_track(id_)};
    tr->complete(sp, tr->stage_id(stage::kEcShardRead), t0, sim_.now());
  }
  net::Message wire;
  wire.type = kShardReadReply;
  wire.size = reply->data_len + cfg_.reply_msg_bytes;
  wire.body = std::move(reply);
  if (conn != nullptr) conn->send(std::move(wire));
}

void Osd::handle_shard_read_reply(std::shared_ptr<ShardReadReplyMsg> msg) {
  auto it = shard_gathers_.find(msg->rid);
  if (it == shard_gathers_.end()) return;  // gather finished, timed out, or crashed
  ShardGather& g = *it->second;
  if (g.waiting.erase(msg->shard) == 0) return;  // duplicate or already given up on
  if (msg->ok) {
    g.good[msg->shard] = GatherChunk{msg->data_len, std::move(msg->data)};
  } else {
    g.bad.insert(msg->shard);
  }
  g.cv.notify_all();
}

void Osd::send_read_reply(OpRef& op, bool ok, std::uint64_t data_len,
                          std::optional<std::vector<std::uint8_t>> data) {
  ClientIoMsg& msg = *op->msg;
  throttles_.messages.release(1);
  throttles_.message_bytes.release(msg.data.size() + 150);
  qos_op_done();
  inflight_.erase(msg.op_id);
  auto reply = std::make_shared<IoReplyMsg>();
  reply->op_id = msg.op_id;
  reply->is_write = false;
  reply->ok = ok;
  reply->data_len = data_len;
  reply->data = std::move(data);
  reply->issued_at = msg.issued_at;
  net::Message wire;
  wire.type = kReadReply;
  wire.size = data_len + cfg_.reply_msg_bytes;
  wire.body = std::move(reply);
  wire.trace = op->span;
  if (op->reply_conn != nullptr) op->reply_conn->send(std::move(wire));
  if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
    tr->end(op->span, tr->stage_id(stage::kReadOp), sim_.now());
  }
}

// ---------------------------------------------------------------------------
// Ack delivery
// ---------------------------------------------------------------------------

void Osd::deliver_ack(OpRef op) {
  if (!profile_.ordered_acks) {
    send_reply_message(op);
    return;
  }
  // §3.1: batched completions may complete ops out of client order; when the
  // client asked for ordered acks, hold an ack until all earlier ops from
  // that client (at this OSD) have been acked.
  auto& st = ack_state_[op->msg->client_id];
  if (st.outstanding.find(op->msg->op_id) == st.outstanding.end()) {
    // Not in the ledger: a zombie completing after a crash wiped this
    // daemon's RAM. Reply directly (the client discards stale replies)
    // instead of parking it in `held`, where it would wedge every
    // post-restart ack behind an op id that will never reach the head.
    send_reply_message(op);
    return;
  }
  st.held.emplace(op->msg->op_id, op);
  while (!st.held.empty() && !st.outstanding.empty() &&
         st.held.begin()->first == *st.outstanding.begin()) {
    OpRef next = st.held.begin()->second;
    st.held.erase(st.held.begin());
    st.outstanding.erase(st.outstanding.begin());
    send_reply_message(next);
  }
}

void Osd::send_reply_message(OpRef& op) {
  ClientIoMsg& msg = *op->msg;
  // Safety invariant: acks_below_min_size must stay 0 under every fault plan
  // (the chaos soak asserts it); acks_degraded counts legitimate degraded
  // acks issued after the watchdog abandoned a dead peer.
  if (op->commits_seen < op->min_commits) counters_.add("osd.acks_below_min_size");
  if (op->commits_seen < op->commits_planned) counters_.add("osd.acks_degraded");
  op->stamp(kStAcked, sim_.now());
  for (unsigned s = 1; s < kStageCount; s++) {
    if (op->ts[s] >= op->ts[s - 1] && op->ts[s] != 0) {
      stage_hist_[s].record(op->ts[s] - op->ts[s - 1]);
    }
  }
  write_total_.record(op->ts[kStAcked] - op->ts[kStRecv]);
  if (auto* tr = trace::Collector::active(); tr != nullptr && op->span.valid()) {
    // Mirror the Fig. 3 boundary deltas into the collector under the shared
    // names — same loop, same guard — so its per-stage histograms equal the
    // merged stage_hist_ data exactly and the bench can print from either.
    for (unsigned s = 1; s < kStageCount; s++) {
      if (op->ts[s] >= op->ts[s - 1] && op->ts[s] != 0) {
        tr->complete(op->span, tr->stage_id(kWriteStageNames[s]), op->ts[s - 1], op->ts[s]);
      }
    }
    if (op->ts[kStRepAcked] >= op->ts[kStSubmitted] && op->ts[kStRepAcked] != 0) {
      tr->complete(op->span, tr->stage_id(stage::kReplication), op->ts[kStSubmitted],
                   op->ts[kStRepAcked]);
    }
    tr->end(op->span, tr->stage_id(stage::kWriteOp), sim_.now());
  }

  throttles_.messages.release(1);
  throttles_.message_bytes.release(msg.data.size() + 150);
  qos_op_done();
  inflight_.erase(msg.op_id);

  auto reply = std::make_shared<IoReplyMsg>();
  reply->op_id = msg.op_id;
  reply->is_write = true;
  reply->issued_at = msg.issued_at;
  net::Message wire;
  wire.type = kWriteReply;
  wire.size = cfg_.reply_msg_bytes;
  wire.body = std::move(reply);
  wire.trace = op->span;
  op->reply_conn->send(std::move(wire));
}

// ---------------------------------------------------------------------------
// Recovery / map changes
// ---------------------------------------------------------------------------

void Osd::set_pg_acting(std::uint32_t pgid, std::vector<std::uint32_t> acting) {
  Pg* pg = find_pg(pgid);
  if (pg == nullptr) {
    create_pg(pgid, std::move(acting));
  } else {
    pg->set_acting(std::move(acting));
  }
}

sim::CoTask<std::uint64_t> Osd::push_pg(std::uint32_t pgid, Osd& target) {
  std::uint64_t pushed = 0;
  Pg* src_pg = find_pg(pgid);
  for (const auto& oid : store_->objects_in_pg(pgid)) {
    // Delta backfill: journal replay (or an earlier push) may already have
    // restored this object at the target — skip identical content. After a
    // push, re-check and re-push: a client write that applied at the target
    // mid-copy is wiped by the snapshot install while the source keeps it,
    // so one pass can leave the replica stale under live traffic.
    unsigned attempts = 0;
    while (attempts < 4) {
      // The export must reflect every write this source has admitted for
      // the object: under backlog the filestore lags the journal by
      // hundreds of ms, and an export taken in that window would "repair"
      // an up-to-date replica backwards (the replica applied those writes
      // already; the snapshot install erases them, and the source's late
      // apply then diverges the copies for good).
      co_await wait_object_readable(oid);
      if (target.store().object_in_memory(oid) &&
          target.store().object_fingerprint(oid) == store_->object_fingerprint(oid)) {
        break;
      }
      auto data = store_->export_object(oid);
      std::uint64_t bytes = 0;
      for (const auto& [off, payload] : data.extents) bytes += payload.size();
      // Source read, wire transfer, then installation at the target.
      if (bytes > 0) {
        co_await store_->read(oid, 0, data.size, /*want_data=*/false);
        co_await node_.nic_transmit(bytes + 512);
        co_await sim::delay(sim_, 60 * kMicrosecond, "osd.push_hop");
      }
      co_await target.recover_object(oid, std::move(data));
      attempts++;
    }
    if (attempts == 0) {
      counters_.add("osd.backfill_skipped");
    } else {
      pushed++;
    }
  }
  // Sync the version stream so the target can continue the PG log.
  if (src_pg != nullptr) {
    if (Pg* dst_pg = target.find_pg(pgid)) dst_pg->observe_version(src_pg->version());
  }
  co_return pushed;
}

sim::CoTask<void> Osd::recover_object(const fs::ObjectId& oid,
                                      store::ObjectExport data) {
  // Replace, don't merge: scrub compares whole-object fingerprints, so the
  // recovered replica must reproduce the source's exact extent layout —
  // stale extents in ranges the source never wrote may not survive.
  store_->remove_object(oid);
  fs::Transaction txn;
  for (auto& [off, payload] : data.extents) txn.write(oid, off, std::move(payload));
  if (!data.xattrs.empty()) txn.setattrs(oid, std::move(data.xattrs));
  co_await store_->apply_transaction(txn, /*lightweight=*/true);
  ObjectMeta meta;
  meta.exists = true;
  meta.size = data.size;
  meta_cache_.insert(oid, meta);
}

// ---------------------------------------------------------------------------
// Membership (MembershipMode::kDetected; everything inert under kOracle)
// ---------------------------------------------------------------------------

void Osd::start_membership(std::uint64_t seed) {
  if (!cfg_.membership.detected()) return;
  const std::size_t n = cmap_.crush().osd_count();
  known_down_.assign(n, false);
  known_laggy_.assign(n, false);
  hb_ = std::make_unique<HeartbeatAgent>(sim_, *this, cfg_.membership, seed);
  hb_->start();
}

void Osd::announce_boot() {
  if (hb_ != nullptr) hb_->on_restart();
  send_beacon(/*boot=*/true);
}

std::vector<std::uint32_t> Osd::adjacent_peers() const {
  std::set<std::uint32_t> s;
  for (const auto& [pgid, pg] : pgs_) {
    for (std::uint32_t m : pg->acting()) {
      if (m != id_ && m != cluster::ClusterMap::kNoOsd) s.insert(m);
    }
  }
  return {s.begin(), s.end()};
}

Time Osd::oldest_inflight_recv() const {
  Time oldest = 0;
  for (const auto& [op_id, op] : inflight_) {
    const Time t = op->ts[kStRecv];
    if (t != 0 && (oldest == 0 || t < oldest)) oldest = t;
  }
  return oldest;
}

void Osd::report_failure(std::uint32_t target, bool laggy) {
  if (mon_conn_ == nullptr) return;
  counters_.add(laggy ? "osd.laggy_reports" : "osd.failure_reports");
  auto body = std::make_shared<FailureReportMsg>();
  body->reporter = id_;
  body->target = target;
  body->laggy = laggy;
  net::Message m;
  m.type = kFailureReport;
  m.size = 96;
  m.body = std::move(body);
  mon_conn_->send(std::move(m));
}

void Osd::send_beacon(bool boot) {
  if (mon_conn_ == nullptr) return;
  counters_.add("osd.beacons");
  auto body = std::make_shared<MonBeaconMsg>();
  body->osd = id_;
  body->boot = boot;
  net::Message m;
  m.type = kMonBeacon;
  m.size = 64;
  m.body = std::move(body);
  mon_conn_->send(std::move(m));
}

void Osd::send_fence_reply(const ClientIoMsg& msg, net::Connection* conn) {
  auto reply = std::make_shared<IoReplyMsg>();
  reply->op_id = msg.op_id;
  reply->is_write = msg.is_write;
  reply->ok = false;
  reply->fenced = true;
  reply->map_epoch = known_epoch_;
  reply->issued_at = msg.issued_at;
  net::Message wire;
  wire.type = msg.is_write ? kWriteReply : kReadReply;
  wire.size = cfg_.reply_msg_bytes;
  wire.body = std::move(reply);
  if (conn != nullptr) conn->send(std::move(wire));
}

void Osd::request_map() {
  if (mon_conn_ == nullptr || requested_epoch_ == known_epoch_) return;
  requested_epoch_ = known_epoch_;  // one request per epoch we are stuck at
  counters_.add("osd.map_requests");
  net::Message m;
  m.type = kMapRequest;
  m.size = 32;
  m.body = std::make_shared<MapRequestMsg>();
  mon_conn_->send(std::move(m));
}

void Osd::apply_map_delta(const MapDeltaMsg& delta) {
  if (delta.epoch <= known_epoch_) {
    counters_.add("osd.map_deltas_stale");
    return;
  }
  known_epoch_ = delta.epoch;
  counters_.add("osd.map_updates");
  if (auto* tr = trace::Collector::active()) {
    tr->instant(trace::Span{delta.epoch, trace::osd_track(id_)},
                tr->stage_id(stage::kMapUpdate), sim_.now());
  }
  const std::size_t n = cmap_.crush().osd_count();
  known_down_.assign(n, false);
  known_laggy_.assign(n, false);
  for (std::uint32_t o : delta.down)
    if (o < n) known_down_[o] = true;
  for (std::uint32_t o : delta.laggy)
    if (o < n) known_laggy_[o] = true;

  // Re-derive this OSD's PGs under the new map (ascending pgid: spawn order
  // is part of the determinism contract). The primary of each changed PG
  // drives recovery toward members that just (re)joined the acting set —
  // the detected-mode counterpart of the injector's oracle retarget.
  std::vector<std::uint32_t> pgids;
  pgids.reserve(pgs_.size());
  for (const auto& [pgid, pg] : pgs_) pgids.push_back(pgid);
  std::sort(pgids.begin(), pgids.end());
  for (std::uint32_t pgid : pgids) {
    Pg& pg = *pgs_[pgid];
    const std::vector<std::uint32_t> now_acting = cmap_.acting(pgid);
    const std::vector<std::uint32_t> old_acting = pg.acting();
    if (now_acting == old_acting) continue;
    pg.set_acting(now_acting);
    if (cluster_osds_.empty()) continue;
    std::uint32_t prim = cluster::ClusterMap::kNoOsd;
    for (std::uint32_t m : now_acting) {
      if (m != cluster::ClusterMap::kNoOsd) {
        prim = m;
        break;
      }
    }
    if (prim != id_) continue;
    if (cmap_.erasure()) {
      for (unsigned pos = 0; pos < unsigned(now_acting.size()); pos++) {
        const std::uint32_t member = now_acting[pos];
        if (member == cluster::ClusterMap::kNoOsd || member == id_) continue;
        const bool changed =
            pos >= old_acting.size() || old_acting[pos] != member;
        if (!changed) continue;
        counters_.add("osd.map_rebuilds");
        sim::spawn_fn([this, pgid, pos, member]() -> sim::CoTask<void> {
          co_await ec_rebuild_position(sim_, cmap_, cluster_osds_, pgid, pos,
                                       *cluster_osds_[member]);
        });
      }
    } else {
      for (std::uint32_t member : now_acting) {
        if (member == id_) continue;
        if (std::find(old_acting.begin(), old_acting.end(), member) !=
            old_acting.end()) {
          continue;
        }
        // A brand-new member may not hold the PG yet: install it (acting
        // set included) before the backfill pushes objects at it.
        cluster_osds_[member]->set_pg_acting(pgid, now_acting);
        counters_.add("osd.map_backfills");
        Osd* dst = cluster_osds_[member];
        sim::spawn_fn([this, pgid, dst]() -> sim::CoTask<void> {
          co_await push_pg(pgid, *dst);
        });
      }
    }
  }
  if (hb_ != nullptr) hb_->refresh_peers();
}

void Osd::on_crash() {
  if (hb_ != nullptr) hb_->on_crash();
  inflight_.clear();
  ack_state_.clear();
  // A store with a deferred-write ledger loses it with the daemon's RAM;
  // its WAL records survive on media for replay.
  store_->on_daemon_crash();
  // Routing entries for in-flight shard gathers die with the daemon's RAM;
  // the gather coroutines themselves are zombies that expire on their own
  // ec_read_timeout.
  shard_gathers_.clear();
  // Ops parked in the QoS queues were only in this daemon's RAM; zombies
  // resolving after the crash must not underflow the fresh window either.
  if (qos_ != nullptr) qos_->reset();
}

sim::CoTask<void> Osd::on_restart() {
  // Replay completes before the caller marks this OSD up: no client op or
  // backfill push may land while possibly-stale records re-apply, or a
  // replayed write could clobber data written during the downtime.
  co_await replay_journal(journal_);
  // A store-internal WAL (FlashStore) recovers under the same contract and
  // counters: records whose effects the crash may have lost re-apply here.
  if (fs::Journal* w = store_->wal(); w != nullptr) co_await replay_journal(*w);
}

sim::CoTask<void> Osd::replay_journal(fs::Journal& j) {
  auto replay = j.restart();
  if (replay.torn_tails > 0) counters_.add("osd.journal.torn_tails", replay.torn_tails);
  if (replay.crc_failures > 0)
    counters_.add("osd.journal.crc_failures", replay.crc_failures);
  if (replay.truncated > 0)
    counters_.add("osd.journal.replay_truncated", replay.truncated);
  if (!replay.records.empty()) co_await replay_records(j, std::move(replay.records));
}

sim::CoTask<void> Osd::replay_records(fs::Journal& j,
                                      std::vector<fs::Journal::ReplayedRecord> records) {
  for (auto& rec : records) {
    auto tx = fs::Transaction::decode(rec.payload.data(), rec.payload.size());
    if (tx.has_value()) {
      // Re-apply idempotently: re-writing the same extents/omap keys is
      // content-idempotent, so racing a zombie apply of the same record is
      // harmless. Sequencing against new client ops is the dedup-by-seq
      // contract — each record applies at most once from here.
      co_await store_->apply_transaction(*tx, profile_.light_transactions);
      counters_.add("osd.journal.records_replayed");
      if (auto* tr = trace::Collector::active(); tr != nullptr) {
        tr->instant(trace::Span{rec.seq, trace::kFaultTrack},
                    tr->stage_id(stage::kJournalReplay), sim_.now());
      }
    } else {
      // CRC-clean but undecodable should be impossible; retire it so the
      // ring cannot wedge on it either way.
      counters_.add("osd.journal.replay_undecodable");
    }
    j.mark_applied(rec.seq);
  }
}

// ---------------------------------------------------------------------------
// Shutdown & stats
// ---------------------------------------------------------------------------

void Osd::close() {
  closing_ = true;
  if (hb_ != nullptr) hb_->stop();
  for (auto& q : shard_queues_) q->close();
  finisher_q_.close();
  completion_q_.close();
  apply_q_.close();
  dlog_.close();
  journal_.close();
  store_->close();
  omap_.close();
  msgr_.close_all();
}

std::uint64_t Osd::pending_defers() const {
  std::uint64_t total = 0;
  for (const auto& [id, pg] : pgs_) total += pg->pending_defers;
  return total;
}

Time Osd::pg_lock_wait_ns() const {
  Time total = 0;
  for (const auto& [id, pg] : pgs_) total += pg->lock().total_wait_ns();
  return total;
}

std::uint64_t Osd::pg_lock_contended() const {
  std::uint64_t total = 0;
  for (const auto& [id, pg] : pgs_) total += pg->lock().contended_acquisitions();
  return total;
}

}  // namespace afc::osd
