#pragma once

#include <cstdint>

#include "sim/channel.h"
#include "sim/cpu.h"

namespace afc::osd {

/// Ceph's dout debug-log subsystem (§2.3/§3.3). Two modes:
///
/// *Blocking (community)*: every log entry is formatted inline on the op
/// thread (string construction — allocation-heavy, so the allocator
/// multiplier applies) and handed synchronously to a single writer, which
/// serializes all logging in the OSD. "When small I/O is requested, the
/// logging sometimes takes longer than the actual I/O itself."
///
/// *Non-blocking (AFCeph)*: submission is a cheap bounded-queue push (with
/// the log-cache interning cutting the residual formatting cost); multiple
/// writer threads drain in the background, charging node CPU but never
/// stalling the I/O path. Entries are dropped (and counted) if the queue
/// overflows — the documented trade-off.
class DebugLog {
 public:
  struct Config {
    bool enabled = true;
    bool nonblocking = false;
    unsigned writer_threads = 1;
    Time format_cpu = 3500;         // ns/entry: inline string build
    Time cached_format_cpu = 400;   // ns/entry with log cache
    Time submit_cpu = 250;          // ns/entry async enqueue
    Time writer_cpu = 7000;         // ns/entry, blocking single writer
                                    // (flock + per-entry flush discipline)
    Time writer_cpu_async = 1500;   // ns/entry, non-blocking writers
                                    // (batched appends, no lock handoff)
    std::size_t queue_capacity = 16384;  // entries
    bool log_cache = false;
    double cpu_multiplier = 1.0;    // allocator tax
  };

  DebugLog(sim::Simulation& sim, sim::CpuPool& cpu, const Config& cfg);

  /// Emit `entries` log lines from the op path. In blocking mode this
  /// returns only once the writer has consumed them.
  sim::CoTask<void> log(unsigned entries);

  void close() { queue_.close(); }

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t written() const { return written_; }
  Time writer_wait_ns() const { return writer_gate_.total_wait_ns(); }

 private:
  sim::CoTask<void> writer_loop();

  sim::Simulation& sim_;
  sim::CpuPool& cpu_;
  Config cfg_;
  sim::Semaphore writer_gate_;       // blocking mode: the single log lock
  sim::Channel<unsigned> queue_;     // non-blocking mode: entry batches
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t written_ = 0;
};

}  // namespace afc::osd
