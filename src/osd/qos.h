#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "osd/op.h"
#include "sim/simulation.h"

namespace afc::osd {

/// Per-tenant QoS declaration, mirroring the shape of YDB's TChannelProfile:
/// a named storage-pool kind plus read/write IOPS and bandwidth envelopes.
/// Semantics follow dmClock: `reservation` is a floor the scheduler honors
/// before any proportional sharing, `limit` is a hard ceiling never exceeded
/// even on an idle cluster, and `weight` divides whatever capacity is left
/// between the two. A zero reservation/limit means "none"; weight <= 0 with
/// a reservation means "reservation only, no share of the surplus".
///
/// IOPS and bandwidth terms compose per op: an op's virtual cost is the
/// stricter of the two (max of 1/iops and bytes/bandwidth), so a tenant
/// pushing large ops exhausts its envelope proportionally faster.
struct TenantProfile {
  std::uint32_t tenant = 0;      // class id matched against ClientIoMsg::tenant
  std::string pool_kind;         // label only (YDB PoolKind, e.g. "ssd")
  double reservation_iops = 0;   // guaranteed ops/s (0 = no reservation)
  double reservation_bw = 0;     // guaranteed bytes/s
  double limit_iops = 0;         // hard ceiling ops/s (0 = unlimited)
  double limit_bw = 0;           // hard ceiling bytes/s
  double weight = 1.0;           // proportional share of surplus capacity

  bool has_reservation() const { return reservation_iops > 0 || reservation_bw > 0; }
  bool has_limit() const { return limit_iops > 0 || limit_bw > 0; }
};

/// OSD-side QoS configuration: the tenant→profile table plus the dispatch
/// window. Off by default — when disabled the scheduler is never even
/// constructed and the dispatch path is byte-identical to the seed.
struct QosConfig {
  bool enabled = false;
  /// Ops admitted past the scheduler but not yet resolved (acked / read
  /// replied / failed). This is the "server" dmClock paces against: a slot
  /// frees on completion, and the scheduler picks the next op by tag order.
  unsigned window = 32;
  std::vector<TenantProfile> tenants;
  /// Ops whose tenant class has no profile entry (including tenant 0, the
  /// untenanted default) fall back to this profile.
  TenantProfile default_profile;

  const TenantProfile& profile_for(std::uint32_t tenant) const {
    for (const auto& p : tenants) {
      if (p.tenant == tenant) return p;
    }
    return default_profile;
  }
};

/// dmClock-style scheduler slotted between messenger dispatch and the
/// sharded OP_WQ. Client ops enqueue per-tenant FIFO; dispatch order is
/// chosen in two phases whenever a window slot is free:
///
///   1. reservation: among tenants whose reservation tag has come due (and
///      whose limit permits), serve the most overdue first. This is what
///      makes the floor a floor — reservation-eligible work preempts any
///      weight-phase candidate.
///   2. weight: among tenants whose limit permits, serve the smallest
///      proportional tag (virtual time spaced by 1/weight).
///
/// Every dispatch advances all three of the tenant's tags (dmClock assigns
/// all tags at arrival; serving a request consumes them regardless of which
/// phase served it), with accumulated idle credit capped at one op so a
/// silent tenant cannot burst past its limit when it returns. If every
/// backlogged tenant is limit-blocked, a timer wakes the scheduler at the
/// earliest tag expiry — the only case where QoS schedules simulator events.
class QosScheduler {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t reservation_grants = 0;  // phase-1 dispatches
    std::uint64_t weight_grants = 0;       // phase-2 dispatches
    std::uint64_t limit_deferrals = 0;     // pump passes that armed a timer
    std::uint64_t depth_hwm = 0;           // max ops parked in tenant queues
  };

  /// `sink` receives each dispatched item together with its enqueue time
  /// (for the kQosQueue trace span); it runs synchronously inside pump().
  using Sink = std::function<void(WorkItem item, Time enqueued_at)>;

  QosScheduler(sim::Simulation& sim, QosConfig cfg, Sink sink);
  ~QosScheduler();
  QosScheduler(const QosScheduler&) = delete;
  QosScheduler& operator=(const QosScheduler&) = delete;

  /// Park one client op; `bytes` is the payload size (write body or read
  /// length) used by the bandwidth terms. Dispatches synchronously when a
  /// window slot is free and the tenant's tags permit.
  void enqueue(WorkItem item, std::uint32_t tenant, std::uint64_t bytes);

  /// Downstream resolution (ack sent, read replied, op failed): frees a
  /// window slot and pumps.
  void op_done();

  /// Crash support: drop every parked op and all window accounting (the
  /// daemon's RAM is gone; parked ops die with it, like inflight_).
  void reset();

  const Stats& stats() const { return stats_; }
  std::uint64_t dispatched(std::uint32_t tenant) const;
  std::size_t queued() const { return queued_; }
  unsigned in_flight() const { return in_flight_; }

 private:
  struct Queued {
    WorkItem item;
    Time at = 0;
    std::uint64_t bytes = 0;
  };
  struct Tenant {
    TenantProfile prof;
    std::deque<Queued> q;
    // Virtual tags in ns; a tenant is reservation-eligible when r_next <=
    // now, limit-eligible when l_next <= now; p_tag orders the weight phase.
    double r_next = 0;
    double l_next = 0;
    double p_tag = 0;
    std::uint64_t dispatched = 0;
  };

  Tenant& tenant_state(std::uint32_t id);
  void pump();
  void dispatch(Tenant& t, bool reservation_phase, double now);
  void arm_timer(Time at);

  sim::Simulation& sim_;
  QosConfig cfg_;
  Sink sink_;
  std::map<std::uint32_t, Tenant> tenants_;  // ordered: deterministic scans
  unsigned in_flight_ = 0;
  std::size_t queued_ = 0;
  sim::TimerToken timer_;
  bool timer_armed_ = false;
  Time timer_at_ = 0;
  Stats stats_;
};

}  // namespace afc::osd
