#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "osd/op.h"
#include "sim/sync.h"

namespace afc::osd {

/// One placement group on one OSD: the PG lock, the AFCeph pending queue,
/// and the PG-log version bookkeeping (the reason the paper keeps the lock
/// scheme — log entries must be appended in version order for recovery).
class Pg {
 public:
  Pg(sim::Simulation& sim, std::uint32_t id, std::vector<std::uint32_t> acting)
      : id_(id), lock_(sim), acting_(std::move(acting)) {}

  std::uint32_t id() const { return id_; }
  sim::Mutex& lock() { return lock_; }
  const sim::Mutex& lock() const { return lock_; }
  const std::vector<std::uint32_t>& acting() const { return acting_; }
  void set_acting(std::vector<std::uint32_t> a) { acting_ = std::move(a); }

  /// Attribute a PG ordering wait (lock acquisition or pending-queue park,
  /// t0 → now) to `span`. No-op unless a trace collector is installed, the
  /// span is valid, and the wait is non-zero — callers may invoke it
  /// unconditionally without perturbing untraced runs.
  void trace_wait(const trace::Span& span, Time t0, Time now) const;

  // --- AFCeph pending queue (Fig. 5) ---------------------------------
  bool busy = false;
  std::deque<WorkItem> pending;
  std::uint64_t pending_defers = 0;  // ops parked instead of blocking a worker
  std::size_t pending_high_water = 0;

  // --- PG log ----------------------------------------------------------
  std::uint64_t next_version() { return ++version_; }
  std::uint64_t version() const { return version_; }
  /// Replicas track the primary's version stream so they can take over as
  /// primary after a map change without reusing log keys.
  void observe_version(std::uint64_t v) {
    if (v > version_) version_ = v;
  }
  std::uint64_t log_floor = 1;  // versions below this are trimmed

  /// omap key for a PG-log entry (zero-padded so lexicographic == numeric).
  std::string log_key(std::uint64_t version) const;
  std::string info_key() const;

 private:
  std::uint32_t id_;
  sim::Mutex lock_;
  std::vector<std::uint32_t> acting_;
  std::uint64_t version_ = 0;
};

}  // namespace afc::osd
