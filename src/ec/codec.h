#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace afc::ec {

/// Systematic Reed–Solomon erasure codec over GF(256): k data chunks in the
/// clear plus m parity chunks, any k of the k+m shards reconstruct the
/// stripe. The generator matrix is [ I_k ; P ] with Cauchy parity
/// P[i][j] = inv((k+i) XOR j) — every k-row subset of a Cauchy-extended
/// identity is invertible, which is exactly the any-k guarantee. Decode is a
/// k x k Gaussian elimination in the field, done once per stripe and applied
/// byte-wise.
class Codec {
 public:
  Codec(unsigned k, unsigned m);

  unsigned k() const { return k_; }
  unsigned m() const { return m_; }

  /// Parity coefficient row i (0..m-1), column j (0..k-1).
  std::uint8_t parity_coeff(unsigned i, unsigned j) const {
    return parity_[i * k_ + j];
  }

  /// data must hold exactly k chunks of equal length; returns m parity
  /// chunks of that length.
  std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<std::vector<std::uint8_t>>& data) const;

  /// Reconstruct all k data chunks from any >= k surviving shards.
  /// `present[i]` is the shard index (0..k+m-1) of `chunks[i]`; indices must
  /// be distinct, chunks equal-length. Returns nullopt when fewer than k
  /// shards survive (information-theoretically unrecoverable).
  std::optional<std::vector<std::vector<std::uint8_t>>> decode(
      const std::vector<unsigned>& present,
      const std::vector<std::vector<std::uint8_t>>& chunks) const;

  /// Rebuild one shard (data or parity) from any k survivors: decode the
  /// stripe, then re-emit shard `target`.
  std::optional<std::vector<std::uint8_t>> reconstruct_shard(
      unsigned target, const std::vector<unsigned>& present,
      const std::vector<std::vector<std::uint8_t>>& chunks) const;

 private:
  unsigned k_;
  unsigned m_;
  std::vector<std::uint8_t> parity_;  // m x k, row-major
};

}  // namespace afc::ec
