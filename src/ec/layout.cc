#include "ec/layout.h"

namespace afc::ec {

std::optional<ShardName> parse_shard(const std::string& name) {
  auto pos = name.rfind(".s");
  if (pos == std::string::npos || pos + 2 >= name.size()) return {};
  unsigned shard = 0;
  for (std::size_t i = pos + 2; i < name.size(); i++) {
    char c = name[i];
    if (c < '0' || c > '9') return {};
    shard = shard * 10 + unsigned(c - '0');
    if (shard > 255) return {};
  }
  return ShardName{name.substr(0, pos), shard};
}

}  // namespace afc::ec
