#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fs/transaction.h"

namespace afc::ec {

/// Stripe geometry and shard-object naming shared by the OSD write/read
/// paths, recovery, and scrub.
///
/// A client object "foo" in an EC(k+m) pool is stored as k+m shard objects
/// "foo.s0".."foo.s{k+m-1}" (s0..s{k-1} data, the rest parity), all in the
/// base object's PG. A client extent [off, off+len) maps to the shard
/// extent [off/k, off/k + ceil(len/k)) on every shard — writes are 4 KiB
/// aligned and k divides the block size in all shipped configs, so shard
/// extents of distinct client blocks never overlap.

inline std::uint64_t chunk_len(std::uint64_t len, unsigned k) {
  return (len + k - 1) / k;
}

inline std::uint64_t shard_offset(std::uint64_t object_off, unsigned k) {
  return object_off / k;
}

inline fs::ObjectId shard_oid(const fs::ObjectId& base, unsigned shard) {
  return fs::ObjectId{base.pg, base.name + ".s" + std::to_string(shard)};
}

struct ShardName {
  std::string base;
  unsigned shard = 0;
};

/// Inverse of shard_oid on the name part; nullopt for non-shard names.
std::optional<ShardName> parse_shard(const std::string& name);

}  // namespace afc::ec
