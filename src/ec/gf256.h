#pragma once

#include <cstdint>

namespace afc::ec {

/// GF(2^8) arithmetic over the polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D)
/// with generator 2 — the field every production Reed–Solomon codec
/// (jerasure, ISA-L, liberasurecode) uses. Tables are built at compile time,
/// so the first encode pays nothing and the values are burned into the
/// binary: exp[i] = 2^i, log[2^i] = i, and exp is doubled so
/// mul(a,b) = exp[log[a] + log[b]] never needs a mod-255.
struct Gf256Tables {
  std::uint8_t exp[512] = {};
  std::uint8_t log[256] = {};
};

constexpr Gf256Tables make_gf256_tables() {
  Gf256Tables t;
  unsigned x = 1;
  for (unsigned i = 0; i < 255; i++) {
    t.exp[i] = std::uint8_t(x);
    t.log[x] = std::uint8_t(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (unsigned i = 255; i < 512; i++) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // log(0) is undefined; callers must special-case zero
  return t;
}

inline constexpr Gf256Tables kGf256 = make_gf256_tables();

inline std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kGf256.exp[unsigned(kGf256.log[a]) + unsigned(kGf256.log[b])];
}

/// Multiplicative inverse (a != 0): a^(254) == a^(-1) in GF(256).
inline std::uint8_t gf_inv(std::uint8_t a) {
  return kGf256.exp[255 - unsigned(kGf256.log[a])];
}

inline std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return kGf256.exp[unsigned(kGf256.log[a]) + 255 - unsigned(kGf256.log[b])];
}

}  // namespace afc::ec
