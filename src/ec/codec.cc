#include "ec/codec.h"

#include <cassert>

#include "ec/gf256.h"

namespace afc::ec {

Codec::Codec(unsigned k, unsigned m) : k_(k), m_(m) {
  assert(k >= 1 && m >= 1 && k + m <= 255);
  parity_.resize(std::size_t(m) * k);
  for (unsigned i = 0; i < m; i++)
    for (unsigned j = 0; j < k; j++) {
      // Evaluation points x_i = k+i and y_j = j are disjoint integer sets,
      // so x ^ y != 0 and the inverse exists. 1/(x_i - y_j) in char 2 is
      // inv(x ^ y): a Cauchy matrix, every square submatrix nonsingular.
      parity_[std::size_t(i) * k + j] = gf_inv(std::uint8_t((k + i) ^ j));
    }
}

std::vector<std::vector<std::uint8_t>> Codec::encode(
    const std::vector<std::vector<std::uint8_t>>& data) const {
  assert(data.size() == k_);
  std::size_t len = data[0].size();
  for (const auto& d : data) assert(d.size() == len);
  std::vector<std::vector<std::uint8_t>> parity(
      m_, std::vector<std::uint8_t>(len, 0));
  for (unsigned i = 0; i < m_; i++)
    for (unsigned j = 0; j < k_; j++) {
      std::uint8_t c = parity_[std::size_t(i) * k_ + j];
      const auto& src = data[j];
      auto& dst = parity[i];
      for (std::size_t b = 0; b < len; b++) dst[b] ^= gf_mul(c, src[b]);
    }
  return parity;
}

std::optional<std::vector<std::vector<std::uint8_t>>> Codec::decode(
    const std::vector<unsigned>& present,
    const std::vector<std::vector<std::uint8_t>>& chunks) const {
  if (present.size() < k_ || chunks.size() != present.size()) return {};
  std::size_t len = chunks[0].size();
  for (const auto& c : chunks)
    if (c.size() != len) return {};

  // Generator rows of the first k surviving shards, augmented with I_k;
  // Gauss-Jordan turns the right half into the inverse.
  std::vector<std::uint8_t> a(std::size_t(k_) * k_, 0);
  std::vector<std::uint8_t> inv(std::size_t(k_) * k_, 0);
  for (unsigned r = 0; r < k_; r++) {
    unsigned shard = present[r];
    if (shard < k_) {
      a[std::size_t(r) * k_ + shard] = 1;
    } else {
      for (unsigned j = 0; j < k_; j++)
        a[std::size_t(r) * k_ + j] = parity_[std::size_t(shard - k_) * k_ + j];
    }
    inv[std::size_t(r) * k_ + r] = 1;
  }
  for (unsigned col = 0; col < k_; col++) {
    unsigned pivot = col;
    while (pivot < k_ && a[std::size_t(pivot) * k_ + col] == 0) pivot++;
    if (pivot == k_) return {};  // duplicate shard index fed in
    if (pivot != col)
      for (unsigned j = 0; j < k_; j++) {
        std::swap(a[std::size_t(pivot) * k_ + j], a[std::size_t(col) * k_ + j]);
        std::swap(inv[std::size_t(pivot) * k_ + j],
                  inv[std::size_t(col) * k_ + j]);
      }
    std::uint8_t d = gf_inv(a[std::size_t(col) * k_ + col]);
    for (unsigned j = 0; j < k_; j++) {
      a[std::size_t(col) * k_ + j] = gf_mul(a[std::size_t(col) * k_ + j], d);
      inv[std::size_t(col) * k_ + j] =
          gf_mul(inv[std::size_t(col) * k_ + j], d);
    }
    for (unsigned r = 0; r < k_; r++) {
      if (r == col) continue;
      std::uint8_t f = a[std::size_t(r) * k_ + col];
      if (f == 0) continue;
      for (unsigned j = 0; j < k_; j++) {
        a[std::size_t(r) * k_ + j] ^=
            gf_mul(f, a[std::size_t(col) * k_ + j]);
        inv[std::size_t(r) * k_ + j] ^=
            gf_mul(f, inv[std::size_t(col) * k_ + j]);
      }
    }
  }

  std::vector<std::vector<std::uint8_t>> data(
      k_, std::vector<std::uint8_t>(len, 0));
  for (unsigned r = 0; r < k_; r++)
    for (unsigned i = 0; i < k_; i++) {
      std::uint8_t c = inv[std::size_t(r) * k_ + i];
      if (c == 0) continue;
      const auto& src = chunks[i];
      auto& dst = data[r];
      for (std::size_t b = 0; b < len; b++) dst[b] ^= gf_mul(c, src[b]);
    }
  return data;
}

std::optional<std::vector<std::uint8_t>> Codec::reconstruct_shard(
    unsigned target, const std::vector<unsigned>& present,
    const std::vector<std::vector<std::uint8_t>>& chunks) const {
  // Fast path: the target survived intact in the input.
  for (std::size_t i = 0; i < present.size(); i++)
    if (present[i] == target) return chunks[i];
  auto data = decode(present, chunks);
  if (!data) return {};
  if (target < k_) return std::move((*data)[target]);
  std::size_t len = (*data)[0].size();
  std::vector<std::uint8_t> out(len, 0);
  for (unsigned j = 0; j < k_; j++) {
    std::uint8_t c = parity_[std::size_t(target - k_) * k_ + j];
    const auto& src = (*data)[j];
    for (std::size_t b = 0; b < len; b++) out[b] ^= gf_mul(c, src[b]);
  }
  return out;
}

}  // namespace afc::ec
