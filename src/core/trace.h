#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/interned.h"
#include "common/types.h"

namespace afc::trace {

/// Identity of one traced operation, carried on osd::OpCtx, net::Message and
/// fs::Transaction so every layer an op passes through can attribute spans
/// to it. `id` is the client op id (0 = untraced); `track` is the actor the
/// work runs on (a client VM or an OSD daemon) and becomes the Chrome-trace
/// "process" the span renders under.
struct Span {
  std::uint64_t id = 0;
  std::uint32_t track = 0;

  bool valid() const { return id != 0; }
};

/// Track-id encoding: clients use their client_id directly, OSD daemons are
/// offset so the two namespaces cannot collide; the real-threads (rt::)
/// structures share one synthetic track.
inline constexpr std::uint32_t kOsdTrackBase = 0x1000000;
inline constexpr std::uint32_t kRtTrack = 0x2000000;
/// Fault-injection events render on their own track (span id = plan index).
inline constexpr std::uint32_t kFaultTrack = 0x3000000;
/// Monitor membership decisions (mark-down/up/out, map publishes) render on
/// their own track (span id = the epoch the decision produced).
inline constexpr std::uint32_t kMonTrack = 0x4000000;
inline std::uint32_t client_track(std::uint64_t client_id) { return std::uint32_t(client_id); }
inline std::uint32_t osd_track(std::uint32_t osd_id) { return kOsdTrackBase + osd_id; }

/// Op-level trace collector: a ring buffer of completed spans plus one
/// latency histogram per stage, fed by instrumentation sites across net/,
/// rt/, osd/, fs/ and kv/. Exports (a) Chrome trace-event JSON loadable in
/// chrome://tracing / Perfetto and (b) per-stage histograms, so any bench
/// can print a Fig.-3-style breakdown without hardcoding the pipeline.
///
/// Opt-in and zero-cost when off: every site guards on `Collector::active()`
/// (one static pointer load); nothing is installed unless AFC_SIM_TRACE is
/// set (or a test installs a collector explicitly). The collector never
/// schedules simulator events, so enabling tracing cannot change simulated
/// results — only observe them.
///
/// Timestamps are supplied by callers: simulated subsystems pass sim-time
/// ns; the real-threads rt:: structures pass monotonic wall-clock ns (the
/// two are never mixed in one run in practice — see docs/TRACING.md).
class Collector {
 public:
  using StageId = InternPool::Id;

  struct Config {
    /// Completed spans kept for JSON export (oldest overwritten first, like
    /// a flight recorder). Histograms and counters always see every span.
    std::size_t ring_capacity = 1u << 20;
  };

  Collector();
  explicit Collector(Config cfg);

  // --- global installation ----------------------------------------------
  /// The currently installed collector, or nullptr when tracing is off.
  static Collector* active() { return active_; }
  /// Install `c` as the process-wide collector (nullptr to disable).
  static void install(Collector* c) { active_ = c; }
  /// True when the AFC_SIM_TRACE environment variable requests tracing.
  static bool env_requested();

  // --- span recording ----------------------------------------------------
  /// Intern a stage name (a string from common/stage_names.h) to its id.
  StageId stage_id(const char* name);

  /// Open a span: (span.id, stage, span.track) must not already be open.
  /// A second begin on an open key is counted in `mismatched()` and replaces
  /// the first. Invalid spans (id 0) are ignored.
  void begin(const Span& span, StageId stage, Time now);
  /// Close a span opened by begin(); records the completed span. An end with
  /// no matching begin is counted in `mismatched()` and dropped.
  void end(const Span& span, StageId stage, Time now);
  /// Record a self-contained span in one call (no pairing state).
  void complete(const Span& span, StageId stage, Time begin, Time end);
  /// Record a zero-duration instant marker.
  void instant(const Span& span, StageId stage, Time at);

  /// Label a track (becomes the Chrome-trace process name, e.g. "osd.3").
  void name_track(std::uint32_t track, std::string name);

  // --- introspection -----------------------------------------------------
  std::uint64_t spans_recorded() const { return recorded_; }
  std::uint64_t spans_dropped() const { return dropped_; }
  /// begin-on-open-key + end-without-begin occurrences (should be 0).
  std::uint64_t mismatched() const { return mismatched_; }
  /// Spans begun but not yet ended.
  std::size_t open_spans() const { return open_.size(); }

  /// Per-stage latency histogram (empty histogram if the stage never fired).
  const Histogram& stage_histogram(const char* name) const;
  double stage_mean_ms(const char* name) const { return stage_histogram(name).mean_ms(); }
  std::uint64_t stage_count(const char* name) const { return stage_histogram(name).count(); }

  // --- export ------------------------------------------------------------
  /// Chrome trace-event JSON (JSON-object format with a traceEvents array;
  /// "X" complete events, pid = track, tid = op id, ts/dur in microseconds).
  /// Deterministic: same spans in, byte-identical JSON out.
  void export_chrome_json(std::ostream& os) const;
  /// Convenience: export to a file path. Returns false on open failure.
  bool export_chrome_json_file(const std::string& path) const;

  /// Fig.-3-style per-stage summary table (stage, count, mean ms) over every
  /// stage that fired, in first-interned order.
  std::string summary() const;

  void clear();

 private:
  struct Event {
    std::uint64_t id;
    StageId stage;
    std::uint32_t track;
    Time begin;
    Time dur;
  };
  struct OpenKey {
    std::uint64_t id;
    StageId stage;
    std::uint32_t track;
    bool operator==(const OpenKey&) const = default;
  };
  struct OpenKeyHash {
    std::size_t operator()(const OpenKey& k) const {
      std::size_t h = std::size_t(k.id) * 0x9e3779b97f4a7c15ull;
      h ^= (std::size_t(k.stage) << 32) | k.track;
      return h;
    }
  };

  void record(const Span& span, StageId stage, Time begin, Time dur);

  static Collector* active_;

  Config cfg_;
  mutable std::mutex mu_;  // rt:: sites record from real threads
  InternPool stages_;
  std::vector<Event> ring_;
  std::size_t ring_next_ = 0;
  bool ring_wrapped_ = false;
  std::unordered_map<OpenKey, Time, OpenKeyHash> open_;
  std::unordered_map<StageId, Histogram> hists_;
  std::unordered_map<std::uint32_t, std::string> track_names_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t mismatched_ = 0;
};

}  // namespace afc::trace
