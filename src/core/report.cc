#include "core/report.h"

#include <cstdarg>
#include <cstdio>

namespace afc::core {

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string health_report(ClusterSim& cluster) {
  std::string out;
  append(out, "=== cluster health @ t=%.3fs (%s, %zu OSDs, %zu VMs) ===\n",
         to_s(cluster.simulation().now()), cluster.config().profile.name.c_str(),
         cluster.osd_count(), cluster.vm_count());

  // Redundancy policy: the ack floor is the invariant both schemes share —
  // a write acks only once that many members hold it durably.
  auto& cm = cluster.map();
  if (cm.erasure()) {
    append(out, "pool: erasure k=%u m=%u (%u shards/stripe), pgs %u, ack floor %u\n",
           cm.ec_k(), cm.ec_m(), cm.pool_size(), cm.pool().pg_num, cm.ack_floor());
  } else {
    append(out, "pool: replicated size=%u, pgs %u, ack floor %u\n", cm.pool_size(),
           cm.pool().pg_num, cm.ack_floor());
  }

  // Membership plane (detected mode only — oracle runs print nothing here,
  // keeping their report byte-identical to the pre-membership tree).
  if (auto* mon = cluster.monitor(); mon != nullptr) {
    const auto down = mon->down_osds();
    const auto out_ids = mon->out_osds();
    const auto laggy = mon->laggy_osds();
    append(out, "membership: epoch %llu, %zu up / %zu down / %zu out, %zu laggy\n",
           (unsigned long long)cm.epoch(), cluster.osd_count() - down.size(), down.size(),
           out_ids.size(), laggy.size());
    const auto id_list = [&](const char* label, const std::vector<std::uint32_t>& ids) {
      if (ids.empty()) return;
      append(out, "  %s:", label);
      for (std::uint32_t id : ids) append(out, " osd.%u", id);
      append(out, "\n");
    };
    id_list("down", down);
    id_list("out", out_ids);
    id_list("laggy", laggy);
    append(out,
           "  reports %llu (laggy %llu) | markdowns %llu (deferred %llu, false %llu) "
           "markups %llu markouts %llu | deltas %llu\n",
           (unsigned long long)mon->counters().get("mon.failure_reports"),
           (unsigned long long)mon->counters().get("mon.laggy_reports"),
           (unsigned long long)mon->counters().get("mon.markdowns"),
           (unsigned long long)mon->counters().get("mon.markdowns_deferred"),
           (unsigned long long)mon->counters().get("mon.false_downs"),
           (unsigned long long)mon->counters().get("mon.markups"),
           (unsigned long long)mon->counters().get("mon.markouts"),
           (unsigned long long)mon->counters().get("mon.map_deltas"));
  }

  for (std::size_t n = 0; n < cluster.config().osd_nodes && n * cluster.config().osds_per_node <
                                                                cluster.osd_count();
       n++) {
    auto& node = cluster.osd_node(n);
    append(out, "node.%zu  cpu %5.1f%%  nic %5.1f%%  tx %.1f MiB\n", n,
           node.cpu().utilization() * 100.0, node.nic_utilization() * 100.0,
           double(node.tx_bytes()) / double(kMiB));
  }

  for (std::size_t i = 0; i < cluster.osd_count(); i++) {
    auto& o = cluster.osd(i);
    auto& ssd = cluster.osd_ssd(i);
    auto& db = o.omap_db();
    append(out, "osd.%-2zu dev %4.0f%%/bus %4.0f%% rlat %6.0fus wlat %6.0fus gc %llu\n", i,
           ssd.utilization() * 100.0, ssd.bus_utilization() * 100.0,
           ssd.read_latency().mean() / 1000.0, ssd.write_latency().mean() / 1000.0,
           (unsigned long long)ssd.gc_stalls());
    append(out,
           "       ops w=%llu r=%llu rep=%llu | pglock wait %.1fms cont %llu | defers %llu\n",
           (unsigned long long)o.client_writes(), (unsigned long long)o.client_reads(),
           (unsigned long long)o.replica_ops(), to_ms(o.pg_lock_wait_ns()),
           (unsigned long long)o.pg_lock_contended(), (unsigned long long)o.pending_defers());
    append(out,
           "       journal: %llu entries, batch x%.1f, in-use %.1f MiB, full-stall %.1fms\n",
           (unsigned long long)o.journal().entries_written(), o.journal().average_batch(),
           double(o.journal().bytes_in_use()) / double(kMiB), to_ms(o.journal().full_stall_ns()));
    append(out,
           "       throttles: msgs %llu/%llu  fs_ops %llu/%llu (wait %.1fms)\n",
           (unsigned long long)o.throttles().messages.in_use(),
           (unsigned long long)o.throttles().messages.capacity(),
           (unsigned long long)o.throttles().filestore_ops.in_use(),
           (unsigned long long)o.throttles().filestore_ops.capacity(),
           to_ms(o.throttles().filestore_ops.total_wait_ns()));
    append(out,
           "       filestore: %llu applies, %llu syscalls, %llu metaRd, dirty %.1f MiB, "
           "wb-stalls %llu\n",
           (unsigned long long)o.store().applies(), (unsigned long long)o.store().syscalls(),
           (unsigned long long)o.store().metadata_device_reads(),
           double(o.store().dirty_bytes()) / double(kMiB),
           (unsigned long long)o.store().writeback_stalls());
    append(out,
           "       kv: %zu tables (L0=%d), WA %.2f, flushes %llu, compactions %llu, "
           "slowdowns %llu | cache h/m %llu/%llu\n",
           db.table_count(), db.l0_files(), db.write_amplification(),
           (unsigned long long)db.flushes(), (unsigned long long)db.compactions(),
           (unsigned long long)db.stall_slowdowns(),
           (unsigned long long)db.block_cache_hits(), (unsigned long long)db.block_cache_misses());
    append(out, "       dout: emitted %llu written %llu dropped %llu | meta-cache h/m %llu/%llu\n",
           (unsigned long long)o.dlog().emitted(), (unsigned long long)o.dlog().written(),
           (unsigned long long)o.dlog().dropped(), (unsigned long long)o.meta_cache().hits(),
           (unsigned long long)o.meta_cache().misses());
    const net::NetStats net = o.messenger().net_stats();
    append(out,
           "       msgr: in %llu | out %llu msgs / %llu frames (occ %.2f, batches %llu, "
           "max %llu) | drops %llu resends %llu",
           (unsigned long long)o.messenger().delivered(), (unsigned long long)net.messages,
           (unsigned long long)net.frames, net.batch_occupancy(),
           (unsigned long long)net.batches, (unsigned long long)net.max_batch,
           (unsigned long long)net.dropped_frames, (unsigned long long)net.frame_resends);
    if (net.shard_wakeups > 0) {
      append(out, " | shards: wakeups %llu frames %llu depth-hwm %zu",
             (unsigned long long)net.shard_wakeups, (unsigned long long)net.shard_frames,
             net.shard_depth_hwm);
    }
    append(out, "\n");
    // Degraded-durability evidence, both schemes; printed only when
    // something actually happened so healthy replicated reports are
    // byte-identical to the seed's.
    const std::uint64_t below = o.counters().get("osd.acks_below_min_size");
    const std::uint64_t degraded = o.counters().get("osd.acks_degraded");
    const std::uint64_t dec = o.counters().get("osd.ec_reconstruct_reads");
    const std::uint64_t reb = o.counters().get("osd.ec_shards_rebuilt");
    const std::uint64_t pmm = o.counters().get("osd.ec_parity_mismatch");
    if (below + degraded + dec + reb + pmm > 0) {
      append(out,
             "       redundancy: below-floor %llu degraded-acks %llu | ec decode-reads %llu "
             "shards-rebuilt %llu parity-mismatch %llu\n",
             (unsigned long long)below, (unsigned long long)degraded, (unsigned long long)dec,
             (unsigned long long)reb, (unsigned long long)pmm);
    }
    // Heartbeat / fencing evidence — nonzero only in detected mode.
    const std::uint64_t hbs = o.counters().get("osd.hb_sent");
    if (hbs > 0) {
      append(out,
             "       hb: sent %llu timeouts %llu recoveries %llu | fenced cli %llu rep %llu | "
             "epoch %llu\n",
             (unsigned long long)hbs, (unsigned long long)o.counters().get("osd.hb_timeouts"),
             (unsigned long long)o.counters().get("osd.hb_recoveries"),
             (unsigned long long)o.counters().get("osd.fenced_ops"),
             (unsigned long long)o.counters().get("osd.fenced_rep_ops"),
             (unsigned long long)o.known_epoch());
    }
  }
  return out;
}

std::string health_summary(ClusterSim& cluster) {
  std::string out;
  for (std::size_t i = 0; i < cluster.osd_count(); i++) {
    auto& o = cluster.osd(i);
    append(out, "osd.%-2zu dev %3.0f%% lockwait %7.1fms defers %6llu metaRd %6llu jfull %5.0fms\n",
           i, cluster.osd_ssd(i).utilization() * 100.0, to_ms(o.pg_lock_wait_ns()),
           (unsigned long long)o.pending_defers(),
           (unsigned long long)o.store().metadata_device_reads(),
           to_ms(o.journal().full_stall_ns()));
  }
  return out;
}

}  // namespace afc::core
