#include "core/cluster_sim.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "common/stage_names.h"
#include "ec/codec.h"
#include "ec/layout.h"
#include "net/profile.h"
#include "osd/ec_rebuild.h"

namespace afc::core {

namespace {

/// AFC_SIM_PROFILE=1 turns on the event-loop profiler for every bench that
/// goes through ClusterSim; the counters print to stderr after each run.
bool sim_profile_requested() {
  const char* v = std::getenv("AFC_SIM_PROFILE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Destination for the env-requested trace export; numbered when one process
/// runs several clusters (e.g. fig03's community + AFCeph profiles).
std::string trace_out_path() {
  const char* v = std::getenv("AFC_SIM_TRACE_OUT");
  std::string path = (v != nullptr && v[0] != '\0') ? v : "afc_trace.json";
  static int exports = 0;
  if (++exports > 1) path += "." + std::to_string(exports);
  return path;
}

}  // namespace

ClusterSim::ClusterSim(ClusterConfig cfg)
    : cfg_(std::move(cfg)),
      cmap_(cluster::ClusterMap::PoolConfig{
          cfg_.pg_num, cfg_.replication, cfg_.min_size,
          cfg_.ec_pool ? cluster::ClusterMap::Scheme::kErasure
                       : cluster::ClusterMap::Scheme::kReplicated,
          cfg_.ec_k, cfg_.ec_m}) {
  if (sim_profile_requested()) sim_.enable_profiling();
  if (trace::Collector::env_requested() && trace::Collector::active() == nullptr) {
    tracer_ = std::make_unique<trace::Collector>();
    trace::Collector::install(tracer_.get());
  }
  // --- environment-dependent defaults ---------------------------------
  // AFC_NET_TRANSPORT overrides the transport rung without touching bench
  // code (community / optimized / sharded / sharded_batched / bypass) —
  // check.sh uses it to prove the default-off path is byte-identical to an
  // explicit community rung.
  if (const char* t = std::getenv("AFC_NET_TRANSPORT"); t != nullptr && t[0] != '\0') {
    if (auto net_cfg = net::NetProfile::by_name(t)) {
      cfg_.net = *net_cfg;
    } else {
      std::fprintf(stderr, "AFC_NET_TRANSPORT: unknown rung '%s' (ignored)\n", t);
    }
  }
  // AFC_STORE overrides the object-store backend the same way (file /
  // flash) — check.sh uses it to prove store=file is byte-identical to the
  // default, and fig16 compares the two backends end-to-end.
  if (const char* s = std::getenv("AFC_STORE"); s != nullptr && s[0] != '\0') {
    if (auto backend = store::parse_backend(s)) {
      cfg_.store_backend = *backend;
    } else {
      std::fprintf(stderr, "AFC_STORE: unknown backend '%s' (ignored)\n", s);
    }
  }
  // AFC_MEMBERSHIP overrides the failure-detection mode the same way —
  // check.sh uses it to prove an explicit `oracle` is byte-identical to the
  // default and to soak `detected` without touching bench code.
  if (const char* m = std::getenv("AFC_MEMBERSHIP"); m != nullptr && m[0] != '\0') {
    if (std::strcmp(m, "oracle") == 0) {
      cfg_.membership.mode = mon::MembershipMode::kOracle;
    } else if (std::strcmp(m, "detected") == 0) {
      cfg_.membership.mode = mon::MembershipMode::kDetected;
    } else {
      std::fprintf(stderr, "AFC_MEMBERSHIP: unknown mode '%s' (ignored)\n", m);
    }
  }
  // Pool-level QoS plumbing: the cluster-wide TenantProfile table becomes
  // every OSD's scheduler config (add_node() inherits it the same way).
  cfg_.osd.qos = cfg_.qos;
  cfg_.osd.membership = cfg_.membership;
  // Detected mode splits liveness from placement: acting sets must drop
  // *down* members immediately (no data movement) while *out* — the
  // placement change — waits for the monitor's down_out_interval.
  cmap_.set_filter_down(cfg_.membership.detected());
  cfg_.ssd.sustained = cfg_.sustained;
  cfg_.fs.assume_populated = cfg_.populated < 0 ? cfg_.sustained : cfg_.populated != 0;
  // EC pools can never fabricate pre-existing objects: a synthesized shard
  // would not satisfy the stripe's parity equation, so every degraded read
  // and scrub would see phantom corruption. Reads before the first write of
  // an extent return not-found, exactly like a fresh replicated pool.
  if (cfg_.ec_pool) cfg_.fs.assume_populated = false;
  if (cfg_.sustained) {
    cfg_.fs.page_cache_pages = 16384;  // 64 MiB: cold vs the working set
  } else {
    cfg_.fs.page_cache_pages = 262144;  // 1 GiB: small images stay resident
  }
  // The flash backend sees the same pre-fill state and RAM budget as the
  // file backend — backend choice must not smuggle in a cache-size edge.
  cfg_.flash.assume_populated = cfg_.fs.assume_populated;
  cfg_.flash.page_cache_pages = cfg_.fs.page_cache_pages;

  const osd::ThrottleSet::Config throttle_cfg = cfg_.profile.ssd_throttles
                                                    ? osd::ThrottleSet::Config::ssd_tuned()
                                                    : osd::ThrottleSet::Config::community();

  const store::StoreConfig store_cfg{cfg_.store_backend, cfg_.fs, cfg_.flash};

  // --- nodes, devices, OSDs --------------------------------------------
  const unsigned total_osds = cfg_.osd_nodes * cfg_.osds_per_node;
  for (unsigned n = 0; n < cfg_.osd_nodes; n++) {
    osd_nodes_.push_back(std::make_unique<net::Node>(
        sim_, "node." + std::to_string(n), net::Node::Config{cfg_.node_cores, 1250 * kMiB}));
    nvrams_.push_back(
        std::make_unique<dev::NvramModel>(sim_, "nvram." + std::to_string(n), cfg_.nvram));
  }
  for (unsigned c = 0; c < cfg_.client_nodes; c++) {
    client_nodes_.push_back(
        std::make_unique<net::Node>(sim_, "client." + std::to_string(c),
                                    net::Node::Config{cfg_.client_node_cores, 1250 * kMiB}));
  }

  for (unsigned i = 0; i < total_osds; i++) {
    const unsigned node = i / cfg_.osds_per_node;
    cmap_.crush().add_osd(i, node);
    // Paper §4.1: "OSD 1~4 uses 3,3,2,2 SSDs respectively", RAID-0.
    dev::SsdModel::Config ssd_cfg = cfg_.ssd;
    ssd_cfg.drives = (i % cfg_.osds_per_node) < 2 ? 3 : 2;
    ssds_.push_back(std::make_unique<dev::SsdModel>(sim_, "ssd." + std::to_string(i), ssd_cfg));
    osds_.push_back(std::make_unique<osd::Osd>(
        sim_, *osd_nodes_[node], *nvrams_[node], *ssds_[i], cmap_, i, cfg_.osd, cfg_.profile,
        store_cfg, cfg_.kv, throttle_cfg, cfg_.log, cfg_.journal));
    if (auto* tr = trace::Collector::active()) {
      tr->name_track(trace::osd_track(i), "osd." + std::to_string(i));
    }
  }

  // --- PG instantiation --------------------------------------------------
  for (std::uint32_t pg = 0; pg < cfg_.pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    for (std::uint32_t osd_id : acting) {
      // EC acting sets can carry kNoOsd holes (more shards than live OSDs).
      if (osd_id == cluster::ClusterMap::kNoOsd) continue;
      osds_[osd_id]->create_pg(pg, acting);
    }
  }

  // --- cluster-network wiring ------------------------------------------
  const net::Connection::Config cluster_net = net::NetProfile::cluster(cfg_.net);
  for (unsigned i = 0; i < total_osds; i++) {
    for (unsigned j = i + 1; j < total_osds; j++) {
      net::Connection* conn = osds_[i]->messenger().connect(osds_[j]->messenger(), cluster_net);
      osds_[i]->add_peer(j, conn);
      osds_[j]->add_peer(i, conn->reverse());
    }
  }

  // --- VMs ---------------------------------------------------------------
  const net::Connection::Config client_net =
      net::NetProfile::client(cfg_.net, !cfg_.profile.disable_nagle);
  for (unsigned v = 0; v < cfg_.vms; v++) {
    net::Node& host = *client_nodes_[v % cfg_.client_nodes];
    vms_.push_back(std::make_unique<client::VmClient>(
        sim_, host, cmap_, client::RbdImage("vm" + std::to_string(v), cfg_.image_size),
        /*client_id=*/v + 1, cfg_.seed + 7919 * (v + 1)));
    vms_.back()->set_op_cpu(cfg_.client_op_cpu);
    if (cfg_.client_op_timeout > 0) {
      vms_.back()->set_op_timeout(cfg_.client_op_timeout, cfg_.client_op_retries);
    }
    if (auto* tr = trace::Collector::active()) {
      tr->name_track(trace::client_track(v + 1), "vm." + std::to_string(v));
    }
    for (unsigned i = 0; i < total_osds; i++) {
      net::Connection* conn = vms_.back()->messenger().connect(osds_[i]->messenger(), client_net);
      vms_.back()->add_osd_conn(i, conn);
    }
  }

  // --- membership plane (kDetected only; kOracle builds none of this) ----
  if (cfg_.membership.detected()) {
    std::vector<osd::Osd*> roster;
    roster.reserve(osds_.size());
    for (auto& o : osds_) roster.push_back(o.get());
    for (auto& o : osds_) o->set_cluster_osds(roster);

    mon_node_ = std::make_unique<net::Node>(sim_, "mon",
                                            net::Node::Config{4, 1250 * kMiB});
    monitor_ = std::make_unique<mon::Monitor>(sim_, cmap_, cfg_.membership);
    mon_msgr_ = std::make_unique<net::Messenger>(sim_, *mon_node_, *monitor_, "mon");
    // Ground truth for the false-positive counter: an OSD is "actually
    // failed" iff its daemon is blackholed or some injected fault sits on a
    // link touching its messenger (partition mark-downs are correct).
    monitor_->set_liveness_probe([this](std::uint32_t id) {
      net::Messenger& target = osds_[id]->messenger();
      if (target.blackholed()) return true;
      for (const auto& o : osds_) {
        for (const auto& c : o->messenger().connections()) {
          if ((&c->local() == &target || &c->remote() == &target) && c->fault().any()) {
            return true;
          }
        }
      }
      for (const auto& c : mon_msgr_->connections()) {
        if ((&c->local() == &target || &c->remote() == &target) && c->fault().any()) {
          return true;
        }
      }
      return false;
    });
    // Wire mon<->OSD in id order and mon<->client in client order — both
    // registration orders are part of the determinism contract (publish
    // iterates them).
    for (unsigned i = 0; i < total_osds; i++) {
      net::Connection* conn = mon_msgr_->connect(osds_[i]->messenger(), cluster_net);
      monitor_->add_osd_subscriber(i, conn);
      osds_[i]->set_mon_conn(conn->reverse());
    }
    for (auto& vm : vms_) {
      monitor_->add_client_subscriber(mon_msgr_->connect(vm->messenger(), client_net));
      vm->set_membership(cfg_.membership);
    }
    for (unsigned i = 0; i < total_osds; i++) {
      osds_[i]->start_membership(cfg_.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    }
  }
}

ClusterSim::~ClusterSim() {
  if (tracer_ != nullptr && trace::Collector::active() == tracer_.get()) {
    trace::Collector::install(nullptr);
  }
}

RunResult ClusterSim::run(const client::WorkloadSpec& spec) {
  if (ran_) return RunResult{};  // single-shot facade
  ran_ = true;

  client::RunStats stats;
  const Time t0 = sim_.now();
  stats.window_start = t0 + spec.warmup;
  stats.window_end = t0 + spec.warmup + spec.runtime;
  for (auto& vm : vms_) vm->start(spec, stats.window_end, &stats);
  sim_.run_until(stats.window_end);

  RunResult r;
  r.write_iops = stats.write_iops();
  r.read_iops = stats.read_iops();
  r.write_lat_ms = stats.write_lat.mean_ms();
  r.read_lat_ms = stats.read_lat.mean_ms();
  r.write_p99_ms = stats.write_lat.p99_ms();
  r.read_p99_ms = stats.read_lat.p99_ms();
  const std::size_t wfrom = std::size_t(stats.window_start / stats.write_series.interval());
  const std::size_t wto = std::size_t(stats.window_end / stats.write_series.interval());
  r.write_cov = stats.write_series.cov(wfrom, wto);
  r.read_cov = stats.read_series.cov(wfrom, wto);
  r.write_lat = stats.write_lat;
  r.read_lat = stats.read_lat;
  r.write_series = stats.write_series;
  r.read_series = stats.read_series;
  r.verify_failures = stats.verify_failures;
  collect_osd_stats(r);
  report_observability();
  return r;
}

void ClusterSim::report_observability() {
  if (sim_.profiling_enabled()) {
    Counters prof;
    sim_.profile_into(prof);
    std::fprintf(stderr, "--- sim profile ---\n%s", prof.to_string().c_str());
  }
  if (tracer_ != nullptr) {
    // Env-owned collector: flush the flight recorder to Chrome trace JSON.
    const std::string path = trace_out_path();
    const bool ok = tracer_->export_chrome_json_file(path);
    std::fprintf(stderr, "--- trace: %llu spans (%llu dropped, %llu mismatched) -> %s%s ---\n",
                 static_cast<unsigned long long>(tracer_->spans_recorded()),
                 static_cast<unsigned long long>(tracer_->spans_dropped()),
                 static_cast<unsigned long long>(tracer_->mismatched()), path.c_str(),
                 ok ? "" : " (WRITE FAILED)");
  }
}

void ClusterSim::collect_osd_stats(RunResult& r) const {
  Histogram stage_merged[osd::kStageCount];
  Histogram total_merged;
  for (const auto& o : osds_) {
    r.pg_lock_wait_ns += o->pg_lock_wait_ns();
    r.pg_lock_contended += o->pg_lock_contended();
    r.pending_defers += o->pending_defers();
    r.journal_full_stalls += o->journal().full_stalls();
    r.journal_full_ns += o->journal().full_stall_ns();
    r.fs_writeback_stalls += o->store().writeback_stalls();
    r.log_entries_dropped += o->dlog().dropped();
    r.metadata_device_reads += o->store().metadata_device_reads();
    r.syscalls += o->store().syscalls();
    r.kv_write_amplification =
        std::max(r.kv_write_amplification, o->omap_db().write_amplification());
    r.kv_stall_slowdowns += o->omap_db().stall_slowdowns();
    r.journal_records_replayed += o->counters().get("osd.journal.records_replayed");
    r.journal_torn_tails += o->counters().get("osd.journal.torn_tails");
    r.journal_crc_failures += o->counters().get("osd.journal.crc_failures");
    r.scrub_objects_repaired += o->counters().get("osd.scrub_objects_repaired");
    r.ec_reconstruct_reads += o->counters().get("osd.ec_reconstruct_reads");
    r.ec_shards_rebuilt += o->counters().get("osd.ec_shards_rebuilt");
    r.ec_parity_mismatch += o->counters().get("osd.ec_parity_mismatch");
    if (const auto* qos = o->qos(); qos != nullptr) {
      r.qos_enqueued += qos->stats().enqueued;
      r.qos_dispatched += qos->stats().dispatched;
      r.qos_reservation_grants += qos->stats().reservation_grants;
      r.qos_weight_grants += qos->stats().weight_grants;
      r.qos_limit_deferrals += qos->stats().limit_deferrals;
      r.qos_queue_hwm = std::max(r.qos_queue_hwm, qos->stats().depth_hwm);
    }
    r.hb_sent += o->counters().get("osd.hb_sent");
    r.hb_timeouts += o->counters().get("osd.hb_timeouts");
    r.fenced_ops +=
        o->counters().get("osd.fenced_ops") + o->counters().get("osd.fenced_rep_ops");
    for (unsigned s = 0; s < osd::kStageCount; s++) stage_merged[s].merge(o->stage_delta(s));
    total_merged.merge(o->write_total_hist());
  }
  if (monitor_ != nullptr) {
    r.failure_reports = monitor_->counters().get("mon.failure_reports");
    r.false_downs = monitor_->counters().get("mon.false_downs");
    r.map_deltas = monitor_->counters().get("mon.map_deltas");
    r.mon_markdowns = monitor_->counters().get("mon.markdowns");
    r.mon_markouts = monitor_->counters().get("mon.markouts");
    r.laggy_flags = monitor_->counters().get("mon.laggy_flags");
  }
  for (unsigned s = 0; s < osd::kStageCount; s++) r.stage_ms[s] = stage_merged[s].mean_ms();
  r.write_path_total_ms = total_merged.mean_ms();
  for (const auto& n : osd_nodes_) {
    r.max_osd_node_cpu = std::max(r.max_osd_node_cpu, n->cpu().utilization());
  }
  net::NetStats net;
  for (const auto& o : osds_) net.merge(o->messenger().net_stats());
  for (const auto& v : vms_) net.merge(v->messenger().net_stats());
  if (mon_msgr_ != nullptr) net.merge(mon_msgr_->net_stats());
  r.net_messages = net.messages;
  r.net_frames = net.frames;
  r.net_batches = net.batches;
  r.net_batched_msgs = net.batched_msgs;
  r.net_max_batch = net.max_batch;
  r.net_batch_occupancy = net.batch_occupancy();
  r.net_nagle_stalls = net.nagle_stalls;
  r.net_shard_wakeups = net.shard_wakeups;
  r.net_shard_depth_hwm = net.shard_depth_hwm;
}

fault::FaultInjector& ClusterSim::install_faults(const fault::FaultPlan& plan) {
  if (injector_ == nullptr) {
    std::vector<osd::Osd*> osds;
    std::vector<dev::SsdModel*> ssds;
    std::vector<net::Messenger*> endpoints;
    for (auto& o : osds_) {
      osds.push_back(o.get());
      endpoints.push_back(&o->messenger());
    }
    for (auto& s : ssds_) ssds.push_back(s.get());
    for (auto& vm : vms_) endpoints.push_back(&vm->messenger());
    if (mon_msgr_ != nullptr) endpoints.push_back(mon_msgr_.get());
    injector_ = std::make_unique<fault::FaultInjector>(
        sim_, cmap_, std::move(osds), std::move(ssds), std::move(endpoints), cfg_.seed);
    injector_->set_detected(cfg_.membership.detected());
    injector_->set_monitor(mon_msgr_.get());
  }
  injector_->install(plan);
  return *injector_;
}

sim::CoTask<std::uint64_t> ClusterSim::rebalance(
    const std::vector<std::vector<std::uint32_t>>& old_acting) {
  std::uint64_t migrated = 0;
  if (cmap_.erasure()) {
    // EC recovery is positional: ec_remap pins surviving shards to their
    // slots, so only the changed positions lost a shard — rebuild each by
    // decode-from-peers instead of copying a whole replica.
    std::vector<osd::Osd*> raw;
    raw.reserve(osds_.size());
    for (auto& o : osds_) raw.push_back(o.get());
    for (std::uint32_t pg = 0; pg < cfg_.pg_num; pg++) {
      const auto& acting = cmap_.acting(pg);
      if (acting == old_acting[pg]) continue;
      for (std::uint32_t member : acting) {
        if (member == cluster::ClusterMap::kNoOsd) continue;
        osds_[member]->set_pg_acting(pg, acting);
      }
      for (unsigned pos = 0; pos < acting.size(); pos++) {
        const std::uint32_t member = acting[pos];
        if (member == cluster::ClusterMap::kNoOsd) continue;
        const bool changed =
            pos >= old_acting[pg].size() || old_acting[pg][pos] != member;
        if (!changed) continue;
        migrated +=
            co_await osd::ec_rebuild_position(sim_, cmap_, raw, pg, pos, *osds_[member]);
      }
    }
    co_return migrated;
  }
  for (std::uint32_t pg = 0; pg < cfg_.pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    if (acting == old_acting[pg]) continue;
    // Pick a surviving member of the old set as the backfill source.
    osd::Osd* source = nullptr;
    for (std::uint32_t member : old_acting[pg]) {
      if (cmap_.crush().osds()[member].up) {
        source = osds_[member].get();
        break;
      }
    }
    for (std::uint32_t member : acting) {
      osds_[member]->set_pg_acting(pg, acting);
      const bool newcomer = std::find(old_acting[pg].begin(), old_acting[pg].end(), member) ==
                            old_acting[pg].end();
      if (newcomer && source != nullptr) {
        migrated += co_await source->push_pg(pg, *osds_[member]);
      }
    }
    // Survivors that are no longer in the acting set keep stale data; a real
    // cluster trims it lazily, which we skip.
  }
  co_return migrated;
}

sim::CoTask<std::uint64_t> ClusterSim::decommission_osd(std::uint32_t osd_id) {
  std::vector<std::vector<std::uint32_t>> old_acting(cfg_.pg_num);
  for (std::uint32_t pg = 0; pg < cfg_.pg_num; pg++) old_acting[pg] = cmap_.acting(pg);
  cmap_.crush().set_up(osd_id, false);
  cmap_.bump_epoch();
  co_return co_await rebalance(old_acting);
}

sim::CoTask<std::uint64_t> ClusterSim::add_node() {
  std::vector<std::vector<std::uint32_t>> old_acting(cfg_.pg_num);
  for (std::uint32_t pg = 0; pg < cfg_.pg_num; pg++) old_acting[pg] = cmap_.acting(pg);

  const unsigned node_index = unsigned(osd_nodes_.size());
  osd_nodes_.push_back(std::make_unique<net::Node>(
      sim_, "node." + std::to_string(node_index),
      net::Node::Config{cfg_.node_cores, 1250 * kMiB}));
  nvrams_.push_back(std::make_unique<dev::NvramModel>(
      sim_, "nvram." + std::to_string(node_index), cfg_.nvram));

  const osd::ThrottleSet::Config throttle_cfg = cfg_.profile.ssd_throttles
                                                    ? osd::ThrottleSet::Config::ssd_tuned()
                                                    : osd::ThrottleSet::Config::community();
  const net::Connection::Config cluster_net = net::NetProfile::cluster(cfg_.net);
  const net::Connection::Config client_net =
      net::NetProfile::client(cfg_.net, !cfg_.profile.disable_nagle);
  const store::StoreConfig store_cfg{cfg_.store_backend, cfg_.fs, cfg_.flash};

  const std::size_t first_new = osds_.size();
  for (unsigned k = 0; k < cfg_.osds_per_node; k++) {
    const std::uint32_t id = std::uint32_t(osds_.size());
    cmap_.crush().add_osd(id, node_index);
    dev::SsdModel::Config ssd_cfg = cfg_.ssd;
    ssd_cfg.sustained = cfg_.sustained;
    ssd_cfg.drives = k < 2 ? 3 : 2;
    ssds_.push_back(std::make_unique<dev::SsdModel>(sim_, "ssd." + std::to_string(id), ssd_cfg));
    osds_.push_back(std::make_unique<osd::Osd>(
        sim_, *osd_nodes_[node_index], *nvrams_[node_index], *ssds_[id], cmap_, id, cfg_.osd,
        cfg_.profile, store_cfg, cfg_.kv, throttle_cfg, cfg_.log, cfg_.journal));
    if (auto* tr = trace::Collector::active()) {
      tr->name_track(trace::osd_track(id), "osd." + std::to_string(id));
    }
  }
  // Wire the new OSDs to everyone (existing OSDs and all VMs).
  for (std::size_t n = first_new; n < osds_.size(); n++) {
    for (std::size_t o = 0; o < osds_.size(); o++) {
      if (o == n) continue;
      net::Connection* conn = osds_[n]->messenger().connect(osds_[o]->messenger(), cluster_net);
      osds_[n]->add_peer(std::uint32_t(o), conn);
      osds_[o]->add_peer(std::uint32_t(n), conn->reverse());
    }
    for (auto& vm : vms_) {
      net::Connection* conn = vm->messenger().connect(osds_[n]->messenger(), client_net);
      vm->add_osd_conn(std::uint32_t(n), conn);
    }
  }
  cmap_.bump_epoch();
  co_return co_await rebalance(old_acting);
}

sim::CoTask<ClusterSim::ScrubReport> ClusterSim::deep_scrub(bool repair) {
  if (cmap_.erasure()) co_return co_await deep_scrub_ec(repair);
  ScrubReport report;
  for (std::uint32_t pg = 0; pg < cfg_.pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    if (acting.empty()) continue;
    osd::Osd& primary = *osds_[acting[0]];
    // Union of object names across the acting set (a replica could hold an
    // object the primary somehow lost).
    std::set<fs::ObjectId> names;
    bool any = false;
    for (auto member : acting) {
      for (auto& oid : osds_[member]->store().objects_in_pg(pg)) {
        names.insert(std::move(oid));
        any = true;
      }
    }
    if (!any) continue;
    report.pgs_scrubbed++;
    for (const auto& oid : names) {
      report.objects_scrubbed++;
      // Pick the authoritative copy: the first acting member whose replica
      // still passes its write-time extent checksums. The primary is not
      // automatically trusted — its media can rot like anyone else's
      // (Ceph's repair likewise selects by deep-scrub digest, not rank).
      osd::Osd* auth = &primary;
      for (auto member : acting) {
        auto& store = osds_[member]->store();
        if (store.object_in_memory(oid) && store.verify_object(oid)) {
          auth = osds_[member].get();
          break;
        }
      }
      const std::uint64_t want = auth->store().object_fingerprint(oid);
      // Deep scrub reads every replica's bytes (charged), self-checks its
      // checksums, and compares fingerprints against the authoritative copy.
      std::vector<std::uint32_t> bad_members;
      for (auto member : acting) {
        auto& store = osds_[member]->store();
        if (!store.object_in_memory(oid)) {
          report.missing++;
          bad_members.push_back(member);
          continue;
        }
        co_await store.read(oid, 0, store.object_size(oid), /*want_data=*/false);
        if (!store.verify_object(oid) || store.object_fingerprint(oid) != want) {
          report.inconsistent++;
          bad_members.push_back(member);
        }
      }
      if (!bad_members.empty() && repair) {
        for (auto member : bad_members) {
          if (osds_[member].get() == auth) continue;
          co_await osds_[member]->recover_object(oid, auth->store().export_object(oid));
          report.repaired++;
          osds_[member]->counters().add("osd.scrub_objects_repaired");
          if (auto* tr = trace::Collector::active()) {
            tr->instant(trace::Span{fs::ObjectIdHash{}(oid) | 1, trace::kFaultTrack},
                        tr->stage_id(stage::kScrubRepair), sim_.now());
          }
        }
      }
    }
  }
  co_return report;
}

sim::CoTask<ClusterSim::ScrubReport> ClusterSim::deep_scrub_ec(bool repair) {
  ScrubReport report;
  const unsigned k = cmap_.ec_k();
  const unsigned m = cmap_.ec_m();
  ec::Codec codec(k, m);
  const auto extent_at = [](const fs::FileStore::ObjectExport& exp,
                            std::uint64_t off) -> const Payload* {
    for (const auto& [eoff, pay] : exp.extents)
      if (eoff == off) return &pay;
    return nullptr;
  };
  for (std::uint32_t pg = 0; pg < cfg_.pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    if (acting.size() < std::size_t(k) + m) continue;
    // Stripe census: union of base names over every position's shard store.
    std::set<std::string> bases;
    for (unsigned p = 0; p < k + m; p++) {
      const std::uint32_t member = acting[p];
      if (member == cluster::ClusterMap::kNoOsd) continue;
      for (const auto& oid : osds_[member]->store().objects_in_pg(pg))
        if (auto sn = ec::parse_shard(oid.name); sn.has_value() && sn->shard == p)
          bases.insert(sn->base);
    }
    if (bases.empty()) continue;
    report.pgs_scrubbed++;
    for (const auto& base : bases) {
      report.objects_scrubbed++;
      const fs::ObjectId base_oid{pg, base};
      // Phase 1: each shard self-checks its write-time extent CRCs (bytes
      // read charged, as in a replicated deep scrub). A failing or missing
      // shard is repaired by decoding from any k clean peers.
      std::vector<unsigned> bad;
      for (unsigned p = 0; p < k + m; p++) {
        const std::uint32_t member = acting[p];
        if (member == cluster::ClusterMap::kNoOsd) continue;  // hole: no store to check
        const fs::ObjectId soid = ec::shard_oid(base_oid, p);
        auto& store = osds_[member]->store();
        if (!store.object_in_memory(soid)) {
          report.missing++;
          bad.push_back(p);
          continue;
        }
        co_await store.read(soid, 0, store.object_size(soid), /*want_data=*/false);
        if (!store.verify_object(soid)) {
          report.inconsistent++;
          bad.push_back(p);
        }
      }
      if (!bad.empty() && repair) {
        std::vector<unsigned> src_pos;
        std::vector<fs::FileStore::ObjectExport> src_exp;
        std::vector<std::pair<std::string, kv::Value>> xattrs;
        for (unsigned p = 0; p < k + m && src_pos.size() < k; p++) {
          const std::uint32_t member = acting[p];
          if (member == cluster::ClusterMap::kNoOsd) continue;
          if (std::find(bad.begin(), bad.end(), p) != bad.end()) continue;
          auto exp = osds_[member]->store().export_object(ec::shard_oid(base_oid, p));
          if (xattrs.empty()) xattrs = exp.xattrs;
          src_pos.push_back(p);
          src_exp.push_back(std::move(exp));
        }
        if (src_pos.size() >= k) {
          std::map<std::uint64_t, std::uint64_t> extents;
          for (const auto& e : src_exp)
            for (const auto& [off, pay] : e.extents)
              extents[off] = std::max(extents[off], pay.size());
          for (unsigned p : bad) {
            const std::uint32_t member = acting[p];
            if (member == cluster::ClusterMap::kNoOsd) continue;
            fs::FileStore::ObjectExport out;
            for (const auto& [off, len] : extents) {
              std::vector<unsigned> present;
              std::vector<std::vector<std::uint8_t>> chunks;
              for (std::size_t s = 0; s < src_pos.size(); s++) {
                const Payload* pay = extent_at(src_exp[s], off);
                if (pay == nullptr || present.size() >= k) continue;
                auto bytes = pay->materialize();
                bytes.resize(len, 0);
                present.push_back(src_pos[s]);
                chunks.push_back(std::move(bytes));
              }
              if (present.size() < k) continue;  // torn tail: phase 2's problem
              auto chunk = codec.reconstruct_shard(p, present, chunks);
              if (!chunk.has_value()) continue;
              out.size = std::max(out.size, off + chunk->size());
              out.extents.emplace_back(off, Payload::bytes(std::move(*chunk)));
            }
            if (out.extents.empty()) continue;
            out.xattrs = xattrs;
            co_await osds_[member]->recover_object(ec::shard_oid(base_oid, p), std::move(out));
            report.repaired++;
            osds_[member]->counters().add("osd.scrub_objects_repaired");
            if (auto* tr = trace::Collector::active()) {
              tr->instant(trace::Span{fs::ObjectIdHash{}(base_oid) | 1, trace::kFaultTrack},
                          tr->stage_id(stage::kScrubRepair), sim_.now());
            }
          }
        }
      }
      // Phase 2: stripe parity consistency. A torn stripe write (crash
      // mid-fanout) leaves shards that each pass their own CRC yet violate
      // the parity equation; only a cross-shard recompute can see that.
      // Checkable only when every position currently holds a clean shard
      // (possibly thanks to phase-1 repair a moment ago).
      std::vector<fs::FileStore::ObjectExport> all(k + m);
      bool complete = true;
      for (unsigned p = 0; p < k + m; p++) {
        const std::uint32_t member = acting[p];
        const fs::ObjectId soid = ec::shard_oid(base_oid, p);
        if (member == cluster::ClusterMap::kNoOsd ||
            !osds_[member]->store().object_in_memory(soid) ||
            !osds_[member]->store().verify_object(soid)) {
          complete = false;
          break;
        }
        all[p] = osds_[member]->store().export_object(soid);
      }
      if (!complete) continue;
      std::map<std::uint64_t, std::uint64_t> offsets;
      for (unsigned p = 0; p < k + m; p++)
        for (const auto& [off, pay] : all[p].extents)
          offsets[off] = std::max(offsets[off], pay.size());
      // Authoritative convergence rule for an inconsistent (never-acked)
      // stripe: the data shards' stored bytes win, absent data extents count
      // as zeros, parity is recomputed. Reads after repair return a single
      // consistent pre-or-post-write mix, and a re-scrub finds nothing.
      bool dirty = false;
      std::vector<bool> needs(k + m, false);
      std::vector<fs::FileStore::ObjectExport> fixed(k + m);
      for (const auto& [off, len] : offsets) {
        std::vector<std::vector<std::uint8_t>> data;
        for (unsigned j = 0; j < k; j++) {
          const Payload* pay = extent_at(all[j], off);
          auto bytes = pay != nullptr ? pay->materialize() : std::vector<std::uint8_t>();
          bytes.resize(len, 0);
          data.push_back(std::move(bytes));
        }
        auto parity = codec.encode(data);
        for (unsigned p = 0; p < k + m; p++) {
          const std::vector<std::uint8_t>& want = p < k ? data[p] : parity[p - k];
          const Payload* stored = extent_at(all[p], off);
          const bool same =
              stored != nullptr && stored->size() == len && stored->materialize() == want;
          if (!same) {
            dirty = true;
            needs[p] = true;
          }
          fixed[p].size = std::max(fixed[p].size, off + len);
          fixed[p].extents.emplace_back(off, Payload::bytes(want));
        }
      }
      if (!dirty) continue;
      report.inconsistent++;
      const std::uint32_t primary = cmap_.primary(pg);
      osds_[primary]->counters().add("osd.ec_parity_mismatch");
      if (auto* tr = trace::Collector::active()) {
        tr->instant(trace::Span{fs::ObjectIdHash{}(base_oid) | 1, trace::kFaultTrack},
                    tr->stage_id(stage::kEcParityMismatch), sim_.now());
      }
      if (!repair) continue;
      for (unsigned p = 0; p < k + m; p++) {
        if (!needs[p]) continue;
        const std::uint32_t member = acting[p];
        fixed[p].xattrs = all[p].xattrs.empty() ? all[0].xattrs : all[p].xattrs;
        co_await osds_[member]->recover_object(ec::shard_oid(base_oid, p),
                                               std::move(fixed[p]));
        report.repaired++;
        osds_[member]->counters().add("osd.scrub_objects_repaired");
        if (auto* tr = trace::Collector::active()) {
          tr->instant(trace::Span{fs::ObjectIdHash{}(base_oid) | 1, trace::kFaultTrack},
                      tr->stage_id(stage::kScrubRepair), sim_.now());
        }
      }
    }
  }
  co_return report;
}

void ClusterSim::close_all() {
  if (monitor_ != nullptr) monitor_->close();
  for (auto& o : osds_) o->close();
  for (auto& vm : vms_) vm->messenger().close_all();
  if (mon_msgr_ != nullptr) mon_msgr_->close_all();
}

}  // namespace afc::core
