#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace afc::core {

/// One boolean per mechanism the paper adds, so the Fig. 9 ablation ladder
/// toggles exactly one group per step and every combination can be explored
/// in the ablation benches.
struct Profile {
  std::string name = "community";

  // --- §3.1 minimizing coarse-grained locking -------------------------
  /// Per-PG pending queue: a worker that finds the PG busy parks the op
  /// and serves other PGs instead of blocking (paper Fig. 5).
  bool pending_queue = false;
  /// Journal/filestore completions do only OP-lock work inline; PG-side
  /// status work is batched by a dedicated completion worker (Fig. 6).
  bool dedicated_completion = false;
  /// Acks (client replies, replica commit notifications) bypass the PG
  /// queue instead of competing with data ops.
  bool fast_ack = false;

  // --- §3.2 throttling & system tuning --------------------------------
  /// Size filestore_queue_max_ops / osd_client_message_cap for SSDs
  /// (community defaults are HDD-era).
  bool ssd_throttles = false;
  /// jemalloc instead of tcmalloc: cheaper small allocations on the hot
  /// path (modelled as a CPU multiplier on allocation-heavy stages).
  bool jemalloc = false;
  /// TCP_NODELAY on the client (KRBD) connections.
  bool disable_nagle = false;

  // --- §3.3 non-blocking logging ---------------------------------------
  bool logging_enabled = true;
  /// Async submission: the op path never waits for the logger.
  bool nonblocking_logging = false;
  /// Interned log templates: formatting cost collapses on repeat entries.
  bool log_cache = false;
  unsigned log_writer_threads = 1;

  // --- §3.4 light-weight transactions ----------------------------------
  /// Merge/minimize transaction ops and syscalls.
  bool light_transactions = false;
  /// Write-through metadata cache: no metadata reads on the write path.
  bool writethrough_meta_cache = false;
  /// Drop OP_SETALLOCHINT (fallocate) for random small writes.
  bool skip_alloc_hint = false;
  /// One KV WriteBatch per transaction instead of one put per key.
  bool kv_batching = false;

  /// Optional §3.1 extra: per-client in-order ack delivery (the paper's
  /// opt-in fix for the unordered-ack side effect of batched completions).
  bool ordered_acks = false;

  /// Allocation-heavy-stage CPU multiplier implied by the allocator choice.
  double alloc_cpu_multiplier() const { return jemalloc ? 1.0 : 1.7; }

  static Profile community();
  static Profile afceph();
  /// Fig. 9 ladder: 0=community, 1=+lock, 2=+throttle/tuning,
  /// 3=+non-blocking logging, 4=+light transactions (== afceph).
  static Profile ladder(int step);
  static const char* ladder_name(int step);
};

}  // namespace afc::core
