#pragma once

#include <string>

#include "core/cluster_sim.h"

namespace afc::core {

/// Renders an operator-style health report of the whole simulated cluster:
/// per-OSD device utilization and latencies, queue/throttle states, journal
/// fill, KV store shape (levels, write amplification, stalls), cache hit
/// rates, logging drops, PG-lock contention, messenger load — the "ceph
/// daemon perf dump" of this repo. Used by the calibrate tool and examples;
/// handy when a workload behaves unexpectedly.
std::string health_report(ClusterSim& cluster);

/// One-line-per-OSD condensed variant.
std::string health_summary(ClusterSim& cluster);

}  // namespace afc::core
