#include "core/bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

namespace afc::core {

namespace {

constexpr const char* kHeader = "{\"schema\":\"afc-bench-v1\",\"runs\":[";
constexpr const char* kFooter = "]}\n";

/// Minimal JSON string escaping for the label/name fields we emit (no
/// control characters expected; quotes and backslashes handled).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string format_record(const BenchRecord& r) {
  std::ostringstream os;
  os << "{\"bench\":\"" << escape(r.bench) << "\",\"config\":\"" << escape(r.config) << "\"";
  if (const char* label = std::getenv("AFC_BENCH_LABEL"); label != nullptr && label[0] != '\0') {
    os << ",\"label\":\"" << escape(label) << "\"";
  }
  os << ",\"utc\":" << std::time(nullptr);
  os << ",\"nodes\":" << r.nodes << ",\"osds\":" << r.osds;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", r.value);
  os << ",\"metric\":\"" << escape(r.metric) << "\",\"value\":" << buf;
  std::snprintf(buf, sizeof buf, "%.1f", r.wall_ms);
  os << ",\"wall_ms\":" << buf;
  os << ",\"events\":" << r.events;
  std::snprintf(buf, sizeof buf, "%.6g", r.events_per_wall_sec);
  os << ",\"events_per_wall_sec\":" << buf;
  os << ",\"sim_ns\":" << r.sim_ns;
  std::snprintf(buf, sizeof buf, "%.4g", r.sim_ns_per_wall_ns);
  os << ",\"sim_ns_per_wall_ns\":" << buf;
  std::snprintf(buf, sizeof buf, "%.3f", r.max_node_cpu);
  os << ",\"max_node_cpu\":" << buf << "}";
  return os.str();
}

}  // namespace

bool BenchJson::enabled() {
  const char* p = std::getenv("AFC_BENCH_JSON");
  return p != nullptr && p[0] != '\0';
}

std::string BenchJson::path() {
  const char* p = std::getenv("AFC_BENCH_JSON");
  return p != nullptr ? p : "";
}

bool BenchJson::record(const BenchRecord& rec) {
  if (!enabled()) return true;
  const std::string file = path();
  std::string body;
  {
    std::ifstream in(file, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      body = ss.str();
    }
  }
  if (body.empty()) {
    body = std::string(kHeader) + kFooter;
  }
  // Splice before the closing "]}" of our own format; anything else is a
  // foreign file we refuse to clobber.
  const std::size_t cut = body.rfind(kFooter);
  if (body.rfind(kHeader, 0) != 0 || cut == std::string::npos) {
    std::fprintf(stderr, "BenchJson: %s is not an afc-bench-v1 file; record dropped\n",
                 file.c_str());
    return false;
  }
  const bool first = cut > 0 && body[cut - 1] == '[';
  std::string entry = first ? "\n" : ",\n";
  entry += format_record(rec);
  entry += "\n";
  body.insert(cut, entry);
  // Crash-safe append: write the whole document to a sibling temp file and
  // rename it into place. A crash (or fault-injected kill) mid-write leaves
  // either the old complete file or the new complete file, never a torn one.
  const std::string tmp = file + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << body) || !out.flush()) {
      std::fprintf(stderr, "BenchJson: failed writing %s\n", tmp.c_str());
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), file.c_str()) != 0) {
    std::fprintf(stderr, "BenchJson: failed renaming %s into place\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace afc::core
