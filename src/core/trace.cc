#include "core/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace afc::trace {

Collector* Collector::active_ = nullptr;

Collector::Collector() : Collector(Config{}) {}

Collector::Collector(Config cfg) : cfg_(cfg) { ring_.reserve(cfg_.ring_capacity); }

bool Collector::env_requested() {
  const char* v = std::getenv("AFC_SIM_TRACE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

Collector::StageId Collector::stage_id(const char* name) {
  std::lock_guard lk(mu_);
  return stages_.intern(name);
}

void Collector::record(const Span& span, StageId stage, Time begin, Time dur) {
  recorded_++;
  hists_[stage].record(dur);
  if (ring_.size() < cfg_.ring_capacity) {
    ring_.push_back(Event{span.id, stage, span.track, begin, dur});
    return;
  }
  // Flight-recorder ring: overwrite the oldest completed span.
  dropped_++;
  ring_wrapped_ = true;
  ring_[ring_next_] = Event{span.id, stage, span.track, begin, dur};
  ring_next_ = (ring_next_ + 1) % cfg_.ring_capacity;
}

void Collector::begin(const Span& span, StageId stage, Time now) {
  if (!span.valid()) return;
  std::lock_guard lk(mu_);
  auto [it, inserted] = open_.emplace(OpenKey{span.id, stage, span.track}, now);
  if (!inserted) {
    mismatched_++;
    it->second = now;  // replace: the later begin wins
  }
}

void Collector::end(const Span& span, StageId stage, Time now) {
  if (!span.valid()) return;
  std::lock_guard lk(mu_);
  auto it = open_.find(OpenKey{span.id, stage, span.track});
  if (it == open_.end()) {
    mismatched_++;
    return;
  }
  const Time t0 = it->second;
  open_.erase(it);
  record(span, stage, t0, now >= t0 ? now - t0 : 0);
}

void Collector::complete(const Span& span, StageId stage, Time begin, Time end) {
  if (!span.valid()) return;
  std::lock_guard lk(mu_);
  record(span, stage, begin, end >= begin ? end - begin : 0);
}

void Collector::instant(const Span& span, StageId stage, Time at) {
  complete(span, stage, at, at);
}

void Collector::name_track(std::uint32_t track, std::string name) {
  std::lock_guard lk(mu_);
  track_names_[track] = std::move(name);
}

const Histogram& Collector::stage_histogram(const char* name) const {
  static const Histogram kEmpty;
  std::lock_guard lk(mu_);
  InternPool::Id id;
  if (!stages_.find(name, id)) return kEmpty;
  auto it = hists_.find(id);
  return it == hists_.end() ? kEmpty : it->second;
}

void Collector::export_chrome_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  // Track labels first (metadata events are position-independent, but a
  // stable order keeps the export byte-deterministic).
  {
    std::map<std::uint32_t, const std::string*> ordered;
    for (const auto& [track, name] : track_names_) ordered.emplace(track, &name);
    for (const auto& [track, name] : ordered) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                    "\"args\":{\"name\":\"%s\"}}",
                    first ? "" : ",", track, name->c_str());
      os << buf;
      first = false;
    }
  }
  // Completed spans, oldest first. ts/dur are microseconds (Chrome's unit);
  // three decimals keep full nanosecond precision exactly.
  auto emit = [&](const Event& e) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"afc\",\"ph\":\"X\",\"pid\":%u,"
                  "\"tid\":%llu,\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
                  "\"args\":{\"op\":%llu}}",
                  first ? "" : ",", stages_.lookup(e.stage).c_str(), e.track,
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.begin / 1000),
                  static_cast<unsigned long long>(e.begin % 1000),
                  static_cast<unsigned long long>(e.dur / 1000),
                  static_cast<unsigned long long>(e.dur % 1000),
                  static_cast<unsigned long long>(e.id));
    os << buf;
    first = false;
  };
  if (ring_wrapped_) {
    for (std::size_t i = ring_next_; i < ring_.size(); i++) emit(ring_[i]);
    for (std::size_t i = 0; i < ring_next_; i++) emit(ring_[i]);
  } else {
    for (const Event& e : ring_) emit(e);
  }
  os << "\n]}\n";
}

bool Collector::export_chrome_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  export_chrome_json(out);
  return out.good();
}

std::string Collector::summary() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  char buf[160];
  os << "stage                             count      mean (ms)\n";
  for (StageId id = 0; id < StageId(stages_.size()); id++) {
    auto it = hists_.find(id);
    if (it == hists_.end() || it->second.count() == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-32s %7llu %12.3f\n", stages_.lookup(id).c_str(),
                  static_cast<unsigned long long>(it->second.count()), it->second.mean_ms());
    os << buf;
  }
  return os.str();
}

void Collector::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
  ring_next_ = 0;
  ring_wrapped_ = false;
  open_.clear();
  hists_.clear();
  recorded_ = dropped_ = mismatched_ = 0;
}

}  // namespace afc::trace
