#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace afc::core {

/// One datapoint of the perf trajectory: a bench rung's simulated result
/// plus the wall-clock cost of computing it. Committed BENCH_*.json files
/// accumulate these across PRs so simulator-performance regressions show up
/// as a trajectory, not an anecdote.
struct BenchRecord {
  std::string bench;   // harness name, e.g. "fig12_scaleout"
  std::string config;  // rung/workload, e.g. "afceph/4k_randread" or "sharded+batched"
  unsigned nodes = 0;
  unsigned osds = 0;
  std::string metric;  // "iops", "mb_per_s", ...
  double value = 0.0;
  double wall_ms = 0.0;            // wall-clock for this rung
  std::uint64_t events = 0;        // simulator events executed
  double events_per_wall_sec = 0;  // events / wall seconds (sim throughput)
  Time sim_ns = 0;                 // virtual time simulated
  double sim_ns_per_wall_ns = 0;   // slowdown factor (>1 = faster than real time)
  double max_node_cpu = 0.0;       // hottest simulated node, utilization 0..1
};

/// Appender for the repo-root BENCH_*.json trajectory files. Opt-in via
/// AFC_BENCH_JSON=<path>: when unset, record() is a no-op, so benches can
/// call it unconditionally. The file is self-contained JSON —
/// `{"schema":"afc-bench-v1","runs":[...]}` — validated by check.sh with
/// `python3 -m json.tool`; append splices into our own format only, and a
/// corrupt/foreign file is reported, not overwritten. Appends are
/// crash-safe: the updated document is written to a `.tmp` sibling and
/// renamed into place, so an interrupted run never leaves a torn file. AFC_BENCH_LABEL, when
/// set, stamps each record (e.g. a PR number) so trajectories across
/// commits stay attributable.
class BenchJson {
 public:
  /// True when AFC_BENCH_JSON names a destination file.
  static bool enabled();
  static std::string path();

  /// Append one record to the trajectory file (created on first use).
  /// Returns false (with a stderr note) on IO failure or a file that is not
  /// an afc-bench-v1 document; no-op true when disabled.
  static bool record(const BenchRecord& rec);
};

}  // namespace afc::core
