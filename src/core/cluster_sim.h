#pragma once

#include <algorithm>
#include <array>
#include <memory>

#include "client/runner.h"
#include "core/profile.h"
#include "core/trace.h"
#include "device/nvram.h"
#include "device/ssd.h"
#include "fault/injector.h"
#include "mon/monitor.h"
#include "osd/osd.h"

namespace afc::core {

/// Full-cluster configuration, defaulted to the paper's testbed (§4.1,
/// Fig. 8): 4 OSD nodes x 4 OSD daemons (10 SSDs per node RAID-0'd 3/3/2/2
/// behind the OSDs, one 8 GB NVRAM journal device per node), 5 client nodes
/// hosting up to 16 VMs each, 10 GbE, replication 2.
struct ClusterConfig {
  unsigned osd_nodes = 4;
  unsigned osds_per_node = 4;
  unsigned client_nodes = 5;
  unsigned vms = 16;
  unsigned node_cores = 12;
  unsigned client_node_cores = 16;
  std::uint32_t pg_num = 1024;  // power of two
  unsigned replication = 2;
  /// Pool min_size: durable replicas required before a write acks. 0 (the
  /// default) means "= replication" — no degraded acks, seed behaviour.
  /// For erasure pools, 0 means "= k+1" (see ClusterMap::ack_floor()).
  unsigned min_size = 0;
  /// Erasure-coded pool: stripe every object into ec_k data + ec_m parity
  /// shards instead of full-copy replication. Off by default — with no EC
  /// pool the replication scheme and every event it schedules are
  /// byte-identical to the seed.
  bool ec_pool = false;
  unsigned ec_k = 4;
  unsigned ec_m = 2;
  /// Client-side per-op timeout + resubmit (librados-style). 0 disables —
  /// the seed behaviour; chaos/fault runs set it so client ops survive OSD
  /// crashes and lossy links.
  Time client_op_timeout = 0;
  unsigned client_op_retries = 3;
  /// Sustained state: SSDs saturated (GC active), cluster 80% full (objects
  /// pre-exist), caches cold relative to the working set. Clean state:
  /// fresh SSDs and small images.
  bool sustained = true;
  /// Objects pre-exist (cluster pre-filled) independent of device wear:
  /// -1 = follow `sustained`; 0/1 force. Read benchmarks on clean devices
  /// need this so there is data to read.
  int populated = -1;
  /// Client-side CPU per I/O (fio + KRBD + client messenger dispatch),
  /// charged to the fixed pool of client nodes.
  Time client_op_cpu = 82 * kMicrosecond;
  std::uint64_t image_size = 20 * kGiB;  // per VM block device
  std::uint64_t seed = 42;

  /// Per-tenant/per-pool QoS (dmClock at every OSD), declared once at
  /// cluster level — the pool's TenantProfile table — and plumbed into each
  /// OSD the cluster builds (including nodes added later). Off by default.
  osd::QosConfig qos;

  /// Membership & failure detection. kOracle (default) keeps today's
  /// omniscient semantics — crashes instantly flip the shared CRUSH map, no
  /// heartbeats, no monitor, byte-identical event stream. kDetected builds a
  /// monitor node, starts OSD<->OSD heartbeats, and routes every membership
  /// decision through failure reports + epoch-fenced map deltas.
  /// AFC_MEMBERSHIP=oracle|detected overrides at runtime.
  mon::MembershipConfig membership;

  Profile profile;
  osd::OsdConfig osd;
  dev::SsdModel::Config ssd;
  dev::NvramModel::Config nvram;
  fs::FileStore::Config fs;
  /// Object-store backend per OSD: kFile (FileStore + external NVRAM
  /// journal — the default, byte-identical to the pre-FlashStore tree) or
  /// kFlash (raw-device FlashStore). AFC_STORE=file|flash overrides it at
  /// runtime without touching bench code.
  store::Backend store_backend = store::Backend::kFile;
  store::FlashStore::Config flash;
  kv::Db::Config kv;
  fs::Journal::Config journal;
  net::Connection::Config net;
  osd::DebugLog::Config log;
};

/// Everything a bench harness reports about one run.
struct RunResult {
  double write_iops = 0.0;
  double read_iops = 0.0;
  double write_lat_ms = 0.0;  // mean
  double read_lat_ms = 0.0;
  double write_p99_ms = 0.0;
  double read_p99_ms = 0.0;
  /// Coefficient of variation of per-interval IOPS over the measurement
  /// window — the paper's "fluctuation".
  double write_cov = 0.0;
  double read_cov = 0.0;
  Histogram write_lat;
  Histogram read_lat;
  TimeSeries write_series;
  TimeSeries read_series;
  std::uint64_t verify_failures = 0;

  // Aggregated internal evidence for the paper's four causes.
  Time pg_lock_wait_ns = 0;
  std::uint64_t pg_lock_contended = 0;
  std::uint64_t pending_defers = 0;
  std::uint64_t journal_full_stalls = 0;
  Time journal_full_ns = 0;
  std::uint64_t fs_writeback_stalls = 0;
  std::uint64_t log_entries_dropped = 0;
  std::uint64_t metadata_device_reads = 0;
  std::uint64_t syscalls = 0;
  double kv_write_amplification = 0.0;
  double max_osd_node_cpu = 0.0;
  std::uint64_t kv_stall_slowdowns = 0;
  // Integrity layer: journal replay + scrub repair (zero in fault-free runs).
  std::uint64_t journal_records_replayed = 0;
  std::uint64_t journal_torn_tails = 0;
  std::uint64_t journal_crc_failures = 0;
  std::uint64_t scrub_objects_repaired = 0;
  // Erasure coding (all zero for replicated pools): degraded reads served by
  // decode, shards rebuilt by recovery, stripes whose parity check failed.
  std::uint64_t ec_reconstruct_reads = 0;
  std::uint64_t ec_shards_rebuilt = 0;
  std::uint64_t ec_parity_mismatch = 0;
  /// Mean per-stage write-path latency (Fig. 3), ms, index = osd::Stage.
  std::array<double, osd::kStageCount> stage_ms{};
  double write_path_total_ms = 0.0;
  // Transport layer (cluster-wide net::NetStats): frame/batch/shard evidence
  // for the messenger ladder. net_frames == net_messages when batching never
  // engaged; occupancy is mean messages per wire frame.
  std::uint64_t net_messages = 0;
  std::uint64_t net_frames = 0;
  std::uint64_t net_batches = 0;
  std::uint64_t net_batched_msgs = 0;
  std::uint64_t net_max_batch = 0;
  double net_batch_occupancy = 0.0;
  std::uint64_t net_nagle_stalls = 0;
  std::uint64_t net_shard_wakeups = 0;
  std::uint64_t net_shard_depth_hwm = 0;
  // QoS scheduler evidence (all zero when ClusterConfig::qos is disabled).
  std::uint64_t qos_enqueued = 0;
  std::uint64_t qos_dispatched = 0;
  std::uint64_t qos_reservation_grants = 0;
  std::uint64_t qos_weight_grants = 0;
  std::uint64_t qos_limit_deferrals = 0;
  std::uint64_t qos_queue_hwm = 0;  // deepest tenant-queue backlog, any OSD
  // Membership & failure detection (all zero under kOracle): heartbeats
  // sent / grace expiries, failure reports received by the monitor, monitor
  // mark-downs that the liveness probe called healthy, and map deltas
  // published. fenced_ops counts stale-epoch ops rejected cluster-wide.
  std::uint64_t hb_sent = 0;
  std::uint64_t hb_timeouts = 0;
  std::uint64_t failure_reports = 0;
  std::uint64_t false_downs = 0;
  std::uint64_t map_deltas = 0;
  std::uint64_t fenced_ops = 0;
  std::uint64_t mon_markdowns = 0;
  std::uint64_t mon_markouts = 0;
  std::uint64_t laggy_flags = 0;
};

/// Builds a simulated Ceph cluster (community or AFCeph per the profile)
/// and runs one fio-style workload against it. This is the top-level public
/// API used by all benches and examples.
class ClusterSim {
 public:
  explicit ClusterSim(ClusterConfig cfg);
  ~ClusterSim();
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Run one workload to completion (single use per ClusterSim).
  RunResult run(const client::WorkloadSpec& spec);

  // --- component access (tests, examples, custom drivers) --------------
  sim::Simulation& simulation() { return sim_; }
  cluster::ClusterMap& map() { return cmap_; }
  std::size_t osd_count() const { return osds_.size(); }
  osd::Osd& osd(std::size_t i) { return *osds_[i]; }
  std::size_t vm_count() const { return vms_.size(); }
  client::VmClient& vm(std::size_t i) { return *vms_[i]; }
  net::Node& osd_node(std::size_t i) { return *osd_nodes_[i]; }
  dev::SsdModel& osd_ssd(std::size_t i) { return *ssds_[i]; }
  const ClusterConfig& config() const { return cfg_; }
  /// The op-trace collector observing this cluster, or nullptr when tracing
  /// is off. Installed by the constructor when AFC_SIM_TRACE is set; tests
  /// and benches may instead install their own before construction.
  trace::Collector* tracer() const { return trace::Collector::active(); }

  /// Build a fault::FaultInjector over this cluster's components and arm
  /// `plan`. Call before run(); an empty plan schedules nothing. Returns the
  /// injector so the caller can read its counters afterwards.
  fault::FaultInjector& install_faults(const fault::FaultPlan& plan);
  fault::FaultInjector* fault_injector() { return injector_.get(); }

  /// The cluster monitor, or nullptr under kOracle (no monitor is built).
  mon::Monitor* monitor() { return monitor_.get(); }

  // --- elasticity & failure handling -------------------------------------
  /// Take an OSD out of the CRUSH map (failure / decommission), recompute
  /// placement, and re-replicate the affected PGs from surviving members.
  /// Quiesce client traffic first. Returns the number of objects pushed.
  sim::CoTask<std::uint64_t> decommission_osd(std::uint32_t osd_id);

  /// Add one server node with the standard OSD complement, wire it into the
  /// cluster and the clients, and rebalance PGs onto it (paper Fig. 12's
  /// expansion, live). Returns the number of objects migrated.
  sim::CoTask<std::uint64_t> add_node();

  /// Scrub: cross-check every object's content fingerprint across its
  /// acting set (Ceph's deep scrub); optionally repair inconsistent or
  /// missing replicas from the primary's copy. Quiesce traffic first.
  struct ScrubReport {
    std::uint64_t pgs_scrubbed = 0;
    std::uint64_t objects_scrubbed = 0;
    std::uint64_t inconsistent = 0;
    std::uint64_t missing = 0;
    std::uint64_t repaired = 0;
  };
  sim::CoTask<ScrubReport> deep_scrub(bool repair);

  /// Close all OSD queues (worker coroutines drain and exit).
  void close_all();

  /// Collect OSD-side aggregates into `r` (also done by run()).
  void collect_osd_stats(RunResult& r) const;

  /// Flush the env-owned observability instruments (AFC_SIM_PROFILE report,
  /// AFC_SIM_TRACE Chrome-JSON export) to stderr/disk. run() calls this;
  /// custom drivers that bypass run() — e.g. workload::OpenLoopEngine —
  /// call it once their drive is complete. No-op when neither is enabled.
  void report_observability();

 private:
  /// Recompute acting sets against `old_acting` and backfill newcomers.
  sim::CoTask<std::uint64_t> rebalance(
      const std::vector<std::vector<std::uint32_t>>& old_acting);
  /// EC pools: per-shard CRC + stripe parity-consistency scrub, repairing by
  /// reconstruction (replicated pools use the fingerprint-vote scrub).
  sim::CoTask<ScrubReport> deep_scrub_ec(bool repair);

  ClusterConfig cfg_;
  /// Owned only when this ClusterSim installed the collector itself (env
  /// opt-in); run() then also exports the Chrome JSON on completion.
  std::unique_ptr<trace::Collector> tracer_;
  sim::Simulation sim_;
  cluster::ClusterMap cmap_;
  std::vector<std::unique_ptr<net::Node>> osd_nodes_;
  std::vector<std::unique_ptr<net::Node>> client_nodes_;
  std::vector<std::unique_ptr<dev::NvramModel>> nvrams_;
  std::vector<std::unique_ptr<dev::SsdModel>> ssds_;
  std::vector<std::unique_ptr<osd::Osd>> osds_;
  std::vector<std::unique_ptr<client::VmClient>> vms_;
  // Detected-mode membership plane (all null/empty under kOracle).
  std::unique_ptr<net::Node> mon_node_;
  std::unique_ptr<mon::Monitor> monitor_;
  std::unique_ptr<net::Messenger> mon_msgr_;
  std::unique_ptr<fault::FaultInjector> injector_;
  bool ran_ = false;
};

}  // namespace afc::core
