#include "core/profile.h"

namespace afc::core {

Profile Profile::community() { return Profile{}; }

Profile Profile::afceph() { return ladder(4); }

const char* Profile::ladder_name(int step) {
  switch (step) {
    case 0: return "community";
    case 1: return "+lock-opt";
    case 2: return "+throttle/tuning";
    case 3: return "+nonblock-logging";
    default: return "+light-txn (AFCeph)";
  }
}

Profile Profile::ladder(int step) {
  Profile p;
  p.name = ladder_name(step);
  if (step >= 1) {
    p.pending_queue = true;
    p.dedicated_completion = true;
    p.fast_ack = true;
  }
  if (step >= 2) {
    p.ssd_throttles = true;
    p.jemalloc = true;
    p.disable_nagle = true;
  }
  if (step >= 3) {
    p.nonblocking_logging = true;
    p.log_cache = true;
    p.log_writer_threads = 3;
  }
  if (step >= 4) {
    p.name = "AFCeph";
    p.light_transactions = true;
    p.writethrough_meta_cache = true;
    p.skip_alloc_hint = true;
    p.kv_batching = true;
  }
  return p;
}

}  // namespace afc::core
