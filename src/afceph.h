#pragma once

/// AFCeph — reproduction of "Performance Optimization for All Flash
/// Scale-out Storage" (IEEE CLUSTER 2016). Umbrella header: pulls in the
/// public API. Most users need only core::ClusterSim + core::Profile +
/// client::WorkloadSpec:
///
///   afc::core::ClusterConfig cfg;
///   cfg.profile = afc::core::Profile::afceph();
///   afc::core::ClusterSim cluster(cfg);
///   auto r = cluster.run(afc::client::WorkloadSpec::rand_write(4096, 8));
///   printf("%.0f IOPS @ %.1f ms\n", r.write_iops, r.write_lat_ms);

#include "client/rbd.h"
#include "client/runner.h"
#include "client/workload.h"
#include "cluster/crush.h"
#include "cluster/map.h"
#include "common/histogram.h"
#include "common/payload.h"
#include "common/rng.h"
#include "common/stage_names.h"
#include "common/table.h"
#include "common/timeseries.h"
#include "core/cluster_sim.h"
#include "core/profile.h"
#include "core/report.h"
#include "core/trace.h"
#include "device/hdd.h"
#include "device/nvram.h"
#include "device/ssd.h"
#include "ec/codec.h"
#include "ec/gf256.h"
#include "ec/layout.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "fs/filestore.h"
#include "fs/journal.h"
#include "kv/db.h"
#include "net/messenger.h"
#include "osd/ec_rebuild.h"
#include "osd/osd.h"
#include "osd/qos.h"
#include "rt/arena.h"
#include "rt/async_logger.h"
#include "rt/completion_batcher.h"
#include "rt/mpmc_queue.h"
#include "rt/sharded_opqueue.h"
#include "rt/throttle.h"
#include "sim/channel.h"
#include "sim/cpu.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "solidfire/solidfire.h"
#include "workload/arrival.h"
#include "workload/engine.h"
#include "workload/population.h"
