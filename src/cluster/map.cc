#include "cluster/map.h"

namespace afc::cluster {

std::uint32_t ClusterMap::pg_of(std::string_view object_name) const {
  // FNV-1a then mask to pg_num (pg_num is a power of two, like rjenkins +
  // stable_mod in Ceph).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : object_name) {
    h ^= std::uint8_t(c);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 33;
  return std::uint32_t(h & (pool_.pg_num - 1));
}

std::vector<std::uint32_t> ClusterMap::ec_remap(
    std::uint32_t pg, const std::vector<std::uint32_t>& raw) const {
  const unsigned width = pool_.ec_k + pool_.ec_m;
  if (ec_assign_.empty()) ec_assign_.assign(pool_.pg_num, {});
  auto& prev = ec_assign_[pg];
  std::vector<std::uint32_t> next(width, kNoOsd);
  std::vector<bool> used(raw.size(), false);
  // Survivors keep their shard position: a shard object lives on one OSD,
  // so reshuffling positions on every epoch bump would fabricate data loss.
  if (!prev.empty()) {
    for (unsigned p = 0; p < width && p < prev.size(); p++) {
      if (prev[p] == kNoOsd) continue;
      for (std::size_t i = 0; i < raw.size(); i++)
        if (!used[i] && raw[i] == prev[p]) {
          next[p] = prev[p];
          used[i] = true;
          break;
        }
    }
  }
  std::size_t ri = 0;
  for (unsigned p = 0; p < width; p++) {
    if (next[p] != kNoOsd) continue;
    while (ri < raw.size() && used[ri]) ri++;
    if (ri >= raw.size()) break;
    next[p] = raw[ri];
    used[ri] = true;
  }
  prev = next;
  return next;
}

void ClusterMap::filter_down_members(std::vector<std::uint32_t>& acting) const {
  if (erasure()) {
    for (auto& o : acting) {
      if (o != kNoOsd && !crush_.is_up(o)) o = kNoOsd;
    }
    return;
  }
  std::erase_if(acting, [this](std::uint32_t o) { return !crush_.is_up(o); });
}

}  // namespace afc::cluster
