#include "cluster/map.h"

namespace afc::cluster {

std::uint32_t ClusterMap::pg_of(std::string_view object_name) const {
  // FNV-1a then mask to pg_num (pg_num is a power of two, like rjenkins +
  // stable_mod in Ceph).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : object_name) {
    h ^= std::uint8_t(c);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 33;
  return std::uint32_t(h & (pool_.pg_num - 1));
}

}  // namespace afc::cluster
