#pragma once

#include <cstdint>
#include <vector>

namespace afc::cluster {

/// Straw2-style CRUSH placement: every OSD "draws a straw" for a PG —
/// draw = ln(U(hash(pg, osd))) / weight — and the highest draws win, with
/// host as the failure domain (replicas land on distinct nodes). The key
/// properties the paper's system relies on, and which the tests assert:
///  * deterministic: clients and OSDs compute identical mappings with no
///    metadata-server hop (the paper contrasts this with SolidFire);
///  * balanced: PGs spread ~evenly by weight;
///  * minimal movement: adding an OSD only remaps the PGs it wins.
class Crush {
 public:
  struct OsdEntry {
    std::uint32_t id;
    std::uint32_t host;
    double weight = 1.0;
    /// Liveness: a down OSD serves nothing, but as long as it is still `in`
    /// its PGs do not move (degraded, waiting for it to return).
    bool up = true;
    /// Placement membership: only `in` OSDs draw straws. Marking an OSD out
    /// is the data-movement decision; marking it down is not.
    bool in = true;
  };

  void add_osd(std::uint32_t id, std::uint32_t host, double weight = 1.0);
  /// Oracle-style availability flip: down-and-out / up-and-in in one step
  /// (the pre-membership behaviour — placement follows liveness instantly).
  void set_up(std::uint32_t id, bool up);
  /// Liveness only: placement keeps the OSD's PGs where they are.
  void set_up_only(std::uint32_t id, bool up);
  /// Placement membership only (the monitor's mark-out / mark-in).
  void set_in(std::uint32_t id, bool in);
  bool is_up(std::uint32_t id) const;
  bool is_in(std::uint32_t id) const;
  std::size_t osd_count() const { return osds_.size(); }
  const std::vector<OsdEntry>& osds() const { return osds_; }

  /// Acting set for a PG: `size` distinct OSDs, primary first, at most one
  /// per host (falls back to allowing host reuse only when hosts < size).
  std::vector<std::uint32_t> place(std::uint32_t pool, std::uint32_t pg, unsigned size) const;

 private:
  static double draw(std::uint32_t pool, std::uint32_t pg, std::uint32_t osd, double weight);
  std::vector<OsdEntry> osds_;
};

}  // namespace afc::cluster
