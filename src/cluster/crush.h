#pragma once

#include <cstdint>
#include <vector>

namespace afc::cluster {

/// Straw2-style CRUSH placement: every OSD "draws a straw" for a PG —
/// draw = ln(U(hash(pg, osd))) / weight — and the highest draws win, with
/// host as the failure domain (replicas land on distinct nodes). The key
/// properties the paper's system relies on, and which the tests assert:
///  * deterministic: clients and OSDs compute identical mappings with no
///    metadata-server hop (the paper contrasts this with SolidFire);
///  * balanced: PGs spread ~evenly by weight;
///  * minimal movement: adding an OSD only remaps the PGs it wins.
class Crush {
 public:
  struct OsdEntry {
    std::uint32_t id;
    std::uint32_t host;
    double weight = 1.0;
    bool up = true;
  };

  void add_osd(std::uint32_t id, std::uint32_t host, double weight = 1.0);
  void set_up(std::uint32_t id, bool up);
  std::size_t osd_count() const { return osds_.size(); }
  const std::vector<OsdEntry>& osds() const { return osds_; }

  /// Acting set for a PG: `size` distinct OSDs, primary first, at most one
  /// per host (falls back to allowing host reuse only when hosts < size).
  std::vector<std::uint32_t> place(std::uint32_t pool, std::uint32_t pg, unsigned size) const;

 private:
  static double draw(std::uint32_t pool, std::uint32_t pg, std::uint32_t osd, double weight);
  std::vector<OsdEntry> osds_;
};

}  // namespace afc::cluster
