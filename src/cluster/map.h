#pragma once

#include <string>
#include <string_view>

#include "cluster/crush.h"

namespace afc::cluster {

/// Cluster map: pool parameters + CRUSH topology + epoch. Both clients and
/// OSDs hold a reference and compute object → PG → acting-set mappings
/// locally (Ceph's "no metadata server on the data path").
class ClusterMap {
 public:
  struct PoolConfig {
    std::uint32_t pg_num = 1024;  // power of two
    unsigned replication = 2;
    /// Durable replicas required before a write may be acked (Ceph's pool
    /// min_size). 0 means "= replication": no degraded acks, the seed
    /// behaviour. Set below `replication` to let primaries ack degraded
    /// writes once a replication timeout gives up on a dead peer.
    unsigned min_size = 0;
  };

  ClusterMap(const PoolConfig& pool) : pool_(pool) {}
  ClusterMap() : ClusterMap(PoolConfig{}) {}

  Crush& crush() { return crush_; }
  const Crush& crush() const { return crush_; }
  const PoolConfig& pool() const { return pool_; }
  unsigned min_size() const {
    return pool_.min_size == 0 ? pool_.replication : pool_.min_size;
  }

  std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { epoch_++; }

  /// Stable hash of an object name onto a PG (ps = placement seed).
  std::uint32_t pg_of(std::string_view object_name) const;

  /// Acting set (primary first) for a PG. Cached per epoch — bump_epoch()
  /// after topology changes to force recomputation (a CRUSH map push).
  const std::vector<std::uint32_t>& acting(std::uint32_t pg) const {
    if (cache_epoch_ != epoch_) {
      acting_cache_.assign(pool_.pg_num, {});
      cache_epoch_ = epoch_;
    }
    auto& slot = acting_cache_[pg];
    if (slot.empty()) slot = crush_.place(/*pool=*/0, pg, pool_.replication);
    return slot;
  }
  std::uint32_t primary(std::uint32_t pg) const {
    const auto& a = acting(pg);
    return a.empty() ? 0 : a[0];
  }

 private:
  PoolConfig pool_;
  Crush crush_;
  std::uint64_t epoch_ = 1;
  mutable std::uint64_t cache_epoch_ = 0;
  mutable std::vector<std::vector<std::uint32_t>> acting_cache_;
};

}  // namespace afc::cluster
