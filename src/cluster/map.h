#pragma once

#include <string>
#include <string_view>

#include "cluster/crush.h"

namespace afc::cluster {

/// Cluster map: pool parameters + CRUSH topology + epoch. Both clients and
/// OSDs hold a reference and compute object → PG → acting-set mappings
/// locally (Ceph's "no metadata server on the data path").
class ClusterMap {
 public:
  /// Per-pool redundancy policy: full-copy splay replication (the seed
  /// behaviour) or striped Reed–Solomon EC(k+m).
  enum class Scheme { kReplicated, kErasure };

  /// Sentinel for an unfillable shard position in an EC acting set (more
  /// shards than live OSDs). Replicated acting sets never contain it.
  static constexpr std::uint32_t kNoOsd = ~std::uint32_t(0);

  struct PoolConfig {
    std::uint32_t pg_num = 1024;  // power of two
    unsigned replication = 2;
    /// Durable replicas required before a write may be acked (Ceph's pool
    /// min_size). 0 means "= replication": no degraded acks, the seed
    /// behaviour. Set below `replication` to let primaries ack degraded
    /// writes once a replication timeout gives up on a dead peer.
    /// For erasure pools 0 means "= k+1" (one shard of slack; never ack a
    /// stripe that a single further loss would destroy).
    unsigned min_size = 0;
    Scheme scheme = Scheme::kReplicated;
    unsigned ec_k = 4;
    unsigned ec_m = 2;
  };

  ClusterMap(const PoolConfig& pool) : pool_(pool) {}
  ClusterMap() : ClusterMap(PoolConfig{}) {}

  Crush& crush() { return crush_; }
  const Crush& crush() const { return crush_; }
  const PoolConfig& pool() const { return pool_; }
  bool erasure() const { return pool_.scheme == Scheme::kErasure; }
  unsigned ec_k() const { return pool_.ec_k; }
  unsigned ec_m() const { return pool_.ec_m; }
  /// Members of one PG's acting set: replica count or k+m shards.
  unsigned pool_size() const {
    return erasure() ? pool_.ec_k + pool_.ec_m : pool_.replication;
  }
  unsigned min_size() const {
    return pool_.min_size == 0 ? pool_.replication : pool_.min_size;
  }
  /// Durable members required before a write acks, scheme-aware: replicated
  /// min_size, or k+1 shards for EC (below k+1 the primary fails the op —
  /// below k the stripe would be unrecoverable).
  unsigned ack_floor() const {
    if (!erasure()) return min_size();
    return pool_.min_size == 0 ? pool_.ec_k + 1 : pool_.min_size;
  }

  std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { epoch_++; }

  /// Detected-membership semantics: acting sets exclude down-but-still-in
  /// members *without replacement* (replicated sets shrink; EC positions
  /// hole to kNoOsd), so a mark-down degrades the PG but moves no data —
  /// only a mark-out (CRUSH `in = false`) re-places. Off by default: the
  /// oracle path keeps up == in and acting sets always full-size.
  void set_filter_down(bool on) { filter_down_ = on; }
  bool filter_down() const { return filter_down_; }

  /// Stable hash of an object name onto a PG (ps = placement seed).
  std::uint32_t pg_of(std::string_view object_name) const;

  /// Acting set (primary first) for a PG. Cached per epoch — bump_epoch()
  /// after topology changes to force recomputation (a CRUSH map push).
  /// Erasure pools return exactly k+m entries where the *position* is the
  /// shard index: surviving members keep their position across epochs
  /// (shards are not interchangeable the way replicas are) and unfillable
  /// positions hold kNoOsd.
  const std::vector<std::uint32_t>& acting(std::uint32_t pg) const {
    if (cache_epoch_ != epoch_) {
      acting_cache_.assign(pool_.pg_num, {});
      cache_epoch_ = epoch_;
    }
    auto& slot = acting_cache_[pg];
    if (slot.empty()) {
      auto raw = crush_.place(/*pool=*/0, pg, pool_size());
      slot = erasure() ? ec_remap(pg, raw) : std::move(raw);
      if (filter_down_) filter_down_members(slot);
    }
    return slot;
  }
  std::uint32_t primary(std::uint32_t pg) const {
    const auto& a = acting(pg);
    for (std::uint32_t o : a)
      if (o != kNoOsd) return o;
    return 0;
  }

 private:
  /// Pin shard positions across epochs: survivors of the previous
  /// assignment keep their slot, newcomers from `raw` fill vacancies in
  /// placement order, leftovers stay kNoOsd.
  std::vector<std::uint32_t> ec_remap(
      std::uint32_t pg, const std::vector<std::uint32_t>& raw) const;

  /// Drop down members from an acting set in place (detected mode only).
  /// The ec_assign_ record keeps the unfiltered assignment, so a member
  /// that comes back up reclaims its exact shard position.
  void filter_down_members(std::vector<std::uint32_t>& acting) const;

  PoolConfig pool_;
  Crush crush_;
  bool filter_down_ = false;
  std::uint64_t epoch_ = 1;
  mutable std::uint64_t cache_epoch_ = 0;
  mutable std::vector<std::vector<std::uint32_t>> acting_cache_;
  /// Persistent (cross-epoch) shard-position assignment per PG; only ever
  /// populated for erasure pools.
  mutable std::vector<std::vector<std::uint32_t>> ec_assign_;
};

}  // namespace afc::cluster
