#include "cluster/crush.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace afc::cluster {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

void Crush::add_osd(std::uint32_t id, std::uint32_t host, double weight) {
  osds_.push_back(OsdEntry{id, host, weight, true, true});
}

void Crush::set_up(std::uint32_t id, bool up) {
  for (auto& o : osds_) {
    if (o.id == id) {
      o.up = up;
      o.in = up;
    }
  }
}

void Crush::set_up_only(std::uint32_t id, bool up) {
  for (auto& o : osds_) {
    if (o.id == id) o.up = up;
  }
}

void Crush::set_in(std::uint32_t id, bool in) {
  for (auto& o : osds_) {
    if (o.id == id) o.in = in;
  }
}

bool Crush::is_up(std::uint32_t id) const {
  for (const auto& o : osds_) {
    if (o.id == id) return o.up;
  }
  return false;
}

bool Crush::is_in(std::uint32_t id) const {
  for (const auto& o : osds_) {
    if (o.id == id) return o.in;
  }
  return false;
}

double Crush::draw(std::uint32_t pool, std::uint32_t pg, std::uint32_t osd, double weight) {
  const std::uint64_t h =
      mix((std::uint64_t(pool) << 48) ^ (std::uint64_t(pg) << 16) ^ osd ^ 0x1f3d5b79ull);
  // Map to (0,1]; ln(u) <= 0, so higher weight -> draw closer to 0 -> wins.
  const double u = (double(h >> 11) + 1.0) * 0x1.0p-53;
  return std::log(u) / weight;
}

std::vector<std::uint32_t> Crush::place(std::uint32_t pool, std::uint32_t pg,
                                        unsigned size) const {
  struct Scored {
    double score;
    const OsdEntry* osd;
  };
  std::vector<Scored> scored;
  scored.reserve(osds_.size());
  for (const auto& o : osds_) {
    if (!o.in || o.weight <= 0.0) continue;
    scored.push_back({draw(pool, pg, o.id, o.weight), &o});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.osd->id < b.osd->id;
  });

  std::unordered_set<std::uint32_t> hosts;
  for (const auto& s : scored) hosts.insert(s.osd->host);
  const bool enforce_hosts = hosts.size() >= size;

  std::vector<std::uint32_t> acting;
  std::unordered_set<std::uint32_t> used_hosts;
  for (const auto& s : scored) {
    if (acting.size() >= size) break;
    if (enforce_hosts && used_hosts.count(s.osd->host)) continue;
    used_hosts.insert(s.osd->host);
    acting.push_back(s.osd->id);
  }
  // If host separation left us short (all remaining share hosts), relax it.
  if (acting.size() < size) {
    for (const auto& s : scored) {
      if (acting.size() >= size) break;
      if (std::find(acting.begin(), acting.end(), s.osd->id) == acting.end()) {
        acting.push_back(s.osd->id);
      }
    }
  }
  return acting;
}

}  // namespace afc::cluster
