#include "net/shard.h"

namespace afc::net {

namespace {
/// splitmix64 finalizer — spreads consecutive registration indices across
/// shards without the clustering a bare modulo would give.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

RxShards::RxShards(Messenger& owner, unsigned shards, Time wakeup_cpu)
    : owner_(owner), wakeup_cpu_(wakeup_cpu) {
  queues_.reserve(shards);
  for (unsigned s = 0; s < shards; s++) {
    queues_.push_back(std::make_unique<sim::Channel<Item>>(owner.simulation()));
    sim::spawn(worker(s));
  }
}

RxShards::~RxShards() = default;

unsigned RxShards::shard_of(std::uint64_t rx_index) const {
  return unsigned(mix64(rx_index) % queues_.size());
}

void RxShards::push(unsigned shard, Connection* conn, Frame f) {
  // Unbounded single-consumer queue: try_push only fails after close(),
  // matching the messenger's post-close send semantics (frames vanish).
  queues_[shard]->try_push(Item{conn, std::move(f)});
}

void RxShards::close() {
  for (auto& q : queues_) q->close();
}

std::size_t RxShards::depth_hwm() const {
  std::size_t hwm = 0;
  for (const auto& q : queues_) hwm = std::max(hwm, q->max_depth());
  return hwm;
}

sim::CoTask<void> RxShards::worker(unsigned shard) {
  auto& q = *queues_[shard];
  for (;;) {
    auto batch = co_await q.pop_all();
    if (batch.empty()) break;  // closed and drained
    wakeups_++;
    // One wakeup pays one `shard_wakeup_cpu`, however many frames it drains
    // — the amortization that replaces the per-connection receive tax. A
    // blackholed (crashed) endpoint charges nothing: dead processes do no
    // work, and deliver_frame() below discards each frame the same way.
    if (!owner_.blackholed()) {
      co_await owner_.node().cpu().consume(wakeup_cpu_);
    }
    for (auto& item : batch) {
      frames_++;
      // Sequential delivery preserves per-connection FIFO; a receiver that
      // backpressures here stalls the shard, not just one connection.
      co_await item.conn->deliver_frame(std::move(item.frame), /*via_shard=*/true);
    }
  }
}

}  // namespace afc::net
