#include "net/messenger.h"

#include <algorithm>

#include "common/stage_names.h"
#include "net/batcher.h"
#include "net/shard.h"

namespace afc::net {

Connection::Connection(Messenger& local, Messenger& remote, const Config& cfg)
    : local_(local),
      remote_(remote),
      cfg_(cfg),
      tx_(local.simulation()),
      rx_(local.simulation()),
      nagle_timer_(local.simulation()) {
  if (cfg_.batch) batcher_ = std::make_unique<Batcher>(*this, cfg_);
}

Connection::~Connection() = default;

void Connection::send(Message m) {
  if (local_.blackholed_) {
    // The sending daemon is "crashed": nothing leaves the node.
    local_.blackholed_msgs_++;
    return;
  }
  sent_++;
  inflight_++;
  if (trace::Collector::active() != nullptr && m.trace.valid()) {
    m.trace_send_ns = local_.simulation().now();
  }
  if (batcher_ != nullptr) {
    batcher_->add(std::move(m));
    return;
  }
  // Unbatched: every message is its own wire frame, same costs and event
  // sequence as the historical per-message model.
  Frame f;
  f.wire_size = m.size;
  f.msgs.push_back(std::move(m));
  enqueue_frame(std::move(f));
}

void Connection::enqueue_frame(Frame f) {
  frames_++;
  const std::uint64_t n = f.msgs.size();
  if (n >= 2) {
    batches_++;
    batched_msgs_ += n;
    if (n > max_batch_) max_batch_ = n;
  }
  frames_in_flight_++;
  tx_.try_push(std::move(f));  // tx_ is unbounded; try_push never fails while open
}

void Connection::frame_done() {
  frames_in_flight_--;
  if (frames_in_flight_ == 0 && batcher_ != nullptr) batcher_->on_pipeline_idle();
}

void Connection::account_lost(const Frame& f) { inflight_ -= f.msgs.size(); }

void Connection::set_fault(const Fault& f, std::uint64_t seed) {
  fault_ = f;
  fault_rng_.reseed(seed);
}

void Connection::schedule_resend(Frame f) {
  // TCP-style retransmission, coarse: after the RTO the frame re-enters the
  // send queue at the back, so traffic sent meanwhile overtakes it — the
  // receiver observes reordering (and, with a duplicated ack path,
  // duplicates). A batched frame retransmits as a whole: TCP resends the
  // lost segment, not the individual writes coalesced inside it. The wheel
  // event is cancellable so close() can drop a resend in flight, exactly
  // like the Nagle stall.
  resends_++;
  const std::uint64_t id = next_resend_id_++;
  auto [it, inserted] = pending_resends_.emplace(id, PendingResend{std::move(f), {}});
  it->second.token = local_.simulation().schedule_after(
      cfg_.retransmit_delay, [c = this, id] { c->resend_fire(id); }, "net.retransmit");
}

void Connection::resend_fire(std::uint64_t id) {
  auto it = pending_resends_.find(id);
  if (it == pending_resends_.end()) return;  // close() raced the wheel: nothing to do
  Frame f = std::move(it->second.frame);
  pending_resends_.erase(it);
  const std::uint64_t lost = f.msgs.size();
  if (tx_.try_push(std::move(f))) {
    frames_in_flight_++;
  } else {
    inflight_ -= lost;  // connection closed meanwhile
  }
}

sim::CoTask<void> Connection::sender_loop() {
  for (;;) {
    auto f = co_await tx_.pop();
    if (!f) break;
    // Injected link faults: decide this transmission's fate before it costs
    // anything (the drop models loss in the fabric; the partitioned case
    // retries nothing — silence until the fault clears).
    if (fault_.partitioned) {
      dropped_++;
      account_lost(*f);
      frame_done();
      continue;
    }
    if (fault_.drop_p > 0.0 && fault_rng_.chance(fault_.drop_p)) {
      dropped_++;
      if (auto* tr = trace::Collector::active(); tr != nullptr) {
        for (const auto& m : f->msgs) {
          if (m.trace.valid()) {
            tr->instant(m.trace, tr->stage_id(stage::kNetLinkDrop), local_.simulation().now());
          }
        }
      }
      if (f->resend_attempts < cfg_.max_resends) {
        f->resend_attempts++;
        schedule_resend(std::move(*f));
      } else {
        account_lost(*f);  // give up: loss surfaces to the timeout/retry layers
      }
      frame_done();
      continue;
    }
    // Nagle: a frame whose final segment is a runt (size not a multiple of
    // the MSS — every small/medium KRBD request, including a 4K write's
    // header+payload) waits for the delayed ACK of the previous exchange
    // when the direction is otherwise idle. `inflight_` counts this frame's
    // messages too, hence <= 1 means idle. Large streaming transfers keep
    // the pipe full and are unaffected. Only kernel sockets stall: batching
    // supersedes it (the batcher is the application-level Nagle) and the
    // bypass transport has no socket to stall.
    const bool can_nagle =
        cfg_.nagle && cfg_.transport == Transport::kTcp && batcher_ == nullptr;
    const bool runt = (f->wire_size < cfg_.mss) ||
                      (f->wire_size <= cfg_.nagle_max_size && (f->wire_size % cfg_.mss) != 0);
    if (can_nagle && runt && inflight_ <= 1) {
      nagle_stalls_++;
      // Cancellable stall: close() drops the 3 ms deadline event off the
      // timing wheel and wakes us to exit, instead of the old behaviour of
      // sleeping through the stall on a dead connection.
      if (!co_await nagle_timer_.sleep(cfg_.nagle_stall)) break;
    }
    // One send_cpu per frame — batching's sender-side amortization — plus a
    // small per-extra-message packing cost.
    co_await local_.node().cpu().consume(
        cfg_.send_cpu + cfg_.batch_pack_cpu * Time(f->msgs.size() - 1));
    co_await local_.node().nic_transmit(f->wire_size);
    const Time prop = cfg_.prop_latency + fault_.added_delay;
    co_await sim::delay(local_.simulation(), prop, "net.propagation");
    if (rx_target_ != nullptr) {
      rx_target_->push(rx_shard_, this, std::move(*f));
    } else {
      co_await rx_.push(std::move(*f));
    }
    frame_done();
  }
}

sim::CoTask<void> Connection::receiver_loop() {
  for (;;) {
    auto f = co_await rx_.pop();
    if (!f) break;
    co_await deliver_frame(std::move(*f), /*via_shard=*/false);
  }
}

sim::CoTask<void> Connection::deliver_frame(Frame f, bool via_shard) {
  if (remote_.blackholed_) {
    // The receiving daemon is "crashed": the frame reached the host but no
    // process consumes it. No CPU charged — dead daemons do no work.
    remote_.blackholed_msgs_ += f.msgs.size();
    inflight_ -= f.msgs.size();
    co_return;
  }
  // One recv_cpu per frame (the receive-side amortization), a small
  // per-extra-message unpack cost, and — only in the per-connection
  // pipeline model — the O(rx_connections) SimpleMessenger tax. Sharded
  // delivery already paid its amortized wakeup cost in the shard worker.
  Time cpu = cfg_.recv_cpu + cfg_.batch_unpack_cpu * Time(f.msgs.size() - 1);
  if (!via_shard) {
    cpu += Time(cfg_.per_conn_recv_cpu) * remote_.rx_connections();
  }
  co_await remote_.node().cpu().consume(cpu);
  for (auto& m : f.msgs) {
    inflight_--;
    m.reply_to = reverse_;
    remote_.delivered_++;
    // net.wire: send() enqueue → delivered to the receiver. Covers sender
    // queueing, batch assembly, the Nagle stall if any, NIC serialization,
    // propagation and receive-side CPU — the messenger share of an op's
    // latency.
    if (auto* tr = trace::Collector::active(); tr != nullptr && m.trace.valid()) {
      tr->complete(m.trace, tr->stage_id(stage::kNetWire), m.trace_send_ns,
                   local_.simulation().now());
    }
    co_await remote_.receiver().on_message(std::move(m));
  }
}

void Connection::close() {
  tx_.close();
  rx_.close();
  nagle_timer_.cancel();
  if (batcher_ != nullptr) batcher_->close();
  // Cancel retransmissions waiting out their RTO: nothing fires after
  // close(). (Determinism note: cancelling only tombstones wheel slots;
  // event order keys on schedule sequence, not slot reuse.)
  for (auto& [id, pr] : pending_resends_) {
    local_.simulation().cancel(pr.token);
    account_lost(pr.frame);
  }
  pending_resends_.clear();
}

void NetStats::merge(const NetStats& o) {
  messages += o.messages;
  frames += o.frames;
  batches += o.batches;
  batched_msgs += o.batched_msgs;
  max_batch = std::max(max_batch, o.max_batch);
  dropped_frames += o.dropped_frames;
  frame_resends += o.frame_resends;
  nagle_stalls += o.nagle_stalls;
  shard_wakeups += o.shard_wakeups;
  shard_frames += o.shard_frames;
  shard_depth_hwm = std::max(shard_depth_hwm, o.shard_depth_hwm);
}

Messenger::Messenger(sim::Simulation& sim, Node& node, Receiver& rx, std::string name)
    : sim_(sim), node_(node), rx_(rx), name_(std::move(name)) {}

Messenger::~Messenger() = default;

RxShards* Messenger::ensure_rx_shards(unsigned shards, Time wakeup_cpu) {
  if (rx_shards_ == nullptr) {
    rx_shards_ = std::make_unique<RxShards>(*this, shards, wakeup_cpu);
  }
  return rx_shards_.get();
}

Connection* Messenger::connect(Messenger& remote, const Connection::Config& cfg) {
  auto fwd = std::make_unique<Connection>(*this, remote, cfg);
  // The reply direction never applies Nagle (Ceph sets TCP_NODELAY on the
  // sockets it owns; the paper's problem is the KRBD client side).
  Connection::Config back_cfg = cfg;
  back_cfg.nagle = false;
  auto back = std::make_unique<Connection>(remote, *this, back_cfg);
  fwd->reverse_ = back.get();
  back->reverse_ = fwd.get();
  remote.rx_connections_++;
  rx_connections_++;
  if (cfg.rx_shards > 0) {
    // Each receiving endpoint shards its ingress; the connection's stable
    // registration index picks the shard for every frame it will ever carry.
    fwd->rx_target_ = remote.ensure_rx_shards(cfg.rx_shards, cfg.shard_wakeup_cpu);
    fwd->rx_shard_ = fwd->rx_target_->shard_of(remote.next_rx_index_);
    back->rx_target_ = ensure_rx_shards(cfg.rx_shards, cfg.shard_wakeup_cpu);
    back->rx_shard_ = back->rx_target_->shard_of(next_rx_index_);
  }
  remote.next_rx_index_++;
  next_rx_index_++;
  if (cfg.setup_cpu > 0) {
    // Connection establishment (bypass: QP setup + memory registration) is
    // real CPU, charged to each direction's sending node up front.
    sim::spawn_fn([n = &node_, c = cfg.setup_cpu]() -> sim::CoTask<void> {
      co_await n->cpu().consume(c);
    });
    sim::spawn_fn([n = &remote.node_, c = cfg.setup_cpu]() -> sim::CoTask<void> {
      co_await n->cpu().consume(c);
    });
  }
  Connection* out = fwd.get();
  sim::spawn(fwd->sender_loop());
  sim::spawn(fwd->receiver_loop());
  sim::spawn(back->sender_loop());
  sim::spawn(back->receiver_loop());
  conns_.push_back(std::move(fwd));
  conns_.push_back(std::move(back));
  return out;
}

NetStats Messenger::net_stats() const {
  // Sums the connection *directions* this endpoint initiated (both halves of
  // each pair it created), so summing every messenger in a cluster counts
  // each direction exactly once.
  NetStats s;
  for (const auto& c : conns_) {
    s.messages += c->sent();
    s.frames += c->frames();
    s.batches += c->batches();
    s.batched_msgs += c->batched_msgs();
    s.max_batch = std::max(s.max_batch, c->max_batch());
    s.dropped_frames += c->dropped();
    s.frame_resends += c->resends();
    s.nagle_stalls += c->nagle_stalls();
  }
  if (rx_shards_ != nullptr) {
    s.shard_wakeups = rx_shards_->wakeups();
    s.shard_frames = rx_shards_->frames();
    s.shard_depth_hwm = rx_shards_->depth_hwm();
  }
  return s;
}

void Messenger::close_all() {
  for (auto& c : conns_) c->close();
  if (rx_shards_ != nullptr) rx_shards_->close();
}

}  // namespace afc::net
