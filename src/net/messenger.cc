#include "net/messenger.h"

#include "common/stage_names.h"

namespace afc::net {

Connection::Connection(Messenger& local, Messenger& remote, const Config& cfg)
    : local_(local),
      remote_(remote),
      cfg_(cfg),
      tx_(local.simulation()),
      rx_(local.simulation()),
      nagle_timer_(local.simulation()) {}

void Connection::send(Message m) {
  if (local_.blackholed_) {
    // The sending daemon is "crashed": nothing leaves the node.
    local_.blackholed_msgs_++;
    return;
  }
  sent_++;
  inflight_++;
  if (trace::Collector::active() != nullptr && m.trace.valid()) {
    m.trace_send_ns = local_.simulation().now();
  }
  tx_.try_push(std::move(m));  // tx_ is unbounded; try_push never fails while open
}

void Connection::set_fault(const Fault& f, std::uint64_t seed) {
  fault_ = f;
  fault_rng_.reseed(seed);
}

void Connection::schedule_resend(Message m) {
  // TCP-style retransmission, coarse: after the RTO the segment re-enters
  // the send queue at the back, so traffic sent meanwhile overtakes it —
  // the receiver observes reordering (and, with a duplicated ack path,
  // duplicates). A coroutine (not a bare wheel event) because Message is
  // too big for an inline EventFn capture.
  resends_++;
  sim::spawn_fn([this, msg = std::move(m)]() mutable -> sim::CoTask<void> {
    co_await sim::delay(local_.simulation(), cfg_.retransmit_delay, "net.retransmit");
    if (!tx_.try_push(std::move(msg))) inflight_--;  // connection closed meanwhile
  });
}

sim::CoTask<void> Connection::sender_loop() {
  for (;;) {
    auto m = co_await tx_.pop();
    if (!m) break;
    // Injected link faults: decide this transmission's fate before it costs
    // anything (the drop models loss in the fabric; the partitioned case
    // retries nothing — silence until the fault clears).
    if (fault_.partitioned) {
      dropped_++;
      inflight_--;
      continue;
    }
    if (fault_.drop_p > 0.0 && fault_rng_.chance(fault_.drop_p)) {
      dropped_++;
      if (auto* tr = trace::Collector::active(); tr != nullptr && m->trace.valid()) {
        tr->instant(m->trace, tr->stage_id(stage::kNetLinkDrop), local_.simulation().now());
      }
      if (m->resend_attempts < cfg_.max_resends) {
        m->resend_attempts++;
        schedule_resend(std::move(*m));
      } else {
        inflight_--;  // give up: loss surfaces to the timeout/retry layers
      }
      continue;
    }
    // Nagle: a message whose final segment is a runt (size not a multiple
    // of the MSS — every small/medium KRBD request, including a 4K write's
    // header+payload) waits for the delayed ACK of the previous exchange
    // when the direction is otherwise idle. `inflight_` counts this message
    // too, hence <= 1 means idle. Large streaming transfers keep the pipe
    // full and are unaffected.
    const bool runt = (m->size < cfg_.mss) ||
                      (m->size <= cfg_.nagle_max_size && (m->size % cfg_.mss) != 0);
    if (cfg_.nagle && runt && inflight_ <= 1) {
      nagle_stalls_++;
      // Cancellable stall: close() drops the 3 ms deadline event off the
      // timing wheel and wakes us to exit, instead of the old behaviour of
      // sleeping through the stall on a dead connection.
      if (!co_await nagle_timer_.sleep(cfg_.nagle_stall)) break;
    }
    co_await local_.node().cpu().consume(cfg_.send_cpu);
    co_await local_.node().nic_transmit(m->size);
    const Time prop = cfg_.prop_latency + fault_.added_delay;
    co_await sim::delay(local_.simulation(), prop, "net.propagation");
    co_await rx_.push(std::move(*m));
  }
}

sim::CoTask<void> Connection::receiver_loop() {
  for (;;) {
    auto m = co_await rx_.pop();
    if (!m) break;
    if (remote_.blackholed_) {
      // The receiving daemon is "crashed": the message reached the host but
      // no process consumes it. No CPU charged — dead daemons do no work.
      remote_.blackholed_msgs_++;
      inflight_--;
      continue;
    }
    const Time cpu =
        cfg_.recv_cpu + Time(cfg_.per_conn_recv_cpu) * remote_.rx_connections();
    co_await remote_.node().cpu().consume(cpu);
    inflight_--;
    m->reply_to = reverse_;
    remote_.delivered_++;
    // net.wire: send() enqueue → delivered to the receiver. Covers sender
    // queueing, the Nagle stall if any, NIC serialization, propagation and
    // receive-side CPU — the messenger share of an op's latency.
    if (auto* tr = trace::Collector::active(); tr != nullptr && m->trace.valid()) {
      tr->complete(m->trace, tr->stage_id(stage::kNetWire), m->trace_send_ns,
                   local_.simulation().now());
    }
    co_await remote_.receiver().on_message(std::move(*m));
  }
}

void Connection::close() {
  tx_.close();
  rx_.close();
  nagle_timer_.cancel();
}

Messenger::Messenger(sim::Simulation& sim, Node& node, Receiver& rx, std::string name)
    : sim_(sim), node_(node), rx_(rx), name_(std::move(name)) {}

Connection* Messenger::connect(Messenger& remote, const Connection::Config& cfg) {
  auto fwd = std::make_unique<Connection>(*this, remote, cfg);
  // The reply direction never applies Nagle (Ceph sets TCP_NODELAY on the
  // sockets it owns; the paper's problem is the KRBD client side).
  Connection::Config back_cfg = cfg;
  back_cfg.nagle = false;
  auto back = std::make_unique<Connection>(remote, *this, back_cfg);
  fwd->reverse_ = back.get();
  back->reverse_ = fwd.get();
  remote.rx_connections_++;
  rx_connections_++;
  Connection* out = fwd.get();
  sim::spawn(fwd->sender_loop());
  sim::spawn(fwd->receiver_loop());
  sim::spawn(back->sender_loop());
  sim::spawn(back->receiver_loop());
  conns_.push_back(std::move(fwd));
  conns_.push_back(std::move(back));
  return out;
}

void Messenger::close_all() {
  for (auto& c : conns_) c->close();
}

}  // namespace afc::net
