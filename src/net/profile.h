#pragma once

#include <optional>
#include <string_view>

#include "net/messenger.h"

namespace afc::net {

/// The named transport rungs of the post-SimpleMessenger ladder, each a
/// complete `Connection::Config` constructed in exactly one place so benches
/// and tests stop hand-copying `prop_latency`/`send_cpu`/`recv_cpu` triples.
/// Ablations toggle one mechanism per rung:
///
///   community        SimpleMessenger as the paper measured it: dedicated
///                    send/receive pipelines per connection, per-message CPU,
///                    the O(rx_connections) receive tax — the Fig. 12 ceiling.
///   optimized        Identical wire costs to community; this is the rung the
///                    paper's optimized AFCeph runs on — its gains (TCP_NODELAY
///                    on KRBD, throttles, jemalloc, logging) live in
///                    core::Profile, not in the transport.
///   sharded          N receive shards per endpoint replace the receive
///                    pipelines; the per-connection tax becomes an amortized
///                    per-wakeup cost (the AsyncMessenger redesign).
///   sharded_batched  sharded + egress batching: small same-direction
///                    messages coalesce into one wire frame.
///   bypass           RDMA-like kernel-bypass cost structure: near-zero
///                    per-message CPU, one-time per-connection setup cost,
///                    lower propagation, no Nagle possible.
struct NetProfile {
  static Connection::Config community();
  static Connection::Config optimized();
  static Connection::Config sharded();
  static Connection::Config sharded_batched();
  static Connection::Config bypass();

  /// Rung by name ("sharded+batched" accepted for sharded_batched), for the
  /// AFC_NET_TRANSPORT env override and bench CLI flags. nullopt = unknown.
  static std::optional<Connection::Config> by_name(std::string_view name);

  /// The cluster-network (OSD↔OSD) wiring variant of `base`: Ceph sets
  /// TCP_NODELAY on the sockets it owns, so Nagle is always off here.
  static Connection::Config cluster(const Connection::Config& base);

  /// The client-network (VM→OSD) wiring variant of `base`: `krbd_nagle`
  /// keeps the kernel-RBD default Nagle stall (the paper's §system-tuning
  /// target, core::Profile::disable_nagle turns it off).
  static Connection::Config client(const Connection::Config& base, bool krbd_nagle);
};

}  // namespace afc::net
