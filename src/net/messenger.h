#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/trace.h"
#include "net/link.h"
#include "sim/channel.h"
#include "sim/task.h"

namespace afc::net {

/// Base class for message payloads; the OSD/client layers subclass this.
struct MsgBody {
  virtual ~MsgBody() = default;
};

struct Message {
  int type = 0;
  std::uint64_t size = 0;  // wire size in bytes (header + payload)
  std::shared_ptr<MsgBody> body;
  class Connection* reply_to = nullptr;  // reverse direction, set on delivery
  /// Op attribution for the tracer (set by senders only while tracing).
  trace::Span trace;
  Time trace_send_ns = 0;  // send() enqueue time, for the net.wire span
};

/// The unit that actually traverses a connection. Without batching every
/// frame carries exactly one message and `wire_size` equals that message's
/// size, so the default transport is byte-for-byte the per-message model.
/// The egress batcher packs several small same-direction messages into one
/// frame (payloads moved, never copied — bytes are charged to the NIC once);
/// link faults drop, delay and retransmit whole frames.
struct Frame {
  std::vector<Message> msgs;
  std::uint64_t wire_size = 0;
  std::uint16_t resend_attempts = 0;
};

class Messenger;
class Batcher;
class RxShards;

/// Anything that can receive messages (an OSD, a client, a SolidFire node).
class Receiver {
 public:
  virtual ~Receiver() = default;
  /// Called in-order per connection after the receive-side CPU cost has been
  /// charged. The connection's delivery pipeline waits for the returned task,
  /// so suspending here (e.g. on the OSD's client-message throttle) back-
  /// pressures that connection exactly like the real messenger's dispatch
  /// throttler. Under sharded dispatch the *shard* waits instead, so a slow
  /// receiver stalls every connection hashed to the same shard (the honest
  /// cost of replacing thread-per-connection with N dispatch shards).
  /// Spawn long work instead of awaiting it.
  virtual sim::CoTask<void> on_message(Message m) = 0;
};

/// One direction of a messenger pair: local → remote. The default models
/// Ceph's SimpleMessenger structure: a dedicated sender pipeline and a
/// dedicated receiver pipeline per connection, in-order delivery, and
/// per-message CPU charged to both endpoints (plus a per-registered-
/// connection receive tax — the thread-per-connection context-switch cost
/// behind Fig. 12's 16-node ceiling). Optionally applies a TCP-Nagle stall
/// to small messages when the direction is otherwise idle (the KRBD
/// behaviour the paper's system tuning disables).
///
/// Three post-SimpleMessenger mechanisms stack on top, each independently
/// toggleable (see net::NetProfile for the named rungs; all default off):
///
///   * sharded dispatch (`rx_shards > 0`): the receiving endpoint runs N
///     dispatch shards instead of one receive pipeline per connection;
///     connections map to shards by stable hash, per-connection FIFO order
///     is preserved, and the O(rx_connections) `per_conn_recv_cpu` tax is
///     replaced by a per-shard wakeup cost amortized over every frame the
///     wakeup drains.
///   * egress batching (`batch`): small same-direction messages coalesce
///     into one wire frame. A frame flushes when it reaches
///     `batch_max_bytes`, when `batch_max_delay` expires, or as soon as the
///     sender pipeline goes idle — so sparse traffic pays no added latency
///     while busy links amortize `send_cpu`/`recv_cpu` across the batch.
///   * bypass transport (`transport = kBypass`): RDMA-like cost structure —
///     near-zero per-message CPU, a one-time per-connection `setup_cpu`,
///     and no Nagle ever (there is no kernel socket to stall).
class Connection {
 public:
  enum class Transport {
    kTcp,     // kernel sockets: Nagle possible, per-message CPU as configured
    kBypass,  // RDMA-like: no Nagle, setup cost at connect, near-zero per-msg CPU
  };

  struct Config {
    Time prop_latency = 60 * kMicrosecond;  // switch + propagation
    Time send_cpu = 10 * kMicrosecond;
    Time recv_cpu = 14 * kMicrosecond;
    Time per_conn_recv_cpu = 60;  // ns per registered rx connection: the
                                  // SimpleMessenger thread-per-connection
                                  // context-switch tax (Fig. 12)
    bool nagle = false;
    Time nagle_stall = 3 * kMillisecond;
    std::uint64_t mss = 1448;
    std::uint64_t nagle_max_size = 64 * 1024;  // larger transfers stream
    /// Lossy-link recovery (TCP retransmission, coarse): a frame dropped
    /// by an injected link fault is re-enqueued after this delay, up to
    /// `max_resends` attempts. Later traffic overtakes the retransmission,
    /// so receivers see duplicates and reordering — exactly what the fault
    /// tests exercise. A batched frame retransmits as a whole.
    Time retransmit_delay = 200 * kMicrosecond;
    unsigned max_resends = 8;

    // --- post-SimpleMessenger transport family (all default off) ---------
    Transport transport = Transport::kTcp;
    /// One-time connection-establishment CPU per direction, charged to the
    /// sending node at connect() (bypass: queue-pair setup + registration).
    Time setup_cpu = 0;
    /// Receive shards at the receiving endpoint; 0 = one receive pipeline
    /// per connection (the SimpleMessenger model). The first sharded
    /// connect() fixes an endpoint's shard count.
    unsigned rx_shards = 0;
    /// Charged once per shard wakeup, amortized over every frame that
    /// wakeup drains (replaces the per-connection tax).
    Time shard_wakeup_cpu = 2 * kMicrosecond;
    /// Egress batching/coalescing.
    bool batch = false;
    std::uint64_t batch_max_bytes = 16 * 1024;
    Time batch_max_delay = 20 * kMicrosecond;
    std::uint64_t frame_header_bytes = 48;  // per batched frame, on the wire
    Time batch_pack_cpu = 1 * kMicrosecond;  // sender, per message beyond the first
    Time batch_unpack_cpu = 1500;            // receiver, per message beyond the first
  };

  /// Injected link fault state (set by fault::FaultInjector, default off).
  /// `drop_p` drops each transmission independently (retransmitted per the
  /// Config); `added_delay` stretches propagation; `partitioned` drops
  /// everything with no retransmission (TCP would retry into the void — we
  /// model the application-visible outcome: silence until the fault clears).
  struct Fault {
    double drop_p = 0.0;
    Time added_delay = 0;
    bool partitioned = false;

    bool any() const { return drop_p > 0.0 || added_delay != 0 || partitioned; }
  };

  Connection(Messenger& local, Messenger& remote, const Config& cfg);
  ~Connection();

  /// Enqueue a message for ordered delivery to the remote receiver.
  void send(Message m);

  Connection* reverse() const { return reverse_; }
  Messenger& local() { return local_; }
  Messenger& remote() { return remote_; }
  const Config& config() const { return cfg_; }

  /// Install / clear an injected link fault on this direction. `seed` feeds
  /// the drop coin-flip stream (deterministic per connection).
  void set_fault(const Fault& f, std::uint64_t seed);
  void clear_fault() { fault_ = Fault{}; }
  const Fault& fault() const { return fault_; }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t nagle_stalls() const { return nagle_stalls_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t resends() const { return resends_; }
  // --- frame/batch counters (tentpole instrumentation) -------------------
  std::uint64_t frames() const { return frames_; }
  std::uint64_t batches() const { return batches_; }
  std::uint64_t batched_msgs() const { return batched_msgs_; }
  std::uint64_t max_batch() const { return max_batch_; }
  /// Frames enqueued to the sender but not yet handed to the receive side;
  /// the batcher flushes eagerly whenever this hits zero.
  std::uint64_t frames_in_flight() const { return frames_in_flight_; }

  /// Stop the pipelines once drained (for clean shutdown). Cancels a
  /// pending Nagle stall, a pending batch-flush timer, and any scheduled
  /// retransmissions of dropped frames — nothing fires after close().
  void close();

  /// Deliver one frame to the remote receiver, charging receive-side CPU.
  /// `via_shard` selects the sharded cost model (no per-connection tax).
  /// Internal: called by the receiver pipeline or the remote's RxShards.
  sim::CoTask<void> deliver_frame(Frame f, bool via_shard);

 private:
  friend class Messenger;
  friend class Batcher;
  sim::CoTask<void> sender_loop();
  sim::CoTask<void> receiver_loop();
  /// Hand a completed frame to the sender pipeline (from send() or the
  /// batcher's flush).
  void enqueue_frame(Frame f);
  /// The sender finished (delivered or dropped) one frame; when the
  /// pipeline drains, pending batched messages flush immediately.
  void frame_done();
  void schedule_resend(Frame f);
  void resend_fire(std::uint64_t id);
  void account_lost(const Frame& f);

  Messenger& local_;
  Messenger& remote_;
  Config cfg_;
  Connection* reverse_ = nullptr;
  sim::Channel<Frame> tx_;
  sim::Channel<Frame> rx_;
  sim::Timer nagle_timer_;  // cancellable: close() drops a stall in flight
  std::unique_ptr<Batcher> batcher_;  // non-null iff cfg_.batch
  RxShards* rx_target_ = nullptr;     // non-null iff the remote endpoint shards
  unsigned rx_shard_ = 0;             // stable-hash shard at the remote endpoint
  Fault fault_;
  Rng fault_rng_{0};
  /// Retransmissions waiting out their RTO, cancellable by close().
  struct PendingResend {
    Frame frame;
    sim::TimerToken token;
  };
  std::unordered_map<std::uint64_t, PendingResend> pending_resends_;
  std::uint64_t next_resend_id_ = 1;
  std::uint64_t inflight_ = 0;  // messages in this direction's pipelines
  std::uint64_t frames_in_flight_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t nagle_stalls_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t resends_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t batches_ = 0;       // frames carrying >= 2 messages
  std::uint64_t batched_msgs_ = 0;  // messages inside such frames
  std::uint64_t max_batch_ = 0;
};

/// Aggregated transport counters for one endpoint (sums over the connection
/// directions the endpoint owns, plus its shard set if any).
struct NetStats {
  std::uint64_t messages = 0;  // messages sent
  std::uint64_t frames = 0;    // wire frames sent
  std::uint64_t batches = 0;
  std::uint64_t batched_msgs = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t dropped_frames = 0;
  std::uint64_t frame_resends = 0;
  std::uint64_t nagle_stalls = 0;
  std::uint64_t shard_wakeups = 0;
  std::uint64_t shard_frames = 0;
  std::size_t shard_depth_hwm = 0;

  /// Mean messages per wire frame (1.0 when batching never engaged).
  double batch_occupancy() const {
    return frames == 0 ? 0.0 : double(messages) / double(frames);
  }
  void merge(const NetStats& o);
};

/// A message endpoint bound to a Node and a Receiver.
class Messenger {
 public:
  Messenger(sim::Simulation& sim, Node& node, Receiver& rx, std::string name);
  ~Messenger();
  Messenger(const Messenger&) = delete;
  Messenger& operator=(const Messenger&) = delete;

  /// Create a bidirectional connection pair; returns the local→remote
  /// direction (use conn->reverse() for replies, though delivery already
  /// stamps Message::reply_to).
  Connection* connect(Messenger& remote, const Connection::Config& cfg);

  sim::Simulation& simulation() { return sim_; }
  Node& node() { return node_; }
  Receiver& receiver() { return rx_; }
  const std::string& name() const { return name_; }

  unsigned rx_connections() const { return rx_connections_; }
  std::uint64_t delivered() const { return delivered_; }

  /// Crash simulation: a blackholed endpoint sends nothing (messages vanish
  /// at send()) and receives nothing (deliveries vanish before on_message,
  /// charging no CPU — a dead process does no work). In-flight coroutines
  /// keep running but their outputs never leave the node; un-blackholing
  /// models the daemon restarting on the same messenger.
  void set_blackhole(bool dead) { blackholed_ = dead; }
  bool blackholed() const { return blackholed_; }
  std::uint64_t blackholed_msgs() const { return blackholed_msgs_; }

  /// The connection *directions* this messenger initiated (both directions
  /// of every pair created by our connect()). The fault injector scans these
  /// to find every link touching a target endpoint.
  const std::vector<std::unique_ptr<Connection>>& connections() const { return conns_; }

  /// The endpoint's receive-shard set, or nullptr while no sharded
  /// connection has registered (the per-connection model).
  RxShards* rx_shards() { return rx_shards_.get(); }

  /// Transport counters summed over this endpoint's connections + shards.
  NetStats net_stats() const;

  void close_all();

 private:
  friend class Connection;
  /// Create the shard set on first sharded registration; later connects
  /// reuse it (the first shard count wins per endpoint).
  RxShards* ensure_rx_shards(unsigned shards, Time wakeup_cpu);

  sim::Simulation& sim_;
  Node& node_;
  Receiver& rx_;
  std::string name_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::unique_ptr<RxShards> rx_shards_;
  unsigned rx_connections_ = 0;
  std::uint64_t next_rx_index_ = 0;  // stable per-endpoint connection index
  std::uint64_t delivered_ = 0;
  bool blackholed_ = false;
  std::uint64_t blackholed_msgs_ = 0;
};

}  // namespace afc::net
