#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/trace.h"
#include "net/link.h"
#include "sim/channel.h"
#include "sim/task.h"

namespace afc::net {

/// Base class for message payloads; the OSD/client layers subclass this.
struct MsgBody {
  virtual ~MsgBody() = default;
};

struct Message {
  int type = 0;
  std::uint64_t size = 0;  // wire size in bytes (header + payload)
  std::shared_ptr<MsgBody> body;
  class Connection* reply_to = nullptr;  // reverse direction, set on delivery
  /// Op attribution for the tracer (set by senders only while tracing).
  trace::Span trace;
  Time trace_send_ns = 0;  // send() enqueue time, for the net.wire span
  /// Times this message has been retransmitted after a lossy-link drop.
  std::uint16_t resend_attempts = 0;
};

class Messenger;

/// Anything that can receive messages (an OSD, a client, a SolidFire node).
class Receiver {
 public:
  virtual ~Receiver() = default;
  /// Called in-order per connection after the receive-side CPU cost has been
  /// charged. The connection's delivery pipeline waits for the returned task,
  /// so suspending here (e.g. on the OSD's client-message throttle) back-
  /// pressures that connection exactly like the real messenger's dispatch
  /// throttler. Spawn long work instead of awaiting it.
  virtual sim::CoTask<void> on_message(Message m) = 0;
};

/// One direction of a messenger pair: local → remote. Models Ceph's
/// SimpleMessenger structure: a dedicated sender pipeline and a dedicated
/// receiver pipeline per connection, in-order delivery, and per-message CPU
/// charged to both endpoints. Optionally applies a TCP-Nagle stall to small
/// messages when the direction is otherwise idle (the KRBD behaviour the
/// paper's system tuning disables).
class Connection {
 public:
  struct Config {
    Time prop_latency = 60 * kMicrosecond;  // switch + propagation
    Time send_cpu = 10 * kMicrosecond;
    Time recv_cpu = 14 * kMicrosecond;
    Time per_conn_recv_cpu = 60;  // ns per registered rx connection: the
                                  // SimpleMessenger thread-per-connection
                                  // context-switch tax (Fig. 12)
    bool nagle = false;
    Time nagle_stall = 3 * kMillisecond;
    std::uint64_t mss = 1448;
    std::uint64_t nagle_max_size = 64 * 1024;  // larger transfers stream
    /// Lossy-link recovery (TCP retransmission, coarse): a message dropped
    /// by an injected link fault is re-enqueued after this delay, up to
    /// `max_resends` attempts. Later traffic overtakes the retransmission,
    /// so receivers see duplicates and reordering — exactly what the fault
    /// tests exercise.
    Time retransmit_delay = 200 * kMicrosecond;
    unsigned max_resends = 8;
  };

  /// Injected link fault state (set by fault::FaultInjector, default off).
  /// `drop_p` drops each transmission independently (retransmitted per the
  /// Config); `added_delay` stretches propagation; `partitioned` drops
  /// everything with no retransmission (TCP would retry into the void — we
  /// model the application-visible outcome: silence until the fault clears).
  struct Fault {
    double drop_p = 0.0;
    Time added_delay = 0;
    bool partitioned = false;

    bool any() const { return drop_p > 0.0 || added_delay != 0 || partitioned; }
  };

  Connection(Messenger& local, Messenger& remote, const Config& cfg);

  /// Enqueue a message for ordered delivery to the remote receiver.
  void send(Message m);

  Connection* reverse() const { return reverse_; }
  Messenger& local() { return local_; }
  Messenger& remote() { return remote_; }

  /// Install / clear an injected link fault on this direction. `seed` feeds
  /// the drop coin-flip stream (deterministic per connection).
  void set_fault(const Fault& f, std::uint64_t seed);
  void clear_fault() { fault_ = Fault{}; }
  const Fault& fault() const { return fault_; }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t nagle_stalls() const { return nagle_stalls_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t resends() const { return resends_; }

  /// Stop the pipelines once drained (for clean shutdown).
  void close();

 private:
  friend class Messenger;
  sim::CoTask<void> sender_loop();
  sim::CoTask<void> receiver_loop();
  void schedule_resend(Message m);

  Messenger& local_;
  Messenger& remote_;
  Config cfg_;
  Connection* reverse_ = nullptr;
  sim::Channel<Message> tx_;
  sim::Channel<Message> rx_;
  sim::Timer nagle_timer_;  // cancellable: close() drops a stall in flight
  Fault fault_;
  Rng fault_rng_{0};
  std::uint64_t inflight_ = 0;  // messages in this direction's pipelines
  std::uint64_t sent_ = 0;
  std::uint64_t nagle_stalls_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t resends_ = 0;
};

/// A message endpoint bound to a Node and a Receiver.
class Messenger {
 public:
  Messenger(sim::Simulation& sim, Node& node, Receiver& rx, std::string name);
  Messenger(const Messenger&) = delete;
  Messenger& operator=(const Messenger&) = delete;

  /// Create a bidirectional connection pair; returns the local→remote
  /// direction (use conn->reverse() for replies, though delivery already
  /// stamps Message::reply_to).
  Connection* connect(Messenger& remote, const Connection::Config& cfg);

  sim::Simulation& simulation() { return sim_; }
  Node& node() { return node_; }
  Receiver& receiver() { return rx_; }
  const std::string& name() const { return name_; }

  unsigned rx_connections() const { return rx_connections_; }
  std::uint64_t delivered() const { return delivered_; }

  /// Crash simulation: a blackholed endpoint sends nothing (messages vanish
  /// at send()) and receives nothing (deliveries vanish before on_message,
  /// charging no CPU — a dead process does no work). In-flight coroutines
  /// keep running but their outputs never leave the node; un-blackholing
  /// models the daemon restarting on the same messenger.
  void set_blackhole(bool dead) { blackholed_ = dead; }
  bool blackholed() const { return blackholed_; }
  std::uint64_t blackholed_msgs() const { return blackholed_msgs_; }

  /// The connection *directions* this messenger initiated (both directions
  /// of every pair created by our connect()). The fault injector scans these
  /// to find every link touching a target endpoint.
  const std::vector<std::unique_ptr<Connection>>& connections() const { return conns_; }

  void close_all();

 private:
  friend class Connection;
  sim::Simulation& sim_;
  Node& node_;
  Receiver& rx_;
  std::string name_;
  std::vector<std::unique_ptr<Connection>> conns_;
  unsigned rx_connections_ = 0;
  std::uint64_t delivered_ = 0;
  bool blackholed_ = false;
  std::uint64_t blackholed_msgs_ = 0;
};

}  // namespace afc::net
