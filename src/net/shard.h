#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/messenger.h"
#include "sim/channel.h"

namespace afc::net {

/// Sharded dispatch for a receiving endpoint (the AsyncMessenger model that
/// replaced SimpleMessenger): N shard workers instead of one receive
/// pipeline per connection. Every connection maps to one shard by a stable
/// hash of its per-endpoint registration index, so all of a connection's
/// frames funnel through one single-consumer queue — per-connection FIFO
/// order is preserved by construction. The O(rx_connections)
/// `per_conn_recv_cpu` context-switch tax disappears; in its place each
/// worker charges `shard_wakeup_cpu` once per wakeup, amortized over every
/// frame the wakeup drains. A receiver that suspends in on_message() stalls
/// its whole shard (all connections hashed there), which is the honest cost
/// of the N-reactor design.
class RxShards {
 public:
  RxShards(Messenger& owner, unsigned shards, Time wakeup_cpu);
  ~RxShards();
  RxShards(const RxShards&) = delete;
  RxShards& operator=(const RxShards&) = delete;

  unsigned shard_count() const { return unsigned(queues_.size()); }

  /// Stable connection→shard mapping from the endpoint's registration index.
  unsigned shard_of(std::uint64_t rx_index) const;

  /// Hand a frame from `conn`'s sender pipeline to its shard queue.
  void push(unsigned shard, Connection* conn, Frame f);

  /// Close every shard queue; workers exit once drained.
  void close();

  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t frames() const { return frames_; }
  /// Deepest any shard queue ever got (backlog high-water mark).
  std::size_t depth_hwm() const;

 private:
  struct Item {
    Connection* conn = nullptr;
    Frame frame;
  };

  sim::CoTask<void> worker(unsigned shard);

  Messenger& owner_;
  Time wakeup_cpu_;
  std::vector<std::unique_ptr<sim::Channel<Item>>> queues_;
  std::uint64_t wakeups_ = 0;
  std::uint64_t frames_ = 0;
};

}  // namespace afc::net
