#pragma once

#include <cstdint>
#include <string>

#include "sim/cpu.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace afc::net {

/// One physical server: a CPU pool plus a NIC. OSD daemons, clients and the
/// SolidFire model all charge their per-message / per-op CPU work to the
/// node they run on, which is what creates the CPU ceilings of the paper's
/// Fig. 12 (messenger) and the ">4 OSDs per node gains nothing because OSDs
/// used significant CPU" observation in §4.1.
class Node {
 public:
  struct Config {
    unsigned cores = 16;
    std::uint64_t nic_bw = 1250 * kMiB;  // 10 GbE, bytes/sec
  };

  Node(sim::Simulation& sim, std::string name, const Config& cfg)
      : sim_(sim), name_(std::move(name)), cfg_(cfg), cpu_(sim, cfg.cores), tx_(sim, 1) {}

  const std::string& name() const { return name_; }
  sim::Simulation& simulation() { return sim_; }
  sim::CpuPool& cpu() { return cpu_; }

  /// Serialize `bytes` onto the wire (FIFO; the NIC is a single resource,
  /// so concurrent senders queue). Awaiter-based: one event per transfer.
  sim::CpuPool::Consume nic_transmit(std::uint64_t bytes) {
    tx_bytes_ += bytes;
    return tx_.consume(Time(double(bytes) / double(cfg_.nic_bw) * double(kSecond)));
  }

  std::uint64_t tx_bytes() const { return tx_bytes_; }
  double nic_utilization() const { return tx_.utilization(); }

 private:
  sim::Simulation& sim_;
  std::string name_;
  Config cfg_;
  sim::CpuPool cpu_;
  sim::CpuPool tx_;  // single-server wire serialization
  std::uint64_t tx_bytes_ = 0;
};

}  // namespace afc::net
