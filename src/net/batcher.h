#pragma once

#include <cstdint>
#include <vector>

#include "net/messenger.h"
#include "sim/simulation.h"

namespace afc::net {

/// Egress aggregator for one connection direction: packs small
/// same-direction messages into one wire frame so `send_cpu`/`recv_cpu`
/// (and the frame's NIC pass) are paid once per batch instead of once per
/// message — the Pulsar-style coalescing that recovers messages-per-second
/// at fixed CPU. Zero-copy: Message payloads are shared_ptr bodies, so
/// packing moves descriptors; payload bytes are charged to the NIC exactly
/// once, when the frame transmits.
///
/// Flush policy (first trigger wins):
///   * bytes  — the pending batch reached `batch_max_bytes`;
///   * idle   — the sender pipeline drained (`frames_in_flight() == 0`), so
///              nothing is ahead of us and waiting would add pure latency.
///              Closed-loop sparse traffic therefore pays zero added delay
///              and degenerates to one message per frame;
///   * delay  — `batch_max_delay` expired while the pipeline stayed busy
///              (the bounded-harm backstop, a cancellable wheel event like
///              the Nagle timer).
class Batcher {
 public:
  Batcher(Connection& conn, const Connection::Config& cfg);
  ~Batcher();
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Queue a message; may flush inline (bytes/idle triggers).
  void add(Message m);

  /// Emit the pending batch as one frame now. No-op when empty.
  void flush();

  /// Sender pipeline drained — flush rather than sit on the delay timer.
  void on_pipeline_idle();

  /// Cancel the pending flush timer and discard pending messages (the
  /// connection is closing; parity with messages sitting in a closed tx
  /// queue). Nothing fires after close().
  void close();

  std::uint64_t flushes_on_bytes() const { return flushes_bytes_; }
  std::uint64_t flushes_on_idle() const { return flushes_idle_; }
  std::uint64_t flushes_on_delay() const { return flushes_delay_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  void arm_timer();
  void timer_fire();

  Connection& conn_;
  const Connection::Config& cfg_;
  std::vector<Message> pending_;
  std::uint64_t pending_bytes_ = 0;
  sim::TimerToken timer_;
  bool timer_armed_ = false;
  bool closed_ = false;
  std::uint64_t flushes_bytes_ = 0;
  std::uint64_t flushes_idle_ = 0;
  std::uint64_t flushes_delay_ = 0;
};

}  // namespace afc::net
