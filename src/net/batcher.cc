#include "net/batcher.h"

#include "common/stage_names.h"

namespace afc::net {

Batcher::Batcher(Connection& conn, const Connection::Config& cfg)
    : conn_(conn), cfg_(cfg) {}

Batcher::~Batcher() = default;

void Batcher::add(Message m) {
  pending_bytes_ += m.size;
  pending_.push_back(std::move(m));
  if (pending_bytes_ >= cfg_.batch_max_bytes) {
    flushes_bytes_++;
    flush();
    return;
  }
  if (conn_.frames_in_flight() == 0) {
    flushes_idle_++;
    flush();
    return;
  }
  if (!timer_armed_) arm_timer();
}

void Batcher::flush() {
  if (closed_ || pending_.empty()) return;
  if (timer_armed_) {
    conn_.local().simulation().cancel(timer_);
    timer_armed_ = false;
  }
  Frame f;
  f.msgs = std::move(pending_);
  pending_.clear();
  // net.batch: send() enqueue → frame flushed, per message — the assembly
  // wait this message spent inside the aggregator (zero for idle flushes).
  if (auto* tr = trace::Collector::active(); tr != nullptr) {
    const Time now = conn_.local().simulation().now();
    for (auto& m : f.msgs) {
      if (m.trace.valid()) {
        tr->complete(m.trace, tr->stage_id(stage::kNetBatch), m.trace_send_ns, now);
      }
    }
  }
  f.wire_size = pending_bytes_ + cfg_.frame_header_bytes;
  pending_bytes_ = 0;
  conn_.enqueue_frame(std::move(f));
}

void Batcher::on_pipeline_idle() {
  if (closed_ || pending_.empty()) return;
  flushes_idle_++;
  flush();
}

void Batcher::close() {
  if (timer_armed_) {
    conn_.local().simulation().cancel(timer_);
    timer_armed_ = false;
  }
  closed_ = true;
  // Pending messages die with the connection, like messages sitting in a
  // closed tx queue; square the in-flight accounting for them.
  conn_.inflight_ -= pending_.size();
  pending_.clear();
  pending_bytes_ = 0;
}

void Batcher::arm_timer() {
  timer_armed_ = true;
  timer_ = conn_.local().simulation().schedule_after(
      cfg_.batch_max_delay, [b = this] { b->timer_fire(); }, "net.batch_flush");
}

void Batcher::timer_fire() {
  timer_armed_ = false;
  if (closed_) return;
  flushes_delay_++;
  flush();
}

}  // namespace afc::net
