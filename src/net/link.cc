#include "net/link.h"

// Node is header-only; this TU keeps the module list uniform.
namespace afc::net {}
