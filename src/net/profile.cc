#include "net/profile.h"

namespace afc::net {

Connection::Config NetProfile::community() {
  // The default-constructed Config IS the community SimpleMessenger model;
  // keeping this rung equal to `Connection::Config{}` is what makes the
  // default-off byte-identity guarantee checkable (fig01/fig03/fig12 run
  // this rung whether or not they mention NetProfile).
  return Connection::Config{};
}

Connection::Config NetProfile::optimized() {
  // Same wire costs as community by design: the paper's optimized AFCeph
  // still runs SimpleMessenger. The rung exists so ladders/ablations can
  // name the baseline they must beat.
  return community();
}

Connection::Config NetProfile::sharded() {
  Connection::Config c = community();
  c.rx_shards = 4;  // AsyncMessenger-style small fixed reactor pool
  c.shard_wakeup_cpu = 2 * kMicrosecond;
  c.per_conn_recv_cpu = 0;  // the tax the redesign exists to remove
  return c;
}

Connection::Config NetProfile::sharded_batched() {
  Connection::Config c = sharded();
  c.batch = true;  // batch_max_bytes/delay, pack/unpack costs: Config defaults
  return c;
}

Connection::Config NetProfile::bypass() {
  Connection::Config c = community();
  c.transport = Connection::Transport::kBypass;
  c.prop_latency = 30 * kMicrosecond;  // no kernel stack on either end
  c.send_cpu = 1 * kMicrosecond;       // post a work request
  c.recv_cpu = 1500;                   // poll a completion
  c.per_conn_recv_cpu = 0;             // completion queues, not threads
  c.setup_cpu = 200 * kMicrosecond;    // QP setup + memory registration
  c.nagle = false;                     // nothing to stall: no socket
  return c;
}

std::optional<Connection::Config> NetProfile::by_name(std::string_view name) {
  if (name == "community") return community();
  if (name == "optimized") return optimized();
  if (name == "sharded") return sharded();
  if (name == "sharded_batched" || name == "sharded+batched") return sharded_batched();
  if (name == "bypass") return bypass();
  return std::nullopt;
}

Connection::Config NetProfile::cluster(const Connection::Config& base) {
  Connection::Config c = base;
  c.nagle = false;
  return c;
}

Connection::Config NetProfile::client(const Connection::Config& base, bool krbd_nagle) {
  Connection::Config c = base;
  c.nagle = krbd_nagle;
  return c;
}

}  // namespace afc::net
