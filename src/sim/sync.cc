#include "sim/sync.h"

namespace afc::sim {

void CondVar::notify_one() {
  if (waiters_.empty()) return;
  WaitNode n = waiters_.front();
  waiters_.pop_front();
  // A timed waiter's deadline event is dropped off the wheel right here,
  // instead of executing as a tombstone at the deadline.
  if (n.timed != nullptr) sim_.cancel(n.timed->token_);
  const auto h = n.h;
  sim_.schedule_after(0, [h] { h.resume(); }, "sync.cv_notify");
}

void CondVar::notify_all() {
  while (!waiters_.empty()) notify_one();
}

void CondVar::TimedWaiter::on_timeout() {
  timed_out_ = true;
  for (auto it = cv_.waiters_.begin(); it != cv_.waiters_.end(); ++it) {
    if (it->timed == this) {
      cv_.waiters_.erase(it);
      break;
    }
  }
  h_.resume();
}

bool Mutex::try_lock() {
  if (locked_) return false;
  locked_ = true;
  acquisitions_++;
  return true;
}

void Mutex::unlock() {
  if (waiters_.empty()) {
    locked_ = false;
    return;
  }
  // FIFO ownership handoff: the lock stays held and the next waiter resumes
  // as the owner on the next event-loop turn.
  auto h = waiters_.front();
  waiters_.pop_front();
  acquisitions_++;
  sim_.schedule_after(0, [h] { h.resume(); }, "sync.mutex_handoff");
}

bool Semaphore::try_acquire(std::uint64_t n) {
  if (!waiters_.empty() || available_ < n) return false;
  acquires_++;
  available_ -= n;
  return true;
}

void Semaphore::release(std::uint64_t n) {
  available_ += n;
  // After a capacity shrink, in-use units can exceed the new capacity;
  // their release must not over-credit the pool.
  if (available_ > capacity_) available_ = capacity_;
  dispatch_waiters();
}

void Semaphore::set_capacity(std::uint64_t cap) {
  if (cap >= capacity_) {
    available_ += cap - capacity_;
  } else {
    const std::uint64_t cut = capacity_ - cap;
    available_ = available_ > cut ? available_ - cut : 0;
  }
  capacity_ = cap;
  dispatch_waiters();
}

void Semaphore::dispatch_waiters() {
  while (!waiters_.empty() && waiters_.front()->n_ <= available_) {
    Acquire* w = waiters_.front();
    waiters_.pop_front();
    available_ -= w->n_;
    const auto h = w->handle_;
    // Resume through the event queue: `w` lives on the suspended coroutine's
    // frame and stays valid until that coroutine runs.
    sim_.schedule_after(0, [h] { h.resume(); }, "sync.sem_grant");
  }
}

void WaitGroup::done() {
  if (outstanding_ > 0) {
    outstanding_--;
    if (outstanding_ == 0) cv_.notify_all();
  }
}

CoTask<void> WaitGroup::wait() {
  while (outstanding_ > 0) co_await cv_.wait();
}

}  // namespace afc::sim
