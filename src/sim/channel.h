#pragma once

#include <deque>
#include <optional>

#include "sim/sync.h"
#include "sim/task.h"

namespace afc::sim {

/// Bounded FIFO channel between simulated coroutines — the model for every
/// thread-handoff queue in the OSD (PG queues, journal queue, filestore op
/// queue, logger queue). capacity 0 means unbounded. pop() returns nullopt
/// once the channel is closed and drained, which is how worker coroutines
/// shut down cleanly at the end of a run.
template <class T>
class Channel {
 public:
  Channel(Simulation& sim, std::size_t capacity = 0)
      : capacity_(capacity), not_empty_(sim), not_full_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking push (suspends while full). Pushing to a closed channel is a
  /// programming error and aborts.
  CoTask<void> push(T v) {
    while (capacity_ != 0 && q_.size() >= capacity_ && !closed_) {
      blocked_pushes_++;
      co_await not_full_.wait();
    }
    if (closed_) std::abort();
    q_.push_back(std::move(v));
    pushes_++;
    if (std::size_t(q_.size()) > max_depth_) max_depth_ = q_.size();
    not_empty_.notify_one();
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T v) {
    if (closed_) return false;
    if (capacity_ != 0 && q_.size() >= capacity_) return false;
    q_.push_back(std::move(v));
    pushes_++;
    if (std::size_t(q_.size()) > max_depth_) max_depth_ = q_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt when closed and empty.
  CoTask<std::optional<T>> pop() {
    while (q_.empty() && !closed_) co_await not_empty_.wait();
    if (q_.empty()) co_return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    co_return std::optional<T>(std::move(v));
  }

  /// Blocking drain: suspends until at least one item is queued (or the
  /// channel closes), then returns everything queued at that moment. One
  /// wakeup serves the whole backlog — the sharded-dispatch receive model,
  /// where a shard worker amortizes its wakeup cost over every frame that
  /// arrived while it slept. An empty result means closed-and-drained.
  CoTask<std::deque<T>> pop_all() {
    while (q_.empty() && !closed_) co_await not_empty_.wait();
    std::deque<T> out;
    out.swap(q_);
    if (!out.empty()) not_full_.notify_all();
    co_return out;
  }

  /// Drain everything currently queued without blocking.
  std::deque<T> drain() {
    std::deque<T> out;
    out.swap(q_);
    not_full_.notify_all();
    return out;
  }

  void close() {
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t total_pushes() const { return pushes_; }
  std::uint64_t blocked_pushes() const { return blocked_pushes_; }
  std::size_t max_depth() const { return max_depth_; }

 private:
  std::size_t capacity_;
  std::deque<T> q_;
  bool closed_ = false;
  CondVar not_empty_;
  CondVar not_full_;
  std::uint64_t pushes_ = 0;
  std::uint64_t blocked_pushes_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace afc::sim
