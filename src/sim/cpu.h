#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/simulation.h"

namespace afc::sim {

/// Multi-core CPU model for one server node: a pool of `cores` service
/// units. `co_await cpu.consume(ns)` occupies one core for `ns` of virtual
/// time (queueing FIFO behind other work when all cores are busy). This is
/// a multi-server queue rather than true processor sharing; it reproduces
/// the behaviour that matters here — saturation and queueing delay once
/// offered CPU work exceeds core capacity (the SimpleMessenger ceiling of
/// the paper's Fig. 12). consume() is a frame-free custom awaiter: one
/// event per grant, because it runs a dozen times per simulated I/O.
class CpuPool {
 public:
  CpuPool(Simulation& sim, unsigned cores) : sim_(sim), cores_(cores), free_(cores) {}
  CpuPool(const CpuPool&) = delete;
  CpuPool& operator=(const CpuPool&) = delete;

  class Consume {
   public:
    Consume(CpuPool& p, Time ns) : p_(p), ns_(ns) {}
    bool await_ready() const { return ns_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      if (p_.free_ > 0) {
        p_.free_--;
        p_.run(h, ns_);
      } else {
        p_.waiters_.push_back(Waiter{h, ns_, p_.sim_.now()});
      }
    }
    void await_resume() const {}

   private:
    CpuPool& p_;
    Time ns_;
  };

  /// Occupy one core for `ns`.
  Consume consume(Time ns) { return Consume(*this, ns); }

  unsigned cores() const { return cores_; }
  Time busy_ns() const { return busy_ns_; }

  /// Fraction of total core-time spent busy since construction.
  double utilization() const {
    const Time elapsed = sim_.now();
    if (elapsed == 0) return 0.0;
    return double(busy_ns_) / (double(elapsed) * double(cores_));
  }

  std::size_t queued() const { return waiters_.size(); }
  Time total_queue_wait_ns() const { return queue_wait_ns_; }

 private:
  friend class Consume;
  struct Waiter {
    std::coroutine_handle<> h;
    Time ns;
    Time enqueued;
  };

  void run(std::coroutine_handle<> h, Time ns) {
    sim_.schedule_after(
        ns,
        [this, h, ns] {
          busy_ns_ += ns;
          if (!waiters_.empty()) {
            Waiter w = waiters_.front();
            waiters_.pop_front();
            queue_wait_ns_ += sim_.now() - w.enqueued;
            run(w.h, w.ns);
          } else {
            free_++;
          }
          h.resume();
        },
        "cpu.grant");
  }

  Simulation& sim_;
  unsigned cores_;
  unsigned free_;
  std::deque<Waiter> waiters_;
  Time busy_ns_ = 0;
  Time queue_wait_ns_ = 0;
};

}  // namespace afc::sim
