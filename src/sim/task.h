#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>
#include <cstdlib>
#include <exception>
#include <optional>
#include <utility>

#include "sim/simulation.h"

namespace afc::sim {

/// Thread-local size-class pool for coroutine frames. The simulator
/// allocates a handful of frames per simulated I/O; recycling them through
/// free lists removes most of the remaining malloc traffic.
class FramePool {
 public:
  static void* alloc(std::size_t sz) {
    const std::size_t cls = size_class(sz);
    if (cls >= kClasses) return ::operator new(sz);
    auto& list = lists()[cls];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      return p;
    }
    return ::operator new((cls + 1) * kGranule);
  }

  static void release(void* p, std::size_t sz) {
    const std::size_t cls = size_class(sz);
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    auto& list = lists()[cls];
    if (list.size() < kMaxPerClass) {
      list.push_back(p);
    } else {
      ::operator delete(p);
    }
  }

 private:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 20;  // up to 1280 bytes pooled
  static constexpr std::size_t kMaxPerClass = 4096;

  static std::size_t size_class(std::size_t sz) { return (sz + kGranule - 1) / kGranule - 1; }
  static std::vector<void*>* lists() {
    thread_local std::vector<void*> lists_[kClasses];
    return lists_;
  }
};

/// Lazily-started awaitable coroutine returning T. The standard structured
/// task shape: a parent `co_await`s a child CoTask; the child starts on
/// await and resumes the parent by symmetric transfer at completion. The
/// frame is destroyed when the CoTask object is destroyed (after the parent
/// consumed the result), so lifetimes nest like ordinary calls.
///
/// Simulated code must not throw across suspension points: an escaped
/// exception terminates the process (a simulator bug, not a recoverable
/// condition).
template <class T>
class [[nodiscard]] CoTask {
  struct Promise;

 public:
  using promise_type = Promise;
  using Handle = std::coroutine_handle<Promise>;

  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  CoTask& operator=(CoTask&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  ~CoTask() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  Handle await_suspend(std::coroutine_handle<> parent) noexcept {
    h_.promise().continuation = parent;
    return h_;  // start the child now
  }
  T await_resume() {
    if constexpr (!std::is_void_v<T>) {
      return std::move(*h_.promise().value);
    }
  }

 private:
  struct PromiseBase {
    std::coroutine_handle<> continuation;

    static void* operator new(std::size_t sz) { return FramePool::alloc(sz); }
    static void operator delete(void* p, std::size_t sz) { FramePool::release(p, sz); }

    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() noexcept { std::terminate(); }
  };

  struct PromiseValue : PromiseBase {
    std::optional<T> value;
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
    CoTask get_return_object() { return CoTask(Handle::from_promise(static_cast<Promise&>(*this))); }
  };
  struct PromiseVoid : PromiseBase {
    void return_void() {}
    CoTask get_return_object() { return CoTask(Handle::from_promise(static_cast<Promise&>(*this))); }
  };
  struct Promise : std::conditional_t<std::is_void_v<T>, PromiseVoid, PromiseValue> {};

  explicit CoTask(Handle h) : h_(h) {}
  Handle h_;
};

/// Root coroutine type for detached ("thread-like") simulated activities.
/// Eagerly started, self-destroying. Use spawn() rather than writing one of
/// these directly.
struct Detached {
  struct promise_type {
    static void* operator new(std::size_t sz) { return FramePool::alloc(sz); }
    static void operator delete(void* p, std::size_t sz) { FramePool::release(p, sz); }
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

namespace detail {
inline Detached spawn_impl(CoTask<void> task) {
  co_await task;
}
template <class Fn>
inline Detached spawn_fn_impl(Fn fn) {
  auto task = fn();
  co_await task;
}
}  // namespace detail

/// Launch `task` as a detached simulated activity. It runs immediately until
/// its first suspension, then continues under the event loop. The coroutine
/// frame is released when the task finishes.
inline void spawn(CoTask<void> task) { detail::spawn_impl(std::move(task)); }

/// Launch `fn()` (returning CoTask<void>) detached, keeping `fn`'s captures
/// alive for the task's whole lifetime. Use when the lambda owns state the
/// coroutine needs (a plain `spawn(lambda())` would drop the captures at the
/// first suspension).
template <class Fn>
void spawn_fn(Fn fn) {
  detail::spawn_fn_impl(std::move(fn));
}

/// Awaitable that suspends the current coroutine for `delay` virtual ns.
/// Even a zero delay yields through the event queue (fair round-robin).
/// `site` feeds the event-loop profiler's per-call-site counts.
class Delay {
 public:
  Delay(Simulation& sim, Time delay, const char* site = "sim.delay")
      : sim_(sim), delay_(delay), site_(site) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.schedule_after(delay_, [h] { h.resume(); }, site_);
  }
  void await_resume() const noexcept {}

 private:
  Simulation& sim_;
  Time delay_;
  const char* site_;
};

inline Delay delay(Simulation& sim, Time d, const char* site = "sim.delay") {
  return Delay(sim, d, site);
}
inline Delay yield(Simulation& sim) { return Delay(sim, 0, "sim.yield"); }

/// Cancellable one-shot sleep. `co_await timer.sleep(d)` suspends for `d`
/// virtual ns and resumes with `true`; a concurrent `cancel()` drops the
/// pending wheel event (no tombstone executes at the deadline) and resumes
/// the sleeper immediately with `false`. One sleep may be in flight per
/// Timer, and the Timer must outlive it — embed it in the owning object
/// (see net::Connection's Nagle stall).
class Timer {
 public:
  explicit Timer(Simulation& sim) : sim_(sim) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  class Sleep {
   public:
    Sleep(Timer& t, Time d) : t_(t), d_(d) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      t_.h_ = h;
      t_.cancelled_ = false;
      t_.armed_ = true;
      t_.token_ = t_.sim_.schedule_after(d_, [t = &t_] { t->fire(); }, "sim.timer");
    }
    /// true: slept the full duration; false: cancel() cut it short.
    bool await_resume() const noexcept { return !t_.cancelled_; }

   private:
    Timer& t_;
    Time d_;
  };

  Sleep sleep(Time d) { return Sleep(*this, d); }

  /// Drop the pending deadline and wake the sleeper now (on the next
  /// event-loop turn, like every resumption). Returns false when no sleep
  /// is in flight or the deadline already fired.
  bool cancel() {
    if (!armed_ || !sim_.cancel(token_)) return false;
    cancelled_ = true;
    sim_.schedule_after(0, [t = this] { t->fire(); }, "sim.timer_cancel");
    return true;
  }

  bool armed() const { return armed_; }

 private:
  void fire() {
    armed_ = false;
    auto h = h_;
    h_ = {};
    h.resume();
  }

  Simulation& sim_;
  std::coroutine_handle<> h_{};
  TimerToken token_;
  bool armed_ = false;
  bool cancelled_ = false;
};

}  // namespace afc::sim
