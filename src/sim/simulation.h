#pragma once

#include <cstdint>
#include <cstddef>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace afc::sim {

/// Fixed-size, trivially-copyable callback for simulator events. Events run
/// millions of times per simulated second; std::function would heap-allocate
/// for most captures. All event lambdas in the simulator capture at most a
/// few pointers/integers, which this stores inline.
class EventFn {
 public:
  template <class F>
  EventFn(F f) {  // NOLINT(google-explicit-constructor): callsite ergonomics
    static_assert(sizeof(F) <= kInlineSize, "event capture too large — shrink it");
    static_assert(std::is_trivially_destructible_v<F> && std::is_trivially_copyable_v<F>,
                  "event captures must be trivial (pointers/handles/ints)");
    new (buf_) F(std::move(f));
    call_ = [](void* p) { (*static_cast<F*>(p))(); };
  }

  void operator()() { call_(buf_); }

 private:
  static constexpr std::size_t kInlineSize = 48;
  alignas(16) unsigned char buf_[kInlineSize];
  void (*call_)(void*);
};

/// Deterministic single-threaded discrete-event simulator.
///
/// All concurrency in the simulated storage cluster is expressed as C++20
/// coroutines (see task.h / sync.h) whose suspensions and resumptions funnel
/// through this event queue. Events with equal timestamps run in insertion
/// order (FIFO tie-break), which makes simulated mutexes and queues fair and
/// runs bit-reproducible for a given seed.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute virtual time `t` (clamped to now()).
  void schedule_at(Time t, EventFn fn);

  /// Schedule `fn` to run `delay` ns from now.
  void schedule_after(Time delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run until the event queue is empty.
  void run();

  /// Run events with timestamp <= `t`; afterwards now() == t (if any events
  /// remained) and later events stay queued. Returns false if the queue
  /// drained before reaching `t`.
  bool run_until(Time t);

  /// Execute exactly one event if available. Returns false on empty queue.
  bool step();

  bool empty() const { return events_.empty(); }
  std::size_t pending_events() const { return events_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace afc::sim
