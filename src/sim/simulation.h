#pragma once

#include <chrono>
#include <cstdint>
#include <cstddef>
#include <map>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace afc::sim {

/// Fixed-size, trivially-copyable callback for simulator events. Events run
/// millions of times per simulated second; std::function would heap-allocate
/// for most captures. All event lambdas in the simulator capture at most a
/// few pointers/integers, which this stores inline.
class EventFn {
 public:
  template <class F>
  EventFn(F f) {  // NOLINT(google-explicit-constructor): callsite ergonomics
    static_assert(sizeof(F) <= kInlineSize, "event capture too large — shrink it");
    static_assert(std::is_trivially_destructible_v<F> && std::is_trivially_copyable_v<F>,
                  "event captures must be trivial (pointers/handles/ints)");
    new (buf_) F(std::move(f));
    call_ = [](void* p) { (*static_cast<F*>(p))(); };
  }

  /// Empty slot placeholder for pooled event storage; never invoked.
  EventFn() : call_(nullptr) {}

  void operator()() { call_(buf_); }

 private:
  static constexpr std::size_t kInlineSize = 48;
  alignas(16) unsigned char buf_[kInlineSize];
  void (*call_)(void*);
};

/// Handle to a scheduled event, returned by schedule_at/schedule_after.
/// Pass it to Simulation::cancel() to drop the event before it runs. Tokens
/// are cheap values; a default-constructed token cancels nothing. The
/// generation field makes tokens single-use: once the event has executed,
/// been cancelled, or its slot recycled, cancel() returns false.
class TimerToken {
 public:
  TimerToken() = default;

 private:
  friend class Simulation;
  TimerToken(std::uint32_t idx, std::uint64_t seq) : idx_(idx), seq_(seq) {}
  std::uint32_t idx_ = ~std::uint32_t(0);
  std::uint64_t seq_ = 0;
};

/// Deterministic single-threaded discrete-event simulator.
///
/// All concurrency in the simulated storage cluster is expressed as C++20
/// coroutines (see task.h / sync.h) whose suspensions and resumptions funnel
/// through this event queue. Events with equal timestamps run in insertion
/// order (FIFO tie-break), which makes simulated mutexes and queues fair and
/// runs bit-reproducible for a given seed.
///
/// The queue is a hierarchical timing wheel (calendar queue): kLevels levels
/// of kSlots slots each, slot width growing by kSlots per level, one 64-bit
/// occupancy bitmap per level. schedule and pop are O(1) amortized (an event
/// is re-bucketed at most once per level as the cursor approaches it), and
/// event storage lives in a slab of recycled slots, so the hot path never
/// touches the allocator and never moves an EventFn more than once. Events
/// beyond the wheel range (~3 days of virtual time) overflow to an ordered
/// map. See docs/MODEL.md ("Simulator core") for the layout and invariants.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute virtual time `t` (clamped to now()).
  /// `site`, if non-null, must be a string literal (or otherwise immortal
  /// string) naming the call site for the profiler's per-site counts.
  TimerToken schedule_at(Time t, EventFn fn, const char* site = nullptr);

  /// Schedule `fn` to run `delay` ns from now.
  TimerToken schedule_after(Time delay, EventFn fn, const char* site = nullptr) {
    return schedule_at(now_ + delay, std::move(fn), site);
  }

  /// Drop a pending event. Returns true if the event was still queued (it
  /// will never run); false if it already ran, was already cancelled, or the
  /// token is stale/default. O(1): the slot is tombstoned and recycled when
  /// the wheel next touches it.
  bool cancel(TimerToken token);

  /// Run until the event queue is empty.
  void run();

  /// Run events with timestamp <= `t`. Afterwards now() == max(now, t) in
  /// *both* outcomes — whether or not the queue drained — so callers can
  /// keep scheduling relative to the horizon they asked for. Returns true
  /// if events remain queued beyond `t`, false if the queue drained.
  bool run_until(Time t);

  /// Execute exactly one event if available. Returns false on empty queue.
  bool step();

  bool empty() const { return live_ == 0; }
  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

  // --- event-loop profiler (opt-in; ~zero cost when disabled) ------------

  /// Start collecting profile counters (queue-depth high-water mark,
  /// per-site schedule counts, wall-clock throughput). Call before run().
  void enable_profiling();
  bool profiling_enabled() const { return profiling_; }

  /// Dump profiler counters into `c` under "sim." keys: executed/scheduled/
  /// cancelled event counts, cascades, queue_depth_hwm, events_per_sim_sec,
  /// events_per_wall_sec, and one "sim.site.<tag>" count per tagged site.
  void profile_into(Counters& c) const;

 private:
  static constexpr unsigned kLevelBits = 6;
  static constexpr unsigned kSlots = 1u << kLevelBits;          // 64
  static constexpr unsigned kLevels = 8;                        // 64^8 ns ≈ 3.26 days
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr Time kRange = Time(1) << (kLevelBits * kLevels);
  static constexpr std::uint32_t kNil = ~std::uint32_t(0);

  struct Event {
    EventFn fn;          // 64 bytes, align 16
    Time t = 0;
    std::uint64_t seq = 0;  // 0 = slot free (live seqs start at 1)
    std::uint32_t next = kNil;
    bool cancelled = false;
  };
  struct Slot {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);
  /// Bucket a pending node by its timestamp relative to cur_.
  void place(std::uint32_t idx);
  void append(unsigned level, unsigned slot, std::uint32_t idx);
  /// Relink a level-0 slot in seq order (cascades can append out of order).
  void sort_slot(unsigned level, unsigned slot);
  /// Advance cur_ (cascading higher levels, pruning cancelled heads,
  /// migrating overflow) until the level-0 slot holding the next live event
  /// is at hand. Returns false when no live events remain.
  /// Locates the next pending tick, cascading/migrating as needed, but never
  /// commits the cursor past `horizon`: run_until(t) must leave the wheel
  /// able to accept schedule_at(now() == t) afterwards.
  bool find_next(Time* tick, Time horizon);
  /// Pop and run the head of the level-0 slot located by find_next().
  void execute_one(Time tick);

  std::vector<Event> pool_;
  std::vector<std::uint32_t> free_;
  Slot slots_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};
  std::uint64_t unsorted_[kLevels] = {};
  std::multimap<Time, std::uint32_t> overflow_;  // t >= cur_ + kRange
  std::vector<std::uint32_t> scratch_;           // sort_slot workspace

  Time now_ = 0;
  Time cur_ = 0;  // wheel cursor: now_ <= observable time, cur_ <= next event
  std::uint64_t seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet executed or cancelled

  // Profiler state (all updates gated on profiling_).
  bool profiling_ = false;
  std::uint64_t prof_scheduled_ = 0;
  std::uint64_t prof_cancelled_ = 0;
  std::uint64_t prof_cascaded_ = 0;
  std::uint64_t prof_executed_at_enable_ = 0;
  std::size_t prof_depth_hwm_ = 0;
  std::chrono::steady_clock::time_point prof_wall_start_;
  std::map<std::string, std::uint64_t> prof_sites_;
};

}  // namespace afc::sim
