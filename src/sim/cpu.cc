#include "sim/cpu.h"

// CpuPool is header-only (hot path); this TU keeps the module list uniform.
namespace afc::sim {}
