#include "sim/simulation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace afc::sim {

namespace {

inline std::uint64_t rotr64(std::uint64_t x, unsigned r) {
  return r == 0 ? x : (x >> r) | (x << (64 - r));
}

}  // namespace

std::uint32_t Simulation::alloc_node() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  pool_.emplace_back();
  return std::uint32_t(pool_.size() - 1);
}

void Simulation::free_node(std::uint32_t idx) {
  pool_[idx].seq = 0;  // invalidate outstanding TimerTokens
  free_.push_back(idx);
}

void Simulation::append(unsigned level, unsigned slot, std::uint32_t idx) {
  Slot& s = slots_[level][slot];
  pool_[idx].next = kNil;
  if (s.head == kNil) {
    s.head = s.tail = idx;
    occupied_[level] |= std::uint64_t(1) << slot;
  } else {
    // Cascades can deliver an older (smaller-seq) event behind a newer one;
    // remember that this slot needs a seq sort before execution.
    if (pool_[s.tail].seq > pool_[idx].seq) unsorted_[level] |= std::uint64_t(1) << slot;
    pool_[s.tail].next = idx;
    s.tail = idx;
  }
}

void Simulation::place(std::uint32_t idx) {
  const Time t = pool_[idx].t;
  assert(t >= cur_);
  for (unsigned k = 0; k < kLevels; k++) {
    const unsigned shift = kLevelBits * k;
    if ((t >> shift) - (cur_ >> shift) < kSlots) {
      append(k, unsigned((t >> shift) & kSlotMask), idx);
      return;
    }
  }
  overflow_.emplace(t, idx);
}

TimerToken Simulation::schedule_at(Time t, EventFn fn, const char* site) {
  if (t < now_) t = now_;
  const std::uint32_t idx = alloc_node();
  Event& e = pool_[idx];
  e.fn = fn;
  e.t = t;
  e.seq = seq_++;
  e.next = kNil;
  e.cancelled = false;
  live_++;
  place(idx);
  if (profiling_) {
    prof_scheduled_++;
    if (live_ > prof_depth_hwm_) prof_depth_hwm_ = live_;
    if (site != nullptr) prof_sites_[site]++;
  }
  return TimerToken(idx, e.seq);
}

bool Simulation::cancel(TimerToken token) {
  if (token.idx_ >= pool_.size() || token.seq_ == 0) return false;
  Event& e = pool_[token.idx_];
  if (e.seq != token.seq_ || e.cancelled) return false;
  e.cancelled = true;  // tombstone; the node is recycled when the wheel
  live_--;             // next walks its slot
  if (profiling_) prof_cancelled_++;
  return true;
}

void Simulation::sort_slot(unsigned level, unsigned slot) {
  Slot& s = slots_[level][slot];
  scratch_.clear();
  for (std::uint32_t n = s.head; n != kNil; n = pool_[n].next) scratch_.push_back(n);
  std::sort(scratch_.begin(), scratch_.end(),
            [this](std::uint32_t a, std::uint32_t b) { return pool_[a].seq < pool_[b].seq; });
  s.head = scratch_.front();
  s.tail = scratch_.back();
  for (std::size_t i = 0; i + 1 < scratch_.size(); i++) pool_[scratch_[i]].next = scratch_[i + 1];
  pool_[s.tail].next = kNil;
  unsorted_[level] &= ~(std::uint64_t(1) << slot);
}

bool Simulation::find_next(Time* tick, Time horizon) {
  if (live_ == 0) return false;
  for (;;) {
    // Pull overflow events into the wheel once they come in range. If the
    // wheel itself is empty the cursor can jump straight to the overflow
    // minimum (nothing pending in between).
    if (!overflow_.empty()) {
      bool wheel_empty = true;
      for (unsigned k = 0; k < kLevels; k++) wheel_empty = wheel_empty && occupied_[k] == 0;
      if (wheel_empty && overflow_.begin()->first > cur_) {
        if (overflow_.begin()->first > horizon) return false;
        cur_ = overflow_.begin()->first;
      }
      // In-range means place() will accept at the top level; testing t-cur_
      // against kRange instead would pull events the top level still rejects
      // (cursor mid-slot) and bounce them back to overflow forever.
      const unsigned top_shift = kLevelBits * (kLevels - 1);
      while (!overflow_.empty() &&
             (overflow_.begin()->first >> top_shift) - (cur_ >> top_shift) < kSlots) {
        const std::uint32_t idx = overflow_.begin()->second;
        overflow_.erase(overflow_.begin());
        if (pool_[idx].cancelled) {
          free_node(idx);
        } else {
          place(idx);
        }
      }
    }

    // Locate the slot with the smallest base time across levels. Any event
    // in a level-k slot has t >= that slot's base, so the minimum base is a
    // safe cursor advance and (at level 0) the exact next timestamp.
    int best_level = -1;
    unsigned best_slot = 0;
    Time best_base = 0;
    for (unsigned k = 0; k < kLevels; k++) {
      if (occupied_[k] == 0) continue;
      const unsigned shift = kLevelBits * k;
      const unsigned idx = unsigned((cur_ >> shift) & kSlotMask);
      const unsigned j = unsigned(std::countr_zero(rotr64(occupied_[k], idx)));
      const Time base = ((cur_ >> shift) + j) << shift;
      // <= so a base tie goes to the HIGHER level: a level-k slot with the
      // same base as a level-0 slot can hold older-seq events for that very
      // tick, and must cascade into it before the slot executes (the merge
      // flags the slot unsorted; sort_slot restores seq order).
      if (best_level < 0 || base <= best_base) {
        best_level = int(k);
        best_slot = (idx + j) & kSlotMask;
        best_base = base;
      }
    }
    if (best_level < 0) continue;  // wheel drained into overflow; loop migrates
    // Nothing due by the horizon: stop before moving the cursor, so the
    // caller (run_until) leaves the wheel able to accept events at any
    // t >= horizon — including schedule_at(now() == horizon) right after.
    if (best_base > horizon) return false;

    if (best_level == 0) {
      Slot& s = slots_[0][best_slot];
      if (unsorted_[0] & (std::uint64_t(1) << best_slot)) sort_slot(0, best_slot);
      // Free tombstoned heads; the slot may turn out fully cancelled.
      while (s.head != kNil && pool_[s.head].cancelled) {
        const std::uint32_t dead = s.head;
        s.head = pool_[dead].next;
        free_node(dead);
      }
      if (s.head == kNil) {
        s.tail = kNil;
        occupied_[0] &= ~(std::uint64_t(1) << best_slot);
        continue;
      }
      cur_ = best_base;  // == head event's timestamp (level-0 slots span 1 ns)
      *tick = best_base;
      return true;
    }

    // Cascade: advance the cursor to the slot's base and re-bucket its
    // events one level (or more) down. Strictly descends: relative to the
    // new cursor every event in the slot is within the level below. The
    // base can be <= cur_ when the slot is the cursor's own window (its
    // events landed there before the cursor entered); never move backward,
    // or level-0 distance math would break.
    if (best_base > cur_) cur_ = best_base;
    Slot& s = slots_[best_level][best_slot];
    std::uint32_t n = s.head;
    s.head = s.tail = kNil;
    occupied_[best_level] &= ~(std::uint64_t(1) << best_slot);
    unsorted_[best_level] &= ~(std::uint64_t(1) << best_slot);
    while (n != kNil) {
      const std::uint32_t next = pool_[n].next;
      if (pool_[n].cancelled) {
        free_node(n);
      } else {
        place(n);
        if (profiling_) prof_cascaded_++;
      }
      n = next;
    }
  }
}

void Simulation::execute_one(Time tick) {
  Slot& s = slots_[0][tick & kSlotMask];
  const std::uint32_t idx = s.head;
  s.head = pool_[idx].next;
  if (s.head == kNil) {
    s.tail = kNil;
    occupied_[0] &= ~(std::uint64_t(1) << (tick & kSlotMask));
  }
  // Copy the callback out before freeing: the slab may grow (and the slot
  // be reused) while the event body schedules new work.
  EventFn fn = pool_[idx].fn;
  free_node(idx);
  now_ = cur_ = tick;
  live_--;
  executed_++;
  fn();
}

bool Simulation::step() {
  Time tick;
  if (!find_next(&tick, ~Time(0))) return false;
  execute_one(tick);
  return true;
}

void Simulation::run() {
  Time tick;
  while (find_next(&tick, ~Time(0))) execute_one(tick);
}

bool Simulation::run_until(Time t) {
  Time tick;
  while (find_next(&tick, t)) execute_one(tick);
  if (now_ < t) now_ = t;
  return live_ > 0;
}

void Simulation::enable_profiling() {
  profiling_ = true;
  prof_wall_start_ = std::chrono::steady_clock::now();
  prof_executed_at_enable_ = executed_;
}

void Simulation::profile_into(Counters& c) const {
  c.add("sim.events_executed", executed_);
  c.add("sim.events_scheduled", prof_scheduled_);
  c.add("sim.events_cancelled", prof_cancelled_);
  c.add("sim.events_cascaded", prof_cascaded_);
  c.add("sim.queue_depth", live_);
  c.add("sim.queue_depth_hwm", prof_depth_hwm_);
  if (now_ > 0) {
    c.add("sim.events_per_sim_sec", std::uint64_t(double(executed_) / to_s(now_)));
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - prof_wall_start_).count();
  if (wall_s > 0) {
    c.add("sim.events_per_wall_sec",
          std::uint64_t(double(executed_ - prof_executed_at_enable_) / wall_s));
  }
  for (const auto& [site, count] : prof_sites_) c.add("sim.site." + site, count);
}

}  // namespace afc::sim
