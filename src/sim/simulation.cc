#include "sim/simulation.h"

#include <utility>

namespace afc::sim {

void Simulation::schedule_at(Time t, EventFn fn) {
  if (t < now_) t = now_;
  events_.push(Event{t, seq_++, std::move(fn)});
}

bool Simulation::step() {
  if (events_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately and never re-heapify the moved-from element.
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = ev.t;
  executed_++;
  ev.fn();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::run_until(Time t) {
  while (!events_.empty() && events_.top().t <= t) step();
  if (events_.empty()) return false;
  now_ = t;
  return true;
}

}  // namespace afc::sim
