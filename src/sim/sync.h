#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/simulation.h"
#include "sim/task.h"

namespace afc::sim {

/// Result of a timed wait. An enum rather than a bool so call sites read
/// unambiguously: `if (co_await cv.wait_for(t) == TimedOut::kYes)` cannot be
/// inverted silently the way `if (co_await cv.wait_for(t))` could (where the
/// reader must remember whether true meant "notified" or "expired").
enum class TimedOut { kNo, kYes };

/// Condition variable for simulated coroutines. Because the simulator is
/// single-threaded and resumptions go through the event queue, no mutex is
/// needed: callers re-check their predicate in a `while` loop and notify
/// *after* mutating state, which rules out lost wakeups.
class CondVar {
 public:
  explicit CondVar(Simulation& sim) : sim_(sim) {}

  class Waiter {
   public:
    explicit Waiter(CondVar& cv) : cv_(cv) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { cv_.waiters_.push_back(WaitNode{h, nullptr}); }
    void await_resume() const noexcept {}

   private:
    CondVar& cv_;
  };

  /// Timed wait: resumes on notify (await returns TimedOut::kNo) or after
  /// `timeout` ns (TimedOut::kYes). Whichever side loses drops its pending
  /// state at cancel time — a notify cancels the deadline event off the
  /// timing wheel (no tombstone executes later), a timeout removes the
  /// waiter from the notify queue.
  class TimedWaiter {
   public:
    TimedWaiter(CondVar& cv, Time timeout) : cv_(cv), timeout_(timeout) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      h_ = h;
      cv_.waiters_.push_back(WaitNode{h, this});
      token_ = cv_.sim_.schedule_after(timeout_, [w = this] { w->on_timeout(); },
                                       "sync.cv_timeout");
    }
    TimedOut await_resume() const noexcept {
      return timed_out_ ? TimedOut::kYes : TimedOut::kNo;
    }

   private:
    friend class CondVar;
    void on_timeout();
    CondVar& cv_;
    Time timeout_;
    std::coroutine_handle<> h_{};
    TimerToken token_;
    bool timed_out_ = false;
  };

  /// Suspend until notified (spurious wakeups possible; re-check predicate).
  Waiter wait() { return Waiter(*this); }

  /// Suspend until notified or `timeout` ns pass; see TimedWaiter.
  TimedWaiter wait_for(Time timeout) { return TimedWaiter(*this, timeout); }

  void notify_one();
  void notify_all();

  std::size_t waiters() const { return waiters_.size(); }

 private:
  friend class Waiter;
  friend class TimedWaiter;
  struct WaitNode {
    std::coroutine_handle<> h;
    TimedWaiter* timed;  // null for plain wait()
  };
  Simulation& sim_;
  std::deque<WaitNode> waiters_;
};

/// FIFO mutex for simulated coroutines, with contention statistics: the
/// placement-group lock of the paper is one of these, and Fig. 3's
/// "PG-lock wait" measurements are read straight from these counters.
class Mutex {
 public:
  explicit Mutex(Simulation& sim) : sim_(sim) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  class Locker {
   public:
    Locker(Mutex& m) : m_(m) {}
    bool await_ready() {
      if (!m_.locked_) {
        m_.locked_ = true;
        m_.acquisitions_++;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      t0_ = m_.sim_.now();
      m_.contended_++;
      m_.waiters_.push_back(h);
    }
    void await_resume() {
      // On the contended path ownership was transferred by unlock();
      // account the time we spent queued.
      if (t0_ != kNoWait) m_.total_wait_ns_ += m_.sim_.now() - t0_;
    }

   private:
    static constexpr Time kNoWait = ~Time(0);
    Mutex& m_;
    Time t0_ = kNoWait;
  };

  /// `co_await mutex.lock()`. FIFO handoff: unlock passes ownership to the
  /// longest-waiting coroutine.
  Locker lock() { return Locker(*this); }

  /// Non-blocking acquire; returns true on success.
  bool try_lock();

  void unlock();

  bool is_locked() const { return locked_; }
  std::size_t waiters() const { return waiters_.size(); }

  // Contention statistics (virtual-time).
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended_acquisitions() const { return contended_; }
  Time total_wait_ns() const { return total_wait_ns_; }

 private:
  friend class Locker;
  Simulation& sim_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
  Time total_wait_ns_ = 0;
};

/// RAII guard for sim::Mutex. Acquire with `co_await`:
///   auto g = co_await ScopedLock::acquire(mutex);
class ScopedLock {
 public:
  static CoTask<ScopedLock> acquire(Mutex& m) {
    co_await m.lock();
    co_return ScopedLock(&m);
  }
  ScopedLock(ScopedLock&& o) noexcept : m_(std::exchange(o.m_, nullptr)) {}
  ScopedLock& operator=(ScopedLock&& o) noexcept {
    if (this != &o) {
      release();
      m_ = std::exchange(o.m_, nullptr);
    }
    return *this;
  }
  ~ScopedLock() { release(); }
  void release() {
    if (m_) {
      m_->unlock();
      m_ = nullptr;
    }
  }

 private:
  explicit ScopedLock(Mutex* m) : m_(m) {}
  Mutex* m_;
};

/// Weighted FIFO counting semaphore. Models device channel pools, CPU
/// cores, and the paper's throttles (filestore_queue_max_ops/bytes,
/// osd_client_message_cap): `co_await sem.acquire(n)` blocks while fewer
/// than n units are available, and waiters are served strictly in order
/// (so a big request is not starved by small ones). acquire() is a custom
/// awaiter (no coroutine frame) because it sits on every hot path of the
/// simulator.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::uint64_t initial)
      : sim_(sim), available_(initial), capacity_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  class Acquire {
   public:
    Acquire(Semaphore& s, std::uint64_t n) : s_(s), n_(n) {}
    bool await_ready() {
      s_.acquires_++;
      if (s_.waiters_.empty() && s_.available_ >= n_) {
        s_.available_ -= n_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      s_.blocked_++;
      enqueued_ = s_.sim_.now();
      handle_ = h;
      s_.waiters_.push_back(this);
    }
    void await_resume() {
      if (handle_) s_.total_wait_ns_ += s_.sim_.now() - enqueued_;
    }

   private:
    friend class Semaphore;
    Semaphore& s_;
    std::uint64_t n_;
    Time enqueued_ = 0;
    std::coroutine_handle<> handle_;
  };

  Acquire acquire(std::uint64_t n = 1) { return Acquire(*this, n); }
  bool try_acquire(std::uint64_t n = 1);
  void release(std::uint64_t n = 1);

  /// Change capacity at runtime (throttle re-tuning); extra units become
  /// available immediately, reductions take effect as units drain.
  void set_capacity(std::uint64_t cap);

  std::uint64_t available() const { return available_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t in_use() const { return capacity_ > available_ ? capacity_ - available_ : 0; }
  std::size_t waiters() const { return waiters_.size(); }

  std::uint64_t total_acquires() const { return acquires_; }
  std::uint64_t blocked_acquires() const { return blocked_; }
  Time total_wait_ns() const { return total_wait_ns_; }

 private:
  friend class Acquire;
  void dispatch_waiters();

  Simulation& sim_;
  std::uint64_t available_;
  std::uint64_t capacity_;
  std::deque<Acquire*> waiters_;
  std::uint64_t acquires_ = 0;
  std::uint64_t blocked_ = 0;
  Time total_wait_ns_ = 0;
};

/// Fork/join helper: add() before spawning, done() in each task, and
/// `co_await wg.wait()` to join.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : cv_(sim) {}

  void add(std::uint64_t n = 1) { outstanding_ += n; }
  void done();
  CoTask<void> wait();
  std::uint64_t outstanding() const { return outstanding_; }

 private:
  CondVar cv_;
  std::uint64_t outstanding_ = 0;
};

/// One-shot event: wait() suspends until set() is called (then never blocks
/// again). Used for per-op completion signalling.
class OneShot {
 public:
  explicit OneShot(Simulation& sim) : cv_(sim) {}
  CoTask<void> wait() {
    while (!set_) co_await cv_.wait();
  }
  /// Wait with a deadline: TimedOut::kNo if set() arrived within `timeout`
  /// ns, TimedOut::kYes otherwise. Only set() notifies, so a single timed
  /// wait suffices (no spurious wakeups).
  CoTask<TimedOut> wait_for(Time timeout) {
    if (!set_) co_await cv_.wait_for(timeout);
    co_return set_ ? TimedOut::kNo : TimedOut::kYes;
  }
  void set() {
    set_ = true;
    cv_.notify_all();
  }
  bool is_set() const { return set_; }

 private:
  CondVar cv_;
  bool set_ = false;
};

}  // namespace afc::sim
