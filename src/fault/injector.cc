#include "fault/injector.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "common/stage_names.h"
#include "core/trace.h"
#include "ec/layout.h"
#include "osd/ec_rebuild.h"

namespace afc::fault {

FaultInjector::FaultInjector(sim::Simulation& sim, cluster::ClusterMap& cmap,
                             std::vector<osd::Osd*> osds, std::vector<dev::SsdModel*> ssds,
                             std::vector<net::Messenger*> endpoints, std::uint64_t seed)
    : sim_(sim),
      cmap_(cmap),
      osds_(std::move(osds)),
      ssds_(std::move(ssds)),
      endpoints_(std::move(endpoints)),
      seed_(seed) {}

void FaultInjector::install(const FaultPlan& plan) {
  if (installed_) return;
  installed_ = true;
  plan_ = plan;
  for (std::size_t i = 0; i < plan_.events.size(); i++) {
    const FaultEvent& e = plan_.events[i];
    sim_.schedule_at(e.at, [this, i] { apply(i); }, "fault.apply");
    const bool auto_clears = e.kind == FaultKind::kSsdSlow || e.kind == FaultKind::kLinkDrop ||
                             e.kind == FaultKind::kLinkDelay ||
                             e.kind == FaultKind::kLinkPartition;
    if (auto_clears && e.duration > 0) {
      sim_.schedule_at(e.at + e.duration, [this, i] { clear(i); }, "fault.clear");
    }
  }
}

void FaultInjector::trace_event(std::size_t idx) {
  if (auto* tr = trace::Collector::active()) {
    tr->instant(trace::Span{std::uint64_t(idx) + 1, trace::kFaultTrack},
                tr->stage_id(stage::kFaultInject), sim_.now());
  }
}

void FaultInjector::apply(std::size_t idx) {
  const FaultEvent& e = plan_.events[idx];
  if (e.osd >= osds_.size()) return;
  counters_.add(std::string("fault.") + kind_name(e.kind));
  trace_event(idx);
  switch (e.kind) {
    case FaultKind::kOsdCrash:
      do_crash(e.osd);
      break;
    case FaultKind::kOsdRestart:
      do_restart(e.osd);
      break;
    case FaultKind::kSsdSlow:
      ssds_[e.osd]->set_slow_factor(e.factor);
      break;
    case FaultKind::kLinkDrop: {
      net::Connection::Fault f;
      f.drop_p = e.p;
      set_link_fault(e.osd, e.peer, f);
      break;
    }
    case FaultKind::kLinkDelay: {
      net::Connection::Fault f;
      f.added_delay = e.added_ns;
      set_link_fault(e.osd, e.peer, f);
      break;
    }
    case FaultKind::kLinkPartition: {
      net::Connection::Fault f;
      f.partitioned = true;
      set_link_fault(e.osd, e.peer, f);
      break;
    }
    case FaultKind::kJournalStall:
      // Every write-ahead ring the OSD owns stalls: a device hiccup does not
      // pick between the external journal and a store-internal WAL.
      osds_[e.osd]->journal().stall_until(sim_.now() + e.duration);
      if (fs::Journal* w = osds_[e.osd]->store().wal(); w != nullptr) {
        w->stall_until(sim_.now() + e.duration);
      }
      break;
    case FaultKind::kBitFlip: {
      // Seeded per event so two flips in one plan pick independent victims.
      const std::uint64_t s = seed_ ^ (0x9e3779b97f4a7c15ull * (idx + 1));
      bool hit;
      if (e.media == 1) {
        // Journal media: the external ring, or — when the store owns the
        // only write-ahead ring (FlashStore) — that store's WAL.
        hit = osds_[e.osd]->journal().corrupt_record(s);
        if (fs::Journal* w = osds_[e.osd]->store().wal(); !hit && w != nullptr) {
          hit = w->corrupt_record(s);
        }
      } else {
        hit = e.media == 2 ? corrupt_parity_shard(e.osd, s)
                           : corrupt_scrubbed_object(e.osd, s);
      }
      if (!hit) counters_.add("fault.bit_flip_noop");
      break;
    }
    case FaultKind::kTornWrite: {
      const std::uint64_t s = seed_ ^ (0x9e3779b97f4a7c15ull * (idx + 1));
      std::size_t torn = osds_[e.osd]->journal().inject_torn_write(s);
      if (fs::Journal* w = osds_[e.osd]->store().wal(); w != nullptr) {
        torn += w->inject_torn_write(s);
      }
      if (torn > 0) counters_.add("fault.torn_entries", torn);
      // The tear is the last thing the daemon does: it dies mid-persist.
      do_crash(e.osd);
      break;
    }
  }
}

void FaultInjector::clear(std::size_t idx) {
  const FaultEvent& e = plan_.events[idx];
  if (e.osd >= osds_.size()) return;
  counters_.add("fault.cleared");
  switch (e.kind) {
    case FaultKind::kSsdSlow:
      ssds_[e.osd]->set_slow_factor(1.0);
      break;
    case FaultKind::kLinkDrop:
    case FaultKind::kLinkDelay:
    case FaultKind::kLinkPartition:
      set_link_fault(e.osd, e.peer, net::Connection::Fault{});
      break;
    default:
      break;
  }
}

bool FaultInjector::corrupt_scrubbed_object(std::uint32_t osd, std::uint64_t seed) {
  // Flip a byte in a replica the scrub will actually audit: an object of a
  // PG this OSD currently serves. Stale copies left behind by old backfills
  // are resident too, but no acting set references them, so corrupting one
  // would be invisible to every detector the model has.
  std::vector<fs::ObjectId> oids;
  for (std::uint32_t pg = 0; pg < cmap_.pool().pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    if (std::find(acting.begin(), acting.end(), osd) == acting.end()) continue;
    auto in_pg = osds_[osd]->store().objects_in_pg(pg);
    oids.insert(oids.end(), in_pg.begin(), in_pg.end());
  }
  if (oids.empty()) return false;
  std::sort(oids.begin(), oids.end());  // seeded pick independent of hash order
  Rng rng(seed ^ 0xB17F11Dull);
  // Linear probe from a seeded start: corrupt_object() refuses objects with
  // no resident extent data.
  const std::size_t start = rng.uniform_int(0, oids.size() - 1);
  for (std::size_t k = 0; k < oids.size(); k++) {
    if (osds_[osd]->store().corrupt_object(oids[(start + k) % oids.size()])) return true;
  }
  return false;
}

bool FaultInjector::corrupt_parity_shard(std::uint32_t osd, std::uint64_t seed) {
  if (!cmap_.erasure()) return false;
  const unsigned k = cmap_.ec_k();
  // Same audit-visibility rule as corrupt_scrubbed_object, narrowed to
  // parity: only shards the acting set maps to this OSD at a parity
  // position count.
  std::vector<fs::ObjectId> oids;
  for (std::uint32_t pg = 0; pg < cmap_.pool().pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    for (const auto& oid : osds_[osd]->store().objects_in_pg(pg)) {
      auto sn = ec::parse_shard(oid.name);
      if (!sn.has_value() || sn->shard < k) continue;
      if (sn->shard < acting.size() && acting[sn->shard] == osd) oids.push_back(oid);
    }
  }
  if (oids.empty()) return false;
  std::sort(oids.begin(), oids.end());
  Rng rng(seed ^ 0xB17F11Dull);
  const std::size_t start = rng.uniform_int(0, oids.size() - 1);
  for (std::size_t i = 0; i < oids.size(); i++) {
    if (osds_[osd]->store().corrupt_object(oids[(start + i) % oids.size()])) return true;
  }
  return false;
}

void FaultInjector::set_link_fault(std::uint32_t osd, std::uint32_t peer,
                                   const net::Connection::Fault& f) {
  net::Messenger* a = &osds_[osd]->messenger();
  net::Messenger* b = nullptr;
  if (peer == kMonPeer) {
    if (mon_ == nullptr) return;
    b = mon_;
  } else if (peer != kAllPeers) {
    if (peer >= osds_.size()) return;
    b = &osds_[peer]->messenger();
  }
  std::uint64_t n = 0;
  for (net::Messenger* m : endpoints_) {
    for (const auto& conn : m->connections()) {
      net::Connection* c = conn.get();
      const bool touches_a = &c->local() == a || &c->remote() == a;
      if (!touches_a) continue;
      if (b != nullptr && &c->local() != b && &c->remote() != b) continue;
      if (f.any()) {
        // One deterministic drop stream per (plan seed, connection index).
        c->set_fault(f, seed_ ^ (0x9e3779b97f4a7c15ull * (n + 1)));
      } else {
        c->clear_fault();
      }
      n++;
    }
  }
}

void FaultInjector::do_crash(std::uint32_t osd) {
  if (detected_) {
    // Purely physical: the daemon dies — messenger blackholed, volatile
    // state dropped. No CRUSH flip, no epoch bump, no retarget: peers must
    // *notice* via heartbeats and the monitor must arbitrate the mark-down.
    if (osds_[osd]->messenger().blackholed()) return;  // already dead
    osds_[osd]->messenger().set_blackhole(true);
    osds_[osd]->on_crash();
    return;
  }
  if (!cmap_.crush().osds()[osd].up) return;  // already down
  std::vector<std::vector<std::uint32_t>> old_acting(cmap_.pool().pg_num);
  for (std::uint32_t pg = 0; pg < cmap_.pool().pg_num; pg++) old_acting[pg] = cmap_.acting(pg);
  osds_[osd]->messenger().set_blackhole(true);
  osds_[osd]->on_crash();
  cmap_.crush().set_up(osd, false);
  cmap_.bump_epoch();
  retarget_pgs(old_acting);
}

void FaultInjector::do_restart(std::uint32_t osd) {
  if (detected_) {
    if (!osds_[osd]->messenger().blackholed()) return;  // never crashed
    if (osd < ssds_.size()) ssds_[osd]->note_daemon_restart();
    sim::spawn_fn([this, osd]() -> sim::CoTask<void> {
      // Replay first, exactly like the oracle path; then the boot beacon is
      // the detected-mode mark-up — the monitor bumps the epoch, publishes,
      // and the surviving primaries backfill what the daemon missed.
      co_await osds_[osd]->on_restart();
      osds_[osd]->messenger().set_blackhole(false);
      osds_[osd]->announce_boot();
    });
    return;
  }
  if (cmap_.crush().osds()[osd].up) return;  // never crashed / already back
  // The FTL idled through the downtime and caught up on deferred erase
  // work; the fresh daemon does not inherit the dead one's GC debt. (Wear
  // counters — gc_stalls, clean budget — survive: they are media state.)
  if (osd < ssds_.size()) ssds_[osd]->note_daemon_restart();
  sim::spawn_fn([this, osd]() -> sim::CoTask<void> {
    // Journal replay runs to completion while the daemon is still down
    // (marked out, blackholed): locally durable writes come back from the
    // ring before any client op or backfill push can land, so a replayed
    // record can never clobber data written during the downtime — and
    // backfill then covers strictly less.
    co_await osds_[osd]->on_restart();
    if (cmap_.crush().osds()[osd].up) co_return;  // raced with another restart
    std::vector<std::vector<std::uint32_t>> old_acting(cmap_.pool().pg_num);
    for (std::uint32_t pg = 0; pg < cmap_.pool().pg_num; pg++)
      old_acting[pg] = cmap_.acting(pg);
    osds_[osd]->messenger().set_blackhole(false);
    cmap_.crush().set_up(osd, true);
    cmap_.bump_epoch();
    retarget_pgs(old_acting);
  });
}

void FaultInjector::retarget_pgs(const std::vector<std::vector<std::uint32_t>>& old_acting) {
  if (cmap_.erasure()) {
    retarget_pgs_ec(old_acting);
    return;
  }
  for (std::uint32_t pg = 0; pg < cmap_.pool().pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    if (acting == old_acting[pg]) continue;
    osd::Osd* source = nullptr;
    for (std::uint32_t member : old_acting[pg]) {
      if (cmap_.crush().osds()[member].up) {
        source = osds_[member];
        break;
      }
    }
    for (std::uint32_t member : acting) {
      osds_[member]->set_pg_acting(pg, {acting.begin(), acting.end()});
      const bool newcomer =
          std::find(old_acting[pg].begin(), old_acting[pg].end(), member) ==
          old_acting[pg].end();
      if (newcomer && source != nullptr && source != osds_[member]) {
        // Asynchronous backfill: the data path keeps running while the PG
        // re-replicates (Ceph recovers in the background too).
        counters_.add("fault.backfills");
        osd::Osd* src = source;
        osd::Osd* dst = osds_[member];
        const std::uint32_t pgid = pg;
        sim::spawn_fn([src, dst, pgid]() -> sim::CoTask<void> {
          co_await src->push_pg(pgid, *dst);
        });
      }
    }
  }
}

void FaultInjector::retarget_pgs_ec(const std::vector<std::vector<std::uint32_t>>& old_acting) {
  for (std::uint32_t pg = 0; pg < cmap_.pool().pg_num; pg++) {
    const auto& acting = cmap_.acting(pg);
    if (acting == old_acting[pg]) continue;
    for (std::uint32_t member : acting) {
      if (member == cluster::ClusterMap::kNoOsd) continue;
      osds_[member]->set_pg_acting(pg, {acting.begin(), acting.end()});
    }
    // ec_remap pins survivors to their slots, so exactly the changed
    // positions need their shard decoded back from k surviving peers.
    for (unsigned pos = 0; pos < acting.size(); pos++) {
      const std::uint32_t member = acting[pos];
      if (member == cluster::ClusterMap::kNoOsd) continue;
      const bool changed =
          pos >= old_acting[pg].size() || old_acting[pg][pos] != member;
      if (!changed) continue;
      counters_.add("fault.ec_rebuilds");
      const std::uint32_t pgid = pg;
      sim::spawn_fn([this, pgid, pos, member]() -> sim::CoTask<void> {
        co_await osd::ec_rebuild_position(sim_, cmap_, osds_, pgid, pos, *osds_[member]);
      });
    }
  }
}

}  // namespace afc::fault
