#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace afc::fault {

/// The nine injectable fault kinds. Each is something the paper's testbed
/// can suffer in production: daemon death, flash wear-out outliers, flaky
/// or partitioned cluster links, journal-device hiccups, and the media
/// corruption classes (bit rot, torn writes) the integrity layer exists
/// to catch.
enum class FaultKind {
  kOsdCrash,       // daemon dies: blackholed + marked down (CRUSH re-targets)
  kOsdRestart,     // daemon returns: un-blackholed, marked up, backfilled
  kSsdSlow,        // data-SSD service times x `factor` for `duration`
  kLinkDrop,       // links touching (osd, peer) drop each packet w.p. `p`
  kLinkDelay,      // links touching (osd, peer) gain `added_ns` propagation
  kLinkPartition,  // links touching (osd, peer) deliver nothing
  kJournalStall,   // the OSD's journal writer freezes for `duration`
  kBitFlip,        // flip a byte: data extent (`media`=0), journal record (1),
                   // or an EC parity shard's extent (2)
  kTornWrite,      // next journal batch persists only a prefix, then the daemon dies
};

const char* kind_name(FaultKind k);

/// One scheduled fault. Which fields matter depends on `kind`; unused
/// fields keep their defaults. `duration == 0` on a link/SSD fault means
/// it never auto-clears.
struct FaultEvent {
  Time at = 0;
  FaultKind kind = FaultKind::kOsdCrash;
  std::uint32_t osd = 0;   // target OSD id
  std::uint32_t peer = 0;  // link faults: the other endpoint (kAllPeers = every link)
  double factor = 1.0;     // kSsdSlow: latency multiplier
  double p = 0.0;          // kLinkDrop: per-message drop probability
  Time added_ns = 0;       // kLinkDelay: extra propagation latency
  Time duration = 0;       // kSsdSlow / kLink* / kJournalStall: auto-clear after this
  std::uint32_t media = 0; // kBitFlip: 0 = data extent, 1 = journal record
};

inline constexpr std::uint32_t kAllPeers = ~std::uint32_t(0);
/// Link-fault peer value targeting the OSD<->monitor link (detected-mode
/// membership): cuts only the management path, leaving the data path up —
/// the OSD keeps serving but can neither report failures nor learn maps.
inline constexpr std::uint32_t kMonPeer = ~std::uint32_t(0) - 1;

/// A deterministic, seed-stable schedule of faults on the simulated
/// timeline. Build one with the fluent helpers (times are absolute sim-time
/// ns) or generate a randomized-but-reproducible plan for soak testing.
/// The plan itself is inert data; fault::FaultInjector arms it.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  FaultPlan& crash(Time at, std::uint32_t osd);
  FaultPlan& restart(Time at, std::uint32_t osd);
  /// crash at `at`, restart `downtime` later.
  FaultPlan& crash_restart(Time at, std::uint32_t osd, Time downtime);
  FaultPlan& ssd_slow(Time at, std::uint32_t osd, double factor, Time duration);
  FaultPlan& link_drop(Time at, std::uint32_t osd, std::uint32_t peer, double p,
                       Time duration);
  FaultPlan& link_delay(Time at, std::uint32_t osd, std::uint32_t peer, Time added_ns,
                        Time duration);
  FaultPlan& link_partition(Time at, std::uint32_t osd, std::uint32_t peer, Time duration);
  FaultPlan& journal_stall(Time at, std::uint32_t osd, Time duration);
  /// Flip one byte of a seeded-random data extent on `osd` at `at`.
  FaultPlan& bit_flip_data(Time at, std::uint32_t osd);
  /// Flip one byte of a seeded-random retained journal record on `osd`.
  FaultPlan& bit_flip_journal(Time at, std::uint32_t osd);
  /// Flip one byte of a seeded-random EC *parity* shard on `osd` (shard
  /// index >= k). No-op on replicated pools; exercises the scrub's
  /// parity-consistency check and repair-by-recompute.
  FaultPlan& bit_flip_parity(Time at, std::uint32_t osd);
  /// Tear the journal batch queued at `at` (prefix persists) and crash the
  /// daemon; pair with restart() to exercise replay.
  FaultPlan& torn_write(Time at, std::uint32_t osd);
  /// torn_write at `at`, restart `downtime` later.
  FaultPlan& torn_write_restart(Time at, std::uint32_t osd, Time downtime);

  /// Randomized soak plan: `n_events` faults drawn uniformly over kinds and
  /// targets in (warmup, horizon), every crash paired with a restart so the
  /// cluster always heals. Same (seed, horizon, n_events, osd_count) →
  /// identical plan, run after run.
  static FaultPlan random(std::uint64_t seed, Time warmup, Time horizon, unsigned n_events,
                          std::uint32_t osd_count);

  /// Human-readable schedule, one line per event (bench logs).
  std::string describe() const;
};

}  // namespace afc::fault
