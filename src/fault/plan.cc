#include "fault/plan.h"

#include <cstdio>

#include "common/rng.h"

namespace afc::fault {

const char* kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kOsdCrash: return "osd_crash";
    case FaultKind::kOsdRestart: return "osd_restart";
    case FaultKind::kSsdSlow: return "ssd_slow";
    case FaultKind::kLinkDrop: return "link_drop";
    case FaultKind::kLinkDelay: return "link_delay";
    case FaultKind::kLinkPartition: return "link_partition";
    case FaultKind::kJournalStall: return "journal_stall";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kTornWrite: return "torn_write";
  }
  return "?";
}

FaultPlan& FaultPlan::crash(Time at, std::uint32_t osd) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kOsdCrash;
  e.osd = osd;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::restart(Time at, std::uint32_t osd) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kOsdRestart;
  e.osd = osd;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::crash_restart(Time at, std::uint32_t osd, Time downtime) {
  crash(at, osd);
  restart(at + downtime, osd);
  return *this;
}

FaultPlan& FaultPlan::ssd_slow(Time at, std::uint32_t osd, double factor, Time duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kSsdSlow;
  e.osd = osd;
  e.factor = factor;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::link_drop(Time at, std::uint32_t osd, std::uint32_t peer, double p,
                                Time duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDrop;
  e.osd = osd;
  e.peer = peer;
  e.p = p;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::link_delay(Time at, std::uint32_t osd, std::uint32_t peer, Time added_ns,
                                 Time duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDelay;
  e.osd = osd;
  e.peer = peer;
  e.added_ns = added_ns;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::link_partition(Time at, std::uint32_t osd, std::uint32_t peer,
                                     Time duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkPartition;
  e.osd = osd;
  e.peer = peer;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::journal_stall(Time at, std::uint32_t osd, Time duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kJournalStall;
  e.osd = osd;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::bit_flip_data(Time at, std::uint32_t osd) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBitFlip;
  e.osd = osd;
  e.media = 0;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::bit_flip_journal(Time at, std::uint32_t osd) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBitFlip;
  e.osd = osd;
  e.media = 1;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::bit_flip_parity(Time at, std::uint32_t osd) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBitFlip;
  e.osd = osd;
  e.media = 2;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::torn_write(Time at, std::uint32_t osd) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kTornWrite;
  e.osd = osd;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::torn_write_restart(Time at, std::uint32_t osd, Time downtime) {
  torn_write(at, osd);
  restart(at + downtime, osd);
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, Time warmup, Time horizon, unsigned n_events,
                            std::uint32_t osd_count) {
  FaultPlan plan;
  Rng rng(seed ^ 0xFA017ull);
  const Time span = horizon > warmup ? horizon - warmup : 0;
  for (unsigned i = 0; i < n_events && span > 0 && osd_count > 0; i++) {
    const Time at = warmup + Time(rng.uniform() * double(span) * 0.8);
    const std::uint32_t osd = std::uint32_t(rng.uniform_int(0, osd_count - 1));
    const Time dur = Time((0.05 + 0.15 * rng.uniform()) * double(span));
    switch (rng.uniform_int(0, 6)) {
      case 0:
        // Crash always paired with a restart inside the horizon: the soak
        // verifies recovery, not permanent shrinkage.
        plan.crash_restart(at, osd, dur);
        break;
      case 1:
        plan.ssd_slow(at, osd, 2.0 + 6.0 * rng.uniform(), dur);
        break;
      case 2: {
        const std::uint32_t peer = std::uint32_t(rng.uniform_int(0, osd_count - 1));
        plan.link_drop(at, osd, peer == osd ? kAllPeers : peer, 0.05 + 0.25 * rng.uniform(),
                       dur);
        break;
      }
      case 3: {
        const std::uint32_t peer = std::uint32_t(rng.uniform_int(0, osd_count - 1));
        plan.link_delay(at, osd, peer == osd ? kAllPeers : peer,
                        Time(rng.uniform_int(100, 2000)) * kMicrosecond, dur);
        break;
      }
      case 4:
        plan.journal_stall(at, osd, dur / 4);
        break;
      case 5:
        if (rng.uniform_int(0, 1) == 0) {
          plan.bit_flip_data(at, osd);
        } else {
          plan.bit_flip_journal(at, osd);
        }
        break;
      case 6:
        // Like crash_restart: always paired with a restart inside the
        // horizon so replay + backfill get to heal what the tear lost.
        plan.torn_write_restart(at, osd, dur);
        break;
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  char line[160];
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kBitFlip) {
      std::snprintf(line, sizeof line, "  t=%9.3fms %-14s osd=%u media=%s\n",
                    double(e.at) / double(kMillisecond), kind_name(e.kind), e.osd,
                    e.media == 1 ? "journal" : "data");
      out += line;
      continue;
    }
    std::snprintf(line, sizeof line,
                  "  t=%9.3fms %-14s osd=%u peer=%d factor=%.2f p=%.2f add=%.3fms dur=%.3fms\n",
                  double(e.at) / double(kMillisecond), kind_name(e.kind), e.osd,
                  e.peer == kAllPeers ? -1 : int(e.peer), e.factor, e.p,
                  double(e.added_ns) / double(kMillisecond),
                  double(e.duration) / double(kMillisecond));
    out += line;
  }
  return out;
}

}  // namespace afc::fault
