#pragma once

#include <vector>

#include "cluster/map.h"
#include "common/stats.h"
#include "device/ssd.h"
#include "fault/plan.h"
#include "net/messenger.h"
#include "osd/osd.h"
#include "sim/simulation.h"

namespace afc::fault {

/// Arms a FaultPlan against a built cluster: schedules one simulator event
/// per fault (plus one per auto-clear) and applies the state change when it
/// fires. Everything is deterministic — an empty plan schedules nothing, so
/// constructing an injector cannot perturb a run.
///
/// Layering: the injector touches OSDs, devices, messengers and the cluster
/// map directly and never includes core/; core::ClusterSim offers the
/// convenience wrapper `install_faults()` that builds one over its members.
///
/// Crash semantics: the OSD's messenger is blackholed (sends and deliveries
/// vanish, no CPU is charged for the dead daemon), the OSD is marked down
/// in CRUSH and the epoch bumps, so clients and peers re-target. Surviving
/// members of every re-homed PG get their new acting set pushed, and PGs
/// are re-replicated to newcomers from a surviving member (asynchronous
/// backfill). Restart reverses the blackhole + down-mark and backfills the
/// returned OSD, which may have missed writes while dead.
class FaultInjector {
 public:
  /// `osds[i]` must be the OSD with id i; `ssds[i]` its data device.
  /// `endpoints` is every messenger whose connections may need link faults
  /// (all OSD messengers and, for completeness, the clients').
  FaultInjector(sim::Simulation& sim, cluster::ClusterMap& cmap,
                std::vector<osd::Osd*> osds, std::vector<dev::SsdModel*> ssds,
                std::vector<net::Messenger*> endpoints, std::uint64_t seed);

  /// Schedule every event of `plan` (callable once per injector).
  void install(const FaultPlan& plan);

  /// Detected-mode membership (docs/FAULTS.md "injected vs detected"):
  /// crashes and restarts become purely physical — blackhole the messenger
  /// and drop volatile state, but never touch CRUSH, never bump the epoch,
  /// never retarget PGs. Detection and map surgery belong to the heartbeat /
  /// monitor pipeline. Default off: the oracle semantics above.
  void set_detected(bool d) { detected_ = d; }
  /// The monitor's messenger, for kMonPeer-directed link faults.
  void set_monitor(net::Messenger* m) { mon_ = m; }

  Counters& counters() { return counters_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void apply(std::size_t idx);
  void clear(std::size_t idx);
  void do_crash(std::uint32_t osd);
  void do_restart(std::uint32_t osd);
  /// kBitFlip on data media: flip one byte of a seeded-random object in a
  /// PG the OSD is currently acting for (so a scrub can find the damage).
  bool corrupt_scrubbed_object(std::uint32_t osd, std::uint64_t seed);
  /// kBitFlip with media=2: flip one byte of a parity shard (index >= k)
  /// that `osd` currently holds in an EC acting set. Returns false (no-op)
  /// on replicated pools or when no parity shard is resident.
  bool corrupt_parity_shard(std::uint32_t osd, std::uint64_t seed);
  /// Apply `f` to both directions of every connection matching (osd, peer);
  /// peer == kAllPeers matches every link touching `osd`.
  void set_link_fault(std::uint32_t osd, std::uint32_t peer, const net::Connection::Fault& f);
  /// Recompute acting sets after a CRUSH up/down flip, push them to the
  /// surviving/new members, and backfill newcomers asynchronously.
  void retarget_pgs(const std::vector<std::vector<std::uint32_t>>& old_acting);
  /// EC pools: positional recovery — every changed shard position is rebuilt
  /// by decode-from-peers (osd::ec_rebuild_position) instead of copied.
  void retarget_pgs_ec(const std::vector<std::vector<std::uint32_t>>& old_acting);
  void trace_event(std::size_t idx);

  sim::Simulation& sim_;
  cluster::ClusterMap& cmap_;
  std::vector<osd::Osd*> osds_;
  std::vector<dev::SsdModel*> ssds_;
  std::vector<net::Messenger*> endpoints_;
  std::uint64_t seed_;
  FaultPlan plan_;
  Counters counters_;
  bool installed_ = false;
  bool detected_ = false;
  net::Messenger* mon_ = nullptr;
};

}  // namespace afc::fault
