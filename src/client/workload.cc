#include "client/workload.h"

#include <cstdio>

namespace afc::client {

std::string WorkloadSpec::to_string() const {
  const char* pat = pattern == Pattern::kRandom ? "rand" : "seq";
  const char* op = write_fraction >= 1.0   ? "write"
                   : write_fraction <= 0.0 ? "read"
                                           : "mixed";
  char buf[96];
  if (block_size >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%s%s-%lluM-qd%u", pat, op,
                  static_cast<unsigned long long>(block_size / kMiB), iodepth);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%s-%lluK-qd%u", pat, op,
                  static_cast<unsigned long long>(block_size / 1024), iodepth);
  }
  return buf;
}

}  // namespace afc::client
