#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "client/rbd.h"
#include "client/workload.h"
#include "cluster/map.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "mon/membership.h"
#include "osd/op.h"

namespace afc::client {

/// Exponential-backoff delay with seeded per-op jitter: `base` scaled by a
/// factor in [0.5, 1.5) drawn from `rng` — the op's own stream, so retry
/// storms de-synchronize without perturbing any other consumer of
/// randomness. Pure function of (base, rng state): deterministic.
Time jittered_backoff(Time base, Rng& rng);

/// Aggregated measurement sink shared by all VMs of one run: latency
/// histograms and IOPS time-series (for fluctuation analysis) plus the
/// measurement window, fio-style (completions during warmup are excluded
/// from the histograms but appear in the series).
struct RunStats {
  Time window_start = 0;
  Time window_end = ~Time(0);
  Histogram write_lat;
  Histogram read_lat;
  TimeSeries write_series{100 * kMillisecond};
  TimeSeries read_series{100 * kMillisecond};
  std::uint64_t writes_completed = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t verify_failures = 0;

  void record(bool is_write, Time issued, Time completed);

  double write_iops() const;
  double read_iops() const;
};

/// One virtual machine: a KRBD-attached block device driven by a closed-loop
/// fio-like load generator with `iodepth` outstanding I/Os. Writes carry
/// deterministic patterns; in verify mode reads check them end-to-end
/// through the whole replicated OSD pipeline.
class VmClient : public net::Receiver {
 public:
  VmClient(sim::Simulation& sim, net::Node& node, cluster::ClusterMap& cmap, RbdImage image,
           std::uint64_t client_id, std::uint64_t seed);
  ~VmClient() override;

  net::Messenger& messenger() { return msgr_; }
  const net::Messenger& messenger() const { return msgr_; }
  const RbdImage& image() const { return image_; }
  std::uint64_t client_id() const { return client_id_; }

  /// Cluster wiring: register the connection to an OSD.
  void add_osd_conn(std::uint32_t osd_id, net::Connection* conn);

  /// Client-side CPU charged per I/O (fio + KRBD + dispatch).
  void set_op_cpu(Time cpu) { op_cpu_ = cpu; }

  /// QoS tenant class stamped on every op this VM issues (0 = default
  /// profile at the OSD). The open-loop engine overrides per-op instead.
  void set_tenant(std::uint32_t tenant) { tenant_ = tenant; }

  /// Per-op timeout + resubmit (librados-style): if no reply arrives within
  /// `timeout`, abandon the attempt, back off exponentially and resubmit as
  /// a *fresh* op (new op id, primary recomputed from the current cluster
  /// map, so a crashed primary's successor gets the retry). After
  /// `max_retries` resubmits the op resolves as failed. `timeout == 0`
  /// disables the machinery entirely — the seed behaviour, no timer events.
  void set_op_timeout(Time timeout, unsigned max_retries = 3, double backoff = 2.0) {
    op_timeout_ = timeout;
    op_max_retries_ = max_retries;
    op_backoff_ = backoff;
  }

  /// Detected-mode membership: ops are stamped with the client's learned
  /// epoch, primaries are resolved through a per-epoch cache (the client is
  /// *lazy* — it routes on the last map it saw until a delta or a fence
  /// teaches it better), and with `shed_laggy_primary` reads route around a
  /// laggy primary. Inert (epoch stamped 0) unless cfg.detected().
  void set_membership(const mon::MembershipConfig& cfg) {
    detected_ = cfg.detected();
    shed_laggy_ = cfg.shed_laggy_primary;
  }
  std::uint64_t known_epoch() const { return known_epoch_; }

  /// Launch the workload's closed loops; they stop issuing at `stop_at`.
  void start(const WorkloadSpec& spec, Time stop_at, RunStats* sink);

  sim::CoTask<void> on_message(net::Message m) override;

  // Single-shot operations for tests, examples and control paths. I/O that
  // crosses object boundaries is striped into per-object sub-ops, exactly
  // like KRBD.
  sim::CoTask<bool> write_once(std::uint64_t image_off, Payload data);

  /// Open-loop entry used by workload::OpenLoopEngine: issue one I/O stamped
  /// with the given QoS tenant class and await its resolution. Writes carry
  /// a deterministic (non-verify) pattern payload.
  sim::CoTask<bool> submit_io(bool is_write, std::uint64_t image_off, std::uint64_t len,
                              std::uint32_t tenant);
  struct ReadOnce {
    bool ok = false;
    std::vector<std::uint8_t> data;
  };
  sim::CoTask<ReadOnce> read_once(std::uint64_t image_off, std::uint64_t len);

  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }

  // --- exactly-once accounting (chaos-soak invariants) -------------------
  std::uint64_t ops_begun() const { return ops_begun_; }
  std::uint64_t ops_resolved() const { return ops_resolved_; }
  std::uint64_t ops_failed() const { return ops_failed_; }
  std::uint64_t op_retries() const { return op_retries_; }
  std::size_t pending_size() const { return pending_.size(); }

  // --- membership accounting (always 0 under kOracle) --------------------
  std::uint64_t fenced_replies() const { return fenced_replies_; }
  std::uint64_t map_updates() const { return map_updates_; }
  std::uint64_t laggy_read_sheds() const { return laggy_read_sheds_; }

 private:
  struct PendingOp {
    sim::OneShot* done;
    bool ok = false;
    bool fenced = false;  // rejected on epoch, never admitted: resubmit
    std::uint64_t data_len = 0;
    std::optional<std::vector<std::uint8_t>> data;
  };

  sim::CoTask<void> io_loop(WorkloadSpec spec, Time stop_at, RunStats* sink, unsigned job);
  /// Issue one I/O and wait for its completion; returns the filled pending
  /// record. `payload` is the write body (ignored for reads).
  sim::CoTask<PendingOp> issue(bool is_write, std::uint64_t image_off, std::uint64_t len,
                               bool want_data, Payload payload, std::uint32_t tenant);
  /// One per-object sub-op (image_off..+len must not cross an object).
  sim::CoTask<PendingOp> issue_one(bool is_write, std::uint64_t image_off, std::uint64_t len,
                                   bool want_data, Payload payload, std::uint32_t tenant);
  std::uint64_t stable_seed(std::uint64_t image_off) const;
  /// Primary for `pg` as *this client* believes it (detected: per-epoch
  /// cache; oracle: the shared map directly). Reads may shed a laggy
  /// primary to the first healthy acting member.
  std::uint32_t resolve_primary(std::uint32_t pg, bool is_write);
  /// A delta (or a fence's map_epoch) taught us a newer epoch.
  void learn_epoch(std::uint64_t epoch);

  sim::Simulation& sim_;
  cluster::ClusterMap& cmap_;
  RbdImage image_;
  std::uint64_t client_id_;
  Rng rng_;
  Time op_cpu_ = 0;
  std::uint32_t tenant_ = 0;
  net::Messenger msgr_;
  std::unordered_map<std::uint32_t, net::Connection*> osd_conns_;
  std::unordered_map<std::uint64_t, PendingOp*> pending_;
  std::unordered_set<std::uint64_t> written_offsets_;  // verify mode
  std::uint64_t next_seq_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  Time op_timeout_ = 0;  // 0 = no client-side timeouts (seed behaviour)
  unsigned op_max_retries_ = 3;
  double op_backoff_ = 2.0;
  std::uint64_t ops_begun_ = 0;
  std::uint64_t ops_resolved_ = 0;
  std::uint64_t ops_failed_ = 0;
  std::uint64_t op_retries_ = 0;

  // --- membership state (inert under kOracle) -----------------------------
  bool detected_ = false;
  bool shed_laggy_ = false;
  std::uint64_t known_epoch_ = 1;
  std::uint64_t cache_epoch_ = 0;  // epoch primary_cache_ was filled under
  std::unordered_map<std::uint32_t, std::uint32_t> primary_cache_;  // pg -> osd
  std::vector<bool> known_laggy_;
  std::uint64_t fenced_replies_ = 0;
  std::uint64_t map_updates_ = 0;
  std::uint64_t laggy_read_sheds_ = 0;
};

}  // namespace afc::client
