#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace afc::client {

/// fio-style workload description (the paper drives everything with fio via
/// KRBD: 4K/32K random read/write and sequential read/write at various
/// thread counts and iodepths).
struct WorkloadSpec {
  enum class Pattern { kRandom, kSequential };

  Pattern pattern = Pattern::kRandom;
  /// 1.0 = pure write, 0.0 = pure read, in between = mixed.
  double write_fraction = 1.0;
  std::uint64_t block_size = 4096;
  /// Outstanding I/Os per VM (fio numjobs x iodepth collapsed into one
  /// closed-loop depth).
  unsigned iodepth = 8;
  Time warmup = 300 * kMillisecond;
  Time runtime = 1500 * kMillisecond;
  /// Reads materialize bytes and verify the fio-style pattern.
  bool verify = false;
  /// Skew of the random offset distribution: 0 = uniform; >0 = Zipf over
  /// blocks (hot objects -> hot PGs -> lock contention; the access pattern
  /// cloud block workloads actually have).
  double zipf_theta = 0.0;

  static WorkloadSpec rand_write(std::uint64_t bs, unsigned depth) {
    WorkloadSpec s;
    s.pattern = Pattern::kRandom;
    s.write_fraction = 1.0;
    s.block_size = bs;
    s.iodepth = depth;
    return s;
  }
  static WorkloadSpec rand_read(std::uint64_t bs, unsigned depth) {
    WorkloadSpec s = rand_write(bs, depth);
    s.write_fraction = 0.0;
    return s;
  }
  static WorkloadSpec seq_write(std::uint64_t bs, unsigned depth) {
    WorkloadSpec s = rand_write(bs, depth);
    s.pattern = Pattern::kSequential;
    return s;
  }
  static WorkloadSpec seq_read(std::uint64_t bs, unsigned depth) {
    WorkloadSpec s = rand_read(bs, depth);
    s.pattern = Pattern::kSequential;
    return s;
  }

  std::string to_string() const;
};

}  // namespace afc::client
