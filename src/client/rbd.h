#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "fs/transaction.h"

namespace afc::client {

/// RBD image striping: a block device of `size` bytes backed by 4 MiB RADOS
/// objects named "rbd_data.<image>.<object-number>", exactly how KRBD maps
/// block offsets to objects.
class RbdImage {
 public:
  RbdImage(std::string name, std::uint64_t size, std::uint64_t object_size = 4 * kMiB)
      : name_(std::move(name)), size_(size), object_size_(object_size) {}

  const std::string& name() const { return name_; }
  std::uint64_t size() const { return size_; }
  std::uint64_t object_size() const { return object_size_; }
  std::uint64_t object_count() const { return (size_ + object_size_ - 1) / object_size_; }

  struct Mapping {
    std::string object_name;
    std::uint64_t object_offset;
    std::uint64_t length;  // contiguous bytes available in this object
  };
  /// Map an image byte offset to its backing object (no cross-object I/O is
  /// split here; callers clamp lengths to `length`).
  Mapping map(std::uint64_t image_offset) const;

  std::string object_name(std::uint64_t object_no) const;

 private:
  std::string name_;
  std::uint64_t size_;
  std::uint64_t object_size_;
};

}  // namespace afc::client
