#include "client/runner.h"

#include "common/stage_names.h"

namespace afc::client {

Time jittered_backoff(Time base, Rng& rng) {
  return Time(double(base) * (0.5 + rng.uniform()));
}

void RunStats::record(bool is_write, Time issued, Time completed) {
  auto& series = is_write ? write_series : read_series;
  series.add(completed);
  if (completed < window_start || completed > window_end || issued < window_start) return;
  if (is_write) {
    write_lat.record(completed - issued);
    writes_completed++;
  } else {
    read_lat.record(completed - issued);
    reads_completed++;
  }
}

double RunStats::write_iops() const {
  const Time span = window_end - window_start;
  return span == 0 ? 0.0 : double(writes_completed) * double(kSecond) / double(span);
}

double RunStats::read_iops() const {
  const Time span = window_end - window_start;
  return span == 0 ? 0.0 : double(reads_completed) * double(kSecond) / double(span);
}

VmClient::VmClient(sim::Simulation& sim, net::Node& node, cluster::ClusterMap& cmap,
                   RbdImage image, std::uint64_t client_id, std::uint64_t seed)
    : sim_(sim),
      cmap_(cmap),
      image_(std::move(image)),
      client_id_(client_id),
      rng_(seed),
      msgr_(sim, node, *this, "vm." + std::to_string(client_id)) {}

VmClient::~VmClient() = default;

void VmClient::add_osd_conn(std::uint32_t osd_id, net::Connection* conn) {
  osd_conns_[osd_id] = conn;
}

std::uint64_t VmClient::stable_seed(std::uint64_t image_off) const {
  return (client_id_ << 40) ^ (image_off * 0x9e3779b97f4a7c15ull) ^ 0x5eed;
}

sim::CoTask<void> VmClient::on_message(net::Message m) {
  if (m.type == osd::kMapDelta) {
    const auto& delta = static_cast<const osd::MapDeltaMsg&>(*m.body);
    if (delta.epoch > known_epoch_) {
      learn_epoch(delta.epoch);
      map_updates_++;
      known_laggy_.assign(cmap_.crush().osd_count(), false);
      for (std::uint32_t o : delta.laggy) {
        if (o < known_laggy_.size()) known_laggy_[o] = true;
      }
    }
    co_return;
  }
  if (m.type != osd::kWriteReply && m.type != osd::kReadReply) co_return;
  auto reply = std::static_pointer_cast<osd::IoReplyMsg>(m.body);
  auto it = pending_.find(reply->op_id);
  if (it == pending_.end()) co_return;
  PendingOp* p = it->second;
  pending_.erase(it);
  if (reply->fenced) {
    // Stale-epoch rejection: the op was never admitted. Adopt the rejecting
    // OSD's epoch (the delta itself may still be in flight to us) and let
    // issue_one resubmit against a re-resolved primary.
    fenced_replies_++;
    learn_epoch(reply->map_epoch);
    p->ok = false;
    p->fenced = true;
    completed_++;
    p->done->set();
    co_return;
  }
  p->ok = reply->ok;
  p->data_len = reply->data_len;
  p->data = std::move(reply->data);
  completed_++;
  p->done->set();
}

void VmClient::learn_epoch(std::uint64_t epoch) {
  if (epoch <= known_epoch_) return;
  known_epoch_ = epoch;
  primary_cache_.clear();
  cache_epoch_ = epoch;
}

std::uint32_t VmClient::resolve_primary(std::uint32_t pg, bool is_write) {
  if (!detected_) return cmap_.primary(pg);
  // Lazy routing: the cache pins whatever primary this client resolved
  // under its current epoch; only a learned epoch (delta or fence)
  // invalidates it. A partitioned client keeps routing on yesterday's map —
  // which is exactly what epoch fencing exists to catch.
  if (cache_epoch_ != known_epoch_) {
    primary_cache_.clear();
    cache_epoch_ = known_epoch_;
  }
  std::uint32_t primary;
  if (auto it = primary_cache_.find(pg); it != primary_cache_.end()) {
    primary = it->second;
  } else {
    primary = cmap_.primary(pg);
    primary_cache_[pg] = primary;
  }
  if (!is_write && shed_laggy_ && primary < known_laggy_.size() &&
      known_laggy_[primary]) {
    // Gray-failure read shedding: any acting member can serve a replicated
    // read; pick the first one not flagged laggy (writes keep the primary).
    for (std::uint32_t member : cmap_.acting(pg)) {
      if (member == cluster::ClusterMap::kNoOsd) continue;
      if (member < known_laggy_.size() && known_laggy_[member]) continue;
      laggy_read_sheds_++;
      return member;
    }
  }
  return primary;
}

sim::CoTask<VmClient::PendingOp> VmClient::issue(bool is_write, std::uint64_t image_off,
                                                 std::uint64_t len, bool want_data,
                                                 Payload payload, std::uint32_t tenant) {
  const std::uint64_t span = is_write ? payload.size() : len;
  const RbdImage::Mapping head = image_.map(image_off);
  if (span <= head.length) {
    co_return co_await issue_one(is_write, image_off, len, want_data, std::move(payload),
                                 tenant);
  }
  // Striping: split into per-object sub-ops and join (KRBD behaviour). The
  // sub-ops run concurrently; the parent op completes when all do.
  PendingOp agg{};
  agg.ok = true;
  if (want_data) agg.data.emplace();
  std::uint64_t off = image_off;
  std::uint64_t remaining = span;
  while (remaining > 0) {
    const RbdImage::Mapping m = image_.map(off);
    const std::uint64_t chunk = std::min(remaining, m.length);
    Payload piece;
    if (is_write) piece = payload.slice(off - image_off, chunk);
    auto p = co_await issue_one(is_write, off, chunk, want_data, std::move(piece), tenant);
    agg.ok = agg.ok && p.ok;
    agg.data_len += p.data_len;
    if (want_data) {
      if (p.data.has_value()) {
        agg.data->insert(agg.data->end(), p.data->begin(), p.data->end());
      } else {
        agg.ok = false;
      }
    }
    off += chunk;
    remaining -= chunk;
  }
  co_return agg;
}

sim::CoTask<VmClient::PendingOp> VmClient::issue_one(bool is_write, std::uint64_t image_off,
                                                     std::uint64_t len, bool want_data,
                                                     Payload payload, std::uint32_t tenant) {
  const RbdImage::Mapping m = image_.map(image_off);
  ops_begun_++;
  PendingOp p{};
  Time timeout = op_timeout_;
  // The op's own backoff stream: jitter is a pure function of (client, op),
  // independent of every other rng consumer — adding or removing retries
  // elsewhere cannot shift this op's delays.
  Rng backoff_rng((client_id_ << 32) ^ (ops_begun_ * 0x9e3779b97f4a7c15ull));
  unsigned attempt = 0;
  unsigned fence_resubmits = 0;
  for (;;) {
    auto msg = std::make_shared<osd::ClientIoMsg>();
    msg->op_id = (client_id_ << 24) | next_seq_++;
    msg->client_id = client_id_;
    msg->tenant = tenant;
    msg->oid.name = m.object_name;
    msg->oid.pg = cmap_.pg_of(m.object_name);
    msg->pg = msg->oid.pg;
    msg->offset = m.object_offset;
    msg->is_write = is_write;
    msg->want_data = want_data;
    msg->issued_at = sim_.now();
    msg->epoch = detected_ ? known_epoch_ : 0;
    if (is_write) {
      msg->data = payload;  // copied: a later attempt resends the same body
    } else {
      msg->read_len = len;
    }

    // Primary recomputed per attempt: an OSD crash bumps the map epoch, and
    // the retry targets whichever OSD CRUSH now elects for this PG.
    const std::uint32_t primary = resolve_primary(msg->pg, is_write);
    auto conn_it = osd_conns_.find(primary);
    if (conn_it == osd_conns_.end()) {
      p.ok = false;
      break;
    }

    sim::OneShot done(sim_);
    p = PendingOp{};
    p.done = &done;
    const std::uint64_t op_id = msg->op_id;
    pending_[op_id] = &p;
    issued_++;
    if (op_cpu_ > 0) co_await msgr_.node().cpu().consume(op_cpu_);

    const trace::Span span = trace::Collector::active() != nullptr
                                 ? trace::Span{op_id, trace::client_track(client_id_)}
                                 : trace::Span{};
    const Time submit_t0 = sim_.now();
    net::Message wire;
    wire.type = is_write ? osd::kClientWrite : osd::kClientRead;
    wire.size = (is_write ? msg->data.size() : 0) + 150;
    wire.body = std::move(msg);
    wire.trace = span;
    conn_it->second->send(std::move(wire));

    if (op_timeout_ == 0) {
      co_await done.wait();
    } else if (co_await done.wait_for(timeout) == sim::TimedOut::kYes) {
      // Attempt abandoned: forget the op id so a late/duplicate reply is
      // ignored, then back off exponentially (with per-op jitter, so a
      // crashed primary's clients don't stampede back in lockstep) and
      // resubmit as a fresh op.
      pending_.erase(op_id);
      if (auto* tr = trace::Collector::active(); tr != nullptr && span.valid()) {
        tr->instant(span, tr->stage_id(stage::kClientRetry), sim_.now());
      }
      if (attempt >= op_max_retries_) {
        p.ok = false;
        ops_failed_++;
        break;
      }
      attempt++;
      op_retries_++;
      const Time backoff = jittered_backoff(timeout, backoff_rng);
      timeout = Time(double(timeout) * op_backoff_);
      co_await sim::delay(sim_, backoff, "client.backoff");
      continue;
    }
    if (p.fenced && fence_resubmits < 8) {
      // The op was fenced, never admitted: re-resolve under the learned
      // epoch and go again at once. Not a timeout retry — no backoff, no
      // charge against the attempt budget. The bound only backstops a
      // monitor publishing epochs faster than this client can learn them.
      fence_resubmits++;
      p = PendingOp{};
      continue;
    }
    // client.io: submit → completion as the VM sees it, the outermost span of
    // a traced op (everything the OSD-side stages decompose nests inside it).
    if (auto* tr = trace::Collector::active(); tr != nullptr && span.valid()) {
      tr->complete(span, tr->stage_id(stage::kClientIo), submit_t0, sim_.now());
    }
    break;
  }
  ops_resolved_++;
  co_return p;
}

sim::CoTask<void> VmClient::io_loop(WorkloadSpec spec, Time stop_at, RunStats* sink,
                                    unsigned job) {
  // Sequential jobs stream over disjoint regions, fio-style.
  const std::uint64_t blocks = image_.size() / spec.block_size;
  const std::uint64_t region_blocks = std::max<std::uint64_t>(1, blocks / spec.iodepth);
  std::uint64_t cursor = std::uint64_t(job) * region_blocks;

  while (sim_.now() < stop_at) {
    const bool is_write = spec.write_fraction >= 1.0 ||
                          (spec.write_fraction > 0.0 && rng_.uniform() < spec.write_fraction);
    std::uint64_t block_no;
    if (spec.pattern == WorkloadSpec::Pattern::kSequential) {
      block_no = cursor;
      cursor++;
      if (cursor >= std::min(blocks, (std::uint64_t(job) + 1) * region_blocks)) {
        cursor = std::uint64_t(job) * region_blocks;
      }
    } else if (spec.zipf_theta > 0.0) {
      // Zipf rank maps to the block directly: hot blocks cluster in the
      // image's first objects, concentrating load on few PGs — the hot-spot
      // pattern that stresses the PG lock.
      block_no = rng_.zipf(blocks, spec.zipf_theta);
    } else {
      block_no = rng_.uniform_int(0, blocks - 1);
    }
    std::uint64_t off = block_no * spec.block_size;

    const Time issued_at = sim_.now();
    if (is_write) {
      const std::uint64_t seed =
          spec.verify ? stable_seed(off) : (client_id_ << 40) ^ (issued_ * 0x9e37ull) ^ off;
      auto p = co_await issue(true, off, spec.block_size, false,
                              Payload::pattern(spec.block_size, seed), tenant_);
      // Only acked writes join the verify ledger: a failed write's content
      // is undefined (some replicas may hold it), and the exactly-once
      // contract only covers acked data. Overwrites are safe either way —
      // the pattern is a pure function of (client, offset).
      if (spec.verify && p.ok) written_offsets_.insert(off);
    } else {
      const bool check = spec.verify && written_offsets_.count(off) != 0;
      auto p = co_await issue(false, off, spec.block_size, check, Payload{}, tenant_);
      if (check && sink != nullptr) {
        const auto expected = Payload::pattern(spec.block_size, stable_seed(off));
        if (!p.ok || !p.data.has_value() ||
            !Payload::bytes(std::move(*p.data)).content_equals(expected)) {
          sink->verify_failures++;
        }
      }
    }
    if (sink != nullptr) sink->record(is_write, issued_at, sim_.now());
  }
}

void VmClient::start(const WorkloadSpec& spec, Time stop_at, RunStats* sink) {
  for (unsigned job = 0; job < spec.iodepth; job++) {
    sim::spawn(io_loop(spec, stop_at, sink, job));
  }
}

sim::CoTask<bool> VmClient::write_once(std::uint64_t image_off, Payload data) {
  auto p = co_await issue(true, image_off, data.size(), false, std::move(data), tenant_);
  co_return p.ok;
}

sim::CoTask<VmClient::ReadOnce> VmClient::read_once(std::uint64_t image_off,
                                                    std::uint64_t len) {
  auto p = co_await issue(false, image_off, len, true, Payload{}, tenant_);
  ReadOnce out;
  out.ok = p.ok;
  if (p.data.has_value()) out.data = std::move(*p.data);
  co_return out;
}

sim::CoTask<bool> VmClient::submit_io(bool is_write, std::uint64_t image_off,
                                      std::uint64_t len, std::uint32_t tenant) {
  Payload payload;
  if (is_write) {
    payload = Payload::pattern(len, (client_id_ << 40) ^ (issued_ * 0x9e37ull) ^ image_off);
  }
  auto p = co_await issue(is_write, image_off, len, false, std::move(payload), tenant);
  co_return p.ok;
}

}  // namespace afc::client
