#include "client/rbd.h"

#include <cstdio>

namespace afc::client {

std::string RbdImage::object_name(std::uint64_t object_no) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rbd_data.%s.%012llx", name_.c_str(),
                static_cast<unsigned long long>(object_no));
  return buf;
}

RbdImage::Mapping RbdImage::map(std::uint64_t image_offset) const {
  const std::uint64_t object_no = image_offset / object_size_;
  const std::uint64_t object_offset = image_offset % object_size_;
  return Mapping{object_name(object_no), object_offset, object_size_ - object_offset};
}

}  // namespace afc::client
