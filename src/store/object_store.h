#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kv/db.h"
#include "sim/cpu.h"
#include "store/extent_map.h"

namespace afc::fs {
class Journal;
}

namespace afc::store {

/// What the OSD needs from its local object store. Two backends implement
/// it: fs::FileStore (objects as files, write-ahead through the external
/// NVRAM journal) and store::FlashStore (raw-device extent allocator, its
/// own small WAL for sub-block writes, metadata in the LSM KV).
class ObjectStore {
 public:
  struct ReadResult {
    bool found = false;
    std::uint64_t length = 0;
    std::optional<std::vector<std::uint8_t>> data;  // only if want_data
  };
  using ObjectExport = store::ObjectExport;

  /// How the OSD makes this backend's transactions durable.
  enum class CommitModel {
    /// External journal write-ahead (NVRAM ring), then apply_transaction:
    /// the classic FileStore double-write discipline.
    kJournaled,
    /// queue_transaction(): the store commits internally (COW extents +
    /// deferred-write WAL); durable AND applied when it resumes. The OSD
    /// skips the external journal entirely.
    kStoreDirect,
  };

  virtual ~ObjectStore() = default;

  virtual CommitModel commit_model() const { return CommitModel::kJournaled; }

  /// Apply a (journaled or replayed) transaction to the backing store.
  /// `lightweight` selects the AFCeph §3.4 path where the backend
  /// distinguishes them.
  virtual sim::CoTask<void> apply_transaction(const fs::Transaction& tx,
                                              bool lightweight) = 0;

  /// kStoreDirect backends only: make `tx` durable and applied in one call;
  /// resumes at commit. Returns the store-WAL sequence of the commit
  /// record, or 0 when the store is closing (the op must not be acked —
  /// same contract as a closed journal). kJournaled backends never take
  /// this path; the default funnels into apply_transaction for safety.
  virtual sim::CoTask<std::uint64_t> queue_transaction(const fs::Transaction& tx,
                                                       bool lightweight) {
    co_await apply_transaction(tx, lightweight);
    co_return 0;
  }

  /// Read [off, off+len) of an object. `want_data=false` skips
  /// materialization (benchmarks) but still charges the same I/O.
  virtual sim::CoTask<ReadResult> read(const fs::ObjectId& oid, std::uint64_t off,
                                       std::uint64_t len, bool want_data = true) = 0;
  /// Metadata read (object_info / snapset): cache hit or one device read.
  virtual sim::CoTask<std::optional<kv::Value>> getattr(const fs::ObjectId& oid,
                                                        const std::string& name) = 0;
  /// stat(2)-equivalent: object existence + size.
  virtual sim::CoTask<std::optional<std::uint64_t>> stat(const fs::ObjectId& oid) = 0;

  // --- cheap in-memory checks (no simulated cost) ------------------------
  virtual bool object_in_memory(const fs::ObjectId& oid) const = 0;
  virtual std::size_t object_count() const = 0;
  virtual std::uint64_t object_size(const fs::ObjectId& oid) const = 0;

  // --- recovery support (control plane; I/O charged by the caller) -------
  virtual std::vector<fs::ObjectId> objects_in_pg(std::uint32_t pg) const = 0;
  virtual ObjectExport export_object(const fs::ObjectId& oid) const = 0;
  /// Drop an object's state (recovery: the importer replaces the whole
  /// object so stale extents the source lacks cannot survive a repair).
  virtual void remove_object(const fs::ObjectId& oid) = 0;
  /// Content fingerprint over the object's extents + size (scrub).
  virtual std::uint64_t object_fingerprint(const fs::ObjectId& oid) const = 0;
  /// FAILURE INJECTION: flip one byte of the object's first extent.
  virtual bool corrupt_object(const fs::ObjectId& oid) = 0;
  /// FAILURE INJECTION: corrupt_object() on a seeded-random resident object.
  virtual std::optional<fs::ObjectId> corrupt_some_object(std::uint64_t seed) = 0;
  /// Deep-scrub self-check: stored checksums still match content.
  virtual bool verify_object(const fs::ObjectId& oid) const = 0;

  /// The store's internal WAL (kStoreDirect backends), exposed for fault
  /// injection (stall / torn write / bit flip) and restart replay; nullptr
  /// for journaled backends.
  virtual fs::Journal* wal() { return nullptr; }
  /// The daemon died (fault injection): drop RAM-only bookkeeping (e.g.
  /// the deferred-write ledger). Media-durable state must survive.
  virtual void on_daemon_crash() {}

  /// Implicit-population policy (simulated 80%-full cluster), needed by the
  /// OSD's metadata path before it touches the store.
  virtual bool assume_populated() const = 0;
  virtual std::uint64_t populated_object_size() const = 0;

  virtual void close() = 0;
  /// Wait until all buffered/deferred data has reached the device.
  virtual sim::CoTask<void> drain() = 0;

  // --- instrumentation ---------------------------------------------------
  virtual std::uint64_t dirty_bytes() const { return 0; }
  virtual std::uint64_t writeback_stalls() const { return 0; }
  virtual std::uint64_t syscalls() const { return 0; }
  virtual std::uint64_t metadata_device_reads() const { return 0; }
  virtual std::uint64_t applies() const { return 0; }
  virtual std::uint64_t data_bytes_written() const { return 0; }
};

}  // namespace afc::store
