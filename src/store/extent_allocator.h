#pragma once

#include <cstdint>
#include <map>

namespace afc::store {

/// Block-granular free-space manager for the raw data SSD: a sorted map of
/// free runs (offset → length), first-fit allocation, and coalescing free.
/// Host-side bookkeeping only — the caller charges allocation CPU and the
/// device writes. Never hard-fails: when the pool is exhausted (the model's
/// device_bytes is a working-set bound, not a capacity simulation) it hands
/// out monotonically growing offsets past the pool end and counts the
/// overcommit, so a long bench degrades gracefully instead of wedging I/O.
class ExtentAllocator {
 public:
  ExtentAllocator(std::uint64_t pool_bytes, std::uint64_t block_size);

  std::uint64_t block_size() const { return block_size_; }

  /// Allocate one contiguous run of `len` bytes (rounded up to blocks).
  /// Returns its device offset.
  std::uint64_t allocate(std::uint64_t len);

  /// Return [off, off+len) to the pool (rounded up to blocks), merging with
  /// free neighbours. Overcommitted (past-pool) runs are dropped silently.
  void free(std::uint64_t off, std::uint64_t len);

  std::uint64_t allocated_bytes() const { return allocated_bytes_; }
  std::uint64_t free_bytes() const;
  std::uint64_t overcommits() const { return overcommits_; }
  std::size_t fragments() const { return free_.size(); }

 private:
  std::uint64_t round_up(std::uint64_t len) const {
    return (len + block_size_ - 1) / block_size_ * block_size_;
  }

  std::uint64_t pool_bytes_;
  std::uint64_t block_size_;
  std::map<std::uint64_t, std::uint64_t> free_;  // offset -> run length
  std::uint64_t allocated_bytes_ = 0;
  std::uint64_t overcommit_pos_;
  std::uint64_t overcommits_ = 0;
};

}  // namespace afc::store
