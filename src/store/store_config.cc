#include "store/store_config.h"

namespace afc::store {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kFile: return "file";
    case Backend::kFlash: return "flash";
  }
  return "?";
}

std::optional<Backend> parse_backend(const std::string& name) {
  if (name == "file") return Backend::kFile;
  if (name == "flash") return Backend::kFlash;
  return std::nullopt;
}

std::unique_ptr<ObjectStore> make_store(sim::Simulation& sim, sim::CpuPool& cpu,
                                        dev::Device& journal_dev, dev::Device& data_dev,
                                        kv::Db& kvdb, const StoreConfig& cfg,
                                        Counters* counters) {
  switch (cfg.backend) {
    case Backend::kFlash:
      return std::make_unique<FlashStore>(sim, cpu, journal_dev, data_dev, kvdb,
                                          cfg.flash, counters);
    case Backend::kFile:
      break;
  }
  return std::make_unique<fs::FileStore>(sim, cpu, data_dev, kvdb, cfg.file, counters);
}

}  // namespace afc::store
