#include "store/extent_allocator.h"

namespace afc::store {

ExtentAllocator::ExtentAllocator(std::uint64_t pool_bytes, std::uint64_t block_size)
    : pool_bytes_(pool_bytes / block_size * block_size),
      block_size_(block_size),
      overcommit_pos_(pool_bytes_) {
  if (pool_bytes_ > 0) free_.emplace(0, pool_bytes_);
}

std::uint64_t ExtentAllocator::allocate(std::uint64_t len) {
  const std::uint64_t need = round_up(len == 0 ? block_size_ : len);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < need) continue;
    const std::uint64_t off = it->first;
    const std::uint64_t run = it->second;
    free_.erase(it);
    if (run > need) free_.emplace(off + need, run - need);
    allocated_bytes_ += need;
    return off;
  }
  // Pool exhausted (or too fragmented for a contiguous run): overcommit.
  overcommits_++;
  const std::uint64_t off = overcommit_pos_;
  overcommit_pos_ += need;
  allocated_bytes_ += need;
  return off;
}

void ExtentAllocator::free(std::uint64_t off, std::uint64_t len) {
  const std::uint64_t bytes = round_up(len == 0 ? block_size_ : len);
  allocated_bytes_ -= bytes < allocated_bytes_ ? bytes : allocated_bytes_;
  if (off >= pool_bytes_) return;  // overcommitted run: not pool-managed
  std::uint64_t start = off;
  std::uint64_t end = off + bytes;
  auto next = free_.lower_bound(start);
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second >= start) {
      start = prev->first;
      end = end > prev->first + prev->second ? end : prev->first + prev->second;
      free_.erase(prev);
    }
  }
  while (next != free_.end() && next->first <= end) {
    end = end > next->first + next->second ? end : next->first + next->second;
    next = free_.erase(next);
  }
  free_.emplace(start, end - start);
}

std::uint64_t ExtentAllocator::free_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [off, len] : free_) total += len;
  return total;
}

}  // namespace afc::store
