#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "fs/journal.h"
#include "fs/pagecache.h"
#include "fs/transaction.h"
#include "kv/db.h"
#include "sim/cpu.h"
#include "store/extent_allocator.h"
#include "store/object_store.h"

namespace afc::store {

/// Raw-device object store in the BlueStore / PureFlash mould: no filesystem
/// underneath, so no syscall tax and — crucially — no journal double-write.
///
///  * Data lives in block extents handed out by an ExtentAllocator over the
///    raw SSD. A block-aligned write is COW: allocate fresh blocks, write
///    them with the object's stream hint, commit the mapping; the old
///    blocks free. The data never passes through a journal.
///  * A small WAL (the same crash-consistent CRC32C ring as fs::Journal, on
///    the NVRAM device) carries a per-transaction metadata record plus the
///    payload of *deferred* writes: sub-block updates, and aligned writes
///    below `prefer_deferred_bytes` (BlueStore's prefer_deferred_size — for
///    small writes one NVRAM program beats an SSD program in the ack path).
///    A deferred write becomes durable at WAL commit and its media write is
///    deferred: it folds into the next direct rewrite of the same block, or
///    is flushed in place — stream-hinted, `flush_iodepth` blocks in flight
///    — when the deferred backlog passes a threshold.
///  * Object metadata (onode: object→extent map, size, per-object CRCs)
///    rides the existing LSM KV alongside omap/PG-log data, batched per
///    transaction.
///  * Every data write carries a per-object stream hint, so a multi-stream
///    SsdModel segregates object lifetimes and charges less GC.
///
/// Crash consistency: queue_transaction() resumes only after the WAL record
/// is durable; on_daemon_crash() drops the RAM deferred ledger, and restart
/// replays unapplied WAL records through apply_transaction() (the OSD runs
/// the same replay loop it uses for the external journal).
class FlashStore final : public ObjectStore {
 public:
  using PageCache = fs::PageCache;

  struct Config {
    std::uint64_t block_size = 4096;
    /// Allocator pool over the data SSD. A working-set bound for the
    /// allocator map, not a capacity simulation (see ExtentAllocator).
    std::uint64_t device_bytes = 8 * kGiB;
    Time apply_cpu = 1200;   // per-txn finalize residue: extent/onode
                             // mutation is charged per data op (alloc_cpu);
                             // no filesystem namespace work, no syscalls
    Time alloc_cpu = 700;    // allocator + onode mutation, per data op
    Time read_cpu = 1500;    // per-read bookkeeping
    /// Deferred flush: the block is already allocated (ensure_phys at
    /// registration), so the rewrite costs an aio submit, not allocator work.
    Time flush_submit_cpu = 300;
    double cpu_multiplier = 1.0;  // allocator tax
    std::size_t page_cache_pages = 65536;  // RAM-resident object data
    unsigned write_streams = 8;   // per-object stream hints (0 = no hints)
    std::uint64_t onode_bytes = 160;       // KV payload per onode update
    std::uint64_t wal_meta_bytes = 256;    // WAL record metadata portion
    std::uint64_t deferred_flush_bytes = 1 * kMiB;  // flush threshold
    /// Aligned writes strictly smaller than this also go deferred
    /// (BlueStore's prefer_deferred_size): the payload commits in one NVRAM
    /// WAL write — microseconds, not an SSD program — and folds to the data
    /// device in the background with the object's stream hint. Large writes
    /// stay COW-direct, where skipping the double-write is the whole win.
    /// 0 = every aligned write is direct.
    std::uint64_t prefer_deferred_bytes = 32 * 1024;
    /// Background-flush concurrency: in-place block rewrites kept in
    /// flight at once (the drive's channels absorb them).
    unsigned flush_iodepth = 16;
    /// KV finalizer batching (BlueStore's kv_sync_thread): up to this many
    /// transactions' onode/omap updates merge into ONE atomic KV batch —
    /// one KV WAL record instead of one per transaction, and the LSM's
    /// per-batch CPU amortizes across the group.
    unsigned kv_batch_max = 16;
    /// How long the finalizer lets metadata accumulate before each merged
    /// commit. Off the ack path (the WAL record is already durable); the
    /// only cost is WAL records staying replayable a little longer.
    Time kv_commit_interval = 1 * kMillisecond;
    bool assume_populated = false;
    std::uint64_t populated_object_size = 4 * kMiB;
    std::uint64_t populated_xattr_bytes = 250;
    /// Deferred-write WAL ring (on the NVRAM device). Small on purpose:
    /// only sub-block payloads and per-txn metadata records live here.
    fs::Journal::Config wal{128 * kMiB, 512, 32};
  };

  FlashStore(sim::Simulation& sim, sim::CpuPool& cpu, dev::Device& wal_dev,
             dev::Device& data_dev, kv::Db& kvdb, const Config& cfg,
             Counters* counters = nullptr);

  CommitModel commit_model() const override { return CommitModel::kStoreDirect; }

  /// Commit path: COW data writes for aligned extents, one WAL record for
  /// metadata + sub-block payloads, one KV batch for onode/omap. Durable
  /// AND applied at resume. Returns the WAL seq, or 0 when closing.
  sim::CoTask<std::uint64_t> queue_transaction(const fs::Transaction& tx,
                                               bool lightweight) override;

  /// Direct install, no WAL record: WAL replay after a crash, recovery
  /// imports, scrub repair. Charges the same CPU, allocation and device
  /// writes as the commit path's data phase.
  sim::CoTask<void> apply_transaction(const fs::Transaction& tx,
                                      bool lightweight) override;

  sim::CoTask<ReadResult> read(const fs::ObjectId& oid, std::uint64_t off,
                               std::uint64_t len, bool want_data = true) override;
  sim::CoTask<std::optional<kv::Value>> getattr(const fs::ObjectId& oid,
                                                const std::string& name) override;
  sim::CoTask<std::optional<std::uint64_t>> stat(const fs::ObjectId& oid) override;

  bool object_in_memory(const fs::ObjectId& oid) const override {
    return objects_.contains(oid);
  }
  std::size_t object_count() const override { return objects_.count(); }
  std::uint64_t object_size(const fs::ObjectId& oid) const override;

  std::vector<fs::ObjectId> objects_in_pg(std::uint32_t pg) const override {
    return objects_.objects_in_pg(pg);
  }
  ObjectExport export_object(const fs::ObjectId& oid) const override {
    return objects_.export_object(oid);
  }
  void remove_object(const fs::ObjectId& oid) override;
  std::uint64_t object_fingerprint(const fs::ObjectId& oid) const override {
    return objects_.fingerprint(oid);
  }
  bool corrupt_object(const fs::ObjectId& oid) override { return objects_.corrupt(oid); }
  std::optional<fs::ObjectId> corrupt_some_object(std::uint64_t seed) override {
    return objects_.corrupt_some(seed);
  }
  bool verify_object(const fs::ObjectId& oid) const override {
    return objects_.verify(oid);
  }

  fs::Journal* wal() override { return &wal_; }
  void on_daemon_crash() override;

  bool assume_populated() const override { return cfg_.assume_populated; }
  std::uint64_t populated_object_size() const override {
    return cfg_.populated_object_size;
  }

  void close() override;
  sim::CoTask<void> drain() override;

  std::uint64_t dirty_bytes() const override { return deferred_pending_bytes_; }
  std::uint64_t metadata_device_reads() const override { return onode_misses_; }
  std::uint64_t applies() const override { return applies_; }
  std::uint64_t data_bytes_written() const override { return data_bytes_written_; }

  const ExtentAllocator& allocator() const { return alloc_; }
  PageCache& page_cache() { return cache_; }
  const Config& config() const { return cfg_; }
  std::uint64_t deferred_writes() const { return deferred_writes_; }
  std::uint64_t deferred_folds() const { return deferred_folds_; }
  std::uint64_t deferred_flushes() const { return deferred_flushes_; }
  std::uint64_t deferred_pending() const { return deferred_.size(); }

  /// Pseudo page index caching an object's onode (mirrors FileStore's
  /// inode/dentry/xattr block).
  static constexpr std::uint64_t kMetaPage = ~std::uint64_t(0);

 private:
  using Object = ExtentMap::Object;
  using BlockKey = std::pair<fs::ObjectId, std::uint64_t>;  // (object, block off)

  Object& materialize_object(const fs::ObjectId& oid);
  bool is_aligned(std::uint64_t off, std::uint64_t len) const {
    return len >= cfg_.block_size && off % cfg_.block_size == 0 &&
           len % cfg_.block_size == 0;
  }
  /// Whether a write's payload rides the WAL (deferred) or goes straight to
  /// a COW extent before the commit record (direct).
  bool use_deferred(std::uint64_t off, std::uint64_t len) const {
    return !is_aligned(off, len) || len < cfg_.prefer_deferred_bytes;
  }
  unsigned stream_of(const fs::ObjectId& oid) const {
    if (cfg_.write_streams == 0) return 0;
    return 1 + unsigned(ExtentMap::object_hash(oid) % cfg_.write_streams);
  }
  static std::string onode_key(const fs::ObjectId& oid);
  sim::CoTask<void> charge_cpu(Time t);

  /// COW write of aligned blocks: allocate, device-write with the stream
  /// hint, swap the physical mapping (old blocks free).
  sim::CoTask<void> write_blocks(const fs::ObjectId& oid, std::uint64_t off,
                                 std::uint64_t len);
  /// Physical block backing a logical block, allocating on first touch
  /// (deferred flush into a hole / populated base data).
  std::uint64_t ensure_phys(const fs::ObjectId& oid, std::uint64_t block_off);

  /// Register `seq`'s sub-block payload as deferred on its covering blocks.
  void register_deferred(const fs::ObjectId& oid, std::uint64_t off,
                         std::uint64_t len, std::uint64_t seq);
  /// The block is durably rewritten for `seqs` (a snapshot taken when the
  /// rewrite was issued): drop the block from each record, retiring records
  /// left with nothing pending. `counter` attributes the retirement.
  void retire_block_seqs(const BlockKey& key, const std::set<std::uint64_t>& seqs,
                         std::uint64_t* counter);
  /// A durable rewrite covered this block: retire every WAL record that was
  /// only waiting on it. `counter` attributes the retirement (fold/flush).
  void fold_block(const BlockKey& key, std::uint64_t* counter);
  void fold_covered(const fs::ObjectId& oid, std::uint64_t off, std::uint64_t len);
  void maybe_flush_deferred();
  /// Drive the deferred backlog below `floor` via in-place rewrites, up to
  /// `flush_iodepth` blocks in flight at once.
  sim::CoTask<void> flush_deferred(std::uint64_t floor);
  /// One in-flight block rewrite: device write, then retire the records
  /// that were waiting on the block when the write was issued.
  sim::CoTask<void> flush_block(BlockKey key);
  /// The single KV finalizer (BlueStore's kv_sync_thread): drains queued
  /// per-transaction metadata into merged atomic KV batches, then retires
  /// the WAL records whose only outstanding obligation was the KV commit.
  sim::CoTask<void> kv_finalize_loop();

  sim::Simulation& sim_;
  sim::CpuPool& cpu_;
  dev::Device& dev_;
  kv::Db& kv_;
  Config cfg_;
  Counters* counters_;
  PageCache cache_;
  fs::Journal wal_;
  ExtentAllocator alloc_;

  ExtentMap objects_;
  /// logical block offset -> physical block offset, per object. Only
  /// explicitly written blocks are mapped; implicit populated base data is
  /// conceptually outside the allocator pool.
  std::unordered_map<fs::ObjectId, std::map<std::uint64_t, std::uint64_t>,
                     fs::ObjectIdHash>
      phys_;

  /// Deferred-write ledger (RAM; lost on crash, rebuilt by WAL replay).
  struct DeferredRec {
    std::uint64_t bytes = 0;
    std::set<BlockKey> blocks;  // covering blocks not yet rewritten
    /// The transaction's KV batch is still in flight: even with every block
    /// durable, the record must stay replayable until the batch commits.
    bool kv_pending = false;
  };
  std::map<std::uint64_t, DeferredRec> deferred_;  // WAL seq -> record
  std::map<BlockKey, std::set<std::uint64_t>> deferred_blocks_;
  std::uint64_t deferred_pending_bytes_ = 0;
  bool flush_running_ = false;
  /// Blocks with an in-place rewrite currently on the device (each spawned
  /// flush_block owns its entry until the write lands).
  std::set<BlockKey> flush_inflight_;
  sim::CondVar flush_idle_cv_;

  /// Commit-path Phase 4 metadata, queued for the single KV finalizer.
  struct KvTxn {
    std::uint64_t seq = 0;
    bool has_deferred = false;
    std::vector<std::pair<std::string, kv::Value>> puts;       // onode + omap
    std::vector<std::pair<std::string, std::string>> rms;      // omap trims
  };
  std::deque<KvTxn> kv_queue_;
  sim::CondVar kv_cv_;
  bool kv_loop_running_ = false;
  /// Transactions whose KV batch has not yet committed (queued + in loop).
  std::uint64_t meta_inflight_ = 0;
  /// Bumped by on_daemon_crash(): finalizer work popped before the crash
  /// must not retire WAL records afterwards (they have to replay).
  std::uint64_t crash_epoch_ = 0;

  bool closing_ = false;
  std::uint64_t applies_ = 0;
  std::uint64_t data_bytes_written_ = 0;
  std::uint64_t onode_misses_ = 0;
  std::uint64_t deferred_writes_ = 0;
  std::uint64_t deferred_folds_ = 0;
  std::uint64_t deferred_flushes_ = 0;
};

}  // namespace afc::store
