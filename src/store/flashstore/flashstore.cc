#include "store/flashstore/flashstore.h"

#include <algorithm>

#include "common/stage_names.h"
#include "core/trace.h"

namespace afc::store {

FlashStore::FlashStore(sim::Simulation& sim, sim::CpuPool& cpu, dev::Device& wal_dev,
                       dev::Device& data_dev, kv::Db& kvdb, const Config& cfg,
                       Counters* counters)
    : sim_(sim),
      cpu_(cpu),
      dev_(data_dev),
      kv_(kvdb),
      cfg_(cfg),
      counters_(counters),
      cache_(cfg.page_cache_pages),
      wal_(sim, wal_dev, cfg.wal),
      alloc_(cfg.device_bytes, cfg.block_size),
      flush_idle_cv_(sim),
      kv_cv_(sim) {}

sim::CoTask<void> FlashStore::charge_cpu(Time t) {
  co_await cpu_.consume(Time(double(t) * cfg_.cpu_multiplier));
}

std::string FlashStore::onode_key(const fs::ObjectId& oid) {
  return "onode." + std::to_string(oid.pg) + "." + oid.name;
}

FlashStore::Object& FlashStore::materialize_object(const fs::ObjectId& oid) {
  if (Object* existing = objects_.find(oid); existing != nullptr) return *existing;
  Object& obj = objects_.get_or_create(oid);
  if (cfg_.assume_populated) {
    // The cluster is pre-filled: this object already holds data and
    // metadata from before the measurement window. Its base data is
    // conceptually outside the allocator pool (written before this run),
    // so no physical blocks are mapped for it.
    obj.size = cfg_.populated_object_size;
    obj.extents.emplace(0, ExtentMap::make_extent(Payload::pattern(
                               cfg_.populated_object_size, ExtentMap::populated_seed(oid))));
    obj.xattrs.emplace("_", kv::Value::virt(std::uint32_t(cfg_.populated_xattr_bytes)));
    obj.xattrs.emplace("snapset", kv::Value::virt(31));
  }
  return obj;
}

std::uint64_t FlashStore::ensure_phys(const fs::ObjectId& oid, std::uint64_t block_off) {
  auto& pm = phys_[oid];
  auto it = pm.find(block_off);
  if (it != pm.end()) return it->second;
  const std::uint64_t phys = alloc_.allocate(cfg_.block_size);
  pm.emplace(block_off, phys);
  return phys;
}

sim::CoTask<void> FlashStore::write_blocks(const fs::ObjectId& oid, std::uint64_t off,
                                           std::uint64_t len) {
  // COW: one contiguous fresh run, written with the object's stream hint;
  // the blocks it replaces free only after the new data is durable.
  const std::uint64_t phys = alloc_.allocate(len);
  co_await dev_.submit(dev::IoType::kWrite, phys, len, stream_of(oid));
  auto& pm = phys_[oid];
  for (std::uint64_t b = 0; b < len; b += cfg_.block_size) {
    auto [it, inserted] = pm.try_emplace(off + b, phys + b);
    if (!inserted) {
      alloc_.free(it->second, cfg_.block_size);
      it->second = phys + b;
    }
  }
}

void FlashStore::register_deferred(const fs::ObjectId& oid, std::uint64_t off,
                                   std::uint64_t len, std::uint64_t seq) {
  DeferredRec& rec = deferred_[seq];
  rec.bytes += len;
  const std::uint64_t b0 = off / cfg_.block_size * cfg_.block_size;
  const std::uint64_t bend =
      (off + len + cfg_.block_size - 1) / cfg_.block_size * cfg_.block_size;
  for (std::uint64_t b = b0; b < bend; b += cfg_.block_size) {
    rec.blocks.insert({oid, b});
    deferred_blocks_[{oid, b}].insert(seq);
    // The eventual read-modify-write needs a backing block; allocating now
    // keeps the flush path free of mapping decisions.
    ensure_phys(oid, b);
  }
  deferred_pending_bytes_ += len;
}

void FlashStore::retire_block_seqs(const BlockKey& key,
                                   const std::set<std::uint64_t>& seqs,
                                   std::uint64_t* counter) {
  auto bit = deferred_blocks_.find(key);
  if (bit == deferred_blocks_.end()) return;
  for (std::uint64_t seq : seqs) {
    bit->second.erase(seq);
    auto it = deferred_.find(seq);
    if (it == deferred_.end()) continue;
    it->second.blocks.erase(key);
    if (!it->second.blocks.empty()) continue;
    // Every block this record was waiting on has been durably rewritten:
    // the payload is realized on media and leaves the flush backlog.
    deferred_pending_bytes_ -= std::min(deferred_pending_bytes_, it->second.bytes);
    it->second.bytes = 0;
    (*counter)++;
    if (it->second.kv_pending) continue;  // ring space frees once KV lands
    deferred_.erase(it);
    wal_.mark_applied(seq);
  }
  if (bit->second.empty()) deferred_blocks_.erase(bit);
}

void FlashStore::fold_block(const BlockKey& key, std::uint64_t* counter) {
  auto bit = deferred_blocks_.find(key);
  if (bit == deferred_blocks_.end()) return;
  const std::set<std::uint64_t> seqs = bit->second;
  retire_block_seqs(key, seqs, counter);
}

void FlashStore::fold_covered(const fs::ObjectId& oid, std::uint64_t off,
                              std::uint64_t len) {
  if (deferred_blocks_.empty()) return;
  const std::uint64_t b0 = off / cfg_.block_size * cfg_.block_size;
  for (auto it = deferred_blocks_.lower_bound({oid, b0});
       it != deferred_blocks_.end() && it->first.first == oid &&
       it->first.second < off + len;) {
    const BlockKey key = it->first;
    ++it;  // fold_block erases exactly this entry
    fold_block(key, &deferred_folds_);
  }
}

void FlashStore::maybe_flush_deferred() {
  if (flush_running_ || deferred_pending_bytes_ < cfg_.deferred_flush_bytes) return;
  flush_running_ = true;
  sim::spawn_fn([this]() -> sim::CoTask<void> {
    co_await flush_deferred(cfg_.deferred_flush_bytes / 2);
    flush_running_ = false;
    flush_idle_cv_.notify_all();
  });
}

sim::CoTask<void> FlashStore::flush_deferred(std::uint64_t floor) {
  // Oldest record first, `flush_iodepth` in-place rewrites in flight at
  // once — the drive's channels absorb them, so the flush keeps pace with
  // the deferred ingest rate instead of serializing one program at a time.
  while (!deferred_.empty() && deferred_pending_bytes_ > floor) {
    if (flush_inflight_.size() >= cfg_.flush_iodepth) {
      co_await flush_idle_cv_.wait();
      continue;
    }
    BlockKey key{};
    bool found = false;
    for (const auto& [seq, rec] : deferred_) {
      for (const BlockKey& k : rec.blocks) {
        if (!flush_inflight_.contains(k)) {
          key = k;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) {
      // Every pending block is already on the device; wait for a landing.
      if (flush_inflight_.empty()) break;  // ledger cleared under us (crash)
      co_await flush_idle_cv_.wait();
      continue;
    }
    flush_inflight_.insert(key);
    sim::spawn(flush_block(key));
  }
  while (!flush_inflight_.empty()) co_await flush_idle_cv_.wait();
}

sim::CoTask<void> FlashStore::flush_block(BlockKey key) {
  // Snapshot the records waiting on this block now: a write that registers
  // *while* the device program is in flight is newer than the data going to
  // media and must keep its WAL record.
  auto bit = deferred_blocks_.find(key);
  if (bit == deferred_blocks_.end()) {
    // Folded away (direct overwrite / object removal) between dispatch and
    // start — nothing left to make durable.
    flush_inflight_.erase(key);
    flush_idle_cv_.notify_all();
    co_return;
  }
  const std::set<std::uint64_t> snapshot = bit->second;
  co_await charge_cpu(cfg_.flush_submit_cpu);
  const std::uint64_t phys = ensure_phys(key.first, key.second);
  co_await dev_.submit(dev::IoType::kWrite, phys, cfg_.block_size, stream_of(key.first));
  retire_block_seqs(key, snapshot, &deferred_flushes_);
  flush_inflight_.erase(key);
  flush_idle_cv_.notify_all();
}

sim::CoTask<std::uint64_t> FlashStore::queue_transaction(const fs::Transaction& tx,
                                                         bool /*lightweight*/) {
  if (closing_) co_return 0;
  applies_++;
  const Time t0 = sim_.now();

  // Phase 1 — data: COW device writes for large aligned extents, before
  // the commit record. Torn data is invisible: the mapping only becomes
  // real when the WAL record commits. Deferred payloads (sub-block, or
  // aligned below prefer_deferred_bytes) ride the WAL record instead — the
  // ack path pays one NVRAM program, never an SSD program.
  std::uint64_t wal_bytes = cfg_.wal_meta_bytes;
  for (const auto& op : tx.ops()) {
    if (op.type != fs::TxOpType::kWrite) continue;
    const std::uint64_t len = op.data.size();
    if (len == 0) continue;
    if (!use_deferred(op.offset, len)) {
      co_await charge_cpu(cfg_.alloc_cpu);
      co_await write_blocks(op.oid, op.offset, len);
    } else {
      wal_bytes += len;  // deferred payload rides the WAL record
    }
  }

  // Phase 2 — the commit record (durability point).
  co_await wal_.reserve(wal_bytes);
  const std::uint64_t seq = co_await wal_.write_entry(wal_bytes, tx.encode(), tx.trace);
  if (seq == 0) {
    wal_.release(wal_bytes);
    co_return 0;  // closing mid-write: nothing durable, the op must not ack
  }

  // Phase 3 — install, synchronously and in WAL-commit order: extents,
  // xattrs, deferred ledger. No suspension until every content mutation of
  // this transaction has landed, so concurrent transactions can never
  // interleave within one object.
  KvTxn meta;
  meta.seq = seq;
  std::uint64_t deferred_bytes = 0;
  std::set<std::string> onodes;
  std::vector<const fs::TxOp*> rmranges;
  for (const auto& op : tx.ops()) {
    switch (op.type) {
      case fs::TxOpType::kWrite: {
        const std::uint64_t len = op.data.size();
        if (len == 0) break;
        Object& obj = materialize_object(op.oid);
        cache_.insert_range(ExtentMap::object_hash(op.oid), op.offset, len);
        ExtentMap::write_extent(obj, op.offset, op.data);
        data_bytes_written_ += len;
        if (!use_deferred(op.offset, len)) {
          // Fresh durable blocks under this range: deferred records that
          // were only waiting on them are superseded and retire.
          fold_covered(op.oid, op.offset, len);
        } else {
          register_deferred(op.oid, op.offset, len, seq);
          deferred_bytes += len;
        }
        onodes.insert(onode_key(op.oid));
        break;
      }
      case fs::TxOpType::kOmapSetKeys:
        for (const auto& [k, v] : op.omap) meta.puts.emplace_back(k, v);
        break;
      case fs::TxOpType::kOmapRmKeyRange:
        rmranges.push_back(&op);
        break;
      case fs::TxOpType::kSetAttrs: {
        Object& obj = materialize_object(op.oid);
        for (const auto& [k, v] : op.attrs) obj.xattrs[k] = v;
        cache_.insert(ExtentMap::object_hash(op.oid), kMetaPage);
        onodes.insert(onode_key(op.oid));
        break;
      }
      case fs::TxOpType::kSetAllocHint:
        break;  // raw-device store: no filesystem to hint
    }
  }

  // Phase 4 — metadata: onodes + omap, handed to the single KV finalizer,
  // which merges up to kv_batch_max transactions into one atomic KV batch
  // (FileStore pays the same cost in its apply stage, also off the ack
  // path). Durability holds throughout: the WAL record replays until the
  // batch commits — mark_applied fires only after.
  for (const auto& k : onodes)
    meta.puts.emplace_back(k, kv::Value::virt(std::uint32_t(cfg_.onode_bytes)));
  meta.rms.reserve(rmranges.size());
  for (const fs::TxOp* op : rmranges) meta.rms.emplace_back(op->range_lo, op->range_hi);

  const bool has_deferred = deferred_bytes > 0;
  meta.has_deferred = has_deferred;
  if (has_deferred) {
    deferred_[seq].kv_pending = true;
    deferred_writes_++;
    if (counters_ != nullptr) counters_->add("flash.deferred_writes");
  }
  meta_inflight_++;
  kv_queue_.push_back(std::move(meta));
  kv_cv_.notify_all();
  if (!kv_loop_running_) {
    kv_loop_running_ = true;
    sim::spawn(kv_finalize_loop());
  }
  if (has_deferred) maybe_flush_deferred();
  if (auto* tr = trace::Collector::active(); tr != nullptr && tx.trace.valid()) {
    tr->complete(tx.trace, tr->stage_id(stage::kFsApply), t0, sim_.now());
  }
  co_return seq;
}

sim::CoTask<void> FlashStore::kv_finalize_loop() {
  // BlueStore's kv_sync_thread: ONE background finalizer drains the queued
  // per-transaction metadata in merged batches. One KV WAL record per group
  // (not per transaction) and the LSM's per-batch CPU amortizes; repeated
  // keys inside the window (a hot PG's info key, a hot object's onode)
  // collapse last-writer-wins before they ever reach the memtable.
  for (;;) {
    while (kv_queue_.empty()) {
      if (closing_) {
        kv_loop_running_ = false;
        co_return;
      }
      co_await kv_cv_.wait();
    }
    if (cfg_.kv_commit_interval > 0 && !closing_ &&
        kv_queue_.size() < cfg_.kv_batch_max) {
      // Let a group form (BlueStore commits at kv_sync cadence, not per
      // transaction); under load the queue fills to kv_batch_max here.
      co_await sim::delay(sim_, cfg_.kv_commit_interval, "flashstore.kv_interval");
    }
    std::vector<KvTxn> txns;
    while (!kv_queue_.empty() && txns.size() < cfg_.kv_batch_max) {
      txns.push_back(std::move(kv_queue_.front()));
      kv_queue_.pop_front();
    }
    const std::uint64_t epoch = crash_epoch_;
    // Per-transaction bookkeeping CPU rides here, off the ack path — the
    // same accounting position as FileStore's apply stage.
    co_await charge_cpu(cfg_.apply_cpu * Time(txns.size()));
    kv::WriteBatch batch;
    for (auto& t : txns) {
      for (auto& [lo, hi] : t.rms) {
        auto keys = co_await kv_.range_keys(lo, hi, 4096);
        for (auto& k : keys) batch.del(std::move(k));
      }
    }
    std::unordered_map<std::string, std::size_t> last;
    std::vector<std::pair<std::string, kv::Value>> puts;
    for (auto& t : txns) {
      for (auto& [k, v] : t.puts) {
        if (auto it = last.find(k); it != last.end()) {
          puts[it->second].second = std::move(v);  // superseded within the group
        } else {
          last.emplace(k, puts.size());
          puts.emplace_back(std::move(k), std::move(v));
        }
      }
    }
    for (auto& [k, v] : puts) batch.put(std::move(k), std::move(v));
    if (batch.size() > 0) co_await kv_.write(std::move(batch));
    if (epoch != crash_epoch_) continue;  // crashed mid-batch: records replay
    for (const KvTxn& t : txns) {
      if (!t.has_deferred) {
        wal_.mark_applied(t.seq);  // data durable in Phase 1, metadata now too
      } else if (auto it = deferred_.find(t.seq);
                 it != deferred_.end() && it->second.kv_pending) {
        it->second.kv_pending = false;
        if (it->second.blocks.empty()) {
          // The flush finished while the batch was in flight; retire now.
          deferred_.erase(it);
          wal_.mark_applied(t.seq);
        }
      }
      meta_inflight_--;
    }
    flush_idle_cv_.notify_all();
  }
}

sim::CoTask<void> FlashStore::apply_transaction(const fs::Transaction& tx,
                                                bool /*lightweight*/) {
  applies_++;
  const Time t0 = sim_.now();
  co_await charge_cpu(cfg_.apply_cpu);

  // Content install first, synchronously (same atomicity as the commit
  // path); device and KV charges follow.
  kv::WriteBatch batch;
  batch.trace = tx.trace;
  struct DataOp {
    fs::ObjectId oid;
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    bool aligned = false;
  };
  std::vector<DataOp> data_ops;
  std::set<std::string> onodes;
  std::vector<const fs::TxOp*> rmranges;
  for (const auto& op : tx.ops()) {
    switch (op.type) {
      case fs::TxOpType::kWrite: {
        const std::uint64_t len = op.data.size();
        if (len == 0) break;
        Object& obj = materialize_object(op.oid);
        cache_.insert_range(ExtentMap::object_hash(op.oid), op.offset, len);
        ExtentMap::write_extent(obj, op.offset, op.data);
        data_bytes_written_ += len;
        data_ops.push_back({op.oid, op.offset, len, is_aligned(op.offset, len)});
        onodes.insert(onode_key(op.oid));
        break;
      }
      case fs::TxOpType::kOmapSetKeys:
        for (const auto& [k, v] : op.omap) batch.put(k, v);
        break;
      case fs::TxOpType::kOmapRmKeyRange:
        rmranges.push_back(&op);
        break;
      case fs::TxOpType::kSetAttrs: {
        Object& obj = materialize_object(op.oid);
        for (const auto& [k, v] : op.attrs) obj.xattrs[k] = v;
        cache_.insert(ExtentMap::object_hash(op.oid), kMetaPage);
        onodes.insert(onode_key(op.oid));
        break;
      }
      case fs::TxOpType::kSetAllocHint:
        break;
    }
  }

  // Data charges: aligned ranges go COW; sub-block payloads rewrite their
  // covering blocks in place, exactly as a deferred flush would (this path
  // serves WAL replay and recovery imports, where the payload goes
  // straight to media — nothing is re-deferred).
  for (const DataOp& d : data_ops) {
    co_await charge_cpu(cfg_.alloc_cpu);
    if (d.aligned) {
      co_await write_blocks(d.oid, d.off, d.len);
      fold_covered(d.oid, d.off, d.len);
    } else {
      const std::uint64_t b0 = d.off / cfg_.block_size * cfg_.block_size;
      const std::uint64_t bend =
          (d.off + d.len + cfg_.block_size - 1) / cfg_.block_size * cfg_.block_size;
      for (std::uint64_t b = b0; b < bend; b += cfg_.block_size) {
        const std::uint64_t phys = ensure_phys(d.oid, b);
        co_await dev_.submit(dev::IoType::kWrite, phys, cfg_.block_size,
                             stream_of(d.oid));
      }
      fold_covered(d.oid, b0, bend - b0);
    }
  }

  for (const auto& k : onodes)
    batch.put(k, kv::Value::virt(std::uint32_t(cfg_.onode_bytes)));
  for (const fs::TxOp* op : rmranges) {
    auto keys = co_await kv_.range_keys(op->range_lo, op->range_hi, 4096);
    for (auto& k : keys) batch.del(std::move(k));
  }
  if (batch.size() > 0) co_await kv_.write(std::move(batch));

  if (auto* tr = trace::Collector::active(); tr != nullptr && tx.trace.valid()) {
    tr->complete(tx.trace, tr->stage_id(stage::kFsApply), t0, sim_.now());
  }
}

sim::CoTask<FlashStore::ReadResult> FlashStore::read(const fs::ObjectId& oid,
                                                     std::uint64_t off,
                                                     std::uint64_t len, bool want_data) {
  ReadResult result;
  co_await charge_cpu(cfg_.read_cpu);
  const Object* obj = objects_.find(oid);
  const bool implicit = obj == nullptr && cfg_.assume_populated;
  if (obj == nullptr && !implicit) co_return result;

  const std::uint64_t obj_size = implicit ? cfg_.populated_object_size : obj->size;
  if (off >= obj_size) {
    result.found = true;
    result.length = 0;
    if (want_data) result.data.emplace();
    co_return result;
  }
  const std::uint64_t n = std::min(len, obj_size - off);

  const std::uint64_t oh = ExtentMap::object_hash(oid);
  const std::uint64_t missing = cache_.missing_pages(oh, off, n);
  if (missing > 0) {
    co_await dev_.submit(dev::IoType::kRead, off, missing * fs::PageCache::kPageSize);
  }
  cache_.insert_range(oh, off, n);

  result.found = true;
  result.length = n;
  if (want_data) {
    if (implicit) {
      result.data =
          Payload::pattern(n, ExtentMap::populated_seed(oid), off).materialize();
    } else {
      result.data = ExtentMap::assemble(*obj, off, n);
    }
  }
  co_return result;
}

sim::CoTask<std::optional<kv::Value>> FlashStore::getattr(const fs::ObjectId& oid,
                                                          const std::string& name) {
  co_await charge_cpu(cfg_.read_cpu);
  const std::uint64_t oh = ExtentMap::object_hash(oid);
  if (!cache_.lookup(oh, kMetaPage)) {
    // Cold onode: one KV point lookup (block cache / SSTables charge their
    // own device reads) instead of FileStore's inode page read.
    onode_misses_++;
    if (counters_ != nullptr) counters_->add("flash.onode_reads");
    co_await kv_.get(onode_key(oid));
    cache_.insert(oh, kMetaPage);
  }
  const Object* obj = objects_.find(oid);
  if (obj == nullptr) {
    if (cfg_.assume_populated) {
      if (name == "_") co_return kv::Value::virt(std::uint32_t(cfg_.populated_xattr_bytes));
      if (name == "snapset") co_return kv::Value::virt(31);
    }
    co_return std::nullopt;
  }
  auto it = obj->xattrs.find(name);
  if (it == obj->xattrs.end()) co_return std::nullopt;
  co_return it->second;
}

sim::CoTask<std::optional<std::uint64_t>> FlashStore::stat(const fs::ObjectId& oid) {
  co_await charge_cpu(cfg_.read_cpu);
  const std::uint64_t oh = ExtentMap::object_hash(oid);
  if (!cache_.lookup(oh, kMetaPage)) {
    onode_misses_++;
    if (counters_ != nullptr) counters_->add("flash.onode_reads");
    co_await kv_.get(onode_key(oid));
    cache_.insert(oh, kMetaPage);
  }
  const Object* obj = objects_.find(oid);
  if (obj != nullptr) co_return obj->size;
  if (cfg_.assume_populated) co_return cfg_.populated_object_size;
  co_return std::nullopt;
}

std::uint64_t FlashStore::object_size(const fs::ObjectId& oid) const {
  const Object* obj = objects_.find(oid);
  return obj != nullptr ? obj->size : 0;
}

void FlashStore::remove_object(const fs::ObjectId& oid) {
  objects_.remove(oid);
  auto pit = phys_.find(oid);
  if (pit != phys_.end()) {
    for (const auto& [lb, pb] : pit->second) alloc_.free(pb, cfg_.block_size);
    phys_.erase(pit);
  }
  // Deferred records pending on this object are moot — the object is being
  // replaced wholesale (recovery) and the importer rewrites everything.
  for (auto it = deferred_blocks_.lower_bound({oid, 0});
       it != deferred_blocks_.end() && it->first.first == oid;) {
    const BlockKey key = it->first;
    ++it;  // fold_block erases exactly this entry
    fold_block(key, &deferred_folds_);
  }
}

void FlashStore::on_daemon_crash() {
  // The deferred ledger and the queued KV finalizer work are daemon RAM:
  // gone. The WAL records they tracked stay durable on media — restart
  // replays them (their sub-block payloads are rewritten in place by
  // apply_transaction) and the OSD's replay loop then retires them. The
  // epoch bump stops a finalizer group popped before the crash from
  // retiring records afterwards.
  deferred_.clear();
  deferred_blocks_.clear();
  deferred_pending_bytes_ = 0;
  kv_queue_.clear();
  meta_inflight_ = 0;
  crash_epoch_++;
  flush_idle_cv_.notify_all();
}

void FlashStore::close() {
  closing_ = true;
  wal_.close();
  kv_cv_.notify_all();
}

sim::CoTask<void> FlashStore::drain() {
  while (meta_inflight_ > 0) co_await flush_idle_cv_.wait();
  co_await flush_deferred(0);
  while (flush_running_ || !flush_inflight_.empty() || meta_inflight_ > 0) {
    co_await flush_idle_cv_.wait();
  }
}

}  // namespace afc::store
