#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fs/transaction.h"

namespace afc::store {

/// Whole-object snapshot used by recovery / backfill / scrub repair
/// (control plane; the caller charges the I/O).
struct ObjectExport {
  std::vector<std::pair<std::uint64_t, Payload>> extents;
  std::vector<std::pair<std::string, kv::Value>> xattrs;
  std::uint64_t size = 0;
};

/// Host-side object content shared by every ObjectStore backend: a table of
/// objects, each a checksummed extent map plus xattrs and a logical size.
/// Pure bookkeeping — nothing here has simulated cost; backends charge CPU
/// and device I/O around these calls.
class ExtentMap {
 public:
  struct Extent {
    Payload data;            // length == extent length
    std::uint64_t csum = 0;  // data.fingerprint() recorded at write time
  };
  /// Every legitimate write goes through here so the checksum always
  /// matches; corruption paths bypass it, leaving the csum stale.
  static Extent make_extent(Payload data) {
    const std::uint64_t c = data.fingerprint();
    return Extent{std::move(data), c};
  }
  struct Object {
    std::map<std::uint64_t, Extent> extents;  // by offset, non-overlapping
    std::map<std::string, kv::Value> xattrs;
    std::uint64_t size = 0;
  };

  bool contains(const fs::ObjectId& oid) const { return objects_.count(oid) != 0; }
  std::size_t count() const { return objects_.size(); }
  Object* find(const fs::ObjectId& oid);
  const Object* find(const fs::ObjectId& oid) const;
  Object& get_or_create(const fs::ObjectId& oid);
  void remove(const fs::ObjectId& oid) { objects_.erase(oid); }
  std::vector<fs::ObjectId> objects_in_pg(std::uint32_t pg) const;

  static std::uint64_t object_hash(const fs::ObjectId& oid) {
    return fs::ObjectIdHash{}(oid) | 1;  // never 0 (0 reserved)
  }
  /// Synthesized content seed for implicitly-populated objects.
  static std::uint64_t populated_seed(const fs::ObjectId& oid) {
    return object_hash(oid) ^ 0xfeedfacecafebeefull;
  }

  /// Insert [off, off+data.size()) into the object, trimming or splitting
  /// overlapped extents (split pieces are re-checksummed).
  static void write_extent(Object& obj, std::uint64_t off, Payload data);

  /// Materialize [off, off+n) from the object's extents (holes read zero).
  static std::vector<std::uint8_t> assemble(const Object& obj, std::uint64_t off,
                                            std::uint64_t n);

  /// Content fingerprint over the object's extents + size (scrub).
  std::uint64_t fingerprint(const fs::ObjectId& oid) const;
  /// FAILURE INJECTION: silently flip one byte of the object's first
  /// extent, as latent media corruption would. Returns false if the object
  /// has no data.
  bool corrupt(const fs::ObjectId& oid);
  /// FAILURE INJECTION: corrupt() on a seeded-random resident object.
  std::optional<fs::ObjectId> corrupt_some(std::uint64_t seed);
  /// Deep-scrub self-check: every extent's content still matches the
  /// checksum recorded when it was written. True for absent objects.
  bool verify(const fs::ObjectId& oid) const;

  ObjectExport export_object(const fs::ObjectId& oid) const;

 private:
  std::unordered_map<fs::ObjectId, Object, fs::ObjectIdHash> objects_;
};

}  // namespace afc::store
