#include "store/extent_map.h"

#include <algorithm>

#include "common/rng.h"

namespace afc::store {

ExtentMap::Object* ExtentMap::find(const fs::ObjectId& oid) {
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

const ExtentMap::Object* ExtentMap::find(const fs::ObjectId& oid) const {
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

ExtentMap::Object& ExtentMap::get_or_create(const fs::ObjectId& oid) {
  return objects_[oid];
}

std::vector<fs::ObjectId> ExtentMap::objects_in_pg(std::uint32_t pg) const {
  std::vector<fs::ObjectId> out;
  for (const auto& [oid, obj] : objects_) {
    if (oid.pg == pg) out.push_back(oid);
  }
  return out;
}

void ExtentMap::write_extent(Object& obj, std::uint64_t off, Payload data) {
  const std::uint64_t end = off + data.size();
  if (data.size() == 0) return;
  // Remove / trim extents overlapping [off, end).
  auto it = obj.extents.lower_bound(off);
  if (it != obj.extents.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t pstart = prev->first;
    const std::uint64_t pend = pstart + prev->second.data.size();
    if (pend > off) {
      // Previous extent overlaps from the left: keep its head, and if it
      // extends past our end, keep its tail too.
      Extent tail{};
      const bool has_tail = pend > end;
      if (has_tail) tail = make_extent(prev->second.data.slice(end - pstart, pend - end));
      prev->second = make_extent(prev->second.data.slice(0, off - pstart));
      if (prev->second.data.size() == 0) obj.extents.erase(prev);
      if (has_tail) obj.extents.emplace(end, std::move(tail));
    }
  }
  it = obj.extents.lower_bound(off);
  while (it != obj.extents.end() && it->first < end) {
    const std::uint64_t estart = it->first;
    const std::uint64_t eend = estart + it->second.data.size();
    if (eend <= end) {
      it = obj.extents.erase(it);
    } else {
      Extent tail = make_extent(it->second.data.slice(end - estart, eend - end));
      obj.extents.erase(it);
      obj.extents.emplace(end, std::move(tail));
      break;
    }
  }
  obj.extents.emplace(off, make_extent(std::move(data)));
  if (end > obj.size) obj.size = end;
}

std::vector<std::uint8_t> ExtentMap::assemble(const Object& obj, std::uint64_t off,
                                              std::uint64_t n) {
  std::vector<std::uint8_t> out(n, 0);
  for (const auto& [estart, ext] : obj.extents) {
    const std::uint64_t eend = estart + ext.data.size();
    if (eend <= off || estart >= off + n) continue;
    const std::uint64_t from = std::max(estart, off);
    const std::uint64_t to = std::min(eend, off + n);
    auto piece = ext.data.slice(from - estart, to - from).materialize();
    std::copy(piece.begin(), piece.end(), out.begin() + long(from - off));
  }
  return out;
}

std::uint64_t ExtentMap::fingerprint(const fs::ObjectId& oid) const {
  const Object* obj = find(oid);
  if (obj == nullptr) return 0;
  std::uint64_t h = 0xcbf29ce484222325ull ^ obj->size;
  for (const auto& [off, ext] : obj->extents) {
    h ^= off + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= ext.data.fingerprint() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

bool ExtentMap::corrupt(const fs::ObjectId& oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end() || it->second.extents.empty()) return false;
  auto& ext = it->second.extents.begin()->second;
  auto bytes = ext.data.materialize();
  if (bytes.empty()) return false;
  bytes[bytes.size() / 2] ^= 0x5a;
  // Bypasses make_extent on purpose: the recorded csum goes stale, exactly
  // like media rot under a checksum written at write time.
  ext.data = Payload::bytes(std::move(bytes));
  return true;
}

std::optional<fs::ObjectId> ExtentMap::corrupt_some(std::uint64_t seed) {
  std::vector<fs::ObjectId> oids;
  oids.reserve(objects_.size());
  for (const auto& [oid, obj] : objects_) {
    if (!obj.extents.empty()) oids.push_back(oid);
  }
  if (oids.empty()) return std::nullopt;
  std::sort(oids.begin(), oids.end());  // seeded pick independent of hash order
  Rng rng(seed ^ 0xB17F11Dull);
  fs::ObjectId victim = oids[rng.uniform_int(0, oids.size() - 1)];
  if (!corrupt(victim)) return std::nullopt;
  return victim;
}

bool ExtentMap::verify(const fs::ObjectId& oid) const {
  const Object* obj = find(oid);
  if (obj == nullptr) return true;
  for (const auto& [off, ext] : obj->extents) {
    if (ext.data.fingerprint() != ext.csum) return false;
  }
  return true;
}

ObjectExport ExtentMap::export_object(const fs::ObjectId& oid) const {
  ObjectExport out;
  const Object* obj = find(oid);
  if (obj == nullptr) return out;
  out.size = obj->size;
  for (const auto& [off, ext] : obj->extents) out.extents.emplace_back(off, ext.data);
  for (const auto& [k, v] : obj->xattrs) out.xattrs.emplace_back(k, v);
  return out;
}

}  // namespace afc::store
