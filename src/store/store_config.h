#pragma once

#include <memory>
#include <string>

#include "fs/filestore.h"
#include "store/flashstore/flashstore.h"
#include "store/object_store.h"

namespace afc::store {

/// Which object-store backend an OSD runs. `kFile` is the paper's
/// FileStore-on-XFS pipeline (external NVRAM journal + filesystem apply);
/// `kFlash` is the raw-device FlashStore (extent allocator + deferred-write
/// WAL + KV metadata). Default is kFile: with it, every figure is
/// byte-identical to the pre-FlashStore tree.
enum class Backend { kFile, kFlash };

struct StoreConfig {
  Backend backend = Backend::kFile;
  fs::FileStore::Config file;
  FlashStore::Config flash;
};

const char* backend_name(Backend b);

/// Parse "file" / "flash" (anything else: nullopt).
std::optional<Backend> parse_backend(const std::string& name);

/// Build the configured backend. `journal_dev` is the NVRAM card: FileStore
/// ignores it (the OSD's external journal owns that device); FlashStore
/// places its deferred-write WAL on it. `data_dev` is the data SSD and
/// `kvdb` the OSD's LSM KV (omap for FileStore; omap + onodes for
/// FlashStore).
std::unique_ptr<ObjectStore> make_store(sim::Simulation& sim, sim::CpuPool& cpu,
                                        dev::Device& journal_dev, dev::Device& data_dev,
                                        kv::Db& kvdb, const StoreConfig& cfg,
                                        Counters* counters = nullptr);

}  // namespace afc::store
