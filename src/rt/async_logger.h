#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/interned.h"
#include "rt/mpmc_queue.h"

namespace afc::rt {

/// Real-threads dout (§3.3). Blocking mode reproduces community Ceph: the
/// calling thread formats the entry and hands it through a small bounded
/// queue to ONE writer thread — under load producers wait on the queue.
/// Non-blocking mode is the AFCeph design: submission is a try-push that
/// never waits (overflow entries are dropped and counted), several writer
/// threads drain in parallel, and the intern pool is the log cache that
/// collapses repeated-template formatting into a lookup.
class AsyncLogger {
 public:
  struct Config {
    bool nonblocking = false;
    unsigned writer_threads = 1;
    std::size_t queue_capacity = 64;  // community: tiny handoff window
    std::size_t ring_entries = 8192;  // in-memory destination ring
    bool use_log_cache = false;
  };

  explicit AsyncLogger(const Config& cfg);
  ~AsyncLogger();
  AsyncLogger(const AsyncLogger&) = delete;
  AsyncLogger& operator=(const AsyncLogger&) = delete;

  /// Emit one entry built from a template and a value (the argument mimics
  /// the dynamic part of a dout line).
  void log(std::string_view tmpl, std::uint64_t value);

  /// Lifecycle contract (docs/MODEL.md): stops intake (a racing log() call
  /// counts its entry as dropped, never blocks, never loses it silently —
  /// written() + dropped() == submitted() once producers have returned),
  /// drains every accepted entry to the ring, then joins the writers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  std::uint64_t submitted() const { return submitted_.load(); }
  std::uint64_t dropped() const { return dropped_.load(); }
  std::uint64_t written() const { return written_.load(); }
  std::uint64_t cache_hits() const { return cache_hits_.load(); }

  /// Snapshot of the most recent in-memory entries (test inspection).
  std::vector<std::string> recent(std::size_t n) const;

 private:
  struct Entry {
    InternPool::Id tmpl = 0;
    std::uint64_t value = 0;
    std::string formatted;  // blocking mode formats inline
  };

  void writer_main();
  std::string format(std::string_view tmpl, std::uint64_t value) const;

  Config cfg_;
  InternPool pool_;
  mutable std::mutex pool_mu_;
  MpmcQueue<Entry> queue_;
  std::vector<std::thread> writers_;

  mutable std::mutex ring_mu_;
  std::vector<std::string> ring_;
  std::size_t ring_pos_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
};

}  // namespace afc::rt
