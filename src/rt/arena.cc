#include "rt/arena.h"

#include <unordered_map>

namespace afc::rt {

namespace {
std::atomic<std::uint64_t> g_next_arena_id{1};
thread_local std::unordered_map<std::uint64_t, Arena::ThreadCache*>* tl_caches = nullptr;
}  // namespace

std::uint64_t Arena::next_id() {
  return g_next_arena_id.fetch_add(1, std::memory_order_relaxed);
}

Arena::~Arena() {
  // Lifecycle contract: destruction must not race allocate/deallocate (all
  // user threads quiesced first). The lock is still taken so the registry
  // writes of late-registering threads are visible here, not just by luck
  // of the joining fence.
  std::lock_guard lk(caches_mu_);
  for (ThreadCache* tc : caches_) delete tc;
  for (void* slab : slabs_) ::operator delete(slab);
}

Arena::ThreadCache& Arena::cache() {
  if (tl_caches == nullptr) {
    static thread_local std::unordered_map<std::uint64_t, ThreadCache*> storage;
    tl_caches = &storage;
  }
  auto it = tl_caches->find(id_);
  if (it != tl_caches->end()) return *it->second;
  auto* tc = new ThreadCache();
  {
    std::lock_guard lk(caches_mu_);
    caches_.push_back(tc);
  }
  tl_caches->emplace(id_, tc);
  return *tc;
}

void* Arena::carve(std::size_t cls) {
  const std::size_t bytes = (cls + 1) * kGranule;
  if (slab_left_ < bytes) {
    auto* slab = static_cast<unsigned char*>(::operator new(kSlabBytes));
    slabs_.push_back(slab);
    slab_cursor_ = slab;
    slab_left_ = kSlabBytes;
    slab_bytes_.fetch_add(kSlabBytes, std::memory_order_relaxed);
  }
  void* p = slab_cursor_;
  slab_cursor_ += bytes;
  slab_left_ -= bytes;
  return p;
}

void Arena::refill(ThreadCache& tc, std::size_t cls) {
  std::lock_guard lk(central_mu_);
  refills_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kRefillBatch; i++) {
    FreeNode* node;
    if (central_[cls] != nullptr) {
      node = central_[cls];
      central_[cls] = node->next;
    } else {
      node = static_cast<FreeNode*>(carve(cls));
    }
    node->next = tc.lists[cls];
    tc.lists[cls] = node;
    tc.counts[cls]++;
  }
}

void Arena::flush(ThreadCache& tc, std::size_t cls) {
  std::lock_guard lk(central_mu_);
  // Return half the cache to the central list.
  for (std::size_t i = 0; i < kFlushAt / 2; i++) {
    FreeNode* node = tc.lists[cls];
    tc.lists[cls] = node->next;
    tc.counts[cls]--;
    node->next = central_[cls];
    central_[cls] = node;
  }
}

void* Arena::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxSmall) return ::operator new(bytes);
  const std::size_t cls = class_of(bytes);
  ThreadCache& tc = cache();
  if (tc.lists[cls] == nullptr) refill(tc, cls);
  FreeNode* node = tc.lists[cls];
  tc.lists[cls] = node->next;
  tc.counts[cls]--;
  return node;
}

void Arena::deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxSmall) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = class_of(bytes);
  ThreadCache& tc = cache();
  auto* node = static_cast<FreeNode*>(p);
  node->next = tc.lists[cls];
  tc.lists[cls] = node;
  tc.counts[cls]++;
  if (tc.counts[cls] >= kFlushAt) flush(tc, cls);
}

}  // namespace afc::rt
