#include "rt/completion_batcher.h"

namespace afc::rt {

CompletionBatcher::CompletionBatcher(Callback cb, std::size_t queue_capacity)
    : cb_(std::move(cb)), queue_(queue_capacity), worker_([this] { worker_main(); }) {}

CompletionBatcher::~CompletionBatcher() { shutdown(); }

bool CompletionBatcher::submit(std::uint64_t key, std::uint64_t value) {
  // Count BEFORE the item becomes visible to the worker: an observer must
  // never see callbacks() > submitted(). Back out on a failed push.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.try_push({key, value})) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void CompletionBatcher::worker_main() {
  for (;;) {
    auto first = queue_.pop();
    if (!first) break;
    // Drain everything currently queued into one round.
    std::map<std::uint64_t, std::vector<std::uint64_t>> by_key;
    by_key[first->first].push_back(first->second);
    std::uint64_t batch = 1;
    while (auto more = queue_.try_pop()) {
      by_key[more->first].push_back(more->second);
      batch++;
    }
    rounds_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
    while (batch > prev &&
           !max_batch_.compare_exchange_weak(prev, batch, std::memory_order_relaxed)) {
    }
    for (const auto& [key, values] : by_key) {
      cb_(key, values);
      callbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CompletionBatcher::shutdown() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

}  // namespace afc::rt
