#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stage_names.h"
#include "core/trace.h"

namespace afc::rt {

/// Monotonic wall-clock ns for tracing the real-threads structures (the
/// simulator side uses sim time instead; the two never mix in one run).
std::uint64_t trace_now_ns();

/// Real-threads implementation of the paper's §3.1 OP_WQ: ops are hashed to
/// shards by key (PG id); each shard has worker threads popping ops. A key
/// is *busy* from pop to complete(key), modelling the PG lock.
///
/// Two modes, matching paper Fig. 5:
///  * community (pending_queue=false): pop() hands out the queue head only
///    once its key is free — a busy head blocks every worker on the shard
///    (head-of-line blocking);
///  * AFCeph (pending_queue=true): ops whose key is busy are parked on the
///    key's pending queue and the worker immediately serves the next op;
///    complete(key) promotes the parked op to the front of the shard queue,
///    preserving per-key FIFO order.
template <class Op>
class ShardedOpQueue {
 public:
  ShardedOpQueue(unsigned shards, bool pending_queue)
      : pending_mode_(pending_queue), shards_(shards) {}

  void submit(std::uint64_t key, Op op) {
    Shard& s = shard_of(key);
    const std::uint64_t t0 = trace::Collector::active() != nullptr ? trace_now_ns() : 0;
    {
      std::lock_guard lk(s.mu);
      if (s.closed) return;
      KeyState& ks = s.keys[key];
      if (pending_mode_ && ks.busy) {
        ks.pending.push_back(Item{key, std::move(op), t0});
        deferred_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      s.ready.push_back(Item{key, std::move(op), t0});
    }
    s.cv.notify_one();
  }

  struct Claimed {
    std::uint64_t key;
    Op op;
  };

  /// Blocking pop for a worker bound to `shard`; nullopt when closed and
  /// drained. The claimed key is busy until complete(key).
  std::optional<Claimed> pop(unsigned shard) {
    Shard& s = shards_[shard];
    std::unique_lock lk(s.mu);
    for (;;) {
      if (pending_mode_) {
        s.cv.wait(lk, [&] { return s.closed || !s.ready.empty(); });
        if (s.ready.empty()) return std::nullopt;
        Item it = std::move(s.ready.front());
        s.ready.pop_front();
        KeyState& ks = s.keys[it.key];
        if (ks.busy) {
          // Raced with another submit/complete: park it.
          ks.pending.push_back(std::move(it));
          deferred_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ks.busy = true;
        trace_claimed(it);
        return Claimed{it.key, std::move(it.op)};
      }
      // Community mode: wait until the head exists AND its key is free —
      // a busy head stalls this worker even if later ops are serviceable.
      if (!s.ready.empty() && s.keys[s.ready.front().key].busy) {
        hol_blocks_.fetch_add(1, std::memory_order_relaxed);
      }
      s.cv.wait(lk, [&] {
        return s.closed || (!s.ready.empty() && !s.keys[s.ready.front().key].busy);
      });
      if (s.ready.empty() || s.keys[s.ready.front().key].busy) return std::nullopt;
      Item it = std::move(s.ready.front());
      s.ready.pop_front();
      s.keys[it.key].busy = true;
      trace_claimed(it);
      return Claimed{it.key, std::move(it.op)};
    }
  }

  /// Release the key claimed by pop(); promotes a parked op if any.
  void complete(std::uint64_t key) {
    Shard& s = shard_of(key);
    {
      std::lock_guard lk(s.mu);
      KeyState& ks = s.keys[key];
      if (pending_mode_ && !ks.pending.empty()) {
        // Hand the key straight to its next op, at the front for fairness.
        // The item keeps its original submit stamp, so a traced wait covers
        // the parked interval too.
        s.ready.push_front(std::move(ks.pending.front()));
        ks.pending.pop_front();
        ks.busy = false;
      } else {
        ks.busy = false;
      }
    }
    s.cv.notify_all();
  }

  void close() {
    for (auto& s : shards_) {
      {
        std::lock_guard lk(s.mu);
        s.closed = true;
      }
      s.cv.notify_all();
    }
  }

  unsigned shard_count() const { return unsigned(shards_.size()); }
  std::uint64_t deferred() const { return deferred_.load(std::memory_order_relaxed); }
  std::uint64_t hol_blocks() const { return hol_blocks_.load(std::memory_order_relaxed); }

 private:
  struct Item {
    std::uint64_t key;
    Op op;
    std::uint64_t trace_t0 = 0;  // submit time (wall ns), 0 when untraced
  };
  struct KeyState {
    bool busy = false;
    std::deque<Item> pending;
  };

  /// Record submit→claim wait (rt.opwq.wait) for a traced item.
  static void trace_claimed(const Item& it) {
    auto* tr = trace::Collector::active();
    if (tr == nullptr || it.trace_t0 == 0) return;
    tr->complete(trace::Span{it.key + 1, trace::kRtTrack}, tr->stage_id(stage::kRtOpQueue),
                 it.trace_t0, trace_now_ns());
  }
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Item> ready;
    std::unordered_map<std::uint64_t, KeyState> keys;
    bool closed = false;
  };

  Shard& shard_of(std::uint64_t key) { return shards_[key % shards_.size()]; }

  bool pending_mode_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> deferred_{0};
  std::atomic<std::uint64_t> hol_blocks_{0};
};

}  // namespace afc::rt
