#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stage_names.h"
#include "core/trace.h"

namespace afc::rt {

/// Monotonic wall-clock ns for tracing the real-threads structures (the
/// simulator side uses sim time instead; the two never mix in one run).
std::uint64_t trace_now_ns();

/// Real-threads implementation of the paper's §3.1 OP_WQ: ops are hashed to
/// shards by key (PG id); each shard has worker threads popping ops. A key
/// is *busy* from pop to complete(key), modelling the PG lock.
///
/// Two modes, matching paper Fig. 5:
///  * community (pending_queue=false): pop() hands out the queue head only
///    once its key is free — a busy head blocks every worker on the shard
///    (head-of-line blocking);
///  * AFCeph (pending_queue=true): ops whose key is busy are parked on the
///    key's pending queue and the worker immediately serves the next op;
///    complete(key) promotes the parked op to the front of the shard queue,
///    preserving per-key FIFO order.
///
/// Lifecycle contract (docs/MODEL.md "Real-threads lifecycle contract"):
/// close() stops intake — submit() returns false and drops nothing it
/// accepted earlier; pop() keeps serving everything already accepted,
/// including parked pending-queue items, and returns nullopt only once the
/// shard is fully drained. Every claimed key MUST be complete()d, even
/// after close(), or draining workers on that shard block forever.
template <class Op>
class ShardedOpQueue {
 public:
  ShardedOpQueue(unsigned shards, bool pending_queue)
      : pending_mode_(pending_queue), shards_(shards) {}

  /// False iff the queue is closed (the op was rejected). An accepted op is
  /// guaranteed to be handed to some pop() before the shard reports drained.
  bool submit(std::uint64_t key, Op op) {
    Shard& s = shard_of(key);
    const std::uint64_t t0 = trace::Collector::active() != nullptr ? trace_now_ns() : 0;
    {
      std::lock_guard lk(s.mu);
      if (s.closed) return false;
      KeyState& ks = s.keys[key];
      // Pending mode keeps AT MOST ONE op per key on the ready queue; the
      // key's pending deque is the single per-key ordering authority. A
      // second same-key op on ready would let complete()'s promote-to-front
      // jump the parked op over it, breaking per-key FIFO.
      if (pending_mode_ && (ks.busy || ks.has_ready || !ks.pending.empty())) {
        ks.pending.push_back(Item{key, std::move(op), t0});
        s.parked++;
        deferred_.fetch_add(1, std::memory_order_relaxed);
        return true;  // parked, not ready: nobody can claim it yet
      }
      if (pending_mode_) ks.has_ready = true;
      s.ready.push_back(Item{key, std::move(op), t0});
    }
    s.cv.notify_one();
    return true;
  }

  struct Claimed {
    std::uint64_t key;
    Op op;
  };

  /// Blocking pop for a worker bound to `shard`; nullopt only when closed
  /// AND fully drained (nothing ready, nothing parked). A busy head after
  /// close is waited out, not abandoned — the claimer's complete() will
  /// free or promote it. The claimed key is busy until complete(key).
  std::optional<Claimed> pop(unsigned shard) {
    Shard& s = shards_[shard];
    std::unique_lock lk(s.mu);
    for (;;) {
      if (pending_mode_) {
        // Parked items count as undrained: they surface on ready when the
        // key's current claimer calls complete(), so wait for them.
        s.cv.wait(lk, [&] { return !s.ready.empty() || (s.closed && s.parked == 0); });
        if (s.ready.empty()) return std::nullopt;
        Item it = std::move(s.ready.front());
        s.ready.pop_front();
        KeyState& ks = s.keys[it.key];
        ks.has_ready = false;
        if (ks.busy) {
          // Unreachable while the one-ready-op-per-key invariant holds (a
          // key with an op on ready is never busy); kept as a safety net so
          // a future regression parks instead of double-claiming.
          ks.pending.push_back(std::move(it));
          s.parked++;
          deferred_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ks.busy = true;
        trace_claimed(it);
        return Claimed{it.key, std::move(it.op)};
      }
      // Community mode: wait until the head exists AND its key is free —
      // a busy head stalls this worker even if later ops are serviceable.
      if (!s.ready.empty() && s.keys[s.ready.front().key].busy) {
        hol_blocks_.fetch_add(1, std::memory_order_relaxed);
      }
      s.cv.wait(lk, [&] {
        if (!s.ready.empty()) return !s.keys[s.ready.front().key].busy;
        return s.closed;
      });
      if (s.ready.empty()) return std::nullopt;
      Item it = std::move(s.ready.front());
      s.ready.pop_front();
      s.keys[it.key].busy = true;
      // Pass the baton: submit()'s one notify for the new head may already
      // have been consumed (by this claim), so re-arm a sibling worker if
      // the next op is claimable right now.
      if (!s.ready.empty() && !s.keys[s.ready.front().key].busy) s.cv.notify_one();
      trace_claimed(it);
      return Claimed{it.key, std::move(it.op)};
    }
  }

  /// Release the key claimed by pop(); promotes a parked op if any. Wakes
  /// exactly one worker when exactly one op became claimable (a promotion,
  /// or a community-mode head whose key just went free), everyone when the
  /// shard reached closed-and-drained, and nobody when the key simply went
  /// idle.
  void complete(std::uint64_t key) {
    Shard& s = shard_of(key);
    bool claimable = false;
    bool drained = false;
    {
      std::lock_guard lk(s.mu);
      KeyState& ks = s.keys[key];
      if (pending_mode_ && !ks.pending.empty()) {
        // Hand the key straight to its next op, at the front for fairness.
        // The item keeps its original submit stamp, so a traced wait covers
        // the parked interval too. Safe to jump the queue: no other op for
        // this key can be on ready (one-ready-op-per-key invariant).
        s.ready.push_front(std::move(ks.pending.front()));
        ks.pending.pop_front();
        s.parked--;
        ks.has_ready = true;
        ks.busy = false;
        claimable = true;
      } else {
        ks.busy = false;
        // Community mode: this key may have been the blocked head.
        claimable = !pending_mode_ && !s.ready.empty() && s.ready.front().key == key;
      }
      drained = s.closed && s.ready.empty() && s.parked == 0;
    }
    if (drained) {
      s.cv.notify_all();  // release every drain-waiting worker to exit
    } else if (claimable) {
      s.cv.notify_one();
    }
  }

  /// Stop intake on every shard. Already-accepted ops (ready AND parked)
  /// remain claimable; workers drain them before pop() reports nullopt.
  void close() {
    for (auto& s : shards_) {
      {
        std::lock_guard lk(s.mu);
        s.closed = true;
      }
      s.cv.notify_all();
    }
  }

  unsigned shard_count() const { return unsigned(shards_.size()); }
  std::uint64_t deferred() const { return deferred_.load(std::memory_order_relaxed); }
  std::uint64_t hol_blocks() const { return hol_blocks_.load(std::memory_order_relaxed); }

 private:
  struct Item {
    std::uint64_t key;
    Op op;
    std::uint64_t trace_t0 = 0;  // submit time (wall ns), 0 when untraced
  };
  struct KeyState {
    bool busy = false;
    bool has_ready = false;  // pending mode: this key's one op on ready
    std::deque<Item> pending;
  };

  /// Record submit→claim wait (rt.opwq.wait) for a traced item.
  static void trace_claimed(const Item& it) {
    auto* tr = trace::Collector::active();
    if (tr == nullptr || it.trace_t0 == 0) return;
    tr->complete(trace::Span{it.key + 1, trace::kRtTrack}, tr->stage_id(stage::kRtOpQueue),
                 it.trace_t0, trace_now_ns());
  }
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Item> ready;
    std::unordered_map<std::uint64_t, KeyState> keys;
    std::size_t parked = 0;  // total items across all keys' pending queues
    bool closed = false;
  };

  Shard& shard_of(std::uint64_t key) { return shards_[key % shards_.size()]; }

  bool pending_mode_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> deferred_{0};
  std::atomic<std::uint64_t> hol_blocks_{0};
};

}  // namespace afc::rt
