#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "rt/mpmc_queue.h"

namespace afc::rt {

/// Real-threads version of AFCeph's dedicated completion worker (§3.1,
/// Fig. 6): producers (journal / filestore completion contexts) enqueue
/// (key, value) records with a cheap push; ONE worker drains everything
/// queued, groups by key (PG), and invokes the callback once per key per
/// round — "multiple completion per PG can be processed at once", so the
/// per-completion PG-lock acquisition of the community design disappears.
class CompletionBatcher {
 public:
  using Callback = std::function<void(std::uint64_t key, const std::vector<std::uint64_t>&)>;

  CompletionBatcher(Callback cb, std::size_t queue_capacity = 65536);
  ~CompletionBatcher();
  CompletionBatcher(const CompletionBatcher&) = delete;
  CompletionBatcher& operator=(const CompletionBatcher&) = delete;

  /// Producer side: never blocks beyond the queue mutex. False when the
  /// queue is full or shut down (the record was NOT accepted); every
  /// accepted record reaches the callback before shutdown() returns.
  bool submit(std::uint64_t key, std::uint64_t value);

  /// Stops intake, drains everything accepted, joins the worker. Idempotent.
  void shutdown();

  /// Exact: submitted() counts accepted records and is incremented before
  /// the record is visible to the worker, so submitted() >= callbacks() at
  /// every instant (a transient over-count during a failed submit aside —
  /// that error is on the safe side of the inequality).
  std::uint64_t submitted() const { return submitted_.load(); }
  std::uint64_t callbacks() const { return callbacks_.load(); }
  std::uint64_t rounds() const { return rounds_.load(); }
  std::uint64_t max_batch() const { return max_batch_.load(); }

 private:
  void worker_main();

  Callback cb_;
  MpmcQueue<std::pair<std::uint64_t, std::uint64_t>> queue_;
  std::thread worker_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> callbacks_{0};
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

}  // namespace afc::rt
