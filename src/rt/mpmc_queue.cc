#include "rt/mpmc_queue.h"

// Header-only templates; this TU keeps the module list uniform.
namespace afc::rt {}
