#pragma once

#include <cstdint>

namespace afc::rt {

/// Seeded concurrency stress harness for the real-threads primitives
/// (docs/MODEL.md "Real-threads lifecycle contract"). Each iteration
/// derives a fresh seed and a randomized fleet shape (producer/consumer/
/// worker counts, queue capacities, mid-flight close/shutdown points) and
/// hammers every src/rt/ structure while checking the contract invariants:
///
///  * exactly-once delivery — every accepted item is seen exactly once,
///    nothing unaccepted is ever seen;
///  * close() stops intake, pop() drains everything already accepted
///    (including parked pending-queue items) before reporting empty;
///  * per-key FIFO per producer through ShardedOpQueue and
///    CompletionBatcher;
///  * a key is never claimed by two workers at once (the PG lock);
///  * counter sanity at every instant: callbacks() <= submitted(),
///    written() + dropped() == submitted(), weighted throttle holds never
///    exceed the largest capacity ever set;
///  * SpscRing strict FIFO at arbitrary (non-power-of-two) capacities;
///  * Arena cross-thread free round-trips with intact redzone bytes.
///
/// Runs single-process with real std::threads; intended to be executed
/// both native (tests/stress_rt, quick) and under ThreadSanitizer
/// (scripts/check.sh, AFC_SANITIZE=thread) where the same schedule churn
/// doubles as a data-race probe.
struct StressOptions {
  std::uint64_t seed = 1;
  unsigned iterations = 25;
  unsigned scale = 1;  // multiplies per-iteration op counts (soak mode)
  bool verbose = false;
};

/// Parse --seed/--iters/--scale/--verbose over `defaults`; exits(2) with a
/// usage message on unknown arguments.
StressOptions parse_stress_args(int argc, char** argv, StressOptions defaults);

/// Returns 0 on success; prints the failing scenario + seed and aborts on
/// the first invariant violation (so a TSan run halts with a usable trace).
int run_stress(const StressOptions& opt);

}  // namespace afc::rt
