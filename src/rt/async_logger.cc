#include "rt/async_logger.h"

namespace afc::rt {

AsyncLogger::AsyncLogger(const Config& cfg)
    : cfg_(cfg), queue_(cfg.queue_capacity), ring_(cfg.ring_entries) {
  const unsigned writers = cfg_.nonblocking ? cfg_.writer_threads : 1;
  writers_.reserve(writers);
  for (unsigned i = 0; i < writers; i++) {
    writers_.emplace_back([this] { writer_main(); });
  }
}

AsyncLogger::~AsyncLogger() { shutdown(); }

std::string AsyncLogger::format(std::string_view tmpl, std::uint64_t value) const {
  std::string out;
  out.reserve(tmpl.size() + 24);
  out.append(tmpl);
  out.push_back(' ');
  out.append(std::to_string(value));
  return out;
}

void AsyncLogger::log(std::string_view tmpl, std::uint64_t value) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Entry e;
  e.value = value;
  if (cfg_.nonblocking) {
    if (cfg_.use_log_cache) {
      std::lock_guard lk(pool_mu_);
      InternPool::Id id;
      if (pool_.find(tmpl, id)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        e.tmpl = id;
      } else {
        e.tmpl = pool_.intern(tmpl);
      }
    } else {
      e.formatted = format(tmpl, value);
    }
    if (!queue_.try_push(std::move(e))) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // Blocking (community) path: format inline, wait for handoff space.
  e.formatted = format(tmpl, value);
  if (!queue_.push(std::move(e))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AsyncLogger::writer_main() {
  for (;;) {
    auto e = queue_.pop();
    if (!e) break;
    std::string line;
    if (!e->formatted.empty()) {
      line = std::move(e->formatted);
    } else {
      std::lock_guard lk(pool_mu_);
      line = format(pool_.lookup(e->tmpl), e->value);
    }
    {
      std::lock_guard lk(ring_mu_);
      ring_[ring_pos_ % ring_.size()] = std::move(line);
      ring_pos_++;
    }
    written_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AsyncLogger::shutdown() {
  queue_.close();
  for (auto& w : writers_) {
    if (w.joinable()) w.join();
  }
  writers_.clear();
}

std::vector<std::string> AsyncLogger::recent(std::size_t n) const {
  std::lock_guard lk(ring_mu_);
  std::vector<std::string> out;
  const std::size_t total = std::min(n, std::min(ring_pos_, ring_.size()));
  for (std::size_t i = 0; i < total; i++) {
    out.push_back(ring_[(ring_pos_ - 1 - i) % ring_.size()]);
  }
  return out;
}

}  // namespace afc::rt
