#include "rt/stress.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "rt/arena.h"
#include "rt/async_logger.h"
#include "rt/completion_batcher.h"
#include "rt/mpmc_queue.h"
#include "rt/sharded_opqueue.h"
#include "rt/throttle.h"

namespace afc::rt {
namespace {

/// Everything a failure report needs; shared by checks running on worker
/// threads (abort from any thread halts the whole run, which is what a
/// sanitizer leg wants).
struct Ctx {
  const char* scenario;
  std::uint64_t seed;
};

void require(bool ok, const Ctx& c, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "stress FAILED: scenario=%s seed=%llu: %s\n", c.scenario,
               static_cast<unsigned long long>(c.seed), what);
  std::abort();
}

/// Exactly-once ledger: producers mark an id accepted BEFORE handing it to
/// the structure (and un-mark on a rejected hand-off — consumers can only
/// observe ids that really were enqueued, so the rollback never races a
/// delivery), consumers mark it seen.
struct Ledger {
  explicit Ledger(std::size_t n) : accepted(n), seen(n) {}

  void mark_accepted(std::size_t id) { accepted[id].store(1, std::memory_order_relaxed); }
  void unmark_accepted(std::size_t id) { accepted[id].store(0, std::memory_order_relaxed); }
  void mark_seen(std::size_t id, const Ctx& c) {
    require(accepted[id].load(std::memory_order_relaxed) == 1, c, "delivered an unaccepted op");
    require(seen[id].fetch_add(1, std::memory_order_relaxed) == 0, c, "duplicate delivery");
  }
  void check_exactly_once(const Ctx& c) const {
    std::size_t dropped = 0, first = 0;
    for (std::size_t i = 0; i < accepted.size(); i++) {
      if (accepted[i].load() != seen[i].load()) {
        if (dropped++ == 0) first = i;
      }
    }
    if (dropped != 0) {
      std::fprintf(stderr, "ledger: %zu of %zu ids mismatched, first id=%zu acc=%d seen=%d\n",
                   dropped, accepted.size(), first, int(accepted[first].load()),
                   int(seen[first].load()));
    }
    require(dropped == 0, c, "accepted op was dropped");
  }

  std::vector<std::atomic<std::uint8_t>> accepted;
  std::vector<std::atomic<std::uint8_t>> seen;
};

/// Per-key delivery log for FIFO checks: ids are producer*per+i, so the
/// per-producer subsequence on each key must be strictly increasing.
void check_per_key_fifo(const Ctx& c, const std::vector<std::vector<std::uint64_t>>& log,
                        unsigned producers, unsigned per) {
  for (const auto& ids : log) {
    std::vector<std::uint64_t> last(producers, 0);
    std::vector<bool> any(producers, false);
    for (std::uint64_t id : ids) {
      const auto p = static_cast<std::size_t>(id / per);
      require(!any[p] || id > last[p], c, "per-key FIFO violated for one producer");
      any[p] = true;
      last[p] = id;
    }
  }
}

// --------------------------------------------------------------------------
// MpmcQueue: exactly-once under producer/consumer fleets + mid-flight close.
// --------------------------------------------------------------------------
void stress_mpmc(const Ctx& c, Rng& rng, unsigned scale) {
  const std::size_t cap = rng.chance(0.25) ? 0 : rng.uniform_int(1, 64);
  const unsigned producers = unsigned(rng.uniform_int(1, 4));
  const unsigned consumers = unsigned(rng.uniform_int(1, 4));
  const unsigned per = 400 * scale;
  const bool mid_close = rng.chance(0.5);
  const unsigned close_after_us = unsigned(rng.uniform_int(0, 1500));
  const bool use_try_push = rng.chance(0.4);

  MpmcQueue<std::uint64_t> q(cap);
  Ledger ledger(std::size_t(producers) * per);
  std::atomic<std::uint64_t> n_seen{0};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < producers; p++) {
    threads.emplace_back([&, p] {
      for (unsigned i = 0; i < per; i++) {
        const std::uint64_t id = std::uint64_t(p) * per + i;
        ledger.mark_accepted(id);
        const bool ok = use_try_push ? q.try_push(id) : q.push(id);
        if (!ok) ledger.unmark_accepted(id);
      }
    });
  }
  for (unsigned k = 0; k < consumers; k++) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        ledger.mark_seen(std::size_t(*v), c);
        n_seen.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread closer([&] {
    if (mid_close) {
      std::this_thread::sleep_for(std::chrono::microseconds(close_after_us));
      q.close();
    }
  });
  for (unsigned p = 0; p < producers; p++) threads[p].join();
  closer.join();
  q.close();  // idempotent; releases consumers once drained
  for (unsigned k = 0; k < consumers; k++) threads[producers + k].join();

  ledger.check_exactly_once(c);
  (void)n_seen;
}

// --------------------------------------------------------------------------
// SpscRing: strict FIFO at arbitrary capacities (incl. non-power-of-two).
// --------------------------------------------------------------------------
void stress_spsc(const Ctx& c, Rng& rng, unsigned scale) {
  const std::size_t cap = rng.uniform_int(1, 700);
  SpscRing<std::uint64_t> ring(cap);
  require(ring.capacity() >= cap, c, "SpscRing capacity below request");
  require((ring.capacity() & (ring.capacity() - 1)) == 0, c, "SpscRing capacity not pow2");

  const std::uint64_t n = 2000 * scale;
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    while (expect < n) {
      if (auto v = ring.try_pop()) {
        require(*v == expect, c, "SpscRing FIFO order violated");
        expect++;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < n;) {
    if (ring.try_push(i)) {
      i++;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  require(!ring.try_pop().has_value(), c, "SpscRing not empty after full consume");
}

// --------------------------------------------------------------------------
// ShardedOpQueue (one run per mode): exactly-once + per-key FIFO + PG-lock
// exclusivity + close-with-backlog drain (ready AND parked items).
// --------------------------------------------------------------------------
void stress_opqueue(const Ctx& c, Rng& rng, unsigned scale, bool pending) {
  const unsigned shards = unsigned(rng.uniform_int(1, 3));
  // Every shard needs at least one worker or its backlog has no popper
  // (draining is pop()'s job, not a background thread's).
  const unsigned workers = shards + unsigned(rng.uniform_int(0, 3));
  const unsigned producers = unsigned(rng.uniform_int(1, 3));
  const unsigned keys = unsigned(rng.uniform_int(1, 12));
  const unsigned per = 250 * scale;
  const bool mid_close = rng.chance(0.5);
  // Close somewhere in the middle of the submission stream.
  const std::uint64_t close_at = rng.uniform_int(1, std::uint64_t(producers) * per);

  // A "hostage" claim held by this (non-worker) thread across the close:
  // ops stacking up behind the busy key — HOL-blocked in community mode,
  // parked in pending mode — must survive the close and drain once the
  // claim is finally completed. This is exactly the path the seed dropped.
  const bool hostage = rng.chance(0.5);

  ShardedOpQueue<std::uint64_t> q(shards, pending);
  const std::uint64_t hostage_id = std::uint64_t(producers) * per;
  Ledger ledger(std::size_t(producers) * per + 1);
  std::vector<std::atomic<int>> inflight(keys);
  std::vector<std::vector<std::uint64_t>> log(keys);
  std::mutex log_mu;
  std::atomic<std::uint64_t> submitted{0};

  std::optional<ShardedOpQueue<std::uint64_t>::Claimed> hostage_claim;
  if (hostage) {
    ledger.mark_accepted(std::size_t(hostage_id));
    require(q.submit(0, hostage_id), c, "hostage submit rejected on open queue");
    hostage_claim = q.pop(0);  // deterministic: queue holds only the hostage
    require(hostage_claim.has_value() && hostage_claim->op == hostage_id, c,
            "hostage claim did not return the hostage op");
    ledger.mark_seen(std::size_t(hostage_id), c);
  }

  std::vector<Rng> prng;
  for (unsigned p = 0; p < producers; p++) prng.push_back(rng.fork());

  std::vector<std::thread> threads;
  for (unsigned w = 0; w < workers; w++) {
    threads.emplace_back([&, w] {
      while (auto claimed = q.pop(w % shards)) {
        const auto key = std::size_t(claimed->key);
        require(inflight[key].fetch_add(1, std::memory_order_relaxed) == 0, c,
                "key claimed by two workers at once");
        ledger.mark_seen(std::size_t(claimed->op), c);
        {
          std::lock_guard lk(log_mu);
          log[key].push_back(claimed->op);
        }
        // A pinch of work so completes interleave with submits and parks.
        volatile unsigned spin = unsigned(claimed->op % 64);
        while (spin > 0) spin = spin - 1;
        inflight[key].fetch_sub(1, std::memory_order_relaxed);
        q.complete(claimed->key);
      }
    });
  }
  for (unsigned p = 0; p < producers; p++) {
    threads.emplace_back([&, p] {
      Rng& r = prng[p];
      for (unsigned i = 0; i < per; i++) {
        const std::uint64_t id = std::uint64_t(p) * per + i;
        const std::uint64_t key = r.uniform_int(0, keys - 1);
        ledger.mark_accepted(std::size_t(id));
        if (!q.submit(key, id)) {
          ledger.unmark_accepted(std::size_t(id));
        }
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread closer([&] {
    if (mid_close) {
      while (submitted.load(std::memory_order_relaxed) < close_at) std::this_thread::yield();
      q.close();
    }
  });
  for (unsigned p = 0; p < producers; p++) threads[workers + p].join();
  closer.join();
  q.close();
  if (hostage_claim.has_value()) {
    // Completed only AFTER the close: everything queued behind this key
    // must still be delivered by the draining workers.
    q.complete(hostage_claim->key);
  }
  for (unsigned w = 0; w < workers; w++) threads[w].join();

  ledger.check_exactly_once(c);
  check_per_key_fifo(c, log, producers, per);
}

// --------------------------------------------------------------------------
// CompletionBatcher: exactly-once + per-key order + the counter invariant
// callbacks() <= submitted() sampled continuously by an observer thread.
// --------------------------------------------------------------------------
void stress_batcher(const Ctx& c, Rng& rng, unsigned scale) {
  const unsigned producers = unsigned(rng.uniform_int(1, 4));
  const unsigned keys = unsigned(rng.uniform_int(1, 8));
  const unsigned per = 400 * scale;
  const std::size_t capacity = rng.chance(0.3) ? 128 : 16384;
  const bool early_shutdown = rng.chance(0.4);
  const std::uint64_t shutdown_at = rng.uniform_int(1, std::uint64_t(producers) * per);

  Ledger ledger(std::size_t(producers) * per);
  std::vector<std::vector<std::uint64_t>> log(keys);
  std::mutex log_mu;
  std::atomic<std::uint64_t> accepted_count{0};
  std::atomic<std::uint64_t> attempt_count{0};
  std::atomic<std::uint64_t> delivered_values{0};
  std::atomic<CompletionBatcher*> self{nullptr};

  CompletionBatcher batcher(
      [&](std::uint64_t key, const std::vector<std::uint64_t>& vals) {
        // Strongest form of the counter invariant, checked at the exact
        // point a violation would surface: every value reaching the
        // callback must already be counted in submitted().
        if (CompletionBatcher* b = self.load(std::memory_order_relaxed)) {
          const std::uint64_t d =
              delivered_values.fetch_add(vals.size(), std::memory_order_relaxed) + vals.size();
          require(d <= b->submitted(), c, "values delivered before submitted() counted them");
        }
        std::lock_guard lk(log_mu);
        for (std::uint64_t v : vals) {
          ledger.mark_seen(std::size_t(v), c);
          log[std::size_t(key)].push_back(v);
        }
      },
      capacity);
  self.store(&batcher, std::memory_order_relaxed);

  std::atomic<bool> stop_observer{false};
  std::thread observer([&] {
    while (!stop_observer.load(std::memory_order_relaxed)) {
      // The submit-side increment precedes queue visibility, so this must
      // hold at every instant, not just at quiescence.
      require(batcher.callbacks() <= batcher.submitted(), c, "callbacks() > submitted()");
      std::this_thread::yield();
    }
  });
  std::vector<Rng> prng;
  for (unsigned p = 0; p < producers; p++) prng.push_back(rng.fork());
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < producers; p++) {
    threads.emplace_back([&, p] {
      Rng& r = prng[p];
      for (unsigned i = 0; i < per; i++) {
        const std::uint64_t id = std::uint64_t(p) * per + i;
        const std::uint64_t key = r.uniform_int(0, keys - 1);
        ledger.mark_accepted(std::size_t(id));
        if (batcher.submit(key, id)) {
          accepted_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          ledger.unmark_accepted(std::size_t(id));
        }
        attempt_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread closer([&] {
    if (early_shutdown) {
      while (attempt_count.load(std::memory_order_relaxed) < shutdown_at) {
        std::this_thread::yield();
      }
      batcher.shutdown();
    }
  });
  for (auto& t : threads) t.join();
  closer.join();
  batcher.shutdown();
  stop_observer.store(true, std::memory_order_relaxed);
  observer.join();

  ledger.check_exactly_once(c);
  check_per_key_fifo(c, log, producers, per);
  require(batcher.submitted() == accepted_count.load(), c,
          "submitted() != accepted submit() calls after quiescence");
  require(batcher.callbacks() <= batcher.submitted(), c, "callbacks() > submitted() at rest");
}

// --------------------------------------------------------------------------
// AsyncLogger (both modes): written + dropped == submitted once quiesced;
// recent() is safe to call concurrently with producers and writers.
// --------------------------------------------------------------------------
void stress_logger(const Ctx& c, Rng& rng, unsigned scale) {
  AsyncLogger::Config cfg;
  cfg.nonblocking = rng.chance(0.5);
  cfg.writer_threads = unsigned(rng.uniform_int(1, 3));
  cfg.queue_capacity = rng.chance(0.5) ? 32 : 4096;
  cfg.use_log_cache = cfg.nonblocking && rng.chance(0.5);
  cfg.ring_entries = 256;
  const unsigned producers = unsigned(rng.uniform_int(1, 4));
  const unsigned per = 300 * scale;
  const bool early_shutdown = rng.chance(0.5);
  const unsigned shutdown_after_us = unsigned(rng.uniform_int(0, 1200));
  static const char* kTemplates[] = {"op dispatched pg", "journal commit seq",
                                     "filestore apply txn", "kv batch flush"};

  AsyncLogger logger(cfg);
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < producers; p++) {
    threads.emplace_back([&, p] {
      for (unsigned i = 0; i < per; i++) {
        logger.log(kTemplates[(p + i) % 4], std::uint64_t(p) * per + i);
      }
    });
  }
  std::thread observer([&] {
    for (int i = 0; i < 50; i++) {
      (void)logger.recent(8);
      std::this_thread::yield();
    }
  });
  std::thread closer([&] {
    if (early_shutdown) {
      std::this_thread::sleep_for(std::chrono::microseconds(shutdown_after_us));
      logger.shutdown();
    }
  });
  for (auto& t : threads) t.join();
  closer.join();
  observer.join();
  logger.shutdown();

  require(logger.submitted() == std::uint64_t(producers) * per, c,
          "submitted() != total log() calls");
  require(logger.written() + logger.dropped() == logger.submitted(), c,
          "written + dropped != submitted (an entry vanished)");
}

// --------------------------------------------------------------------------
// Throttle: weighted holds never exceed the largest capacity ever set;
// shutdown releases waiters; all units returned at quiescence.
// --------------------------------------------------------------------------
void stress_throttle(const Ctx& c, Rng& rng, unsigned scale) {
  const std::uint64_t cap = rng.uniform_int(2, 8);
  const bool tune = rng.chance(0.5);
  const std::uint64_t max_cap = tune ? cap * 2 : cap;
  const unsigned workers = unsigned(rng.uniform_int(2, 5));
  const unsigned per = 120 * scale;
  const bool early_shutdown = rng.chance(0.3);

  Throttle throttle(cap);
  std::atomic<std::uint64_t> held{0};
  std::atomic<std::uint64_t> completed{0};

  std::vector<Rng> wrng;
  for (unsigned w = 0; w < workers; w++) wrng.push_back(rng.fork());
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < workers; w++) {
    threads.emplace_back([&, w] {
      Rng& r = wrng[w];
      for (unsigned i = 0; i < per; i++) {
        // Weights stay within the SMALLEST capacity in play so a shrink
        // can never wedge a waiter forever.
        const std::uint64_t n = r.uniform_int(1, cap);
        if (!throttle.acquire(n)) return;  // shut down
        const std::uint64_t now = held.fetch_add(n, std::memory_order_relaxed) + n;
        require(now <= max_cap, c, "weighted holds exceed max capacity");
        std::this_thread::yield();
        held.fetch_sub(n, std::memory_order_relaxed);
        throttle.release(n);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread tuner([&] {
    if (tune) {
      for (int i = 0; i < 20; i++) {
        throttle.set_capacity(i % 2 == 0 ? max_cap : cap);
        std::this_thread::yield();
      }
    }
    if (early_shutdown) {
      // Let some traffic through first, then cut everyone off mid-flight.
      const std::uint64_t target = std::uint64_t(workers) * per / 4;
      while (completed.load(std::memory_order_relaxed) < target) std::this_thread::yield();
      throttle.shutdown();
    }
  });
  for (auto& t : threads) t.join();
  tuner.join();
  require(throttle.in_use() == 0, c, "units leaked: in_use() != 0 at quiescence");
}

// --------------------------------------------------------------------------
// Arena: concurrent alloc/free with cross-thread frees through an
// MpmcQueue hand-off; redzone bytes must round-trip intact.
// --------------------------------------------------------------------------
void stress_arena(const Ctx& c, Rng& rng, unsigned scale) {
  const unsigned workers = unsigned(rng.uniform_int(2, 4));
  const unsigned per = 1500 * scale;

  Arena arena;
  MpmcQueue<std::pair<void*, std::size_t>> handoff(512);
  std::thread freer([&] {
    while (auto p = handoff.pop()) {
      auto* bytes = static_cast<unsigned char*>(p->first);
      require(bytes[0] == 0x5A && bytes[p->second - 1] == 0xA5, c,
              "cross-thread freed block corrupted");
      arena.deallocate(p->first, p->second);
    }
  });
  std::vector<Rng> wrng;
  for (unsigned w = 0; w < workers; w++) wrng.push_back(rng.fork());
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < workers; w++) {
    threads.emplace_back([&, w] {
      Rng& r = wrng[w];
      std::vector<std::pair<unsigned char*, std::size_t>> live;
      for (unsigned i = 0; i < per; i++) {
        const std::size_t sz =
            r.chance(0.02) ? 4096 + r.uniform_int(1, 8192) : 2 + r.uniform_int(0, 598);
        auto* p = static_cast<unsigned char*>(arena.allocate(sz));
        p[0] = 0x5A;
        p[sz - 1] = 0xA5;
        live.emplace_back(p, sz);
        if (live.size() > 24) {
          auto [q, qsz] = live.front();
          live.erase(live.begin());
          require(q[0] == 0x5A && q[qsz - 1] == 0xA5, c, "locally freed block corrupted");
          if (r.chance(0.3)) {
            handoff.push({q, qsz});
          } else {
            arena.deallocate(q, qsz);
          }
        }
      }
      for (auto [p, sz] : live) arena.deallocate(p, sz);
    });
  }
  for (auto& t : threads) t.join();
  handoff.close();
  freer.join();
}

}  // namespace

StressOptions parse_stress_args(int argc, char** argv, StressOptions defaults) {
  StressOptions opt = defaults;
  for (int i = 1; i < argc; i++) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--seed" && has_value) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--iters" && has_value) {
      opt.iterations = unsigned(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--scale" && has_value) {
      opt.scale = unsigned(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--iters N] [--scale N] [--verbose]\n"
                   "unknown argument: %s\n",
                   argv[0], argv[i]);
      std::exit(2);
    }
  }
  if (opt.scale == 0) opt.scale = 1;
  return opt;
}

int run_stress(const StressOptions& opt) {
  for (unsigned iter = 0; iter < opt.iterations; iter++) {
    const std::uint64_t seed = opt.seed + iter;
    Rng rng(seed);
    struct Scenario {
      const char* name;
      void (*fn)(const Ctx&, Rng&, unsigned);
    };
    static constexpr Scenario kScenarios[] = {
        {"mpmc", stress_mpmc},
        {"spsc", stress_spsc},
        {"opqueue.community", [](const Ctx& c, Rng& r, unsigned s) { stress_opqueue(c, r, s, false); }},
        {"opqueue.pending", [](const Ctx& c, Rng& r, unsigned s) { stress_opqueue(c, r, s, true); }},
        {"batcher", stress_batcher},
        {"logger", stress_logger},
        {"throttle", stress_throttle},
        {"arena", stress_arena},
    };
    for (const Scenario& sc : kScenarios) {
      Ctx ctx{sc.name, seed};
      Rng scenario_rng = rng.fork();
      sc.fn(ctx, scenario_rng, opt.scale);
    }
    if (opt.verbose && (iter + 1) % 10 == 0) {
      std::printf("stress_rt: %u/%u iterations ok\n", iter + 1, opt.iterations);
      std::fflush(stdout);
    }
  }
  std::printf("stress_rt: %u iterations x 8 scenarios OK (seed=%llu scale=%u)\n", opt.iterations,
               static_cast<unsigned long long>(opt.seed), opt.scale);
  return 0;
}

}  // namespace afc::rt
