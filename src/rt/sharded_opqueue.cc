#include "rt/sharded_opqueue.h"

// Header-only template; this TU keeps the module list uniform.
namespace afc::rt {}
