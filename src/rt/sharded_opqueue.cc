#include "rt/sharded_opqueue.h"

#include <chrono>

namespace afc::rt {

std::uint64_t trace_now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

}  // namespace afc::rt
