#include "rt/throttle.h"

namespace afc::rt {

Throttle::Throttle(std::uint64_t capacity) : capacity_(capacity) {}

bool Throttle::acquire(std::uint64_t n) {
  std::unique_lock lk(mu_);
  const std::uint64_t ticket = next_ticket_++;
  if (ticket != serving_ticket_ || used_ + n > capacity_) {
    blocked_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.wait(lk, [&] {
    return shutdown_ || (ticket == serving_ticket_ && used_ + n <= capacity_);
  });
  if (shutdown_) return false;
  used_ += n;
  serving_ticket_++;
  cv_.notify_all();
  return true;
}

bool Throttle::try_acquire(std::uint64_t n) {
  std::lock_guard lk(mu_);
  if (shutdown_ || next_ticket_ != serving_ticket_ || used_ + n > capacity_) return false;
  used_ += n;
  next_ticket_++;
  serving_ticket_++;
  return true;
}

void Throttle::release(std::uint64_t n) {
  {
    std::lock_guard lk(mu_);
    used_ = used_ > n ? used_ - n : 0;
  }
  cv_.notify_all();
}

void Throttle::set_capacity(std::uint64_t capacity) {
  {
    std::lock_guard lk(mu_);
    capacity_ = capacity;
  }
  cv_.notify_all();
}

void Throttle::shutdown() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::uint64_t Throttle::capacity() const {
  std::lock_guard lk(mu_);
  return capacity_;
}

std::uint64_t Throttle::in_use() const {
  std::lock_guard lk(mu_);
  return used_;
}

}  // namespace afc::rt
