#include "rt/throttle.h"

#include "common/stage_names.h"
#include "core/trace.h"

namespace afc::rt {

std::uint64_t trace_now_ns();  // defined in sharded_opqueue.cc

Throttle::Throttle(std::uint64_t capacity) : capacity_(capacity) {}

bool Throttle::acquire(std::uint64_t n) {
  std::unique_lock lk(mu_);
  const std::uint64_t ticket = next_ticket_++;
  const bool blocks = ticket != serving_ticket_ || used_ + n > capacity_;
  if (blocks) blocked_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t wait_t0 =
      (blocks && trace::Collector::active() != nullptr) ? trace_now_ns() : 0;
  cv_.wait(lk, [&] {
    return shutdown_ || (ticket == serving_ticket_ && used_ + n <= capacity_);
  });
  if (shutdown_) return false;
  if (wait_t0 != 0) {
    if (auto* tr = trace::Collector::active()) {
      tr->complete(trace::Span{ticket + 1, trace::kRtTrack}, tr->stage_id(stage::kRtThrottle),
                   wait_t0, trace_now_ns());
    }
  }
  used_ += n;
  serving_ticket_++;
  cv_.notify_all();
  return true;
}

bool Throttle::try_acquire(std::uint64_t n) {
  std::lock_guard lk(mu_);
  if (shutdown_ || next_ticket_ != serving_ticket_ || used_ + n > capacity_) return false;
  used_ += n;
  next_ticket_++;
  serving_ticket_++;
  return true;
}

void Throttle::release(std::uint64_t n) {
  {
    std::lock_guard lk(mu_);
    used_ = used_ > n ? used_ - n : 0;
  }
  cv_.notify_all();
}

void Throttle::set_capacity(std::uint64_t capacity) {
  {
    std::lock_guard lk(mu_);
    capacity_ = capacity;
  }
  cv_.notify_all();
}

void Throttle::shutdown() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::uint64_t Throttle::capacity() const {
  std::lock_guard lk(mu_);
  return capacity_;
}

std::uint64_t Throttle::in_use() const {
  std::lock_guard lk(mu_);
  return used_;
}

}  // namespace afc::rt
