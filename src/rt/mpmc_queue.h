#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace afc::rt {

/// Bounded multi-producer multi-consumer queue (mutex + condvars): the
/// baseline thread-handoff primitive for the real-threads implementations
/// of the paper's mechanisms.
///
/// Lifecycle contract (docs/MODEL.md): close() stops intake — push/try_push
/// return false afterwards — while pop() keeps returning every item
/// accepted before the close and only then reports nullopt. No accepted
/// item is ever dropped.
template <class T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocking push; returns false if the queue was closed.
  bool push(T v) {
    std::unique_lock lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || capacity_ == 0 || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(v));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T v) {
    {
      std::lock_guard lk(mu_);
      if (closed_ || (capacity_ != 0 && q_.size() >= capacity_)) return false;
      q_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt when closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  std::optional<T> try_pop() {
    std::unique_lock lk(mu_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Lock-free single-producer single-consumer ring. Used by the non-blocking
/// logger's per-thread submission lanes. The requested capacity is rounded
/// UP to the next power of two (the index mask requires it; a non-pow2
/// buffer would compute a wrong mask and overwrite live slots), so
/// capacity() may exceed what was asked for — never less.
template <class T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : buf_(round_pow2(capacity)), mask_(buf_.size() - 1) {
    static_assert(std::is_nothrow_move_assignable_v<T>);
  }

  std::size_t capacity() const { return buf_.size(); }

  bool try_push(T v) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= buf_.size()) return false;
    buf_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T v = std::move(buf_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return v;
  }

  std::size_t size() const {
    return std::size_t(head_.load(std::memory_order_acquire) -
                       tail_.load(std::memory_order_acquire));
  }

 private:
  static std::size_t round_pow2(std::size_t n) {
    std::size_t c = 1;
    while (c < n) c <<= 1;
    return c;  // n == 0 gets the minimum ring of 1 slot
  }

  std::vector<T> buf_;
  std::uint64_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace afc::rt
