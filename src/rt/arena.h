#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

namespace afc::rt {

/// Thread-caching slab allocator in the jemalloc mould — the real-threads
/// counterpart of the paper's §3.2 allocator observation ("small random
/// workloads need more responsiveness and parallelism for memory handling").
///
/// Design (deliberately jemalloc-shaped, scaled down):
///  * size classes at 16-byte granularity up to 4 KiB; larger requests fall
///    through to ::operator new;
///  * each thread owns a cache of free runs per class (allocation fast path
///    is lock-free: pop from the thread-local list);
///  * when a thread cache is empty it refills a batch from the shared
///    central arena under one mutex (amortized), and flushes back when a
///    class's cache grows too large — so cross-thread free() traffic does
///    not thrash a global lock;
///  * memory is carved from 64 KiB slabs; slabs live until the arena dies
///    (no page reclaim — benchmark-scoped allocator).
///
/// Thread-safe: allocate/deallocate from any thread, including frees of
/// blocks allocated by other threads.
class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  /// Bytes carved from the OS so far.
  std::uint64_t slab_bytes() const { return slab_bytes_.load(std::memory_order_relaxed); }
  std::uint64_t central_refills() const { return refills_.load(std::memory_order_relaxed); }

  static constexpr std::size_t kGranule = 16;
  static constexpr std::size_t kMaxSmall = 4096;
  static constexpr std::size_t kClasses = kMaxSmall / kGranule;
  static constexpr std::size_t kSlabBytes = 64 * 1024;
  static constexpr std::size_t kRefillBatch = 32;
  static constexpr std::size_t kFlushAt = 128;

  struct FreeNode {
    FreeNode* next;
  };
  struct ThreadCache {
    FreeNode* lists[kClasses] = {};
    std::size_t counts[kClasses] = {};
  };

 private:

  static std::size_t class_of(std::size_t bytes) { return (bytes + kGranule - 1) / kGranule - 1; }
  ThreadCache& cache();
  void refill(ThreadCache& tc, std::size_t cls);
  void flush(ThreadCache& tc, std::size_t cls);
  void* carve(std::size_t cls);

  std::mutex central_mu_;
  FreeNode* central_[kClasses] = {};
  std::vector<void*> slabs_;
  unsigned char* slab_cursor_ = nullptr;
  std::size_t slab_left_ = 0;
  std::atomic<std::uint64_t> slab_bytes_{0};
  std::atomic<std::uint64_t> refills_{0};

  // Registry of per-thread caches (flushing back on arena destruction is
  // NOT needed — slabs own all memory; caches only hold pointers into
  // slabs).
  std::mutex caches_mu_;
  std::vector<ThreadCache*> caches_;

  // Process-unique id: thread-local caches are keyed by it so a recycled
  // Arena address can never alias a dead arena's cache.
  const std::uint64_t id_ = next_id();
  static std::uint64_t next_id();
};

}  // namespace afc::rt
