#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace afc::rt {

/// Real-threads weighted throttle, the §3.2 primitive
/// (filestore_queue_max_ops / osd_client_message_cap): blocking FIFO-fair
/// acquire of `n` units against a runtime-adjustable capacity.
class Throttle {
 public:
  explicit Throttle(std::uint64_t capacity);

  /// Block until `n` units are available. Returns false if shut down.
  bool acquire(std::uint64_t n = 1);
  bool try_acquire(std::uint64_t n = 1);
  void release(std::uint64_t n = 1);

  /// Re-tune capacity at runtime (the paper's SSD re-sizing); growth wakes
  /// waiters immediately.
  void set_capacity(std::uint64_t capacity);

  /// Lifecycle contract (docs/MODEL.md): stops intake — every blocked and
  /// future acquire() returns false without taking units. Holders of
  /// already-granted units may (and should) still release() them.
  void shutdown();

  std::uint64_t capacity() const;
  std::uint64_t in_use() const;
  std::uint64_t blocked_acquires() const { return blocked_.load(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t next_ticket_ = 0;   // FIFO fairness
  std::uint64_t serving_ticket_ = 0;
  bool shutdown_ = false;
  std::atomic<std::uint64_t> blocked_{0};
};

}  // namespace afc::rt
