#include "workload/arrival.h"

#include <cmath>

namespace afc::workload {

double ArrivalConfig::rate_at(Time t) const {
  switch (kind) {
    case Kind::kPoisson:
      return rate;
    case Kind::kBursty: {
      const Time period = burst_on + burst_off;
      if (period == 0) return rate;
      return (t % period) < burst_on ? rate * burst_factor : rate;
    }
    case Kind::kDiurnal: {
      if (diurnal_period == 0) return rate;
      const double phase = 2.0 * 3.14159265358979323846 * double(t) / double(diurnal_period);
      return rate * (1.0 + diurnal_amplitude * std::sin(phase));
    }
  }
  return rate;
}

double ArrivalConfig::peak_rate() const {
  switch (kind) {
    case Kind::kPoisson:
      return rate;
    case Kind::kBursty:
      return rate * std::max(burst_factor, 1.0);
    case Kind::kDiurnal:
      return rate * (1.0 + diurnal_amplitude);
  }
  return rate;
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

Time ArrivalProcess::next(Time now) {
  const double peak = cfg_.peak_rate();
  if (peak <= 0) return ~Time(0);  // a silent stream never fires
  double t = double(now);
  for (;;) {
    t += rng_.exponential(1e9 / peak);  // candidate gap at the envelope rate
    const double r = cfg_.rate_at(Time(t));
    // Thinning: accept with probability rate(t)/peak. The homogeneous case
    // still draws the acceptance variate so the three kinds consume their
    // rng stream identically per candidate.
    if (rng_.uniform() * peak <= r) return Time(t);
  }
}

}  // namespace afc::workload
