#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/cluster_sim.h"
#include "workload/arrival.h"
#include "workload/population.h"

namespace afc::workload {

/// One open-loop traffic stream: an arrival process, the logical-tenant
/// population it multiplexes, and the I/O mix each arrival issues. `tenant`
/// is the OSD-side QoS class (TenantProfile id) stamped on every op of the
/// stream — the stream IS the pool/tenant-class from the scheduler's point
/// of view, while `population` models the millions of end tenants riding it.
struct StreamSpec {
  std::string name = "stream";
  std::uint32_t tenant = 0;
  ArrivalConfig arrival;
  TenantPopulation population;
  double write_fraction = 1.0;
  std::uint64_t block_size = 4096;
  double zipf_theta = 0.0;  // key skew over each image's blocks (0 = uniform)
};

struct OpenLoopSpec {
  std::vector<StreamSpec> streams;
  Time warmup = 300 * kMillisecond;
  Time runtime = 1500 * kMillisecond;
};

/// Per-stream outcome. `arrivals` counts what the process generated;
/// `issued` what passed per-tenant admission; dropped/queued the overflow
/// split. Latency covers completions inside the measurement window only
/// (fio semantics, same windowing as client::RunStats).
struct StreamResult {
  std::string name;
  std::uint32_t tenant = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t queued = 0;
  std::uint64_t tenants_touched = 0;
  std::uint64_t completed_in_window = 0;
  Histogram lat;
  double iops = 0.0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
};

struct OpenLoopResult {
  std::vector<StreamResult> streams;
  /// OSD-side aggregates (ClusterSim::collect_osd_stats), including the QoS
  /// scheduler evidence. Client-side fields are zero — the engine's own
  /// per-stream results replace them.
  core::RunResult cluster;
};

/// Open-loop traffic engine: the scalable alternative to per-VM closed
/// loops. Arrivals come from seeded (non-)homogeneous Poisson processes;
/// each admitted arrival becomes exactly one short-lived op coroutine, so
/// in-flight work — not tenant count — bounds memory. Ops fan out over the
/// cluster's existing VM clients round-robin (their images, connections and
/// client-side CPU accounting are reused), stamped with the stream's QoS
/// tenant class. Fully deterministic for a fixed (ClusterConfig::seed,
/// spec): arrival instants and tenant ranks are drawn from streams forked
/// per StreamSpec index, independent of completion order.
class OpenLoopEngine {
 public:
  OpenLoopEngine(core::ClusterSim& cluster, OpenLoopSpec spec);

  /// Drive the cluster to warmup + runtime and collect results (single use,
  /// mirroring ClusterSim::run()).
  OpenLoopResult run();

 private:
  struct Stream {
    StreamSpec spec;
    ArrivalProcess arrival;
    PopulationState pop;
    Rng tenant_rng;  // tenant-rank sampling (arrival-sequence determinism)
    Rng key_rng;     // offsets + read/write mix (completion-order dependent)
    std::uint64_t cursor = 0;  // round-robin VM pick
    std::uint64_t arrivals = 0;
    std::uint64_t issued = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t completed_in_window = 0;
    Histogram lat;
    Stream(StreamSpec s, std::uint64_t seed)
        : spec(std::move(s)),
          arrival(spec.arrival, seed),
          pop(spec.population),
          tenant_rng(seed ^ 0x7e64a7bull),
          key_rng(seed ^ 0x1d10c2ull) {}
  };

  sim::CoTask<void> arrival_loop(unsigned si, Time stop_at);
  void launch(unsigned si, std::uint64_t tenant);
  sim::CoTask<void> op_task(unsigned si, std::uint64_t tenant, bool is_write,
                            unsigned vm_idx, std::uint64_t off, std::uint64_t len);

  core::ClusterSim& cluster_;
  OpenLoopSpec spec_;
  std::vector<Stream> streams_;
  Time window_start_ = 0;
  Time window_end_ = 0;
  bool ran_ = false;
};

}  // namespace afc::workload
