#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace afc::workload {

/// The logical-tenant population multiplexed onto one arrival stream.
/// Tenants are never materialized: each arrival samples a tenant rank from
/// a Zipf(skew) distribution over [0, tenants), so a population of millions
/// costs one map entry per tenant *actually touched*, not one coroutine per
/// tenant. Per-tenant admission is a small in-flight cap; overload is
/// either dropped (load-shedding client) or queued per tenant up to
/// queue_cap (patient client) — both accounted, neither unbounded.
struct TenantPopulation {
  std::uint64_t tenants = 1;  // logical tenants behind this stream
  double skew = 0.99;         // Zipf theta over tenant rank (0 = uniform)
  unsigned inflight_cap = 8;  // per-tenant outstanding-op ceiling
  enum class Overload { kDrop, kQueue };
  Overload overload = Overload::kDrop;
  unsigned queue_cap = 16;  // per-tenant backlog bound (kQueue only)
};

/// Sparse per-tenant admission state + overload accounting for one stream.
class PopulationState {
 public:
  explicit PopulationState(const TenantPopulation& cfg) : cfg_(cfg) {}

  enum class Admit { kRun, kQueued, kDropped };

  /// An arrival sampled `tenant`: launch it, park it in the tenant's
  /// backlog, or shed it.
  Admit on_arrival(std::uint64_t tenant) {
    T& t = state_[tenant];
    if (t.inflight < cfg_.inflight_cap) {
      t.inflight++;
      return Admit::kRun;
    }
    if (cfg_.overload == TenantPopulation::Overload::kQueue && t.backlog < cfg_.queue_cap) {
      t.backlog++;
      queued_++;
      return Admit::kQueued;
    }
    dropped_++;
    return Admit::kDropped;
  }

  /// An admitted op for `tenant` resolved. Returns true when a queued
  /// arrival inherits the freed slot (the caller launches it).
  bool on_complete(std::uint64_t tenant) {
    T& t = state_[tenant];
    if (t.inflight > 0) t.inflight--;
    if (t.backlog > 0) {
      t.backlog--;
      t.inflight++;
      return true;
    }
    return false;
  }

  std::uint64_t tenants_touched() const { return state_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t queued() const { return queued_; }

 private:
  struct T {
    unsigned inflight = 0;
    unsigned backlog = 0;
  };
  TenantPopulation cfg_;
  std::unordered_map<std::uint64_t, T> state_;
  std::uint64_t dropped_ = 0;
  std::uint64_t queued_ = 0;
};

}  // namespace afc::workload
