#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace afc::workload {

/// Shape of one open-loop arrival process. All three kinds are Poisson at
/// heart — exponential gaps — with an optionally time-varying rate:
///
///   kPoisson   homogeneous: rate(t) = rate
///   kBursty    deterministic on/off phases: rate * burst_factor while a
///              phase of length burst_on is active, rate otherwise
///   kDiurnal   sinusoidal day curve compressed to simulation scale:
///              rate * (1 + diurnal_amplitude * sin(2*pi*t / diurnal_period))
///
/// See docs/WORKLOADS.md for the math and the seeding contract.
struct ArrivalConfig {
  enum class Kind { kPoisson, kBursty, kDiurnal };
  Kind kind = Kind::kPoisson;
  double rate = 1000.0;  // ops/sec (base rate for the modulated kinds)

  // kBursty
  double burst_factor = 8.0;
  Time burst_on = 50 * kMillisecond;
  Time burst_off = 200 * kMillisecond;

  // kDiurnal
  Time diurnal_period = 2 * kSecond;
  double diurnal_amplitude = 0.8;  // in [0, 1)

  /// Instantaneous rate at absolute simulation time `t` (ops/sec).
  double rate_at(Time t) const;
  /// Upper bound of rate_at over all t — the thinning envelope.
  double peak_rate() const;
};

/// Samples successive arrival instants of the configured process by
/// Lewis-Shedler thinning: candidate gaps are exponential at the peak rate,
/// accepted with probability rate(t)/peak. Deterministic given (config,
/// seed): the sequence of next() calls from a fresh instance is a pure
/// function of both, independent of anything else in the simulation — the
/// engine's byte-identical-arrivals contract hangs on this.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed);

  /// The first arrival instant strictly derived from (and >= ) `now`.
  Time next(Time now);

  const ArrivalConfig& config() const { return cfg_; }

 private:
  ArrivalConfig cfg_;
  Rng rng_;
};

}  // namespace afc::workload
