#include "workload/engine.h"

namespace afc::workload {

OpenLoopEngine::OpenLoopEngine(core::ClusterSim& cluster, OpenLoopSpec spec)
    : cluster_(cluster), spec_(std::move(spec)) {
  // One seed lineage per stream index, derived from the cluster seed the
  // same way VM seeds are (a fixed odd stride), so stream S's arrival
  // sequence is a pure function of (cluster seed, S) — never of the other
  // streams or of completion order.
  streams_.reserve(spec_.streams.size());
  for (std::size_t i = 0; i < spec_.streams.size(); i++) {
    streams_.emplace_back(spec_.streams[i],
                          cluster_.config().seed + 104729 * (std::uint64_t(i) + 1));
  }
}

sim::CoTask<void> OpenLoopEngine::arrival_loop(unsigned si, Time stop_at) {
  auto& sim = cluster_.simulation();
  Stream& st = streams_[si];
  for (;;) {
    const Time at = st.arrival.next(sim.now());
    if (at >= stop_at) co_return;  // the loop stops issuing, like io_loop
    if (at > sim.now()) co_await sim::delay(sim, at - sim.now(), "workload.arrival");
    st.arrivals++;
    const std::uint64_t tenant =
        st.spec.population.tenants <= 1
            ? 0
            : st.tenant_rng.zipf(st.spec.population.tenants, st.spec.population.skew);
    if (st.pop.on_arrival(tenant) == PopulationState::Admit::kRun) {
      launch(si, tenant);
    }
    // kQueued: the backlog entry launches when an in-flight op of this
    // tenant completes. kDropped: shed, accounted, gone.
  }
}

void OpenLoopEngine::launch(unsigned si, std::uint64_t tenant) {
  Stream& st = streams_[si];
  const bool is_write =
      st.spec.write_fraction >= 1.0 ||
      (st.spec.write_fraction > 0.0 && st.key_rng.uniform() < st.spec.write_fraction);
  const unsigned vm_idx = unsigned(st.cursor++ % cluster_.vm_count());
  const std::uint64_t blocks = cluster_.vm(vm_idx).image().size() / st.spec.block_size;
  const std::uint64_t block = st.spec.zipf_theta > 0.0
                                  ? st.key_rng.zipf(blocks, st.spec.zipf_theta)
                                  : st.key_rng.uniform_int(0, blocks - 1);
  st.issued++;
  sim::spawn(
      op_task(si, tenant, is_write, vm_idx, block * st.spec.block_size, st.spec.block_size));
}

sim::CoTask<void> OpenLoopEngine::op_task(unsigned si, std::uint64_t tenant, bool is_write,
                                          unsigned vm_idx, std::uint64_t off,
                                          std::uint64_t len) {
  auto& sim = cluster_.simulation();
  Stream& st = streams_[si];
  const Time issued_at = sim.now();
  const bool ok =
      co_await cluster_.vm(vm_idx).submit_io(is_write, off, len, st.spec.tenant);
  const Time done = sim.now();
  if (ok) {
    st.ok++;
  } else {
    st.failed++;
  }
  if (issued_at >= window_start_ && done <= window_end_) {
    st.lat.record(done - issued_at);
    st.completed_in_window++;
  }
  // Hand the freed per-tenant slot to that tenant's backlog, if any.
  if (st.pop.on_complete(tenant)) launch(si, tenant);
}

OpenLoopResult OpenLoopEngine::run() {
  OpenLoopResult out;
  if (ran_) return out;  // single-shot facade, like ClusterSim::run
  ran_ = true;
  auto& sim = cluster_.simulation();
  const Time t0 = sim.now();
  window_start_ = t0 + spec_.warmup;
  window_end_ = window_start_ + spec_.runtime;
  for (unsigned si = 0; si < streams_.size(); si++) {
    sim::spawn(arrival_loop(si, window_end_));
  }
  sim.run_until(window_end_);

  out.streams.reserve(streams_.size());
  for (auto& st : streams_) {
    StreamResult r;
    r.name = st.spec.name;
    r.tenant = st.spec.tenant;
    r.arrivals = st.arrivals;
    r.issued = st.issued;
    r.ok = st.ok;
    r.failed = st.failed;
    r.dropped = st.pop.dropped();
    r.queued = st.pop.queued();
    r.tenants_touched = st.pop.tenants_touched();
    r.completed_in_window = st.completed_in_window;
    r.lat = st.lat;
    r.iops = spec_.runtime == 0
                 ? 0.0
                 : double(st.completed_in_window) * double(kSecond) / double(spec_.runtime);
    r.mean_ms = st.lat.mean_ms();
    r.p99_ms = st.lat.p99_ms();
    out.streams.push_back(std::move(r));
  }
  cluster_.collect_osd_stats(out.cluster);
  cluster_.report_observability();
  return out;
}

}  // namespace afc::workload
