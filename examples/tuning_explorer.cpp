// Throttle tuning explorer — the paper's §3.2 in interactive form: sweep
// filestore_queue_max_ops and osd_client_message_cap around the HDD-era
// defaults and the paper's SSD sizing ("30K IOPS per block device"), with
// the lock optimization already applied, and watch both throughput and the
// fluctuation (CoV) the paper describes. Demonstrates why "changing one
// parameter" does not fix it — the two throttles must move together.

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

core::RunResult run_with(std::uint64_t fs_ops, std::uint64_t msg_cap) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::ladder(1);  // lock-opt applied, tuning NOT
  cfg.profile.name = "lock-opt";
  cfg.sustained = true;
  cfg.vms = 64;
  core::ClusterSim cluster(cfg);
  // Override the throttles directly (what the admin would put in ceph.conf).
  for (std::size_t i = 0; i < cluster.osd_count(); i++) {
    cluster.osd(i).throttles().filestore_ops.set_capacity(fs_ops);
    cluster.osd(i).throttles().messages.set_capacity(msg_cap);
  }
  // Deep queues (fio threads x iodepth): enough in-flight I/O that an
  // HDD-era message cap actually gates admission.
  auto spec = client::WorkloadSpec::rand_write(4096, 32);
  spec.warmup = 300 * kMillisecond;
  spec.runtime = 1200 * kMillisecond;
  return cluster.run(spec);
}

}  // namespace

int main() {
  std::printf(
      "Throttle tuning explorer: 4K randwrite, sustained, lock-opt applied\n"
      "(community defaults: filestore_queue_max_ops=50, osd_client_message_cap=100;\n"
      " paper's SSD sizing: 2048 / 5000)\n\n");

  Table t({"filestore_ops", "message_cap", "IOPS", "mean lat (ms)", "fluctuation (CoV)"});
  const std::uint64_t fs_sweep[] = {50, 256, 2048};
  const std::uint64_t msg_sweep[] = {100, 1000, 5000};
  for (auto fs_ops : fs_sweep) {
    for (auto msg_cap : msg_sweep) {
      auto r = run_with(fs_ops, msg_cap);
      t.row({std::to_string(fs_ops), std::to_string(msg_cap), Table::kiops(r.write_iops),
             Table::num(r.write_lat_ms, 2), Table::num(r.write_cov, 3)});
    }
  }
  t.print();
  std::printf(
      "\nIn this model filestore_queue_max_ops is the dominant throttle: raising\n"
      "it from the HDD-era 50 to the paper's SSD sizing unlocks throughput and\n"
      "cuts latency, while also exposing the journal/filestore oscillation\n"
      "(CoV jumps once the gate opens) that the paper tames with the rest of\n"
      "the tuning. The message cap only starts to matter at the very deepest\n"
      "queues; on the paper's physical testbed both had to move together\n"
      "(\"this phenomenon is not fixed by changing one parameter\").\n");
  return 0;
}
