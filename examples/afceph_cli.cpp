// afceph_cli — command-line explorer for the simulated cluster. Build any
// cluster/profile/workload combination from flags, run it, and print the
// results plus (optionally) the full per-OSD health report. This is the
// "fio + ceph daemon perf dump" of the repo.
//
// Examples:
//   afceph_cli --profile=community --rw=randwrite --bs=4096 --vms=80
//   afceph_cli --profile=afceph --rw=randread --bs=32768 --qd=16 --report
//   afceph_cli --profile=ladder2 --nodes=8 --clean --rw=seqwrite --bs=4194304
//   afceph_cli --rw=randwrite --zipf=0.9 --runtime-ms=2000 --series

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "afceph.h"

using namespace afc;

namespace {

struct Flags {
  std::string profile = "afceph";
  std::string rw = "randwrite";
  std::uint64_t bs = 4096;
  unsigned qd = 8;
  unsigned vms = 40;
  unsigned nodes = 4;
  bool clean = false;
  double zipf = 0.0;
  double write_fraction = -1.0;  // override for mixed
  std::uint64_t runtime_ms = 1500;
  std::uint64_t warmup_ms = 300;
  std::uint32_t pg_num = 0;  // 0 = default
  bool report = false;
  bool series = false;
  bool verify = false;
};

void usage() {
  std::puts(
      "afceph_cli [flags]\n"
      "  --profile=community|ladder1..ladder3|afceph   (default afceph)\n"
      "  --rw=randwrite|randread|seqwrite|seqread|mixed (default randwrite)\n"
      "  --bs=BYTES            block size (default 4096)\n"
      "  --qd=N                iodepth per VM (default 8)\n"
      "  --vms=N               virtual machines (default 40)\n"
      "  --nodes=N             OSD nodes, 4 OSDs each (default 4)\n"
      "  --clean               fresh SSDs / empty cluster (default sustained)\n"
      "  --zipf=THETA          skewed offsets (default 0 = uniform)\n"
      "  --write-fraction=F    for --rw=mixed (default 0.7)\n"
      "  --runtime-ms=N --warmup-ms=N\n"
      "  --pg-num=N            placement groups (default 256*nodes)\n"
      "  --verify              data-verified reads\n"
      "  --series              print the IOPS timeline\n"
      "  --report              print the full per-OSD health report");
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

bool parse(int argc, char** argv, Flags& f) {
  for (int i = 1; i < argc; i++) {
    std::string v;
    const char* a = argv[i];
    if (parse_flag(a, "--profile", v)) {
      f.profile = v;
    } else if (parse_flag(a, "--rw", v)) {
      f.rw = v;
    } else if (parse_flag(a, "--bs", v)) {
      f.bs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(a, "--qd", v)) {
      f.qd = unsigned(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_flag(a, "--vms", v)) {
      f.vms = unsigned(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_flag(a, "--nodes", v)) {
      f.nodes = unsigned(std::strtoul(v.c_str(), nullptr, 10));
    } else if (std::strcmp(a, "--clean") == 0) {
      f.clean = true;
    } else if (parse_flag(a, "--zipf", v)) {
      f.zipf = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(a, "--write-fraction", v)) {
      f.write_fraction = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(a, "--runtime-ms", v)) {
      f.runtime_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(a, "--warmup-ms", v)) {
      f.warmup_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(a, "--pg-num", v)) {
      f.pg_num = std::uint32_t(std::strtoul(v.c_str(), nullptr, 10));
    } else if (std::strcmp(a, "--verify") == 0) {
      f.verify = true;
    } else if (std::strcmp(a, "--series") == 0) {
      f.series = true;
    } else if (std::strcmp(a, "--report") == 0) {
      f.report = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", a);
      return false;
    }
  }
  return true;
}

core::Profile profile_by_name(const std::string& name, bool& ok) {
  ok = true;
  if (name == "community") return core::Profile::community();
  if (name == "afceph") return core::Profile::afceph();
  if (name.rfind("ladder", 0) == 0 && name.size() == 7 && name[6] >= '0' && name[6] <= '4') {
    return core::Profile::ladder(name[6] - '0');
  }
  ok = false;
  return core::Profile::community();
}

}  // namespace

int main(int argc, char** argv) {
  Flags f;
  if (!parse(argc, argv, f)) {
    usage();
    return 2;
  }

  bool ok = true;
  core::ClusterConfig cfg;
  cfg.profile = profile_by_name(f.profile, ok);
  if (!ok) {
    std::fprintf(stderr, "unknown profile: %s\n\n", f.profile.c_str());
    usage();
    return 2;
  }
  cfg.osd_nodes = f.nodes;
  cfg.vms = f.vms;
  cfg.sustained = !f.clean;
  cfg.pg_num = f.pg_num != 0 ? f.pg_num : 256 * f.nodes;

  client::WorkloadSpec spec;
  const bool is_seq = f.rw == "seqwrite" || f.rw == "seqread";
  spec.pattern = is_seq ? client::WorkloadSpec::Pattern::kSequential
                        : client::WorkloadSpec::Pattern::kRandom;
  if (f.rw == "randwrite" || f.rw == "seqwrite") {
    spec.write_fraction = 1.0;
  } else if (f.rw == "randread" || f.rw == "seqread") {
    spec.write_fraction = 0.0;
    if (f.clean) cfg.populated = 1;  // give the reads something to read
  } else if (f.rw == "mixed") {
    spec.write_fraction = f.write_fraction >= 0.0 ? f.write_fraction : 0.7;
  } else {
    std::fprintf(stderr, "unknown --rw: %s\n\n", f.rw.c_str());
    usage();
    return 2;
  }
  spec.block_size = f.bs;
  spec.iodepth = f.qd;
  spec.zipf_theta = f.zipf;
  spec.verify = f.verify;
  spec.warmup = f.warmup_ms * kMillisecond;
  spec.runtime = f.runtime_ms * kMillisecond;

  std::printf("cluster: %u nodes x 4 OSDs, rep=%u, pg_num=%u, %s, profile=%s\n", f.nodes,
              cfg.replication, cfg.pg_num, f.clean ? "clean" : "sustained",
              cfg.profile.name.c_str());
  std::printf("workload: %s bs=%llu qd=%u vms=%u zipf=%.2f runtime=%llums\n\n", f.rw.c_str(),
              (unsigned long long)f.bs, f.qd, f.vms, f.zipf,
              (unsigned long long)f.runtime_ms);

  core::ClusterSim cluster(cfg);
  auto r = cluster.run(spec);

  if (spec.write_fraction > 0.0) {
    std::printf("writes: %10.0f IOPS (%8.1f MB/s)  mean %7.2f ms  p99 %8.2f ms  cov %.3f\n",
                r.write_iops, r.write_iops * double(f.bs) / double(kMiB), r.write_lat_ms,
                r.write_p99_ms, r.write_cov);
  }
  if (spec.write_fraction < 1.0) {
    std::printf("reads : %10.0f IOPS (%8.1f MB/s)  mean %7.2f ms  p99 %8.2f ms  cov %.3f\n",
                r.read_iops, r.read_iops * double(f.bs) / double(kMiB), r.read_lat_ms,
                r.read_p99_ms, r.read_cov);
  }
  if (f.verify) std::printf("verify failures: %llu\n", (unsigned long long)r.verify_failures);
  std::printf(
      "internals: lock-wait %.0f ms, defers %llu, metaRd %llu, journal-full %.0f ms, "
      "kv-WA %.2f, max node CPU %.0f%%\n",
      to_ms(r.pg_lock_wait_ns), (unsigned long long)r.pending_defers,
      (unsigned long long)r.metadata_device_reads, to_ms(r.journal_full_ns),
      r.kv_write_amplification, r.max_osd_node_cpu * 100.0);

  if (f.series) {
    std::printf("\nwrite IOPS timeline:\n%s", r.write_series.to_string(2).c_str());
    if (spec.write_fraction < 1.0) {
      std::printf("\nread IOPS timeline:\n%s", r.read_series.to_string(2).c_str());
    }
  }
  if (f.report) std::printf("\n%s", core::health_report(cluster).c_str());
  return 0;
}
