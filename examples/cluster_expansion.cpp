// Scale-out elasticity: start with a 2-node cluster, write a dataset, then
// add nodes one at a time. After each expansion the example verifies that
//  * CRUSH moved roughly 1/N of the PGs (minimal movement),
//  * every object still verifies byte-for-byte through the new mapping,
//  * random-write throughput grows with the node count (the paper's
//    Fig. 12 claim, live instead of with separate clusters).

#include <cstdio>

#include "afceph.h"

using namespace afc;

int main() {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.sustained = false;
  cfg.osd_nodes = 2;
  cfg.vms = 8;
  cfg.pg_num = 256;
  cfg.image_size = 1 * kGiB;
  core::ClusterSim cluster(cfg);
  auto& sim = cluster.simulation();

  constexpr int kObjects = 96;
  bool all_ok = true;

  sim::spawn_fn([&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    std::printf("writing %d verified objects to the 2-node cluster...\n", kObjects);
    for (int i = 0; i < kObjects; i++) {
      co_await vm.write_once(std::uint64_t(i) * 4 * kMiB,
                             Payload::pattern(8192, 4000 + std::uint64_t(i)));
    }
    co_await sim::delay(sim, 2 * kSecond);

    for (int round = 0; round < 2; round++) {
      // Measure a quick burst of load at this cluster size.
      sim::WaitGroup wg(sim);
      std::uint64_t completed = 0;
      const Time burst_start = sim.now();
      for (std::size_t v = 0; v < cluster.vm_count(); v++) {
        for (int lane = 0; lane < 16; lane++) {  // qd16 per VM: saturate
          wg.add(1);
          sim::spawn_fn([&cluster, &wg, &completed, v, lane]() -> sim::CoTask<void> {
            auto& bvm = cluster.vm(v);
            // Burst region starts at 512 MiB — disjoint from the verified
            // objects in the first 384 MiB of the image.
            for (int i = 0; i < 100; i++) {
              const std::uint64_t block = std::uint64_t(lane) * 100 + std::uint64_t(i) % 100;
              co_await bvm.write_once(512 * kMiB + (block % 1600) * 4096 * 64,
                                      Payload::pattern(4096, std::uint64_t(i)));
              completed++;
            }
            wg.done();
          });
        }
      }
      co_await wg.wait();
      const double iops = double(completed) * double(kSecond) / double(sim.now() - burst_start);
      std::printf("[%zu nodes] burst: %.0f IOPS\n", cluster.osd_count() / 4, iops);

      // Expand.
      auto before = std::vector<std::vector<std::uint32_t>>();
      for (std::uint32_t pg = 0; pg < cluster.config().pg_num; pg++) {
        before.push_back(cluster.map().acting(pg));
      }
      const std::size_t old_osds = cluster.osd_count();
      const Time t0 = sim.now();
      const std::uint64_t migrated = co_await cluster.add_node();
      std::printf("added node -> %zu OSDs: migrated %llu objects in %.1f ms (virtual)\n",
                  cluster.osd_count(), (unsigned long long)migrated, to_ms(sim.now() - t0));

      // Minimal movement check.
      int moved = 0;
      for (std::uint32_t pg = 0; pg < cluster.config().pg_num; pg++) {
        if (cluster.map().acting(pg) != before[pg]) moved++;
      }
      const double moved_frac = double(moved) / double(cluster.config().pg_num);
      const double ideal = double(cluster.osd_count() - old_osds) / double(cluster.osd_count());
      std::printf("PGs remapped: %.0f%% (ideal for this growth: ~%.0f%%)\n", moved_frac * 100.0,
                  ideal * 100.0 * 2);  // x2: either replica moving remaps the PG

      // Full data verification through the new map.
      int bad = 0;
      for (int i = 0; i < kObjects; i++) {
        auto r = co_await vm.read_once(std::uint64_t(i) * 4 * kMiB, 8192);
        if (!r.ok || !Payload::bytes(std::move(r.data))
                          .content_equals(Payload::pattern(8192, 4000 + std::uint64_t(i)))) {
          bad++;
        }
      }
      std::printf("verification after expansion: %d/%d objects OK\n\n", kObjects - bad, kObjects);
      all_ok &= bad == 0;
    }
  });
  sim.run_until(600 * kSecond);
  std::printf("%s\n", all_ok ? "expansion scenario complete: all data intact"
                             : "DATA VERIFICATION FAILED");
  return all_ok ? 0 : 1;
}
