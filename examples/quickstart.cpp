// Quickstart: build a 4-node all-flash cluster, write and read back a block
// through the full replicated OSD pipeline, then compare community Ceph vs
// AFCeph on a short 4K random-write burst.

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

core::ClusterConfig small_cluster(const core::Profile& profile) {
  core::ClusterConfig cfg;
  cfg.profile = profile;
  cfg.vms = 8;
  cfg.pg_num = 256;
  cfg.image_size = 1 * kGiB;
  cfg.sustained = true;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== AFCeph quickstart ==\n\n");

  // --- 1. Correctness: write a pattern, read it back, verify bytes -------
  {
    core::ClusterSim cluster(small_cluster(core::Profile::afceph()));
    auto& vm = cluster.vm(0);
    bool ok = false;
    std::vector<std::uint8_t> readback;
    auto payload = Payload::pattern(4096, /*seed=*/0xabcdef);

    sim::spawn_fn([&]() -> sim::CoTask<void> {
      ok = co_await vm.write_once(1 * kMiB, payload);
      auto r = co_await vm.read_once(1 * kMiB, 4096);
      if (r.ok) readback = std::move(r.data);
    });
    cluster.simulation().run_until(10 * kSecond);

    const bool verified =
        ok && Payload::bytes(std::move(readback)).content_equals(payload);
    std::printf("write+readback through %zu OSDs (replication %u): %s\n",
                cluster.osd_count(), cluster.config().replication,
                verified ? "verified" : "FAILED");
  }

  // --- 2. Performance: community vs AFCeph on 4K random writes -----------
  auto spec = client::WorkloadSpec::rand_write(4096, 8);
  spec.warmup = 200 * kMillisecond;
  spec.runtime = 800 * kMillisecond;

  std::printf("\n4K random write, 8 VMs x qd8, sustained SSDs:\n");
  for (const auto& profile : {core::Profile::community(), core::Profile::afceph()}) {
    core::ClusterSim cluster(small_cluster(profile));
    auto r = cluster.run(spec);
    std::printf("  %-18s %8.0f IOPS   mean %.2f ms   p99 %.2f ms\n", profile.name.c_str(),
                r.write_iops, r.write_lat_ms, r.write_p99_ms);
  }
  std::printf("\nSee examples/vm_hosting.cpp and bench/ for the full evaluation.\n");
  return 0;
}
