// VM-hosting scenario (the paper's motivating workload): a cloud block
// service with many VMs doing small random I/O plus a couple of streaming
// tenants. Shows why the drop-in SSD swap disappoints (community profile)
// and what the AFCeph optimizations recover — including per-op internals
// (metadata reads, lock waits, pending-queue defers).

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

void run_tenant_mix(const core::Profile& profile) {
  core::ClusterConfig cfg;
  cfg.profile = profile;
  cfg.sustained = true;  // the cloud has been in production for a while
  cfg.vms = 32;
  core::ClusterSim cluster(cfg);

  // Mixed tenant population: 70% write-heavy OLTP-ish VMs, 30% read-mostly.
  auto spec = client::WorkloadSpec::rand_write(4096, 8);
  spec.write_fraction = 0.7;
  spec.warmup = 300 * kMillisecond;
  spec.runtime = 1500 * kMillisecond;
  auto r = cluster.run(spec);

  std::printf("\n=== %s ===\n", profile.name.c_str());
  std::printf("  writes: %8.0f IOPS  mean %.2f ms  p99 %.2f ms\n", r.write_iops, r.write_lat_ms,
              r.write_p99_ms);
  std::printf("  reads : %8.0f IOPS  mean %.2f ms  p99 %.2f ms\n", r.read_iops, r.read_lat_ms,
              r.read_p99_ms);
  std::printf("  internals:\n");
  std::printf("    PG-lock wait total        %8.0f ms (%llu contended acquisitions)\n",
              to_ms(r.pg_lock_wait_ns), (unsigned long long)r.pg_lock_contended);
  std::printf("    pending-queue defers      %8llu (ops parked, workers kept busy)\n",
              (unsigned long long)r.pending_defers);
  std::printf("    metadata reads from disk  %8llu (RMW on the write path)\n",
              (unsigned long long)r.metadata_device_reads);
  std::printf("    filestore syscalls        %8llu\n", (unsigned long long)r.syscalls);
  std::printf("    KV write amplification    %8.2f\n", r.kv_write_amplification);
  std::printf("    max OSD-node CPU          %8.0f%%\n", r.max_osd_node_cpu * 100.0);
}

}  // namespace

int main() {
  std::printf("VM hosting on all-flash Ceph: 32 VMs, 70/30 write/read 4K mix, sustained\n");
  run_tenant_mix(core::Profile::community());
  run_tenant_mix(core::Profile::afceph());
  std::printf(
      "\nThe community profile burns its budget on metadata RMW reads, blocking\n"
      "logging and PG-lock convoys; AFCeph spends the same hardware on I/O.\n");
  return 0;
}
