// Failure & recovery: why the paper refuses to dismantle the PG lock scheme
// (§3.1: "PG lock ... is the basis of the recovery system"). This example
// writes a verified dataset, decommissions an OSD, lets the cluster
// re-replicate from the surviving copies using CRUSH's recomputed mapping,
// and proves that every byte survives and full redundancy is restored.

#include <cstdio>

#include "afceph.h"

using namespace afc;

int main() {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.sustained = false;
  cfg.osd_nodes = 3;
  cfg.osds_per_node = 2;
  cfg.vms = 4;
  cfg.pg_num = 128;
  cfg.image_size = 1 * kGiB;
  core::ClusterSim cluster(cfg);
  auto& sim = cluster.simulation();

  constexpr int kObjects = 128;
  bool ok = true;

  sim::spawn_fn([&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    std::printf("1. writing %d verified objects (replication %u)...\n", kObjects,
                cluster.config().replication);
    for (int i = 0; i < kObjects; i++) {
      co_await vm.write_once(std::uint64_t(i) * 4 * kMiB,
                             Payload::pattern(4096, 7000 + std::uint64_t(i)));
    }
    co_await sim::delay(sim, 2 * kSecond);  // filestore applies settle

    // Count how much data the victim holds.
    constexpr std::uint32_t kVictim = 1;
    std::size_t victim_objects = cluster.osd(kVictim).store().object_count();
    std::printf("2. failing osd.%u (holds %zu object replicas)...\n", kVictim, victim_objects);

    const Time t0 = sim.now();
    const std::uint64_t migrated = co_await cluster.decommission_osd(kVictim);
    std::printf("3. recovery done: %llu objects re-replicated in %.1f ms (virtual)\n",
                (unsigned long long)migrated, to_ms(sim.now() - t0));

    std::printf("4. verifying all %d objects through the new mapping...\n", kObjects);
    int bad = 0;
    for (int i = 0; i < kObjects; i++) {
      auto r = co_await vm.read_once(std::uint64_t(i) * 4 * kMiB, 4096);
      if (!r.ok || !Payload::bytes(std::move(r.data))
                        .content_equals(Payload::pattern(4096, 7000 + std::uint64_t(i)))) {
        bad++;
      }
    }
    std::printf("   %d/%d objects verified\n", kObjects - bad, kObjects);
    ok &= bad == 0;

    std::printf("5. checking redundancy is fully restored...\n");
    int under_replicated = 0;
    for (int i = 0; i < kObjects; i++) {
      const auto m = vm.image().map(std::uint64_t(i) * 4 * kMiB);
      const auto pg = cluster.map().pg_of(m.object_name);
      const auto& acting = cluster.map().acting(pg);
      if (acting.size() < cluster.config().replication) under_replicated++;
      for (auto osd : acting) {
        if (osd == kVictim ||
            !cluster.osd(osd).store().object_in_memory(fs::ObjectId{pg, m.object_name})) {
          under_replicated++;
        }
      }
    }
    std::printf("   under-replicated or misplaced copies: %d\n", under_replicated);
    ok &= under_replicated == 0;
  });
  sim.run_until(600 * kSecond);
  std::printf("\n%s\n", ok ? "failure/recovery scenario complete: no data loss"
                           : "RECOVERY FAILED");
  return ok ? 0 : 1;
}
