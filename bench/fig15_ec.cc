// Figure 15 (beyond the paper): erasure coding vs replication on the same
// all-flash complement. The paper's pools are replicated; this harness
// quantifies what an EC(4+2) pool trades for its 1.5x storage overhead
// (vs 3x for 3-replication) on three axes:
//
//   A  healthy 4K random-write latency/IOPS, 8 identical OSDs, 3-rep vs
//      EC(4+2). Every EC write encodes the stripe and fans sub-ops to k+m=6
//      shard holders instead of 3 full copies, so latency is expected to
//      trail replication — the `--smoke` gate (scripts/check.sh) fails the
//      build if EC healthy write p99 exceeds 2x the 3-rep p99.
//   B  degraded-read penalty: a 6-OSD EC pool with no spare loses one OSD,
//      so every read whose data shard lived there must gather k surviving
//      shards and decode (osd.ec_reconstruct_reads). Reported as read
//      p99 healthy vs degraded on identical offered load.
//   C  recovery after 1- and 2-OSD loss on 8 OSDs: replication re-copies
//      whole objects from a surviving replica; EC rebuilds exactly the lost
//      shard positions by decode-from-peers. Reported as drain time after
//      the crash plus units recovered (objects pushed vs shards rebuilt).
//
// Results append to BENCH_*.json via AFC_BENCH_JSON like every other bench.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "afceph.h"
#include "core/bench_json.h"

using namespace afc;

namespace {

bool g_smoke = false;

// Wall-clock bracket for one rung; emits the trajectory datapoint (stdout
// stays byte-identical whether or not AFC_BENCH_JSON is set).
struct Rung {
  std::chrono::steady_clock::time_point wall0 = std::chrono::steady_clock::now();

  void record(core::ClusterSim& cluster, const char* config, const char* metric,
              double value) {
    if (!core::BenchJson::enabled()) return;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall0)
            .count();
    core::BenchRecord rec;
    rec.bench = "fig15_ec";
    rec.config = config;
    rec.nodes = cluster.config().osd_nodes;
    rec.osds = cluster.config().osd_nodes * cluster.config().osds_per_node;
    rec.metric = metric;
    rec.value = value;
    rec.wall_ms = wall_ms;
    rec.events = cluster.simulation().executed_events();
    rec.events_per_wall_sec = wall_ms > 0 ? double(rec.events) / (wall_ms / 1e3) : 0;
    rec.sim_ns = cluster.simulation().now();
    rec.sim_ns_per_wall_ns = wall_ms > 0 ? double(rec.sim_ns) / (wall_ms * 1e6) : 0;
    core::BenchJson::record(rec);
  }
};

// One OSD per node so "lose an OSD" and "lose a node" coincide and both
// schemes spread shards/replicas over identical failure domains.
core::ClusterConfig base_config(bool ec, unsigned nodes) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = nodes;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 2;
  cfg.vms = 4;
  cfg.pg_num = 64;
  cfg.sustained = false;
  cfg.populated = 0;
  cfg.replication = 3;
  if (ec) {
    cfg.ec_pool = true;
    cfg.ec_k = 4;
    cfg.ec_m = 2;
  }
  return cfg;
}

// --- Phase A: healthy 4K random write, 3-rep vs EC(4+2) -------------------

core::RunResult run_healthy(bool ec) {
  Rung rung;
  core::ClusterConfig cfg = base_config(ec, 8);
  core::ClusterSim cluster(cfg);
  auto spec = client::WorkloadSpec::rand_write(4096, 8);
  spec.warmup = g_smoke ? 150 * kMillisecond : 300 * kMillisecond;
  spec.runtime = g_smoke ? 500 * kMillisecond : 1500 * kMillisecond;
  auto r = cluster.run(spec);
  const char* config = ec ? "ec42/4k_randwrite" : "3rep/4k_randwrite";
  rung.record(cluster, config, "write_iops", r.write_iops);
  rung.record(cluster, config, "write_p99_ms", r.write_p99_ms);
  return r;
}

// --- Phase B: degraded-read penalty on a spare-less EC pool ---------------

struct DegradedResult {
  client::RunStats healthy;
  client::RunStats degraded;
  core::RunResult cluster;  // counters incl. ec_reconstruct_reads
};

DegradedResult run_degraded_reads() {
  Rung rung;
  core::ClusterConfig cfg = base_config(/*ec=*/true, /*nodes=*/6);
  // Small images so the sequential populate pass covers every block — reads
  // then always hit live stripes instead of fast-failing on holes.
  cfg.image_size = (g_smoke ? 4 : 8) * kMiB;
  // Reads aimed at the dead OSD must time out and re-target, not hang.
  cfg.client_op_timeout = 10 * kMillisecond;
  cfg.client_op_retries = 3;
  core::ClusterSim cluster(cfg);

  const Time t_pop = (g_smoke ? 600 : 1000) * kMillisecond;
  const Time read_win = (g_smoke ? 300 : 600) * kMillisecond;
  const Time t_crash = t_pop + read_win + 50 * kMillisecond;
  const Time t_deg0 = t_crash + 50 * kMillisecond;  // let retargeting settle

  fault::FaultPlan plan;
  plan.crash(t_crash, /*osd=*/1);  // permanent: no spare can absorb it
  cluster.install_faults(plan);

  // Populate: sequential writes cover the whole image. ClusterSim::run()
  // would tear its RunStats down while io_loops are still parked, so every
  // window drives the VMs directly against long-lived local sinks.
  client::RunStats pop;
  pop.window_start = 0;
  pop.window_end = t_pop;
  auto wspec = client::WorkloadSpec::seq_write(4096, 8);
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(wspec, t_pop, &pop);
  }
  cluster.simulation().run_until(t_pop);

  DegradedResult out;
  auto rspec = client::WorkloadSpec::rand_read(4096, 8);
  out.healthy.window_start = t_pop;
  out.healthy.window_end = t_pop + read_win;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(rspec, out.healthy.window_end, &out.healthy);
  }
  cluster.simulation().run_until(t_deg0);

  out.degraded.window_start = t_deg0;
  out.degraded.window_end = t_deg0 + read_win;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(rspec, out.degraded.window_end, &out.degraded);
  }
  cluster.simulation().run_until(out.degraded.window_end);
  cluster.simulation().run();  // drain timeouts/retries
  cluster.collect_osd_stats(out.cluster);
  rung.record(cluster, "ec42/degraded_read", "read_p99_ms_healthy",
              out.healthy.read_lat.p99_ms());
  rung.record(cluster, "ec42/degraded_read", "read_p99_ms_degraded",
              out.degraded.read_lat.p99_ms());
  cluster.close_all();
  cluster.simulation().run();
  return out;
}

// --- Phase C: recovery after 1- and 2-OSD loss ----------------------------

struct RecoveryResult {
  double recovery_ms = 0.0;  // crash -> event queue drained
  std::uint64_t units = 0;   // objects pushed (rep) / shards rebuilt (EC)
};

RecoveryResult run_recovery(bool ec, unsigned losses) {
  Rung rung;
  core::ClusterConfig cfg = base_config(ec, 8);
  cfg.image_size = (g_smoke ? 4 : 8) * kMiB;
  cfg.client_op_timeout = 10 * kMillisecond;
  core::ClusterSim cluster(cfg);

  const Time t_pop = (g_smoke ? 600 : 1000) * kMillisecond;
  const Time t_crash = t_pop + 100 * kMillisecond;

  fault::FaultPlan plan;
  plan.crash(t_crash, 1);
  if (losses > 1) plan.crash(t_crash, 3);
  auto& inj = cluster.install_faults(plan);

  client::RunStats pop;
  pop.window_start = 0;
  pop.window_end = t_pop;
  auto wspec = client::WorkloadSpec::seq_write(4096, 8);
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(wspec, t_pop, &pop);
  }
  cluster.simulation().run_until(t_crash + kMillisecond);
  cluster.simulation().run();  // recovery runs to quiescence

  RecoveryResult out;
  out.recovery_ms = double(cluster.simulation().now() - t_crash) / double(kMillisecond);
  core::RunResult r;
  cluster.collect_osd_stats(r);
  if (ec) {
    out.units = r.ec_shards_rebuilt;
  } else {
    out.units = inj.counters().get("fault.backfills");
  }
  const std::string config = std::string(ec ? "ec42" : "3rep") + "/loss" +
                             std::to_string(losses);
  rung.record(cluster, config.c_str(), "recovery_ms", out.recovery_ms);
  cluster.close_all();
  cluster.simulation().run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("Fig.15: EC(4+2) vs 3-replication on identical flash%s\n",
              g_smoke ? " [smoke]" : "");

  std::printf("\n--- A: healthy 4K random write, 8 OSDs ---\n");
  auto rep = run_healthy(/*ec=*/false);
  auto ec = run_healthy(/*ec=*/true);
  {
    Table t({"scheme", "IOPS", "mean ms", "p99 ms", "storage overhead"});
    t.row({"3-replication", Table::kiops(rep.write_iops), Table::num(rep.write_lat_ms, 2),
           Table::num(rep.write_p99_ms, 2), "3.0x"});
    t.row({"EC(4+2)", Table::kiops(ec.write_iops), Table::num(ec.write_lat_ms, 2),
           Table::num(ec.write_p99_ms, 2), "1.5x"});
    t.print();
  }

  std::printf("\n--- B: degraded reads, EC(4+2) on 6 OSDs, 1 OSD lost ---\n");
  auto deg = run_degraded_reads();
  {
    Table t({"window", "read IOPS", "mean ms", "p99 ms"});
    t.row({"healthy", Table::kiops(deg.healthy.read_iops()),
           Table::num(deg.healthy.read_lat.mean_ms(), 2),
           Table::num(deg.healthy.read_lat.p99_ms(), 2)});
    t.row({"degraded", Table::kiops(deg.degraded.read_iops()),
           Table::num(deg.degraded.read_lat.mean_ms(), 2),
           Table::num(deg.degraded.read_lat.p99_ms(), 2)});
    t.print();
    std::printf("reconstructed reads (decode from k survivors): %llu\n",
                static_cast<unsigned long long>(deg.cluster.ec_reconstruct_reads));
  }

  std::printf("\n--- C: recovery on 8 OSDs (drain time after loss) ---\n");
  {
    Table t({"scheme", "lost", "recovery ms", "units recovered"});
    for (unsigned losses : {1u, 2u}) {
      auto r3 = run_recovery(false, losses);
      t.row({"3-replication", std::to_string(losses), Table::num(r3.recovery_ms, 1),
             std::to_string(r3.units) + " objects"});
      auto re = run_recovery(true, losses);
      t.row({"EC(4+2)", std::to_string(losses), Table::num(re.recovery_ms, 1),
             std::to_string(re.units) + " shards"});
    }
    t.print();
  }

  std::printf(
      "\nEC trades write latency (encode + k+m sub-ops) and degraded-read\n"
      "latency (gather k + decode) for a 2x smaller storage footprint;\n"
      "recovery moves only the lost shard positions instead of whole objects.\n");

  if (g_smoke) {
    // Perf gate: the EC write path may cost more than replication, but not
    // pathologically so. 2x p99 headroom matches the fig14 isolation gate.
    if (!(ec.write_p99_ms <= 2.0 * rep.write_p99_ms)) {
      std::printf("SMOKE FAIL: EC(4+2) healthy write p99 %.2fms > 2x 3-rep %.2fms\n",
                  ec.write_p99_ms, rep.write_p99_ms);
      return 1;
    }
    if (deg.cluster.ec_reconstruct_reads == 0) {
      std::printf("SMOKE FAIL: degraded window served no reconstructed reads\n");
      return 1;
    }
    std::printf("smoke: PASS (EC p99 %.2fms <= 2x 3-rep p99 %.2fms, %llu decode reads)\n",
                ec.write_p99_ms, rep.write_p99_ms,
                static_cast<unsigned long long>(deg.cluster.ec_reconstruct_reads));
  }
  return 0;
}
