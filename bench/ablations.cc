// Ablation benches beyond the paper's figures — sensitivity of the design
// choices DESIGN.md calls out:
//
//  1. single-mechanism ablations: each AFCeph mechanism turned off alone
//     (complement of the Fig. 9 ladder, which turns them on cumulatively);
//  2. completion batch size sweep;
//  3. metadata cache capacity sensitivity (community profile);
//  4. KV batching alone (write-amplification effect);
//  5. PG count sweep (lock granularity vs the pending queue).

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

core::RunResult run(core::ClusterConfig cfg, unsigned vms = 40,
                    Time runtime = 1000 * kMillisecond) {
  cfg.vms = vms;
  core::ClusterSim cluster(cfg);
  auto spec = client::WorkloadSpec::rand_write(4096, 16);
  spec.warmup = 300 * kMillisecond;
  spec.runtime = runtime;
  return cluster.run(spec);
}

void one_mechanism_off() {
  std::printf("--- AFCeph minus one mechanism (4K randwrite, sustained, 40 VMs) ---\n");
  struct Case {
    const char* name;
    void (*apply)(core::Profile&);
  };
  const Case cases[] = {
      {"AFCeph (full)", [](core::Profile&) {}},
      {"- pending queue", [](core::Profile& p) { p.pending_queue = false; }},
      {"- dedicated completion+fast ack",
       [](core::Profile& p) {
         p.dedicated_completion = false;
         p.fast_ack = false;
       }},
      {"- ssd throttles", [](core::Profile& p) { p.ssd_throttles = false; }},
      {"- jemalloc", [](core::Profile& p) { p.jemalloc = false; }},
      {"- nodelay (nagle back on)", [](core::Profile& p) { p.disable_nagle = false; }},
      {"- nonblocking logging",
       [](core::Profile& p) {
         p.nonblocking_logging = false;
         p.log_cache = false;
         p.log_writer_threads = 1;
       }},
      {"- light transactions",
       [](core::Profile& p) {
         p.light_transactions = false;
         p.kv_batching = false;
         p.skip_alloc_hint = false;
       }},
      {"- write-through meta cache", [](core::Profile& p) { p.writethrough_meta_cache = false; }},
  };
  Table t({"configuration", "IOPS", "mean lat (ms)", "vs full"});
  double full = 0.0;
  for (const auto& c : cases) {
    core::ClusterConfig cfg;
    cfg.profile = core::Profile::afceph();
    c.apply(cfg.profile);
    cfg.sustained = true;
    auto r = run(cfg);
    if (full == 0.0) full = r.write_iops;
    t.row({c.name, Table::kiops(r.write_iops), Table::num(r.write_lat_ms, 2),
           Table::num(r.write_iops / full * 100.0, 0) + "%"});
  }
  t.print();
}

void batch_size_sweep() {
  std::printf("\n--- completion batch size (AFCeph, sustained, 40 VMs) ---\n");
  Table t({"batch max", "IOPS", "mean lat (ms)"});
  for (unsigned batch : {1u, 8u, 64u, 256u}) {
    core::ClusterConfig cfg;
    cfg.profile = core::Profile::afceph();
    cfg.sustained = true;
    cfg.osd.completion_batch_max = batch;
    auto r = run(cfg);
    t.row({std::to_string(batch), Table::kiops(r.write_iops), Table::num(r.write_lat_ms, 2)});
  }
  t.print();
}

void kv_batching_only() {
  std::printf("\n--- KV batching alone: write amplification (community base) ---\n");
  Table t({"mode", "IOPS", "KV write amp", "KV stalls"});
  for (bool batching : {false, true}) {
    core::ClusterConfig cfg;
    cfg.profile = core::Profile::community();
    cfg.profile.kv_batching = batching;
    cfg.profile.light_transactions = batching;  // batch applies via light path
    cfg.sustained = true;
    auto r = run(cfg, 40, 1500 * kMillisecond);
    t.row({batching ? "batched (1 batch/txn)" : "separate puts", Table::kiops(r.write_iops),
           Table::num(r.kv_write_amplification, 2),
           std::to_string(r.kv_stall_slowdowns)});
  }
  t.print();
}

void pg_count_sweep() {
  std::printf("\n--- PG count (lock granularity) x pending queue, clean, 40 VMs ---\n");
  Table t({"pg_num", "community IOPS", "+pending-queue IOPS", "gain"});
  for (std::uint32_t pgs : {128u, 512u, 2048u}) {
    double iops[2];
    for (int p = 0; p < 2; p++) {
      core::ClusterConfig cfg;
      cfg.profile = p == 0 ? core::Profile::community() : core::Profile::ladder(1);
      cfg.pg_num = pgs;
      cfg.sustained = false;  // lock effects visible when filestore isn't the binder
      iops[p] = run(cfg).write_iops;
    }
    t.row({std::to_string(pgs), Table::kiops(iops[0]), Table::kiops(iops[1]),
           Table::num((iops[1] / iops[0] - 1.0) * 100.0, 0) + "%"});
  }
  t.print();
}

void hot_object_skew() {
  std::printf("\n--- access skew (Zipf) x pending queue, clean, 40 VMs, 4K randwrite ---\n");
  Table t({"zipf theta", "community IOPS", "+pending-queue IOPS", "gain"});
  for (double theta : {0.0, 0.9, 1.1}) {
    double iops[2];
    for (int p = 0; p < 2; p++) {
      core::ClusterConfig cfg;
      cfg.profile = p == 0 ? core::Profile::community() : core::Profile::ladder(1);
      cfg.sustained = false;
      cfg.vms = 40;
      core::ClusterSim cluster(cfg);
      auto spec = client::WorkloadSpec::rand_write(4096, 16);
      spec.zipf_theta = theta;
      spec.warmup = 300 * kMillisecond;
      spec.runtime = 1000 * kMillisecond;
      iops[p] = cluster.run(spec).write_iops;
    }
    t.row({Table::num(theta, 2), Table::kiops(iops[0]), Table::kiops(iops[1]),
           Table::num((iops[1] / iops[0] - 1.0) * 100.0, 0) + "%"});
  }
  t.print();
  std::printf("hot objects concentrate load on few PGs; the pending queue keeps\n"
              "workers off the hot PG's lock, so its benefit grows with skew.\n");
}

}  // namespace

int main() {
  one_mechanism_off();
  batch_size_sweep();
  kv_batching_only();
  pg_count_sweep();
  hot_object_skew();
  return 0;
}
