// google-benchmark microbenchmarks of the real-threads implementations of
// the paper's mechanisms (§3.1-§3.3): sharded op queue with/without pending
// queues, blocking vs non-blocking logger (with/without log cache),
// throttle, completion batcher, the underlying queues, and the
// thread-caching arena allocator.
//
// NOTE: on a single-core host the thread-contention contrasts compress
// (threads serialize, so head-of-line blocking and blocking-logger handoff
// cost little wall time); run on a multi-core machine to see the paper's
// gaps. The numbers are still useful as absolute per-op costs.

#include <benchmark/benchmark.h>

#include <thread>

#include "rt/arena.h"
#include "rt/async_logger.h"
#include "rt/completion_batcher.h"
#include "rt/mpmc_queue.h"
#include "rt/sharded_opqueue.h"
#include "rt/throttle.h"

namespace {

using namespace afc::rt;

// --- op queue: community (head-of-line blocking) vs pending queue ---------
// One hot key (a busy PG) plus uniform traffic; workers "hold the PG lock"
// for a short service time. Pending mode keeps workers busy on other keys.
void bench_opqueue(benchmark::State& state, bool pending) {
  const unsigned kWorkers = 4;
  constexpr int kHotEvery = 4;
  for (auto _ : state) {
    state.PauseTiming();
    ShardedOpQueue<int> q(2, pending);
    std::atomic<std::uint64_t> processed{0};
    const std::uint64_t total = 4096;
    state.ResumeTiming();

    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; w++) {
      workers.emplace_back([&q, &processed, w] {
        while (auto c = q.pop(w % 2)) {
          // Simulated service: the hot key holds its "PG" longer.
          volatile std::uint64_t spin = c->key == 1 ? 2000 : 200;
          while (spin-- > 0) {
          }
          processed.fetch_add(1, std::memory_order_relaxed);
          q.complete(c->key);
        }
      });
    }
    for (std::uint64_t i = 0; i < total; i++) {
      q.submit(i % kHotEvery == 0 ? 1 : 100 + (i % 61), int(i));
    }
    while (processed.load(std::memory_order_relaxed) < total) {
      std::this_thread::yield();
    }
    q.close();
    for (auto& w : workers) w.join();
    state.SetItemsProcessed(state.items_processed() + int64_t(total));
  }
}
void BM_OpQueue_CommunityHol(benchmark::State& s) { bench_opqueue(s, false); }
void BM_OpQueue_PendingQueue(benchmark::State& s) { bench_opqueue(s, true); }
BENCHMARK(BM_OpQueue_CommunityHol)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OpQueue_PendingQueue)->Unit(benchmark::kMillisecond);

// --- logger: blocking vs non-blocking vs log-cache -------------------------
void bench_logger(benchmark::State& state, bool nonblocking, bool cache) {
  AsyncLogger::Config cfg;
  cfg.nonblocking = nonblocking;
  cfg.use_log_cache = cache;
  cfg.writer_threads = nonblocking ? 2 : 1;
  cfg.queue_capacity = nonblocking ? (1 << 15) : 64;
  AsyncLogger log(cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    log.log("osd op_wq dispatch pg", i++);
  }
  state.SetItemsProcessed(int64_t(i));
  state.counters["dropped"] = double(log.dropped());
}
void BM_Logger_Blocking(benchmark::State& s) { bench_logger(s, false, false); }
void BM_Logger_NonBlocking(benchmark::State& s) { bench_logger(s, true, false); }
void BM_Logger_NonBlockingCached(benchmark::State& s) { bench_logger(s, true, true); }
BENCHMARK(BM_Logger_Blocking);
BENCHMARK(BM_Logger_NonBlocking);
BENCHMARK(BM_Logger_NonBlockingCached);

// --- throttle ---------------------------------------------------------------
void BM_Throttle_AcquireRelease(benchmark::State& state) {
  Throttle t(64);
  for (auto _ : state) {
    t.acquire(1);
    t.release(1);
  }
}
BENCHMARK(BM_Throttle_AcquireRelease);

// --- completion batcher ------------------------------------------------------
void BM_CompletionBatcher_Submit(benchmark::State& state) {
  std::atomic<std::uint64_t> handled{0};
  CompletionBatcher b([&](std::uint64_t, const std::vector<std::uint64_t>& v) {
    handled.fetch_add(v.size(), std::memory_order_relaxed);
  });
  std::uint64_t i = 0;
  for (auto _ : state) {
    while (!b.submit(i % 128, i)) std::this_thread::yield();
    i++;
  }
  state.SetItemsProcessed(int64_t(i));
  b.shutdown();
  state.counters["max_batch"] = double(b.max_batch());
}
BENCHMARK(BM_CompletionBatcher_Submit);

// --- raw queues ---------------------------------------------------------------
void BM_MpmcQueue_PingPong(benchmark::State& state) {
  MpmcQueue<std::uint64_t> q(1024);
  std::thread consumer([&q] {
    while (q.pop().has_value()) {
    }
  });
  std::uint64_t i = 0;
  for (auto _ : state) q.push(i++);
  q.close();
  consumer.join();
  state.SetItemsProcessed(int64_t(i));
}
BENCHMARK(BM_MpmcQueue_PingPong);

void BM_SpscRing_PingPong(benchmark::State& state) {
  SpscRing<std::uint64_t> r(1024);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      while (r.try_pop().has_value()) {
      }
    }
    while (r.try_pop().has_value()) {
    }
  });
  std::uint64_t i = 0;
  for (auto _ : state) {
    while (!r.try_push(i)) {
    }
    i++;
  }
  stop = true;
  consumer.join();
  state.SetItemsProcessed(int64_t(i));
}
BENCHMARK(BM_SpscRing_PingPong);

// --- allocator: thread-caching arena vs global new/delete -------------------
// The paper's §3.2: small-random workloads hammer the allocator; a
// thread-caching design (jemalloc-style) beats the global heap under
// concurrent small allocations.
void BM_Alloc_GlobalNew(benchmark::State& state) {
  std::vector<void*> live(64, nullptr);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t sz = 16 + (i * 37) % 480;
    void*& slot = live[i % live.size()];
    if (slot != nullptr) ::operator delete(slot);
    slot = ::operator new(sz);
    benchmark::DoNotOptimize(slot);
    i++;
  }
  for (void* p : live) {
    if (p != nullptr) ::operator delete(p);
  }
  state.SetItemsProcessed(int64_t(i));
}
BENCHMARK(BM_Alloc_GlobalNew)->Threads(1)->Threads(4);

void BM_Alloc_Arena(benchmark::State& state) {
  static Arena arena;  // shared across benchmark threads
  std::vector<std::pair<void*, std::size_t>> live(64, {nullptr, 0});
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t sz = 16 + (i * 37) % 480;
    auto& slot = live[i % live.size()];
    if (slot.first != nullptr) arena.deallocate(slot.first, slot.second);
    slot = {arena.allocate(sz), sz};
    benchmark::DoNotOptimize(slot.first);
    i++;
  }
  for (auto [p, sz] : live) {
    if (p != nullptr) arena.deallocate(p, sz);
  }
  state.SetItemsProcessed(int64_t(i));
}
BENCHMARK(BM_Alloc_Arena)->Threads(1)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
