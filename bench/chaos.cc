// Chaos soak: drive a write-heavy workload through a small cluster while a
// seeded FaultPlan crashes/restarts OSDs, slows SSDs, drops/delays/partitions
// links and stalls journals — then assert the recovery invariants:
//
//   1. exactly-once resolution: every op a client began resolved exactly
//      once (acked ok or failed), and no client has a dangling pending op
//      after the simulation drains;
//   2. durability floor: no write was acked with fewer than min_size
//      durable replicas (osd.acks_below_min_size == 0 on every OSD);
//   3. determinism: the same seed + plan produces an identical run digest
//      (event count, per-VM accounting, per-OSD counters) twice in a row;
//   4. zero-impact: installing an *empty* plan changes nothing — the run
//      digest equals a run with no injector at all.
//
// Exit status is non-zero if any invariant fails, so scripts/check.sh (and
// its ASan+UBSan leg) can gate on it.

#include <cstdio>
#include <string>
#include <vector>

#include "afceph.h"

using namespace afc;

namespace {

core::ClusterConfig chaos_config() {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = 4;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 2;
  cfg.vms = 4;
  cfg.pg_num = 64;
  cfg.replication = 2;
  cfg.min_size = 1;                         // degraded acks allowed at 1 copy
  cfg.sustained = false;                    // small run; keep devices fast
  cfg.image_size = 1 * kGiB;
  cfg.osd.rep_timeout = 40 * kMillisecond;  // replication watchdog on
  cfg.osd.rep_retries = 2;
  cfg.client_op_timeout = 250 * kMillisecond;  // client retry/resubmit on
  cfg.client_op_retries = 4;
  return cfg;
}

struct RunDigest {
  std::uint64_t events = 0;
  std::uint64_t begun = 0;
  std::uint64_t resolved = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t pending = 0;
  std::uint64_t below_min = 0;
  std::uint64_t degraded = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t rep_retry_rounds = 0;
  std::uint64_t dup_rep_replies = 0;
  std::uint64_t osd_writes = 0;
  std::uint64_t hash = 0;

  bool operator==(const RunDigest&) const = default;
};

/// One soak run: build a fresh cluster, arm `plan` (skipped when
/// `install == false`), run the workload, then drain the simulation so every
/// in-flight op, retry and backoff resolves.
RunDigest run_once(std::uint64_t seed, const fault::FaultPlan& plan, bool install) {
  core::ClusterConfig cfg = chaos_config();
  cfg.seed = seed;
  core::ClusterSim cluster(cfg);
  if (install) cluster.install_faults(plan);

  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.warmup = 100 * kMillisecond;
  spec.runtime = 900 * kMillisecond;
  // Drive the VMs directly instead of via ClusterSim::run(): the sink must
  // outlive the post-deadline drain (io_loops record their final op while
  // the simulation finishes timeouts, retries and backfills).
  client::RunStats stats;
  stats.window_start = spec.warmup;
  stats.window_end = spec.warmup + spec.runtime;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(spec, stats.window_end, &stats);
  }
  cluster.simulation().run_until(stats.window_end);
  cluster.simulation().run();  // drain: timeouts, retries, backfills

  RunDigest d;
  d.events = cluster.simulation().executed_events();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the counters
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    auto& vm = cluster.vm(v);
    d.begun += vm.ops_begun();
    d.resolved += vm.ops_resolved();
    d.failed += vm.ops_failed();
    d.retries += vm.op_retries();
    d.pending += vm.pending_size();
    mix(vm.ops_begun());
    mix(vm.ops_resolved());
    mix(vm.issued());
    mix(vm.completed());
  }
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    auto& osd = cluster.osd(o);
    d.below_min += osd.counters().get("osd.acks_below_min_size");
    d.degraded += osd.counters().get("osd.acks_degraded");
    d.write_failures += osd.counters().get("osd.write_failures");
    d.rep_retry_rounds += osd.counters().get("osd.rep_retry_rounds");
    d.dup_rep_replies += osd.counters().get("osd.dup_rep_replies");
    d.osd_writes += osd.client_writes();
    mix(osd.client_writes());
    mix(osd.replica_ops());
    for (const auto& [name, value] : osd.counters().all()) {
      for (char c : name) mix(std::uint64_t(std::uint8_t(c)));
      mix(value);
    }
  }
  mix(d.events);
  d.hash = h;

  // Unpark the worker coroutines so nothing is left allocated at exit
  // (keeps the LeakSanitizer leg of scripts/check.sh clean).
  cluster.close_all();
  cluster.simulation().run();
  return d;
}

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("  FAIL: %s\n", what.c_str());
    g_failures++;
  }
}

void check_invariants(const char* label, const RunDigest& d) {
  expect(d.pending == 0, std::string(label) + ": pending ops after drain");
  expect(d.begun == d.resolved, std::string(label) + ": ops begun != ops resolved");
  expect(d.below_min == 0, std::string(label) + ": write acked below min_size");
  expect(d.begun > 0, std::string(label) + ": no ops ran");
}

}  // namespace

int main() {
  std::printf("chaos soak: 4 OSDs rep=2 min_size=1, 4 VMs 4K random write, "
              "rep_timeout=40ms client_timeout=250ms\n\n");

  // --- zero-impact: empty plan == no injector at all ----------------------
  {
    const RunDigest bare = run_once(42, fault::FaultPlan{}, /*install=*/false);
    const RunDigest empty = run_once(42, fault::FaultPlan{}, /*install=*/true);
    std::printf("[empty plan] events=%llu begun=%llu  (bare events=%llu)\n",
                (unsigned long long)empty.events, (unsigned long long)empty.begun,
                (unsigned long long)bare.events);
    expect(bare == empty, "empty FaultPlan must not perturb the run");
    check_invariants("empty", empty);
  }

  // --- a directed plan hitting every fault kind ---------------------------
  {
    fault::FaultPlan plan;
    plan.crash_restart(300 * kMillisecond, 1, 200 * kMillisecond);
    plan.ssd_slow(250 * kMillisecond, 2, 8.0, 300 * kMillisecond);
    plan.link_drop(200 * kMillisecond, 0, 3, 0.3, 400 * kMillisecond);
    plan.link_delay(350 * kMillisecond, 2, 3, 900 * kMicrosecond, 250 * kMillisecond);
    plan.link_partition(500 * kMillisecond, 3, fault::kAllPeers, 150 * kMillisecond);
    plan.journal_stall(450 * kMillisecond, 0, 60 * kMillisecond);
    std::printf("\n[directed plan]\n%s", plan.describe().c_str());
    const RunDigest a = run_once(42, plan, true);
    const RunDigest b = run_once(42, plan, true);
    std::printf("  events=%llu begun=%llu failed=%llu retries=%llu degraded=%llu "
                "rep_retry_rounds=%llu dups=%llu\n",
                (unsigned long long)a.events, (unsigned long long)a.begun,
                (unsigned long long)a.failed, (unsigned long long)a.retries,
                (unsigned long long)a.degraded, (unsigned long long)a.rep_retry_rounds,
                (unsigned long long)a.dup_rep_replies);
    check_invariants("directed", a);
    expect(a == b, "directed plan: same seed must reproduce byte-identical digests");
  }

  // --- randomized plans, each run twice for determinism -------------------
  for (std::uint64_t seed = 1; seed <= 5; seed++) {
    fault::FaultPlan plan = fault::FaultPlan::random(seed, 150 * kMillisecond,
                                                     1000 * kMillisecond, 6, 4);
    std::printf("\n[random plan seed=%llu]\n%s", (unsigned long long)seed,
                plan.describe().c_str());
    const RunDigest a = run_once(1000 + seed, plan, true);
    const RunDigest b = run_once(1000 + seed, plan, true);
    std::printf("  events=%llu begun=%llu failed=%llu retries=%llu degraded=%llu\n",
                (unsigned long long)a.events, (unsigned long long)a.begun,
                (unsigned long long)a.failed, (unsigned long long)a.retries,
                (unsigned long long)a.degraded);
    check_invariants(("seed " + std::to_string(seed)).c_str(), a);
    expect(a == b, "random plan seed " + std::to_string(seed) +
                       ": same seed must reproduce byte-identical digests");
  }

  std::printf("\nchaos soak: %s (%d invariant failures)\n",
              g_failures == 0 ? "PASS" : "FAIL", g_failures);
  return g_failures == 0 ? 0 : 1;
}
