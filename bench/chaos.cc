// Chaos soak: drive a write-heavy workload through a small cluster while a
// seeded FaultPlan crashes/restarts OSDs, slows SSDs, drops/delays/partitions
// links and stalls journals — then assert the recovery invariants:
//
//   1. exactly-once resolution: every op a client began resolved exactly
//      once (acked ok or failed), and no client has a dangling pending op
//      after the simulation drains;
//   2. durability floor: no write was acked with fewer than min_size
//      durable replicas (osd.acks_below_min_size == 0 on every OSD);
//   3. determinism: the same seed + plan produces an identical run digest
//      (event count, per-VM accounting, per-OSD counters) twice in a row;
//   4. zero-impact: installing an *empty* plan changes nothing — the run
//      digest equals a run with no injector at all.
//
// Exit status is non-zero if any invariant fails, so scripts/check.sh (and
// its ASan+UBSan leg) can gate on it.

#include <cstdio>
#include <string>
#include <vector>

#include "afceph.h"

using namespace afc;

namespace {

core::ClusterConfig chaos_config() {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = 4;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 2;
  cfg.vms = 4;
  cfg.pg_num = 64;
  cfg.replication = 2;
  cfg.min_size = 1;                         // degraded acks allowed at 1 copy
  cfg.sustained = false;                    // small run; keep devices fast
  cfg.image_size = 1 * kGiB;
  cfg.osd.rep_timeout = 40 * kMillisecond;  // replication watchdog on
  cfg.osd.rep_retries = 2;
  cfg.client_op_timeout = 250 * kMillisecond;  // client retry/resubmit on
  cfg.client_op_retries = 4;
  return cfg;
}

struct RunDigest {
  std::uint64_t events = 0;
  std::uint64_t begun = 0;
  std::uint64_t resolved = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t pending = 0;
  std::uint64_t below_min = 0;
  std::uint64_t degraded = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t rep_retry_rounds = 0;
  std::uint64_t dup_rep_replies = 0;
  std::uint64_t osd_writes = 0;
  std::uint64_t hash = 0;

  bool operator==(const RunDigest&) const = default;
};

/// Drive the chaos workload to completion: VMs started directly instead of
/// via ClusterSim::run() — the sink must outlive the post-deadline drain
/// (io_loops record their final op while the simulation finishes timeouts,
/// retries and backfills).
void drive_workload(core::ClusterSim& cluster, client::RunStats& stats,
                    double write_fraction = 1.0) {
  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.write_fraction = write_fraction;
  spec.warmup = 100 * kMillisecond;
  spec.runtime = 900 * kMillisecond;
  stats.window_start = spec.warmup;
  stats.window_end = spec.warmup + spec.runtime;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(spec, stats.window_end, &stats);
  }
  cluster.simulation().run_until(stats.window_end);
  cluster.simulation().run();  // drain: timeouts, retries, backfills
}

RunDigest collect_digest(core::ClusterSim& cluster) {
  RunDigest d;
  d.events = cluster.simulation().executed_events();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the counters
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    auto& vm = cluster.vm(v);
    d.begun += vm.ops_begun();
    d.resolved += vm.ops_resolved();
    d.failed += vm.ops_failed();
    d.retries += vm.op_retries();
    d.pending += vm.pending_size();
    mix(vm.ops_begun());
    mix(vm.ops_resolved());
    mix(vm.issued());
    mix(vm.completed());
  }
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    auto& osd = cluster.osd(o);
    d.below_min += osd.counters().get("osd.acks_below_min_size");
    d.degraded += osd.counters().get("osd.acks_degraded");
    d.write_failures += osd.counters().get("osd.write_failures");
    d.rep_retry_rounds += osd.counters().get("osd.rep_retry_rounds");
    d.dup_rep_replies += osd.counters().get("osd.dup_rep_replies");
    d.osd_writes += osd.client_writes();
    mix(osd.client_writes());
    mix(osd.replica_ops());
    for (const auto& [name, value] : osd.counters().all()) {
      for (char c : name) mix(std::uint64_t(std::uint8_t(c)));
      mix(value);
    }
  }
  mix(d.events);
  d.hash = h;
  return d;
}

/// One soak run: build a fresh cluster, arm `plan` (skipped when
/// `install == false`), run the workload, then drain the simulation so every
/// in-flight op, retry and backoff resolves.
RunDigest run_once(std::uint64_t seed, const fault::FaultPlan& plan, bool install) {
  core::ClusterConfig cfg = chaos_config();
  cfg.seed = seed;
  core::ClusterSim cluster(cfg);
  if (install) cluster.install_faults(plan);

  client::RunStats stats;
  drive_workload(cluster, stats);
  RunDigest d = collect_digest(cluster);

  // Unpark the worker coroutines so nothing is left allocated at exit
  // (keeps the LeakSanitizer leg of scripts/check.sh clean).
  cluster.close_all();
  cluster.simulation().run();
  return d;
}

/// The corruption leg's observables, compared across two runs for
/// determinism on top of the per-run invariants.
struct CorruptionDigest {
  RunDigest run;
  std::uint64_t deferred_writes = 0;  // FlashStore: payloads that rode the WAL
  std::uint64_t torn_entries = 0;     // injector: entries lost or torn
  std::uint64_t replayed = 0;         // records re-applied from local rings
  std::uint64_t torn_tails = 0;       // replay scans stopped at a torn record
  std::uint64_t crc_failures = 0;     // replay scans stopped at a flipped record
  std::uint64_t backfill_skipped = 0; // objects replay made backfill skip
  std::uint64_t detect_inconsistent = 0;
  std::uint64_t repaired = 0;
  std::uint64_t verify_inconsistent = 0;
  std::uint64_t verify_missing = 0;
  bool scrub_done = false;

  bool operator==(const CorruptionDigest&) const = default;
};

/// Corruption soak: tear osd 1's journal mid-stall (replay on restart),
/// tear osd 2's and flip a retained record while it is down (replay stops
/// at the bad CRC), then flip data extents on osds 2 and 3 after the drain
/// and let deep scrub find and repair them.
CorruptionDigest run_corruption(std::uint64_t seed,
                                store::Backend backend = store::Backend::kFile) {
  core::ClusterConfig cfg = chaos_config();
  cfg.seed = seed;
  cfg.store_backend = backend;
  core::ClusterSim cluster(cfg);

  fault::FaultPlan plan;
  // Incident A: stall builds a journal backlog on osd 1, the tear kills the
  // daemon mid-persist, restart replays the surviving prefix.
  plan.journal_stall(300 * kMillisecond, 1, 60 * kMillisecond);
  plan.torn_write(330 * kMillisecond, 1);
  plan.restart(450 * kMillisecond, 1);
  // Incident B: same tear on osd 2, plus a bit flip in a retained record
  // while the daemon is down — replay must stop at the bad CRC.
  plan.journal_stall(600 * kMillisecond, 2, 60 * kMillisecond);
  plan.torn_write(630 * kMillisecond, 2);
  plan.bit_flip_journal(700 * kMillisecond, 2);
  plan.restart(750 * kMillisecond, 2);
  // Incident C: silent data corruption, injected after every op has
  // resolved (the events fire during the drain) so nothing overwrites it
  // before the scrub runs.
  plan.bit_flip_data(2 * kSecond, 2);
  plan.bit_flip_data(2 * kSecond, 3);
  fault::FaultInjector& inj = cluster.install_faults(plan);

  client::RunStats stats;
  drive_workload(cluster, stats);

  CorruptionDigest c;
  c.run = collect_digest(cluster);
  c.torn_entries = inj.counters().get("fault.torn_entries");
  core::RunResult rr;
  cluster.collect_osd_stats(rr);
  c.replayed = rr.journal_records_replayed;
  c.torn_tails = rr.journal_torn_tails;
  c.crc_failures = rr.journal_crc_failures;
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    c.backfill_skipped += cluster.osd(o).counters().get("osd.backfill_skipped");
    c.deferred_writes += cluster.osd(o).counters().get("flash.deferred_writes");
  }

  sim::spawn_fn([&cluster, &c]() -> sim::CoTask<void> {
    auto detect = co_await cluster.deep_scrub(/*repair=*/false);
    c.detect_inconsistent = detect.inconsistent;
    auto repair = co_await cluster.deep_scrub(/*repair=*/true);
    c.repaired = repair.repaired;
    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    c.verify_inconsistent = verify.inconsistent;
    c.verify_missing = verify.missing;
    c.scrub_done = true;
  });
  cluster.simulation().run();

  cluster.close_all();
  cluster.simulation().run();
  return c;
}

/// The EC leg's observables: run invariants plus the reconstruction,
/// rebuild and scrub-convergence evidence, compared across two runs.
struct EcDigest {
  RunDigest run;
  std::uint64_t reconstruct_reads = 0;
  std::uint64_t shards_rebuilt = 0;
  std::uint64_t parity_mismatch = 0;
  std::uint64_t detect_inconsistent = 0;
  std::uint64_t repaired = 0;
  std::uint64_t verify_inconsistent = 0;
  std::uint64_t verify_missing = 0;
  bool scrub_done = false;

  bool operator==(const EcDigest&) const = default;
};

/// EC(4+2) soak: 8 OSDs, 6-wide stripes, mixed 70/30 write/read traffic.
/// The plan walks the whole EC fault surface in disjoint windows: a crash
/// mid-stripe (journal replay + rebuild-by-decode on return), a torn shard
/// write, a partition making m=2 OSDs unreachable (degraded reads decode
/// around them; writes ride the shard watchdog), an overlapping two-shard
/// loss (reads still served from exactly k survivors), and a parity-shard
/// bit flip after the drain for the scrub to find.
EcDigest run_ec(std::uint64_t seed) {
  core::ClusterConfig cfg = chaos_config();
  cfg.osd_nodes = 8;
  cfg.pg_num = 64;
  cfg.ec_pool = true;
  cfg.ec_k = 4;
  cfg.ec_m = 2;
  cfg.min_size = 0;              // EC default floor: k+1 durable shards
  cfg.image_size = 32 * kMiB;    // small images: reads re-hit written blocks
  cfg.seed = seed;
  core::ClusterSim cluster(cfg);

  fault::FaultPlan plan;
  plan.crash_restart(300 * kMillisecond, 1, 150 * kMillisecond);
  plan.torn_write(500 * kMillisecond, 3);
  plan.restart(650 * kMillisecond, 3);
  plan.link_partition(700 * kMillisecond, 4, fault::kAllPeers, 120 * kMillisecond);
  plan.link_partition(700 * kMillisecond, 5, fault::kAllPeers, 120 * kMillisecond);
  plan.crash_restart(950 * kMillisecond, 6, 120 * kMillisecond);
  plan.crash_restart(950 * kMillisecond, 7, 120 * kMillisecond);
  plan.bit_flip_parity(2 * kSecond, 2);
  cluster.install_faults(plan);

  client::RunStats stats;
  drive_workload(cluster, stats, /*write_fraction=*/0.7);

  EcDigest e;
  e.run = collect_digest(cluster);
  core::RunResult rr;
  cluster.collect_osd_stats(rr);
  e.reconstruct_reads = rr.ec_reconstruct_reads;
  e.shards_rebuilt = rr.ec_shards_rebuilt;

  sim::spawn_fn([&cluster, &e]() -> sim::CoTask<void> {
    auto detect = co_await cluster.deep_scrub(/*repair=*/false);
    e.detect_inconsistent = detect.inconsistent;
    auto repair = co_await cluster.deep_scrub(/*repair=*/true);
    e.repaired = repair.repaired;
    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    e.verify_inconsistent = verify.inconsistent;
    e.verify_missing = verify.missing;
    e.scrub_done = true;
  });
  cluster.simulation().run();

  core::RunResult after;
  cluster.collect_osd_stats(after);
  e.parity_mismatch = after.ec_parity_mismatch;

  cluster.close_all();
  cluster.simulation().run();
  return e;
}

/// The membership leg's observables: the base run invariants plus the
/// heartbeat / monitor / fencing evidence, compared across two runs.
struct MembershipDigest {
  RunDigest run;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> markdown_events;  // (osd, at)
  std::vector<std::pair<std::uint32_t, std::uint64_t>> markup_events;
  std::uint64_t markouts = 0;
  std::uint64_t false_downs = 0;
  std::uint64_t map_deltas = 0;
  std::uint64_t failure_reports = 0;
  std::uint64_t laggy_flags = 0;
  std::uint64_t hb_sent = 0;
  std::uint64_t hb_timeouts = 0;
  std::uint64_t fenced_ops = 0;       // stale client ops rejected at OSDs
  std::uint64_t fenced_rep_ops = 0;   // stale rep-ops rejected at replicas
  std::uint64_t fenced_replies = 0;   // fence rejections clients saw
  std::uint64_t client_map_updates = 0;
  std::uint64_t rep_unresolved = 0;   // degraded-ack gating: silent peer -> fail
  std::uint64_t verify_failures = 0;

  bool operator==(const MembershipDigest&) const = default;
};

/// One detected-mode soak run. The heartbeat/beacon timers re-arm forever,
/// so the post-deadline drain is a fixed window (run_until) instead of
/// running the event queue dry; close_all() then cancels the periodic plane
/// and the residue drains to empty.
template <typename Mutate>
MembershipDigest run_membership(std::uint64_t seed, const fault::FaultPlan& plan,
                                double write_fraction, bool verify, Mutate mutate) {
  core::ClusterConfig cfg = chaos_config();
  cfg.seed = seed;
  cfg.membership.mode = mon::MembershipMode::kDetected;
  mutate(cfg);
  core::ClusterSim cluster(cfg);
  if (!plan.empty()) cluster.install_faults(plan);

  client::RunStats stats;
  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.write_fraction = write_fraction;
  spec.verify = verify;
  spec.warmup = 100 * kMillisecond;
  spec.runtime = 900 * kMillisecond;
  stats.window_start = spec.warmup;
  stats.window_end = spec.warmup + spec.runtime;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(spec, stats.window_end, &stats);
  }
  cluster.simulation().run_until(stats.window_end);
  cluster.simulation().run_until(stats.window_end + 2 * kSecond);  // drain window

  MembershipDigest m;
  m.run = collect_digest(cluster);
  m.verify_failures = stats.verify_failures;
  const mon::Monitor& mon = *cluster.monitor();
  for (const auto& e : mon.markdowns()) m.markdown_events.emplace_back(e.osd, e.at);
  for (const auto& e : mon.markups()) m.markup_events.emplace_back(e.osd, e.at);
  m.markouts = mon.counters().get("mon.markouts");
  m.false_downs = mon.counters().get("mon.false_downs");
  m.map_deltas = mon.counters().get("mon.map_deltas");
  m.failure_reports = mon.counters().get("mon.failure_reports");
  m.laggy_flags = mon.counters().get("mon.laggy_flags");
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    const auto& c = cluster.osd(o).counters();
    m.hb_sent += c.get("osd.hb_sent");
    m.hb_timeouts += c.get("osd.hb_timeouts");
    m.fenced_ops += c.get("osd.fenced_ops");
    m.fenced_rep_ops += c.get("osd.fenced_rep_ops");
    m.rep_unresolved += c.get("osd.rep_unresolved_failures");
  }
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    m.fenced_replies += cluster.vm(v).fenced_replies();
    m.client_map_updates += cluster.vm(v).map_updates();
  }

  cluster.close_all();
  cluster.simulation().run();
  return m;
}

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("  FAIL: %s\n", what.c_str());
    g_failures++;
  }
}

void check_invariants(const char* label, const RunDigest& d) {
  expect(d.pending == 0, std::string(label) + ": pending ops after drain");
  expect(d.begun == d.resolved, std::string(label) + ": ops begun != ops resolved");
  expect(d.below_min == 0, std::string(label) + ": write acked below min_size");
  expect(d.begun > 0, std::string(label) + ": no ops ran");
}

}  // namespace

int main(int argc, char** argv) {
  // `--leg=<empty|directed|random|corruption|store|ec|membership>` runs one
  // leg (scripts/check.sh uses this to give the sanitizer build separate,
  // faster invocations); no argument runs them all.
  std::string leg;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--leg=", 0) == 0) leg = arg.substr(6);
  }
  // Fail fast on a leg name that matches nothing: a typo in a CI
  // invocation must not become a silently-passing no-op run.
  int legs_run = 0;
  const auto runs = [&leg, &legs_run](const char* name) {
    const bool r = leg.empty() || leg == name;
    if (r) legs_run++;
    return r;
  };

  std::printf("chaos soak: 4 OSDs rep=2 min_size=1, 4 VMs 4K random write, "
              "rep_timeout=40ms client_timeout=250ms\n\n");

  // --- zero-impact: empty plan == no injector at all ----------------------
  if (runs("empty")) {
    const RunDigest bare = run_once(42, fault::FaultPlan{}, /*install=*/false);
    const RunDigest empty = run_once(42, fault::FaultPlan{}, /*install=*/true);
    std::printf("[empty plan] events=%llu begun=%llu  (bare events=%llu)\n",
                (unsigned long long)empty.events, (unsigned long long)empty.begun,
                (unsigned long long)bare.events);
    expect(bare == empty, "empty FaultPlan must not perturb the run");
    check_invariants("empty", empty);
  }

  // --- a directed plan hitting every fault kind ---------------------------
  if (runs("directed")) {
    fault::FaultPlan plan;
    plan.crash_restart(300 * kMillisecond, 1, 200 * kMillisecond);
    plan.ssd_slow(250 * kMillisecond, 2, 8.0, 300 * kMillisecond);
    plan.link_drop(200 * kMillisecond, 0, 3, 0.3, 400 * kMillisecond);
    plan.link_delay(350 * kMillisecond, 2, 3, 900 * kMicrosecond, 250 * kMillisecond);
    plan.link_partition(500 * kMillisecond, 3, fault::kAllPeers, 150 * kMillisecond);
    plan.journal_stall(450 * kMillisecond, 0, 60 * kMillisecond);
    std::printf("\n[directed plan]\n%s", plan.describe().c_str());
    const RunDigest a = run_once(42, plan, true);
    const RunDigest b = run_once(42, plan, true);
    std::printf("  events=%llu begun=%llu failed=%llu retries=%llu degraded=%llu "
                "rep_retry_rounds=%llu dups=%llu\n",
                (unsigned long long)a.events, (unsigned long long)a.begun,
                (unsigned long long)a.failed, (unsigned long long)a.retries,
                (unsigned long long)a.degraded, (unsigned long long)a.rep_retry_rounds,
                (unsigned long long)a.dup_rep_replies);
    check_invariants("directed", a);
    expect(a == b, "directed plan: same seed must reproduce byte-identical digests");
  }

  // --- corruption: torn journals, flipped records, flipped extents --------
  if (runs("corruption")) {
    std::printf("\n[corruption plan]\n");
    const CorruptionDigest a = run_corruption(42);
    const CorruptionDigest b = run_corruption(42);
    std::printf("  torn_entries=%llu replayed=%llu torn_tails=%llu crc_failures=%llu "
                "backfill_skipped=%llu\n"
                "  scrub: inconsistent=%llu repaired=%llu after-repair inconsistent=%llu "
                "missing=%llu\n",
                (unsigned long long)a.torn_entries, (unsigned long long)a.replayed,
                (unsigned long long)a.torn_tails, (unsigned long long)a.crc_failures,
                (unsigned long long)a.backfill_skipped,
                (unsigned long long)a.detect_inconsistent, (unsigned long long)a.repaired,
                (unsigned long long)a.verify_inconsistent,
                (unsigned long long)a.verify_missing);
    check_invariants("corruption", a.run);
    // Replay: both tears found queued batches; restarts re-applied the
    // surviving prefixes from the local rings, so backfill skipped objects
    // replay had already recovered (it covered strictly less).
    expect(a.torn_entries > 0, "corruption: tears must hit queued journal entries");
    expect(a.replayed > 0, "corruption: restart must replay locally durable records");
    expect(a.torn_tails > 0, "corruption: replay must stop at a torn tail");
    expect(a.crc_failures > 0, "corruption: replay must stop at the flipped record");
    expect(a.backfill_skipped > 0,
           "corruption: replay must let backfill skip recovered objects");
    // Scrub: the flipped extents are detected, repaired from healthy peers,
    // and a re-scrub comes back clean.
    expect(a.scrub_done, "corruption: scrub pass did not finish");
    expect(a.detect_inconsistent >= 2, "corruption: scrub must detect both bit flips");
    expect(a.repaired >= a.detect_inconsistent,
           "corruption: repair must cover every inconsistency");
    expect(a.verify_inconsistent == 0 && a.verify_missing == 0,
           "corruption: re-scrub after repair must be clean");
    expect(a == b, "corruption plan: same seed must reproduce byte-identical digests");
  }

  // --- FlashStore backend under the same corruption stack -----------------
  if (runs("store")) {
    std::printf("\n[store plan] FlashStore backend: torn WAL, flipped record, data flips\n");
    const CorruptionDigest a = run_corruption(42, store::Backend::kFlash);
    const CorruptionDigest b = run_corruption(42, store::Backend::kFlash);
    std::printf("  deferred_writes=%llu torn_entries=%llu replayed=%llu torn_tails=%llu "
                "crc_failures=%llu\n"
                "  scrub: inconsistent=%llu repaired=%llu after-repair inconsistent=%llu "
                "missing=%llu\n",
                (unsigned long long)a.deferred_writes, (unsigned long long)a.torn_entries,
                (unsigned long long)a.replayed, (unsigned long long)a.torn_tails,
                (unsigned long long)a.crc_failures,
                (unsigned long long)a.detect_inconsistent, (unsigned long long)a.repaired,
                (unsigned long long)a.verify_inconsistent,
                (unsigned long long)a.verify_missing);
    // Replicated invariants hold on the raw-device backend: exactly-once
    // ack-or-fail, nothing pending, no ack below min_size.
    check_invariants("store", a.run);
    // The 4K writes ride the deferred-write WAL, the tears hit that ring,
    // and restart replays the surviving records through apply_transaction.
    expect(a.deferred_writes > 0, "store: 4K writes must ride the deferred-write WAL");
    expect(a.torn_entries > 0, "store: tears must hit queued WAL entries");
    expect(a.replayed > 0, "store: restart must replay locally durable WAL records");
    expect(a.torn_tails > 0, "store: replay must stop at a torn tail");
    expect(a.crc_failures > 0, "store: replay must stop at the flipped record");
    // Scrub convergence: detect the flipped extents, repair from healthy
    // peers, and come back clean.
    expect(a.scrub_done, "store: scrub pass did not finish");
    expect(a.detect_inconsistent >= 2, "store: scrub must detect both bit flips");
    expect(a.repaired >= a.detect_inconsistent,
           "store: repair must cover every inconsistency");
    expect(a.verify_inconsistent == 0 && a.verify_missing == 0,
           "store: re-scrub after repair must be clean");
    expect(a == b, "store plan: same seed must reproduce byte-identical digests");
  }

  // --- erasure-coded pool under the full fault stack ----------------------
  if (runs("ec")) {
    std::printf("\n[ec plan] 8 OSDs EC(4+2), 70/30 write/read\n");
    const EcDigest a = run_ec(42);
    const EcDigest b = run_ec(42);
    std::printf("  events=%llu begun=%llu failed=%llu retries=%llu\n"
                "  reconstruct_reads=%llu shards_rebuilt=%llu parity_mismatch=%llu\n"
                "  scrub: inconsistent=%llu repaired=%llu after-repair inconsistent=%llu "
                "missing=%llu\n",
                (unsigned long long)a.run.events, (unsigned long long)a.run.begun,
                (unsigned long long)a.run.failed, (unsigned long long)a.run.retries,
                (unsigned long long)a.reconstruct_reads, (unsigned long long)a.shards_rebuilt,
                (unsigned long long)a.parity_mismatch,
                (unsigned long long)a.detect_inconsistent, (unsigned long long)a.repaired,
                (unsigned long long)a.verify_inconsistent,
                (unsigned long long)a.verify_missing);
    // The replicated invariants hold verbatim: exactly-once ack-or-fail,
    // nothing pending after the drain, and no ack ever went out with fewer
    // than the floor of k+1 durable shards.
    check_invariants("ec", a.run);
    // Degraded reads decoded around missing shards, and every shard lost to
    // a crash window was rebuilt by decode-from-peers.
    expect(a.reconstruct_reads > 0, "ec: no degraded read was reconstructed");
    expect(a.shards_rebuilt > 0, "ec: no shard was rebuilt by decode");
    // The parity flip (and any torn stripe) is detected, repaired by
    // reconstruction, and a re-scrub converges to zero findings.
    expect(a.scrub_done, "ec: scrub pass did not finish");
    expect(a.detect_inconsistent > 0, "ec: scrub must detect the parity flip");
    expect(a.repaired > 0, "ec: scrub repair must reconstruct bad shards");
    expect(a.verify_inconsistent == 0 && a.verify_missing == 0,
           "ec: re-scrub after repair must be clean");
    expect(a == b, "ec plan: same seed must reproduce byte-identical digests");
  }

  // --- detected-mode membership: heartbeats, monitor, epoch fencing -------
  if (runs("membership")) {
    const auto no_mutate = [](core::ClusterConfig&) {};
    const std::uint64_t hb_interval = 20 * kMillisecond;
    const std::uint64_t hb_grace = 100 * kMillisecond;

    // (a) fault-free: heartbeats flow, nobody is ever suspected or marked
    // down, and the run is deterministic.
    std::printf("\n[membership healthy] detected mode, no faults\n");
    const MembershipDigest h1 = run_membership(42, fault::FaultPlan{}, 1.0, false, no_mutate);
    const MembershipDigest h2 = run_membership(42, fault::FaultPlan{}, 1.0, false, no_mutate);
    std::printf("  hb_sent=%llu timeouts=%llu markdowns=%zu false_downs=%llu deltas=%llu\n",
                (unsigned long long)h1.hb_sent, (unsigned long long)h1.hb_timeouts,
                h1.markdown_events.size(), (unsigned long long)h1.false_downs,
                (unsigned long long)h1.map_deltas);
    check_invariants("membership healthy", h1.run);
    expect(h1.hb_sent > 0, "membership healthy: heartbeats must flow");
    expect(h1.hb_timeouts == 0, "membership healthy: no grace expiry without faults");
    expect(h1.markdown_events.empty(), "membership healthy: no mark-down without faults");
    expect(h1.false_downs == 0, "membership healthy: no false mark-downs");
    expect(h1.laggy_flags == 0, "membership healthy: no laggy flags without faults");
    expect(h1 == h2, "membership healthy: same seed must reproduce identical digests");

    // (b) crash + restart: detection within grace + 2 heartbeat intervals,
    // never before the grace expires, and the boot beacon marks it up again.
    std::printf("\n[membership crash/restart] osd.1 down 300ms..550ms\n");
    fault::FaultPlan crash_plan;
    crash_plan.crash_restart(300 * kMillisecond, 1, 250 * kMillisecond);
    const MembershipDigest c1 = run_membership(42, crash_plan, 1.0, false, no_mutate);
    const MembershipDigest c2 = run_membership(42, crash_plan, 1.0, false, no_mutate);
    std::printf("  markdowns=%zu markups=%zu reports=%llu deltas=%llu fenced=%llu+%llu+%llu\n",
                c1.markdown_events.size(), c1.markup_events.size(),
                (unsigned long long)c1.failure_reports, (unsigned long long)c1.map_deltas,
                (unsigned long long)c1.fenced_ops, (unsigned long long)c1.fenced_rep_ops,
                (unsigned long long)c1.fenced_replies);
    check_invariants("membership crash", c1.run);
    expect(!c1.markdown_events.empty() && c1.markdown_events[0].first == 1,
           "membership crash: osd.1 must be marked down");
    if (!c1.markdown_events.empty()) {
      const std::uint64_t at = c1.markdown_events[0].second;
      const std::uint64_t crash_at = 300 * kMillisecond;
      std::printf("  detection latency: %.1fms after crash\n",
                  double(at - crash_at) / double(kMillisecond));
      expect(at >= crash_at + hb_grace,
             "membership crash: mark-down must wait out the grace period");
      expect(at <= crash_at + hb_grace + 2 * hb_interval,
             "membership crash: detection must land within grace + 2 intervals");
    }
    expect(!c1.markup_events.empty() && c1.markup_events[0].first == 1,
           "membership crash: boot beacon must mark osd.1 up again");
    expect(c1.false_downs == 0, "membership crash: the mark-down was real");
    expect(c1.map_deltas >= 2, "membership crash: down and up must both publish");
    expect(c1 == c2, "membership crash: same seed must reproduce identical digests");

    // (c) split brain: osd.0 loses its peers and the monitor but keeps its
    // clients. Its in-flight writes cannot replicate and must FAIL (silent
    // peers are not known-down to it), never ack — and once the healthy
    // side's epoch moves, stale-stamped ops get fenced. Verify mode proves
    // no acked write was lost.
    std::printf("\n[membership split-brain] osd.0 isolated from peers+mon, not clients\n");
    fault::FaultPlan split_plan;
    for (std::uint32_t peer = 1; peer <= 3; peer++) {
      split_plan.link_partition(300 * kMillisecond, 0, peer, 300 * kMillisecond);
    }
    split_plan.link_partition(300 * kMillisecond, 0, fault::kMonPeer, 300 * kMillisecond);
    const MembershipDigest s1 = run_membership(42, split_plan, 0.7, true, no_mutate);
    const MembershipDigest s2 = run_membership(42, split_plan, 0.7, true, no_mutate);
    std::printf("  markdowns=%zu rep_unresolved=%llu fenced=%llu+%llu+%llu "
                "verify_failures=%llu below_min=%llu\n",
                s1.markdown_events.size(), (unsigned long long)s1.rep_unresolved,
                (unsigned long long)s1.fenced_ops, (unsigned long long)s1.fenced_rep_ops,
                (unsigned long long)s1.fenced_replies, (unsigned long long)s1.verify_failures,
                (unsigned long long)s1.run.below_min);
    check_invariants("membership split", s1.run);
    expect(!s1.markdown_events.empty() && s1.markdown_events[0].first == 0,
           "membership split: the isolated osd.0 must be marked down");
    expect(s1.rep_unresolved > 0,
           "membership split: writes with silent-but-up peers must fail, not ack");
    expect(s1.fenced_ops + s1.fenced_rep_ops + s1.fenced_replies > 0,
           "membership split: stale-epoch ops must be fenced");
    expect(s1.verify_failures == 0, "membership split: no acked write may be lost");
    expect(s1.false_downs == 0, "membership split: partition mark-down is correct");
    expect(s1 == s2, "membership split: same seed must reproduce identical digests");

    // (d) gray failure: a slow SSD leaves heartbeats crisp — the OSD goes
    // laggy via the op-age self-check but is never marked down.
    std::printf("\n[membership gray] osd.1 SSD x50 for 400ms, laggy_op_age=2ms\n");
    fault::FaultPlan gray_plan;
    gray_plan.ssd_slow(300 * kMillisecond, 1, 50.0, 400 * kMillisecond);
    const auto gray_mutate = [](core::ClusterConfig& cfg) {
      cfg.membership.laggy_op_age = 2 * kMillisecond;
    };
    const MembershipDigest g1 = run_membership(42, gray_plan, 0.5, false, gray_mutate);
    const MembershipDigest g2 = run_membership(42, gray_plan, 0.5, false, gray_mutate);
    std::printf("  laggy_flags=%llu markdowns=%zu false_downs=%llu\n",
                (unsigned long long)g1.laggy_flags, g1.markdown_events.size(),
                (unsigned long long)g1.false_downs);
    check_invariants("membership gray", g1.run);
    expect(g1.laggy_flags > 0, "membership gray: the slow OSD must be flagged laggy");
    expect(g1.markdown_events.empty(),
           "membership gray: alive-but-slow must never be marked down");
    expect(g1.false_downs == 0, "membership gray: no false mark-downs");
    expect(g1 == g2, "membership gray: same seed must reproduce identical digests");
  }

  // --- randomized plans, each run twice for determinism -------------------
  for (std::uint64_t seed = 1; runs("random") && seed <= 5; seed++) {
    fault::FaultPlan plan = fault::FaultPlan::random(seed, 150 * kMillisecond,
                                                     1000 * kMillisecond, 6, 4);
    std::printf("\n[random plan seed=%llu]\n%s", (unsigned long long)seed,
                plan.describe().c_str());
    const RunDigest a = run_once(1000 + seed, plan, true);
    const RunDigest b = run_once(1000 + seed, plan, true);
    std::printf("  events=%llu begun=%llu failed=%llu retries=%llu degraded=%llu\n",
                (unsigned long long)a.events, (unsigned long long)a.begun,
                (unsigned long long)a.failed, (unsigned long long)a.retries,
                (unsigned long long)a.degraded);
    check_invariants(("seed " + std::to_string(seed)).c_str(), a);
    expect(a == b, "random plan seed " + std::to_string(seed) +
                       ": same seed must reproduce byte-identical digests");
  }

  if (legs_run == 0) {
    std::fprintf(stderr,
                 "chaos: unknown --leg='%s' "
                 "(expected empty|directed|random|corruption|store|ec|membership)\n",
                 leg.c_str());
    return 2;
  }
  std::printf("\nchaos soak: %s (%d invariant failures)\n",
              g_failures == 0 ? "PASS" : "FAIL", g_failures);
  return g_failures == 0 ? 0 : 1;
}
