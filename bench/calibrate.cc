// Calibration / diagnostic matrix: runs the key (profile x workload x state)
// combinations and prints throughput, latency, and the internal evidence
// counters (lock waits, throttle stalls, metadata reads, CPU/device
// utilization). Used to tune the cost model against the paper's reported
// shapes; kept as a tool because it doubles as a cluster-health explainer.
//
// Usage: calibrate [quick]

#include <cstdio>
#include <cstring>

#include "afceph.h"

using namespace afc;

namespace {

struct Case {
  const char* name;
  core::Profile profile;
  bool sustained;
  client::WorkloadSpec spec;
  unsigned vms;
};

void run_case(const Case& c, Time runtime) {
  core::ClusterConfig cfg;
  cfg.profile = c.profile;
  cfg.sustained = c.sustained;
  cfg.vms = c.vms;
  auto spec = c.spec;
  spec.warmup = 300 * kMillisecond;
  // Sequential 4M ops complete at ~10/s per VM; give them a longer window.
  spec.runtime = spec.block_size >= kMiB ? 3 * runtime : runtime;
  core::ClusterSim cluster(cfg);
  auto r = cluster.run(spec);

  double dev_util = 0.0;
  for (std::size_t i = 0; i < cluster.osd_count(); i++) {
    dev_util = std::max(dev_util, cluster.osd_ssd(i).utilization());
  }
  const bool write = spec.write_fraction > 0.5;
  std::printf(
      "%-34s %8.0f IOPS  lat %7.2fms p99 %7.2fms cov %.2f | cpu %.2f dev %.2f | "
      "lockwait %6.1fms/op defer %llu | metaRd %llu jstall %llu wbstall %llu kvslow %llu\n",
      c.name, write ? r.write_iops : r.read_iops, write ? r.write_lat_ms : r.read_lat_ms,
      write ? r.write_p99_ms : r.read_p99_ms, write ? r.write_cov : r.read_cov,
      r.max_osd_node_cpu, dev_util,
      (write ? r.write_iops : r.read_iops) > 0
          ? to_ms(r.pg_lock_wait_ns) / ((write ? r.write_iops : r.read_iops) * to_s(runtime))
          : 0.0,
      (unsigned long long)r.pending_defers, (unsigned long long)r.metadata_device_reads,
      (unsigned long long)r.journal_full_stalls, (unsigned long long)r.fs_writeback_stalls,
      (unsigned long long)r.kv_stall_slowdowns);
  if (write) {
    std::printf("    stages(ms): ");
    for (unsigned s = 1; s < osd::kStageCount; s++) std::printf("%u:%.2f ", s, r.stage_ms[s]);
    std::printf("total:%.2f\n", r.write_path_total_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Default is the quick matrix; pass "full" for longer windows.
  const bool full = argc > 1 && std::strcmp(argv[1], "full") == 0;
  const Time runtime = full ? 1500 * kMillisecond : 700 * kMillisecond;

  auto w4 = client::WorkloadSpec::rand_write(4096, 16);
  auto r4 = client::WorkloadSpec::rand_read(4096, 16);
  auto w4lo = client::WorkloadSpec::rand_write(4096, 1);
  auto sw = client::WorkloadSpec::seq_write(4 * kMiB, 4);
  auto sr = client::WorkloadSpec::seq_read(4 * kMiB, 4);

  const Case cases[] = {
      {"community sust 4Kw 80vm", core::Profile::community(), true, w4, 80},
      {"afceph    sust 4Kw 80vm", core::Profile::afceph(), true, w4, 80},
      {"community sust 4Kw qd1 16vm", core::Profile::community(), true, w4lo, 16},
      {"afceph    sust 4Kw qd1 16vm", core::Profile::afceph(), true, w4lo, 16},
      {"community sust 4Kr 80vm", core::Profile::community(), true, r4, 80},
      {"afceph    sust 4Kr 80vm", core::Profile::afceph(), true, r4, 80},
      {"community clean 4Kw 40vm", core::Profile::community(), false, w4, 40},
      {"ladder1   clean 4Kw 40vm", core::Profile::ladder(1), false, w4, 40},
      {"ladder2   clean 4Kw 40vm", core::Profile::ladder(2), false, w4, 40},
      {"ladder3   clean 4Kw 40vm", core::Profile::ladder(3), false, w4, 40},
      {"afceph    clean 4Kw 40vm", core::Profile::afceph(), false, w4, 40},
      {"community sust seqw 40vm", core::Profile::community(), true, sw, 40},
      {"afceph    sust seqw 40vm", core::Profile::afceph(), true, sw, 40},
      {"community sust seqr 40vm", core::Profile::community(), true, sr, 40},
      {"afceph    sust seqr 40vm", core::Profile::afceph(), true, sr, 40},
  };
  for (const auto& c : cases) run_case(c, runtime);
  return 0;
}
