// Figure 16 (beyond the paper): the object-store backend ladder.
//
// The paper's optimized AFCeph still writes every byte twice — once to the
// NVRAM journal, once through the filesystem (syscalls, page cache,
// writeback) to the SSD. This harness holds the whole optimized stack fixed
// and swaps only the backend under the OSD:
//
//   file    FileStore-on-XFS (the paper's optimized rung): external NVRAM
//           journal write-ahead, syscall-priced filesystem apply, dirty
//           writeback to the data SSD
//   flash   FlashStore: raw-device extent allocator (COW, no double-write),
//           sub-block deferred-write WAL on the NVRAM card, onode metadata
//           in the LSM KV, per-object SSD write streams
//
// Headline point: sustained 4K random write — FileStore pays the full GC
// write-amplification on its data path, FlashStore's stream hints earn the
// multi-stream SSD's segregated erase blocks. `--smoke` runs the headline
// point short and exits nonzero unless flash >= file (check.sh perf gate).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "afceph.h"
#include "core/bench_json.h"

using namespace afc;

namespace {

struct Point {
  double iops = 0.0;
  double lat_ms = 0.0;
  double p99_ms = 0.0;
  double cpu = 0.0;
  std::uint64_t syscalls = 0;
  std::uint64_t gc_stalls = 0;
};

Point run_backend(store::Backend backend, const client::WorkloadSpec& spec,
                  const char* workload_name, bool sustained) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.store_backend = backend;
  cfg.sustained = sustained;
  if (const char* s = std::getenv("FIG16_SEED")) cfg.seed = std::uint64_t(std::atoll(s));
  core::ClusterSim cluster(cfg);
  const auto wall0 = std::chrono::steady_clock::now();
  auto r = cluster.run(spec);
  Point p;
  p.iops = r.write_iops;
  p.lat_ms = r.write_lat_ms;
  p.p99_ms = r.write_p99_ms;
  p.cpu = r.max_osd_node_cpu;
  p.syscalls = r.syscalls;
  for (std::size_t i = 0; i < cluster.osd_count(); i++) {
    p.gc_stalls += cluster.osd_ssd(i).gc_stalls();
  }
  if (std::getenv("FIG16_STAGES") != nullptr) {
    std::printf("  [%s] iops %.1f, mean %.4f ms; write path %.4f ms:\n",
                store::backend_name(backend), r.write_iops, r.write_lat_ms,
                r.write_path_total_ms);
    for (unsigned s = 1; s < osd::kStageCount; s++) {
      std::printf("    %-34s %.3f ms\n", kWriteStageNames[s], r.stage_ms[s]);
    }
    std::uint64_t jent = 0, jbat = 0, jstall = 0;
    double jwait = 0;
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      fs::Journal* j = cluster.osd(i).store().wal();
      if (j == nullptr) j = &cluster.osd(i).journal();
      jent += j->entries_written();
      jbat += j->batches_written();
      jstall += j->full_stalls();
      jwait += double(j->full_stall_ns());
    }
    if (jent > 0) {
      std::printf("    ring: %llu entries, avg batch %.2f, %llu full stalls (%.1f ms)\n",
                  (unsigned long long)jent, jbat > 0 ? double(jent) / double(jbat) : 0.0,
                  (unsigned long long)jstall, jwait / 1e6);
    }
    std::printf(
        "    pg_lock %.1f ms (%llu contended), defers %llu, jfull %llu, wb_stalls %llu, "
        "kv_slow %llu, kv_amp %.2f, meta_reads %llu\n",
        double(r.pg_lock_wait_ns) / 1e6, (unsigned long long)r.pg_lock_contended,
        (unsigned long long)r.pending_defers, (unsigned long long)r.journal_full_stalls,
        (unsigned long long)r.fs_writeback_stalls, (unsigned long long)r.kv_stall_slowdowns,
        r.kv_write_amplification, (unsigned long long)r.metadata_device_reads);
    if (trace::Collector* tr = cluster.tracer(); tr != nullptr) {
      for (const char* s : {stage::kClientIo, stage::kNetWire, stage::kNetBatch,
                            stage::kDispatchThrottle, stage::kJournalThrottle,
                            stage::kJournalWrite, stage::kReplication, stage::kWriteOp}) {
        std::printf("    span %-24s %.4f ms\n", s, tr->stage_mean_ms(s));
      }
    }
    std::printf(
        "    net: %llu msgs, %llu frames, occupancy %.2f, nagle %llu; shard wakeups %llu\n",
        (unsigned long long)r.net_messages, (unsigned long long)r.net_frames,
        r.net_batch_occupancy, (unsigned long long)r.net_nagle_stalls,
        (unsigned long long)r.net_shard_wakeups);
  }
  if (core::BenchJson::enabled()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall0)
            .count();
    core::BenchRecord rec;
    rec.bench = "fig16_store";
    rec.config = std::string(store::backend_name(backend)) + "/" + workload_name;
    rec.nodes = cfg.osd_nodes;
    rec.osds = cfg.osd_nodes * cfg.osds_per_node;
    rec.metric = "write_iops";
    rec.value = r.write_iops;
    rec.wall_ms = wall_ms;
    rec.events = cluster.simulation().executed_events();
    rec.events_per_wall_sec = wall_ms > 0 ? double(rec.events) / (wall_ms / 1e3) : 0;
    rec.sim_ns = cluster.simulation().now();
    rec.sim_ns_per_wall_ns = wall_ms > 0 ? double(rec.sim_ns) / (wall_ms * 1e6) : 0;
    rec.max_node_cpu = r.max_osd_node_cpu;
    core::BenchJson::record(rec);
  }
  return p;
}

/// One workload across both backends; returns {file, flash} IOPS.
std::pair<double, double> compare(const char* workload_name, client::WorkloadSpec spec,
                                  bool sustained) {
  std::printf("\n--- %s (%s state, 16 OSDs) ---\n", workload_name,
              sustained ? "sustained" : "clean");
  Table t({"backend", "IOPS", "vs file", "mean ms", "p99 ms", "max node CPU", "syscalls",
           "gc stalls"});
  double file_iops = 0.0, flash_iops = 0.0;
  for (const store::Backend backend : {store::Backend::kFile, store::Backend::kFlash}) {
    const Point p = run_backend(backend, spec, workload_name, sustained);
    if (backend == store::Backend::kFile) {
      file_iops = p.iops;
    } else {
      flash_iops = p.iops;
    }
    t.row({store::backend_name(backend), Table::kiops(p.iops),
           file_iops > 0 ? Table::num(p.iops / file_iops, 2) + "x" : "-",
           Table::num(p.lat_ms, 2), Table::num(p.p99_ms, 2), Table::num(p.cpu, 2),
           std::to_string(p.syscalls), std::to_string(p.gc_stalls)});
  }
  t.print();
  return {file_iops, flash_iops};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("Fig.16: object-store backend ladder (FileStore vs FlashStore)%s\n",
              smoke ? " [smoke]" : "");

  auto headline = client::WorkloadSpec::rand_write(4096, 8);
  if (smoke) {
    headline.warmup = 300 * kMillisecond;
    headline.runtime = 2000 * kMillisecond;
    const auto [file, flash] = compare("4k_randwrite", headline, /*sustained=*/true);
    if (flash < file) {
      std::fprintf(stderr, "FAIL: flash (%.0f IOPS) < file (%.0f IOPS) on 4K random write\n",
                   flash, file);
      return 1;
    }
    std::printf("\nsmoke OK: flash (%.0fK) >= file (%.0fK) on sustained 4K random write\n",
                flash / 1e3, file / 1e3);
    return 0;
  }

  const auto [file4k, flash4k] = compare("4k_randwrite", headline, /*sustained=*/true);
  // Sub-block updates: every write is a read-modify-write candidate. The
  // file backend journals and rewrites pages; the flash backend commits the
  // payload in its deferred-write WAL and folds it into the next rewrite.
  compare("2k_randwrite", client::WorkloadSpec::rand_write(2048, 8), /*sustained=*/true);
  // Large streaming writes: both backends are bandwidth-bound; the flash
  // backend's remaining edge is the removed journal double-write.
  compare("64k_randwrite", client::WorkloadSpec::rand_write(65536, 8), /*sustained=*/true);
  // Clean state: no GC anywhere — isolates the syscall/journal savings from
  // the multi-stream GC relief.
  compare("4k_randwrite", client::WorkloadSpec::rand_write(4096, 8), /*sustained=*/false);

  std::printf(
      "\nthe flash backend removes the filesystem tax (no syscalls, no journal\n"
      "double-write) and earns the multi-stream SSD's reduced GC on small writes;\n"
      "the deferred-write WAL keeps sub-block updates one NVRAM write, not a\n"
      "read-modify-write on the data device.\n");
  if (flash4k < file4k) {
    std::fprintf(stderr, "FAIL: flash (%.0f IOPS) < file (%.0f IOPS) on 4K random write\n",
                 flash4k, file4k);
    return 1;
  }
  return 0;
}
