// Figure 14 (beyond the paper): multi-tenant tail-latency isolation under a
// noisy neighbor, driven open-loop.
//
// The paper's evaluation is closed-loop: a handful of VM clients whose
// offered load collapses as soon as the cluster slows down, which makes
// noisy-neighbor damage invisible — the flood politely throttles itself.
// This sweep drives the cluster with the open-loop engine (src/workload/):
// a well-behaved "steady" tenant at a modest Poisson rate, multiplexing a
// large logical-tenant population, and a "flood" tenant pushing far past
// cluster capacity. Three phases:
//
//   solo       steady alone — its baseline p99
//   qos-off    steady + flood, no scheduler: the flood's backlog queues in
//              front of everything and steady's p99 explodes
//   qos-on     same traffic, dmClock at every OSD: steady holds a
//              reservation, the flood a hard limit — steady's p99 must stay
//              within 2x of solo (the isolation gate; check.sh --smoke)
//
// Results append to BENCH_*.json via AFC_BENCH_JSON like every other bench.

#include <chrono>
#include <cstdio>
#include <cstring>

#include "afceph.h"
#include "core/bench_json.h"

using namespace afc;

namespace {

struct Phase {
  const char* name;
  bool flood = false;
  bool qos = false;
};

struct PhaseResult {
  workload::StreamResult steady;
  workload::StreamResult flood;
  core::RunResult cluster;
};

// Small clean-state cluster: 2 nodes x 2 OSDs. The flood rate below is ~6x
// what this complement sustains for 4K writes, so qos-off genuinely drowns.
core::ClusterConfig base_config() {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 2;
  cfg.vms = 8;
  cfg.pg_num = 256;
  cfg.sustained = false;
  cfg.populated = 0;
  return cfg;
}

constexpr double kSteadyRate = 2000;    // ops/s, well under capacity
constexpr double kFloodRate = 60000;    // ops/s, far past capacity
constexpr double kFloodLimit = 8000;    // qos-on: the flood's hard ceiling

workload::StreamSpec steady_stream() {
  workload::StreamSpec s;
  s.name = "steady";
  s.tenant = 1;
  s.arrival.kind = workload::ArrivalConfig::Kind::kPoisson;
  s.arrival.rate = kSteadyRate;
  s.population.tenants = 200000;  // a population in the hundreds of thousands
  s.population.skew = 0.99;
  s.population.inflight_cap = 4;
  s.write_fraction = 1.0;
  s.zipf_theta = 0.9;
  return s;
}

workload::StreamSpec flood_stream() {
  workload::StreamSpec s;
  s.name = "flood";
  s.tenant = 2;
  s.arrival.kind = workload::ArrivalConfig::Kind::kBursty;
  s.arrival.rate = kFloodRate / 2.4;  // on/off duty cycle averages ~kFloodRate
  s.arrival.burst_factor = 8.0;
  s.arrival.burst_on = 50 * kMillisecond;
  s.arrival.burst_off = 200 * kMillisecond;
  s.population.tenants = 5000;
  s.population.skew = 0.99;
  s.population.inflight_cap = 16;
  s.population.overload = workload::TenantPopulation::Overload::kDrop;
  s.write_fraction = 1.0;
  s.zipf_theta = 0.9;
  return s;
}

PhaseResult run_phase(const Phase& ph, Time warmup, Time runtime) {
  core::ClusterConfig cfg = base_config();
  if (ph.qos) {
    cfg.qos.enabled = true;
    osd::TenantProfile steady;
    steady.tenant = 1;
    steady.pool_kind = "ssd";
    steady.reservation_iops = kSteadyRate * 1.25;  // headroom above its rate
    steady.weight = 4;
    osd::TenantProfile flood;
    flood.tenant = 2;
    flood.pool_kind = "ssd";
    flood.limit_iops = kFloodLimit;
    flood.weight = 1;
    cfg.qos.tenants = {steady, flood};
  }
  core::ClusterSim cluster(cfg);

  workload::OpenLoopSpec spec;
  spec.warmup = warmup;
  spec.runtime = runtime;
  spec.streams.push_back(steady_stream());
  if (ph.flood) spec.streams.push_back(flood_stream());

  workload::OpenLoopEngine engine(cluster, spec);
  const auto wall0 = std::chrono::steady_clock::now();
  auto r = engine.run();

  PhaseResult out;
  out.steady = r.streams[0];
  if (r.streams.size() > 1) out.flood = r.streams[1];
  out.cluster = r.cluster;

  if (core::BenchJson::enabled()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall0)
            .count();
    core::BenchRecord rec;
    rec.bench = "fig14_qos";
    rec.config = ph.name;
    rec.nodes = cfg.osd_nodes;
    rec.osds = cfg.osd_nodes * cfg.osds_per_node;
    rec.metric = "steady_p99_ms";
    rec.value = out.steady.p99_ms;
    rec.wall_ms = wall_ms;
    rec.events = cluster.simulation().executed_events();
    rec.events_per_wall_sec = wall_ms > 0 ? double(rec.events) / (wall_ms / 1e3) : 0;
    rec.sim_ns = cluster.simulation().now();
    rec.sim_ns_per_wall_ns = wall_ms > 0 ? double(rec.sim_ns) / (wall_ms * 1e6) : 0;
    rec.max_node_cpu = out.cluster.max_osd_node_cpu;
    core::BenchJson::record(rec);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("Fig.14: noisy-neighbor isolation with dmClock QoS (open-loop engine)%s\n",
              smoke ? " [smoke]" : "");

  const Time warmup = smoke ? 200 * kMillisecond : 300 * kMillisecond;
  const Time runtime = smoke ? 500 * kMillisecond : 1500 * kMillisecond;

  const Phase phases[] = {
      {"solo", false, false},
      {"flood-qos-off", true, false},
      {"flood-qos-on", true, true},
  };

  Table t({"phase", "steady IOPS", "steady p99", "vs solo", "flood IOPS", "flood dropped",
           "res grants", "limit defers"});
  double solo_p99 = 0, off_p99 = 0, on_p99 = 0;
  for (const Phase& ph : phases) {
    const PhaseResult r = run_phase(ph, warmup, runtime);
    if (std::strcmp(ph.name, "solo") == 0) solo_p99 = r.steady.p99_ms;
    if (std::strcmp(ph.name, "flood-qos-off") == 0) off_p99 = r.steady.p99_ms;
    if (std::strcmp(ph.name, "flood-qos-on") == 0) on_p99 = r.steady.p99_ms;
    t.row({ph.name, Table::kiops(r.steady.iops), Table::num(r.steady.p99_ms, 2) + " ms",
           solo_p99 > 0 ? Table::num(r.steady.p99_ms / solo_p99, 2) + "x" : "-",
           r.flood.name.empty() ? "-" : Table::kiops(r.flood.iops),
           r.flood.name.empty() ? "-" : std::to_string(r.flood.dropped),
           std::to_string(r.cluster.qos_reservation_grants),
           std::to_string(r.cluster.qos_limit_deferrals)});
  }
  t.print();

  std::printf(
      "\nopen-loop load makes the damage visible: without QoS the flood's backlog\n"
      "sits in front of every op and the steady tenant's p99 blows up %.1fx; with\n"
      "dmClock the reservation pins steady's dispatch and the limit caps the flood.\n",
      solo_p99 > 0 ? off_p99 / solo_p99 : 0.0);

  if (on_p99 > 2.0 * solo_p99) {
    std::fprintf(stderr, "FAIL: qos-on steady p99 %.2f ms > 2x solo %.2f ms\n", on_p99,
                 solo_p99);
    return 1;
  }
  if (off_p99 <= on_p99) {
    std::fprintf(stderr,
                 "FAIL: qos-off steady p99 %.2f ms not worse than qos-on %.2f ms — the flood "
                 "never hurt\n",
                 off_p99, on_p99);
    return 1;
  }
  std::printf("\nisolation gate OK: qos-on p99 %.2f ms <= 2x solo %.2f ms (qos-off: %.2f ms)\n",
              on_p99, solo_p99, off_p99);
  return 0;
}
