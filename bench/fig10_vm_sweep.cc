// Figure 10 reproduction: "Virtual Machine performance comparison" —
// community Ceph vs AFCeph across VM counts (10..80), sustained state,
// six workloads: 4K/32K random write, sequential write (4M), 4K/32K random
// read, sequential read (4M).
//
// Paper shapes to match:
//  (a/d) 4K randwrite: community ~22K IOPS max @ ~58ms at 80 VMs, latency
//        blowing up past 40 VMs (metadata reads); AFCeph ~81K @ ~8ms — ~4x
//        with ~75% lower latency, better at every VM count;
//  (b/e) 32K randwrite: AFCeph ~4x community; AFCeph declines/fluctuates at
//        40+ VMs (journal fills, flushes stall);
//  (c/f) seq write: community ~= AFCeph, fluctuation when NVRAM journal
//        fills;
//  (g/j) 4K randread: AFCeph better latency under light load, ~2x IOPS under
//        heavy load;
//  (h/k) 32K randread: same ordering;
//  (i/l) seq read: community ~= AFCeph.

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

struct Workload {
  const char* name;
  client::WorkloadSpec spec;
  bool write;
};

void sweep(const Workload& w) {
  std::printf("\n--- %s ---\n", w.name);
  Table t({"VMs", "Community IOPS", "lat(ms)", "cov", "AFCeph IOPS", "lat(ms)", "cov",
           "IOPS ratio"});
  for (unsigned vms : {10u, 20u, 40u, 60u, 80u}) {
    double iops[2], lat[2], cov[2];
    for (int p = 0; p < 2; p++) {
      core::ClusterConfig cfg;
      cfg.profile = p == 0 ? core::Profile::community() : core::Profile::afceph();
      cfg.sustained = true;
      cfg.vms = vms;
      core::ClusterSim cluster(cfg);
      auto spec = w.spec;
      spec.warmup = 300 * kMillisecond;
      spec.runtime = w.spec.block_size >= kMiB ? 4 * kSecond : 1200 * kMillisecond;
      auto r = cluster.run(spec);
      iops[p] = w.write ? r.write_iops : r.read_iops;
      lat[p] = w.write ? r.write_lat_ms : r.read_lat_ms;
      cov[p] = w.write ? r.write_cov : r.read_cov;
    }
    t.row({std::to_string(vms), Table::kiops(iops[0]), Table::num(lat[0], 1),
           Table::num(cov[0], 2), Table::kiops(iops[1]), Table::num(lat[1], 1),
           Table::num(cov[1], 2),
           iops[0] > 0 ? Table::num(iops[1] / iops[0], 2) + "x" : "-"});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf("Fig.10: VM sweep, community vs AFCeph (4 nodes, 16 OSDs, rep=2, sustained)\n");
  const Workload workloads[] = {
      {"4K random write (a/d)", client::WorkloadSpec::rand_write(4096, 8), true},
      {"32K random write (b/e)", client::WorkloadSpec::rand_write(32768, 8), true},
      {"4M sequential write (c/f)", client::WorkloadSpec::seq_write(4 * kMiB, 4), true},
      {"4K random read (g/j)", client::WorkloadSpec::rand_read(4096, 8), false},
      {"32K random read (h/k)", client::WorkloadSpec::rand_read(32768, 8), false},
      {"4M sequential read (i/l)", client::WorkloadSpec::seq_read(4 * kMiB, 4), false},
  };
  for (const auto& w : workloads) sweep(w);
  return 0;
}
