// Figure 11 reproduction: "Virtual Machine max performance comparison:
// SolidFire vs AFCeph vs Community Ceph" — each system at its best VM/qd
// configuration, fully random data (so SolidFire pays its dedup pipeline
// with no dedup wins).
//
// Paper shapes:
//  (a) 4K randwrite, latency-matched (~3-6 ms): SolidFire 78K @ ~2.4ms,
//      AFCeph 71K @ 3.4ms, Community 3K @ 5.7ms (20x AFCeph/Community);
//  (c) 32K randwrite: AFCeph beats SolidFire (4K-chunk pipeline pays 8x per
//      op) and Community;
//  random read: AFCeph strong; SolidFire collapses at 32K;
//  (b/d) sequential: both Cephs 3-4x SolidFire (hash placement shreds
//      sequential streams into random 4K chunks).

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

struct Row {
  double iops = 0.0;
  double lat_ms = 0.0;
};

Row run_ceph(const core::Profile& profile, const client::WorkloadSpec& base, unsigned vms,
             unsigned qd, bool write) {
  core::ClusterConfig cfg;
  cfg.profile = profile;
  cfg.sustained = true;
  cfg.vms = vms;
  core::ClusterSim cluster(cfg);
  auto spec = base;
  spec.iodepth = qd;
  spec.warmup = 300 * kMillisecond;
  spec.runtime = base.block_size >= kMiB ? 4 * kSecond : 1200 * kMillisecond;
  auto r = cluster.run(spec);
  return write ? Row{r.write_iops, r.write_lat_ms} : Row{r.read_iops, r.read_lat_ms};
}

Row run_solidfire(const client::WorkloadSpec& base, unsigned vms, unsigned qd, bool write) {
  sf::SolidFireCluster::Config cfg;
  cfg.vms = vms;
  sf::SolidFireCluster cluster(cfg);
  auto spec = base;
  spec.iodepth = qd;
  spec.warmup = 300 * kMillisecond;
  spec.runtime = base.block_size >= kMiB ? 4 * kSecond : 1200 * kMillisecond;
  auto r = cluster.run(spec);
  return write ? Row{r.write_iops, r.write_lat_ms} : Row{r.read_iops, r.read_lat_ms};
}

void compare(const char* name, const client::WorkloadSpec& spec, bool write, unsigned comm_vms,
             unsigned comm_qd, unsigned afc_qd, unsigned sf_qd) {
  // Each system runs at its own best-config population/depth, as the paper
  // did ("considering IOPS and latency"); sequential 4M ops need fewer
  // concurrent streams so per-op latency stays well inside the window.
  const bool seq = spec.block_size >= kMiB;
  const unsigned vms = seq ? 16 : 80;
  const Row community = run_ceph(core::Profile::community(), spec, comm_vms, comm_qd, write);
  const Row afceph = run_ceph(core::Profile::afceph(), spec, vms, afc_qd, write);
  const Row solidfire = run_solidfire(spec, seq ? 16 : 80, sf_qd, write);
  Table t({"system", "IOPS", "MB/s", "mean lat (ms)"});
  auto mbps = [&](double iops) {
    return Table::num(iops * double(spec.block_size) / double(kMiB), 0);
  };
  t.row({"SolidFire", Table::kiops(solidfire.iops), mbps(solidfire.iops),
         Table::num(solidfire.lat_ms, 2)});
  t.row({"AFCeph", Table::kiops(afceph.iops), mbps(afceph.iops), Table::num(afceph.lat_ms, 2)});
  t.row({"Community Ceph", Table::kiops(community.iops), mbps(community.iops),
         Table::num(community.lat_ms, 2)});
  std::printf("\n--- %s ---\n", name);
  t.print();
  if (community.iops > 0) {
    std::printf("AFCeph / Community = %.1fx, AFCeph / SolidFire = %.2fx\n",
                afceph.iops / community.iops,
                solidfire.iops > 0 ? afceph.iops / solidfire.iops : 0.0);
  }
}

}  // namespace

int main() {
  std::printf("Fig.11: SolidFire vs AFCeph vs Community Ceph (best configs, random data)\n");
  // Latency-matched small-write comparison: low depth, like the paper's
  // "values extracted from minimal latency".
  compare("4K random write (latency-matched)", client::WorkloadSpec::rand_write(4096, 1),
          /*write=*/true, /*comm_vms=*/16, /*comm_qd=*/1, /*afc_qd=*/3, /*sf_qd=*/3);
  compare("32K random write", client::WorkloadSpec::rand_write(32768, 1), true, 80, 4, 8, 8);
  compare("4K random read", client::WorkloadSpec::rand_read(4096, 1), false, 80, 8, 8, 8);
  compare("32K random read", client::WorkloadSpec::rand_read(32768, 1), false, 80, 8, 8, 8);
  compare("4M sequential write", client::WorkloadSpec::seq_write(4 * kMiB, 1), true, 16, 4, 4, 1);
  compare("4M sequential read", client::WorkloadSpec::seq_read(4 * kMiB, 1), false, 16, 4, 4, 1);
  return 0;
}
