// Figure 12 reproduction: "AFCeph scale-out test" — clean-state clusters of
// 4 / 8 / 16 OSD nodes, same per-node hardware, client load scaled with the
// cluster.
//
// Paper shapes: throughput grows ~linearly with node count for sequential
// and random, read and write — EXCEPT 4K random read at 16 nodes, which
// falls short of linear because SimpleMessenger's thread-per-connection
// receive path burns CPU per connection (connection count grows with the
// cluster).

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

struct Point {
  double value;  // IOPS or MB/s
  double cpu;
};

Point run_nodes(unsigned nodes, const client::WorkloadSpec& base, bool write) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.sustained = false;  // paper: "SSDs are clean state"
  cfg.populated = write ? 0 : 1;  // reads need pre-existing data
  cfg.osd_nodes = nodes;
  cfg.vms = 5 * nodes;  // offered load scales with the cluster
  cfg.pg_num = 256 * nodes;
  core::ClusterSim cluster(cfg);
  auto spec = base;
  spec.warmup = 300 * kMillisecond;
  spec.runtime = base.block_size >= kMiB ? 3 * kSecond : 1000 * kMillisecond;
  auto r = cluster.run(spec);
  return Point{write ? r.write_iops : r.read_iops, r.max_osd_node_cpu};
}

void sweep(const char* name, const client::WorkloadSpec& spec, bool write, bool as_mbps) {
  std::printf("\n--- %s ---\n", name);
  Table t({"nodes", as_mbps ? "MB/s" : "IOPS", "scaling vs 4 nodes", "max node CPU"});
  double base = 0.0;
  for (unsigned nodes : {4u, 8u, 16u}) {
    auto p = run_nodes(nodes, spec, write);
    const double v = as_mbps ? p.value * double(spec.block_size) / double(kMiB) : p.value;
    if (nodes == 4) base = v;
    t.row({std::to_string(nodes), as_mbps ? Table::num(v, 0) : Table::kiops(v),
           Table::num(v / base, 2) + "x", Table::num(p.cpu, 2)});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf("Fig.12: AFCeph scale-out, 4 -> 8 -> 16 nodes (clean state)\n");
  sweep("4K random write", client::WorkloadSpec::rand_write(4096, 8), true, false);
  sweep("4K random read", client::WorkloadSpec::rand_read(4096, 8), false, false);
  sweep("4M sequential write", client::WorkloadSpec::seq_write(4 * kMiB, 4), true, true);
  sweep("4M sequential read", client::WorkloadSpec::seq_read(4 * kMiB, 4), false, true);
  std::printf(
      "\npaper: all workloads scale ~linearly except 4K random read at 16 nodes\n"
      "(SimpleMessenger CPU ceiling).\n");
  return 0;
}
