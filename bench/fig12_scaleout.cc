// Figure 12 reproduction: "AFCeph scale-out test" — clean-state clusters of
// 4 / 8 / 16 OSD nodes, same per-node hardware, client load scaled with the
// cluster.
//
// Paper shapes: throughput grows ~linearly with node count for sequential
// and random, read and write — EXCEPT 4K random read at 16 nodes, which
// falls short of linear because SimpleMessenger's thread-per-connection
// receive path burns CPU per connection (connection count grows with the
// cluster).

#include <chrono>
#include <cstdio>
#include <string>

#include "afceph.h"
#include "core/bench_json.h"

using namespace afc;

namespace {

struct Point {
  double value;  // IOPS or MB/s
  double cpu;
};

Point run_nodes(const char* workload, unsigned nodes, const client::WorkloadSpec& base,
                bool write) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.sustained = false;  // paper: "SSDs are clean state"
  cfg.populated = write ? 0 : 1;  // reads need pre-existing data
  cfg.osd_nodes = nodes;
  cfg.vms = 5 * nodes;  // offered load scales with the cluster
  cfg.pg_num = 256 * nodes;
  core::ClusterSim cluster(cfg);
  auto spec = base;
  spec.warmup = 300 * kMillisecond;
  spec.runtime = base.block_size >= kMiB ? 3 * kSecond : 1000 * kMillisecond;
  const auto wall0 = std::chrono::steady_clock::now();
  auto r = cluster.run(spec);
  // AFC_BENCH_JSON: this rung becomes a wall-clock trajectory datapoint
  // (stdout stays byte-identical either way).
  if (core::BenchJson::enabled()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall0)
            .count();
    core::BenchRecord rec;
    rec.bench = "fig12_scaleout";
    rec.config = std::string("afceph/") + workload;
    rec.nodes = nodes;
    rec.osds = nodes * cfg.osds_per_node;
    rec.metric = write ? "write_iops" : "read_iops";
    rec.value = write ? r.write_iops : r.read_iops;
    rec.wall_ms = wall_ms;
    rec.events = cluster.simulation().executed_events();
    rec.events_per_wall_sec = wall_ms > 0 ? double(rec.events) / (wall_ms / 1e3) : 0;
    rec.sim_ns = cluster.simulation().now();
    rec.sim_ns_per_wall_ns = wall_ms > 0 ? double(rec.sim_ns) / (wall_ms * 1e6) : 0;
    rec.max_node_cpu = r.max_osd_node_cpu;
    core::BenchJson::record(rec);
  }
  return Point{write ? r.write_iops : r.read_iops, r.max_osd_node_cpu};
}

void sweep(const char* name, const client::WorkloadSpec& spec, bool write, bool as_mbps) {
  std::printf("\n--- %s ---\n", name);
  Table t({"nodes", as_mbps ? "MB/s" : "IOPS", "scaling vs 4 nodes", "max node CPU"});
  double base = 0.0;
  for (unsigned nodes : {4u, 8u, 16u}) {
    auto p = run_nodes(name, nodes, spec, write);
    const double v = as_mbps ? p.value * double(spec.block_size) / double(kMiB) : p.value;
    if (nodes == 4) base = v;
    t.row({std::to_string(nodes), as_mbps ? Table::num(v, 0) : Table::kiops(v),
           Table::num(v / base, 2) + "x", Table::num(p.cpu, 2)});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf("Fig.12: AFCeph scale-out, 4 -> 8 -> 16 nodes (clean state)\n");
  sweep("4K random write", client::WorkloadSpec::rand_write(4096, 8), true, false);
  sweep("4K random read", client::WorkloadSpec::rand_read(4096, 8), false, false);
  sweep("4M sequential write", client::WorkloadSpec::seq_write(4 * kMiB, 4), true, true);
  sweep("4M sequential read", client::WorkloadSpec::seq_read(4 * kMiB, 4), false, true);
  std::printf(
      "\npaper: all workloads scale ~linearly except 4K random read at 16 nodes\n"
      "(SimpleMessenger CPU ceiling).\n");
  return 0;
}
