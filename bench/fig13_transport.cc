// Figure 13 (beyond the paper): the post-SimpleMessenger transport ladder.
//
// The paper stops at the diagnosis — 4K random read at 16 nodes is capped by
// SimpleMessenger's thread-per-connection receive CPU (Fig. 12). This sweep
// climbs the ladder of transports that the community subsequently built,
// holding the rest of the cluster fixed:
//
//   community        community Ceph profile + SimpleMessenger (the floor)
//   optimized        the paper's optimized AFCeph, still SimpleMessenger —
//                    the rung every later transport must beat
//   sharded          N receive shards per endpoint (AsyncMessenger redesign):
//                    the O(rx_connections) tax becomes an amortized wakeup
//   sharded+batched  sharded + egress frame coalescing
//   bypass           RDMA-like kernel bypass: near-zero per-message CPU
//
// Ladder workload: 4K random read, the messenger-bound point, at 16 and 64
// OSDs (4 and 16 nodes). `--smoke` runs a short 16-OSD ladder and exits
// nonzero unless sharded+batched >= community — check.sh's perf-smoke leg.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "afceph.h"
#include "core/bench_json.h"
#include "net/profile.h"

using namespace afc;

namespace {

struct Rung {
  const char* name;
  core::Profile profile;
  net::Connection::Config net;
};

std::vector<Rung> ladder() {
  return {
      {"community", core::Profile::community(), net::NetProfile::community()},
      {"optimized", core::Profile::afceph(), net::NetProfile::optimized()},
      {"sharded", core::Profile::afceph(), net::NetProfile::sharded()},
      {"sharded+batched", core::Profile::afceph(), net::NetProfile::sharded_batched()},
      {"bypass", core::Profile::afceph(), net::NetProfile::bypass()},
  };
}

struct Point {
  double iops = 0.0;
  double cpu = 0.0;
  double occupancy = 0.0;
  std::uint64_t shard_wakeups = 0;
};

Point run_rung(const Rung& rung, unsigned nodes, Time runtime) {
  core::ClusterConfig cfg;
  cfg.profile = rung.profile;
  cfg.net = rung.net;
  cfg.sustained = false;
  cfg.populated = 1;  // reads need pre-existing data
  cfg.osd_nodes = nodes;
  cfg.vms = 5 * nodes;
  cfg.pg_num = 256 * nodes;
  core::ClusterSim cluster(cfg);
  auto spec = client::WorkloadSpec::rand_read(4096, 8);
  spec.warmup = 300 * kMillisecond;
  spec.runtime = runtime;
  const auto wall0 = std::chrono::steady_clock::now();
  auto r = cluster.run(spec);
  if (core::BenchJson::enabled()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall0)
            .count();
    core::BenchRecord rec;
    rec.bench = "fig13_transport";
    rec.config = rung.name;
    rec.nodes = nodes;
    rec.osds = nodes * cfg.osds_per_node;
    rec.metric = "read_iops";
    rec.value = r.read_iops;
    rec.wall_ms = wall_ms;
    rec.events = cluster.simulation().executed_events();
    rec.events_per_wall_sec = wall_ms > 0 ? double(rec.events) / (wall_ms / 1e3) : 0;
    rec.sim_ns = cluster.simulation().now();
    rec.sim_ns_per_wall_ns = wall_ms > 0 ? double(rec.sim_ns) / (wall_ms * 1e6) : 0;
    rec.max_node_cpu = r.max_osd_node_cpu;
    core::BenchJson::record(rec);
  }
  Point p;
  p.iops = r.read_iops;
  p.cpu = r.max_osd_node_cpu;
  p.occupancy = r.net_batch_occupancy;
  p.shard_wakeups = r.net_shard_wakeups;
  return p;
}

/// Runs the ladder at one cluster size; returns IOPS by rung name.
std::vector<std::pair<std::string, double>> sweep(unsigned nodes, Time runtime) {
  std::printf("\n--- 4K random read, %u nodes (%u OSDs) ---\n", nodes, nodes * 4);
  Table t({"transport", "IOPS", "vs optimized", "max node CPU", "msgs/frame", "shard wakeups"});
  std::vector<std::pair<std::string, double>> out;
  double optimized = 0.0;
  for (const auto& rung : ladder()) {
    const Point p = run_rung(rung, nodes, runtime);
    if (std::strcmp(rung.name, "optimized") == 0) optimized = p.iops;
    t.row({rung.name, Table::kiops(p.iops),
           optimized > 0 ? Table::num(p.iops / optimized, 2) + "x" : "-",
           Table::num(p.cpu, 2), Table::num(p.occupancy, 2),
           std::to_string(p.shard_wakeups)});
    out.emplace_back(rung.name, p.iops);
  }
  t.print();
  return out;
}

double rung_iops(const std::vector<std::pair<std::string, double>>& v, const char* name) {
  for (const auto& [n, iops] : v) {
    if (n == name) return iops;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("Fig.13: transport ladder beyond SimpleMessenger (clean state)%s\n",
              smoke ? " [smoke]" : "");

  if (smoke) {
    // Small and fast: one 16-OSD ladder, short runtime. The assertion is the
    // point — the new transports must never lose to the community floor.
    const auto r = sweep(4, 400 * kMillisecond);
    const double community = rung_iops(r, "community");
    const double sb = rung_iops(r, "sharded+batched");
    if (sb < community) {
      std::fprintf(stderr, "FAIL: sharded+batched (%.0f IOPS) < community (%.0f IOPS)\n", sb,
                   community);
      return 1;
    }
    std::printf("\nsmoke OK: sharded+batched (%.0fK) >= community (%.0fK) at 16 OSDs\n",
                sb / 1e3, community / 1e3);
    return 0;
  }

  sweep(4, 1000 * kMillisecond);
  const auto r16 = sweep(16, 1000 * kMillisecond);
  const double optimized = rung_iops(r16, "optimized");
  const double sb = rung_iops(r16, "sharded+batched");
  std::printf(
      "\nthe ladder breaks the Fig. 12 ceiling: sharding removes the per-connection\n"
      "receive tax that capped 16-node 4K random read; batching amortizes per-frame\n"
      "CPU; bypass removes the kernel stack entirely.\n");
  if (sb <= optimized) {
    std::fprintf(stderr, "FAIL: sharded+batched (%.0f IOPS) <= optimized (%.0f IOPS) at 16 nodes\n",
                 sb, optimized);
    return 1;
  }
  return 0;
}
