// Figure 9 reproduction: "Performance improvement with clean state SSDs
// (fio, direct, 4K random write)" — the ablation ladder. Each bar adds one
// optimization group on top of the previous:
//
//   community -> +lock-opt -> +throttle/tuning -> +non-blocking logging
//   -> +light transactions (== AFCeph)
//
// Paper shape: every step contributes, cumulative improvement > 2x.

#include <cstdio>

#include "afceph.h"

using namespace afc;

int main() {
  std::printf("Fig.9: optimization ladder, clean-state SSDs, 4K random write\n\n");

  Table t({"configuration", "IOPS", "mean lat (ms)", "gain vs prev", "gain vs community"});
  double base = 0.0, prev = 0.0;
  for (int step = 0; step <= 4; step++) {
    core::ClusterConfig cfg;
    cfg.profile = core::Profile::ladder(step);
    cfg.sustained = false;  // clean state
    cfg.vms = 40;
    core::ClusterSim cluster(cfg);
    auto spec = client::WorkloadSpec::rand_write(4096, 16);
    spec.warmup = 300 * kMillisecond;
    spec.runtime = 1500 * kMillisecond;
    auto r = cluster.run(spec);
    if (step == 0) base = r.write_iops;
    t.row({core::Profile::ladder_name(step), Table::kiops(r.write_iops),
           Table::num(r.write_lat_ms, 2),
           step == 0 ? "-" : "+" + Table::num((r.write_iops / prev - 1.0) * 100.0, 0) + "%",
           Table::num(r.write_iops / base, 2) + "x"});
    prev = r.write_iops;
  }
  t.print();
  std::printf("\npaper: each optimization contributes; total improvement > 2x.\n");
  return 0;
}
