// Figure 4 reproduction: "Performance comparison (Log vs No log)".
//
// Setup per the paper: PG-lock minimization and system tuning already
// applied (ladder step 2), 4K random writes, long run. Two curves:
// logging ON (blocking dout) vs logging OFF. Paper shapes:
//  * No-log holds a high plateau for a few seconds (point A), then
//    fluctuation begins (point B) as the filestore queue grows — the
//    filestore cannot apply as fast as ops arrive, and the throttle stalls
//    propagate back;
//  * Log-on runs visibly lower from the start (dout is on the critical
//    path).

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

core::RunResult run_case(bool logging) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::ladder(2);  // +lock, +throttle/tuning
  cfg.profile.logging_enabled = logging;
  cfg.profile.name = logging ? "log" : "no-log";
  cfg.sustained = false;  // fresh SSDs at t=0...
  // ...but the drives' pre-erased pools run out mid-run: GC begins and the
  // filestore stops keeping up — the paper's "point B".
  cfg.ssd.clean_budget_bytes = 400 * kMiB;
  cfg.vms = 80;
  core::ClusterSim cluster(cfg);
  auto spec = client::WorkloadSpec::rand_write(4096, 16);
  spec.warmup = 0;
  spec.runtime = 10 * kSecond;
  return cluster.run(spec);
}

}  // namespace

int main() {
  std::printf("Fig.4: Log vs No log, 4K randwrite (lock-opt + tuning applied, sustained)\n\n");
  auto with_log = run_case(true);
  auto no_log = run_case(false);

  Table t({"t (s)", "Log IOPS", "No-log IOPS"});
  const std::size_t buckets = std::max(with_log.write_series.size(), no_log.write_series.size());
  for (std::size_t i = 0; i < buckets; i += 2) {  // 200ms stride
    auto rate = [&](const TimeSeries& s) {
      return i < s.size() ? Table::kiops(s.rate(i)) : std::string("-");
    };
    t.row({Table::num(double(i) * 0.1, 1), rate(with_log.write_series),
           rate(no_log.write_series)});
  }
  t.print();

  const std::size_t half = no_log.write_series.size() / 2;
  std::printf("\nsummary (paper: no-log holds a high plateau, then fluctuation after point B):\n");
  std::printf("  log   : %8.0f IOPS overall, fluctuation (CoV) %.3f\n", with_log.write_iops,
              with_log.write_cov);
  std::printf("  no-log: %8.0f IOPS overall, fluctuation (CoV) %.3f\n", no_log.write_iops,
              no_log.write_cov);
  std::printf("  no-log first fifth vs last fifth: %.0f -> %.0f IOPS (point B onset)\n",
              no_log.write_series.mean_rate(2, no_log.write_series.size() / 5),
              no_log.write_series.mean_rate(no_log.write_series.size() * 4 / 5, ~0u));
  std::printf("  no-log CoV first fifth %.3f -> last fifth %.3f\n",
              no_log.write_series.cov(2, no_log.write_series.size() / 5),
              no_log.write_series.cov(no_log.write_series.size() * 4 / 5, ~0u));
  return 0;
}
