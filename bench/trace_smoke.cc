// Tracer smoke bench: drive a small mixed 4K workload (70% write / 30%
// read) through a full AFCeph cluster with the op tracer enabled, print the
// collector's per-stage summary, and export the Chrome trace JSON. This is
// the quickest end-to-end exercise of every instrumented boundary — client
// submit, messenger wire, dispatch throttle, OP_WQ, PG ordering, journal,
// filestore apply, KV writes, replication — and the file scripts/check.sh
// validates for well-formedness.
//
// The collector is installed explicitly, so the bench traces with or
// without AFC_SIM_TRACE; AFC_SIM_TRACE_OUT still selects the output path
// (default trace_smoke.json). Exit status is non-zero if any span pairing
// was mismatched or the export failed.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "afceph.h"

using namespace afc;

int main() {
  trace::Collector collector;
  trace::Collector::install(&collector);

  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.sustained = true;
  cfg.vms = 8;
  core::ClusterSim cluster(cfg);

  auto spec = client::WorkloadSpec::rand_write(4096, 8);
  spec.write_fraction = 0.7;  // mixed load: reads exercise osd.read_op too
  spec.warmup = 50 * kMillisecond;
  spec.runtime = 300 * kMillisecond;
  auto r = cluster.run(spec);

  std::printf("trace smoke: mixed 70/30 4K random, %zu VMs, AFCeph profile\n",
              cluster.vm_count());
  std::printf("write %.0f IOPS (mean %.2f ms) / read %.0f IOPS (mean %.2f ms)\n\n",
              r.write_iops, r.write_lat_ms, r.read_iops, r.read_lat_ms);
  std::printf("%s", collector.summary().c_str());
  std::printf("\nspans recorded=%llu dropped=%llu mismatched=%llu\n",
              static_cast<unsigned long long>(collector.spans_recorded()),
              static_cast<unsigned long long>(collector.spans_dropped()),
              static_cast<unsigned long long>(collector.mismatched()));

  const char* out = std::getenv("AFC_SIM_TRACE_OUT");
  const std::string path = (out != nullptr && out[0] != '\0') ? out : "trace_smoke.json";
  const bool exported = collector.export_chrome_json_file(path);
  std::printf("chrome trace %s %s (load in chrome://tracing or ui.perfetto.dev)\n",
              exported ? "written to" : "FAILED to write", path.c_str());

  trace::Collector::install(nullptr);
  return (collector.mismatched() == 0 && exported) ? 0 : 1;
}
