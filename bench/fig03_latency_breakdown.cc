// Figure 3 reproduction: write-path latency breakdown for community Ceph
// under 4K random-write load, traced through the stages of Fig. 2(b):
//
//   (1) op dequeued by OP_WQ  (2) submitted to PG backend (repops sent,
//   txn prepared — under PG lock)  (3) journal queued (throttles passed —
//   under PG lock)  (4) journal write durable  (5) commit processed at the
//   PG backend (finisher, PG lock)  (6) replica commits processed
//   (7) ack sent to the client.
//
// Paper shapes: total ~17 ms under load with ~9 ms attributable to PG-lock
// waiting (queue wait + lock convoys + throttle waits held under the lock);
// journal completion and replica-ack processing each add ~1 ms of
// lock-bound delay. We print the same breakdown for AFCeph to show the
// lock-bound stages collapsing.

#include <array>
#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

// Stage labels come from the shared table (common/stage_names.h), the same
// strings the trace collector interns — bench output and trace JSON cannot
// drift apart.

void run_profile(const core::Profile& profile) {
  core::ClusterConfig cfg;
  cfg.profile = profile;
  cfg.sustained = true;
  cfg.vms = 64;
  core::ClusterSim cluster(cfg);
  auto spec = client::WorkloadSpec::rand_write(4096, 16);
  spec.warmup = 300 * kMillisecond;
  spec.runtime = 1200 * kMillisecond;
  auto r = cluster.run(spec);

  // Per-stage means: with AFC_SIM_TRACE set this bench is a thin consumer of
  // the trace collector's histograms; otherwise it reads the OSDs' merged
  // boundary histograms. The two sources see the identical records (the OSD
  // mirrors its stamps into the collector), so the table is the same either
  // way — tracing only adds the exported span file.
  trace::Collector* tr = cluster.tracer();
  std::array<double, osd::kStageCount> stage_ms{};
  double total_ms = r.write_path_total_ms;
  for (unsigned s = 1; s < osd::kStageCount; s++) {
    stage_ms[s] = tr != nullptr ? tr->stage_mean_ms(kWriteStageNames[s]) : r.stage_ms[s];
  }
  if (tr != nullptr) total_ms = tr->stage_mean_ms(stage::kWriteOp);

  std::printf("\n%s  (%.0f IOPS, client mean %.2f ms)\n", profile.name.c_str(), r.write_iops,
              r.write_lat_ms);
  Table t({"stage", "mean delta (ms)"});
  double cum = 0.0;
  for (unsigned s = 1; s < osd::kStageCount; s++) {
    cum += stage_ms[s];
    t.row({kWriteStageNames[s], Table::num(stage_ms[s], 2)});
  }
  t.row({"TOTAL (OSD write path)", Table::num(total_ms, 2)});
  t.print();

  // PG-lock-attributable time: queue/lock wait before processing, the
  // lock-held throttle waits, and the lock-bound completion/ack stages.
  const double lock_bound = stage_ms[1] + stage_ms[3] + stage_ms[5] + stage_ms[7];
  std::printf("PG-lock-bound stages (1)+(3)+(5)+(7): %.2f ms of %.2f ms total\n", lock_bound,
              total_ms);
  std::printf("measured PG-lock wait inside OSDs: %.1f ms per op average\n",
              r.write_iops > 0 ? to_ms(r.pg_lock_wait_ns) / (r.write_iops * 1.2) : 0.0);
}

}  // namespace

int main() {
  std::printf("Fig.3: write-path latency breakdown (4 nodes, rep=2, sustained, loaded)\n");
  run_profile(core::Profile::community());
  run_profile(core::Profile::afceph());
  return 0;
}
