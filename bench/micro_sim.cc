// Microbenchmark of the simulator event core (sim::Simulation's timing
// wheel) against an in-binary copy of the seed's binary-heap scheduler.
// Three pure-scheduler workloads, no storage model in the way:
//
//   hot_chain      - schedule/run ping-pong chains at event-queue cadence
//                    (0..10us horizons), the shape of sync.h wakeups and
//                    CPU grants;
//   mixed_horizons - pseudo-random horizons from 0 ns to 50 ms, the shape
//                    of device latencies + Nagle stalls + GC pauses, which
//                    exercises the wheel's levels and cascades;
//   cancel_heavy   - a work loop arming a 10 ms timeout per op and
//                    cancelling it on the next op (the CondVar::wait_for
//                    pattern). The wheel drops cancelled timers; the heap
//                    must execute them as tombstones.
//
// Prints JSON so BENCH_*.json tracking can diff events_per_sec_wall across
// PRs. AFC_SIM_PROFILE=1 additionally dumps the event-loop profiler for the
// wheel runs to stderr.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <vector>

#include "common/stats.h"
#include "sim/simulation.h"

using namespace afc;

namespace {

// --- seed-identical binary-heap scheduler (the "before") --------------------

class HeapSim {
 public:
  using TimerId = std::uint64_t;

  Time now() const { return now_; }

  void schedule_after(Time d, sim::EventFn fn) { schedule_at(now_ + d, fn); }

  /// Cancellable timers the only way a heap without handles can do them:
  /// the event stays queued and executes as a tombstone that checks a flag.
  TimerId arm(Time d, std::uint64_t* fired) {
    flags_.push_back(0);
    const TimerId id = flags_.size() - 1;
    schedule_after(d, [this, id, fired] {
      if (!flags_[id]) (*fired)++;
    });
    return id;
  }
  void disarm(TimerId id) { flags_[id] = 1; }

  void run() {
    while (!events_.empty()) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.t;
      executed_++;
      ev.fn();
    }
  }

  std::uint64_t executed_events() const { return executed_; }
  bool profiling_enabled() const { return false; }
  void profile_dump(const char*) const {}

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    sim::EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void schedule_at(Time t, sim::EventFn fn) {
    if (t < now_) t = now_;
    events_.push(Event{t, seq_++, fn});
  }

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::vector<char> flags_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

// --- timing-wheel adapter (the "after") -------------------------------------

class WheelSim {
 public:
  using TimerId = sim::TimerToken;

  WheelSim() {
    if (const char* v = std::getenv("AFC_SIM_PROFILE"); v != nullptr && v[0] != '\0' && v[0] != '0') {
      sim_.enable_profiling();
    }
  }

  Time now() const { return sim_.now(); }
  void schedule_after(Time d, sim::EventFn fn) { sim_.schedule_after(d, fn, "bench.event"); }
  TimerId arm(Time d, std::uint64_t* fired) {
    return sim_.schedule_after(d, [fired] { (*fired)++; }, "bench.timeout");
  }
  void disarm(TimerId id) { sim_.cancel(id); }
  void run() { sim_.run(); }
  std::uint64_t executed_events() const { return sim_.executed_events(); }
  bool profiling_enabled() const { return sim_.profiling_enabled(); }
  void profile_dump(const char* scenario) const {
    Counters prof;
    sim_.profile_into(prof);
    std::fprintf(stderr, "--- sim profile: %s ---\n%s", scenario, prof.to_string().c_str());
  }

 private:
  sim::Simulation sim_;
};

// --- scenarios ---------------------------------------------------------------

template <class Sim>
struct Chain {
  Sim* sim;
  std::uint64_t* budget;
  unsigned i = 0;
  void step() {
    static constexpr Time kDeltas[4] = {0, 50, 1 * kMicrosecond, 10 * kMicrosecond};
    if (*budget == 0) return;
    (*budget)--;
    sim->schedule_after(kDeltas[i++ & 3], [this] { step(); });
  }
};

template <class Sim>
std::uint64_t scenario_hot_chain(Sim& sim, std::uint64_t events) {
  std::uint64_t budget = events;
  std::vector<Chain<Sim>> chains(64, Chain<Sim>{&sim, &budget});
  for (auto& c : chains) c.step();
  sim.run();
  return sim.executed_events();
}

template <class Sim>
struct MixedActor {
  Sim* sim;
  std::uint64_t* budget;
  std::uint32_t state;
  void step() {
    if (*budget == 0) return;
    (*budget)--;
    state = state * 1664525u + 1013904223u;  // LCG: identical horizon stream per actor
    // Horizons from same-tick to 50 ms: every wheel level below the overflow
    // map gets traffic, and far timers cascade down as the clock approaches.
    static constexpr Time kHorizons[8] = {0,
                                          200,
                                          3 * kMicrosecond,
                                          14 * kMicrosecond,
                                          90 * kMicrosecond,
                                          800 * kMicrosecond,
                                          6 * kMillisecond,
                                          50 * kMillisecond};
    sim->schedule_after(kHorizons[state >> 29], [this] { step(); });
  }
};

template <class Sim>
std::uint64_t scenario_mixed_horizons(Sim& sim, std::uint64_t events) {
  std::uint64_t budget = events;
  std::vector<MixedActor<Sim>> actors;
  actors.reserve(256);
  for (std::uint32_t a = 0; a < 256; a++) {
    actors.push_back(MixedActor<Sim>{&sim, &budget, 0x9e3779b9u * (a + 1)});
  }
  for (auto& a : actors) a.step();
  sim.run();
  return sim.executed_events();
}

template <class Sim>
struct CancelActor {
  Sim* sim;
  std::uint64_t* budget;
  std::uint64_t* timeouts_fired;
  typename Sim::TimerId pending{};
  bool armed = false;
  void step() {
    if (armed) sim->disarm(pending);  // previous op "completed in time"
    if (*budget == 0) return;
    (*budget)--;
    pending = sim->arm(10 * kMillisecond, timeouts_fired);
    armed = true;
    sim->schedule_after(1 * kMicrosecond, [this] { step(); });
  }
};

template <class Sim>
std::uint64_t scenario_cancel_heavy(Sim& sim, std::uint64_t ops, std::uint64_t* timeouts_fired) {
  std::uint64_t budget = ops;
  std::vector<CancelActor<Sim>> actors(32, CancelActor<Sim>{&sim, &budget, timeouts_fired});
  for (auto& a : actors) a.step();
  sim.run();
  return sim.executed_events();
}

// --- harness -----------------------------------------------------------------

struct Result {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec_wall = 0.0;
};

template <class Fn>
Result timed(Fn fn) {
  const auto t0 = std::chrono::steady_clock::now();
  Result r;
  r.events = fn();
  r.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  r.events_per_sec_wall = r.events / (r.wall_ms / 1000.0);
  return r;
}

void print_pair(const char* name, const Result& wheel, const Result& heap, bool last) {
  std::printf("    \"%s\": {\n", name);
  std::printf("      \"wheel\": {\"events\": %llu, \"wall_ms\": %.1f, \"events_per_sec_wall\": %.0f},\n",
              (unsigned long long)wheel.events, wheel.wall_ms, wheel.events_per_sec_wall);
  std::printf("      \"heap\": {\"events\": %llu, \"wall_ms\": %.1f, \"events_per_sec_wall\": %.0f},\n",
              (unsigned long long)heap.events, heap.wall_ms, heap.events_per_sec_wall);
  std::printf("      \"speedup_wall\": %.2f\n", heap.wall_ms / wheel.wall_ms);
  std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  constexpr std::uint64_t kHotEvents = 8'000'000;
  constexpr std::uint64_t kMixedEvents = 4'000'000;
  constexpr std::uint64_t kCancelOps = 2'000'000;

  Result w_hot, h_hot, w_mixed, h_mixed, w_cancel, h_cancel;
  std::uint64_t w_fired = 0, h_fired = 0;

  {
    WheelSim s;
    w_hot = timed([&] { return scenario_hot_chain(s, kHotEvents); });
    if (s.profiling_enabled()) s.profile_dump("hot_chain");
  }
  {
    HeapSim s;
    h_hot = timed([&] { return scenario_hot_chain(s, kHotEvents); });
  }
  {
    WheelSim s;
    w_mixed = timed([&] { return scenario_mixed_horizons(s, kMixedEvents); });
    if (s.profiling_enabled()) s.profile_dump("mixed_horizons");
  }
  {
    HeapSim s;
    h_mixed = timed([&] { return scenario_mixed_horizons(s, kMixedEvents); });
  }
  {
    WheelSim s;
    w_cancel = timed([&] { return scenario_cancel_heavy(s, kCancelOps, &w_fired); });
    if (s.profiling_enabled()) s.profile_dump("cancel_heavy");
  }
  {
    HeapSim s;
    h_cancel = timed([&] { return scenario_cancel_heavy(s, kCancelOps, &h_fired); });
  }

  std::printf("{\n  \"bench\": \"micro_sim\",\n  \"scenarios\": {\n");
  print_pair("hot_chain", w_hot, h_hot, false);
  print_pair("mixed_horizons", w_mixed, h_mixed, false);
  print_pair("cancel_heavy", w_cancel, h_cancel, true);
  std::printf("  },\n");
  // The wheel drops cancelled timeouts; the heap executes them as tombstones
  // (visible as extra events above). Neither may fire a cancelled timeout.
  std::printf("  \"cancel_timeouts_fired\": {\"wheel\": %llu, \"heap\": %llu},\n",
              (unsigned long long)w_fired, (unsigned long long)h_fired);
  const double total_wheel = w_hot.wall_ms + w_mixed.wall_ms + w_cancel.wall_ms;
  const double total_heap = h_hot.wall_ms + h_mixed.wall_ms + h_cancel.wall_ms;
  std::printf("  \"total_speedup_wall\": %.2f\n}\n", total_heap / total_wheel);
  return 0;
}
