// Soak entry point for the rt concurrency stress harness: same suite as
// tests/stress_rt (src/rt/stress.cc) with heavier defaults — more
// iterations and a larger per-iteration op multiplier — for long-running
// shakeouts of the src/rt/ lifecycle contract on real hardware.

#include "rt/stress.h"

int main(int argc, char** argv) {
  afc::rt::StressOptions defaults;
  defaults.seed = 1;
  defaults.iterations = 200;
  defaults.scale = 4;
  defaults.verbose = true;
  return afc::rt::run_stress(afc::rt::parse_stress_args(argc, argv, defaults));
}
