// Figure 17 (beyond the paper): self-detected failure handling.
//
// The paper's cluster assumes an oracle: the moment an OSD dies, every
// client and peer knows. This harness measures the detected-mode stack
// instead — OSD-to-OSD heartbeats, monitor quorum arbitration and
// epoch-fenced map distribution — on the two axes that matter:
//
//   fault-free tax  a healthy cluster under load: the heartbeat/beacon
//                   plane must never produce a mark-down (no false
//                   positives), and the paying workload keeps running;
//   detection lag   crash one OSD mid-run: the monitor must mark it down
//                   (and republish the map, re-routing writers) within
//                   hb_grace + 2*hb_interval of the crash — one missed
//                   ping to notice, one report round to arbitrate.
//
// `--smoke` runs both points short and exits nonzero unless the false-down
// count is zero and detection lands inside the bound (check.sh gate).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "afceph.h"
#include "core/bench_json.h"

using namespace afc;

namespace {

// Same small fleet as the chaos soak: 4 nodes x 1 OSD, 2-rep, watchdog and
// client retries on, so a crash exercises the whole degraded-write path.
core::ClusterConfig membership_config(std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = 4;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 2;
  cfg.vms = 4;
  cfg.pg_num = 64;
  cfg.replication = 2;
  cfg.min_size = 1;
  cfg.sustained = false;
  cfg.image_size = 1 * kGiB;
  cfg.osd.rep_timeout = 40 * kMillisecond;
  cfg.osd.rep_retries = 2;
  cfg.client_op_timeout = 250 * kMillisecond;
  cfg.client_op_retries = 4;
  cfg.seed = seed;
  cfg.membership.mode = mon::MembershipMode::kDetected;
  return cfg;
}

struct Point {
  double write_iops = 0.0;
  std::uint64_t hb_sent = 0;
  std::uint64_t hb_timeouts = 0;
  std::uint64_t markdowns = 0;
  std::uint64_t false_downs = 0;
  std::uint64_t map_deltas = 0;
  std::uint64_t fenced = 0;       // stale ops rejected (client + rep)
  double detect_ms = -1.0;        // crash -> mark-down latency; -1 = none
};

/// One detected-mode run. Heartbeat/beacon timers re-arm forever, so the
/// drain is a fixed window (run_until), then close_all() cancels the
/// periodic plane and the residue runs dry.
Point run_point(const char* config_name, std::uint64_t seed, Time runtime, Time crash_at,
                std::uint32_t crash_osd) {
  core::ClusterConfig cfg = membership_config(seed);
  core::ClusterSim cluster(cfg);
  if (crash_at > 0) {
    fault::FaultPlan plan;
    plan.crash(crash_at, crash_osd);
    cluster.install_faults(plan);
  }

  const auto wall0 = std::chrono::steady_clock::now();
  client::RunStats stats;
  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.warmup = 100 * kMillisecond;
  spec.runtime = runtime;
  stats.window_start = spec.warmup;
  stats.window_end = spec.warmup + spec.runtime;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(spec, stats.window_end, &stats);
  }
  cluster.simulation().run_until(stats.window_end);
  cluster.simulation().run_until(stats.window_end + 2 * kSecond);  // drain window

  Point p;
  p.write_iops = stats.write_iops();
  const mon::Monitor& mon = *cluster.monitor();
  p.markdowns = mon.counters().get("mon.markdowns");
  p.false_downs = mon.counters().get("mon.false_downs");
  p.map_deltas = mon.counters().get("mon.map_deltas");
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    const auto& c = cluster.osd(o).counters();
    p.hb_sent += c.get("osd.hb_sent");
    p.hb_timeouts += c.get("osd.hb_timeouts");
    p.fenced += c.get("osd.fenced_ops") + c.get("osd.fenced_rep_ops");
  }
  if (crash_at > 0) {
    for (const auto& e : mon.markdowns()) {
      if (e.osd == crash_osd && e.at >= crash_at) {
        p.detect_ms = double(e.at - crash_at) / double(kMillisecond);
        break;
      }
    }
  }

  if (core::BenchJson::enabled()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall0)
            .count();
    core::BenchRecord rec;
    rec.bench = "fig17_membership";
    rec.config = config_name;
    rec.nodes = cfg.osd_nodes;
    rec.osds = cfg.osd_nodes * cfg.osds_per_node;
    rec.metric = crash_at > 0 ? "detect_ms" : "write_iops";
    rec.value = crash_at > 0 ? p.detect_ms : p.write_iops;
    rec.wall_ms = wall_ms;
    rec.events = cluster.simulation().executed_events();
    rec.events_per_wall_sec = wall_ms > 0 ? double(rec.events) / (wall_ms / 1e3) : 0;
    rec.sim_ns = cluster.simulation().now();
    rec.sim_ns_per_wall_ns = wall_ms > 0 ? double(rec.sim_ns) / (wall_ms * 1e6) : 0;
    core::BenchJson::record(rec);
  }

  cluster.close_all();
  cluster.simulation().run();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("Fig.17: self-detected membership (heartbeats + monitor + fencing)%s\n",
              smoke ? " [smoke]" : "");

  const core::ClusterConfig cfg = membership_config(1);
  // One missed grace period to suspect, one heartbeat round for the second
  // reporter; the monitor's arbitration itself is message-latency noise.
  const double bound_ms =
      double(cfg.membership.hb_grace + 2 * cfg.membership.hb_interval) / double(kMillisecond);
  const Time runtime = smoke ? 900 * kMillisecond : 3 * kSecond;
  const Time crash_at = 300 * kMillisecond;

  const Point healthy = run_point("fault-free", 1, runtime, /*crash_at=*/0, 0);
  const Point crash = run_point("crash", 2, runtime, crash_at, /*crash_osd=*/1);

  Table t({"scenario", "write IOPS", "hb sent", "hb timeouts", "markdowns", "false downs",
           "map deltas", "fenced", "detect ms"});
  t.row({"fault-free", Table::kiops(healthy.write_iops), std::to_string(healthy.hb_sent),
         std::to_string(healthy.hb_timeouts), std::to_string(healthy.markdowns),
         std::to_string(healthy.false_downs), std::to_string(healthy.map_deltas),
         std::to_string(healthy.fenced), "-"});
  t.row({"crash osd.1", Table::kiops(crash.write_iops), std::to_string(crash.hb_sent),
         std::to_string(crash.hb_timeouts), std::to_string(crash.markdowns),
         std::to_string(crash.false_downs), std::to_string(crash.map_deltas),
         std::to_string(crash.fenced), Table::num(crash.detect_ms, 1)});
  t.print();

  int rc = 0;
  if (healthy.hb_sent == 0) {
    std::fprintf(stderr, "FAIL: fault-free run sent no heartbeats (plane not armed)\n");
    rc = 1;
  }
  if (healthy.markdowns != 0 || healthy.false_downs != 0) {
    std::fprintf(stderr, "FAIL: fault-free run marked an OSD down (%llu, false %llu)\n",
                 (unsigned long long)healthy.markdowns,
                 (unsigned long long)healthy.false_downs);
    rc = 1;
  }
  if (crash.detect_ms < 0) {
    std::fprintf(stderr, "FAIL: crashed OSD was never marked down\n");
    rc = 1;
  } else if (crash.detect_ms > bound_ms) {
    std::fprintf(stderr, "FAIL: detection took %.1f ms (bound %.1f ms)\n", crash.detect_ms,
                 bound_ms);
    rc = 1;
  }
  if (crash.false_downs != 0) {
    std::fprintf(stderr, "FAIL: crash run marked a healthy OSD down (%llu)\n",
                 (unsigned long long)crash.false_downs);
    rc = 1;
  }
  if (crash.map_deltas == 0) {
    std::fprintf(stderr, "FAIL: mark-down published no map delta (writers never re-routed)\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\n%s OK: 0 false downs; crash detected + republished in %.1f ms "
                "(bound %.1f ms)\n",
                smoke ? "smoke" : "fig17", crash.detect_ms, bound_ms);
  }
  return rc;
}
