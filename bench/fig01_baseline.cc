// Figure 1 reproduction: unmodified (community) Ceph on all-flash, 4 nodes x
// 4 OSDs, replication 2, sustained state. 4K random write and random read
// across client thread counts.
//
// Paper shapes to match:
//   * random write IOPS saturates around ~16K no matter how many client
//     threads are added, while latency climbs steeply past ~32 threads;
//   * random read shows HIGH latency at LOW thread counts (Nagle + batching
//     design) and only reaches sensible latency at 64+ threads.

#include <cstdio>

#include "afceph.h"

using namespace afc;

namespace {

core::RunResult run_case(bool write, unsigned threads) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::community();
  cfg.sustained = true;
  // The paper's fio "threads" each keep ~8 I/Os in flight (threads x
  // iodepth); spread the resulting outstanding I/O over 16 VMs.
  cfg.vms = 16;
  const unsigned depth = std::max(1u, threads * 8 / cfg.vms);
  auto spec = write ? client::WorkloadSpec::rand_write(4096, depth)
                    : client::WorkloadSpec::rand_read(4096, depth);
  spec.warmup = 300 * kMillisecond;
  spec.runtime = 1200 * kMillisecond;
  core::ClusterSim cluster(cfg);
  return cluster.run(spec);
}

}  // namespace

int main() {
  std::printf("Fig.1: community Ceph on SSDs (4 nodes, 16 OSDs, rep=2, sustained)\n\n");

  Table wt({"threads", "4K randwrite IOPS", "mean lat (ms)", "p99 (ms)"});
  for (unsigned threads : {4u, 8u, 16u, 32u, 64u, 128u}) {
    auto r = run_case(true, threads);
    wt.row({std::to_string(threads), Table::kiops(r.write_iops), Table::num(r.write_lat_ms, 2),
            Table::num(r.write_p99_ms, 2)});
  }
  wt.print();

  std::printf("\n");
  Table rt({"threads", "4K randread IOPS", "mean lat (ms)", "p99 (ms)"});
  for (unsigned threads : {4u, 8u, 16u, 32u, 64u, 128u}) {
    auto r = run_case(false, threads);
    rt.row({std::to_string(threads), Table::kiops(r.read_iops), Table::num(r.read_lat_ms, 2),
            Table::num(r.read_p99_ms, 2)});
  }
  rt.print();
  return 0;
}
