// Tests for the BENCH_*.json trajectory appender: document creation,
// append splicing, foreign-file refusal, and the crash-safe
// write-temp-then-rename protocol.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/bench_json.h"

namespace afc::core {
namespace {

/// Scoped AFC_BENCH_JSON pointing at a scratch file; cleans up both the
/// file and its .tmp sibling.
struct JsonEnv {
  std::string file;

  explicit JsonEnv(std::string f) : file(std::move(f)) {
    std::remove(file.c_str());
    std::remove((file + ".tmp").c_str());
    ::setenv("AFC_BENCH_JSON", file.c_str(), 1);
    ::unsetenv("AFC_BENCH_LABEL");
  }
  ~JsonEnv() {
    ::unsetenv("AFC_BENCH_JSON");
    std::remove(file.c_str());
    std::remove((file + ".tmp").c_str());
  }

  std::string slurp() const {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  bool tmp_exists() const { return bool(std::ifstream(file + ".tmp")); }
};

BenchRecord make_record(const char* bench) {
  BenchRecord r;
  r.bench = bench;
  r.config = "cfg";
  r.metric = "iops";
  r.value = 1.5;
  return r;
}

TEST(BenchJson, DisabledIsNoOp) {
  ::unsetenv("AFC_BENCH_JSON");
  EXPECT_FALSE(BenchJson::enabled());
  EXPECT_TRUE(BenchJson::record(make_record("x")));
}

TEST(BenchJson, CreatesDocumentAndAppends) {
  JsonEnv env("bench_json_test.json");
  ASSERT_TRUE(BenchJson::enabled());
  ASSERT_TRUE(BenchJson::record(make_record("first")));
  ASSERT_TRUE(BenchJson::record(make_record("second")));
  const std::string body = env.slurp();
  EXPECT_EQ(body.rfind("{\"schema\":\"afc-bench-v1\",\"runs\":[", 0), 0u);
  EXPECT_NE(body.find("\"bench\":\"first\""), std::string::npos);
  EXPECT_NE(body.find("\"bench\":\"second\""), std::string::npos);
  EXPECT_EQ(body.substr(body.size() - 3), "]}\n");
  // The temp file never outlives a successful append.
  EXPECT_FALSE(env.tmp_exists());
}

TEST(BenchJson, RefusesForeignFile) {
  JsonEnv env("bench_json_foreign.json");
  {
    std::ofstream out(env.file, std::ios::binary);
    out << "not an afc-bench-v1 document";
  }
  EXPECT_FALSE(BenchJson::record(make_record("x")));
  // Refusal leaves the foreign file byte-identical and no temp debris.
  EXPECT_EQ(env.slurp(), "not an afc-bench-v1 document");
  EXPECT_FALSE(env.tmp_exists());
}

TEST(BenchJson, StaleTempFileIsReplacedNotAppendedTo) {
  JsonEnv env("bench_json_stale.json");
  {
    // Debris from a crash mid-append: a torn temp file. The next append
    // must ignore it and still produce a complete document.
    std::ofstream out(env.file + ".tmp", std::ios::binary);
    out << "{\"schema\":\"afc-bench-v1\",\"runs\":[\n{\"bench\":\"torn";
  }
  ASSERT_TRUE(BenchJson::record(make_record("fresh")));
  const std::string body = env.slurp();
  EXPECT_NE(body.find("\"bench\":\"fresh\""), std::string::npos);
  EXPECT_EQ(body.find("torn"), std::string::npos);
  EXPECT_EQ(body.substr(body.size() - 3), "]}\n");
  EXPECT_FALSE(env.tmp_exists());
}

}  // namespace
}  // namespace afc::core
