// Unit tests for the discrete-event simulation kernel (sim/): event
// ordering, coroutine tasks, synchronization primitives, channels, CPU pool.

#include <gtest/gtest.h>

#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/channel.h"
#include "sim/cpu.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace afc::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_after(30, [&] { order.push_back(3); });
  sim.schedule_after(10, [&] { order.push_back(1); });
  sim.schedule_after(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulation, EqualTimestampsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.schedule_after(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulation, NestedSchedulingAdvancesClock) {
  Simulation sim;
  Time inner_time = 0;
  sim.schedule_after(10, [&] {
    sim.schedule_after(15, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, 25u);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(10, [&] { fired++; });
  sim.schedule_after(100, [&] { fired++; });
  EXPECT_TRUE(sim.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, PastScheduleClampsToNow) {
  Simulation sim;
  Time when = ~Time(0);
  sim.schedule_after(100, [&] {
    sim.schedule_at(5, [&] { when = sim.now(); });  // in the "past"
  });
  sim.run();
  EXPECT_EQ(when, 100u);
}

TEST(CoTask, ReturnsValueToParent) {
  Simulation sim;
  int result = 0;
  auto child = [&]() -> CoTask<int> { co_return 42; };
  auto parent = [&]() -> CoTask<void> { result = co_await child(); };
  spawn(parent());
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(CoTask, DelayAdvancesVirtualTime) {
  Simulation sim;
  Time t1 = 0, t2 = 0;
  auto task = [&]() -> CoTask<void> {
    co_await delay(sim, 100);
    t1 = sim.now();
    co_await delay(sim, 250);
    t2 = sim.now();
  };
  spawn(task());
  sim.run();
  EXPECT_EQ(t1, 100u);
  EXPECT_EQ(t2, 350u);
}

TEST(CoTask, DeepChainCompletes) {
  Simulation sim;
  // Recursion through CoTask frames: verifies the symmetric-transfer chain
  // and frame cleanup at a depth that would be uncomfortable on the stack
  // if transfers recursed.
  struct Rec {
    static CoTask<int> down(Simulation& s, int n) {
      if (n == 0) co_return 0;
      co_await delay(s, 1);
      const int sub = co_await down(s, n - 1);
      co_return sub + 1;
    }
  };
  int result = -1;
  auto root = [&]() -> CoTask<void> { result = co_await Rec::down(sim, 500); };
  spawn(root());
  sim.run();
  EXPECT_EQ(result, 500);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Mutex, ProvidesMutualExclusion) {
  Simulation sim;
  Mutex mu(sim);
  int inside = 0;
  int max_inside = 0;
  auto worker = [&]() -> CoTask<void> {
    co_await mu.lock();
    inside++;
    max_inside = std::max(max_inside, inside);
    co_await delay(sim, 10);
    inside--;
    mu.unlock();
  };
  for (int i = 0; i < 5; i++) spawn(worker());
  sim.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(mu.acquisitions(), 5u);
  EXPECT_EQ(mu.contended_acquisitions(), 4u);
  EXPECT_FALSE(mu.is_locked());
}

TEST(Mutex, FifoHandoffOrder) {
  Simulation sim;
  Mutex mu(sim);
  std::vector<int> order;
  auto worker = [&](int id) -> CoTask<void> {
    co_await mu.lock();
    order.push_back(id);
    co_await delay(sim, 5);
    mu.unlock();
  };
  // Stagger arrivals so the queue order is deterministic.
  for (int i = 0; i < 4; i++) {
    sim.schedule_after(Time(i), [&, i] { spawn(worker(i)); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mutex, TracksWaitTime) {
  Simulation sim;
  Mutex mu(sim);
  auto holder = [&]() -> CoTask<void> {
    co_await mu.lock();
    co_await delay(sim, 100);
    mu.unlock();
  };
  auto waiter = [&]() -> CoTask<void> {
    co_await mu.lock();
    mu.unlock();
  };
  spawn(holder());
  spawn(waiter());
  sim.run();
  EXPECT_EQ(mu.total_wait_ns(), 100u);
}

TEST(Mutex, TryLockDoesNotBlock) {
  Simulation sim;
  Mutex mu(sim);
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(ScopedLock, ReleasesOnScopeExit) {
  Simulation sim;
  Mutex mu(sim);
  bool second_ran = false;
  auto first = [&]() -> CoTask<void> {
    auto guard = co_await ScopedLock::acquire(mu);
    co_await delay(sim, 10);
  };
  auto second = [&]() -> CoTask<void> {
    co_await mu.lock();
    second_ran = true;
    mu.unlock();
  };
  spawn(first());
  spawn(second());
  sim.run();
  EXPECT_TRUE(second_ran);
  EXPECT_FALSE(mu.is_locked());
}

TEST(Semaphore, WeightedFifo) {
  Simulation sim;
  Semaphore sem(sim, 10);
  std::vector<int> order;
  auto taker = [&](int id, std::uint64_t n, Time hold) -> CoTask<void> {
    co_await sem.acquire(n);
    order.push_back(id);
    co_await delay(sim, hold);
    sem.release(n);
  };
  // A big request queued first must not be starved by small ones behind it.
  spawn(taker(0, 8, 50));
  sim.schedule_after(1, [&] { spawn(taker(1, 8, 10)); });   // blocks (8 > 2 left)
  sim.schedule_after(2, [&] { spawn(taker(2, 1, 10)); });   // would fit, but FIFO
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Semaphore, CapacityResize) {
  Simulation sim;
  Semaphore sem(sim, 2);
  EXPECT_TRUE(sem.try_acquire(2));
  EXPECT_FALSE(sem.try_acquire(1));
  sem.set_capacity(5);
  EXPECT_TRUE(sem.try_acquire(3));
  sem.release(5);
  EXPECT_EQ(sem.available(), 5u);
}

TEST(Channel, FifoDelivery) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  auto consumer = [&]() -> CoTask<void> {
    for (;;) {
      auto v = co_await ch.pop();
      if (!v) break;
      got.push_back(*v);
    }
  };
  spawn(consumer());
  auto producer = [&]() -> CoTask<void> {
    for (int i = 0; i < 100; i++) co_await ch.push(i);
    ch.close();
  };
  spawn(producer());
  sim.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; i++) EXPECT_EQ(got[std::size_t(i)], i);
}

TEST(Channel, BoundedBlocksProducer) {
  Simulation sim;
  Channel<int> ch(sim, 2);
  int produced = 0;
  auto producer = [&]() -> CoTask<void> {
    for (int i = 0; i < 10; i++) {
      co_await ch.push(i);
      produced++;
    }
  };
  spawn(producer());
  sim.run_until(0);
  EXPECT_EQ(produced, 2);  // capacity reached, producer suspended
  auto consumer = [&]() -> CoTask<void> {
    for (int i = 0; i < 10; i++) {
      auto v = co_await ch.pop();
      EXPECT_TRUE(v.has_value());  // ASSERT_* returns, which coroutines forbid
      if (!v) co_return;
      EXPECT_EQ(*v, i);
    }
  };
  spawn(consumer());
  sim.run();
  EXPECT_EQ(produced, 10);
  EXPECT_GT(ch.blocked_pushes(), 0u);
}

TEST(Channel, CloseDrainsThenNullopt) {
  Simulation sim;
  Channel<int> ch(sim);
  ch.try_push(1);
  ch.try_push(2);
  ch.close();
  std::vector<int> got;
  bool saw_end = false;
  auto consumer = [&]() -> CoTask<void> {
    for (;;) {
      auto v = co_await ch.pop();
      if (!v) {
        saw_end = true;
        break;
      }
      got.push_back(*v);
    }
  };
  spawn(consumer());
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_TRUE(saw_end);
}

TEST(CondVar, NotifyOneWakesOneWaiter) {
  Simulation sim;
  CondVar cv(sim);
  int woken = 0;
  bool ready = false;
  auto waiter = [&]() -> CoTask<void> {
    while (!ready) co_await cv.wait();
    woken++;
  };
  spawn(waiter());
  spawn(waiter());
  sim.schedule_after(10, [&] {
    ready = true;
    cv.notify_one();
  });
  sim.run();
  // notify_one wakes one coroutine; since `ready` is now true it completes,
  // but the second stays suspended forever (no more notifies).
  EXPECT_EQ(woken, 1);
  EXPECT_EQ(cv.waiters(), 1u);
}

TEST(WaitGroup, JoinsAllTasks) {
  Simulation sim;
  WaitGroup wg(sim);
  int done = 0;
  Time joined_at = 0;
  for (int i = 1; i <= 3; i++) {
    wg.add(1);
    const Time d = Time(i) * 10;
    sim.schedule_after(0, [&, d] {
      spawn([](Simulation& s, WaitGroup& w, int& counter, Time dd) -> CoTask<void> {
        co_await delay(s, dd);
        counter++;
        w.done();
      }(sim, wg, done, d));
    });
  }
  auto joiner = [&]() -> CoTask<void> {
    co_await wg.wait();
    joined_at = sim.now();
  };
  spawn(joiner());
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(joined_at, 30u);
}

TEST(OneShot, WaitersReleaseOnSet) {
  Simulation sim;
  OneShot ev(sim);
  int released = 0;
  auto waiter = [&]() -> CoTask<void> {
    co_await ev.wait();
    released++;
  };
  spawn(waiter());
  spawn(waiter());
  sim.schedule_after(5, [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(released, 2);
  // Waiting after set() returns immediately.
  spawn(waiter());
  sim.run();
  EXPECT_EQ(released, 3);
}

TEST(CpuPool, SerializesBeyondCoreCount) {
  Simulation sim;
  CpuPool cpu(sim, 2);
  Time finished = 0;
  auto job = [&]() -> CoTask<void> {
    co_await cpu.consume(100);
    finished = sim.now();
  };
  for (int i = 0; i < 4; i++) spawn(job());
  sim.run();
  // 4 jobs x 100ns on 2 cores => makespan 200ns.
  EXPECT_EQ(finished, 200u);
  EXPECT_EQ(cpu.busy_ns(), 400u);
  EXPECT_DOUBLE_EQ(cpu.utilization(), 1.0);
}

TEST(CpuPool, ZeroCostIsFree) {
  Simulation sim;
  CpuPool cpu(sim, 1);
  auto job = [&]() -> CoTask<void> { co_await cpu.consume(0); };
  spawn(job());
  sim.run();
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Semaphore, CapacityShrinkTakesEffectAsUnitsDrain) {
  Simulation sim;
  Semaphore sem(sim, 4);
  EXPECT_TRUE(sem.try_acquire(4));
  sem.set_capacity(2);  // shrink while fully in use
  sem.release(4);
  EXPECT_EQ(sem.available(), 2u);
  EXPECT_TRUE(sem.try_acquire(2));
  EXPECT_FALSE(sem.try_acquire(1));
  sem.release(2);
}

TEST(Semaphore, TracksWaitTimeAndBlockedCount) {
  Simulation sim;
  Semaphore sem(sim, 1);
  auto holder = [&]() -> CoTask<void> {
    co_await sem.acquire(1);
    co_await delay(sim, 250);
    sem.release(1);
  };
  auto waiter = [&]() -> CoTask<void> {
    co_await sem.acquire(1);
    sem.release(1);
  };
  spawn(holder());
  spawn(waiter());
  sim.run();
  EXPECT_EQ(sem.blocked_acquires(), 1u);
  EXPECT_EQ(sem.total_wait_ns(), 250u);
}

TEST(Channel, DrainGrabsEverythingWithoutBlocking) {
  Simulation sim;
  Channel<int> ch(sim);
  for (int i = 0; i < 5; i++) ch.try_push(i);
  auto drained = ch.drain();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(drained.front(), 0);
  EXPECT_EQ(drained.back(), 4);
}

TEST(Channel, StatsTrackDepthAndPushes) {
  Simulation sim;
  Channel<int> ch(sim);
  for (int i = 0; i < 7; i++) ch.try_push(i);
  EXPECT_EQ(ch.total_pushes(), 7u);
  EXPECT_EQ(ch.max_depth(), 7u);
}

TEST(EventFn, StoresSmallCapturesInline) {
  // Compile-time contract: pointer+integer captures fit; the static_asserts
  // in EventFn reject anything bigger. Runtime check: the callback runs.
  Simulation sim;
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  bool ran = false;
  bool* ranp = &ran;
  sim.schedule_after(1, [a, b, c, d, ranp] {
    if (a + b + c + d == 10) *ranp = true;
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(FramePool, RecyclesCoroutineFrames) {
  // Churn many short-lived coroutines; the pool makes this cheap and, more
  // importantly, correct (no double-free / use-after-free under recycling).
  Simulation sim;
  std::uint64_t sum = 0;
  auto leaf = [&sim](std::uint64_t i) -> CoTask<std::uint64_t> {
    co_await delay(sim, 1);
    co_return i;
  };
  auto root = [&]() -> CoTask<void> {
    for (std::uint64_t i = 0; i < 20000; i++) sum += co_await leaf(i);
  };
  spawn(root());
  sim.run();
  EXPECT_EQ(sum, 20000ull * 19999 / 2);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(1, [&] { fired++; });
  sim.schedule_after(2, [&] { fired++; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(CpuPool, QueueWaitAccounted) {
  Simulation sim;
  CpuPool cpu(sim, 1);
  auto job = [&]() -> CoTask<void> { co_await cpu.consume(100); };
  spawn(job());
  spawn(job());
  sim.run();
  EXPECT_EQ(cpu.total_queue_wait_ns(), 100u);
  EXPECT_EQ(cpu.queued(), 0u);
}

// --- timing-wheel vs reference-heap determinism ------------------------------
//
// The wheel replaced a std::priority_queue ordered by (time, seq). The whole
// point of keeping FIFO tie-break was bit-reproducible runs, so pit the wheel
// against a reference heap on an adversarial schedule: equal timestamps,
// deltas straddling every level boundary, >2^48 overflow horizons, clamped
// past schedules, nested scheduling from inside events, and cancellations
// (including stale tokens). Both must produce the identical (id, time) trace.

class RefHeap {
 public:
  struct Token {
    std::size_t id = SIZE_MAX;
  };

  Time now() const { return now_; }

  Token schedule_at(Time t, std::function<void()> fn) {
    if (t < now_) t = now_;
    state_.push_back(kPending);
    events_.push(Ev{t, seq_++, state_.size() - 1, std::move(fn)});
    return Token{state_.size() - 1};
  }
  Token schedule_after(Time d, std::function<void()> fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  bool cancel(Token tok) {
    if (tok.id >= state_.size() || state_[tok.id] != kPending) return false;
    state_[tok.id] = kCancelled;
    return true;
  }

  void run() {
    while (!events_.empty()) {
      Ev ev = std::move(const_cast<Ev&>(events_.top()));
      events_.pop();
      now_ = ev.t;
      if (state_[ev.id] == kCancelled) continue;  // tombstone
      state_[ev.id] = kDone;
      ev.fn();
    }
  }

 private:
  enum State : char { kPending, kCancelled, kDone };
  struct Ev {
    Time t;
    std::uint64_t seq;
    std::size_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> events_;
  std::vector<char> state_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
};

// Thin wheel adapter giving Simulation the same Token surface as RefHeap.
class WheelRef {
 public:
  using Token = TimerToken;
  Time now() const { return sim_.now(); }
  Token schedule_at(Time t, EventFn fn) { return sim_.schedule_at(t, fn); }
  Token schedule_after(Time d, EventFn fn) { return sim_.schedule_after(d, fn); }
  bool cancel(Token tok) { return sim_.cancel(tok); }
  void run() { sim_.run(); }

 private:
  Simulation sim_;
};

template <class S>
struct Adversary {
  S sched;
  std::vector<std::pair<std::uint64_t, Time>> trace;
  std::vector<typename S::Token> tokens;
  std::uint64_t spawned = 0;
  std::uint32_t rng = 0x2545f491u;
  static constexpr std::uint64_t kMaxSpawn = 5000;

  std::uint32_t rand() { return rng = rng * 1664525u + 1013904223u; }

  void seed_and_run() {
    for (std::uint64_t i = 0; i < 8; i++) spawn_child(i * 1000);
    sched.run();
  }

  void spawn_child(std::uint64_t id) {
    // Deltas straddle the 64-slot level boundaries (63/64/65, 4095/4096),
    // include plenty of ties (0 twice), and overflow past the 2^48 ns wheel
    // range. One in eight is a clamped schedule into the past.
    static constexpr Time kDeltas[] = {0,        0,          1,           63,
                                       64,       65,         4095,        4096,
                                       1u << 20, 1ull << 30, (1ull << 48) + 12345};
    const std::uint32_t r = rand();
    spawned++;
    if ((r & 7u) == 0) {
      const Time past = sched.now() > 500 ? sched.now() - 500 : 0;
      tokens.push_back(sched.schedule_at(past, [this, id] { fire(id); }));
    } else {
      tokens.push_back(
          sched.schedule_after(kDeltas[r % 11u], [this, id] { fire(id); }));
    }
  }

  void fire(std::uint64_t id) {
    trace.emplace_back(id, sched.now());
    // Every third firing, cancel a deterministically-picked token; it is
    // often stale (already fired) — both schedulers must agree it's a no-op.
    if (trace.size() % 3 == 0 && !tokens.empty()) {
      sched.cancel(tokens[(id * 2654435761u) % tokens.size()]);
    }
    if (spawned >= kMaxSpawn) return;
    spawn_child(id * 2 + 1);
    spawn_child(id * 2 + 2);
  }
};

TEST(Simulation, WheelMatchesReferenceHeapOnAdversarialSchedule) {
  Adversary<WheelRef> wheel;
  Adversary<RefHeap> heap;
  wheel.seed_and_run();
  heap.seed_and_run();
  ASSERT_EQ(wheel.trace.size(), heap.trace.size());
  for (std::size_t i = 0; i < wheel.trace.size(); i++) {
    ASSERT_EQ(wheel.trace[i].first, heap.trace[i].first) << "at trace index " << i;
    ASSERT_EQ(wheel.trace[i].second, heap.trace[i].second) << "at trace index " << i;
  }
  EXPECT_GT(wheel.trace.size(), 1000u);  // the schedule actually ran deep
}

// --- cancellable timers ------------------------------------------------------

TEST(Simulation, CancelDropsEventAndInvalidatesToken) {
  Simulation sim;
  int fired = 0;
  TimerToken a = sim.schedule_after(10, [&] { fired += 1; });
  sim.schedule_after(20, [&] { fired += 10; });
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.cancel(a));  // double-cancel is a no-op
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.executed_events(), 1u);  // the cancelled event never executed
  EXPECT_FALSE(sim.cancel(a));           // stale after run, still a no-op
}

TEST(Simulation, CancelAfterExecutionReturnsFalse) {
  Simulation sim;
  TimerToken a = sim.schedule_after(5, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(a));
}

TEST(Simulation, FarFutureOverflowKeepsOrder) {
  // Beyond 2^48 ns the wheel spills to an overflow map; events must still
  // come back in (time, seq) order, interleaved with near-term events.
  Simulation sim;
  std::vector<int> order;
  const Time far = (Time(1) << 48) + 777;
  sim.schedule_at(far, [&] { order.push_back(2); });
  sim.schedule_at(far, [&] { order.push_back(3); });  // FIFO tie at far
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(far + 1, [&] { order.push_back(4); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), far + 1);
}

TEST(Simulation, FifoPreservedAcrossDifferentCascadePaths) {
  // Three events land on the same timestamp via different routes: scheduled
  // from t=0 (deep level, cascades down), from t=5000 (mid level), and from
  // t=9999 (level 0 directly). FIFO must still follow schedule order.
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(10000, [&] { order.push_back(1); });
  sim.schedule_at(5000, [&] { sim.schedule_at(10000, [&] { order.push_back(2); }); });
  sim.schedule_at(9999, [&] { sim.schedule_at(10000, [&] { order.push_back(3); }); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, RunUntilAdvancesNowWhenDrained) {
  Simulation sim;
  sim.schedule_at(5, [] {});
  EXPECT_FALSE(sim.run_until(100));  // drained before the horizon
  EXPECT_EQ(sim.now(), 100u);       // contract: now() == t either way
  sim.schedule_at(200, [] {});
  EXPECT_TRUE(sim.run_until(150));  // event remains beyond the horizon
  EXPECT_EQ(sim.now(), 150u);
  EXPECT_FALSE(sim.run_until(200));  // executes at exactly t, drains the queue
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(Timer, SleepExpiresTrueCancelFalse) {
  Simulation sim;
  Timer t(sim);
  bool full_sleep = false;
  bool cut_short = true;
  Time woke_at = 0;
  auto sleeper = [&]() -> CoTask<void> {
    full_sleep = co_await t.sleep(100);
    cut_short = co_await t.sleep(100);
    woke_at = sim.now();
  };
  spawn(sleeper());
  // Cancel the second sleep mid-flight at t=110.
  sim.schedule_at(110, [&] { EXPECT_TRUE(t.cancel()); });
  sim.run();
  EXPECT_TRUE(full_sleep);    // first sleep ran its full 100 ns
  EXPECT_FALSE(cut_short);    // second was cancelled
  EXPECT_EQ(woke_at, 110u);   // woke at cancel time, not the 200 ns deadline
  EXPECT_FALSE(t.cancel());   // nothing armed now
}

TEST(CondVar, WaitForTimesOutWithoutNotify) {
  Simulation sim;
  CondVar cv(sim);
  TimedOut result = TimedOut::kNo;
  auto waiter = [&]() -> CoTask<void> { result = co_await cv.wait_for(500); };
  spawn(waiter());
  sim.run();
  EXPECT_EQ(result, TimedOut::kYes);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(CondVar, NotifyCancelsDeadlineOffTheWheel) {
  Simulation sim;
  CondVar cv(sim);
  TimedOut result = TimedOut::kYes;
  auto waiter = [&]() -> CoTask<void> { result = co_await cv.wait_for(500); };
  spawn(waiter());
  sim.schedule_at(10, [&] { cv.notify_one(); });
  sim.run();
  EXPECT_EQ(result, TimedOut::kNo);
  // The 500 ns deadline was cancelled, not left to fire as a tombstone:
  // after draining, the clock never reached it.
  EXPECT_LT(sim.now(), 500u);
}

TEST(OneShot, WaitForHonorsTimeoutAndSet) {
  Simulation sim;
  OneShot early(sim), never(sim);
  TimedOut got_early = TimedOut::kYes, got_never = TimedOut::kNo;
  auto w1 = [&]() -> CoTask<void> { got_early = co_await early.wait_for(1000); };
  auto w2 = [&]() -> CoTask<void> { got_never = co_await never.wait_for(1000); };
  spawn(w1());
  spawn(w2());
  sim.schedule_at(50, [&] { early.set(); });
  sim.run();
  EXPECT_EQ(got_early, TimedOut::kNo);   // set() arrived at t=50
  EXPECT_EQ(got_never, TimedOut::kYes);  // never set; the deadline fired
}

}  // namespace
}  // namespace afc::sim
