// Tests for the erasure-coding layer: GF(256) arithmetic against
// hand-computed vectors, the Reed–Solomon codec (any-k reconstruction),
// shard naming/layout, the cluster map's stable positional remap, and the
// full EC(4+2) pool end to end — healthy round-trips, degraded reads under
// shard loss, the k+1 ack floor, rebuild-by-decode after crash/restart,
// and the two scrub phases (per-shard CRC, stripe parity consistency).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "afceph.h"
#include "ec/codec.h"
#include "ec/gf256.h"
#include "ec/layout.h"

namespace afc {
namespace {

// ---------------------------------------------------------------------------
// GF(256), polynomial 0x11D

TEST(Gf256, HandComputedVectors) {
  EXPECT_EQ(ec::gf_mul(0, 0x5A), 0);
  EXPECT_EQ(ec::gf_mul(1, 0x5A), 0x5A);
  // x * x^7 = x^8 -> reduced by x^8+x^4+x^3+x^2+1: 0x100 ^ 0x11D = 0x1D.
  EXPECT_EQ(ec::gf_mul(2, 0x80), 0x1D);
  // 2 * 0x8E = 0x11C; high bit set -> ^0x11D = 1, so inv(2) = 0x8E.
  EXPECT_EQ(ec::gf_mul(2, 0x8E), 1);
  EXPECT_EQ(ec::gf_inv(2), 0x8E);
  EXPECT_EQ(ec::gf_inv(1), 1);
  EXPECT_EQ(ec::gf_div(0x1D, 0x80), 2);
  for (unsigned a = 1; a < 256; a++) {
    EXPECT_EQ(ec::gf_mul(std::uint8_t(a), ec::gf_inv(std::uint8_t(a))), 1) << a;
  }
  // Commutativity + distributivity probes.
  EXPECT_EQ(ec::gf_mul(0x53, 0xCA), ec::gf_mul(0xCA, 0x53));
  const std::uint8_t a = 0x57, b = 0x13, c = 0xA9;
  EXPECT_EQ(ec::gf_mul(a, b ^ c), std::uint8_t(ec::gf_mul(a, b) ^ ec::gf_mul(a, c)));
}

// ---------------------------------------------------------------------------
// Codec

std::vector<std::vector<std::uint8_t>> test_data(unsigned k, std::size_t len) {
  std::vector<std::vector<std::uint8_t>> data(k);
  for (unsigned j = 0; j < k; j++) {
    data[j].resize(len);
    for (std::size_t i = 0; i < len; i++) data[j][i] = std::uint8_t(j * 37 + i * 11 + 5);
  }
  return data;
}

TEST(Codec, ParityMatrixIsCauchy) {
  ec::Codec codec(4, 2);
  // P[i][j] = inv((k+i) ^ j): multiplying back by the point must give 1.
  for (unsigned i = 0; i < 2; i++) {
    for (unsigned j = 0; j < 4; j++) {
      EXPECT_EQ(ec::gf_mul(codec.parity_coeff(i, j), std::uint8_t((4 + i) ^ j)), 1);
    }
  }
}

TEST(Codec, AnyKOfKPlusMReconstructsEverything) {
  const unsigned k = 4, m = 2;
  ec::Codec codec(k, m);
  const auto data = test_data(k, 16);
  const auto parity = codec.encode(data);
  ASSERT_EQ(parity.size(), m);

  std::vector<std::vector<std::uint8_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());

  // Every size-k subset of the 6 shards must decode to the original data.
  int subsets = 0;
  for (unsigned mask = 0; mask < (1u << (k + m)); mask++) {
    if (__builtin_popcount(mask) != int(k)) continue;
    subsets++;
    std::vector<unsigned> present;
    std::vector<std::vector<std::uint8_t>> chunks;
    for (unsigned s = 0; s < k + m; s++) {
      if (mask & (1u << s)) {
        present.push_back(s);
        chunks.push_back(shards[s]);
      }
    }
    const auto decoded = codec.decode(present, chunks);
    ASSERT_TRUE(decoded.has_value()) << "mask " << mask;
    EXPECT_EQ(*decoded, data) << "mask " << mask;
    // And every absent shard — data or parity — reconstructs individually.
    for (unsigned s = 0; s < k + m; s++) {
      if (mask & (1u << s)) continue;
      const auto shard = codec.reconstruct_shard(s, present, chunks);
      ASSERT_TRUE(shard.has_value());
      EXPECT_EQ(*shard, shards[s]) << "shard " << s << " mask " << mask;
    }
  }
  EXPECT_EQ(subsets, 15);  // C(6,4)
}

TEST(Codec, RejectsInsufficientOrMismatchedInput) {
  ec::Codec codec(4, 2);
  const auto data = test_data(4, 8);
  const auto parity = codec.encode(data);
  EXPECT_FALSE(codec.decode({0, 1, 2}, {data[0], data[1], data[2]}).has_value());
  auto short_chunk = data[3];
  short_chunk.pop_back();
  EXPECT_FALSE(codec.decode({0, 1, 2, 3}, {data[0], data[1], data[2], short_chunk})
                   .has_value());
}

// ---------------------------------------------------------------------------
// Layout: shard naming and chunk math

TEST(EcLayout, ShardNamesRoundTripAndChunkMath) {
  const fs::ObjectId base{7, "rbd_data.3.00000000004a"};
  const fs::ObjectId s2 = ec::shard_oid(base, 2);
  EXPECT_EQ(s2.pg, 7u);
  EXPECT_EQ(s2.name, "rbd_data.3.00000000004a.s2");
  const auto parsed = ec::parse_shard(s2.name);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, base.name);
  EXPECT_EQ(parsed->shard, 2u);
  EXPECT_FALSE(ec::parse_shard("plain_name").has_value());
  EXPECT_FALSE(ec::parse_shard("x.s").has_value());
  EXPECT_FALSE(ec::parse_shard("x.sA").has_value());

  EXPECT_EQ(ec::chunk_len(4096, 4), 1024u);
  EXPECT_EQ(ec::chunk_len(4097, 4), 1025u);  // ceil
  EXPECT_EQ(ec::shard_offset(8192, 4), 2048u);
}

// ---------------------------------------------------------------------------
// ClusterMap: EC acting sets and the stable positional remap

TEST(ClusterMapEc, ActingIsKPlusMDistinctAndRemapIsStable) {
  cluster::ClusterMap::PoolConfig pool;
  pool.pg_num = 16;
  pool.scheme = cluster::ClusterMap::Scheme::kErasure;
  pool.ec_k = 4;
  pool.ec_m = 2;
  cluster::ClusterMap cmap(pool);
  for (std::uint32_t i = 0; i < 6; i++) cmap.crush().add_osd(i, i);

  EXPECT_TRUE(cmap.erasure());
  EXPECT_EQ(cmap.pool_size(), 6u);
  EXPECT_EQ(cmap.ack_floor(), 5u);  // min_size 0 -> k+1

  const auto before = cmap.acting(3);
  ASSERT_EQ(before.size(), 6u);
  std::set<std::uint32_t> distinct(before.begin(), before.end());
  EXPECT_EQ(distinct.size(), 6u);
  EXPECT_EQ(distinct.count(cluster::ClusterMap::kNoOsd), 0u);

  // Lose one OSD: its position becomes a hole (no spare exists) and every
  // survivor keeps its slot — shards must not shuffle between epochs.
  const std::uint32_t victim = before[2];
  cmap.crush().set_up(victim, false);
  cmap.bump_epoch();
  const auto degraded = cmap.acting(3);
  ASSERT_EQ(degraded.size(), 6u);
  for (unsigned p = 0; p < 6; p++) {
    if (p == 2) {
      EXPECT_EQ(degraded[p], cluster::ClusterMap::kNoOsd);
    } else {
      EXPECT_EQ(degraded[p], before[p]) << "position " << p;
    }
  }

  // It returns: the vacancy is refilled, everyone else still pinned.
  cmap.crush().set_up(victim, true);
  cmap.bump_epoch();
  EXPECT_EQ(cmap.acting(3), before);
}

// ---------------------------------------------------------------------------
// End-to-end EC(4+2) pool

core::ClusterConfig ec_cluster(std::uint64_t seed, unsigned nodes = 6) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = nodes;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 1;
  cfg.vms = 2;
  cfg.pg_num = 32;
  cfg.ec_pool = true;
  cfg.ec_k = 4;
  cfg.ec_m = 2;
  cfg.sustained = false;
  cfg.image_size = 512 * kMiB;
  cfg.seed = seed;
  cfg.osd.rep_timeout = 20 * kMillisecond;  // shard fan-out watchdog
  cfg.osd.rep_retries = 1;
  return cfg;
}

std::uint64_t sum_counter(core::ClusterSim& cluster, const char* name) {
  std::uint64_t total = 0;
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    total += cluster.osd(o).counters().get(name);
  }
  return total;
}

/// 24 object-aligned offsets spread across the image so many PGs see a
/// stripe; deterministic pattern payloads keyed off the offset.
std::vector<std::uint64_t> spread_offsets() {
  std::vector<std::uint64_t> offs;
  for (std::uint64_t i = 0; i < 24; i++) offs.push_back(i * 4 * kMiB + (i % 4) * 4096);
  return offs;
}

Payload pattern_for(std::uint64_t off) { return Payload::pattern(4096, off * 2654435761ull + 1); }

TEST(EcPool, HealthyWriteReadRoundTrip) {
  core::ClusterSim cluster(ec_cluster(42));
  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    for (std::uint64_t off : spread_offsets()) {
      EXPECT_TRUE(co_await cluster.vm(0).write_once(off, pattern_for(off)));
    }
    for (std::uint64_t off : spread_offsets()) {
      auto r = co_await cluster.vm(0).read_once(off, 4096);
      EXPECT_TRUE(r.ok);
      EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(pattern_for(off)));
    }
    done = true;
  });
  cluster.simulation().run();
  ASSERT_TRUE(done);
  // Healthy cluster: nothing was reconstructed, acks never went degraded.
  EXPECT_EQ(sum_counter(cluster, "osd.ec_reconstruct_reads"), 0u);
  EXPECT_EQ(sum_counter(cluster, "osd.acks_below_min_size"), 0u);
}

TEST(EcPool, DegradedReadReconstructsFromSurvivors) {
  core::ClusterSim cluster(ec_cluster(42));
  fault::FaultPlan plan;
  plan.crash(500 * kMillisecond, 1);  // permanent: no spare, position holes
  cluster.install_faults(plan);

  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    for (std::uint64_t off : spread_offsets()) {
      EXPECT_TRUE(co_await cluster.vm(0).write_once(off, pattern_for(off)));
    }
    co_await sim::delay(cluster.simulation(), 600 * kMillisecond, "test.wait_crash");
    // Every byte is still readable from the 5 survivors (any k=4 suffice).
    for (std::uint64_t off : spread_offsets()) {
      auto r = co_await cluster.vm(0).read_once(off, 4096);
      EXPECT_TRUE(r.ok) << "off " << off;
      EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(pattern_for(off)));
    }
    // Writes still ack: 5 durable shards meet the k+1=5 floor.
    EXPECT_TRUE(co_await cluster.vm(0).write_once(100 * kMiB, pattern_for(100 * kMiB)));
    done = true;
  });
  cluster.simulation().run();
  ASSERT_TRUE(done);
  EXPECT_GT(sum_counter(cluster, "osd.ec_reconstruct_reads"), 0u);
  EXPECT_EQ(sum_counter(cluster, "osd.acks_below_min_size"), 0u);
}

TEST(EcPool, WritesFailBelowAckFloorButReadsSurviveAtK) {
  core::ClusterSim cluster(ec_cluster(42));
  fault::FaultPlan plan;
  plan.crash(500 * kMillisecond, 1);
  plan.crash(500 * kMillisecond, 3);  // two losses: 4 = k survivors remain
  cluster.install_faults(plan);

  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    for (std::uint64_t off : spread_offsets()) {
      EXPECT_TRUE(co_await cluster.vm(0).write_once(off, pattern_for(off)));
    }
    co_await sim::delay(cluster.simulation(), 600 * kMillisecond, "test.wait_crashes");
    // Reads: exactly k shards left -> still every byte, via decode.
    for (std::uint64_t off : spread_offsets()) {
      auto r = co_await cluster.vm(0).read_once(off, 4096);
      EXPECT_TRUE(r.ok) << "off " << off;
      EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(pattern_for(off)));
    }
    // Writes: 4 durable shards < floor 5 -> deterministic failure, no ack.
    EXPECT_FALSE(co_await cluster.vm(0).write_once(100 * kMiB, pattern_for(100 * kMiB)));
    done = true;
  });
  cluster.simulation().run();
  ASSERT_TRUE(done);
  EXPECT_GT(sum_counter(cluster, "osd.ec_reconstruct_reads"), 0u);
  EXPECT_EQ(sum_counter(cluster, "osd.acks_below_min_size"), 0u);
}

TEST(EcPool, CrashRestartRebuildsShardsByDecode) {
  core::ClusterSim cluster(ec_cluster(42));
  fault::FaultPlan plan;
  plan.crash_restart(500 * kMillisecond, 2, 200 * kMillisecond);
  cluster.install_faults(plan);

  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    auto& sim = cluster.simulation();
    for (std::uint64_t off : spread_offsets()) {
      EXPECT_TRUE(co_await cluster.vm(0).write_once(off, pattern_for(off)));
    }
    // Write more while OSD 2 is down: its shards of these stripes are
    // missed and must come back by decode, not journal replay.
    co_await sim::delay(sim, 550 * kMillisecond, "test.wait_crash");
    for (std::uint64_t off : spread_offsets()) {
      EXPECT_TRUE(co_await cluster.vm(0).write_once(off + 8192, pattern_for(off + 8192)));
    }
    done = true;
  });
  cluster.simulation().run();  // drains restart, replay, and all rebuilds
  ASSERT_TRUE(done);
  EXPECT_GT(sum_counter(cluster, "osd.ec_shards_rebuilt"), 0u);

  // After rebuild the pool is fully consistent again.
  bool scrubbed = false;
  sim::spawn_fn([&cluster, &scrubbed]() -> sim::CoTask<void> {
    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_GT(verify.objects_scrubbed, 0u);
    EXPECT_EQ(verify.inconsistent, 0u);
    EXPECT_EQ(verify.missing, 0u);
    scrubbed = true;
  });
  cluster.simulation().run();
  EXPECT_TRUE(scrubbed);
}

TEST(EcPool, SpareOsdBackfillsLostPositionByDecode) {
  // 8 OSDs, 6-wide stripes: when one holder dies for good, CRUSH remaps
  // its position to a spare, which must backfill the shard by decode.
  core::ClusterSim cluster(ec_cluster(42, /*nodes=*/8));
  fault::FaultPlan plan;
  plan.crash(500 * kMillisecond, 1);
  cluster.install_faults(plan);

  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    for (std::uint64_t off : spread_offsets()) {
      EXPECT_TRUE(co_await cluster.vm(0).write_once(off, pattern_for(off)));
    }
    done = true;
  });
  cluster.simulation().run();  // crash fires after the writes, then rebuilds drain
  ASSERT_TRUE(done);
  EXPECT_GT(sum_counter(cluster, "osd.ec_shards_rebuilt"), 0u);

  bool scrubbed = false;
  sim::spawn_fn([&cluster, &scrubbed]() -> sim::CoTask<void> {
    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_EQ(verify.inconsistent, 0u);
    EXPECT_EQ(verify.missing, 0u);
    scrubbed = true;
  });
  cluster.simulation().run();
  EXPECT_TRUE(scrubbed);
}

TEST(EcPool, ScrubRepairsFlippedShardsByDecode) {
  core::ClusterSim cluster(ec_cluster(42));
  // Flip a data-shard byte on one OSD and a parity-shard byte on another,
  // after all traffic has drained (the events fire at 1s).
  fault::FaultPlan plan;
  plan.bit_flip_data(1 * kSecond, 0);
  plan.bit_flip_parity(1 * kSecond, 4);
  fault::FaultInjector& inj = cluster.install_faults(plan);

  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    for (std::uint64_t off : spread_offsets()) {
      EXPECT_TRUE(co_await cluster.vm(0).write_once(off, pattern_for(off)));
    }
    done = true;
  });
  cluster.simulation().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(inj.counters().get("fault.bit_flip"), 2u);
  EXPECT_EQ(inj.counters().get("fault.bit_flip_noop"), 0u);

  bool scrubbed = false;
  sim::spawn_fn([&cluster, &scrubbed]() -> sim::CoTask<void> {
    auto detect = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_GT(detect.inconsistent, 0u);
    auto repair = co_await cluster.deep_scrub(/*repair=*/true);
    EXPECT_GT(repair.repaired, 0u);
    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_EQ(verify.inconsistent, 0u);
    EXPECT_EQ(verify.missing, 0u);

    // Repaired stripes read back the original content.
    for (std::uint64_t off : spread_offsets()) {
      auto r = co_await cluster.vm(0).read_once(off, 4096);
      EXPECT_TRUE(r.ok);
      EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(pattern_for(off)));
    }
    scrubbed = true;
  });
  cluster.simulation().run();
  EXPECT_TRUE(scrubbed);
  EXPECT_GT(sum_counter(cluster, "osd.scrub_objects_repaired"), 0u);
}

TEST(EcPool, ScrubDetectsAndRepairsParityInconsistency) {
  // A torn stripe leaves shards that each pass their own CRC but violate
  // the parity equation. Fabricate one: write a stripe through the client,
  // then overwrite one parity shard with CRC-valid wrong bytes directly.
  core::ClusterSim cluster(ec_cluster(42));
  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    EXPECT_TRUE(co_await cluster.vm(0).write_once(0, pattern_for(0)));
    done = true;
  });
  cluster.simulation().run();
  ASSERT_TRUE(done);

  // Find a written parity shard (position k=4) and rewrite its extent.
  bool poisoned = false;
  for (std::uint32_t pg = 0; pg < cluster.config().pg_num && !poisoned; pg++) {
    const auto& acting = cluster.map().acting(pg);
    const std::uint32_t holder = acting[4];
    for (const auto& oid : cluster.osd(holder).store().objects_in_pg(pg)) {
      auto sn = ec::parse_shard(oid.name);
      if (!sn.has_value() || sn->shard != 4) continue;
      auto& store = cluster.osd(holder).store();
      const auto exp = store.export_object(oid);
      ASSERT_FALSE(exp.extents.empty());
      const std::uint64_t off = exp.extents[0].first;
      const std::uint64_t len = exp.extents[0].second.size();
      bool written = false;
      sim::spawn_fn([&store, &oid, off, len, &written]() -> sim::CoTask<void> {
        fs::Transaction tx;
        tx.write(oid, off, Payload::pattern(len, 0xBADBADull));
        co_await store.apply_transaction(tx, /*lightweight=*/false);
        written = true;
      });
      cluster.simulation().run();
      ASSERT_TRUE(written);
      poisoned = true;
      break;
    }
  }
  ASSERT_TRUE(poisoned);

  bool scrubbed = false;
  sim::spawn_fn([&cluster, &scrubbed]() -> sim::CoTask<void> {
    // Phase 1 (per-shard CRC) is clean; only the stripe equation fails.
    auto detect = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_GT(detect.inconsistent, 0u);
    EXPECT_EQ(detect.missing, 0u);
    auto repair = co_await cluster.deep_scrub(/*repair=*/true);
    EXPECT_GT(repair.repaired, 0u);
    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_EQ(verify.inconsistent, 0u);
    scrubbed = true;
  });
  cluster.simulation().run();
  EXPECT_TRUE(scrubbed);
  EXPECT_GT(sum_counter(cluster, "osd.ec_parity_mismatch"), 0u);
}

TEST(EcPool, SameSeedRunsAreIdentical) {
  // Drive the VMs directly (the chaos/bench pattern) so the stats sink
  // outlives the post-deadline drain of retries, replay, and rebuilds.
  auto one_run = [] {
    core::ClusterConfig cfg = ec_cluster(7);
    cfg.client_op_timeout = 100 * kMillisecond;
    core::ClusterSim cluster(cfg);
    fault::FaultPlan plan;
    plan.crash_restart(100 * kMillisecond, 1, 80 * kMillisecond);
    cluster.install_faults(plan);
    auto spec = client::WorkloadSpec::rand_write(4096, 4);
    spec.warmup = 20 * kMillisecond;
    spec.runtime = 150 * kMillisecond;
    client::RunStats stats;
    stats.window_start = spec.warmup;
    stats.window_end = spec.warmup + spec.runtime;
    for (std::size_t v = 0; v < cluster.vm_count(); v++) {
      cluster.vm(v).start(spec, stats.window_end, &stats);
    }
    cluster.simulation().run_until(stats.window_end);
    cluster.simulation().run();
    std::uint64_t begun = 0, resolved = 0;
    for (std::size_t v = 0; v < cluster.vm_count(); v++) {
      begun += cluster.vm(v).ops_begun();
      resolved += cluster.vm(v).ops_resolved();
    }
    EXPECT_EQ(begun, resolved);
    return std::tuple{cluster.simulation().executed_events(), begun, resolved,
                      sum_counter(cluster, "osd.ec_shards_rebuilt")};
  };
  EXPECT_EQ(one_run(), one_run());
}

TEST(EcPool, ReplicatedDefaultKeepsEcMachineryCold) {
  // EC compiled in but unconfigured: a replicated run must never touch it.
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = 4;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 1;
  cfg.vms = 2;
  cfg.pg_num = 32;
  cfg.replication = 2;
  cfg.sustained = false;
  cfg.image_size = 512 * kMiB;
  cfg.seed = 42;
  core::ClusterSim cluster(cfg);
  EXPECT_FALSE(cluster.map().erasure());

  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.warmup = 20 * kMillisecond;
  spec.runtime = 100 * kMillisecond;
  client::RunStats stats;
  stats.window_start = spec.warmup;
  stats.window_end = spec.warmup + spec.runtime;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(spec, stats.window_end, &stats);
  }
  cluster.simulation().run_until(stats.window_end);
  cluster.simulation().run();
  core::RunResult r;
  cluster.collect_osd_stats(r);
  EXPECT_EQ(r.ec_reconstruct_reads, 0u);
  EXPECT_EQ(r.ec_shards_rebuilt, 0u);
  EXPECT_EQ(r.ec_parity_mismatch, 0u);
  EXPECT_EQ(sum_counter(cluster, "osd.ec_reconstruct_reads"), 0u);
}

}  // namespace
}  // namespace afc
