// Tests for common/: RNG, histogram, time series, payloads, interning,
// counters, table rendering.

#include <gtest/gtest.h>

#include <map>

#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/interned.h"
#include "common/payload.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timeseries.h"

namespace afc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.next() == b.next()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; i++) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; i++) {
    const auto v = r.uniform_int(3, 10);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 10u);
    saw_lo |= v == 3;
    saw_hi |= v == 10;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; i++) sum += r.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng r(13);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; i++) counts[r.zipf(1000, 0.9)]++;
  EXPECT_GT(counts[0], counts[500] * 5);
  for (const auto& [rank, n] : counts) ASSERT_LT(rank, 1000u);
}

TEST(Rng, ZipfThetaZeroIsUniform) {
  Rng r(17);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 30000; i++) counts[r.zipf(10, 0.0)]++;
  for (int k = 0; k < 10; k++) EXPECT_NEAR(counts[std::uint64_t(k)], 3000, 400);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.next() == b.next()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  h.record(5);
  h.record(5);
  h.record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_NEAR(h.mean(), 17.0 / 3.0, 1e-9);
  EXPECT_EQ(h.percentile(0.0), 5u);
  EXPECT_EQ(h.percentile(1.0), 7u);
}

TEST(Histogram, PercentileAccuracyWithinBucketError) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; v++) h.record(v);
  // Log-linear buckets guarantee ~1/64 relative error.
  EXPECT_NEAR(double(h.percentile(0.5)), 50000.0, 50000.0 / 32.0);
  EXPECT_NEAR(double(h.percentile(0.99)), 99000.0, 99000.0 / 32.0);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  Rng r(3);
  for (int i = 0; i < 1000; i++) {
    const auto v = r.uniform_int(1, 1000000);
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_EQ(a.percentile(0.9), combined.percentile(0.9));
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(100);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, HugeValues) {
  Histogram h;
  const std::uint64_t big = 1ull << 62;
  h.record(big);
  EXPECT_NEAR(double(h.percentile(0.5)), double(big), double(big) / 32.0);
}

TEST(TimeSeries, RatesPerInterval) {
  TimeSeries ts(100 * kMillisecond);
  for (int i = 0; i < 50; i++) ts.add(Time(i) * 10 * kMillisecond);  // 0..490ms
  ASSERT_EQ(ts.size(), 5u);
  for (std::size_t i = 0; i < 5; i++) EXPECT_DOUBLE_EQ(ts.rate(i), 100.0);  // 10/100ms
  EXPECT_DOUBLE_EQ(ts.mean_rate(0, 5), 100.0);
  EXPECT_NEAR(ts.cov(0, 5), 0.0, 1e-12);
}

TEST(TimeSeries, CovDetectsFluctuation) {
  TimeSeries steady(100 * kMillisecond), bursty(100 * kMillisecond);
  for (int b = 0; b < 10; b++) {
    for (int i = 0; i < 10; i++) steady.add(Time(b) * 100 * kMillisecond + 1);
    const int n = (b % 2 == 0) ? 19 : 1;
    for (int i = 0; i < n; i++) bursty.add(Time(b) * 100 * kMillisecond + 1);
  }
  EXPECT_LT(steady.cov(0, 10), 0.01);
  EXPECT_GT(bursty.cov(0, 10), 0.5);
}

TEST(Payload, VirtualMaterializeDeterministic) {
  auto p = Payload::pattern(64, 42);
  auto a = p.materialize();
  auto b = p.materialize();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_NE(a, Payload::pattern(64, 43).materialize());
}

TEST(Payload, SliceOfVirtualMatchesMaterializedSlice) {
  auto p = Payload::pattern(4096, 7);
  auto full = p.materialize();
  auto s = p.slice(100, 200);
  EXPECT_TRUE(s.is_virtual());  // O(1) slice
  auto sm = s.materialize();
  ASSERT_EQ(sm.size(), 200u);
  for (int i = 0; i < 200; i++) EXPECT_EQ(sm[std::size_t(i)], full[std::size_t(100 + i)]);
}

TEST(Payload, SliceClampsAtEnd) {
  auto p = Payload::pattern(100, 1);
  EXPECT_EQ(p.slice(90, 50).size(), 10u);
  EXPECT_EQ(p.slice(200, 50).size(), 0u);
}

TEST(Payload, RealBytesRoundTrip) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  auto p = Payload::bytes(data);
  EXPECT_FALSE(p.is_virtual());
  EXPECT_EQ(p.materialize(), data);
  EXPECT_TRUE(p.content_equals(Payload::bytes(data)));
}

TEST(Payload, ContentEqualsAcrossRepresentations) {
  auto v = Payload::pattern(256, 99);
  auto r = Payload::bytes(v.materialize());
  EXPECT_TRUE(v.content_equals(r));
  EXPECT_TRUE(r.content_equals(v));
  EXPECT_FALSE(v.content_equals(Payload::pattern(256, 100)));
}

TEST(Payload, FingerprintIdentity) {
  EXPECT_EQ(Payload::pattern(4096, 5).fingerprint(), Payload::pattern(4096, 5).fingerprint());
  EXPECT_NE(Payload::pattern(4096, 5).fingerprint(), Payload::pattern(4096, 6).fingerprint());
  EXPECT_NE(Payload::pattern(4096, 5).fingerprint(),
            Payload::pattern(8192, 5).fingerprint());
  // Same-content real payloads hash equal.
  auto a = Payload::bytes({9, 8, 7});
  auto b = Payload::bytes({9, 8, 7});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(InternPool, IdempotentIds) {
  InternPool pool;
  const auto a = pool.intern("osd: dispatch op");
  const auto b = pool.intern("osd: journal write");
  const auto a2 = pool.intern("osd: dispatch op");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.lookup(a), "osd: dispatch op");
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(InternPool, FindDoesNotInsert) {
  InternPool pool;
  InternPool::Id id;
  EXPECT_FALSE(pool.find("missing", id));
  pool.intern("present");
  EXPECT_TRUE(pool.find("present", id));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Counters, AddAndQuery) {
  Counters c;
  c.add("x");
  c.add("x", 4);
  c.add("y", 2);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 2u);
  EXPECT_EQ(c.get("z"), 0u);
  c.clear();
  EXPECT_EQ(c.get("x"), 0u);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "iops"});
  t.row({"community", "16.0K"});
  t.row({"afceph", "81.3K"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("81.3K"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Histogram, RecordNBulk) {
  Histogram h;
  h.record_n(1000, 500);
  h.record_n(2000, 500);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 1500.0, 40.0);
  h.record_n(5, 0);  // no-op
  EXPECT_EQ(h.count(), 1000u);
}

TEST(TimeSeries, ToStringRendersRates) {
  TimeSeries ts(100 * kMillisecond);
  for (int i = 0; i < 30; i++) ts.add(Time(i) * 10 * kMillisecond);
  const auto s1 = ts.to_string();
  EXPECT_NE(s1.find("t=0.0s"), std::string::npos);
  EXPECT_NE(s1.find("100"), std::string::npos);
  const auto s2 = ts.to_string(3);
  EXPECT_LT(s2.size(), s1.size());
}

TEST(Payload, ZerosAndEmpty) {
  auto z = Payload::zeros(16);
  EXPECT_TRUE(z.is_virtual());
  EXPECT_EQ(z.size(), 16u);
  Payload empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.materialize().empty());
  EXPECT_TRUE(empty.content_equals(Payload::pattern(0, 9)));
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::kiops(81300), "81.3K");
  EXPECT_EQ(Table::kiops(950), "950");
}

TEST(Crc32c, MatchesRfc3720TestVectors) {
  // iSCSI CRC32C test vectors (RFC 3720 §B.4).
  std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<std::uint8_t> asc(32), desc(32);
  for (int i = 0; i < 32; i++) {
    asc[std::size_t(i)] = std::uint8_t(i);
    desc[std::size_t(i)] = std::uint8_t(31 - i);
  }
  EXPECT_EQ(crc32c(asc.data(), asc.size()), 0x46DD794Eu);
  EXPECT_EQ(crc32c(desc.data(), desc.size()), 0x113FDB5Cu);

  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalFeedEqualsOneShot) {
  std::vector<std::uint8_t> buf(257);
  for (std::size_t i = 0; i < buf.size(); i++) buf[i] = std::uint8_t(i * 31 + 7);
  const std::uint32_t whole = crc32c(buf.data(), buf.size());
  for (std::size_t split : {std::size_t(0), std::size_t(1), std::size_t(100), buf.size()}) {
    const std::uint32_t head = crc32c(buf.data(), split);
    EXPECT_EQ(crc32c(buf.data() + split, buf.size() - split, head), whole) << split;
  }
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  EXPECT_NE(whole, crc32c(buf.data(), buf.size() - 1));  // length-sensitive
}

}  // namespace
}  // namespace afc
