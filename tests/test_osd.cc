// OSD + cluster integration tests: end-to-end correctness through the full
// replicated pipeline, per-PG ordering, the community/AFCeph mechanism
// differences, throttle and journal behaviour, ordered acks.

#include <gtest/gtest.h>

#include "core/cluster_sim.h"

namespace afc {
namespace {

core::ClusterConfig tiny_cluster(core::Profile profile, bool sustained = false) {
  core::ClusterConfig cfg;
  cfg.profile = std::move(profile);
  cfg.osd_nodes = 2;
  cfg.osds_per_node = 2;
  cfg.client_nodes = 1;
  cfg.vms = 2;
  cfg.pg_num = 64;
  cfg.image_size = 256 * kMiB;
  cfg.sustained = sustained;
  return cfg;
}

// Run a client-side coroutine against a cluster until it finishes.
template <class Fn>
void drive(core::ClusterSim& cluster, Fn fn) {
  bool done = false;
  sim::spawn_fn([&]() -> sim::CoTask<void> {
    co_await fn();
    done = true;
  });
  cluster.simulation().run_until(cluster.simulation().now() + 60 * kSecond);
  ASSERT_TRUE(done) << "cluster coroutine did not finish";
}

class OsdPipeline : public ::testing::TestWithParam<bool> {
 protected:
  core::Profile profile() const {
    return GetParam() ? core::Profile::afceph() : core::Profile::community();
  }
};

TEST_P(OsdPipeline, ReadYourWrites) {
  core::ClusterSim cluster(tiny_cluster(profile()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    auto data = Payload::pattern(4096, 0x1234);
    EXPECT_TRUE(co_await vm.write_once(8 * kMiB, data));
    auto r = co_await vm.read_once(8 * kMiB, 4096);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(data));
  });
}

TEST_P(OsdPipeline, OverwriteVisible) {
  core::ClusterSim cluster(tiny_cluster(profile()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    co_await vm.write_once(0, Payload::pattern(4096, 1));
    co_await vm.write_once(0, Payload::pattern(4096, 2));
    auto r = co_await vm.read_once(0, 4096);
    EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(Payload::pattern(4096, 2)));
  });
}

TEST_P(OsdPipeline, DataReplicatedToAllActingOsds) {
  core::ClusterSim cluster(tiny_cluster(profile()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    co_await vm.write_once(4 * kMiB, Payload::pattern(4096, 9));
    // Let replica applies drain.
    co_await sim::delay(cluster.simulation(), 2 * kSecond);
  });
  const auto mapping = cluster.vm(0).image().map(4 * kMiB);
  const auto pg = cluster.map().pg_of(mapping.object_name);
  const auto acting = cluster.map().acting(pg);
  ASSERT_EQ(acting.size(), 2u);
  for (auto osd_id : acting) {
    EXPECT_TRUE(cluster.osd(osd_id).store().object_in_memory(
        fs::ObjectId{pg, mapping.object_name}))
        << "osd " << osd_id;
  }
  // Non-acting OSDs must NOT hold the object.
  for (std::size_t i = 0; i < cluster.osd_count(); i++) {
    if (std::find(acting.begin(), acting.end(), std::uint32_t(i)) != acting.end()) continue;
    EXPECT_FALSE(cluster.osd(i).store().object_in_memory(fs::ObjectId{pg, mapping.object_name}));
  }
}

TEST_P(OsdPipeline, ConcurrentWritesToSameObjectKeepLastWriterVisible) {
  core::ClusterSim cluster(tiny_cluster(profile()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    // Issue 32 sequential overwrites of the same 4K block back-to-back.
    for (int i = 0; i < 32; i++) {
      co_await vm.write_once(16 * kMiB, Payload::pattern(4096, 100 + std::uint64_t(i)));
    }
    auto r = co_await vm.read_once(16 * kMiB, 4096);
    EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(Payload::pattern(4096, 131)));
  });
}

TEST_P(OsdPipeline, ManyObjectsSurviveVerification) {
  core::ClusterSim cluster(tiny_cluster(profile()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    for (int i = 0; i < 64; i++) {
      co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(8192, 500 + std::uint64_t(i)));
    }
    for (int i = 0; i < 64; i++) {
      auto r = co_await vm.read_once(std::uint64_t(i) * 4 * kMiB, 8192);
      EXPECT_TRUE(r.ok);
      EXPECT_TRUE(Payload::bytes(std::move(r.data))
                      .content_equals(Payload::pattern(8192, 500 + std::uint64_t(i))))
          << "object " << i;
    }
  });
}

TEST_P(OsdPipeline, PgLogWrittenAndTrimmed) {
  auto cfg = tiny_cluster(profile());
  cfg.osd.pg_log_keep = 32;
  cfg.osd.pg_log_trim_every = 16;
  core::ClusterSim cluster(cfg);
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    // Hammer one object so one PG accumulates log entries past the trim
    // horizon.
    for (int i = 0; i < 200; i++) {
      co_await vm.write_once(0, Payload::pattern(4096, std::uint64_t(i)));
    }
    co_await sim::delay(cluster.simulation(), 2 * kSecond);
    const auto mapping = cluster.vm(0).image().map(0);
    const auto pg = cluster.map().pg_of(mapping.object_name);
    auto& primary = cluster.osd(cluster.map().primary(pg));
    auto* pgp = primary.find_pg(pg);
    EXPECT_NE(pgp, nullptr);
    if (pgp == nullptr) co_return;
    EXPECT_GE(pgp->version(), 200u);
    EXPECT_GT(pgp->log_floor, 1u);  // trim advanced
    // The trimmed prefix is gone from omap, the recent suffix is present.
    auto keys = co_await primary.omap_db().range_keys(pgp->log_key(0), pgp->log_key(~0ull >> 20),
                                                      100000);
    EXPECT_LE(keys.size(), std::uint64_t(pgp->version() - pgp->log_floor) + 8);
    EXPECT_GE(keys.size(), 16u);
  });
}

INSTANTIATE_TEST_SUITE_P(CommunityAndAfceph, OsdPipeline, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "afceph" : "community";
                         });

// ---------------------------------------------------------------------------
// Mechanism-specific behaviour
// ---------------------------------------------------------------------------

TEST(OsdMechanism, AfcephWritePathDoesNoMetadataReads) {
  for (bool light : {false, true}) {
    core::ClusterSim cluster(
        tiny_cluster(light ? core::Profile::afceph() : core::Profile::community(),
                     /*sustained=*/true));
    drive(cluster, [&]() -> sim::CoTask<void> {
      auto& vm = cluster.vm(0);
      for (int i = 0; i < 50; i++) {
        co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(4096, 1));
      }
    });
    std::uint64_t meta_reads = 0;
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      meta_reads += cluster.osd(i).store().metadata_device_reads();
    }
    if (light) {
      EXPECT_EQ(meta_reads, 0u) << "write-through cache must avoid RMW reads";
    } else {
      EXPECT_GT(meta_reads, 20u) << "community RMW reads missing";
    }
  }
}

TEST(OsdMechanism, LightTransactionsCutSyscalls) {
  std::uint64_t syscalls[2] = {0, 0};
  for (int light = 0; light < 2; light++) {
    core::ClusterSim cluster(
        tiny_cluster(light ? core::Profile::afceph() : core::Profile::community()));
    drive(cluster, [&]() -> sim::CoTask<void> {
      auto& vm = cluster.vm(0);
      for (int i = 0; i < 50; i++) {
        co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(4096, 1));
      }
      co_await sim::delay(cluster.simulation(), 2 * kSecond);  // applies drain
    });
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      syscalls[light] += cluster.osd(i).store().syscalls();
    }
  }
  EXPECT_GT(syscalls[0], syscalls[1] * 2);
}

TEST(OsdMechanism, PendingQueueDefersInsteadOfBlocking) {
  // Target one PG with deep concurrency: AFCeph parks ops (pending_defers >
  // 0), community blocks workers on the PG lock (contended acquisitions).
  for (bool afceph : {false, true}) {
    core::ClusterSim cluster(
        tiny_cluster(afceph ? core::Profile::afceph() : core::Profile::community()));
    drive(cluster, [&]() -> sim::CoTask<void> {
      auto& vm = cluster.vm(0);
      sim::WaitGroup wg(cluster.simulation());
      for (int i = 0; i < 64; i++) {
        wg.add(1);
        sim::spawn_fn([&vm, &wg, i]() -> sim::CoTask<void> {
          co_await vm.write_once(0, Payload::pattern(4096, std::uint64_t(i)));
          wg.done();
        });
      }
      co_await wg.wait();
    });
    std::uint64_t defers = 0, contended = 0;
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      defers += cluster.osd(i).pending_defers();
      contended += cluster.osd(i).pg_lock_contended();
    }
    if (afceph) {
      EXPECT_GT(defers, 0u);
    } else {
      EXPECT_EQ(defers, 0u);
      EXPECT_GT(contended, 0u);
    }
  }
}

TEST(OsdMechanism, OrderedAcksDeliverInOrderUnderBatching) {
  auto profile = core::Profile::afceph();
  profile.ordered_acks = true;
  core::ClusterSim cluster(tiny_cluster(profile));
  // Issue many concurrent writes from one client across different PGs and
  // record ack arrival order by op id.
  std::vector<std::uint64_t> acked;
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    sim::WaitGroup wg(cluster.simulation());
    for (int i = 0; i < 48; i++) {
      wg.add(1);
      sim::spawn_fn([&, i]() -> sim::CoTask<void> {
        co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(4096, 1));
        acked.push_back(std::uint64_t(i));
        wg.done();
      });
    }
    co_await wg.wait();
  });
  ASSERT_EQ(acked.size(), 48u);
  // Ordered acks apply per OSD: for ops hitting the same primary, ack order
  // must match issue order.
  std::map<std::uint32_t, std::vector<std::uint64_t>> per_primary;
  for (auto idx : acked) {
    const auto m = cluster.vm(0).image().map(idx * 4 * kMiB);
    per_primary[cluster.map().primary(cluster.map().pg_of(m.object_name))].push_back(idx);
  }
  for (const auto& [osd, order] : per_primary) {
    for (std::size_t i = 1; i < order.size(); i++) {
      EXPECT_LT(order[i - 1], order[i]) << "unordered ack from osd " << osd;
    }
  }
}

TEST(OsdMechanism, CommunityThrottlesAreHddSized) {
  core::ClusterSim community(tiny_cluster(core::Profile::community()));
  core::ClusterSim tuned(tiny_cluster(core::Profile::afceph()));
  EXPECT_EQ(community.osd(0).throttles().filestore_ops.capacity(), 50u);
  EXPECT_EQ(community.osd(0).throttles().messages.capacity(), 100u);
  EXPECT_EQ(tuned.osd(0).throttles().filestore_ops.capacity(), 2048u);
  EXPECT_EQ(tuned.osd(0).throttles().messages.capacity(), 5000u);
}

TEST(OsdMechanism, JournalEntriesSmallerWithLightTransactions) {
  std::uint64_t journal_bytes[2] = {0, 0};
  for (int light = 0; light < 2; light++) {
    core::ClusterSim cluster(
        tiny_cluster(light ? core::Profile::afceph() : core::Profile::community()));
    drive(cluster, [&]() -> sim::CoTask<void> {
      auto& vm = cluster.vm(0);
      for (int i = 0; i < 40; i++) {
        co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(4096, 1));
      }
    });
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      journal_bytes[light] += cluster.osd(i).journal().bytes_written();
    }
  }
  // The alloc-hint op and redundancy disappear; entries shrink.
  EXPECT_LT(journal_bytes[1], journal_bytes[0]);
}

TEST(OsdMechanism, ReadsDoNotTouchTheJournal) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    co_await vm.write_once(0, Payload::pattern(4096, 1));
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      before += cluster.osd(i).journal().entries_written();
    }
    for (int i = 0; i < 20; i++) (void)co_await vm.read_once(0, 4096);
    std::uint64_t after = 0;
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      after += cluster.osd(i).journal().entries_written();
    }
    EXPECT_EQ(before, after);
  });
}

TEST(OsdMechanism, NonexistentObjectReadFails) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto r = co_await cluster.vm(0).read_once(100 * kMiB, 4096);
    EXPECT_FALSE(r.ok);
  });
}

TEST(OsdMechanism, SustainedClusterReadsPreexistingData) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph(), /*sustained=*/true));
  drive(cluster, [&]() -> sim::CoTask<void> {
    // 80%-full cluster: objects exist before any write.
    auto r = co_await cluster.vm(0).read_once(32 * kMiB, 4096);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.data.size(), 4096u);
  });
}

TEST(OsdRecovery, DecommissionRereplicatesAndDataSurvives) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  constexpr int kObjects = 48;
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    for (int i = 0; i < kObjects; i++) {
      co_await vm.write_once(std::uint64_t(i) * 4 * kMiB,
                             Payload::pattern(4096, 900 + std::uint64_t(i)));
    }
    co_await sim::delay(cluster.simulation(), 2 * kSecond);  // applies drain

    const std::uint64_t migrated = co_await cluster.decommission_osd(0);
    EXPECT_GT(migrated, 0u);

    // Placement no longer references OSD 0.
    for (std::uint32_t pg = 0; pg < cluster.config().pg_num; pg++) {
      for (auto osd : cluster.map().acting(pg)) EXPECT_NE(osd, 0u);
    }
    // All data still verifies through the new mapping.
    for (int i = 0; i < kObjects; i++) {
      auto r = co_await vm.read_once(std::uint64_t(i) * 4 * kMiB, 4096);
      EXPECT_TRUE(r.ok) << i;
      EXPECT_TRUE(Payload::bytes(std::move(r.data))
                      .content_equals(Payload::pattern(4096, 900 + std::uint64_t(i))))
          << i;
    }
    // Replication is fully restored: every written object exists on both
    // current acting members.
    for (int i = 0; i < kObjects; i++) {
      const auto m = cluster.vm(0).image().map(std::uint64_t(i) * 4 * kMiB);
      const auto pg = cluster.map().pg_of(m.object_name);
      for (auto osd : cluster.map().acting(pg)) {
        EXPECT_TRUE(
            cluster.osd(osd).store().object_in_memory(fs::ObjectId{pg, m.object_name}))
            << "object " << i << " missing on osd " << osd;
      }
    }
  });
}

TEST(OsdRecovery, AddNodeRebalancesPgs) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    for (int i = 0; i < 32; i++) {
      co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(4096, 70 + std::uint64_t(i)));
    }
    co_await sim::delay(cluster.simulation(), 2 * kSecond);

    const std::size_t before = cluster.osd_count();
    co_await cluster.add_node();
    EXPECT_EQ(cluster.osd_count(), before + cluster.config().osds_per_node);

    // The new OSDs own a reasonable share of PGs.
    std::size_t on_new = 0;
    for (std::uint32_t pg = 0; pg < cluster.config().pg_num; pg++) {
      for (auto osd : cluster.map().acting(pg)) {
        if (osd >= before) on_new++;
      }
    }
    EXPECT_GT(on_new, cluster.config().pg_num / 8);

    // Everything still verifies after the rebalance.
    for (int i = 0; i < 32; i++) {
      auto r = co_await vm.read_once(std::uint64_t(i) * 4 * kMiB, 4096);
      EXPECT_TRUE(r.ok) << i;
      EXPECT_TRUE(Payload::bytes(std::move(r.data))
                      .content_equals(Payload::pattern(4096, 70 + std::uint64_t(i))))
          << i;
    }
  });
}

TEST(OsdMechanism, StripedIoAcrossObjectBoundaries) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    // 6 MiB write starting 1 MiB before an object boundary: spans objects
    // 0 and 1 (and verifies KRBD-style striping end to end).
    auto data = Payload::pattern(6 * kMiB, 0xABCD);
    EXPECT_TRUE(co_await vm.write_once(3 * kMiB, data));
    auto r = co_await vm.read_once(3 * kMiB, 6 * kMiB);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.data.size(), 6 * kMiB);
    EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(data));
    // Partial re-read across just the boundary.
    auto r2 = co_await vm.read_once(4 * kMiB - 512, 1024);
    EXPECT_TRUE(r2.ok);
    EXPECT_TRUE(Payload::bytes(std::move(r2.data))
                    .content_equals(data.slice(kMiB - 512, 1024)));
    // Both objects materialized on their (possibly different) primaries.
    const auto m0 = vm.image().map(3 * kMiB);
    const auto m1 = vm.image().map(4 * kMiB);
    EXPECT_NE(m0.object_name, m1.object_name);
  });
}

TEST(OsdMechanism, ReplicationThreeKeepsThreeCopies) {
  auto cfg = tiny_cluster(core::Profile::afceph());
  cfg.osd_nodes = 3;
  cfg.replication = 3;
  core::ClusterSim cluster(cfg);
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    auto data = Payload::pattern(4096, 0x333);
    EXPECT_TRUE(co_await vm.write_once(0, data));
    co_await sim::delay(cluster.simulation(), 2 * kSecond);
    const auto m = vm.image().map(0);
    const auto pg = cluster.map().pg_of(m.object_name);
    const auto& acting = cluster.map().acting(pg);
    EXPECT_EQ(acting.size(), 3u);
    for (auto osd : acting) {
      EXPECT_TRUE(cluster.osd(osd).store().object_in_memory(fs::ObjectId{pg, m.object_name}))
          << osd;
    }
    auto r = co_await vm.read_once(0, 4096);
    EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(data));
    // Scrub agrees all three copies match.
    auto report = co_await cluster.deep_scrub(false);
    EXPECT_EQ(report.inconsistent, 0u);
    EXPECT_EQ(report.missing, 0u);
  });
}

TEST(OsdMechanism, ZipfSkewConcentratesLoad) {
  // Skewed offsets concentrate writes on the hot object's primary OSD;
  // uniform offsets spread them evenly.
  auto imbalance_with_theta = [](double theta) {
    auto cfg = tiny_cluster(core::Profile::afceph());
    cfg.vms = 2;
    core::ClusterSim cluster(cfg);
    auto spec = client::WorkloadSpec::rand_write(4096, 8);
    spec.zipf_theta = theta;
    spec.warmup = 0;
    spec.runtime = 400 * kMillisecond;
    auto r = cluster.run(spec);
    EXPECT_GT(r.write_iops, 100.0);
    std::uint64_t max_writes = 0, total = 0;
    for (std::size_t i = 0; i < cluster.osd_count(); i++) {
      max_writes = std::max(max_writes, cluster.osd(i).client_writes());
      total += cluster.osd(i).client_writes();
    }
    return double(max_writes) * double(cluster.osd_count()) / double(total);
  };
  const double uniform = imbalance_with_theta(0.0);   // ~1.0 = balanced
  const double skewed = imbalance_with_theta(1.1);    // >> 1 = hot primary
  EXPECT_LT(uniform, 1.6);
  EXPECT_GT(skewed, uniform * 1.3);
}

TEST(OsdScrub, CleanClusterScrubsClean) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    for (int i = 0; i < 32; i++) {
      co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(4096, std::uint64_t(i)));
    }
    co_await sim::delay(cluster.simulation(), 2 * kSecond);
    auto report = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_GE(report.objects_scrubbed, 32u);
    EXPECT_EQ(report.inconsistent, 0u);
    EXPECT_EQ(report.missing, 0u);
  });
}

TEST(OsdScrub, DetectsAndRepairsCorruptReplica) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    for (int i = 0; i < 16; i++) {
      co_await vm.write_once(std::uint64_t(i) * 4 * kMiB, Payload::pattern(4096, 40 + std::uint64_t(i)));
    }
    co_await sim::delay(cluster.simulation(), 2 * kSecond);

    // Inject latent corruption into one object's REPLICA (non-primary) copy.
    const auto m = vm.image().map(0);
    const auto pg = cluster.map().pg_of(m.object_name);
    const auto& acting = cluster.map().acting(pg);
    const fs::ObjectId oid{pg, m.object_name};
    EXPECT_TRUE(cluster.osd(acting[1]).store().corrupt_object(oid));

    auto detect = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_EQ(detect.inconsistent, 1u);

    auto repair = co_await cluster.deep_scrub(/*repair=*/true);
    EXPECT_EQ(repair.inconsistent, 1u);
    EXPECT_GE(repair.repaired, 1u);

    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_EQ(verify.inconsistent, 0u);

    // The replica's bytes now match the primary's (and the client pattern).
    auto r = co_await vm.read_once(0, 4096);
    EXPECT_TRUE(Payload::bytes(std::move(r.data)).content_equals(Payload::pattern(4096, 40)));
  });
}

TEST(OsdScrub, DetectsMissingReplica) {
  core::ClusterSim cluster(tiny_cluster(core::Profile::afceph()));
  drive(cluster, [&]() -> sim::CoTask<void> {
    auto& vm = cluster.vm(0);
    co_await vm.write_once(0, Payload::pattern(4096, 5));
    co_await sim::delay(cluster.simulation(), 2 * kSecond);
    // Corrupting a never-written object is impossible...
    EXPECT_FALSE(cluster.osd(0).store().corrupt_object(fs::ObjectId{0, "nope"}));
    // ...but scrub flags primary/replica divergence if a write only reached
    // one side. Simulate by writing directly into the primary's store.
    const auto m = vm.image().map(8 * kMiB);
    const auto pg = cluster.map().pg_of(m.object_name);
    const auto& acting = cluster.map().acting(pg);
    fs::Transaction t;
    t.write(fs::ObjectId{pg, m.object_name}, 0, Payload::pattern(4096, 77));
    bool applied = false;
    sim::spawn_fn([&cluster, &acting, &t, &applied]() -> sim::CoTask<void> {
      co_await cluster.osd(acting[0]).store().apply_transaction(t, true);
      applied = true;
    });
    co_await sim::delay(cluster.simulation(), 1 * kSecond);
    EXPECT_TRUE(applied);
    auto report = co_await cluster.deep_scrub(/*repair=*/true);
    EXPECT_GE(report.missing, 1u);
    EXPECT_GE(report.repaired, 1u);
    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_EQ(verify.missing, 0u);
  });
}

TEST(OsdMechanism, WorkloadRunnerProducesConsistentStats) {
  auto cfg = tiny_cluster(core::Profile::afceph());
  cfg.vms = 4;
  core::ClusterSim cluster(cfg);
  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.warmup = 50 * kMillisecond;
  spec.runtime = 300 * kMillisecond;
  auto r = cluster.run(spec);
  EXPECT_GT(r.write_iops, 100.0);
  EXPECT_GT(r.write_lat_ms, 0.0);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_GT(r.write_lat.count(), 0u);
  // Latency percentiles are ordered.
  EXPECT_LE(r.write_lat.percentile(0.5), r.write_lat.percentile(0.99));
}

TEST(OsdMechanism, VerifyModeChecksDataEndToEnd) {
  auto cfg = tiny_cluster(core::Profile::afceph());
  cfg.vms = 2;
  core::ClusterSim cluster(cfg);
  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.write_fraction = 0.5;
  spec.verify = true;
  spec.warmup = 0;
  spec.runtime = 400 * kMillisecond;
  auto r = cluster.run(spec);
  EXPECT_GT(r.read_lat.count(), 0u);
  EXPECT_EQ(r.verify_failures, 0u);
}

// ---------------------------------------------------------------------------
// Paper-shape regression guards (coarse thresholds; runs are deterministic)
// ---------------------------------------------------------------------------

TEST(PaperShapes, AfcephOutperformsCommunityOnRandomWrites) {
  double iops[2];
  for (int p = 0; p < 2; p++) {
    auto cfg = tiny_cluster(p ? core::Profile::afceph() : core::Profile::community(),
                            /*sustained=*/true);
    cfg.vms = 8;
    core::ClusterSim cluster(cfg);
    auto spec = client::WorkloadSpec::rand_write(4096, 8);
    spec.warmup = 200 * kMillisecond;
    spec.runtime = 600 * kMillisecond;
    iops[p] = cluster.run(spec).write_iops;
  }
  EXPECT_GT(iops[1], iops[0] * 1.5) << "community " << iops[0] << " afceph " << iops[1];
}

TEST(PaperShapes, NagleGivesCommunityALatencyFloorAtLowDepth) {
  double lat[2];
  for (int p = 0; p < 2; p++) {
    auto cfg = tiny_cluster(p ? core::Profile::afceph() : core::Profile::community(),
                            /*sustained=*/true);
    cfg.vms = 2;
    core::ClusterSim cluster(cfg);
    auto spec = client::WorkloadSpec::rand_write(4096, 1);
    spec.warmup = 100 * kMillisecond;
    spec.runtime = 400 * kMillisecond;
    lat[p] = cluster.run(spec).write_lat_ms;
  }
  EXPECT_GT(lat[0], 3.0) << "community low-depth latency should carry the Nagle stall";
  EXPECT_LT(lat[1], lat[0] / 2.0);
}

TEST(PaperShapes, SustainedStateHurtsCommunityMoreThanAfceph) {
  // Community pays metadata RMW reads + WBThrottle'd applies on slow flash;
  // AFCeph's light transactions dodge most of it.
  double ratio[2];
  for (int p = 0; p < 2; p++) {
    double by_state[2];
    for (int sustained = 0; sustained < 2; sustained++) {
      auto cfg = tiny_cluster(p ? core::Profile::afceph() : core::Profile::community(),
                              sustained != 0);
      cfg.vms = 8;
      core::ClusterSim cluster(cfg);
      auto spec = client::WorkloadSpec::rand_write(4096, 8);
      spec.warmup = 200 * kMillisecond;
      spec.runtime = 600 * kMillisecond;
      by_state[sustained] = cluster.run(spec).write_iops;
    }
    ratio[p] = by_state[0] / by_state[1];  // clean / sustained
  }
  EXPECT_GT(ratio[0], ratio[1]) << "community should lose more to sustained state";
}

}  // namespace
}  // namespace afc
