// Quick entry point for the rt concurrency stress harness (the suite
// itself lives in src/rt/stress.cc; bench/stress_rt is the soak entry).
// Registered with ctest at a handful of iterations so the tier-1 run stays
// fast; scripts/check.sh re-runs it at 100+ iterations, native and under
// ThreadSanitizer.

#include "rt/stress.h"

int main(int argc, char** argv) {
  afc::rt::StressOptions defaults;
  defaults.seed = 1;
  defaults.iterations = 25;
  defaults.scale = 1;
  return afc::rt::run_stress(afc::rt::parse_stress_args(argc, argv, defaults));
}
