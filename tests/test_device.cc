// Tests for the device models: channel queueing, service-time structure,
// clean vs sustained SSD behaviour, mixed read/write interference, GC
// stalls, bandwidth aggregation, HDD seek vs streaming.

#include <gtest/gtest.h>

#include "device/hdd.h"
#include "device/nvram.h"
#include "device/ssd.h"
#include "sim/task.h"

namespace afc::dev {
namespace {

struct Driver {
  sim::Simulation sim;

  // Issue `count` I/Os of `len` with `parallel` outstanding; returns makespan.
  Time run_ios(Device& dev, IoType type, std::uint64_t len, int count, int parallel) {
    int remaining = count;
    for (int p = 0; p < parallel; p++) {
      sim::spawn_fn([&dev, &remaining, type, len, this]() -> sim::CoTask<void> {
        std::uint64_t off = 0;
        while (remaining > 0) {
          remaining--;
          co_await dev.submit(type, off, len);
          off += len;  // sequential per worker
        }
      });
    }
    sim.run();
    return sim.now();
  }
};

TEST(SsdModel, ThroughputScalesWithQueueDepthUntilChannels) {
  SsdModel::Config cfg;
  cfg.drives = 1;
  cfg.channels_per_drive = 4;
  Driver d1, d8;
  SsdModel ssd1(d1.sim, "a", cfg);
  SsdModel ssd8(d8.sim, "b", cfg);
  const Time t1 = d1.run_ios(ssd1, IoType::kRead, 4096, 400, 1);
  const Time t8 = d8.run_ios(ssd8, IoType::kRead, 4096, 400, 8);
  // 4 channels => ~4x speedup from parallelism, then it flattens.
  EXPECT_GT(double(t1) / double(t8), 3.0);
  EXPECT_LT(double(t1) / double(t8), 5.0);
}

TEST(SsdModel, SustainedStateSlowsSmallWrites) {
  SsdModel::Config cfg;
  cfg.gc_interval_bytes = 256 * 1024;  // make GC stalls visible at test scale
  Driver dc, ds;
  SsdModel clean(dc.sim, "clean", cfg);
  cfg.sustained = true;
  SsdModel sust(ds.sim, "sust", cfg);
  const Time tc = dc.run_ios(clean, IoType::kWrite, 4096, 500, 4);
  const Time tsu = ds.run_ios(sust, IoType::kWrite, 4096, 500, 4);
  EXPECT_GT(double(tsu) / double(tc), 2.0);
  EXPECT_GT(sust.gc_stalls(), 0u);
  EXPECT_EQ(clean.gc_stalls(), 0u);
}

TEST(SsdModel, DaemonRestartResetsGcProgressNotWear) {
  SsdModel::Config cfg;
  cfg.sustained = true;
  cfg.gc_interval_bytes = 1 * kMiB;
  cfg.stream_count = 0;  // unhinted: every byte counts toward the interval
  Driver d;
  SsdModel ssd(d.sim, "s", cfg);
  // Just under one GC interval: progress accrues, no pause yet.
  d.run_ios(ssd, IoType::kWrite, 64 * 1024, 15, 1);  // 960 KiB
  EXPECT_EQ(ssd.gc_stalls(), 0u);
  EXPECT_GT(ssd.bytes_since_gc(), 0u);

  // The daemon crashes and comes back: the FTL idled through the downtime
  // and caught up on erase work, so partial progress toward the next pause
  // must not leak into the revived daemon's first writes — but cumulative
  // wear (gc_stalls_) is physical and survives.
  ssd.note_daemon_restart();
  EXPECT_EQ(ssd.bytes_since_gc(), 0u);
  EXPECT_EQ(ssd.gc_stalls(), 0u);

  // A fresh interval of writes lands with no stall (without the reset,
  // 960 KiB + 960 KiB would have crossed 1 MiB mid-batch)...
  d.run_ios(ssd, IoType::kWrite, 64 * 1024, 15, 1);
  EXPECT_EQ(ssd.gc_stalls(), 0u);
  // ...and the pause then arrives on schedule, not early.
  d.run_ios(ssd, IoType::kWrite, 64 * 1024, 2, 1);
  EXPECT_EQ(ssd.gc_stalls(), 1u);
}

TEST(SsdModel, SustainedPenaltyMilderForLargeWrites) {
  auto ratio_for = [](std::uint64_t len, int count) {
    SsdModel::Config cfg;
    Driver dc, ds;
    SsdModel clean(dc.sim, "c", cfg);
    cfg.sustained = true;
    SsdModel sust(ds.sim, "s", cfg);
    const Time tc = dc.run_ios(clean, IoType::kWrite, len, count, 4);
    const Time tsu = ds.run_ios(sust, IoType::kWrite, len, count, 4);
    return double(tsu) / double(tc);
  };
  EXPECT_GT(ratio_for(4096, 400), ratio_for(1 * kMiB, 40) + 0.5);
}

TEST(SsdModel, MixedReadsPayPenaltyBehindWrites) {
  // Reads issued while writes are in flight must be slower than reads on an
  // idle device — the FIOS effect the light-weight transaction removes.
  SsdModel::Config cfg;
  cfg.drives = 2;
  Driver pure;
  SsdModel dev_pure(pure.sim, "pure", cfg);
  const Time t_pure = pure.run_ios(dev_pure, IoType::kRead, 4096, 200, 2);

  Driver mixed;
  SsdModel dev_mixed(mixed.sim, "mixed", cfg);
  // Continuous write background.
  sim::spawn_fn([&]() -> sim::CoTask<void> {
    for (int i = 0; i < 2000; i++) co_await dev_mixed.submit(IoType::kWrite, 0, 4096);
  });
  const Time t_mixed = mixed.run_ios(dev_mixed, IoType::kRead, 4096, 200, 2);
  EXPECT_GT(double(t_mixed), double(t_pure) * 1.5);
}

TEST(SsdModel, BandwidthAggregatesNotMultiplies) {
  // N concurrent large transfers must sum to the configured aggregate
  // bandwidth (channels share the bus; regression test for the per-channel
  // bandwidth bug).
  SsdModel::Config cfg;
  cfg.drives = 1;
  cfg.channels_per_drive = 4;
  cfg.write_bw_per_drive = 400 * kMiB;
  Driver d;
  SsdModel ssd(d.sim, "bw", cfg);
  const std::uint64_t total_bytes = 400 * kMiB;  // should take ~1s
  d.run_ios(ssd, IoType::kWrite, 1 * kMiB, int(total_bytes / kMiB), 4);
  EXPECT_NEAR(to_s(d.sim.now()), 1.0, 0.25);
}

TEST(SsdModel, RaidZeroWidensBandwidthAndChannels) {
  SsdModel::Config one;
  one.drives = 1;
  SsdModel::Config three = one;
  three.drives = 3;
  Driver d1, d3;
  SsdModel s1(d1.sim, "one", one);
  SsdModel s3(d3.sim, "three", three);
  EXPECT_EQ(s3.channels(), 3 * s1.channels());
  const Time t1 = d1.run_ios(s1, IoType::kWrite, 1 * kMiB, 120, 12);
  const Time t3 = d3.run_ios(s3, IoType::kWrite, 1 * kMiB, 120, 12);
  EXPECT_NEAR(double(t1) / double(t3), 3.0, 0.6);
}

TEST(SsdModel, LatencyHistogramIncludesQueueing) {
  SsdModel::Config cfg;
  cfg.drives = 1;
  cfg.channels_per_drive = 1;
  Driver d;
  SsdModel ssd(d.sim, "q", cfg);
  d.run_ios(ssd, IoType::kRead, 4096, 64, 16);  // deep queue on one channel
  EXPECT_EQ(ssd.reads(), 64u);
  // With 16 outstanding on one channel, p99 latency >> service time.
  EXPECT_GT(ssd.read_latency().percentile(0.99), 10 * ssd.read_latency().min());
}

TEST(NvramModel, OrdersOfMagnitudeFasterThanSsdSmallWrites) {
  Driver dn, ds;
  NvramModel nv(dn.sim, "nv");
  SsdModel::Config scfg;
  scfg.sustained = true;
  SsdModel ssd(ds.sim, "ssd", scfg);
  const Time tn = dn.run_ios(nv, IoType::kWrite, 4096, 400, 4);
  const Time ts = ds.run_ios(ssd, IoType::kWrite, 4096, 400, 4);
  EXPECT_GT(double(ts) / double(tn), 5.0);
}

TEST(HddModel, RandomAccessPaysSeek) {
  Driver d;
  HddModel hdd(d.sim, "hdd");
  // Random: scatter offsets.
  sim::spawn_fn([&]() -> sim::CoTask<void> {
    Rng rng(3);
    for (int i = 0; i < 50; i++) {
      co_await hdd.submit(IoType::kRead, rng.next() % (1ull << 30), 4096);
    }
  });
  d.sim.run();
  // ~8ms average positioning => 50 ops well above 200ms total.
  EXPECT_GT(d.sim.now(), 200 * kMillisecond);
}

TEST(HddModel, SequentialStreamsNearMediaRate) {
  Driver d;
  HddModel::Config cfg;
  HddModel hdd(d.sim, "hdd", cfg);
  const int ops = 64;
  d.run_ios(hdd, IoType::kWrite, 1 * kMiB, ops, 1);
  const double mbps = double(ops) / to_s(d.sim.now());
  EXPECT_GT(mbps, 100.0);  // close to the 160 MB/s media rate
}

TEST(HddModel, RandomVsSequentialGapIsLarge) {
  // The core premise of the paper's framing: HDDs don't care about software
  // overhead because positioning dominates random I/O.
  Driver dr, ds;
  HddModel r(dr.sim, "r"), s(ds.sim, "s");
  sim::spawn_fn([&]() -> sim::CoTask<void> {
    Rng rng(9);
    for (int i = 0; i < 100; i++) {
      co_await r.submit(IoType::kWrite, (rng.next() % (1ull << 28)) & ~4095ull, 4096);
    }
  });
  dr.sim.run();
  ds.run_ios(s, IoType::kWrite, 4096, 100, 1);
  EXPECT_GT(double(dr.sim.now()) / double(ds.sim.now()), 20.0);
}

TEST(Device, UtilizationBounded) {
  Driver d;
  SsdModel ssd(d.sim, "u", SsdModel::Config{});
  d.run_ios(ssd, IoType::kWrite, 4096, 200, 8);
  EXPECT_GT(ssd.utilization(), 0.1);
  EXPECT_LE(ssd.utilization(), 1.0 + 1e-9);
}

TEST(Device, StatsSeparateReadsAndWrites) {
  Driver d;
  NvramModel nv(d.sim, "nv");
  sim::spawn_fn([&]() -> sim::CoTask<void> {
    co_await nv.submit(IoType::kWrite, 0, 100);
    co_await nv.submit(IoType::kWrite, 0, 200);
    co_await nv.submit(IoType::kRead, 0, 50);
  });
  d.sim.run();
  EXPECT_EQ(nv.writes(), 2u);
  EXPECT_EQ(nv.reads(), 1u);
  EXPECT_EQ(nv.bytes_written(), 300u);
  EXPECT_EQ(nv.bytes_read(), 50u);
  EXPECT_EQ(nv.inflight_reads(), 0u);
  EXPECT_EQ(nv.inflight_writes(), 0u);
}

}  // namespace
}  // namespace afc::dev
