// Tests for the fault-injection subsystem: FaultPlan construction and
// seeded generation, injector crash/restart semantics against a live
// cluster, the primary-side replication watchdog, and client-side
// timeout/resubmit. The chaos soak (bench/chaos.cc) covers the long
// randomized runs; these are the targeted unit checks.

#include <gtest/gtest.h>

#include <string>

#include "afceph.h"

namespace afc {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: builders, seeded generation, describe()

TEST(FaultPlan, BuildersAppendTypedEvents) {
  fault::FaultPlan plan;
  plan.crash_restart(100 * kMillisecond, 2, 50 * kMillisecond);
  plan.ssd_slow(10 * kMillisecond, 1, 4.0, 20 * kMillisecond);
  plan.link_drop(30 * kMillisecond, 0, 3, 0.25, 40 * kMillisecond);

  ASSERT_EQ(plan.events.size(), 4u);  // crash_restart contributes two
  EXPECT_EQ(plan.events[0].kind, fault::FaultKind::kOsdCrash);
  EXPECT_EQ(plan.events[0].at, 100 * kMillisecond);
  EXPECT_EQ(plan.events[1].kind, fault::FaultKind::kOsdRestart);
  EXPECT_EQ(plan.events[1].at, 150 * kMillisecond);
  EXPECT_EQ(plan.events[1].osd, 2u);
  EXPECT_DOUBLE_EQ(plan.events[2].factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.events[3].p, 0.25);
  EXPECT_EQ(plan.events[3].peer, 3u);
}

TEST(FaultPlan, RandomIsSeedStable) {
  const Time warmup = 100 * kMillisecond;
  const Time horizon = 1000 * kMillisecond;
  fault::FaultPlan a = fault::FaultPlan::random(7, warmup, horizon, 12, 4);
  fault::FaultPlan b = fault::FaultPlan::random(7, warmup, horizon, 12, 4);
  fault::FaultPlan c = fault::FaultPlan::random(8, warmup, horizon, 12, 4);

  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, RandomStaysInWindowAndHeals) {
  const Time warmup = 150 * kMillisecond;
  const Time horizon = 900 * kMillisecond;
  fault::FaultPlan plan = fault::FaultPlan::random(3, warmup, horizon, 20, 4);
  EXPECT_FALSE(plan.empty());

  int crashes = 0, restarts = 0, torn = 0;
  for (const auto& e : plan.events) {
    EXPECT_GE(e.at, warmup);
    EXPECT_LE(e.at, horizon);
    EXPECT_LT(e.osd, 4u);
    if (e.kind == fault::FaultKind::kOsdCrash) crashes++;
    if (e.kind == fault::FaultKind::kOsdRestart) restarts++;
    if (e.kind == fault::FaultKind::kTornWrite) torn++;
  }
  // Every generated crash — explicit or via a torn write (which kills the
  // daemon mid-persist) — is paired with a restart, so a randomized soak
  // always ends with the whole cluster back up.
  EXPECT_EQ(crashes + torn, restarts);
}

TEST(FaultPlan, DescribeNamesEveryKind) {
  fault::FaultPlan plan;
  plan.crash_restart(1, 0, 1);
  plan.ssd_slow(1, 0, 2.0, 1);
  plan.link_drop(1, 0, 1, 0.1, 1);
  plan.link_delay(1, 0, 1, 100, 1);
  plan.link_partition(1, 0, 1, 1);
  plan.journal_stall(1, 0, 1);
  plan.bit_flip_data(1, 0);
  plan.torn_write(1, 0);
  const std::string text = plan.describe();
  for (auto kind : {fault::FaultKind::kOsdCrash, fault::FaultKind::kOsdRestart,
                    fault::FaultKind::kSsdSlow, fault::FaultKind::kLinkDrop,
                    fault::FaultKind::kLinkDelay, fault::FaultKind::kLinkPartition,
                    fault::FaultKind::kJournalStall, fault::FaultKind::kBitFlip,
                    fault::FaultKind::kTornWrite}) {
    EXPECT_NE(text.find(fault::kind_name(kind)), std::string::npos)
        << "describe() is missing " << fault::kind_name(kind);
  }
  // The two bit-flip flavours describe distinctly (the media matters).
  fault::FaultPlan data_flip, journal_flip;
  data_flip.bit_flip_data(1, 0);
  journal_flip.bit_flip_journal(1, 0);
  EXPECT_NE(data_flip.describe(), journal_flip.describe());
  EXPECT_NE(journal_flip.describe().find("media=journal"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Injector + recovery machinery against a small live cluster.

core::ClusterConfig small_cluster(std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = 4;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 1;
  cfg.vms = 2;
  cfg.pg_num = 32;
  cfg.replication = 2;
  cfg.min_size = 1;
  cfg.sustained = false;
  cfg.image_size = 512 * kMiB;
  cfg.seed = seed;
  return cfg;
}

struct SoakResult {
  std::uint64_t begun = 0;
  std::uint64_t resolved = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t pending = 0;
  std::uint64_t below_min = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rep_recoveries = 0;  // retry rounds + abandoned peers
  std::uint64_t events = 0;
};

/// Drive the VMs directly (as bench/chaos.cc does) so the stats sink
/// outlives the post-deadline drain, then sweep up the recovery counters.
SoakResult drive(core::ClusterSim& cluster, Time runtime) {
  auto spec = client::WorkloadSpec::rand_write(4096, 4);
  spec.warmup = 50 * kMillisecond;
  spec.runtime = runtime;
  client::RunStats stats;
  stats.window_start = spec.warmup;
  stats.window_end = spec.warmup + spec.runtime;
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    cluster.vm(v).start(spec, stats.window_end, &stats);
  }
  cluster.simulation().run_until(stats.window_end);
  cluster.simulation().run();  // drain timeouts, retries, backfills

  SoakResult r;
  r.events = cluster.simulation().executed_events();
  for (std::size_t v = 0; v < cluster.vm_count(); v++) {
    auto& vm = cluster.vm(v);
    r.begun += vm.ops_begun();
    r.resolved += vm.ops_resolved();
    r.failed += vm.ops_failed();
    r.retries += vm.op_retries();
    r.pending += vm.pending_size();
  }
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    auto& c = cluster.osd(o).counters();
    r.below_min += c.get("osd.acks_below_min_size");
    r.degraded += c.get("osd.acks_degraded");
    r.rep_recoveries += c.get("osd.rep_retry_rounds") + c.get("osd.rep_peers_abandoned");
  }
  return r;
}

TEST(FaultInjector, EmptyPlanPerturbsNothing) {
  core::ClusterSim bare(small_cluster(42));
  const SoakResult a = drive(bare, 200 * kMillisecond);

  core::ClusterSim armed(small_cluster(42));
  fault::FaultInjector& inj = armed.install_faults(fault::FaultPlan{});
  const SoakResult b = drive(armed, 200 * kMillisecond);

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.begun, b.begun);
  EXPECT_EQ(a.resolved, b.resolved);
  EXPECT_TRUE(inj.counters().all().empty());
}

TEST(FaultInjector, CrashMarksDownRestartHealsAndBackfills) {
  core::ClusterSim cluster(small_cluster(42));
  fault::FaultPlan plan;
  plan.crash_restart(100 * kMillisecond, 1, 80 * kMillisecond);
  fault::FaultInjector& inj = cluster.install_faults(plan);

  const std::uint64_t epoch0 = cluster.map().epoch();
  cluster.simulation().run_until(120 * kMillisecond);
  EXPECT_FALSE(cluster.map().crush().osds()[1].up);
  EXPECT_GT(cluster.map().epoch(), epoch0);

  cluster.simulation().run();
  EXPECT_TRUE(cluster.map().crush().osds()[1].up);
  EXPECT_EQ(inj.counters().get("fault.osd_crash"), 1u);
  EXPECT_EQ(inj.counters().get("fault.osd_restart"), 1u);
  // The returning OSD missed the epoch-bump window; it is re-primed with
  // the PGs it re-joins.
  EXPECT_GT(inj.counters().get("fault.backfills"), 0u);
}

TEST(FaultInjector, CrashUnderLoadDegradesButNeverAcksBelowMinSize) {
  core::ClusterConfig cfg = small_cluster(42);
  cfg.osd.rep_timeout = 20 * kMillisecond;  // replication watchdog on
  cfg.osd.rep_retries = 1;
  cfg.client_op_timeout = 100 * kMillisecond;
  core::ClusterSim cluster(cfg);

  fault::FaultPlan plan;
  plan.crash(120 * kMillisecond, 2);  // permanent: no restart
  cluster.install_faults(plan);

  const SoakResult r = drive(cluster, 300 * kMillisecond);
  EXPECT_GT(r.begun, 0u);
  EXPECT_EQ(r.begun, r.resolved);  // exactly-once: every op acked or failed
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(r.below_min, 0u);  // durability floor held throughout
  // Ops replicating toward the dead OSD when it died ran the watchdog:
  // retry rounds, then abandonment, then a degraded (min_size) ack.
  EXPECT_GT(r.rep_recoveries, 0u);
  EXPECT_GT(r.degraded, 0u);
}

TEST(FaultInjector, LinkPartitionHealsThroughWatchdog) {
  core::ClusterConfig cfg = small_cluster(42);
  cfg.osd.rep_timeout = 20 * kMillisecond;
  cfg.osd.rep_retries = 1;
  cfg.client_op_timeout = 100 * kMillisecond;
  core::ClusterSim cluster(cfg);

  fault::FaultPlan plan;
  plan.link_partition(100 * kMillisecond, 0, fault::kAllPeers, 60 * kMillisecond);
  cluster.install_faults(plan);

  const SoakResult r = drive(cluster, 300 * kMillisecond);
  EXPECT_EQ(r.begun, r.resolved);
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(r.below_min, 0u);
  EXPECT_GT(r.rep_recoveries, 0u);  // rep acks vanished into the partition
}

TEST(ClientRetry, TimeoutResubmitsUntilResolved) {
  core::ClusterConfig cfg = small_cluster(42);
  cfg.osd.rep_timeout = 20 * kMillisecond;
  cfg.osd.rep_retries = 1;
  cfg.client_op_timeout = 50 * kMillisecond;  // short fuse: retries visible
  cfg.client_op_retries = 4;
  core::ClusterSim cluster(cfg);

  // Crash the OSD and bring it back much later than the client timeout, so
  // in-flight ops at the crash instant must resubmit to the re-targeted
  // primary instead of waiting out the outage.
  fault::FaultPlan plan;
  plan.crash_restart(120 * kMillisecond, 1, 150 * kMillisecond);
  cluster.install_faults(plan);

  const SoakResult r = drive(cluster, 300 * kMillisecond);
  EXPECT_EQ(r.begun, r.resolved);
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(r.below_min, 0u);
  EXPECT_GT(r.retries, 0u);  // some ops needed a second attempt
}

TEST(FaultInjector, SsdSlowAndJournalStallAreTransparentToClients) {
  core::ClusterConfig cfg = small_cluster(42);
  cfg.client_op_timeout = 200 * kMillisecond;
  core::ClusterSim cluster(cfg);

  fault::FaultPlan plan;
  plan.ssd_slow(80 * kMillisecond, 0, 6.0, 100 * kMillisecond);
  plan.journal_stall(120 * kMillisecond, 3, 30 * kMillisecond);
  fault::FaultInjector& inj = cluster.install_faults(plan);

  const SoakResult r = drive(cluster, 300 * kMillisecond);
  EXPECT_EQ(r.begun, r.resolved);
  EXPECT_EQ(r.failed, 0u);  // slowness is latency, never loss
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(inj.counters().get("fault.ssd_slow"), 1u);
  EXPECT_EQ(inj.counters().get("fault.journal_stall"), 1u);
  EXPECT_EQ(inj.counters().get("fault.cleared"), 1u);  // the ssd_slow window
}

// ---------------------------------------------------------------------------
// Corruption faults end to end: torn-write replay and bit-flip scrub repair.

TEST(FaultInjector, TornWriteReplaysDurableRecordsOnRestart) {
  core::ClusterConfig cfg = small_cluster(42);
  cfg.osd.rep_timeout = 20 * kMillisecond;
  cfg.osd.rep_retries = 1;
  cfg.client_op_timeout = 100 * kMillisecond;
  core::ClusterSim cluster(cfg);

  // Stall the journal writer so a backlog of batches queues up, then tear
  // the queue mid-stall (prefix persists, daemon dies) and restart later.
  fault::FaultPlan plan;
  plan.journal_stall(100 * kMillisecond, 1, 40 * kMillisecond);
  plan.torn_write_restart(120 * kMillisecond, 1, 80 * kMillisecond);
  fault::FaultInjector& inj = cluster.install_faults(plan);

  const SoakResult r = drive(cluster, 400 * kMillisecond);
  EXPECT_GT(r.begun, 0u);
  EXPECT_EQ(r.begun, r.resolved);  // exactly-once: every op acked or failed
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(r.below_min, 0u);

  // The tear found queued batches; the prefix survived as records.
  EXPECT_EQ(inj.counters().get("fault.torn_write"), 1u);
  EXPECT_EQ(inj.counters().get("fault.osd_restart"), 1u);
  EXPECT_GT(inj.counters().get("fault.torn_entries"), 0u);

  // On restart the OSD replayed the surviving prefix from its own ring —
  // locally durable writes came back without peer traffic — and counted
  // exactly one torn tail where replay stopped.
  auto& c = cluster.osd(1).counters();
  EXPECT_GT(c.get("osd.journal.records_replayed"), 0u);
  EXPECT_EQ(c.get("osd.journal.torn_tails"), 1u);
  EXPECT_EQ(c.get("osd.journal.crc_failures"), 0u);
}

TEST(FaultInjector, BitFlipsAreFoundAndRepairedByDeepScrub) {
  core::ClusterSim cluster(small_cluster(42));

  // Flip bytes in data extents on two OSDs well after the workload window:
  // the events fire during the post-deadline drain, when every op has
  // resolved, so nothing overwrites the corruption before the scrub sees it.
  fault::FaultPlan plan;
  plan.bit_flip_data(1 * kSecond, 1);
  plan.bit_flip_data(1 * kSecond, 2);
  fault::FaultInjector& inj = cluster.install_faults(plan);

  const SoakResult r = drive(cluster, 150 * kMillisecond);
  EXPECT_GT(r.begun, 0u);
  EXPECT_EQ(r.begun, r.resolved);
  EXPECT_EQ(inj.counters().get("fault.bit_flip"), 2u);
  EXPECT_EQ(inj.counters().get("fault.bit_flip_noop"), 0u);

  bool done = false;
  sim::spawn_fn([&cluster, &done]() -> sim::CoTask<void> {
    auto detect = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_GT(detect.inconsistent, 0u);

    auto repair = co_await cluster.deep_scrub(/*repair=*/true);
    EXPECT_GE(repair.repaired, repair.inconsistent);

    auto verify = co_await cluster.deep_scrub(/*repair=*/false);
    EXPECT_EQ(verify.inconsistent, 0u);
    EXPECT_EQ(verify.missing, 0u);
    done = true;
  });
  cluster.simulation().run();
  EXPECT_TRUE(done);

  std::uint64_t repaired = 0;
  for (std::size_t o = 0; o < cluster.osd_count(); o++) {
    repaired += cluster.osd(o).counters().get("osd.scrub_objects_repaired");
  }
  EXPECT_GT(repaired, 0u);
}

}  // namespace
}  // namespace afc
