// Tests for the detected-membership plane: the monitor's failure
// arbitration (reporter quorum, TTL pruning, flap hysteresis, down-out,
// laggy flags) driven directly through its public report/beacon cores
// without a network, the client's seeded retry jitter, and a small
// end-to-end crash-detection smoke over the full heartbeat stack.

#include <gtest/gtest.h>

#include <memory>

#include "client/runner.h"
#include "core/cluster_sim.h"
#include "fault/plan.h"
#include "mon/monitor.h"
#include "sim/simulation.h"

namespace afc::mon {
namespace {

// Monitor over a 4-OSD map, no subscribers: publish() only bumps the epoch,
// so every decision is observable as state + counters + epoch.
struct MonHarness {
  sim::Simulation sim;
  cluster::ClusterMap cmap{cluster::ClusterMap::PoolConfig{64, 2}};
  MembershipConfig cfg;
  std::unique_ptr<Monitor> mon;

  MonHarness() {
    for (unsigned i = 0; i < 4; i++) cmap.crush().add_osd(i, i);
    cmap.set_filter_down(true);
    cfg.mode = MembershipMode::kDetected;
    mon = std::make_unique<Monitor>(sim, cmap, cfg);
  }
};

TEST(Monitor, QuorumRequiresDistinctReporters) {
  MonHarness h;
  // One reporter, however persistent, is not a quorum.
  h.mon->handle_report(0, 2, /*laggy=*/false);
  h.mon->handle_report(0, 2, /*laggy=*/false);
  h.mon->handle_report(0, 2, /*laggy=*/false);
  EXPECT_FALSE(h.mon->is_down(2));
  EXPECT_EQ(h.mon->counters().get("mon.markdowns"), 0u);
  // A second distinct reporter is.
  h.mon->handle_report(1, 2, /*laggy=*/false);
  EXPECT_TRUE(h.mon->is_down(2));
  EXPECT_EQ(h.mon->counters().get("mon.markdowns"), 1u);
  EXPECT_FALSE(h.cmap.crush().is_up(2));
  EXPECT_TRUE(h.cmap.crush().is_in(2));  // down, not out: no data movement
}

TEST(Monitor, ReportTtlPruning) {
  MonHarness h;
  h.mon->handle_report(0, 2, /*laggy=*/false);
  // Let the first report age out, then count again with a fresh reporter.
  h.sim.run_until(h.cfg.report_ttl + kMillisecond);
  h.mon->handle_report(1, 2, /*laggy=*/false);
  EXPECT_FALSE(h.mon->is_down(2)) << "a stale report counted toward quorum";
  // Re-reporting refreshes: now two fresh reporters.
  h.mon->handle_report(0, 2, /*laggy=*/false);
  EXPECT_TRUE(h.mon->is_down(2));
}

TEST(Monitor, FlapBackoffEscalates) {
  MonHarness h;
  const auto quorum = [&] {
    h.mon->handle_report(0, 1, false);
    h.mon->handle_report(2, 1, false);
  };
  quorum();
  ASSERT_TRUE(h.mon->is_down(1));
  const Time down1 = h.sim.now();
  h.mon->handle_beacon(1, /*boot=*/false);
  ASSERT_FALSE(h.mon->is_down(1));

  // A re-mark-down inside the quiet period is deferred, not taken.
  quorum();
  EXPECT_FALSE(h.mon->is_down(1));
  EXPECT_EQ(h.mon->counters().get("mon.markdowns_deferred"), 1u);
  // Past one backoff it sticks again.
  h.sim.run_until(down1 + h.cfg.markdown_backoff + kMillisecond);
  quorum();
  ASSERT_TRUE(h.mon->is_down(1));
  const Time down2 = h.sim.now();
  h.mon->handle_beacon(1, false);

  // Two recent mark-downs double the quiet period: 1x backoff is no longer
  // enough, 2x is.
  h.sim.run_until(down2 + h.cfg.markdown_backoff + kMillisecond);
  quorum();
  EXPECT_FALSE(h.mon->is_down(1));
  h.sim.run_until(down2 + 2 * h.cfg.markdown_backoff + kMillisecond);
  quorum();
  EXPECT_TRUE(h.mon->is_down(1));
}

TEST(Monitor, DownOutIntervalMarksOut) {
  MonHarness h;
  h.mon->handle_report(0, 3, false);
  h.mon->handle_report(1, 3, false);
  ASSERT_TRUE(h.mon->is_down(3));
  EXPECT_FALSE(h.mon->is_out(3));
  const std::uint64_t epoch_down = h.cmap.epoch();
  h.sim.run_until(h.sim.now() + h.cfg.down_out_interval + kMillisecond);
  EXPECT_TRUE(h.mon->is_out(3));
  EXPECT_EQ(h.mon->counters().get("mon.markouts"), 1u);
  EXPECT_FALSE(h.cmap.crush().is_in(3));  // only now does placement change
  EXPECT_GT(h.cmap.epoch(), epoch_down);
}

TEST(Monitor, BeaconMarksUpAndAutoIn) {
  MonHarness h;
  h.mon->handle_report(0, 3, false);
  h.mon->handle_report(1, 3, false);
  h.sim.run_until(h.sim.now() + h.cfg.down_out_interval + kMillisecond);
  ASSERT_TRUE(h.mon->is_out(3));
  // The boot beacon after replay: up again AND back in placement.
  h.mon->handle_beacon(3, /*boot=*/true);
  EXPECT_FALSE(h.mon->is_down(3));
  EXPECT_FALSE(h.mon->is_out(3));
  EXPECT_TRUE(h.cmap.crush().is_up(3));
  EXPECT_TRUE(h.cmap.crush().is_in(3));
  EXPECT_EQ(h.mon->counters().get("mon.markups"), 1u);
}

TEST(Monitor, MarkUpCancelsPendingDownOut) {
  MonHarness h;
  h.mon->handle_report(0, 3, false);
  h.mon->handle_report(1, 3, false);
  ASSERT_TRUE(h.mon->is_down(3));
  h.mon->handle_beacon(3, false);  // heals before the down-out deadline
  h.sim.run_until(h.sim.now() + h.cfg.down_out_interval + kMillisecond);
  EXPECT_FALSE(h.mon->is_out(3)) << "stale down-out timer fired after mark-up";
  EXPECT_EQ(h.mon->counters().get("mon.markouts"), 0u);
}

TEST(Monitor, LaggySelfReportTrustedAndExpires) {
  MonHarness h;
  // Self-report (op-age watermark): trusted without quorum.
  h.mon->handle_report(2, 2, /*laggy=*/true);
  EXPECT_TRUE(h.mon->is_laggy(2));
  EXPECT_FALSE(h.mon->is_down(2));  // gray, not dead
  // Unrefreshed, the flag expires.
  h.sim.run_until(h.sim.now() + h.cfg.laggy_ttl + kMillisecond);
  EXPECT_FALSE(h.mon->is_laggy(2));
  EXPECT_EQ(h.mon->counters().get("mon.laggy_cleared"), 1u);
}

TEST(Monitor, LaggyPeerReportsNeedQuorum) {
  MonHarness h;
  h.mon->handle_report(0, 2, /*laggy=*/true);
  EXPECT_FALSE(h.mon->is_laggy(2)) << "one peer RTT observation flagged an OSD";
  h.mon->handle_report(1, 2, /*laggy=*/true);
  EXPECT_TRUE(h.mon->is_laggy(2));
}

TEST(Monitor, LaggyRefreshExtendsExpiry) {
  MonHarness h;
  h.mon->handle_report(2, 2, /*laggy=*/true);
  h.sim.run_until(h.sim.now() + h.cfg.laggy_ttl / 2);
  h.mon->handle_report(2, 2, /*laggy=*/true);  // refresh at half TTL
  h.sim.run_until(h.sim.now() + (h.cfg.laggy_ttl * 3) / 4);
  EXPECT_TRUE(h.mon->is_laggy(2)) << "refresh did not extend the flag";
  h.sim.run_until(h.sim.now() + h.cfg.laggy_ttl);
  EXPECT_FALSE(h.mon->is_laggy(2));
}

TEST(JitteredBackoff, SeededAndBounded) {
  const Time base = 10 * kMillisecond;
  Rng a(42), b(42), c(43);
  bool varied = false;
  Time prev = 0;
  for (int i = 0; i < 256; i++) {
    const Time va = client::jittered_backoff(base, a);
    EXPECT_EQ(va, client::jittered_backoff(base, b));  // same seed, same draw
    EXPECT_GE(va, base / 2);
    EXPECT_LT(va, base + base / 2);
    if (i > 0 && va != prev) varied = true;
    prev = va;
  }
  EXPECT_TRUE(varied);
  // A different seed diverges somewhere in the stream.
  Rng a2(42);
  bool diverged = false;
  for (int i = 0; i < 256 && !diverged; i++) {
    diverged = client::jittered_backoff(base, a2) != client::jittered_backoff(base, c);
  }
  EXPECT_TRUE(diverged);
}

// End-to-end: a real crash on the full stack (heartbeats over the
// messenger, reports over the mon link, quorum arbitration) is detected
// within hb_grace + 2*hb_interval, with zero false positives. No workload:
// the heartbeat plane runs on its own timers.
TEST(Membership, CrashDetectedWithinGraceEndToEnd) {
  core::ClusterConfig cfg;
  cfg.profile = core::Profile::afceph();
  cfg.osd_nodes = 4;
  cfg.osds_per_node = 1;
  cfg.client_nodes = 1;
  cfg.vms = 1;
  cfg.pg_num = 32;
  cfg.replication = 2;
  cfg.seed = 7;
  cfg.membership.mode = MembershipMode::kDetected;
  core::ClusterSim cluster(cfg);

  const Time crash_at = 200 * kMillisecond;
  const Time downtime = 300 * kMillisecond;
  fault::FaultPlan plan;
  plan.crash_restart(crash_at, /*osd=*/2, downtime);
  cluster.install_faults(plan);

  cluster.simulation().run_until(1200 * kMillisecond);

  const Monitor& mon = *cluster.monitor();
  ASSERT_EQ(mon.markdowns().size(), 1u);
  EXPECT_EQ(mon.markdowns()[0].osd, 2u);
  const Time bound = crash_at + cfg.membership.hb_grace + 2 * cfg.membership.hb_interval;
  EXPECT_GT(mon.markdowns()[0].at, crash_at);
  EXPECT_LE(mon.markdowns()[0].at, bound);
  // The restart's boot beacon marked it up again.
  ASSERT_EQ(mon.markups().size(), 1u);
  EXPECT_EQ(mon.markups()[0].osd, 2u);
  EXPECT_GE(mon.markups()[0].at, crash_at + downtime);
  EXPECT_EQ(mon.counters().get("mon.false_downs"), 0u);
  EXPECT_FALSE(mon.is_down(2));

  cluster.close_all();
  cluster.simulation().run();
}

}  // namespace
}  // namespace afc::mon
