// Tests for the LSM key-value store substrate: memtable skiplist, bloom
// filters, SSTable lookup, merge semantics, and the full Db against a
// reference std::map model (property-style), plus flush/compaction/stall
// behaviour and write-amplification accounting.

#include <gtest/gtest.h>

#include <map>

#include "device/ssd.h"
#include "kv/db.h"

namespace afc::kv {
namespace {

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTable, PutGetOverwrite) {
  MemTable m;
  m.put("a", Value::real("1"), 1);
  m.put("b", Value::real("2"), 2);
  EXPECT_EQ(m.get("a")->value.data, "1");
  m.put("a", Value::real("updated"), 3);
  EXPECT_EQ(m.get("a")->value.data, "updated");
  EXPECT_EQ(m.get("a")->seq, 3u);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(m.get("missing"), nullptr);
}

TEST(MemTable, TombstoneVisible) {
  MemTable m;
  m.put("k", Value::real("v"), 1);
  m.del("k", 2);
  const Entry* e = m.get("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->type, EntryType::kDelete);
  // Deleting a never-written key still records a tombstone (needed to mask
  // older SSTable versions).
  m.del("ghost", 3);
  ASSERT_NE(m.get("ghost"), nullptr);
  EXPECT_EQ(m.get("ghost")->type, EntryType::kDelete);
}

TEST(MemTable, DumpIsSorted) {
  MemTable m;
  Rng rng(5);
  for (int i = 0; i < 500; i++) {
    m.put("key" + std::to_string(rng.uniform_int(0, 999)), Value::virt(10), std::uint64_t(i));
  }
  auto entries = m.dump();
  for (std::size_t i = 1; i < entries.size(); i++) {
    EXPECT_LT(entries[i - 1].key, entries[i].key);
  }
  EXPECT_EQ(entries.size(), m.count());
}

TEST(MemTable, SeekAndIterate) {
  MemTable m;
  for (char c = 'a'; c <= 'e'; c++) m.put(std::string(1, c), Value::virt(1), 1);
  const Entry* e = m.seek("b");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->key, "b");
  e = m.next(e);
  EXPECT_EQ(e->key, "c");
  EXPECT_EQ(m.seek("zzz"), nullptr);
  // Seek between keys lands on the next one.
  EXPECT_EQ(m.seek("bb")->key, "c");
}

TEST(MemTable, ByteAccountingTracksContent) {
  MemTable m;
  EXPECT_EQ(m.approximate_bytes(), 0u);
  m.put("key1", Value::virt(100), 1);
  const auto after_one = m.approximate_bytes();
  EXPECT_GT(after_one, 100u);
  m.put("key1", Value::virt(10), 2);  // overwrite with smaller value
  EXPECT_LT(m.approximate_bytes(), after_one);
}

TEST(MemTable, AgainstReferenceModel) {
  MemTable m;
  std::map<std::string, std::pair<bool, std::string>> ref;  // key -> (live, value)
  Rng rng(31);
  std::uint64_t seq = 0;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 300));
    if (rng.chance(0.25)) {
      m.del(key, ++seq);
      ref[key] = {false, ""};
    } else {
      const std::string val = "v" + std::to_string(i);
      m.put(key, Value::real(val), ++seq);
      ref[key] = {true, val};
    }
  }
  for (const auto& [key, expect] : ref) {
    const Entry* e = m.get(key);
    ASSERT_NE(e, nullptr) << key;
    if (expect.first) {
      ASSERT_EQ(e->type, EntryType::kPut);
      EXPECT_EQ(e->value.data, expect.second);
    } else {
      EXPECT_EQ(e->type, EntryType::kDelete);
    }
  }
}

// ---------------------------------------------------------------------------
// Bloom filter & SSTable
// ---------------------------------------------------------------------------

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1000);
  for (int i = 0; i < 1000; i++) bf.add("key" + std::to_string(i));
  for (int i = 0; i < 1000; i++) {
    EXPECT_TRUE(bf.may_contain("key" + std::to_string(i)));
  }
}

TEST(BloomFilter, LowFalsePositiveRate) {
  BloomFilter bf(1000);
  for (int i = 0; i < 1000; i++) bf.add("key" + std::to_string(i));
  int fp = 0;
  for (int i = 0; i < 10000; i++) {
    if (bf.may_contain("other" + std::to_string(i))) fp++;
  }
  EXPECT_LT(fp, 500);  // ~1-2% expected at 10 bits/key, 4 probes
}

std::vector<Entry> make_entries(int n, std::uint64_t seq_base) {
  std::vector<Entry> out;
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    out.push_back(Entry{key, Value::real("val" + std::to_string(i)), seq_base + std::uint64_t(i),
                        EntryType::kPut});
  }
  return out;
}

TEST(SsTable, GetFindsAllEntries) {
  SsTable t(1, 0, make_entries(500, 1));
  for (int i = 0; i < 500; i += 17) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    auto [e, touched] = t.get(key);
    ASSERT_NE(e, nullptr) << key;
    EXPECT_TRUE(touched);
    EXPECT_EQ(e->value.data, "val" + std::to_string(i));
  }
  EXPECT_EQ(t.get("absent").entry, nullptr);
  EXPECT_EQ(t.min_key(), "k000000");
  EXPECT_EQ(t.max_key(), "k000499");
}

TEST(SsTable, RangeAndOverlap) {
  SsTable t(1, 1, make_entries(100, 1));
  EXPECT_TRUE(t.key_in_range("k000050"));
  EXPECT_FALSE(t.key_in_range("z"));
  EXPECT_TRUE(t.overlaps("k000090", "k000200"));
  EXPECT_FALSE(t.overlaps("k001000", "k002000"));
  EXPECT_FALSE(t.overlaps("a", "b"));
}

TEST(SsTable, DataBytesReflectContent) {
  SsTable small(1, 0, make_entries(10, 1));
  SsTable big(2, 0, make_entries(1000, 1));
  EXPECT_GT(big.data_bytes(), small.data_bytes() * 50);
}

TEST(MergeRuns, NewestWinsAndTombstones) {
  std::vector<Entry> newer{{"a", Value::real("new"), 10, EntryType::kPut},
                           {"b", Value::real("x"), 11, EntryType::kDelete}};
  std::vector<Entry> older{{"a", Value::real("old"), 1, EntryType::kPut},
                           {"b", Value::real("keep?"), 2, EntryType::kPut},
                           {"c", Value::real("c"), 3, EntryType::kPut}};
  auto keep = merge_runs({&newer, &older}, /*drop_deletes=*/false);
  ASSERT_EQ(keep.size(), 3u);
  EXPECT_EQ(keep[0].value.data, "new");
  EXPECT_EQ(keep[1].type, EntryType::kDelete);  // tombstone retained
  EXPECT_EQ(keep[2].key, "c");

  auto bottom = merge_runs({&newer, &older}, /*drop_deletes=*/true);
  ASSERT_EQ(bottom.size(), 2u);  // tombstone dropped at the bottom level
  EXPECT_EQ(bottom[0].key, "a");
  EXPECT_EQ(bottom[1].key, "c");
}

// ---------------------------------------------------------------------------
// Db end-to-end (on a simulated SSD)
// ---------------------------------------------------------------------------

struct DbFixture {
  sim::Simulation sim;
  dev::SsdModel ssd;
  Db db;

  explicit DbFixture(Db::Config cfg = small_config())
      : ssd(sim, "kvssd", dev::SsdModel::Config{}), db(sim, ssd, cfg) {}

  static Db::Config small_config() {
    Db::Config cfg;
    cfg.memtable_bytes = 16 * 1024;  // tiny: force flushes & compactions
    cfg.base_level_bytes = 64 * 1024;
    cfg.target_file_bytes = 16 * 1024;
    return cfg;
  }

  // Drive a coroutine to completion.
  template <class Fn>
  void run(Fn fn) {
    bool done = false;
    sim::spawn_fn([&]() -> sim::CoTask<void> {
      co_await fn();
      done = true;
    });
    sim.run();
    ASSERT_TRUE(done);
  }
};

TEST(Db, PutGetDelete) {
  DbFixture f;
  f.run([&]() -> sim::CoTask<void> {
    co_await f.db.put("alpha", Value::real("1"));
    co_await f.db.put("beta", Value::real("2"));
    auto v = co_await f.db.get("alpha");
    EXPECT_TRUE(v.has_value());
    EXPECT_EQ(v->data, "1");
    co_await f.db.del("alpha");
    v = co_await f.db.get("alpha");
    EXPECT_FALSE(v.has_value());
    v = co_await f.db.get("never");
    EXPECT_FALSE(v.has_value());
  });
}

TEST(Db, BatchIsAppliedAtomically) {
  DbFixture f;
  f.run([&]() -> sim::CoTask<void> {
    WriteBatch b;
    for (int i = 0; i < 50; i++) b.put("batch" + std::to_string(i), Value::virt(50));
    b.del("batch0");
    co_await f.db.write(std::move(b));
    auto gone = co_await f.db.get("batch0");
    EXPECT_FALSE(gone.has_value());
    auto v = co_await f.db.get("batch49");
    EXPECT_TRUE(v.has_value());
  });
}

TEST(Db, SurvivesFlushesAndCompactions) {
  DbFixture f;
  std::map<std::string, std::string> ref;
  f.run([&]() -> sim::CoTask<void> {
    Rng rng(77);
    for (int i = 0; i < 3000; i++) {
      const std::string key = "k" + std::to_string(rng.uniform_int(0, 2500));
      if (rng.chance(0.2)) {
        co_await f.db.del(key);
        ref.erase(key);
      } else {
        const std::string val = "value-" + std::to_string(i);
        co_await f.db.put(key, Value::real(val));
        ref[key] = val;
      }
    }
    co_await f.db.drain();
    EXPECT_GT(f.db.flushes(), 0u);
    EXPECT_GT(f.db.compactions(), 0u);
    for (const auto& [k, v] : ref) {
      auto got = co_await f.db.get(k);
      EXPECT_TRUE(got.has_value()) << k;
      if (got) EXPECT_EQ(got->data, v) << k;
    }
    // Spot-check deleted keys stay deleted through compaction.
    for (int i = 0; i < 400; i++) {
      const std::string key = "k" + std::to_string(i);
      if (ref.count(key)) continue;
      auto got = co_await f.db.get(key);
      EXPECT_FALSE(got.has_value()) << key;
    }
  });
}

TEST(Db, RangeKeysOrderedAndBounded) {
  DbFixture f;
  f.run([&]() -> sim::CoTask<void> {
    for (int i = 0; i < 200; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "log.%06d", i);
      co_await f.db.put(key, Value::virt(60));
    }
    auto keys = co_await f.db.range_keys("log.000050", "log.000060", 100);
    EXPECT_EQ(keys.size(), 10u);
    if (keys.size() != 10u) co_return;
    EXPECT_EQ(keys.front(), "log.000050");
    EXPECT_EQ(keys.back(), "log.000059");
    auto limited = co_await f.db.range_keys("log.", "log.~", 7);
    EXPECT_EQ(limited.size(), 7u);
    // Deleted keys disappear from range scans.
    co_await f.db.del("log.000050");
    keys = co_await f.db.range_keys("log.000050", "log.000060", 100);
    EXPECT_EQ(keys.size(), 9u);
  });
}

TEST(Db, WriteAmplificationGrowsWithSmallValues) {
  // The paper: 4 MB-block writes show ~30 MB extra on 2 GB; 4 KB blocks show
  // ~2 GB extra. Small KV records => high WA once compaction kicks in.
  DbFixture f;
  f.run([&]() -> sim::CoTask<void> {
    for (int i = 0; i < 4000; i++) {
      co_await f.db.put("pglog." + std::to_string(i % 512), Value::virt(64));
    }
    co_await f.db.drain();
  });
  EXPECT_GT(f.db.user_bytes(), 0u);
  EXPECT_GT(f.db.write_amplification(), 1.5);
  EXPECT_GT(f.db.device_write_bytes(), f.db.user_bytes());
}

TEST(Db, L0StallsEngageUnderBurst) {
  Db::Config cfg = DbFixture::small_config();
  cfg.l0_compaction_trigger = 2;
  cfg.l0_slowdown_threshold = 3;
  cfg.l0_stop_threshold = 5;
  DbFixture f(cfg);
  // Concurrent writers outpace the single background flush/compaction
  // worker, crowding L0.
  sim::WaitGroup wg(f.sim);
  for (int w = 0; w < 8; w++) {
    wg.add(1);
    sim::spawn_fn([&f, &wg, w]() -> sim::CoTask<void> {
      for (int i = 0; i < 1500; i++) {
        co_await f.db.put("burst" + std::to_string(w) + "." + std::to_string(i),
                          Value::virt(400));
      }
      wg.done();
    });
  }
  f.run([&]() -> sim::CoTask<void> {
    co_await wg.wait();
    co_await f.db.drain();
  });
  EXPECT_GT(f.db.stall_slowdowns() + f.db.stall_stops(), 0u);
}

TEST(Db, BatchingReducesWalRecords) {
  // One batch of N ops must log fewer WAL bytes than N separate puts (the
  // §3.4 rationale for batched transactions).
  auto run_one = [](bool batched) {
    DbFixture f;
    std::uint64_t wal_bytes = 0;
    f.run([&]() -> sim::CoTask<void> {
      for (int t = 0; t < 200; t++) {
        if (batched) {
          WriteBatch b;
          for (int i = 0; i < 3; i++) {
            b.put("t" + std::to_string(t) + "." + std::to_string(i), Value::virt(64));
          }
          co_await f.db.write(std::move(b));
        } else {
          for (int i = 0; i < 3; i++) {
            co_await f.db.put("t" + std::to_string(t) + "." + std::to_string(i),
                              Value::virt(64));
          }
        }
      }
      co_await f.db.drain();
      wal_bytes = f.db.device_write_bytes();
    });
    return wal_bytes;
  };
  EXPECT_LT(run_one(true), run_one(false));
}

TEST(Db, ConcurrentReadersDuringCompaction) {
  // get() snapshots candidate tables; a compaction completing mid-read must
  // not invalidate the lookup.
  DbFixture f;
  bool reads_done = false;
  sim::spawn_fn([&]() -> sim::CoTask<void> {
    for (int i = 0; i < 2000; i++) {
      co_await f.db.put("w" + std::to_string(i % 100), Value::virt(200));
    }
  });
  sim::spawn_fn([&]() -> sim::CoTask<void> {
    for (int i = 0; i < 500; i++) {
      auto v = co_await f.db.get("w" + std::to_string(i % 100));
      (void)v;
      co_await sim::delay(f.sim, 50 * kMicrosecond);
    }
    reads_done = true;
  });
  f.sim.run();
  EXPECT_TRUE(reads_done);
}

}  // namespace
}  // namespace afc::kv
